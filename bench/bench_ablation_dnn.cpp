// Ablation A1 (§V-A design choice): the paper argues for an autoencoder +
// weight-sharing Q-network over a monolithic feed-forward Q-network. This
// bench trains both architectures as the global tier on the same trace and
// reports parameter counts, achieved energy/latency, and training losses.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/rl/dqn.hpp"
#include "src/sim/cluster.hpp"
#include "src/workload/generator.hpp"

namespace {

using namespace hcrl;

/// Global tier built on the monolithic rl::DqnAgent (the §V-A strawman).
class MonolithicDrlAllocator final : public sim::AllocationPolicy {
 public:
  MonolithicDrlAllocator(const core::StateEncoderOptions& enc, std::uint64_t seed)
      : encoder_(enc), rng_(seed) {
    rl::DqnAgent::Options o;
    o.hidden_dims = {128};
    o.beta = 0.05;
    o.epsilon = rl::EpsilonSchedule::exponential(0.8, 0.02, 2500);
    o.min_replay_before_training = 512;
    agent_ = std::make_unique<rl::DqnAgent>(enc.full_state_dim(), enc.num_servers, o, rng_);
  }

  sim::ServerId select_server(const sim::ClusterView& cluster, const sim::Job& job) override {
    const sim::Time now = job.arrival;
    nn::Vec state = encoder_.full_state(cluster, job);
    if (has_prev_) {
      const double tau = std::max(now - prev_time_, 1e-6);
      const double d_energy = cluster.energy_joules(now) - prev_energy_;
      const double d_vms = cluster.jobs_in_system_integral(now) - prev_vms_;
      rl::Transition t;
      t.state = prev_state_;
      t.action = prev_action_;
      t.reward_rate = -(d_energy / (145.0 * 30.0) + d_vms / 100.0) / tau;
      t.tau = tau;
      t.next_state = state;
      agent_->observe(std::move(t));
    }
    const std::size_t action = agent_->act(state, rng_);
    has_prev_ = true;
    prev_state_ = std::move(state);
    prev_action_ = action;
    prev_time_ = now;
    prev_energy_ = cluster.energy_joules(now);
    prev_vms_ = cluster.jobs_in_system_integral(now);
    return action;
  }

  void on_simulation_end(const sim::ClusterView&, sim::Time) override { has_prev_ = false; }
  std::string name() const override { return "monolithic-dqn"; }
  std::size_t param_count() const { return encoder_.options().full_state_dim() * 128 + 128 +
                                           128 * encoder_.options().num_servers +
                                           encoder_.options().num_servers; }

 private:
  core::StateEncoder encoder_;
  common::Rng rng_;
  std::unique_ptr<rl::DqnAgent> agent_;
  bool has_prev_ = false;
  nn::Vec prev_state_;
  std::size_t prev_action_ = 0;
  sim::Time prev_time_ = 0.0;
  double prev_energy_ = 0.0;
  double prev_vms_ = 0.0;
};

sim::MetricsSnapshot run_with(sim::AllocationPolicy& alloc, const std::vector<sim::Job>& jobs,
                              std::size_t servers) {
  sim::ImmediateSleepPolicy power;
  sim::ClusterConfig cfg;
  cfg.num_servers = servers;
  sim::Cluster cluster(cfg, alloc, power);
  cluster.load_jobs(jobs);
  cluster.run();
  return cluster.snapshot();
}

}  // namespace

int main() {
  const std::size_t jobs = hcrl::bench::env_jobs(20000);
  auto cfg = hcrl::bench::paper_config(30, jobs);
  cfg.finalize();

  workload::GoogleTraceGenerator gen(cfg.trace);
  const auto trace = gen.generate();

  std::printf("=== Ablation A1: grouped+autoencoder+weight-sharing vs monolithic DQN ===\n");
  std::printf("(%zu jobs, M = 30; both trained online from scratch on the same trace)\n\n",
              jobs);

  core::DrlAllocator grouped(cfg.drl);
  grouped.set_guide(std::make_unique<sim::FirstFitPackingAllocator>());
  const auto grouped_snap = run_with(grouped, trace, 30);

  MonolithicDrlAllocator mono(cfg.drl.qnet.encoder, 7);
  const auto mono_snap = run_with(mono, trace, 30);

  std::printf("%-28s %14s %14s %14s %12s\n", "architecture", "params(Q-net)", "energy(kWh)",
              "latency(1e6s)", "power(W)");
  std::printf("%-28s %14zu %14.2f %14.3f %12.1f\n", "grouped+shared (paper)",
              grouped.network().subq_param_count() + grouped.network().autoencoder_param_count(),
              grouped_snap.energy_kwh(), grouped_snap.accumulated_latency_s / 1e6,
              grouped_snap.average_power_watts);
  std::printf("%-28s %14zu %14.2f %14.3f %12.1f\n", "monolithic DQN", mono.param_count(),
              mono_snap.energy_kwh(), mono_snap.accumulated_latency_s / 1e6,
              mono_snap.average_power_watts);
  std::printf("\n(paper's argument: weight sharing lets every sample train the one shared "
              "head and reduces parameters; K separate nets would cost ~K× the parameters "
              "and train each head on 1/K of the data)\n");
  return 0;
}
