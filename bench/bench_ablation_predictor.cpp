// Ablation A2 (§VI-A design choice): LSTM workload predictor versus the
// linear-combination predictors of prior work (last-value, sliding-mean).
// Part 1 measures next-inter-arrival prediction error on a per-server
// arrival stream recorded from a real simulation; part 2 runs the full
// hierarchical framework with each predictor and compares energy/latency.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/core/predictor.hpp"
#include "src/sim/cluster.hpp"
#include "src/workload/generator.hpp"

namespace {
using namespace hcrl;

/// Record per-server inter-arrival gaps under the packing heuristic (the
/// local tier sees post-allocation streams, not the raw trace).
std::vector<double> record_server_gaps(const std::vector<sim::Job>& jobs,
                                       std::size_t servers, sim::ServerId watch) {
  sim::FirstFitPackingAllocator alloc;
  sim::FixedTimeoutPolicy power(60.0);
  sim::ClusterConfig cfg;
  cfg.num_servers = servers;
  sim::Cluster cluster(cfg, alloc, power);
  cluster.load_jobs(jobs);

  std::vector<double> gaps;
  double last_arrival = -1.0;
  std::size_t seen = 0;
  while (cluster.step()) {
    const auto& s = cluster.server(watch);
    if (s.total_arrivals() > seen) {
      seen = s.total_arrivals();
      if (last_arrival >= 0.0) gaps.push_back(s.last_arrival_time() - last_arrival);
      last_arrival = s.last_arrival_time();
    }
  }
  return gaps;
}

double eval_predictor(core::WorkloadPredictor& p, const std::vector<double>& gaps) {
  // Feed the first 60%; score absolute log-error on the rest (log because
  // gaps span 4 orders of magnitude).
  const std::size_t split = gaps.size() * 6 / 10;
  for (std::size_t i = 0; i < split; ++i) p.observe(gaps[i]);
  double err = 0.0;
  for (std::size_t i = split; i < gaps.size(); ++i) {
    const double pred = p.predict();
    err += std::abs(std::log1p(pred) - std::log1p(gaps[i]));
    p.observe(gaps[i]);
  }
  return err / static_cast<double>(gaps.size() - split);
}

}  // namespace

int main() {
  const std::size_t jobs = hcrl::bench::env_jobs(20000);
  auto cfg = hcrl::bench::paper_config(30, jobs);
  cfg.finalize();

  workload::GoogleTraceGenerator gen(cfg.trace);
  const auto trace = gen.generate();

  std::printf("=== Ablation A2: LSTM vs linear workload predictors ===\n\n");
  std::printf("Part 1: next inter-arrival prediction, per-server stream (M=30)\n");
  const auto gaps = record_server_gaps(trace, 30, /*watch=*/0);
  std::printf("  stream: %zu gaps on server 0\n", gaps.size());
  std::printf("  %-16s %22s\n", "predictor", "mean |log error|");
  for (const char* kind : {"lstm", "last-value", "sliding-mean"}) {
    auto p = core::make_predictor(kind, cfg.local.lstm);
    std::printf("  %-16s %22.4f\n", kind, eval_predictor(*p, gaps));
  }

  std::printf("\nPart 2: full hierarchical framework with each predictor\n");
  hcrl::bench::print_result_header();
  for (const char* kind : {"lstm", "last-value", "sliding-mean"}) {
    auto run_cfg = cfg;
    run_cfg.system = core::SystemKind::kHierarchical;
    run_cfg.local.predictor = kind;
    const auto r = core::run_experiment(run_cfg);
    auto labeled = r;
    labeled.system = std::string("hierarchical/") + kind;
    hcrl::bench::print_result_row(labeled);
  }
  std::printf("\n(paper's argument: linear predictors are ruined by a single long "
              "inter-arrival; the LSTM captures long-term dependencies)\n");
  return 0;
}
