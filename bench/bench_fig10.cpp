// Reproduces Fig. 10: trade-off curves between average per-job latency and
// average per-job energy. The hierarchical framework sweeps the local-tier
// reward weight w (Eqn. 5); fixed-timeout baselines (30/60/90 s) sweep the
// global tier's latency weight. The paper's claim: the hierarchical curve
// achieves "the smallest area against the axes" — the best trade-off.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/core/tradeoff.hpp"

int main() {
  // The sweep runs 5 + 3*3 = 14 full simulations; default to a reduced
  // trace so the whole figure regenerates in minutes. The cells run as one
  // scenario batch on a ParallelRunner (HCRL_BENCH_THREADS overrides the
  // worker count), so wall time shrinks toward the slowest single cell.
  const std::size_t jobs = hcrl::bench::env_jobs(20000);

  hcrl::core::TradeoffOptions opts;
  opts.base = hcrl::bench::paper_config(30, jobs);
  opts.local_weights = {0.1, 0.3, 0.5, 0.7, 0.9};
  opts.fixed_timeouts = {30.0, 60.0, 90.0};
  opts.global_vm_weights = {0.002, 0.01, 0.05};
  opts.threads = hcrl::bench::env_threads();

  std::printf("=== Fig. 10: power/latency trade-off, M = 30, %zu jobs ===\n", jobs);
  const auto result = hcrl::core::explore_tradeoff(opts);

  std::printf("\n%-20s %12s %18s %18s\n", "system", "sweep", "avg latency (s)",
              "avg energy (Wh)");
  for (const auto& p : result.hierarchical) {
    std::printf("%-20s %12.3f %18.1f %18.2f\n", p.system.c_str(), p.sweep_value,
                p.avg_latency_s, p.avg_energy_wh);
  }
  for (const auto& curve : result.fixed_timeout_curves) {
    for (const auto& p : curve) {
      std::printf("%-20s %12.3f %18.1f %18.2f\n", p.system.c_str(), p.sweep_value,
                  p.avg_latency_s, p.avg_energy_wh);
    }
  }

  std::printf("\ntrade-off area score (mean latency*energy; lower = better):\n");
  std::printf("%-20s %14.1f\n", "hierarchical", hcrl::core::tradeoff_area(result.hierarchical));
  for (std::size_t i = 0; i < result.fixed_timeout_curves.size(); ++i) {
    std::printf("fixed-timeout-%-6.0f %14.1f\n", opts.fixed_timeouts[i],
                hcrl::core::tradeoff_area(result.fixed_timeout_curves[i]));
  }
  std::printf("(paper: hierarchical gives the smallest area; e.g. vs the 90 s baseline, "
              "up to 16.16%% latency saving at equal energy and 16.20%% energy saving at "
              "equal latency)\n");
  return 0;
}
