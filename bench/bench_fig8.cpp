// Reproduces Fig. 8 (M = 30): (a) accumulated job latency versus number of
// completed jobs and (b) energy usage versus number of completed jobs, for
// round-robin, DRL-only and the hierarchical framework.
//
// The paper's qualitative shape: round-robin has the lowest latency curve
// but the steepest energy curve; the hierarchical framework's energy curve
// is the lowest throughout; its latency lies between the other two.
//
// The three systems are the "fig8/*" scenarios of the builtin registry,
// share one cached trace, and run concurrently on a ParallelRunner.
#include <cstdio>

#include "bench/bench_util.hpp"

namespace {

void print_series(const std::vector<hcrl::core::ExperimentResult>& results) {
  std::printf("\nFig. 8(a): accumulated latency (1e6 s) vs jobs completed\n");
  std::printf("%10s", "jobs");
  for (const auto& r : results) std::printf(" %20s", r.system.c_str());
  std::printf("\n");
  const std::size_t rows = results[0].series.size();
  for (std::size_t i = 0; i < rows; ++i) {
    std::printf("%10zu", results[0].series[i].jobs_completed);
    for (const auto& r : results) {
      std::printf(" %20.3f", i < r.series.size() ? r.series[i].accumulated_latency_s / 1e6 : 0.0);
    }
    std::printf("\n");
  }

  std::printf("\nFig. 8(b): energy usage (kWh) vs jobs completed\n");
  std::printf("%10s", "jobs");
  for (const auto& r : results) std::printf(" %20s", r.system.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < rows; ++i) {
    std::printf("%10zu", results[0].series[i].jobs_completed);
    for (const auto& r : results) {
      std::printf(" %20.2f", i < r.series.size() ? r.series[i].energy_kwh : 0.0);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  const std::size_t jobs = hcrl::bench::env_jobs(95000);

  std::printf("=== Fig. 8: M = 30, %zu jobs ===\n", jobs);
  const auto scenarios = hcrl::core::ScenarioRegistry::builtin().make_group("fig8/", jobs);
  const auto results = hcrl::bench::run_parallel_sweep(scenarios);
  print_series(results);

  hcrl::bench::print_result_header();
  for (const auto& r : results) hcrl::bench::print_result_row(r);
  return 0;
}
