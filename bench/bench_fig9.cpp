// Reproduces Fig. 9 (M = 40): same series as Fig. 8 on the larger cluster.
// The paper's observation: the DRL-based systems' energy curves barely move
// when M grows from 30 to 40, while round-robin's energy grows with M.
//
// The three systems are the "fig9/*" scenarios of the builtin registry,
// share one cached trace, and run concurrently on a ParallelRunner — the
// figure regenerates in roughly the wall time of its slowest system instead
// of the sum of all three (HCRL_BENCH_THREADS overrides the worker count).
#include <cstdio>

#include "bench/bench_util.hpp"

int main() {
  const std::size_t jobs = hcrl::bench::env_jobs(95000);

  std::printf("=== Fig. 9: M = 40, %zu jobs ===\n", jobs);
  const auto scenarios = hcrl::core::ScenarioRegistry::builtin().make_group("fig9/", jobs);
  const auto results = hcrl::bench::run_parallel_sweep(scenarios);

  std::printf("\nFig. 9(a): accumulated latency (1e6 s) vs jobs completed\n");
  std::printf("%10s", "jobs");
  for (const auto& r : results) std::printf(" %20s", r.system.c_str());
  std::printf("\n");
  const std::size_t rows = results[0].series.size();
  for (std::size_t i = 0; i < rows; ++i) {
    std::printf("%10zu", results[0].series[i].jobs_completed);
    for (const auto& r : results) {
      std::printf(" %20.3f", i < r.series.size() ? r.series[i].accumulated_latency_s / 1e6 : 0.0);
    }
    std::printf("\n");
  }

  std::printf("\nFig. 9(b): energy usage (kWh) vs jobs completed\n");
  std::printf("%10s", "jobs");
  for (const auto& r : results) std::printf(" %20s", r.system.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < rows; ++i) {
    std::printf("%10zu", results[0].series[i].jobs_completed);
    for (const auto& r : results) {
      std::printf(" %20.2f", i < r.series.size() ? r.series[i].energy_kwh : 0.0);
    }
    std::printf("\n");
  }

  hcrl::bench::print_result_header();
  for (const auto& r : results) hcrl::bench::print_result_row(r);
  return 0;
}
