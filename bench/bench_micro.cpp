// Micro-benchmarks (google-benchmark) supporting the paper's §V-B claim
// that the global tier's online complexity is low: one decision costs K
// autoencoder encodes + K Sub-Q forwards, i.e. microseconds per job arrival.
#include <benchmark/benchmark.h>

#include "src/core/qnetwork.hpp"
#include "src/core/state.hpp"
#include "src/nn/init.hpp"
#include "src/nn/lstm.hpp"
#include "src/rl/smdp.hpp"
#include "src/rl/tabular_q.hpp"
#include "src/sim/cluster.hpp"
#include "src/workload/generator.hpp"

namespace {
using namespace hcrl;

void BM_MatrixVectorMultiply(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  nn::Matrix m(n, n, 0.5);
  nn::Vec x(n, 1.0), y;
  for (auto _ : state) {
    m.multiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_MatrixVectorMultiply)->Arg(32)->Arg(128)->Arg(512);

void BM_GroupedQInference(benchmark::State& state) {
  common::Rng rng(1);
  core::GroupedQOptions o;
  o.encoder.num_servers = static_cast<std::size_t>(state.range(0));
  o.encoder.num_groups = o.encoder.num_servers % 3 == 0 ? 3 : 2;
  core::GroupedQNetwork net(o, rng);
  nn::Vec s(o.encoder.full_state_dim());
  for (auto& v : s) v = rng.uniform();
  for (auto _ : state) {
    auto q = net.q_values(s);
    benchmark::DoNotOptimize(q.data());
  }
}
BENCHMARK(BM_GroupedQInference)->Arg(30)->Arg(40)->Arg(60);

void BM_LstmStep(benchmark::State& state) {
  common::Rng rng(2);
  auto params = std::make_shared<nn::LstmParams>(30, 1);  // paper's 30 hidden units
  nn::init_lstm(*params, rng);
  nn::Lstm lstm(params);
  const nn::Vec x = {0.5};
  for (auto _ : state) {
    auto h = lstm.step(x);
    benchmark::DoNotOptimize(h.data());
    if (lstm.cached_steps() > 64) lstm.reset();
  }
}
BENCHMARK(BM_LstmStep);

void BM_SmdpUpdate(benchmark::State& state) {
  rl::TabularQAgent::Options o;
  rl::TabularQAgent agent(7, 5, o);
  std::size_t s = 0;
  for (auto _ : state) {
    agent.update(s, s % 5, -1.0, 10.0, (s + 1) % 7);
    s = (s + 1) % 7;
  }
}
BENCHMARK(BM_SmdpUpdate);

void BM_SmdpTargetMath(benchmark::State& state) {
  double acc = 0.0;
  double tau = 0.1;
  for (auto _ : state) {
    acc += rl::smdp_target(-1.5, tau, 0.05, acc * 1e-9);
    tau += 1e-7;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_SmdpTargetMath);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  // End-to-end event processing rate of the cluster engine under the
  // round-robin baseline (no learning overhead).
  workload::GeneratorOptions g;
  g.num_jobs = 5000;
  g.horizon_s = 5000.0 * 6.4;
  const auto jobs = workload::GoogleTraceGenerator(g).generate();
  std::int64_t total_events = 0;
  for (auto _ : state) {
    sim::RoundRobinAllocator alloc;
    sim::AlwaysOnPolicy power;
    sim::ClusterConfig cfg;
    cfg.num_servers = 30;
    cfg.keep_job_records = false;
    sim::Cluster cluster(cfg, alloc, power);
    cluster.load_jobs(jobs);
    while (cluster.step()) ++total_events;
  }
  state.SetItemsProcessed(total_events);
}
BENCHMARK(BM_SimulatorEventThroughput)->Unit(benchmark::kMillisecond);

void BM_StateEncoding(benchmark::State& state) {
  core::StateEncoderOptions o;
  o.num_servers = 30;
  o.num_groups = 3;
  core::StateEncoder enc(o);
  sim::RoundRobinAllocator alloc;
  sim::AlwaysOnPolicy power;
  sim::ClusterConfig cfg;
  cfg.num_servers = 30;
  sim::Cluster cluster(cfg, alloc, power);
  sim::Job job;
  job.id = 1;
  job.duration = 100.0;
  job.demand = sim::ResourceVector{0.1, 0.1, 0.01};
  for (auto _ : state) {
    auto s = enc.full_state(cluster, job);
    benchmark::DoNotOptimize(s.data());
  }
}
BENCHMARK(BM_StateEncoding);

}  // namespace

BENCHMARK_MAIN();
