// Micro-benchmarks (google-benchmark) supporting the paper's §V-B claim
// that the global tier's online complexity is low: one decision costs K
// autoencoder encodes + K Sub-Q forwards, i.e. microseconds per job arrival.
#include <benchmark/benchmark.h>

#include "src/core/predictor.hpp"
#include "src/core/qnetwork.hpp"
#include "src/core/state.hpp"
#include "src/nn/init.hpp"
#include "src/nn/lstm.hpp"
#include "src/rl/dqn.hpp"
#include "src/rl/smdp.hpp"
#include "src/rl/tabular_q.hpp"
#include "src/sim/cluster.hpp"
#include "src/sim/sharded_cluster.hpp"
#include "src/telemetry/registry.hpp"
#include "src/workload/generator.hpp"

namespace {
using namespace hcrl;

void BM_MatrixVectorMultiply(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  nn::Matrix m(n, n, 0.5);
  nn::Vec x(n, 1.0), y;
  for (auto _ : state) {
    m.multiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_MatrixVectorMultiply)->Arg(32)->Arg(128)->Arg(512);

// Single-sample loop vs one GEMM over the stacked batch: the core of the
// batched NN path. Items processed = multiply-accumulates, so the two
// counters are directly comparable.
void BM_MatrixVectorLoop_vs_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto batch = static_cast<std::size_t>(state.range(1));
  common::Rng rng(3);
  nn::Matrix w(n, n);
  for (std::size_t i = 0; i < w.size(); ++i) w.data()[i] = rng.uniform(-1.0, 1.0);
  nn::Vec x(n, 0.5), y;
  for (auto _ : state) {
    for (std::size_t b = 0; b < batch; ++b) {
      w.multiply(x, y);
      benchmark::DoNotOptimize(y.data());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch * n * n));
}
BENCHMARK(BM_MatrixVectorLoop_vs_Gemm)->Args({128, 32})->Args({512, 32});

void BM_GemmBatched(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto batch = static_cast<std::size_t>(state.range(1));
  common::Rng rng(3);
  nn::Matrix w(n, n);
  for (std::size_t i = 0; i < w.size(); ++i) w.data()[i] = rng.uniform(-1.0, 1.0);
  nn::Matrix X(batch, n, 0.5), Y;
  for (auto _ : state) {
    nn::gemm_nt(X, w, Y);  // Y = X W^T: the batched Dense forward kernel
    benchmark::DoNotOptimize(Y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch * n * n));
}
BENCHMARK(BM_GemmBatched)->Args({128, 32})->Args({512, 32});

// The precision x GEMM-thread grid of the f32 compute mode: the batched
// Dense forward kernel at float/double and 1/N intra-GEMM workers. Items
// processed = multiply-accumulates, directly comparable across all cells.
template <class S>
void run_gemm_grid(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto batch = static_cast<std::size_t>(state.range(1));
  const auto threads = static_cast<std::size_t>(state.range(2));
  common::Rng rng(3);
  nn::MatrixT<S> w(n, n);
  for (std::size_t i = 0; i < w.size(); ++i) w.data()[i] = static_cast<S>(rng.uniform(-1.0, 1.0));
  nn::MatrixT<S> X(batch, n, S(0.5)), Y;
  nn::set_gemm_threads(threads);
  for (auto _ : state) {
    nn::gemm_nt(X, w, Y);
    benchmark::DoNotOptimize(Y.data());
  }
  nn::set_gemm_threads(1);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch * n * n));
}
void BM_GemmF64(benchmark::State& state) { run_gemm_grid<double>(state); }
BENCHMARK(BM_GemmF64)->Args({512, 32, 1})->Args({512, 32, 2})->Args({512, 512, 1})
    ->Args({512, 512, 2})->Args({512, 512, 4});
void BM_GemmF32(benchmark::State& state) { run_gemm_grid<float>(state); }
BENCHMARK(BM_GemmF32)->Args({512, 32, 1})->Args({512, 32, 2})->Args({512, 512, 1})
    ->Args({512, 512, 2})->Args({512, 512, 4});

// The acceptance benchmark for the batched path: one DQN SGD step on a
// 32-transition minibatch, per-sample loop vs batched GEMM path — and the
// precision/GEMM-thread grid of the f32 compute mode on the batched cell.
void run_dqn_train_step(benchmark::State& state, bool batched,
                        nn::Precision precision = nn::Precision::kF64,
                        std::size_t gemm_threads = 1) {
  common::Rng rng(11);
  rl::DqnAgent::Options o;
  o.hidden_dims = {128};
  o.batch_size = 32;
  o.min_replay_before_training = 64;
  o.train_interval = 1000000;  // train explicitly, not inside observe()
  o.target_sync_interval = 1000000;
  o.batched_train = batched;
  o.precision = precision;
  nn::set_gemm_threads(gemm_threads);
  const std::size_t state_dim = 24, n_actions = 30;
  rl::DqnAgent agent(state_dim, n_actions, o, rng);
  common::Rng data(12);
  for (int i = 0; i < 256; ++i) {
    rl::Transition t;
    t.state.resize(state_dim);
    t.next_state.resize(state_dim);
    for (auto& v : t.state) v = data.uniform(-1.0, 1.0);
    for (auto& v : t.next_state) v = data.uniform(-1.0, 1.0);
    t.action = static_cast<std::size_t>(
        data.uniform_int(0, static_cast<std::int64_t>(n_actions) - 1));
    t.reward_rate = -1.0;
    t.tau = 1.0;
    agent.observe(std::move(t));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.train_step());
  }
  nn::set_gemm_threads(1);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}

void BM_DqnTrainStepPerSample(benchmark::State& state) { run_dqn_train_step(state, false); }
BENCHMARK(BM_DqnTrainStepPerSample);

void BM_DqnTrainStepBatched(benchmark::State& state) { run_dqn_train_step(state, true); }
BENCHMARK(BM_DqnTrainStepBatched);

void BM_DqnTrainStepBatchedF32(benchmark::State& state) {
  run_dqn_train_step(state, true, nn::Precision::kF32);
}
BENCHMARK(BM_DqnTrainStepBatchedF32);

void BM_DqnTrainStepBatchedT2(benchmark::State& state) {
  run_dqn_train_step(state, true, nn::Precision::kF64, 2);
}
BENCHMARK(BM_DqnTrainStepBatchedT2);

void BM_DqnTrainStepBatchedF32T2(benchmark::State& state) {
  run_dqn_train_step(state, true, nn::Precision::kF32, 2);
}
BENCHMARK(BM_DqnTrainStepBatchedF32T2);

// Batched LSTM sweep vs running the same windows one at a time — the
// predictor's multi-window prediction path.
void BM_LstmWindowSweep(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const std::size_t lookback = 35, hidden = 30;  // paper's predictor shape
  common::Rng rng(4);
  auto params = std::make_shared<nn::LstmParams>(hidden, 1);
  nn::init_lstm(*params, rng);
  nn::Lstm lstm(params);
  std::vector<nn::Matrix> xs;
  for (std::size_t t = 0; t < lookback; ++t) {
    nn::Matrix x(batch, 1);
    for (std::size_t b = 0; b < batch; ++b) x(b, 0) = rng.uniform();
    xs.push_back(x);
  }
  for (auto _ : state) {
    if (batch == 1) {
      // per-sample: each window walked separately
      for (std::size_t w = 0; w < 8; ++w) {
        lstm.reset();
        for (const auto& x : xs) benchmark::DoNotOptimize(lstm.step({x(0, 0)}).data());
      }
    } else {
      lstm.reset_batch(batch);
      for (const auto& x : xs) benchmark::DoNotOptimize(lstm.step_batch(x).data());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lookback * (batch == 1 ? 8 : batch)));
}
BENCHMARK(BM_LstmWindowSweep)->Arg(1)->Arg(8);

// Precision x GEMM-thread grid on the batched LSTM sweep (the predictor's
// multi-window path): `batch` windows through the stacked-gate GEMMs, on
// the inference path (keep_cache=false) that predict_windows actually runs.
template <class S>
void run_lstm_sweep_grid(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const std::size_t lookback = 35, hidden = 30;  // paper's predictor shape
  common::Rng rng(4);
  auto params = std::make_shared<nn::LstmParamsT<S>>(hidden, 1);
  nn::init_lstm(*params, rng);
  nn::LstmT<S> lstm(params);
  std::vector<nn::MatrixT<S>> xs;
  for (std::size_t t = 0; t < lookback; ++t) {
    nn::MatrixT<S> x(batch, 1);
    for (std::size_t b = 0; b < batch; ++b) x(b, 0) = static_cast<S>(rng.uniform());
    xs.push_back(x);
  }
  nn::set_gemm_threads(threads);
  for (auto _ : state) {
    lstm.reset_batch(batch);
    for (const auto& x : xs) {
      benchmark::DoNotOptimize(lstm.step_batch(x, /*keep_cache=*/false).data());
    }
  }
  nn::set_gemm_threads(1);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lookback * batch));
}
void BM_LstmSweepF64(benchmark::State& state) { run_lstm_sweep_grid<double>(state); }
BENCHMARK(BM_LstmSweepF64)->Args({8, 1})->Args({32, 1})->Args({32, 2});
void BM_LstmSweepF32(benchmark::State& state) { run_lstm_sweep_grid<float>(state); }
BENCHMARK(BM_LstmSweepF32)->Args({8, 1})->Args({32, 1})->Args({32, 2});

void BM_GroupedQInference(benchmark::State& state) {
  common::Rng rng(1);
  core::GroupedQOptions o;
  o.encoder.num_servers = static_cast<std::size_t>(state.range(0));
  o.encoder.num_groups = o.encoder.num_servers % 3 == 0 ? 3 : 2;
  core::GroupedQNetwork net(o, rng);
  nn::Vec s(o.encoder.full_state_dim());
  for (auto& v : s) v = rng.uniform();
  for (auto _ : state) {
    auto q = net.q_values(s);
    benchmark::DoNotOptimize(q.data());
  }
}
BENCHMARK(BM_GroupedQInference)->Arg(30)->Arg(40)->Arg(60);

// Decision-epoch batching (core::DecisionService): B staged placement
// decisions resolved by ONE q_values_batch fusion (B*K rows per GEMM sweep)
// vs B per-call q_values walks (2 sweeps of K rows each). Items processed =
// decisions, so every cell reads directly as decisions/sec; the acceptance
// gate is batched(B>=16) >= 2x per-call at equal precision.
void run_grouped_q_decisions(benchmark::State& state, nn::Precision precision, bool batched) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  common::Rng rng(1);
  core::GroupedQOptions o;
  o.encoder.num_servers = 30;  // paper's M=30 cluster, K=3 groups
  o.encoder.num_groups = 3;
  o.precision = precision;
  core::GroupedQNetwork net(o, rng);
  std::vector<nn::Vec> states;
  for (std::size_t b = 0; b < batch; ++b) {
    nn::Vec s(o.encoder.full_state_dim());
    for (auto& v : s) v = rng.uniform();
    states.push_back(std::move(s));
  }
  std::vector<const nn::Vec*> ptrs;
  for (const auto& s : states) ptrs.push_back(&s);
  nn::Matrix out;
  for (auto _ : state) {
    if (batched) {
      net.q_values_batch(ptrs, out);
      benchmark::DoNotOptimize(out.data());
    } else {
      for (const nn::Vec* s : ptrs) {
        auto q = net.q_values(*s);
        benchmark::DoNotOptimize(q.data());
      }
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
void BM_GroupedQDecisionsPerCall(benchmark::State& state) {
  run_grouped_q_decisions(state, nn::Precision::kF64, false);
}
BENCHMARK(BM_GroupedQDecisionsPerCall)->Arg(16)->Arg(64);
void BM_GroupedQDecisionsBatched(benchmark::State& state) {
  run_grouped_q_decisions(state, nn::Precision::kF64, true);
}
BENCHMARK(BM_GroupedQDecisionsBatched)->Arg(16)->Arg(64);
void BM_GroupedQDecisionsPerCallF32(benchmark::State& state) {
  run_grouped_q_decisions(state, nn::Precision::kF32, false);
}
BENCHMARK(BM_GroupedQDecisionsPerCallF32)->Arg(16)->Arg(64);
void BM_GroupedQDecisionsBatchedF32(benchmark::State& state) {
  run_grouped_q_decisions(state, nn::Precision::kF32, true);
}
BENCHMARK(BM_GroupedQDecisionsBatchedF32)->Arg(16)->Arg(64);

// The local tier's side of the decision epoch: B staged predictor queries
// against one warmed LSTM through predict_n (ONE batch-B stacked-gate sweep)
// vs B predict() chains. Items processed = predictions (decisions/sec).
void run_predictor_decisions(benchmark::State& state, bool batched) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  core::LstmPredictorOptions o;  // paper shape: 35-step lookback, 30 units
  o.train_interval = 1000000;    // inference cost only
  core::LstmPredictor predictor(o);
  common::Rng rng(5);
  for (int i = 0; i < 64; ++i) predictor.observe(60.0 + 500.0 * rng.uniform());
  for (auto _ : state) {
    if (batched) {
      benchmark::DoNotOptimize(predictor.predict_n(batch).data());
    } else {
      for (std::size_t b = 0; b < batch; ++b) benchmark::DoNotOptimize(predictor.predict());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
void BM_PredictorDecisionsPerCall(benchmark::State& state) {
  run_predictor_decisions(state, false);
}
BENCHMARK(BM_PredictorDecisionsPerCall)->Arg(16);
void BM_PredictorDecisionsBatched(benchmark::State& state) {
  run_predictor_decisions(state, true);
}
BENCHMARK(BM_PredictorDecisionsBatched)->Arg(16);

void BM_LstmStep(benchmark::State& state) {
  common::Rng rng(2);
  auto params = std::make_shared<nn::LstmParams>(30, 1);  // paper's 30 hidden units
  nn::init_lstm(*params, rng);
  nn::Lstm lstm(params);
  const nn::Vec x = {0.5};
  for (auto _ : state) {
    auto h = lstm.step(x);
    benchmark::DoNotOptimize(h.data());
    if (lstm.cached_steps() > 64) lstm.reset();
  }
}
BENCHMARK(BM_LstmStep);

void BM_SmdpUpdate(benchmark::State& state) {
  rl::TabularQAgent::Options o;
  rl::TabularQAgent agent(7, 5, o);
  std::size_t s = 0;
  for (auto _ : state) {
    agent.update(s, s % 5, -1.0, 10.0, (s + 1) % 7);
    s = (s + 1) % 7;
  }
}
BENCHMARK(BM_SmdpUpdate);

void BM_SmdpTargetMath(benchmark::State& state) {
  double acc = 0.0;
  double tau = 0.1;
  for (auto _ : state) {
    acc += rl::smdp_target(-1.5, tau, 0.05, acc * 1e-9);
    tau += 1e-7;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_SmdpTargetMath);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  // End-to-end event processing rate of the cluster engine under the
  // round-robin baseline (no learning overhead).
  workload::GeneratorOptions g;
  g.num_jobs = 5000;
  g.horizon_s = 5000.0 * 6.4;
  const auto jobs = workload::GoogleTraceGenerator(g).generate();
  std::int64_t total_events = 0;
  for (auto _ : state) {
    sim::RoundRobinAllocator alloc;
    sim::AlwaysOnPolicy power;
    sim::ClusterConfig cfg;
    cfg.num_servers = 30;
    cfg.keep_job_records = false;
    sim::Cluster cluster(cfg, alloc, power);
    cluster.load_jobs(jobs);
    while (cluster.step()) ++total_events;
  }
  state.SetItemsProcessed(total_events);
}
BENCHMARK(BM_SimulatorEventThroughput)->Unit(benchmark::kMillisecond);

void BM_ShardedEventThroughput(benchmark::State& state) {
  // Events/sec of the sharded engine at cluster scale: 10k servers,
  // round-robin + 30 s fixed timeout (trace-only routing, so the parallel
  // engine pre-routes arrivals and the shards run barrier-free). Each job
  // contributes >= 4 events (arrival, finish, timeout, sleep/wake), so 250k
  // jobs clears one million events per iteration. Items/s == events/s; arg
  // is the shard count (1 = sharded engine overhead baseline).
  const auto num_shards = static_cast<std::size_t>(state.range(0));
  workload::GeneratorOptions g;
  g.num_jobs = 250000;
  g.horizon_s = 250000.0 * 0.02;  // dense arrivals keep 10k servers cycling
  g.seed = 11;
  const auto jobs = workload::GoogleTraceGenerator(g).generate();
  std::int64_t total_events = 0;
  for (auto _ : state) {
    sim::RoundRobinAllocator alloc;
    sim::FixedTimeoutPolicy power(30.0);
    sim::ShardedClusterConfig cfg;
    cfg.cluster.num_servers = 10000;
    cfg.cluster.keep_job_records = false;
    cfg.cluster.server.t_on = 30.0;
    cfg.cluster.server.t_off = 10.0;
    cfg.num_shards = num_shards;
    cfg.execution = sim::ShardedClusterConfig::Execution::kParallel;
    sim::ShardedCluster cluster(cfg, alloc, power);
    cluster.load_jobs(jobs);
    cluster.run();
    total_events += static_cast<std::int64_t>(cluster.events_processed());
  }
  state.SetItemsProcessed(total_events);
}
BENCHMARK(BM_ShardedEventThroughput)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_TelemetryCounter(benchmark::State& state) {
  // Cost of the telemetry::count hot helper, disabled (arg 0: the tax every
  // instrumentation site pays in a normal run — a relaxed load + branch) and
  // enabled (arg 1: relaxed fetch_add on the thread's shard slab).
  const bool on = state.range(0) != 0;
  telemetry::set_enabled(on);
  const telemetry::MetricId id = telemetry::global_registry().counter("bench.telemetry_counter");
  for (auto _ : state) {
    telemetry::count(id);
  }
  telemetry::set_enabled(false);
  telemetry::global_registry().reset();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TelemetryCounter)->Arg(0)->Arg(1);

void BM_TelemetryShardedEventThroughput(benchmark::State& state) {
  // BM_ShardedEventThroughput/2 with full metric collection enabled: the
  // end-to-end telemetry overhead story (per-event counters on the shard
  // drain hot path plus the flush/sync instrumentation). Compare items/s
  // against the telemetry-off cell above.
  workload::GeneratorOptions g;
  g.num_jobs = 250000;
  g.horizon_s = 250000.0 * 0.02;
  g.seed = 11;
  const auto jobs = workload::GoogleTraceGenerator(g).generate();
  telemetry::set_enabled(true);
  std::int64_t total_events = 0;
  for (auto _ : state) {
    sim::RoundRobinAllocator alloc;
    sim::FixedTimeoutPolicy power(30.0);
    sim::ShardedClusterConfig cfg;
    cfg.cluster.num_servers = 10000;
    cfg.cluster.keep_job_records = false;
    cfg.cluster.server.t_on = 30.0;
    cfg.cluster.server.t_off = 10.0;
    cfg.num_shards = 2;
    cfg.execution = sim::ShardedClusterConfig::Execution::kParallel;
    sim::ShardedCluster cluster(cfg, alloc, power);
    cluster.load_jobs(jobs);
    cluster.run();
    total_events += static_cast<std::int64_t>(cluster.events_processed());
  }
  telemetry::set_enabled(false);
  telemetry::global_registry().reset();
  state.SetItemsProcessed(total_events);
}
BENCHMARK(BM_TelemetryShardedEventThroughput)->Unit(benchmark::kMillisecond);

void BM_StateEncoding(benchmark::State& state) {
  core::StateEncoderOptions o;
  o.num_servers = 30;
  o.num_groups = 3;
  core::StateEncoder enc(o);
  sim::RoundRobinAllocator alloc;
  sim::AlwaysOnPolicy power;
  sim::ClusterConfig cfg;
  cfg.num_servers = 30;
  sim::Cluster cluster(cfg, alloc, power);
  sim::Job job;
  job.id = 1;
  job.duration = 100.0;
  job.demand = sim::ResourceVector{0.1, 0.1, 0.01};
  for (auto _ : state) {
    auto s = enc.full_state(cluster, job);
    benchmark::DoNotOptimize(s.data());
  }
}
BENCHMARK(BM_StateEncoding);

}  // namespace

BENCHMARK_MAIN();
