// Reproduces Table I: accumulated energy, accumulated latency and average
// power at 95,000 jobs for M = 30 and M = 40, under round-robin, DRL-only
// and the hierarchical framework.
//
// All six cells ("table1/m30/*" + "table1/m40/*" from the builtin registry)
// run as one ParallelRunner batch; each cluster size shares one cached
// trace. Results come back order-stable, so rows print in registry order.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"

namespace {

struct PaperRow {
  const char* system;
  double energy_kwh;
  double latency_1e6s;
  double power_w;
};

// Paper values (Table I) for reference printing.
constexpr PaperRow kPaperM30[] = {
    {"round-robin", 441.47, 85.20, 2627.79},
    {"drl-only", 242.25, 109.73, 1441.96},
    {"hierarchical", 203.21, 92.53, 1209.58},
};
constexpr PaperRow kPaperM40[] = {
    {"round-robin", 561.13, 85.20, 3340.06},
    {"drl-only", 273.41, 108.76, 1627.44},
    {"hierarchical", 224.51, 94.26, 1336.37},
};

void report_for_machines(std::size_t machines, std::size_t jobs, const PaperRow* paper,
                         const std::vector<hcrl::core::ExperimentResult>& results) {
  std::printf("\n=== Table I, M = %zu, %zu jobs ===\n", machines, jobs);
  std::printf("--- paper reports (at 95,000 jobs on the real Google trace) ---\n");
  for (int i = 0; i < 3; ++i) {
    std::printf("%-22s %12.2f %16.2f %12.2f\n", paper[i].system, paper[i].energy_kwh,
                paper[i].latency_1e6s, paper[i].power_w);
  }
  std::printf("--- this reproduction (synthetic Google-like trace) ---\n");
  hcrl::bench::print_result_header();
  for (const auto& r : results) hcrl::bench::print_result_row(r);

  const double rr = results[0].final_snapshot.energy_joules;
  const double drl = results[1].final_snapshot.energy_joules;
  const double hier = results[2].final_snapshot.energy_joules;
  std::printf("energy saving vs round-robin: drl-only %.1f%%, hierarchical %.1f%% "
              "(paper: %.1f%%, %.1f%%)\n",
              100.0 * (1.0 - drl / rr), 100.0 * (1.0 - hier / rr),
              100.0 * (1.0 - paper[1].energy_kwh / paper[0].energy_kwh),
              100.0 * (1.0 - paper[2].energy_kwh / paper[0].energy_kwh));
  std::printf("hierarchical vs drl-only: energy %.1f%% lower, latency %.1f%% lower "
              "(paper: 16.1%%, 16.7%%)\n",
              100.0 * (1.0 - hier / drl),
              100.0 * (1.0 - results[2].final_snapshot.accumulated_latency_s /
                                 results[1].final_snapshot.accumulated_latency_s));
}

}  // namespace

// Real-trace cells: the bundled TraceCatalog fixtures plus their
// calibrated-synthetic twins, run through the same sweep machinery. The
// paper evaluates on a real Google trace segment; these cells are this
// reproduction's equivalent at fixture scale. Skipped (with a notice) when
// the data/traces fixtures cannot be found.
void report_real_trace_cells() {
  std::vector<hcrl::core::Scenario> scenarios;
  const auto& registry = hcrl::core::ScenarioRegistry::builtin();
  try {
    for (const char* name : {"google2011-sample", "google2011-calibrated",
                             "alibaba2018-sample", "alibaba2018-calibrated"}) {
      scenarios.push_back(registry.make(name, 0));
      scenarios.back().config.checkpoint_every_jobs = 0;
    }
  } catch (const std::exception& e) {
    std::printf("\n=== real-trace cells skipped: %s ===\n", e.what());
    return;
  }
  const auto results = hcrl::bench::run_parallel_sweep(scenarios);
  std::printf("\n=== real-trace cells (bundled fixture slices, 6 servers) ===\n");
  std::printf("%-26s ", "scenario");
  hcrl::bench::print_result_header();
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("%-26s ", scenarios[i].name.c_str());
    hcrl::bench::print_result_row(results[i]);
  }
}

int main() {
  const std::size_t jobs = hcrl::bench::env_jobs(95000);

  // One batch: m30's three systems first (registry order), then m40's.
  const auto scenarios = hcrl::core::ScenarioRegistry::builtin().make_group("table1/", jobs);
  const auto results = hcrl::bench::run_parallel_sweep(scenarios);

  report_for_machines(30, jobs, kPaperM30, {results.begin(), results.begin() + 3});
  report_for_machines(40, jobs, kPaperM40, {results.begin() + 3, results.end()});

  report_real_trace_cells();
  return 0;
}
