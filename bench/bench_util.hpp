// Shared helpers for the reproduction benchmarks.
//
// Each bench binary regenerates one table or figure of the paper via the
// Scenario/Runner API (src/core/scenario.hpp, src/core/runner.hpp). Scale
// and parallelism can be overridden for quick runs:
//   HCRL_BENCH_JOBS=5000 ./bench_table1     (default: the paper's 95,000)
//   HCRL_BENCH_THREADS=4 ./bench_fig9       (default: one per hardware thread)
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/core/runner.hpp"
#include "src/core/scenario.hpp"

namespace hcrl::bench {

inline std::size_t env_jobs(std::size_t fallback) {
  if (const char* v = std::getenv("HCRL_BENCH_JOBS")) {
    const long long n = std::atoll(v);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return fallback;
}

/// Worker count for the paper-figure sweeps; 0 = one per hardware thread
/// (the ParallelRunner default).
inline std::size_t env_threads(std::size_t fallback = 0) {
  if (const char* v = std::getenv("HCRL_BENCH_THREADS")) {
    const long long n = std::atoll(v);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return fallback;
}

/// Paper-faithful base configuration (kept for compatibility; the benches
/// themselves now pull named scenarios from ScenarioRegistry::builtin()).
inline core::ExperimentConfig paper_config(std::size_t servers, std::size_t jobs) {
  return core::paper_experiment_config(servers, jobs);
}

inline void print_result_row(const core::ExperimentResult& r) {
  const auto& s = r.final_snapshot;
  std::printf("%-22s %12.2f %16.2f %12.2f %10.1f\n", r.system.c_str(), s.energy_kwh(),
              s.accumulated_latency_s / 1e6, s.average_power_watts, r.wall_seconds);
}

inline void print_result_header() {
  std::printf("%-22s %12s %16s %12s %10s\n", "system", "energy(kWh)", "latency(1e6 s)",
              "power(W)", "wall(s)");
}

/// Run a scenario batch on a ParallelRunner and report how the sweep scaled:
/// sum of per-scenario walls (the serial-equivalent cost) versus the sweep's
/// actual elapsed wall clock.
inline std::vector<core::ExperimentResult> run_parallel_sweep(
    const std::vector<core::Scenario>& scenarios) {
  core::ParallelRunner runner(env_threads());
  const auto t0 = std::chrono::steady_clock::now();
  auto results = runner.run(scenarios);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  double serial_equiv = 0.0;
  for (const auto& r : results) serial_equiv += r.wall_seconds;
  // The summed per-scenario walls equal a serial run's elapsed time only
  // when each worker has a dedicated core; on oversubscribed machines the
  // per-scenario walls inflate with timesharing, so the ratio is an upper
  // bound there.
  std::printf("\nsweep: %zu scenarios on %zu workers: %.1f s elapsed; per-scenario walls "
              "sum to %.1f s (~%.2fx vs serial on dedicated cores)\n",
              scenarios.size(), runner.num_workers(), elapsed, serial_equiv,
              elapsed > 0.0 ? serial_equiv / elapsed : 0.0);
  return results;
}

}  // namespace hcrl::bench
