// Shared helpers for the reproduction benchmarks.
//
// Each bench binary regenerates one table or figure of the paper. Scale can
// be overridden for quick runs:
//   HCRL_BENCH_JOBS=5000 ./bench_table1     (default: the paper's 95,000)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/core/experiment.hpp"

namespace hcrl::bench {

inline std::size_t env_jobs(std::size_t fallback) {
  if (const char* v = std::getenv("HCRL_BENCH_JOBS")) {
    const long long n = std::atoll(v);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return fallback;
}

/// Paper-faithful base configuration: M servers, one-week-equivalent trace
/// scaled to `jobs`, P(0%)=87 W, P(100%)=145 W, Ton=Toff=30 s.
inline core::ExperimentConfig paper_config(std::size_t servers, std::size_t jobs) {
  core::ExperimentConfig cfg;
  cfg.num_servers = servers;
  // K must divide M; the paper varies K in 2..4 (30 -> 3 groups, 40 -> 4).
  cfg.num_groups = servers % 3 == 0 ? 3 : (servers % 4 == 0 ? 4 : 2);
  cfg.trace.num_jobs = jobs;
  cfg.trace.horizon_s = sim::kSecondsPerWeek * static_cast<double>(jobs) / 95000.0;
  cfg.trace.seed = 2011;  // the Google trace month
  cfg.pretrain_jobs = jobs / 4;
  cfg.checkpoint_every_jobs = 0;
  return cfg;
}

inline void print_result_row(const core::ExperimentResult& r) {
  const auto& s = r.final_snapshot;
  std::printf("%-22s %12.2f %16.2f %12.2f %10.1f\n", r.system.c_str(), s.energy_kwh(),
              s.accumulated_latency_s / 1e6, s.average_power_watts, r.wall_seconds);
}

inline void print_result_header() {
  std::printf("%-22s %12s %16s %12s %10s\n", "system", "energy(kWh)", "latency(1e6 s)",
              "power(W)", "wall(s)");
}

}  // namespace hcrl::bench
