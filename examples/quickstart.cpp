// Quickstart: run the hierarchical framework against the baselines on a
// small synthetic trace and print the resulting energy/latency summary.
//
//   ./quickstart [num_jobs]
//
// This exercises the whole public API: trace generation, the DRL global
// tier, the LSTM+RL local tier, and the metrics pipeline.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/core/experiment.hpp"

int main(int argc, char** argv) {
  using namespace hcrl;

  std::size_t num_jobs = 8000;
  if (argc > 1) num_jobs = static_cast<std::size_t>(std::stoull(argv[1]));

  core::ExperimentConfig cfg;
  cfg.num_servers = 30;
  cfg.num_groups = 3;
  cfg.trace.num_jobs = num_jobs;
  // Scale the horizon with the job count to keep the offered load constant.
  cfg.trace.horizon_s = sim::kSecondsPerWeek * static_cast<double>(num_jobs) / 95000.0;
  cfg.pretrain_jobs = num_jobs / 4;
  cfg.checkpoint_every_jobs = 0;

  std::printf("Simulating %zu jobs on %zu servers (horizon %.1f h)\n", num_jobs,
              cfg.num_servers, cfg.trace.horizon_s / 3600.0);
  std::printf("%-22s %12s %14s %12s %10s\n", "system", "energy(kWh)", "latency(1e6 s)",
              "power(W)", "wall(s)");

  const auto systems = {core::SystemKind::kRoundRobin, core::SystemKind::kDrlOnly,
                        core::SystemKind::kHierarchical};
  for (core::SystemKind kind : systems) {
    core::ExperimentConfig run_cfg = cfg;
    run_cfg.system = kind;
    const core::ExperimentResult r = core::run_experiment(run_cfg);
    const auto& s = r.final_snapshot;
    std::printf("%-22s %12.2f %14.3f %12.1f %10.1f\n", r.system.c_str(), s.energy_kwh(),
                s.accumulated_latency_s / 1e6, s.average_power_watts, r.wall_seconds);
  }
  return 0;
}
