// Example: declarative experiment runner on the Scenario/Runner API.
//
//   ./run_experiment path/to/experiment.conf
//   ./run_experiment --inline "system = drl-only" "trace.num_jobs = 5000"
//   ./run_experiment --scenario fig8/hierarchical 5000
//   ./run_experiment --trace my_trace.csv [system]
//   ./run_experiment --catalog google2011-sample [system]
//   ./run_experiment --list-scenarios
//   ./run_experiment --list-policies
//
// Telemetry (combinable with every mode above):
//   --metrics-json <path>   write an hcrl-metrics-v1 snapshot (+ sibling
//                           run-manifest JSON) after the run
//   --chrome-trace <path>   write a chrome://tracing / Perfetto trace
//
// Config keys are documented in src/core/config_binding.hpp; unknown keys
// are rejected. --scenario pulls a named scenario from the builtin registry
// at the given job scale; --trace runs a workload::trace_io CSV (e.g. the
// output of `trace_tools convert`) and --catalog a bundled real-trace
// dataset, both on the tiny 6-server cluster under the given system
// (default hierarchical). Checkpoints stream as CSV on stdout *while the
// simulation runs* (a CsvCheckpointObserver), then the final metrics print.
#include <cstdio>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/common/config.hpp"
#include "src/core/config_binding.hpp"
#include "src/core/runner.hpp"
#include "src/core/scenario.hpp"
#include "src/nn/matrix.hpp"
#include "src/nn/precision.hpp"
#include "src/policy/registry.hpp"
#include "src/telemetry/export.hpp"

int main(int argc, char** argv) {
  using namespace hcrl;

  // The telemetry flags are orthogonal to the mode dispatch below: strip
  // them (and their values) out of the argument list first.
  std::string metrics_path;
  std::string trace_path;
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (i > 0 && (a == "--metrics-json" || a == "--chrome-trace")) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a path argument\n", a.c_str());
        return 1;
      }
      (a == "--metrics-json" ? metrics_path : trace_path) = argv[++i];
      continue;
    }
    args.push_back(a);
  }
  const int nargs = static_cast<int>(args.size());
  auto arg = [&](int i) { return args[static_cast<std::size_t>(i)].c_str(); };

  const std::string mode = nargs >= 2 ? args[1] : "";

  if (mode == "--list-scenarios") {
    for (const auto& name : core::ScenarioRegistry::builtin().names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  if (mode == "--list-policies") {
    policy::print_policy_listing(std::cout);
    return 0;
  }

  core::Scenario scenario;
  try {
    if (mode == "--scenario") {
      if (nargs < 3) {
        std::fprintf(stderr, "usage: %s --scenario <name> [jobs]\n", arg(0));
        return 1;
      }
      const std::size_t jobs =
          nargs >= 4 ? static_cast<std::size_t>(std::stoull(args[3])) : 5000;
      scenario = core::ScenarioRegistry::builtin().make(args[2], jobs);
    } else if (mode == "--trace" || mode == "--catalog") {
      if (nargs < 3) {
        std::fprintf(stderr, "usage: %s %s <arg> [system]\n", arg(0), mode.c_str());
        return 1;
      }
      const core::SystemKind system =
          nargs >= 4 ? core::system_kind_from_string(args[3]) : core::SystemKind::kHierarchical;
      if (mode == "--catalog") {
        scenario = core::catalog_scenario(args[2], system);
        scenario.name = std::string("catalog:") + args[2];
      } else {
        scenario = core::trace_scenario(
            core::make_cached(std::make_shared<core::FileTraceSource>(args[2])), system);
        scenario.name = std::string("trace:") + args[2];
      }
    } else {
      common::Config raw;
      if (mode == "--inline") {
        std::ostringstream text;
        for (int i = 2; i < nargs; ++i) text << args[static_cast<std::size_t>(i)] << "\n";
        raw = common::Config::from_string(text.str());
      } else if (nargs >= 2) {
        raw = common::Config::from_file(args[1]);
      } else {
        std::fprintf(stderr,
                     "usage: %s <config-file> | --inline \"key = value\" ... | "
                     "--scenario <name> [jobs] | --list-scenarios | --list-policies\n"
                     "  [--metrics-json <path>] [--chrome-trace <path>]\n"
                     "running built-in demo config instead.\n\n",
                     arg(0));
        raw = common::Config::from_string(
            "system = hierarchical\n"
            "trace.num_jobs = 5000\n"
            "trace.horizon_s = 31832\n"  // keeps the paper's arrival rate
            "pretrain_jobs = 1500\n"
            "checkpoint_every_jobs = 1000\n");
      }
      scenario.config = core::experiment_config_from(raw);
      scenario.name = core::to_string(scenario.config.system);
    }
    scenario.validate();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  // Everything past argument handling runs under one catch: a runtime
  // failure (trace I/O, simulation invariant, telemetry write) prints
  // `error: <what>` and exits 1 instead of std::terminate'ing.
  try {
    telemetry::CliSession telemetry_session(metrics_path, trace_path);

    std::optional<core::CsvCheckpointObserver> csv;
    if (scenario.materialized().checkpoint_every_jobs > 0) csv.emplace(std::cout);
    core::SerialRunner runner;
    const auto results = runner.run({scenario}, csv.has_value() ? &*csv : nullptr);
    const core::ExperimentResult& r = results.front();

    if (telemetry_session.active()) {
      const core::ExperimentConfig cfg = scenario.materialized();
      telemetry::RunManifest manifest;
      manifest.tool = "run_experiment";
      manifest.scenario = scenario.name;
      manifest.precision = nn::to_string(cfg.precision);
      manifest.shards = static_cast<int>(cfg.shards);
      manifest.gemm_threads = static_cast<int>(cfg.gemm_threads > 0 ? cfg.gemm_threads
                                                                    : nn::gemm_threads());
      manifest.wall_seconds = r.wall_seconds;
      manifest.extra["system"] = r.system;
      manifest.extra["allocator"] = r.allocator;
      manifest.extra["power"] = r.power;
      telemetry_session.finish(manifest);
    }

    const auto& s = r.final_snapshot;
    std::printf("\nscenario:          %s\n", scenario.name.c_str());
    std::printf("system:            %s\n", r.system.c_str());
    std::printf("trace:             %s\n", r.trace_stats.to_string().c_str());
    std::printf("jobs completed:    %zu\n", s.jobs_completed);
    std::printf("energy:            %.2f kWh\n", s.energy_kwh());
    std::printf("acc. latency:      %.3fe6 s (%.1f s/job)\n", s.accumulated_latency_s / 1e6,
                s.average_latency_s());
    std::printf("average power:     %.1f W\n", s.average_power_watts);
    if (scenario.materialized().faults.enabled()) {
      const auto& f = s.faults;
      std::printf("faults:            %zu crashes, %zu evictions, %zu retries, %zu lost "
                  "(%.1f CPU-s lost, MTTR %.1f s)\n",
                  f.crashes, f.evictions, f.retries, f.jobs_lost, f.lost_cpu_seconds,
                  f.mttr_s());
    }
    std::printf("wall time:         %.1f s\n", r.wall_seconds);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
