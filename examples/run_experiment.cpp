// Example: declarative experiment runner.
//
//   ./run_experiment path/to/experiment.conf
//   ./run_experiment --inline "system = drl-only" "trace.num_jobs = 5000"
//
// Config keys are documented in src/core/config_binding.hpp; unknown keys
// are rejected. Prints the final metrics and (when checkpoints are enabled)
// the energy/latency series as CSV on stdout.
#include <cstdio>
#include <sstream>
#include <string>

#include "src/common/config.hpp"
#include "src/core/config_binding.hpp"
#include "src/core/experiment.hpp"

int main(int argc, char** argv) {
  using namespace hcrl;

  common::Config raw;
  if (argc >= 2 && std::string(argv[1]) == "--inline") {
    std::ostringstream text;
    for (int i = 2; i < argc; ++i) text << argv[i] << "\n";
    raw = common::Config::from_string(text.str());
  } else if (argc >= 2) {
    raw = common::Config::from_file(argv[1]);
  } else {
    std::fprintf(stderr,
                 "usage: %s <config-file> | --inline \"key = value\" ...\n"
                 "running built-in demo config instead.\n\n",
                 argv[0]);
    raw = common::Config::from_string(
        "system = hierarchical\n"
        "trace.num_jobs = 5000\n"
        "trace.horizon_s = 31832\n"  // keeps the paper's arrival rate
        "pretrain_jobs = 1500\n"
        "checkpoint_every_jobs = 1000\n");
  }

  core::ExperimentConfig cfg;
  try {
    cfg = core::experiment_config_from(raw);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "config error: %s\n", e.what());
    return 1;
  }

  const core::ExperimentResult r = core::run_experiment(cfg);
  const auto& s = r.final_snapshot;
  std::printf("system:            %s\n", r.system.c_str());
  std::printf("trace:             %s\n", r.trace_stats.to_string().c_str());
  std::printf("jobs completed:    %zu\n", s.jobs_completed);
  std::printf("energy:            %.2f kWh\n", s.energy_kwh());
  std::printf("acc. latency:      %.3fe6 s (%.1f s/job)\n", s.accumulated_latency_s / 1e6,
              s.average_latency_s());
  std::printf("average power:     %.1f W\n", s.average_power_watts);
  std::printf("wall time:         %.1f s\n", r.wall_seconds);

  if (!r.series.empty()) {
    std::printf("\njobs,sim_time_s,acc_latency_s,energy_kwh,avg_power_w\n");
    for (const auto& row : r.series) {
      std::printf("%zu,%.1f,%.1f,%.4f,%.1f\n", row.jobs_completed, row.sim_time_s,
                  row.accumulated_latency_s, row.energy_kwh, row.average_power_w);
    }
  }
  return 0;
}
