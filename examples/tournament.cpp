// Tournament CLI: run a {policy combo} × {scenario} grid and emit the
// leaderboard.
//
//   ./tournament                                   # default combos × scenarios
//   ./tournament --combos best-fit+immediate-sleep,tetris+rl-window
//   ./tournament --scenarios tiny/round-robin,google2011-sample
//   ./tournament --jobs 1000 --sla 120 --workers 4
//   ./tournament --out-dir artifacts/              # leaderboard.csv + cells.csv
//   ./tournament --serial                          # SerialRunner (default: parallel)
//   ./tournament --no-timing                       # drop wall-clock columns
//   ./tournament --metrics-json m.json --chrome-trace t.json  # telemetry
//   ./tournament --list-policies | --list-scenarios
//
// Combo sugar (see src/policy/tournament.hpp): `random-<k>`,
// `fixed-timeout-<seconds>`, `rl-<predictor>`. The leaderboard is printed to
// stdout; --out-dir additionally writes leaderboard.csv and the per-cell
// cells.csv for CI artifact upload. Every column except wall_seconds /
// decisions_per_sec is bit-identical between --serial and the parallel
// default (the runner determinism contract).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/runner.hpp"
#include "src/core/scenario.hpp"
#include "src/nn/matrix.hpp"
#include "src/nn/precision.hpp"
#include "src/policy/registry.hpp"
#include "src/policy/tournament.hpp"
#include "src/telemetry/export.hpp"

namespace {

using namespace hcrl;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options]\n"
               "  --combos a+b,c+d     policy combos (default: built-in heuristic set)\n"
               "  --scenarios n1,n2    scenario registry names (default: built-in set)\n"
               "  --jobs N             trace scale per cell (default 2000)\n"
               "  --sla SECONDS        SLA latency threshold (default 300; 0 disables)\n"
               "  --workers N          parallel workers (default: hardware)\n"
               "  --serial             run cells serially\n"
               "  --out-dir DIR        write leaderboard.csv and cells.csv into DIR\n"
               "  --no-timing          omit wall-clock/decisions-per-sec columns\n"
               "  --watchdog SECONDS   per-cell wall-clock deadline (0 disables); a cell\n"
               "                       exceeding it becomes a per-cell error outcome\n"
               "  --journal PATH       crash-safe resume journal: finished cells append\n"
               "                       here and are skipped (byte-identically) on rerun\n"
               "  --metrics-json PATH  write an hcrl-metrics-v1 snapshot (+ manifest)\n"
               "  --chrome-trace PATH  write a chrome://tracing / Perfetto trace\n"
               "  --list-policies      list registered policies and exit\n"
               "  --list-scenarios     list scenario registry names and exit\n",
               argv0);
  return 1;
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  policy::TournamentOptions opts;
  bool serial = false;
  bool timing = true;
  std::size_t workers = 0;
  std::string out_dir;
  std::string metrics_path;
  std::string trace_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    try {
      if (arg == "--list-policies") {
        policy::print_policy_listing(std::cout);
        return 0;
      } else if (arg == "--list-scenarios") {
        for (const auto& name : core::ScenarioRegistry::builtin().names()) {
          std::printf("%s\n", name.c_str());
        }
        return 0;
      } else if (arg == "--combos") {
        for (const std::string& spec : split_csv(next())) {
          opts.combos.push_back(policy::combo_from_string(spec));
        }
      } else if (arg == "--scenarios") {
        opts.scenario_names = split_csv(next());
      } else if (arg == "--jobs") {
        opts.jobs = static_cast<std::size_t>(std::stoull(next()));
      } else if (arg == "--sla") {
        opts.sla_latency_s = std::stod(next());
      } else if (arg == "--watchdog") {
        opts.watchdog_s = std::stod(next());
      } else if (arg == "--journal") {
        opts.journal_path = next();
      } else if (arg == "--workers") {
        workers = static_cast<std::size_t>(std::stoull(next()));
      } else if (arg == "--serial") {
        serial = true;
      } else if (arg == "--out-dir") {
        out_dir = next();
      } else if (arg == "--no-timing") {
        timing = false;
      } else if (arg == "--metrics-json") {
        metrics_path = next();
      } else if (arg == "--chrome-trace") {
        trace_path = next();
      } else {
        return usage(argv[0]);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: bad argument %s: %s\n", arg.c_str(), e.what());
      return 1;
    }
  }

  const auto columns = timing ? policy::LeaderboardColumns::kWithTiming
                              : policy::LeaderboardColumns::kDeterministic;
  try {
    telemetry::CliSession telemetry_session(metrics_path, trace_path);
    core::SerialRunner serial_runner;
    core::ParallelRunner parallel_runner(workers);
    core::Runner& runner =
        serial ? static_cast<core::Runner&>(serial_runner) : parallel_runner;
    const policy::TournamentResult result = policy::run_tournament(opts, runner);

    if (telemetry_session.active()) {
      telemetry::RunManifest manifest;
      manifest.tool = "tournament";
      manifest.scenario = std::to_string(result.cells.size()) + " cells (" +
                          std::to_string(result.combos.size()) + " combos x " +
                          std::to_string(result.scenarios.size()) + " scenarios)";
      manifest.precision = nn::to_string(nn::default_precision());
      manifest.gemm_threads = static_cast<int>(nn::gemm_threads());
      double wall = 0.0;
      for (const auto& cell : result.cells) {
        if (cell.ok) wall += cell.result.wall_seconds;
      }
      manifest.wall_seconds = wall;
      manifest.extra["jobs_per_cell"] = std::to_string(opts.jobs);
      manifest.extra["runner"] = serial ? "serial" : "parallel";
      telemetry_session.finish(manifest);
    }

    std::size_t failed = 0;
    for (const auto& cell : result.cells) {
      if (!cell.ok) {
        ++failed;
        std::fprintf(stderr, "cell failed: %s | %s: %s\n", cell.scenario.c_str(),
                     cell.combo.label().c_str(), cell.error.c_str());
      }
    }

    policy::write_leaderboard_csv(std::cout, result, columns);
    if (!out_dir.empty()) {
      const std::string lb_path = out_dir + "/leaderboard.csv";
      const std::string cells_path = out_dir + "/cells.csv";
      std::ofstream lb(lb_path);
      std::ofstream cells(cells_path);
      if (!lb || !cells) {
        std::fprintf(stderr, "error: cannot write into %s\n", out_dir.c_str());
        return 1;
      }
      policy::write_leaderboard_csv(lb, result, columns);
      policy::write_cells_csv(cells, result, columns);
      std::fprintf(stderr, "wrote %s and %s\n", lb_path.c_str(), cells_path.c_str());
    }
    std::fprintf(stderr, "%zu cells (%zu failed), %zu combos, %zu scenarios\n",
                 result.cells.size(), failed, result.combos.size(), result.scenarios.size());
    return failed == result.cells.size() ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
