// trace_tool: the trace ingestion & calibration CLI.
//
//   trace_tools generate  [num_jobs] [out.csv]
//       Synthesize a Google-like trace (the original demo) and round-trip
//       it through trace_io.
//   trace_tools convert   <format> <raw.csv> <out.csv> [max_jobs]
//       Parse a raw public-trace slice (google2011 | alibaba2018 |
//       azure2017), normalize it, and write the canonical trace CSV.
//   trace_tools inspect   <trace.csv>
//       Print statistics and histograms of a canonical trace.
//   trace_tools slice     <trace.csv> <out.csv> <start_s> <end_s> [max_jobs]
//       Cut a time window (and optionally down-sample) from a canonical
//       trace; demands and durations pass through untouched.
//   trace_tools calibrate <trace.csv> [report.csv]
//       Fit synthetic-generator options to a canonical trace and print the
//       goodness-of-fit report (optionally as CSV for dashboards/CI).
//   trace_tools catalog
//       List the bundled datasets with provenance and fetch instructions.
//
// `convert` + `calibrate` on the bundled fixtures is the zero-download
// path: data/traces/*.sample.csv are checked-in slices in each dataset's
// raw schema; scripts/fetch_traces.sh documents getting the full data.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "src/common/stats.hpp"
#include "src/policy/registry.hpp"
#include "src/core/trace_source.hpp"  // core::infer_horizon_s
#include "src/workload/generator.hpp"
#include "src/workload/trace/adapters.hpp"
#include "src/workload/trace/calibrate.hpp"
#include "src/workload/trace/catalog.hpp"
#include "src/workload/trace/normalize.hpp"
#include "src/workload/trace_io.hpp"

namespace {

using namespace hcrl;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <command> ...\n"
               "  generate  [num_jobs] [out.csv]\n"
               "  convert   <google2011|alibaba2018|azure2017> <raw.csv> <out.csv> [max_jobs]\n"
               "  inspect   <trace.csv>\n"
               "  slice     <trace.csv> <out.csv> <start_s> <end_s> [max_jobs]\n"
               "  calibrate <trace.csv> [report.csv]\n"
               "  catalog\n"
               "  --list-policies\n",
               argv0);
  return 1;
}

void print_summary(const std::vector<sim::Job>& jobs, double horizon_s) {
  const auto stats = workload::compute_stats(jobs, horizon_s);
  std::printf("%s\n", stats.to_string().c_str());
  std::printf("offered CPU load on a 6-machine cluster: %.1f%%; on 30: %.1f%%\n",
              100.0 * stats.cpu_load(6), 100.0 * stats.cpu_load(30));
}

int cmd_generate(int argc, char** argv) {
  std::size_t jobs = 20000;
  if (argc > 2) jobs = static_cast<std::size_t>(std::stoull(argv[2]));
  const std::string path = argc > 3 ? argv[3] : "/tmp/hcrl_trace.csv";

  workload::GeneratorOptions opts;
  opts.num_jobs = jobs;
  opts.horizon_s = sim::kSecondsPerWeek * static_cast<double>(jobs) / 95000.0;
  opts.seed = 2011;

  std::printf("generating %zu jobs over %.1f hours...\n", jobs, opts.horizon_s / 3600.0);
  const auto trace = workload::GoogleTraceGenerator(opts).generate();
  print_summary(trace, opts.horizon_s);

  workload::write_trace_file(path, trace);
  std::printf("wrote %s\n", path.c_str());
  const auto loaded = workload::read_trace_file(path);
  std::printf("read back %zu jobs; round-trip %s\n", loaded.size(),
              loaded.size() == trace.size() ? "OK" : "MISMATCH");
  return loaded.size() == trace.size() ? 0 : 1;
}

int cmd_convert(int argc, char** argv) {
  if (argc < 5) return usage(argv[0]);
  const auto format = workload::trace::parse_format(argv[2]);
  const std::string raw_path = argv[3];
  const std::string out_path = argv[4];

  workload::trace::AdapterReport adapter_report;
  auto raw = workload::trace::parse_raw_trace_file(format, raw_path, {}, &adapter_report);
  std::printf("adapter[%s]: %s\n", workload::trace::to_string(format).c_str(),
              adapter_report.to_string().c_str());

  workload::trace::NormalizeOptions norm;
  if (argc > 5) norm.max_jobs = static_cast<std::size_t>(std::stoull(argv[5]));
  workload::trace::NormalizeReport norm_report;
  const auto jobs = workload::trace::normalize(std::move(raw), norm, &norm_report);
  std::printf("normalize: %s\n", norm_report.to_string().c_str());

  workload::write_trace_file(out_path, jobs);
  std::printf("wrote %zu jobs to %s\n", jobs.size(), out_path.c_str());
  print_summary(jobs, core::infer_horizon_s(jobs));
  return 0;
}

int cmd_inspect(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);
  const auto jobs = workload::read_trace_file(argv[2]);
  if (jobs.empty()) {
    std::printf("empty trace\n");
    return 0;
  }
  print_summary(jobs, core::infer_horizon_s(jobs));

  double max_dur = 0.0, max_cpu = 0.0;
  for (const auto& j : jobs) {
    max_dur = std::max(max_dur, j.duration);
    max_cpu = std::max(max_cpu, j.demand[0]);
  }
  common::Histogram duration_hist(0.0, max_dur * 1.001, 12);
  common::Histogram cpu_hist(0.0, max_cpu * 1.001, 10);
  common::RunningStats gaps;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    duration_hist.add(jobs[i].duration);
    cpu_hist.add(jobs[i].demand[0]);
    if (i > 0) gaps.add(jobs[i].arrival - jobs[i - 1].arrival);
  }
  std::printf("\njob duration histogram (s):\n%s\n", duration_hist.to_string(40).c_str());
  std::printf("cpu request histogram:\n%s\n", cpu_hist.to_string(40).c_str());
  std::printf("inter-arrival: mean %.2f s, stddev %.2f s, max %.1f s\n", gaps.mean(),
              gaps.stddev(), gaps.max());
  return 0;
}

int cmd_slice(int argc, char** argv) {
  if (argc < 6) return usage(argv[0]);
  auto jobs = workload::read_trace_file(argv[2]);
  const std::string out_path = argv[3];

  workload::trace::NormalizeOptions norm;
  norm.window_start_s = std::stod(argv[4]);
  norm.window_end_s = std::stod(argv[5]);
  if (argc > 6) norm.max_jobs = static_cast<std::size_t>(std::stoull(argv[6]));
  // Pass-through for everything but the window: canonical traces already
  // satisfy the simulator's ranges.
  norm.min_duration_s = std::numeric_limits<double>::min();
  norm.max_duration_s = std::numeric_limits<double>::infinity();
  norm.resource_floor = std::numeric_limits<double>::min();

  workload::trace::NormalizeReport report;
  const auto sliced = workload::trace::normalize(std::move(jobs), norm, &report);
  std::printf("slice: %s\n", report.to_string().c_str());
  workload::write_trace_file(out_path, sliced);
  std::printf("wrote %zu jobs to %s\n", sliced.size(), out_path.c_str());
  return 0;
}

int cmd_calibrate(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);
  const auto jobs = workload::read_trace_file(argv[2]);
  const auto result = workload::trace::calibrate(jobs);
  const auto& fit = result.options;

  std::printf("%s\n\n", result.report.to_string().c_str());
  std::printf("fitted GeneratorOptions (synthetic twin of this trace):\n");
  std::printf("  num_jobs=%zu horizon_s=%.1f seed=%llu\n", fit.num_jobs, fit.horizon_s,
              static_cast<unsigned long long>(fit.seed));
  std::printf("  duration: lognormal(mu=%.3f, sigma=%.3f) clip [%.1f, %.1f] s\n",
              fit.duration_log_mean, fit.duration_log_sigma, fit.min_duration_s,
              fit.max_duration_s);
  std::printf("  cpu: %.4f + Exp(%.4f) clip [%.4f, %.4f]\n", fit.cpu_min, fit.cpu_exp_mean,
              fit.cpu_min, fit.cpu_max);
  std::printf("  mem: cpu * U(%.3f, %.3f) clip [%.4f, %.4f]\n", fit.mem_ratio_lo,
              fit.mem_ratio_hi, fit.mem_min, fit.mem_max);
  std::printf("  disk: U(%.4f, %.4f)\n", fit.disk_lo, fit.disk_hi);
  std::printf("  arrivals: burst_multiplier=%.2f diurnal_amplitude=%.2f\n",
              fit.burst_multiplier, fit.diurnal_amplitude);

  if (argc > 3) {
    std::ofstream out(argv[3]);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", argv[3]);
      return 1;
    }
    result.report.write_csv(out);
    std::printf("wrote fit report to %s\n", argv[3]);
  }
  return 0;
}

int cmd_catalog() {
  const auto& catalog = workload::trace::TraceCatalog::builtin();
  const std::string dir = workload::trace::TraceCatalog::data_dir();
  std::printf("data directory: %s\n\n", dir.empty() ? "(not found)" : dir.c_str());
  for (const auto& name : catalog.names()) {
    const auto& e = catalog.entry(name);
    std::printf("%s  [%s]\n", name.c_str(), workload::trace::to_string(e.format).c_str());
    std::printf("  %s\n", e.description.c_str());
    std::printf("  fixture: %s\n", e.fixture_file.c_str());
    std::printf("  source:  %s\n", e.source_url.c_str());
    std::printf("  fetch:   %s\n\n", e.fetch_hint.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string command = argv[1];
  try {
    if (command == "generate") return cmd_generate(argc, argv);
    if (command == "convert") return cmd_convert(argc, argv);
    if (command == "inspect") return cmd_inspect(argc, argv);
    if (command == "slice") return cmd_slice(argc, argv);
    if (command == "calibrate") return cmd_calibrate(argc, argv);
    if (command == "catalog") return cmd_catalog();
    if (command == "--list-policies") {
      policy::print_policy_listing(std::cout);
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage(argv[0]);
}
