// Example: working with job traces.
//
// Generates a synthetic Google-like trace, validates its statistics, writes
// it to CSV, reads it back, and prints distribution summaries. The same CSV
// format accepts real traces (e.g. extracted from the Google cluster data),
// which then drop into every experiment in this repository.
//
//   ./trace_tools [num_jobs] [output.csv]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/common/stats.hpp"
#include "src/workload/generator.hpp"
#include "src/workload/trace_io.hpp"

int main(int argc, char** argv) {
  using namespace hcrl;

  std::size_t jobs = 20000;
  if (argc > 1) jobs = static_cast<std::size_t>(std::stoull(argv[1]));
  const std::string path = argc > 2 ? argv[2] : "/tmp/hcrl_trace.csv";

  workload::GeneratorOptions opts;
  opts.num_jobs = jobs;
  opts.horizon_s = sim::kSecondsPerWeek * static_cast<double>(jobs) / 95000.0;
  opts.seed = 2011;

  std::printf("generating %zu jobs over %.1f hours...\n", jobs, opts.horizon_s / 3600.0);
  workload::GoogleTraceGenerator gen(opts);
  const auto trace = gen.generate();

  const auto stats = workload::compute_stats(trace, opts.horizon_s);
  std::printf("%s\n", stats.to_string().c_str());
  std::printf("offered CPU load on a 30-machine cluster: %.1f%%\n\n",
              100.0 * stats.cpu_load(30));

  common::Histogram duration_hist(0.0, 7200.0, 12);
  common::Histogram cpu_hist(0.0, 0.4, 10);
  common::RunningStats gap_stats;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    duration_hist.add(trace[i].duration);
    cpu_hist.add(trace[i].demand[0]);
    if (i > 0) gap_stats.add(trace[i].arrival - trace[i - 1].arrival);
  }
  std::printf("job duration histogram (seconds):\n%s\n", duration_hist.to_string(40).c_str());
  std::printf("cpu request histogram:\n%s\n", cpu_hist.to_string(40).c_str());
  std::printf("inter-arrival: mean %.2f s, max %.1f s, p50 ~%.2f s\n\n", gap_stats.mean(),
              gap_stats.max(), duration_hist.quantile(0.5));

  workload::write_trace_file(path, trace);
  std::printf("wrote %s\n", path.c_str());
  const auto loaded = workload::read_trace_file(path);
  std::printf("read back %zu jobs; round-trip %s\n", loaded.size(),
              loaded.size() == trace.size() ? "OK" : "MISMATCH");
  return 0;
}
