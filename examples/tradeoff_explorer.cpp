// Example: explore the power/latency trade-off (the Fig. 10 experiment) at
// laptop scale. Sweeps the local-tier reward weight w of Eqn. (5) and prints
// a Pareto table, plus the fixed-timeout baselines for contrast. The sweep
// cells run as one scenario batch on a ParallelRunner worker pool.
//
//   ./tradeoff_explorer [num_jobs] [threads]   (threads 0 = one per core)
#include <cstdio>
#include <cstdlib>

#include "src/core/tradeoff.hpp"
#include "src/sim/types.hpp"

int main(int argc, char** argv) {
  using namespace hcrl;

  std::size_t jobs = 6000;
  if (argc > 1) jobs = static_cast<std::size_t>(std::stoull(argv[1]));

  core::TradeoffOptions opts;
  opts.threads = argc > 2 ? static_cast<std::size_t>(std::stoull(argv[2])) : 0;
  opts.base.num_servers = 30;
  opts.base.num_groups = 3;
  opts.base.trace.num_jobs = jobs;
  opts.base.trace.horizon_s = sim::kSecondsPerWeek * static_cast<double>(jobs) / 95000.0;
  opts.base.pretrain_jobs = jobs / 4;
  opts.base.checkpoint_every_jobs = 0;
  opts.local_weights = {0.2, 0.5, 0.8};
  opts.fixed_timeouts = {30.0, 90.0};
  opts.global_vm_weights = {0.01};

  std::printf("sweeping local weight w on %zu jobs, M = 30...\n\n", jobs);
  const auto result = core::explore_tradeoff(opts);

  std::printf("%-20s %8s %18s %18s\n", "system", "sweep", "avg latency (s)", "avg energy (Wh)");
  for (const auto& p : result.hierarchical) {
    std::printf("%-20s %8.2f %18.1f %18.2f\n", p.system.c_str(), p.sweep_value, p.avg_latency_s,
                p.avg_energy_wh);
  }
  for (const auto& curve : result.fixed_timeout_curves) {
    for (const auto& p : curve) {
      std::printf("%-20s %8.3f %18.1f %18.2f\n", p.system.c_str(), p.sweep_value,
                  p.avg_latency_s, p.avg_energy_wh);
    }
  }
  std::printf("\nLarger w favours power saving; smaller w favours latency. The adaptive\n"
              "timeout traces a curve fixed timeouts cannot reach (paper, Fig. 10).\n");
  return 0;
}
