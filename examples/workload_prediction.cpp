// Example: the local tier's LSTM workload predictor in isolation.
//
// Generates a bursty per-server arrival stream, trains the LSTM online
// (exactly as the power manager does), and prints predicted vs actual
// inter-arrival times alongside the linear baseline predictors.
//
//   ./workload_prediction [num_arrivals]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "src/common/rng.hpp"
#include "src/core/predictor.hpp"
#include "src/workload/arrival_process.hpp"

int main(int argc, char** argv) {
  using namespace hcrl;

  std::size_t n = 3000;
  if (argc > 1) n = static_cast<std::size_t>(std::stoull(argv[1]));

  // A bursty arrival stream similar to what one server sees after the
  // global tier consolidates jobs onto it.
  workload::ArrivalProcessOptions ap;
  ap.base_rate_hz = 1.0 / 120.0;
  ap.burst_multiplier = 6.0;
  ap.mean_burst_s = 400.0;
  ap.mean_calm_s = 2000.0;
  common::Rng rng(99);
  workload::ArrivalProcess process(ap, rng);

  std::vector<double> gaps;
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double next = process.next_after(t);
    gaps.push_back(next - t);
    t = next;
  }

  core::LstmPredictorOptions lstm_opts;  // the paper's 35-step / 30-unit LSTM
  auto lstm = core::make_predictor("lstm", lstm_opts);
  auto last = core::make_predictor("last-value", lstm_opts);
  auto mean = core::make_predictor("sliding-mean", lstm_opts);

  const std::size_t warmup = gaps.size() / 2;
  double err_lstm = 0.0, err_last = 0.0, err_mean = 0.0;
  std::size_t scored = 0;
  std::printf("online training on %zu inter-arrivals (first %zu warm-up)...\n", n, warmup);
  std::printf("\nsample predictions in the scored half:\n");
  std::printf("%8s %10s %10s %10s %10s\n", "i", "actual", "lstm", "last", "mean");
  for (std::size_t i = 0; i < gaps.size(); ++i) {
    if (i >= warmup) {
      const double pl = lstm->predict(), pv = last->predict(), pm = mean->predict();
      err_lstm += std::abs(std::log1p(pl) - std::log1p(gaps[i]));
      err_last += std::abs(std::log1p(pv) - std::log1p(gaps[i]));
      err_mean += std::abs(std::log1p(pm) - std::log1p(gaps[i]));
      ++scored;
      if (i % (gaps.size() / 16) == 0) {
        std::printf("%8zu %10.1f %10.1f %10.1f %10.1f\n", i, gaps[i], pl, pv, pm);
      }
    }
    lstm->observe(gaps[i]);
    last->observe(gaps[i]);
    mean->observe(gaps[i]);
  }

  std::printf("\nmean |log1p error| over %zu scored predictions:\n", scored);
  std::printf("  %-14s %8.4f\n", "lstm", err_lstm / scored);
  std::printf("  %-14s %8.4f\n", "last-value", err_last / scored);
  std::printf("  %-14s %8.4f\n", "sliding-mean", err_mean / scored);
  return 0;
}
