#!/usr/bin/env python3
"""Convert bench_micro's Google-Benchmark CSV into a schema-stable JSON.

Usage:
    bench_micro --benchmark_format=csv --benchmark_repetitions=3 \
        --benchmark_report_aggregates_only > bench_micro.csv
    python3 scripts/bench_to_json.py bench_micro.csv BENCH_micro.json \
        [--note "host description"]

The output maps every benchmark cell to its median real/CPU time in
nanoseconds (falling back to the single reported run when the CSV carries no
aggregates), so perf trajectories can be diffed across commits and CI runs
without re-parsing benchmark-library output. The schema is intentionally
frozen: bump `schema` if a field ever changes meaning.
"""

import argparse
import csv
import json
import sys


SCHEMA = "hcrl-bench-micro-v1"

# Google benchmark emits one row per (cell, aggregate); aggregate rows carry
# a "_mean"/"_median"/"_stddev"/"_cv" suffix on the name. We keep the median
# (preferred) or the plain single-run row.
_AGGREGATES = ("_mean", "_median", "_stddev", "_cv", "_min", "_max")


def _to_ns(value, unit):
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit)
    if scale is None:
        raise ValueError(f"unknown time_unit '{unit}'")
    return float(value) * scale


def parse_csv(path):
    cells = {}
    with open(path, newline="") as f:
        # The CSV may be preceded by junk lines (context printed by wrappers);
        # skip until the header row.
        lines = f.read().splitlines()
    header_idx = next(
        (i for i, line in enumerate(lines) if line.startswith("name,")), None
    )
    if header_idx is None:
        raise SystemExit(f"{path}: no Google-Benchmark CSV header found")
    reader = csv.DictReader(lines[header_idx:])
    for row in reader:
        name = (row.get("name") or "").strip()
        if not name:
            continue
        if row.get("error_occurred") in ("true", "TRUE", "1"):
            continue
        aggregate = None
        cell = name
        for suffix in _AGGREGATES:
            if name.endswith(suffix):
                aggregate = suffix[1:]
                cell = name[: -len(suffix)]
                break
        if aggregate not in (None, "median"):
            continue  # keep only medians and plain runs
        try:
            entry = {
                "real_time_ns": _to_ns(row["real_time"], row["time_unit"]),
                "cpu_time_ns": _to_ns(row["cpu_time"], row["time_unit"]),
                "iterations": int(float(row["iterations"])),
                "aggregate": aggregate or "single",
            }
        except (KeyError, ValueError) as err:
            print(f"warning: skipping row '{name}': {err}", file=sys.stderr)
            continue
        ips = (row.get("items_per_second") or "").strip()
        if ips:
            entry["items_per_second"] = float(ips)
        # A median row always wins over a plain row of the same cell. Among
        # plain rows (repetitions without aggregates) the last one wins, so
        # the recorded value is a warmed-up run rather than the cold rep 1.
        if cell not in cells or entry["aggregate"] == "median" or \
                cells[cell]["aggregate"] != "median":
            cells[cell] = entry
    return cells


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("csv_path")
    ap.add_argument("json_path")
    ap.add_argument("--note", default="", help="free-form host/run description")
    ap.add_argument(
        "--require-prefix",
        action="append",
        default=[],
        metavar="PREFIX",
        help="fail unless at least one parsed cell name starts with PREFIX "
        "(repeatable); guards CI against silently dropping a benchmark",
    )
    args = ap.parse_args()

    cells = parse_csv(args.csv_path)
    if not cells:
        raise SystemExit(f"{args.csv_path}: no benchmark rows parsed")
    for prefix in args.require_prefix:
        if not any(cell.startswith(prefix) for cell in cells):
            raise SystemExit(
                f"{args.csv_path}: no benchmark cell matches required "
                f"prefix '{prefix}' (parsed: {', '.join(sorted(cells))})"
            )
    doc = {
        "schema": SCHEMA,
        "source": args.csv_path,
        "note": args.note,
        "cells": dict(sorted(cells.items())),
    }
    with open(args.json_path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=False)
        f.write("\n")
    print(f"{args.json_path}: {len(cells)} cells")


if __name__ == "__main__":
    main()
