#!/usr/bin/env bash
# One-shot tier-1 verify: configure, build, and run the full test suite.
# Mirrors ROADMAP.md's verify line exactly:
#   cmake -B build -S . && cmake --build build -j && cd build && ctest --output-on-failure -j
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S . && cmake --build build -j && cd build && ctest --output-on-failure -j
