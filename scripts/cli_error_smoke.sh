#!/usr/bin/env bash
# CLI error-path smoke: every user mistake must exit 1 with a one-line
# `error: <what>` on stderr — no stack traces, no std::terminate, no exit 0.
#
# Usage: cli_error_smoke.sh <build-dir>
set -u

BUILD_DIR=${1:?usage: cli_error_smoke.sh <build-dir>}
RUN_EXPERIMENT="$BUILD_DIR/examples/run_experiment"
TOURNAMENT="$BUILD_DIR/examples/tournament"
TRACE_TOOLS="$BUILD_DIR/examples/trace_tools"

failures=0

# expect_error <description> -- <command...>
# Passes when the command exits 1 AND prints "error:" on stderr.
expect_error() {
  local desc=$1
  shift 2
  local stderr_file
  stderr_file=$(mktemp)
  "$@" >/dev/null 2>"$stderr_file"
  local code=$?
  if [ "$code" -ne 1 ]; then
    echo "FAIL: $desc — expected exit 1, got $code" >&2
    failures=$((failures + 1))
  elif ! grep -q "error:" "$stderr_file"; then
    echo "FAIL: $desc — stderr lacks 'error:':" >&2
    sed 's/^/    /' "$stderr_file" >&2
    failures=$((failures + 1))
  else
    echo "ok: $desc"
  fi
  rm -f "$stderr_file"
}

# --- run_experiment ---------------------------------------------------------
expect_error "run_experiment: negative num_servers" \
  -- "$RUN_EXPERIMENT" --inline "num_servers = -3"
expect_error "run_experiment: duplicate config key" \
  -- "$RUN_EXPERIMENT" --inline "num_servers = 4
num_servers = 8"
expect_error "run_experiment: absurd faults.backoff_jitter" \
  -- "$RUN_EXPERIMENT" --inline "faults.backoff_jitter = 2"
expect_error "run_experiment: crashes enabled without repair" \
  -- "$RUN_EXPERIMENT" --inline "faults.mtbf_s = 100" "faults.mttr_s = 0"
expect_error "run_experiment: unknown scenario name" \
  -- "$RUN_EXPERIMENT" --scenario nope/nothing 100
expect_error "run_experiment: missing config file" \
  -- "$RUN_EXPERIMENT" /nonexistent/config.cfg
expect_error "run_experiment: missing trace file" \
  -- "$RUN_EXPERIMENT" --trace /nonexistent/trace.csv

# --- tournament -------------------------------------------------------------
expect_error "tournament: unknown combo" \
  -- "$TOURNAMENT" --combos definitely-not-a-policy+always-on --serial
expect_error "tournament: unknown scenario" \
  -- "$TOURNAMENT" --scenarios nope/nothing --serial --jobs 50
expect_error "tournament: non-numeric --jobs" \
  -- "$TOURNAMENT" --jobs banana
expect_error "tournament: unwritable --out-dir" \
  -- "$TOURNAMENT" --combos round-robin+always-on --scenarios tiny/round-robin \
     --jobs 50 --serial --out-dir /nonexistent/deep/dir

# --- trace_tools ------------------------------------------------------------
expect_error "trace_tools: missing trace file" \
  -- "$TRACE_TOOLS" inspect /nonexistent/trace.csv
expect_error "trace_tools: unknown raw-trace format" \
  -- "$TRACE_TOOLS" convert not-a-format /nonexistent/raw.csv /tmp/out.csv

if [ "$failures" -ne 0 ]; then
  echo "$failures CLI error-path check(s) failed" >&2
  exit 1
fi
echo "all CLI error paths exit 1 with 'error:' on stderr"
