#!/usr/bin/env bash
# Fetch the full public cluster datasets behind the bundled fixture slices.
#
#   scripts/fetch_traces.sh google2011  [dest_dir]   (~400 GB, gsutil)
#   scripts/fetch_traces.sh alibaba2018 [dest_dir]   (~270 GB, wget)
#   scripts/fetch_traces.sh azure2017   [dest_dir]   (~120 GB, wget)
#
# The repository never needs the full datasets: data/traces/*.sample.csv are
# small checked-in slices in each dataset's raw schema, and every tool,
# test and registry scenario runs from those. Use this script only to scale
# an experiment to a real multi-day trace, then convert with e.g.:
#
#   ./build/examples/trace_tools convert google2011 part-00000-of-00500.csv \
#       google_week.csv 100000
set -euo pipefail

dataset="${1:-}"
dest="${2:-data/traces/full}"

need() {
  command -v "$1" >/dev/null 2>&1 || {
    echo "error: '$1' is required for this dataset; install it and re-run" >&2
    exit 1
  }
}

mkdir -p "$dest"
case "$dataset" in
  google2011)
    # Google ClusterData 2011 (v2.1). task_events is the table the adapter
    # reads; one shard is enough for a week-scale experiment.
    # Docs: https://github.com/google/cluster-data/blob/master/ClusterData2011_2.md
    need gsutil
    echo "fetching the first task_events shard into $dest (full table: 500 shards)..."
    gsutil cp "gs://clusterdata-2011-2/task_events/part-00000-of-00500.csv.gz" "$dest/"
    gunzip -f "$dest/part-00000-of-00500.csv.gz"
    echo "convert with: trace_tools convert google2011 $dest/part-00000-of-00500.csv out.csv"
    ;;
  alibaba2018)
    # Alibaba ClusterData v2018. batch_task.tar.gz unpacks to batch_task.csv.
    # Docs: https://github.com/alibaba/clusterdata/tree/master/cluster-trace-v2018
    need wget
    echo "fetching batch_task into $dest..."
    wget -c -P "$dest" \
      "http://clusterdata2018pubcn.oss-cn-beijing.aliyuncs.com/batch_task.tar.gz"
    tar -xzf "$dest/batch_task.tar.gz" -C "$dest"
    echo "convert with: trace_tools convert alibaba2018 $dest/batch_task.csv out.csv"
    ;;
  azure2017)
    # Azure Public Dataset V1 (2017). vmtable.csv.gz holds the VM lifetimes.
    # Docs: https://github.com/Azure/AzurePublicDataset/blob/master/AzurePublicDatasetV1.md
    need wget
    echo "fetching vmtable into $dest..."
    wget -c -P "$dest" \
      "https://azurecloudpublicdataset.blob.core.windows.net/azurepublicdataset/trace_data/vmtable/vmtable.csv.gz"
    gunzip -f "$dest/vmtable.csv.gz"
    echo "convert with: trace_tools convert azure2017 $dest/vmtable.csv out.csv"
    ;;
  *)
    echo "usage: $0 <google2011|alibaba2018|azure2017> [dest_dir]" >&2
    exit 1
    ;;
esac
