#!/usr/bin/env bash
# Kill-and-resume smoke for the tournament's crash-safe journal:
#
#   1. run a small faulty grid to completion (reference, no journal)
#   2. run the same grid with --journal and SIGKILL it mid-grid
#   3. resume: journaled cells must be skipped, and the final leaderboard and
#      cells CSVs must be byte-identical to the reference
#   4. resume again: nothing left to run — the journal must not grow and the
#      outputs must not change
#
# Usage: tournament_resume_smoke.sh <build-dir>
set -eu

BUILD_DIR=${1:?usage: tournament_resume_smoke.sh <build-dir>}
TOURNAMENT="$BUILD_DIR/examples/tournament"
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# 3 combos x 2 scenarios = 6 cells. --no-timing makes the CSVs fully
# deterministic, so byte-for-byte diffs are the pass criterion.
ARGS=(--combos "round-robin+always-on,least-loaded+immediate-sleep,first-fit-packing+fixed-timeout-60"
      --scenarios "tiny/least-loaded-faulty,tiny/round-robin-faulty"
      --jobs 60000 --serial --no-timing)
JOURNAL="$WORK/journal.csv"
mkdir -p "$WORK/ref" "$WORK/killed" "$WORK/resumed" "$WORK/resumed2"

echo "== reference run (no journal)"
"$TOURNAMENT" "${ARGS[@]}" --out-dir "$WORK/ref" >/dev/null

echo "== journaled run, killed mid-grid"
"$TOURNAMENT" "${ARGS[@]}" --journal "$JOURNAL" --out-dir "$WORK/killed" >/dev/null 2>&1 &
PID=$!
# Wait until at least one cell record (magic line + 1) has been flushed,
# then kill hard — no chance to finish the write loop cleanly.
for _ in $(seq 1 400); do
  lines=$( { wc -l <"$JOURNAL"; } 2>/dev/null || echo 0)
  [ "$lines" -ge 2 ] && break
  sleep 0.02
done
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true

lines=$( { wc -l <"$JOURNAL"; } 2>/dev/null || echo 0)
if [ "$lines" -lt 2 ]; then
  echo "FAIL: journal never got a record before the kill" >&2
  exit 1
fi
if [ "$lines" -ge 7 ]; then
  echo "note: grid finished before the kill landed ($((lines - 1))/6 cells journaled);"
  echo "      the resume below still proves the skip path."
fi
echo "   journaled cells at kill: $((lines - 1))/6"

echo "== resume"
"$TOURNAMENT" "${ARGS[@]}" --journal "$JOURNAL" --out-dir "$WORK/resumed" >/dev/null
diff -u "$WORK/ref/leaderboard.csv" "$WORK/resumed/leaderboard.csv"
diff -u "$WORK/ref/cells.csv" "$WORK/resumed/cells.csv"
echo "   resumed output is byte-identical to the reference"

echo "== second resume (everything journaled)"
cp "$JOURNAL" "$WORK/journal.before"
"$TOURNAMENT" "${ARGS[@]}" --journal "$JOURNAL" --out-dir "$WORK/resumed2" >/dev/null
cmp "$JOURNAL" "$WORK/journal.before"
diff -u "$WORK/resumed/cells.csv" "$WORK/resumed2/cells.csv"
echo "   journal unchanged, output unchanged"

echo "tournament journal kill-and-resume smoke passed"
