#include "src/common/config.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace hcrl::common {

namespace {
std::string trim(const std::string& s) {
  auto b = s.find_first_not_of(" \t\r\n");
  auto e = s.find_last_not_of(" \t\r\n");
  return b == std::string::npos ? std::string{} : s.substr(b, e - b + 1);
}
}  // namespace

Config Config::from_string(const std::string& text) {
  Config cfg;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (auto hash = line.find('#'); hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("Config: missing '=' on line " + std::to_string(lineno));
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) {
      throw std::invalid_argument("Config: empty key on line " + std::to_string(lineno));
    }
    // A repeated key in config text is almost always a copy-paste mistake;
    // silently letting the later line win hides it. Programmatic overrides
    // go through Config::set, which keeps last-write-wins semantics.
    if (!cfg.values_.emplace(key, value).second) {
      throw std::invalid_argument("Config: duplicate key '" + key + "' on line " +
                                  std::to_string(lineno));
    }
  }
  return cfg;
}

Config Config::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("Config: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_string(buf.str());
}

void Config::set(const std::string& key, const std::string& value) { values_[key] = value; }
void Config::set(const std::string& key, double value) { values_[key] = std::to_string(value); }
void Config::set(const std::string& key, std::int64_t value) { values_[key] = std::to_string(value); }
void Config::set(const std::string& key, bool value) { values_[key] = value ? "true" : "false"; }

bool Config::has(const std::string& key) const { return values_.count(key) > 0; }

std::optional<std::string> Config::raw(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  read_[key] = true;
  return it->second;
}

std::string Config::get_string(const std::string& key) const {
  auto v = raw(key);
  if (!v) throw std::invalid_argument("Config: missing key '" + key + "'");
  return *v;
}

std::string Config::get_string(const std::string& key, const std::string& fallback) const {
  auto v = raw(key);
  return v ? *v : fallback;
}

double Config::get_double(const std::string& key) const {
  const std::string v = get_string(key);
  try {
    std::size_t pos = 0;
    const double d = std::stod(v, &pos);
    if (pos != v.size()) throw std::invalid_argument("trailing chars");
    return d;
  } catch (const std::exception&) {
    throw std::invalid_argument("Config: key '" + key + "' is not a double: " + v);
  }
}

double Config::get_double(const std::string& key, double fallback) const {
  return has(key) ? get_double(key) : fallback;
}

std::int64_t Config::get_int(const std::string& key) const {
  const std::string v = get_string(key);
  try {
    std::size_t pos = 0;
    const std::int64_t i = std::stoll(v, &pos);
    if (pos != v.size()) throw std::invalid_argument("trailing chars");
    return i;
  } catch (const std::exception&) {
    throw std::invalid_argument("Config: key '" + key + "' is not an int: " + v);
  }
}

std::int64_t Config::get_int(const std::string& key, std::int64_t fallback) const {
  return has(key) ? get_int(key) : fallback;
}

bool Config::get_bool(const std::string& key) const {
  std::string v = get_string(key);
  std::transform(v.begin(), v.end(), v.begin(), [](unsigned char c) { return std::tolower(c); });
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("Config: key '" + key + "' is not a bool: " + v);
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  return has(key) ? get_bool(key) : fallback;
}

std::vector<std::string> Config::unused_keys() const {
  std::vector<std::string> out;
  for (const auto& [k, _] : values_) {
    if (!read_.count(k)) out.push_back(k);
  }
  return out;
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

std::string Config::to_string() const {
  std::ostringstream os;
  for (const auto& [k, v] : values_) os << k << " = " << v << "\n";
  return os.str();
}

}  // namespace hcrl::common
