// Minimal typed key/value configuration.
//
// Experiments are described by flat `key = value` files (or programmatic
// maps). Typed getters validate and convert; unknown keys are detectable so
// configs stay in sync with the code.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hcrl::common {

class Config {
 public:
  Config() = default;

  /// Parse from text of the form `key = value` per line; '#' starts a
  /// comment; blank lines ignored. Later duplicates override earlier ones.
  static Config from_string(const std::string& text);
  static Config from_file(const std::string& path);

  void set(const std::string& key, const std::string& value);
  /// Overload so string literals don't decay into the bool overload.
  void set(const std::string& key, const char* value) { set(key, std::string(value)); }
  void set(const std::string& key, double value);
  void set(const std::string& key, std::int64_t value);
  void set(const std::string& key, bool value);

  bool has(const std::string& key) const;

  std::string get_string(const std::string& key) const;
  std::string get_string(const std::string& key, const std::string& fallback) const;
  double get_double(const std::string& key) const;
  double get_double(const std::string& key, double fallback) const;
  std::int64_t get_int(const std::string& key) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  bool get_bool(const std::string& key) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Keys present in the config but never read through a getter.
  std::vector<std::string> unused_keys() const;
  std::vector<std::string> keys() const;

  std::string to_string() const;

 private:
  std::optional<std::string> raw(const std::string& key) const;

  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> read_;
};

}  // namespace hcrl::common
