#include "src/common/csv.hpp"

#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace hcrl::common {

std::optional<double> parse_csv_double(const std::string& field) {
  if (field.empty()) return std::nullopt;
  // CSV numeric columns are finite decimals; std::stod would also consume
  // the hexfloat "0x1f", "nan" and "inf", which in trace data are
  // corruption, not numbers. NaN is especially insidious downstream: it
  // compares false against every range check.
  if (field.find_first_of("xX") != std::string::npos) return std::nullopt;
  try {
    std::size_t pos = 0;
    const double v = std::stod(field, &pos);
    if (pos == field.size() && std::isfinite(v)) return v;
  } catch (const std::exception&) {
  }
  return std::nullopt;
}

std::optional<long long> parse_csv_int(const std::string& field) {
  if (field.empty()) return std::nullopt;
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(field, &pos);
    if (pos == field.size()) return v;
  } catch (const std::exception&) {
  }
  return std::nullopt;
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

std::string format_csv_double(double value) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << value;
  return os.str();
}

void CsvWriter::write_row_doubles(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (double v : values) fields.push_back(format_csv_double(v));
  write_row(fields);
}

std::vector<std::string> CsvReader::parse_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c == '\r') {
      // ignore
    } else {
      cur += c;
    }
  }
  if (in_quotes) throw std::invalid_argument("CsvReader: unterminated quote");
  fields.push_back(std::move(cur));
  return fields;
}

bool CsvReader::read_row(std::vector<std::string>& fields) {
  std::string line;
  while (std::getline(in_, line)) {
    ++next_line_;
    if (line.empty() || line == "\r") continue;
    fields = parse_line(line);
    row_line_ = next_line_;
    return true;
  }
  return false;
}

}  // namespace hcrl::common
