#include "src/common/csv.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace hcrl::common {

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row_doubles(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (double v : values) {
    std::ostringstream os;
    os.precision(std::numeric_limits<double>::max_digits10);
    os << v;
    fields.push_back(os.str());
  }
  write_row(fields);
}

std::vector<std::string> CsvReader::parse_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c == '\r') {
      // ignore
    } else {
      cur += c;
    }
  }
  if (in_quotes) throw std::invalid_argument("CsvReader: unterminated quote");
  fields.push_back(std::move(cur));
  return fields;
}

bool CsvReader::read_row(std::vector<std::string>& fields) {
  std::string line;
  while (std::getline(in_, line)) {
    if (line.empty() || line == "\r") continue;
    fields = parse_line(line);
    return true;
  }
  return false;
}

}  // namespace hcrl::common
