// Small CSV reader/writer sufficient for job traces and benchmark output.
// Supports quoted fields with embedded commas/quotes; no embedded newlines.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hcrl::common {

class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void write_row(const std::vector<std::string>& fields);
  /// Convenience for numeric rows; formats with max_digits10 precision.
  void write_row_doubles(const std::vector<double>& values);

  static std::string escape(const std::string& field);

 private:
  std::ostream& out_;
};

class CsvReader {
 public:
  explicit CsvReader(std::istream& in) : in_(in) {}

  /// Reads the next row; returns false at EOF. Empty lines are skipped.
  bool read_row(std::vector<std::string>& fields);

  static std::vector<std::string> parse_line(const std::string& line);

 private:
  std::istream& in_;
};

}  // namespace hcrl::common
