// Small CSV reader/writer sufficient for job traces and benchmark output.
// Supports quoted fields with embedded commas/quotes; no embedded newlines.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace hcrl::common {

/// Strict full-field numeric parse for CSV cells: the whole field must be
/// one number (no partial prefixes like "60.0x", no empty fields).
/// Returns nullopt instead of throwing so callers choose their own error
/// policy (trace_io raises with line/column context; the trace adapters
/// count the row malformed).
std::optional<double> parse_csv_double(const std::string& field);

/// Same, for integer cells; rejects "3.9" and anything stoll cannot fully
/// consume.
std::optional<long long> parse_csv_int(const std::string& field);

/// Round-trip-exact formatting for numeric CSV cells (max_digits10). The
/// single precision policy behind CsvWriter::write_row_doubles and
/// workload::write_trace.
std::string format_csv_double(double value);

class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void write_row(const std::vector<std::string>& fields);
  /// Convenience for numeric rows; formats with max_digits10 precision.
  void write_row_doubles(const std::vector<double>& values);

  static std::string escape(const std::string& field);

 private:
  std::ostream& out_;
};

class CsvReader {
 public:
  explicit CsvReader(std::istream& in) : in_(in) {}

  /// Reads the next row; returns false at EOF. Empty lines (including bare
  /// "\r" from CRLF files) are skipped.
  bool read_row(std::vector<std::string>& fields);

  /// 1-based input line number of the most recent row returned by
  /// read_row() (0 before the first row). Skipped blank lines count, so
  /// this matches what an editor shows for the offending line.
  std::size_t line() const noexcept { return row_line_; }

  static std::vector<std::string> parse_line(const std::string& line);

 private:
  std::istream& in_;
  std::size_t next_line_ = 0;
  std::size_t row_line_ = 0;
};

}  // namespace hcrl::common
