#include "src/common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace hcrl::common {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::atomic<unsigned> g_next_thread_index{0};
std::mutex g_write_mutex;

// One tag per thread; empty means "not yet assigned".
thread_local std::string t_tag;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}

const std::string& tag_for_this_thread() {
  if (t_tag.empty()) {
    const unsigned idx = g_next_thread_index.fetch_add(1, std::memory_order_relaxed);
    // Move-assign a freshly built string: direct char* assignment into the
    // thread_local trips a GCC 12 -Wrestrict false positive.
    t_tag = idx == 0 ? std::string("main") : std::string("t").append(std::to_string(idx));
  }
  return t_tag;
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_thread_tag(const std::string& tag) { t_tag = tag.empty() ? "?" : tag; }
std::string log_thread_tag() { return tag_for_this_thread(); }

void log_message(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  const std::string& tag = tag_for_this_thread();
  std::lock_guard<std::mutex> lock(g_write_mutex);
  std::fprintf(stderr, "[%s][%s] %s\n", level_name(level), tag.c_str(), msg.c_str());
}

}  // namespace hcrl::common
