// Tiny leveled logger. Writes are mutex-guarded (one write per line) and
// tagged with a per-thread id, so concurrent workers never interleave
// partial lines. Intended for experiment narration, not hot paths.
#pragma once

#include <sstream>
#include <string>

namespace hcrl::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Thread-safe: takes a process-wide mutex for the single write, and
/// prefixes the line with the calling thread's tag: `[LEVEL][tag] msg`.
void log_message(LogLevel level, const std::string& msg);

/// Set the calling thread's log tag (e.g. "shard-3", "runner-1"). The
/// default tag is "main" for the first thread to log and "t<N>" for later
/// ones, N assigned in first-log order.
void set_log_thread_tag(const std::string& tag);
/// The calling thread's current tag (assigns the default if unset).
std::string log_thread_tag();

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace hcrl::common
