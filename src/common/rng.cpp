#include "src/common/rng.hpp"

#include <cassert>
#include <cmath>

namespace hcrl::common {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.next();
}

Rng::result_type Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  // Lemire's nearly-divisionless bounded sampling (rejection for exactness).
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * span;
  auto l = static_cast<std::uint64_t>(m);
  if (l < span) {
    const std::uint64_t t = -span % span;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * span;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::exponential(double rate) noexcept {
  assert(rate > 0.0);
  // 1 - uniform() is in (0, 1], so the log is finite.
  return -std::log(1.0 - uniform()) / rate;
}

double Rng::log_uniform(double lo, double hi) noexcept {
  assert(lo > 0.0 && hi >= lo);
  return lo * std::exp(uniform() * std::log(hi / lo));
}

double Rng::pareto(double xm, double alpha) noexcept {
  assert(xm > 0.0 && alpha > 0.0);
  return xm / std::pow(1.0 - uniform(), 1.0 / alpha);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double r = uniform() * total;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.empty() ? 0 : weights.size() - 1;
}

Rng Rng::fork() noexcept { return Rng(next() ^ 0xdeadbeefcafef00dULL); }

}  // namespace hcrl::common
