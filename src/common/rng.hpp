// Deterministic, seedable random number generation for simulations.
//
// All stochastic behaviour in the library flows through Rng so that every
// experiment is exactly reproducible from a single 64-bit seed. The core
// generator is xoshiro256**, seeded via SplitMix64 (the initialization
// recommended by the xoshiro authors).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace hcrl::common {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
/// Also usable standalone as a tiny, fast generator for hashing-like uses.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality 64-bit PRNG.
/// Satisfies (most of) the C++ UniformRandomBitGenerator requirements.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept { return next(); }
  result_type next() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept;
  /// Standard normal via Marsaglia polar method.
  double normal() noexcept;
  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;
  /// Exponential with given rate (mean = 1/rate).
  double exponential(double rate) noexcept;
  /// Log-uniform on [lo, hi]; lo > 0 required.
  double log_uniform(double lo, double hi) noexcept;
  /// Pareto (Lomax-shifted) with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha) noexcept;
  /// Sample an index in [0, weights.size()) proportionally to weights.
  /// Weights must be non-negative and not all zero.
  std::size_t weighted_index(const std::vector<double>& weights) noexcept;

  /// Derive an independent child generator (for per-component streams).
  Rng fork() noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace hcrl::common
