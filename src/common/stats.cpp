#include "src/common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace hcrl::common {

double percentile(std::vector<double>& values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto k = static_cast<std::size_t>(q * static_cast<double>(values.size() - 1));
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(k), values.end());
  return values[k];
}

double quantile_from_bins(std::span<const std::uint64_t> bins, std::span<const double> bounds,
                          double q) {
  if (bounds.empty() || bins.size() != bounds.size() + 1) {
    throw std::invalid_argument("quantile_from_bins: bins must have bounds.size() + 1 entries");
  }
  std::uint64_t total = 0;
  for (auto b : bins) total += b;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t i = 0; i < bins.size(); ++i) {
    const double next = cum + static_cast<double>(bins[i]);
    if (next >= target && bins[i] > 0) {
      // Edge bins are open-ended; collapse them onto their finite boundary so
      // the result stays within the configured range.
      const double lo = i == 0 ? bounds.front() : bounds[i - 1];
      const double hi = i == bins.size() - 1 ? bounds.back() : bounds[i];
      const double frac = (target - cum) / static_cast<double>(bins[i]);
      return lo + frac * (hi - lo);
    }
    cum = next;
  }
  return bounds.back();
}

void RunningStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void TimeWeightedValue::set(double t, double value) {
  if (!started_) {
    started_ = true;
    start_ = last_t_ = t;
    value_ = value;
    return;
  }
  if (t < last_t_) throw std::invalid_argument("TimeWeightedValue: time went backwards");
  integral_ += value_ * (t - last_t_);
  last_t_ = t;
  value_ = value;
}

double TimeWeightedValue::integral(double t) const {
  if (!started_) return 0.0;
  if (t < last_t_) throw std::invalid_argument("TimeWeightedValue: query before last sample");
  return integral_ + value_ * (t - last_t_);
}

double TimeWeightedValue::time_average(double t) const {
  if (!started_ || t <= start_) return 0.0;
  return integral(t) / (t - start_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) throw std::invalid_argument("Histogram: bad range/bins");
}

void Histogram::add(double x) noexcept {
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const noexcept { return lo_ + width_ * static_cast<double>(i); }
double Histogram::bin_hi(std::size_t i) const noexcept { return bin_lo(i) + width_; }

double Histogram::quantile(double q) const {
  if (total_ == 0) throw std::invalid_argument("Histogram::quantile: empty");
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double frac = counts_[i] > 0 ? (target - cum) / static_cast<double>(counts_[i]) : 0.0;
      return bin_lo(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::to_string(std::size_t max_width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = counts_[i] * max_width / peak;
    os << "[" << bin_lo(i) << ", " << bin_hi(i) << ") " << std::string(bar, '#') << " "
       << counts_[i] << "\n";
  }
  return os.str();
}

}  // namespace hcrl::common
