// Streaming statistics utilities used by the simulator and benchmarks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace hcrl::common {

/// Exact sample percentile with the index rule `k = floor(q * (n - 1))`
/// (lower-nearest-rank, the convention the tail-metric code has always
/// used). Partially sorts `values` in place via nth_element; returns 0 for
/// an empty vector. q is clamped to [0, 1].
double percentile(std::vector<double>& values, double q);

/// Approximate quantile from fixed-boundary histogram bins, linearly
/// interpolated inside the selected bin. `bins` has `bounds.size() + 1`
/// entries: bins[0] counts x < bounds[0], bins[i] counts
/// bounds[i-1] <= x < bounds[i], and bins.back() counts x >= bounds.back().
/// The open-ended edge bins interpolate toward their finite boundary.
/// Returns 0 when the histogram is empty; throws std::invalid_argument on a
/// size mismatch or empty bounds.
double quantile_from_bins(std::span<const std::uint64_t> bins, std::span<const double> bounds,
                          double q);

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Population variance; 0 when fewer than 2 samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
  double max() const noexcept { return n_ > 0 ? max_ : 0.0; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Time-weighted accumulator for a piecewise-constant signal.
///
/// The core energy-accounting primitive: `set(t, v)` records that the signal
/// takes value `v` from time `t` until the next call. `integral(t)` returns
/// the exact integral of the signal from the first set() up to time t, and
/// `time_average(t)` the integral divided by elapsed time.
class TimeWeightedValue {
 public:
  /// Record that the signal value is `value` starting at time `t`.
  /// Times must be non-decreasing.
  void set(double t, double value);
  /// Integral of the signal from the first set() through time `t`.
  double integral(double t) const;
  /// Time average over [start, t]; 0 before any sample.
  double time_average(double t) const;
  double current() const noexcept { return value_; }
  double start_time() const noexcept { return start_; }
  bool empty() const noexcept { return !started_; }

 private:
  bool started_ = false;
  double start_ = 0.0;
  double last_t_ = 0.0;
  double value_ = 0.0;
  double integral_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bin. Used for trace validation and latency distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const noexcept { return counts_.size(); }
  std::size_t total() const noexcept { return total_; }
  double bin_lo(std::size_t i) const noexcept;
  double bin_hi(std::size_t i) const noexcept;
  /// Approximate quantile (linear interpolation inside the bin).
  double quantile(double q) const;
  std::string to_string(std::size_t max_width = 50) const;

 private:
  double lo_, hi_, width_;
  std::size_t total_ = 0;
  std::vector<std::size_t> counts_;
};

/// Exponential moving average with configurable smoothing factor.
class Ema {
 public:
  explicit Ema(double alpha) : alpha_(alpha) {}
  void add(double x) noexcept {
    value_ = seeded_ ? alpha_ * x + (1.0 - alpha_) * value_ : x;
    seeded_ = true;
  }
  double value() const noexcept { return value_; }
  bool seeded() const noexcept { return seeded_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
};

}  // namespace hcrl::common
