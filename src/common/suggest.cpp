#include "src/common/suggest.hpp"

#include <algorithm>
#include <numeric>

namespace hcrl::common {

std::size_t edit_distance(const std::string& a, const std::string& b) {
  // Single-row dynamic program; strings here are short config keys.
  std::vector<std::size_t> row(b.size() + 1);
  std::iota(row.begin(), row.end(), std::size_t{0});
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];  // row[j-1] from the previous row
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t up = row[j];
      const std::size_t subst = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({row[j - 1] + 1, up + 1, subst});
      diag = up;
    }
  }
  return row[b.size()];
}

std::optional<std::string> closest_match(const std::string& name,
                                         const std::vector<std::string>& candidates) {
  const std::size_t threshold = std::max<std::size_t>(2, name.size() / 3);
  std::optional<std::string> best;
  std::size_t best_dist = threshold + 1;
  for (const std::string& c : candidates) {
    const std::size_t d = edit_distance(name, c);
    if (d < best_dist) {
      best_dist = d;
      best = c;
    }
  }
  return best;
}

std::string unknown_key_message(const std::string& what, const std::string& name,
                                const std::vector<std::string>& candidates) {
  std::string msg = "unknown " + what + " '" + name + "'";
  msg += " (";
  if (const auto guess = closest_match(name, candidates)) {
    msg += "did you mean '" + *guess + "'?; ";
  }
  msg += "valid:";
  for (const std::string& c : candidates) msg += " " + c;
  msg += ")";
  return msg;
}

}  // namespace hcrl::common
