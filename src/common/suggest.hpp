// "Did you mean ...?" diagnostics for string-keyed registries.
//
// Every name-to-thing lookup in the codebase (policy registry, scenario
// registry, predictor kinds, system kinds) fails the same way: a user typo
// hits a bare "unknown key" throw and the valid keys have to be dug out of
// the source. closest_match() finds the nearest registered name by edit
// distance; unknown_key_message() formats the uniform diagnostic every
// lookup now throws.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace hcrl::common {

/// Levenshtein edit distance (insert/delete/substitute, unit costs).
std::size_t edit_distance(const std::string& a, const std::string& b);

/// The candidate closest to `name` by edit distance, provided it is close
/// enough to plausibly be a typo (distance <= max(2, |name| / 3)). Ties are
/// broken by candidate order. nullopt when nothing is close or the list is
/// empty.
std::optional<std::string> closest_match(const std::string& name,
                                         const std::vector<std::string>& candidates);

/// Uniform diagnostic: `unknown <what> '<name>' (did you mean '<c>'?;
/// valid: a, b, c)`. The did-you-mean clause is omitted when no candidate
/// is plausibly close.
std::string unknown_key_message(const std::string& what, const std::string& name,
                                const std::vector<std::string>& candidates);

}  // namespace hcrl::common
