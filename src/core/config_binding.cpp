#include "src/core/config_binding.hpp"

#include <stdexcept>

#include "src/common/suggest.hpp"

namespace hcrl::core {

SystemKind system_kind_from_string(const std::string& name) {
  if (name == "round-robin") return SystemKind::kRoundRobin;
  if (name == "drl-only") return SystemKind::kDrlOnly;
  if (name == "hierarchical") return SystemKind::kHierarchical;
  if (name == "drl-fixed-timeout") return SystemKind::kDrlFixedTimeout;
  if (name == "least-loaded") return SystemKind::kLeastLoaded;
  if (name == "first-fit-packing") return SystemKind::kFirstFitPacking;
  throw std::invalid_argument(common::unknown_key_message(
      "system kind", name,
      {"round-robin", "drl-only", "hierarchical", "drl-fixed-timeout", "least-loaded",
       "first-fit-packing"}));
}

namespace {

/// Collect `prefix.<key> = value` entries into a per-policy option block
/// (reading them, so they don't trip the unknown-key check below).
common::Config option_block(const common::Config& config, const std::string& prefix) {
  common::Config block;
  for (const std::string& key : config.keys()) {
    if (key.size() > prefix.size() + 1 && key.compare(0, prefix.size(), prefix) == 0 &&
        key[prefix.size()] == '.') {
      block.set(key.substr(prefix.size() + 1), config.get_string(key));
    }
  }
  return block;
}

}  // namespace

ExperimentConfig experiment_config_from(const common::Config& config) {
  ExperimentConfig cfg;

  // Counts bound for size_t fields reject negatives here, where the offending
  // key name is still known, instead of wrapping to huge values in the cast.
  const auto non_negative = [&config](const char* key, std::size_t fallback) {
    const std::int64_t v = config.get_int(key, static_cast<std::int64_t>(fallback));
    if (v < 0) {
      throw std::invalid_argument(std::string("experiment_config_from: ") + key +
                                  " must be >= 0");
    }
    return static_cast<std::size_t>(v);
  };

  cfg.system = system_kind_from_string(config.get_string("system", "hierarchical"));
  cfg.num_servers = non_negative("num_servers", 30);
  cfg.num_groups = non_negative("num_groups", 3);
  cfg.fixed_timeout_s = config.get_double("fixed_timeout_s", cfg.fixed_timeout_s);
  cfg.pretrain_jobs = non_negative("pretrain_jobs", cfg.pretrain_jobs);
  cfg.learn_during_run = config.get_bool("learn_during_run", cfg.learn_during_run);
  cfg.checkpoint_every_jobs = non_negative("checkpoint_every_jobs", cfg.checkpoint_every_jobs);
  cfg.precision =
      nn::precision_from_string(config.get_string("precision", nn::to_string(cfg.precision)));
  const std::int64_t gemm_threads =
      config.get_int("gemm_threads", static_cast<std::int64_t>(cfg.gemm_threads));
  if (gemm_threads < 0) {
    throw std::invalid_argument("experiment_config_from: gemm_threads must be >= 0");
  }
  cfg.gemm_threads = static_cast<std::size_t>(gemm_threads);
  cfg.batch_decisions = config.get_bool("batch_decisions", cfg.batch_decisions);
  cfg.shards = non_negative("shards", cfg.shards);
  cfg.sla_latency_s = config.get_double("sla_latency_s", cfg.sla_latency_s);

  // Fault injection & harness robustness (validated by FaultConfig::validate
  // / ExperimentConfig::validate).
  cfg.faults.mtbf_s = config.get_double("faults.mtbf_s", cfg.faults.mtbf_s);
  cfg.faults.mttr_s = config.get_double("faults.mttr_s", cfg.faults.mttr_s);
  cfg.faults.evict_every_s = config.get_double("faults.evict_every_s", cfg.faults.evict_every_s);
  cfg.faults.max_retries = non_negative("faults.max_retries", cfg.faults.max_retries);
  cfg.faults.backoff_base_s = config.get_double("faults.backoff_base_s", cfg.faults.backoff_base_s);
  cfg.faults.backoff_cap_s = config.get_double("faults.backoff_cap_s", cfg.faults.backoff_cap_s);
  cfg.faults.backoff_jitter = config.get_double("faults.backoff_jitter", cfg.faults.backoff_jitter);
  cfg.faults.horizon_padding_s =
      config.get_double("faults.horizon_padding_s", cfg.faults.horizon_padding_s);
  cfg.faults.seed =
      static_cast<std::uint64_t>(config.get_int("faults.seed", static_cast<std::int64_t>(cfg.faults.seed)));
  cfg.watchdog_s = config.get_double("watchdog_s", cfg.watchdog_s);

  // Registry-backed policy selection (validated in ExperimentConfig::validate
  // against src/policy/registry.hpp, with did-you-mean diagnostics).
  cfg.allocator = config.get_string("allocator", cfg.allocator);
  cfg.power = config.get_string("power", cfg.power);
  cfg.allocator_opts = option_block(config, "allocator");
  cfg.power_opts = option_block(config, "power");

  // Trace.
  cfg.trace.num_jobs = non_negative("trace.num_jobs", cfg.trace.num_jobs);
  cfg.trace.horizon_s = config.get_double(
      "trace.horizon_s",
      sim::kSecondsPerWeek * static_cast<double>(cfg.trace.num_jobs) / 95000.0);
  cfg.trace.seed = static_cast<std::uint64_t>(config.get_int("trace.seed", 1));
  cfg.trace.duration_log_mean = config.get_double("trace.duration_log_mean", cfg.trace.duration_log_mean);
  cfg.trace.duration_log_sigma = config.get_double("trace.duration_log_sigma", cfg.trace.duration_log_sigma);
  cfg.trace.cpu_exp_mean = config.get_double("trace.cpu_exp_mean", cfg.trace.cpu_exp_mean);
  cfg.trace.diurnal_amplitude = config.get_double("trace.diurnal_amplitude", cfg.trace.diurnal_amplitude);
  cfg.trace.burst_multiplier = config.get_double("trace.burst_multiplier", cfg.trace.burst_multiplier);

  // Server / power model.
  cfg.server.power.idle_watts = config.get_double("server.idle_watts", cfg.server.power.idle_watts);
  cfg.server.power.peak_watts = config.get_double("server.peak_watts", cfg.server.power.peak_watts);
  cfg.server.power.transition_watts =
      config.get_double("server.transition_watts", cfg.server.power.transition_watts);
  cfg.server.t_on = config.get_double("server.t_on", cfg.server.t_on);
  cfg.server.t_off = config.get_double("server.t_off", cfg.server.t_off);
  cfg.server.hotspot_threshold =
      config.get_double("server.hotspot_threshold", cfg.server.hotspot_threshold);

  // Global tier.
  cfg.drl.beta = config.get_double("drl.beta", cfg.drl.beta);
  cfg.drl.w_power = config.get_double("drl.w_power", cfg.drl.w_power);
  cfg.drl.w_vms = config.get_double("drl.w_vms", cfg.drl.w_vms);
  cfg.drl.w_reliability = config.get_double("drl.w_reliability", cfg.drl.w_reliability);
  cfg.drl.w_chosen_queue = config.get_double("drl.w_chosen_queue", cfg.drl.w_chosen_queue);
  cfg.drl.guide_mix = config.get_double("drl.guide_mix", cfg.drl.guide_mix);
  cfg.drl.qnet.learning_rate = config.get_double("drl.learning_rate", cfg.drl.qnet.learning_rate);
  cfg.drl.qnet.subq_hidden =
      static_cast<std::size_t>(config.get_int("drl.subq_hidden", static_cast<std::int64_t>(cfg.drl.qnet.subq_hidden)));
  cfg.drl.batch_size =
      static_cast<std::size_t>(config.get_int("drl.batch_size", static_cast<std::int64_t>(cfg.drl.batch_size)));
  cfg.drl.seed = static_cast<std::uint64_t>(config.get_int("drl.seed", 7));

  // Local tier.
  cfg.local.w = config.get_double("local.w", cfg.local.w);
  cfg.local.predictor = config.get_string("local.predictor", cfg.local.predictor);
  cfg.local.shared_table = config.get_bool("local.shared_table", cfg.local.shared_table);
  cfg.local.agent.learning_rate =
      config.get_double("local.learning_rate", cfg.local.agent.learning_rate);
  cfg.local.agent.beta = config.get_double("local.beta", cfg.local.agent.beta);
  cfg.local.seed = static_cast<std::uint64_t>(config.get_int("local.seed", 13));

  const auto unused = config.unused_keys();
  if (!unused.empty()) {
    std::string msg = "experiment_config_from: unknown keys:";
    for (const auto& k : unused) msg += " " + k;
    throw std::invalid_argument(msg);
  }

  cfg.finalize();
  cfg.validate();
  return cfg;
}

}  // namespace hcrl::core
