// Bind flat key/value configs (common::Config) to ExperimentConfig.
//
// This is the declarative front door: every knob a bench or example sets
// programmatically can be set from a `key = value` file, e.g.
//
//   system = hierarchical
//   num_servers = 30
//   num_groups = 3
//   trace.num_jobs = 95000
//   drl.w_vms = 0.01
//   local.w = 0.5
//
// Unknown keys are reported as errors so config files never rot silently.
#pragma once

#include "src/common/config.hpp"
#include "src/core/experiment.hpp"

namespace hcrl::core {

/// Parse the system name ("round-robin", "drl-only", "hierarchical",
/// "drl-fixed-timeout", "least-loaded", "first-fit-packing").
SystemKind system_kind_from_string(const std::string& name);

/// Build an ExperimentConfig from a flat config. Starts from defaults,
/// overrides any provided key, then finalizes. Throws std::invalid_argument
/// on unknown keys or invalid values.
ExperimentConfig experiment_config_from(const common::Config& config);

}  // namespace hcrl::core
