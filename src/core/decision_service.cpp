#include "src/core/decision_service.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/core/predictor.hpp"
#include "src/core/qnetwork.hpp"

namespace hcrl::core {

void DecisionService::begin_epoch_if_needed() {
  if (!flushed_) return;
  predict_reqs_.clear();
  q_states_.clear();
  qnet_ = nullptr;
  flushed_ = false;
}

DecisionService::Ticket DecisionService::stage_predict(WorkloadPredictor& predictor) {
  begin_epoch_if_needed();
  predict_reqs_.push_back(&predictor);
  ++stats_.predict_requests;
  return predict_reqs_.size() - 1;
}

DecisionService::Ticket DecisionService::stage_q_values(GroupedQNetwork& qnet,
                                                        const nn::Vec& state) {
  begin_epoch_if_needed();
  if (qnet_ != nullptr && qnet_ != &qnet) {
    throw std::logic_error("DecisionService: one epoch may only stage one Q-network");
  }
  qnet_ = &qnet;
  q_states_.push_back(&state);
  ++stats_.q_requests;
  return q_states_.size() - 1;
}

void DecisionService::flush() {
  if (flushed_) return;  // nothing staged since the last flush
  const std::size_t total = predict_reqs_.size() + q_states_.size();
  stats_.max_epoch_requests = std::max(stats_.max_epoch_requests, total);
  if (total > 0) ++stats_.flushes;

  // Fuse prediction requests per predictor instance, preserving first-seen
  // order: n requests against one predictor cost one predict_n(n) sweep
  // (batch-n LSTM chain) instead of n forward chains. The scan is quadratic
  // in the epoch backlog, which is at most a handful of requests.
  predictions_.assign(predict_reqs_.size(), 0.0);
  std::vector<bool> scattered(predict_reqs_.size(), false);
  for (std::size_t i = 0; i < predict_reqs_.size(); ++i) {
    if (scattered[i]) continue;
    std::size_t n = 0;
    for (std::size_t j = i; j < predict_reqs_.size(); ++j) {
      if (predict_reqs_[j] == predict_reqs_[i]) ++n;
    }
    const std::vector<double> vals = predict_reqs_[i]->predict_n(n);
    std::size_t v = 0;
    for (std::size_t j = i; j < predict_reqs_.size(); ++j) {
      if (predict_reqs_[j] != predict_reqs_[i]) continue;
      predictions_[j] = vals[v++];
      scattered[j] = true;
    }
    ++stats_.predict_batches;
  }

  // All staged Q-evaluations share ONE batched sweep through the network.
  if (!q_states_.empty()) {
    qnet_->q_values_batch(q_states_, q_out_);
    ++stats_.q_batches;
  } else {
    q_out_.resize_for_overwrite(0, 0);
  }
  flushed_ = true;
}

void DecisionService::require_flushed(const char* what) const {
  if (!flushed_) {
    throw std::logic_error(std::string("DecisionService::") + what + ": epoch not flushed");
  }
}

double DecisionService::prediction(Ticket ticket) const {
  require_flushed("prediction");
  if (ticket >= predictions_.size()) {
    throw std::out_of_range("DecisionService::prediction: bad ticket");
  }
  return predictions_[ticket];
}

std::span<const double> DecisionService::q_values(Ticket ticket) const {
  require_flushed("q_values");
  if (ticket >= q_out_.rows()) throw std::out_of_range("DecisionService::q_values: bad ticket");
  return {q_out_.data() + ticket * q_out_.cols(), q_out_.cols()};
}

}  // namespace hcrl::core
