#include "src/core/decision_service.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/core/predictor.hpp"
#include "src/core/qnetwork.hpp"
#include "src/telemetry/registry.hpp"

namespace hcrl::core {

namespace {
// Registry mirror of DecisionServiceStats: the service keeps its cheap local
// struct (unconditional, used by tests and the runner report), and flush()
// additionally publishes the same deltas here when telemetry is on, so the
// one snapshot schema covers the decision layer too.
struct DecisionMetrics {
  telemetry::MetricId flushes;
  telemetry::MetricId predict_requests;
  telemetry::MetricId predict_batches;
  telemetry::MetricId q_requests;
  telemetry::MetricId q_batches;
  telemetry::MetricId epoch_width;
  telemetry::MetricId max_epoch_width;

  static const DecisionMetrics& get() {
    static const DecisionMetrics m = [] {
      auto& reg = telemetry::global_registry();
      return DecisionMetrics{
          .flushes = reg.counter("core.decision.flushes"),
          .predict_requests = reg.counter("core.decision.predict_requests"),
          .predict_batches = reg.counter("core.decision.predict_batches"),
          .q_requests = reg.counter("core.decision.q_requests"),
          .q_batches = reg.counter("core.decision.q_batches"),
          .epoch_width = reg.histogram("core.decision.epoch_width",
                                       {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0}),
          .max_epoch_width = reg.gauge("core.decision.max_epoch_width"),
      };
    }();
    return m;
  }
};
}  // namespace

void DecisionService::begin_epoch_if_needed() {
  if (!flushed_) return;
  predict_reqs_.clear();
  q_states_.clear();
  qnet_ = nullptr;
  flushed_ = false;
}

DecisionService::Ticket DecisionService::stage_predict(WorkloadPredictor& predictor) {
  begin_epoch_if_needed();
  predict_reqs_.push_back(&predictor);
  ++stats_.predict_requests;
  return predict_reqs_.size() - 1;
}

DecisionService::Ticket DecisionService::stage_q_values(GroupedQNetwork& qnet,
                                                        const nn::Vec& state) {
  begin_epoch_if_needed();
  if (qnet_ != nullptr && qnet_ != &qnet) {
    throw std::logic_error("DecisionService: one epoch may only stage one Q-network");
  }
  qnet_ = &qnet;
  q_states_.push_back(&state);
  ++stats_.q_requests;
  return q_states_.size() - 1;
}

void DecisionService::flush() {
  if (flushed_) return;  // nothing staged since the last flush
  const std::size_t total = predict_reqs_.size() + q_states_.size();
  stats_.max_epoch_requests = std::max(stats_.max_epoch_requests, total);
  if (total > 0) ++stats_.flushes;
  const std::size_t predict_batches_before = stats_.predict_batches;

  // Fuse prediction requests per predictor instance, preserving first-seen
  // order: n requests against one predictor cost one predict_n(n) sweep
  // (batch-n LSTM chain) instead of n forward chains. The scan is quadratic
  // in the epoch backlog, which is at most a handful of requests.
  predictions_.assign(predict_reqs_.size(), 0.0);
  std::vector<bool> scattered(predict_reqs_.size(), false);
  for (std::size_t i = 0; i < predict_reqs_.size(); ++i) {
    if (scattered[i]) continue;
    std::size_t n = 0;
    for (std::size_t j = i; j < predict_reqs_.size(); ++j) {
      if (predict_reqs_[j] == predict_reqs_[i]) ++n;
    }
    const std::vector<double> vals = predict_reqs_[i]->predict_n(n);
    std::size_t v = 0;
    for (std::size_t j = i; j < predict_reqs_.size(); ++j) {
      if (predict_reqs_[j] != predict_reqs_[i]) continue;
      predictions_[j] = vals[v++];
      scattered[j] = true;
    }
    ++stats_.predict_batches;
  }

  // All staged Q-evaluations share ONE batched sweep through the network.
  if (!q_states_.empty()) {
    qnet_->q_values_batch(q_states_, q_out_);
    ++stats_.q_batches;
  } else {
    q_out_.resize_for_overwrite(0, 0);
  }
  flushed_ = true;

  if (total > 0 && telemetry::enabled()) {
    const DecisionMetrics& m = DecisionMetrics::get();
    telemetry::count(m.flushes);
    telemetry::count(m.predict_requests, predict_reqs_.size());
    telemetry::count(m.predict_batches, stats_.predict_batches - predict_batches_before);
    telemetry::count(m.q_requests, q_states_.size());
    if (!q_states_.empty()) telemetry::count(m.q_batches);
    telemetry::observe(m.epoch_width, static_cast<double>(total));
    telemetry::gauge_set(m.max_epoch_width, static_cast<double>(stats_.max_epoch_requests));
  }
}

void DecisionService::require_flushed(const char* what) const {
  if (!flushed_) {
    throw std::logic_error(std::string("DecisionService::") + what + ": epoch not flushed");
  }
}

double DecisionService::prediction(Ticket ticket) const {
  require_flushed("prediction");
  if (ticket >= predictions_.size()) {
    throw std::out_of_range("DecisionService::prediction: bad ticket");
  }
  return predictions_[ticket];
}

std::span<const double> DecisionService::q_values(Ticket ticket) const {
  require_flushed("q_values");
  if (ticket >= q_out_.rows()) throw std::out_of_range("DecisionService::q_values: bad ticket");
  return {q_out_.data() + ticket * q_out_.cols(), q_out_.cols()};
}

}  // namespace hcrl::core
