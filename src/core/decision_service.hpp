// Decision-epoch batching service (the fusion point of the two-tier agent).
//
// Within one simulation decision epoch — a maximal run of same-timestamp
// events, bounded by the Cluster's flush barriers — every agent inference is
// *staged* here instead of executed inline: the local tier's per-server
// predictor queries (time-to-next-arrival behind each idle timeout choice)
// and the global tier's placement Q-evaluations. flush() then executes the
// backlog as batched forward passes — one predict_n() sweep per distinct
// predictor and ONE GroupedQNetwork::q_values_batch() GEMM fusion for all
// staged states — and publishes results for ticket-indexed scatter-back.
//
// Results are read in place: predictions by value, Q-vectors as spans into
// the service-owned output matrix (no per-state Vec assembly on the decision
// path). The batched sweeps reuse the per-call kernels at batch B, and the
// GEMM row-batch invariance (nn/matrix.hpp) keeps every entry bit-identical
// to the per-call path — the property tests/decision_service_test.cpp pins.
//
// One service instance is shared by both tiers of one experiment run; it is
// single-threaded, like the simulation loop that drives it.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/nn/matrix.hpp"

namespace hcrl::core {

class GroupedQNetwork;
class WorkloadPredictor;

/// Lifetime counters of one DecisionService (diagnostics + tests): how many
/// requests were fused into how many batched sweeps.
struct DecisionServiceStats {
  std::size_t flushes = 0;           // flush() calls that had staged work
  std::size_t predict_requests = 0;  // staged predictor queries
  std::size_t predict_batches = 0;   // predict_n() sweeps issued
  std::size_t q_requests = 0;        // staged Q-evaluations
  std::size_t q_batches = 0;         // q_values_batch() GEMM fusions issued
  std::size_t max_epoch_requests = 0;  // largest single-epoch backlog
};

class DecisionService {
 public:
  /// Index of a staged request within the current epoch, per request kind.
  using Ticket = std::size_t;

  /// Stage one live prediction from `predictor`. Requests against the same
  /// predictor instance fuse into one predict_n() call at flush().
  Ticket stage_predict(WorkloadPredictor& predictor);

  /// Stage one Q-evaluation of `state` (borrowed: the caller keeps it alive
  /// until flush()). All staged states fuse into one q_values_batch() sweep;
  /// an epoch may only stage against one network instance.
  Ticket stage_q_values(GroupedQNetwork& qnet, const nn::Vec& state);

  /// True while staged requests await a flush.
  bool pending() const noexcept { return !flushed_ && (!predict_reqs_.empty() || !q_states_.empty()); }

  /// Execute the staged backlog as batched sweeps and publish the results.
  /// Safe to call with nothing staged (no-op, not counted).
  void flush();

  /// Result of a staged prediction; valid from its flush() until the first
  /// stage of the next epoch.
  double prediction(Ticket ticket) const;

  /// Q-vector of a staged evaluation, as a span into the batched output
  /// matrix; same validity window as prediction().
  std::span<const double> q_values(Ticket ticket) const;

  const DecisionServiceStats& stats() const noexcept { return stats_; }

 private:
  void begin_epoch_if_needed();
  void require_flushed(const char* what) const;

  std::vector<WorkloadPredictor*> predict_reqs_;
  std::vector<const nn::Vec*> q_states_;
  GroupedQNetwork* qnet_ = nullptr;

  std::vector<double> predictions_;
  nn::Matrix q_out_;
  bool flushed_ = true;  // a new service is an (empty) flushed epoch

  DecisionServiceStats stats_;
};

}  // namespace hcrl::core
