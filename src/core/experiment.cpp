#include "src/core/experiment.hpp"

#include <chrono>
#include <memory>
#include <stdexcept>

#include "src/common/log.hpp"

namespace hcrl::core {

std::string to_string(SystemKind kind) {
  switch (kind) {
    case SystemKind::kRoundRobin: return "round-robin";
    case SystemKind::kDrlOnly: return "drl-only";
    case SystemKind::kHierarchical: return "hierarchical";
    case SystemKind::kDrlFixedTimeout: return "drl-fixed-timeout";
    case SystemKind::kLeastLoaded: return "least-loaded";
    case SystemKind::kFirstFitPacking: return "first-fit-packing";
  }
  return "?";
}

void ExperimentConfig::finalize() {
  drl.qnet.encoder.num_servers = num_servers;
  drl.qnet.encoder.num_groups = num_groups;
  drl.qnet.encoder.num_resources = server.num_resources;
  local.num_servers = num_servers;
  local.power_scale_watts = server.power.peak_watts;
  local.t_on_s = server.t_on;
  local.t_off_s = server.t_off;
  local.transition_watts = server.power.transition_watts;
}

void ExperimentConfig::validate() const {
  if (num_servers == 0) throw std::invalid_argument("ExperimentConfig: num_servers == 0");
  if (num_groups == 0 || num_servers % num_groups != 0) {
    throw std::invalid_argument("ExperimentConfig: num_groups must divide num_servers");
  }
  trace.validate();
  server.validate();
  if (system == SystemKind::kDrlFixedTimeout && fixed_timeout_s < 0.0) {
    throw std::invalid_argument("ExperimentConfig: negative fixed timeout");
  }
}

namespace {

struct PolicyBundle {
  std::unique_ptr<sim::AllocationPolicy> allocation;
  std::unique_ptr<sim::PowerPolicy> power;
  DrlAllocator* drl = nullptr;          // non-owning view when present
  RlPowerManager* local_rl = nullptr;   // non-owning view when present
};

PolicyBundle build_policies(const ExperimentConfig& cfg) {
  PolicyBundle b;
  switch (cfg.system) {
    case SystemKind::kRoundRobin:
      b.allocation = std::make_unique<sim::RoundRobinAllocator>();
      b.power = std::make_unique<sim::AlwaysOnPolicy>();
      break;
    case SystemKind::kLeastLoaded:
      b.allocation = std::make_unique<sim::LeastLoadedAllocator>();
      b.power = std::make_unique<sim::ImmediateSleepPolicy>();
      break;
    case SystemKind::kFirstFitPacking:
      b.allocation = std::make_unique<sim::FirstFitPackingAllocator>();
      b.power = std::make_unique<sim::ImmediateSleepPolicy>();
      break;
    case SystemKind::kDrlOnly: {
      auto drl = std::make_unique<DrlAllocator>(cfg.drl);
      drl->set_guide(std::make_unique<sim::FirstFitPackingAllocator>());
      b.drl = drl.get();
      b.allocation = std::move(drl);
      b.power = std::make_unique<sim::ImmediateSleepPolicy>();
      break;
    }
    case SystemKind::kDrlFixedTimeout: {
      auto drl = std::make_unique<DrlAllocator>(cfg.drl);
      drl->set_guide(std::make_unique<sim::FirstFitPackingAllocator>());
      b.drl = drl.get();
      b.allocation = std::move(drl);
      b.power = std::make_unique<sim::FixedTimeoutPolicy>(cfg.fixed_timeout_s);
      break;
    }
    case SystemKind::kHierarchical: {
      auto drl = std::make_unique<DrlAllocator>(cfg.drl);
      drl->set_guide(std::make_unique<sim::FirstFitPackingAllocator>());
      b.drl = drl.get();
      b.allocation = std::move(drl);
      auto local = std::make_unique<RlPowerManager>(cfg.local);
      b.local_rl = local.get();
      b.power = std::move(local);
      break;
    }
  }
  return b;
}

sim::ClusterConfig cluster_config(const ExperimentConfig& cfg) {
  sim::ClusterConfig cc;
  cc.num_servers = cfg.num_servers;
  cc.server = cfg.server;
  return cc;
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& config) {
  ExperimentConfig cfg = config;
  cfg.finalize();
  cfg.validate();

  const auto wall_start = std::chrono::steady_clock::now();

  workload::GoogleTraceGenerator generator(cfg.trace);
  std::vector<sim::Job> jobs = generator.generate();
  const workload::TraceStats stats = workload::compute_stats(jobs, cfg.trace.horizon_s);

  PolicyBundle policies = build_policies(cfg);

  // ---- offline construction phase (DRL systems only) -----------------------
  if (policies.drl != nullptr && cfg.pretrain_jobs > 0) {
    const std::size_t n = std::min(cfg.pretrain_jobs, jobs.size());
    std::vector<sim::Job> prefix(jobs.begin(), jobs.begin() + static_cast<std::ptrdiff_t>(n));
    sim::Cluster warmup(cluster_config(cfg), *policies.allocation, *policies.power);
    warmup.load_jobs(std::move(prefix));
    warmup.run();
    policies.drl->end_episode();
    common::log_info() << to_string(cfg.system) << ": pretrained on " << n << " jobs ("
                       << policies.drl->train_steps() << " gradient steps)";
  }

  // ---- measured run ---------------------------------------------------------
  if (policies.drl != nullptr) policies.drl->set_learning(cfg.learn_during_run);
  if (policies.local_rl != nullptr) policies.local_rl->set_learning(cfg.learn_during_run);

  sim::Cluster cluster(cluster_config(cfg), *policies.allocation, *policies.power);
  cluster.load_jobs(std::move(jobs));

  ExperimentResult result;
  result.system = to_string(cfg.system);
  std::size_t next_checkpoint =
      cfg.checkpoint_every_jobs > 0 ? cfg.checkpoint_every_jobs : static_cast<std::size_t>(-1);
  while (cluster.step()) {
    if (cluster.metrics().jobs_completed() >= next_checkpoint) {
      const auto snap = cluster.snapshot();
      result.series.push_back(CheckpointRow{snap.jobs_completed, snap.now,
                                            snap.accumulated_latency_s, snap.energy_kwh(),
                                            snap.average_power_watts});
      next_checkpoint += cfg.checkpoint_every_jobs;
    }
  }

  result.final_snapshot = cluster.snapshot();
  result.trace_stats = stats;
  result.servers_on_at_end = cluster.servers_on();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  return result;
}

std::vector<ExperimentResult> run_comparison(const ExperimentConfig& base,
                                             const std::vector<SystemKind>& systems) {
  std::vector<ExperimentResult> results;
  results.reserve(systems.size());
  for (SystemKind kind : systems) {
    ExperimentConfig cfg = base;
    cfg.system = kind;
    results.push_back(run_experiment(cfg));
    const auto& r = results.back();
    common::log_info() << r.system << ": energy=" << r.final_snapshot.energy_kwh() << " kWh"
                       << " latency=" << r.final_snapshot.accumulated_latency_s / 1e6 << "e6 s"
                       << " power=" << r.final_snapshot.average_power_watts << " W"
                       << " (wall " << r.wall_seconds << " s)";
  }
  return results;
}

}  // namespace hcrl::core
