// run_experiment / run_comparison are source-compatibility wrappers over the
// composable Scenario/Runner API; the actual driver lives in runner.cpp.
#include "src/core/experiment.hpp"

#include <stdexcept>

#include "src/core/runner.hpp"
#include "src/core/scenario.hpp"
#include "src/policy/registry.hpp"

namespace hcrl::core {

std::string to_string(SystemKind kind) {
  switch (kind) {
    case SystemKind::kRoundRobin: return "round-robin";
    case SystemKind::kDrlOnly: return "drl-only";
    case SystemKind::kHierarchical: return "hierarchical";
    case SystemKind::kDrlFixedTimeout: return "drl-fixed-timeout";
    case SystemKind::kLeastLoaded: return "least-loaded";
    case SystemKind::kFirstFitPacking: return "first-fit-packing";
  }
  return "?";
}

void ExperimentConfig::finalize() {
  drl.qnet.encoder.num_servers = num_servers;
  drl.qnet.encoder.num_groups = num_groups;
  drl.qnet.encoder.num_resources = server.num_resources;
  drl.qnet.precision = precision;
  local.num_servers = num_servers;
  local.power_scale_watts = server.power.peak_watts;
  local.t_on_s = server.t_on;
  local.t_off_s = server.t_off;
  local.transition_watts = server.power.transition_watts;
  local.lstm.precision = precision;
}

void ExperimentConfig::validate() const {
  if (num_servers == 0) throw std::invalid_argument("ExperimentConfig: num_servers == 0");
  if (num_groups == 0 || num_servers % num_groups != 0) {
    throw std::invalid_argument("ExperimentConfig: num_groups must divide num_servers");
  }
  trace.validate();
  server.validate();
  if (system == SystemKind::kDrlFixedTimeout && fixed_timeout_s < 0.0) {
    throw std::invalid_argument("ExperimentConfig: negative fixed timeout");
  }
  if (shards > num_servers) {
    throw std::invalid_argument("ExperimentConfig: more shards than servers");
  }
  if (sla_latency_s < 0.0) {
    throw std::invalid_argument("ExperimentConfig: negative sla_latency_s");
  }
  faults.validate();
  if (!(watchdog_s >= 0.0)) {
    throw std::invalid_argument("ExperimentConfig: watchdog_s must be >= 0");
  }
  // Registry-backed selection: unknown allocator/power/predictor names and
  // unknown per-policy option keys fail here with did-you-mean diagnostics.
  policy::validate_system_selection(*this);
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  Scenario scenario;
  scenario.name = to_string(config.system);
  scenario.config = config;
  return run_scenario(scenario);
}

std::vector<ExperimentResult> run_comparison(const ExperimentConfig& base,
                                             const std::vector<SystemKind>& systems) {
  LogObserver log;
  return SerialRunner().run(comparison_scenarios(base, systems), &log);
}

}  // namespace hcrl::core
