// Experiment driver: builds the paper's systems and measures them.
//
// Systems (§VII-B):
//   round-robin       — round-robin broker, servers never sleep (baseline);
//   drl-only          — DRL global tier, "ad hoc" immediate sleep locally;
//   hierarchical      — DRL global tier + RL/LSTM local tier (the paper's);
//   drl-fixed-timeout — DRL global tier + fixed 30/60/90 s timeout (Fig. 10
//                       baselines);
//   least-loaded / first-fit-packing — extra non-learning references.
//
// DRL systems get an offline construction phase first (§IV: experience
// accumulation + DNN pre-training): the driver replays a prefix of the
// trace with learning enabled before the measured run, mirroring the
// paper's use of separate cluster traces for pre-training.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/common/config.hpp"
#include "src/core/global_tier.hpp"
#include "src/core/local_tier.hpp"
#include "src/nn/precision.hpp"
#include "src/sim/cluster.hpp"
#include "src/sim/fault/fault.hpp"
#include "src/workload/generator.hpp"

namespace hcrl::core {

enum class SystemKind {
  kRoundRobin,
  kDrlOnly,
  kHierarchical,
  kDrlFixedTimeout,
  kLeastLoaded,
  kFirstFitPacking,
};

std::string to_string(SystemKind kind);

struct ExperimentConfig {
  SystemKind system = SystemKind::kHierarchical;
  std::size_t num_servers = 30;
  std::size_t num_groups = 3;  // K for the grouped Q-network
  workload::GeneratorOptions trace;
  sim::ServerConfig server;

  double fixed_timeout_s = 60.0;  // for kDrlFixedTimeout

  /// Registry-backed policy selection (src/policy/registry.hpp). A non-empty
  /// `allocator` / `power` names any registered policy and overrides that
  /// half of the pair implied by `system`; the option blocks carry the
  /// per-policy keys (config file syntax: `allocator = random-k` +
  /// `allocator.k = 4`, `power = fixed-timeout` + `power.timeout_s = 45`).
  /// Empty strings (the default) keep the exact system-enum behaviour, so
  /// every existing config file is unchanged.
  std::string allocator;
  std::string power;
  common::Config allocator_opts;
  common::Config power_opts;

  /// Latency SLA threshold in seconds: completed jobs whose latency exceeds
  /// it count into ExperimentResult::sla_violations. 0 disables the count.
  double sla_latency_s = 0.0;

  DrlAllocatorOptions drl;     // encoder dims are overwritten from the fields above
  LocalPowerManagerOptions local;

  /// Offline construction phase: replay this many jobs from the head of the
  /// trace (with learning on) before the measured run; 0 disables.
  std::size_t pretrain_jobs = 20000;
  /// Keep learning enabled during the measured run (the paper's online
  /// deep Q-learning phase); false freezes the policy after pretraining.
  bool learn_during_run = true;

  /// Record a metrics checkpoint every N completed jobs (0 disables).
  std::size_t checkpoint_every_jobs = 5000;

  /// Scalar type of every NN in the experiment (global-tier Sub-Q +
  /// autoencoder, local-tier LSTM predictors). finalize() propagates it into
  /// the drl/local sub-configs; defaults to the process-wide default
  /// (HCRL_PRECISION environment variable, f64 when unset).
  nn::Precision precision = nn::default_precision();
  /// Intra-GEMM worker count applied (process-globally) when the scenario
  /// runs; 0 leaves the current setting (HCRL_GEMM_THREADS env, default 1)
  /// untouched. Thread count never changes results — the threaded GEMM is
  /// bit-identical to serial — so scenarios with different values may share
  /// one sweep.
  std::size_t gemm_threads = 0;
  /// Route agent inference through a shared core::DecisionService: idle
  /// decisions staged per decision epoch, predictor/Q evaluations fused into
  /// batched sweeps, results scattered back (bit-identical action sequences;
  /// the per-call path is kept as the parity reference and enabled by
  /// setting this false).
  bool batch_decisions = true;
  /// Event-loop engine for the measured run: 0 keeps the serial sim::Cluster;
  /// >= 1 runs sim::ShardedCluster with that many shards in deterministic
  /// lockstep (shards=1 is bit-identical to the serial engine; any fixed
  /// shard count is bit-reproducible run-to-run). The threaded shard engine
  /// is exercised by bench/ and tests; the driver keeps lockstep so every
  /// policy — including the staging RL tiers — is supported unchanged.
  std::size_t shards = 0;

  /// Deterministic fault injection for the measured run (config keys
  /// `faults.*`; see src/sim/fault/fault.hpp). Disabled by default
  /// (mtbf_s == 0 && evict_every_s == 0). Pretraining always runs
  /// fault-free: the offline construction phase models a clean cluster and
  /// the faulty measured run is what the robustness scenarios score.
  sim::FaultConfig faults;

  /// Per-scenario watchdog: abort the run (pretraining included) with a
  /// std::runtime_error once it exceeds this many wall-clock seconds, so a
  /// hung cell becomes a per-cell error outcome instead of a hung grid.
  /// 0 disables. Checked cooperatively every 64 events — it never perturbs
  /// simulation results, only bounds how long a cell may take.
  double watchdog_s = 0.0;

  void finalize();  // propagate sizes into drl/local sub-configs
  void validate() const;
};

struct CheckpointRow {
  std::size_t jobs_completed = 0;
  double sim_time_s = 0.0;
  double accumulated_latency_s = 0.0;
  double energy_kwh = 0.0;
  double average_power_w = 0.0;
};

struct ExperimentResult {
  std::string system;
  /// Resolved registry names of the policies that actually ran (equals the
  /// system-enum pair unless ExperimentConfig::allocator/power overrode it).
  std::string allocator;
  std::string power;
  sim::MetricsSnapshot final_snapshot;
  std::vector<CheckpointRow> series;
  workload::TraceStats trace_stats;
  double wall_seconds = 0.0;
  std::size_t servers_on_at_end = 0;
  /// Tail latency over completed jobs (sorted-merge across shards, so the
  /// value is engine-independent); 0 when no job completed.
  double latency_p95_s = 0.0;
  double latency_p99_s = 0.0;
  /// Completed jobs with latency > config.sla_latency_s (0 when disabled).
  std::size_t sla_violations = 0;
};

/// Run one full experiment (trace generation + optional pretraining +
/// measured simulation). Thin wrapper over run_scenario() in
/// src/core/runner.hpp; prefer the Scenario/Runner API for sweeps — it
/// names scenarios, validates them up front, shares traces explicitly and
/// scales across cores (ParallelRunner).
ExperimentResult run_experiment(const ExperimentConfig& config);

/// Run the same trace through several systems (shares one cached trace).
/// Wrapper over SerialRunner + comparison_scenarios() (src/core/scenario.hpp).
std::vector<ExperimentResult> run_comparison(const ExperimentConfig& base,
                                             const std::vector<SystemKind>& systems);

}  // namespace hcrl::core
