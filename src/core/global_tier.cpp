#include "src/core/global_tier.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "src/sim/cluster_view.hpp"

namespace hcrl::core {

namespace {

/// Argmax over the Q-row with crash-failed servers masked out. Falls back to
/// the plain argmax when the whole action space is failed (the engine then
/// bounces the placement into the retry stream). With no failed servers this
/// delegates to nn::argmax, keeping the no-fault path bit-identical.
template <class Row>
std::size_t live_argmax(const Row& q, const sim::ClusterView& cluster) {
  if (cluster.servers_failed() == 0) return nn::argmax(q);
  std::size_t best = q.size();
  for (std::size_t i = 0; i < q.size(); ++i) {
    if (i < cluster.num_servers() && cluster.server(i).failed()) continue;
    if (best == q.size() || q[i] > q[best]) best = i;
  }
  return best == q.size() ? nn::argmax(q) : best;
}

}  // namespace

void DrlAllocatorOptions::validate() const {
  qnet.validate();
  if (beta <= 0.0) throw std::invalid_argument("DrlAllocator: beta must be > 0");
  if (w_power < 0.0 || w_vms < 0.0 || w_reliability < 0.0) {
    throw std::invalid_argument("DrlAllocator: negative reward weight");
  }
  if (batch_size == 0 || train_interval == 0 || target_sync_interval == 0) {
    throw std::invalid_argument("DrlAllocator: batch/train/sync must be > 0");
  }
}

DrlAllocator::DrlAllocator(const DrlAllocatorOptions& opts)
    : opts_(opts),
      encoder_(opts.qnet.encoder),
      replay_(opts.replay_capacity),
      rng_(opts.seed) {
  opts_.validate();
  qnet_ = std::make_unique<GroupedQNetwork>(opts_.qnet, rng_);
}

double DrlAllocator::reward_rate_since_prev(const sim::ClusterView& cluster, sim::Time now,
                                            double tau) const {
  const double d_energy = cluster.energy_joules(now) - prev_energy_;
  const double d_vms = cluster.jobs_in_system_integral(now) - prev_vms_integral_;
  const double d_reli = cluster.reliability_integral(now) - prev_reli_integral_;
  const double d_chosen_queue =
      cluster.server(prev_action_).queue_integral(now) - prev_chosen_queue_integral_;
  // Each delta is the integral of the corresponding instantaneous signal
  // over the sojourn; dividing by tau yields the average rate of Eqn. (4)
  // plus the chosen-server shaping term.
  return -(opts_.w_power * d_energy + opts_.w_vms * d_vms + opts_.w_reliability * d_reli +
           opts_.w_chosen_queue * d_chosen_queue) /
         tau;
}

sim::ServerId DrlAllocator::select_server(const sim::ClusterView& cluster, const sim::Job& job) {
  const sim::Time now = job.arrival;
  nn::Vec state = encoder_.full_state(cluster, job);

  if (learning_ && has_prev_) {
    const double tau = std::max(now - prev_time_, 1e-6);
    rl::Transition t;
    t.state = prev_state_;
    t.action = prev_action_;
    t.reward_rate = reward_rate_since_prev(cluster, now, tau);
    t.tau = tau;
    t.next_state = state;
    replay_.push(std::move(t));
    maybe_train();
  }
  if (learning_) {
    qnet_->observe_state(state, rng_);
  }

  std::size_t action;
  const double eps = learning_ ? opts_.epsilon.value(epochs_) : 0.0;
  if (learning_ && rng_.bernoulli(eps)) {
    if (guide_ != nullptr && rng_.bernoulli(opts_.guide_mix)) {
      action = guide_->select_server(cluster, job);
    } else if (const std::size_t failed = cluster.servers_failed();
               failed > 0 && failed < cluster.num_servers() &&
               qnet_->num_actions() == cluster.num_servers()) {
      // Explore uniformly over the live servers only (same rng stream; the
      // single-draw no-fault path below is untouched when nothing is failed).
      std::size_t k = static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(cluster.num_servers() - failed) - 1));
      action = 0;
      for (std::size_t i = 0; i < cluster.num_servers(); ++i) {
        if (cluster.server(i).failed()) continue;
        if (k == 0) {
          action = i;
          break;
        }
        --k;
      }
    } else {
      action = static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(qnet_->num_actions()) - 1));
    }
  } else if (service_ != nullptr) {
    // Arrivals are decision-epoch barriers (Cluster::step flushes staged
    // local-tier work first), so this epoch holds exactly this request; the
    // value of routing it here is the span read — argmax over the batched
    // output row, no Q-vector assembly — and the single shared fusion point.
    const DecisionService::Ticket ticket = service_->stage_q_values(*qnet_, state);
    service_->flush();
    action = live_argmax(service_->q_values(ticket), cluster);
  } else {
    action = live_argmax(qnet_->q_values(state), cluster);
  }

  ++epochs_;
  has_prev_ = true;
  prev_state_ = std::move(state);
  prev_action_ = action;
  prev_time_ = now;
  prev_energy_ = cluster.energy_joules(now);
  prev_vms_integral_ = cluster.jobs_in_system_integral(now);
  prev_reli_integral_ = cluster.reliability_integral(now);
  // Note: sampled before the job is enqueued on the chosen server, which is
  // correct — the enqueue happens after select_server returns.
  prev_chosen_queue_integral_ = cluster.server(action).queue_integral(now);
  return action;
}

void DrlAllocator::maybe_train() {
  if (replay_.size() < opts_.min_replay_before_training) return;
  if (epochs_ % static_cast<std::int64_t>(opts_.train_interval) == 0) {
    auto batch = replay_.sample(opts_.batch_size, rng_);
    last_loss_ = qnet_->train_batch(batch, opts_.beta);
    ++train_steps_;
  }
  if (epochs_ % static_cast<std::int64_t>(opts_.target_sync_interval) == 0) {
    qnet_->sync_target();
  }
}

void DrlAllocator::on_simulation_end(const sim::ClusterView& cluster, sim::Time now) {
  (void)cluster;
  (void)now;
  end_episode();
}

void DrlAllocator::end_episode() {
  has_prev_ = false;
  prev_state_.clear();
}

void DrlAllocator::save_model(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("DrlAllocator::save_model: cannot open " + path);
  qnet_->save_params(out);
  if (!out) throw std::runtime_error("DrlAllocator::save_model: write failed on " + path);
}

void DrlAllocator::load_model(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("DrlAllocator::load_model: cannot open " + path);
  // Precision-agnostic: GroupedQNetwork routes the text checkpoint into
  // whichever Scalar instantiation it runs, and re-syncs the target copy.
  qnet_->load_params(in);
}

}  // namespace hcrl::core
