// Global tier: DRL-based cloud resource allocation (§V).
//
// The job broker is the DRL agent; every job arrival is a decision epoch and
// the action is the target server index, so the action space is |M|. The
// reward (Eqn. 4) is the negatively-weighted sum of total power, number of
// VMs in the system (∝ latency by Little's law) and the hot-spot reliability
// penalty. Learning uses continuous-time SMDP Q-updates (Eqn. 2) on the
// grouped, weight-shared network of Fig. 6, with experience replay.
#pragma once

#include <memory>
#include <string>

#include "src/common/rng.hpp"
#include "src/core/decision_service.hpp"
#include "src/core/qnetwork.hpp"
#include "src/core/state.hpp"
#include "src/rl/replay.hpp"
#include "src/rl/schedule.hpp"
#include "src/sim/policies.hpp"

namespace hcrl::core {

struct DrlAllocatorOptions {
  GroupedQOptions qnet;
  double beta = 0.05;  // discount rate per second (~20 s horizon; paper uses 0.5 in its
                       // own time units — see EXPERIMENTS.md on this calibration)

  // Reward weights (Eqn. 4). Defaults keep the reward *rate* at O(1) so the
  // Q-scale (~ reward/beta) stays regressable: power is normalized by a
  // cluster's worth of peak wattage and #VMs by a typical in-flight count.
  double w_power = 1.0 / (145.0 * 30.0);
  double w_vms = 1.0 / 100.0;
  double w_reliability = 0.5;
  /// Shaping weight on the *chosen server's* queue integral over the
  /// sojourn. The cluster-wide #VMs term of Eqn. (4) is shared by all
  /// actions, so it attributes latency damage to placements only slowly;
  /// this term charges the queueing a placement causes to that placement.
  double w_chosen_queue = 0.1;

  /// During exploration, with this probability the "random" action is drawn
  /// from a guide heuristic instead of uniformly. This implements the
  /// paper's offline-construction advice (§IV) that experience may be
  /// collected under "arbitrary policy and gradually refined policy" —
  /// seeding the memory with consolidating behaviour accelerates learning.
  double guide_mix = 0.5;

  rl::EpsilonSchedule epsilon = rl::EpsilonSchedule::exponential(0.8, 0.02, 2500);
  std::size_t replay_capacity = 50000;
  std::size_t batch_size = 32;
  std::size_t min_replay_before_training = 512;
  std::size_t train_interval = 4;        // gradient step every N decision epochs
  std::size_t target_sync_interval = 1000;
  std::uint64_t seed = 7;

  void validate() const;
};

class DrlAllocator final : public sim::AllocationPolicy {
 public:
  explicit DrlAllocator(const DrlAllocatorOptions& opts);

  sim::ServerId select_server(const sim::ClusterView& cluster, const sim::Job& job) override;
  void on_simulation_end(const sim::ClusterView& cluster, sim::Time now) override;
  std::string name() const override { return "drl-global-tier"; }

  /// Learning on/off: when off, the agent acts greedily and performs no
  /// updates (used after the offline construction phase, and for evaluation).
  void set_learning(bool learning) noexcept { learning_ = learning; }
  bool learning() const noexcept { return learning_; }

  /// Reset the per-episode bookkeeping (call between independent traces so
  /// no transition spans two simulations). Keeps learned weights and replay.
  void end_episode();

  /// Install the exploration guide heuristic (owned). Null disables guiding.
  void set_guide(std::unique_ptr<sim::AllocationPolicy> guide) { guide_ = std::move(guide); }

  /// Route greedy Q-evaluations through a shared DecisionService: the state
  /// is staged and flushed as a q_values_batch() sweep and the argmax reads
  /// the result row in place (span) — no per-decision Q-vector assembly.
  /// Null (the default) restores the direct q_values() call.
  void set_decision_service(DecisionService* service) noexcept { service_ = service; }

  /// Persist / restore the learned network parameters (Sub-Q online copy +
  /// autoencoder). The loading allocator must be built with identical
  /// GroupedQOptions. Restoring also syncs the target network.
  void save_model(const std::string& path) const;
  void load_model(const std::string& path);

  GroupedQNetwork& network() noexcept { return *qnet_; }
  const StateEncoder& encoder() const noexcept { return encoder_; }
  std::int64_t decision_epochs() const noexcept { return epochs_; }
  std::int64_t train_steps() const noexcept { return train_steps_; }
  double last_loss() const noexcept { return last_loss_; }
  double current_epsilon() const { return opts_.epsilon.value(epochs_); }
  const DrlAllocatorOptions& options() const noexcept { return opts_; }

 private:
  /// Average reward rate over [prev_time_, now] from metric integrals.
  double reward_rate_since_prev(const sim::ClusterView& cluster, sim::Time now, double tau) const;
  void maybe_train();

  DrlAllocatorOptions opts_;
  StateEncoder encoder_;
  std::unique_ptr<GroupedQNetwork> qnet_;
  rl::ReplayBuffer<rl::Transition> replay_;
  common::Rng rng_;
  std::unique_ptr<sim::AllocationPolicy> guide_;
  bool learning_ = true;
  DecisionService* service_ = nullptr;  // not owned; null = direct q_values()

  bool has_prev_ = false;
  nn::Vec prev_state_;
  std::size_t prev_action_ = 0;
  sim::Time prev_time_ = 0.0;
  double prev_energy_ = 0.0;
  double prev_vms_integral_ = 0.0;
  double prev_reli_integral_ = 0.0;
  double prev_chosen_queue_integral_ = 0.0;

  std::int64_t epochs_ = 0;
  std::int64_t train_steps_ = 0;
  double last_loss_ = -1.0;
};

}  // namespace hcrl::core
