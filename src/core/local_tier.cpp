#include "src/core/local_tier.hpp"

#include <algorithm>
#include <stdexcept>

namespace hcrl::core {

void LocalPowerManagerOptions::validate() const {
  if (num_servers == 0) throw std::invalid_argument("RlPowerManager: num_servers == 0");
  if (w < 0.0 || w > 1.0) throw std::invalid_argument("RlPowerManager: w out of [0,1]");
  if (power_scale_watts <= 0.0) throw std::invalid_argument("RlPowerManager: bad power scale");
  if (timeout_actions.empty()) throw std::invalid_argument("RlPowerManager: no timeout actions");
  for (double t : timeout_actions) {
    if (t < 0.0) throw std::invalid_argument("RlPowerManager: negative timeout action");
  }
  if (std::find(timeout_actions.begin(), timeout_actions.end(), 0.0) == timeout_actions.end()) {
    throw std::invalid_argument("RlPowerManager: action list must include 0 (immediate)");
  }
  if (interarrival_bins.empty()) throw std::invalid_argument("RlPowerManager: no bins");
  if (!std::is_sorted(interarrival_bins.begin(), interarrival_bins.end())) {
    throw std::invalid_argument("RlPowerManager: bins must be sorted");
  }
  lstm.validate();
}

RlPowerManager::RlPowerManager(const LocalPowerManagerOptions& opts) : opts_(opts) {
  opts_.validate();
  servers_.resize(opts_.num_servers);
  const std::size_t num_agents = opts_.shared_table ? 1 : opts_.num_servers;
  agents_.reserve(num_agents);
  for (std::size_t i = 0; i < num_agents; ++i) {
    agents_.push_back(std::make_unique<rl::TabularQAgent>(
        opts_.num_states(), opts_.timeout_actions.size(), opts_.agent));
  }
  common::Rng root(opts_.seed);
  for (std::size_t i = 0; i < opts_.num_servers; ++i) {
    LstmPredictorOptions lstm = opts_.lstm;
    lstm.seed = opts_.seed * 1000003ULL + i;  // independent per-server streams
    servers_[i].predictor = make_predictor(opts_.predictor, lstm);
    servers_[i].agent = agents_[opts_.shared_table ? 0 : i].get();
    servers_[i].rng = root.fork();
  }
}

double RlPowerManager::predicted_gap(const sim::Server& server, sim::Time now,
                                     PerServer& ps) const {
  const sim::Time last = server.last_arrival_time();
  if (last < 0.0) return opts_.interarrival_bins.back() + 1.0;  // no history: coldest bin
  const double predicted_next = last + ps.predictor->predict();
  return std::max(0.0, predicted_next - now);
}

std::size_t RlPowerManager::discretize(double predicted_gap_s) const {
  // Bins are validated sorted at construction, so the state index — the
  // number of edges <= gap — is one binary search instead of a linear scan.
  const auto& bins = opts_.interarrival_bins;
  return static_cast<std::size_t>(
      std::upper_bound(bins.begin(), bins.end(), predicted_gap_s) - bins.begin());
}

RlPowerManager::PerServer& RlPowerManager::per_server(sim::ServerId id) {
  // Hot-hook access: one pre-validating compare instead of vector::at()'s
  // per-call bounds machinery; the id space is fixed at construction.
  if (id >= servers_.size()) {
    throw std::out_of_range("RlPowerManager: server id " + std::to_string(id) +
                            " outside the configured " + std::to_string(servers_.size()) +
                            " servers");
  }
  return servers_[id];
}

void RlPowerManager::on_arrival(const sim::Server& server, const sim::Job& job, sim::Time now) {
  (void)job;
  PerServer& ps = per_server(server.id());

  if (ps.has_pending) {
    ps.has_pending = false;
    if (learning_) close_sojourn(server, now, ps);
  }

  // Server::handle_arrival invokes this hook *before* updating
  // last_arrival_time, so the previous arrival is still visible here.
  const sim::Time prev = server.last_arrival_time();
  if (prev >= 0.0) {
    ps.predictor->observe(std::max(0.0, now - prev));
  }
}

void RlPowerManager::close_sojourn(const sim::Server& server, sim::Time now, PerServer& ps) {
  const double tau = now - ps.pending_time;
  if (tau <= 0.0) return;
  const double avg_power = (server.power_integral(now) - ps.pending_power_integral) / tau;
  const double avg_queue = (server.queue_integral(now) - ps.pending_queue_integral) / tau;
  // Eqn. (5): r(t) = -w P(t) - (1-w) JQ(t), with power normalized so the
  // two terms live on comparable scales.
  const double reward_rate =
      -(opts_.w * avg_power / opts_.power_scale_watts + (1.0 - opts_.w) * avg_queue);

  // Terminal value: the follow-on cost already committed by the power mode
  // the server is in when the job arrives. A sleeping machine forces the job
  // to wait the wake transition (latency term: JQ = 1 for that long) while
  // drawing transition power (power term). An idle machine serves at once.
  double wait_s = 0.0;
  switch (server.power_state()) {
    case sim::PowerState::kSleep:
      wait_s = opts_.t_on_s;
      break;
    case sim::PowerState::kFallingAsleep:
      wait_s = opts_.t_off_s + opts_.t_on_s;  // must finish powering down first
      break;
    case sim::PowerState::kWaking:
      wait_s = 0.5 * opts_.t_on_s;  // expected residual
      break;
    case sim::PowerState::kIdle:
    case sim::PowerState::kActive:
      break;
    case sim::PowerState::kFailed:
      // Crash-failed: the arrival was bounced before reaching this server, so
      // no sojourn closes against it. Treat like sleep for the follow-on cost.
      wait_s = opts_.t_on_s;
      break;
  }
  const double wake_cost = opts_.w * wait_s * opts_.transition_watts / opts_.power_scale_watts +
                           (1.0 - opts_.w) * wait_s;
  ps.agent->update_with_value(ps.pending_state, ps.pending_action, reward_rate, tau, -wake_cost);
}

double RlPowerManager::decide_timeout(const sim::Server& server, sim::Time now, PerServer& ps,
                                      double gap) {
  const std::size_t state = discretize(gap);
  const std::size_t action =
      learning_ ? ps.agent->select_action(state, ps.rng) : ps.agent->greedy_action(state);

  ps.has_pending = true;
  ps.pending_state = state;
  ps.pending_action = action;
  ps.pending_time = now;
  ps.pending_power_integral = server.power_integral(now);
  ps.pending_queue_integral = server.queue_integral(now);
  ++ps.decisions;

  return opts_.timeout_actions[action];
}

double RlPowerManager::on_idle(const sim::Server& server, sim::Time now) {
  PerServer& ps = per_server(server.id());
  return decide_timeout(server, now, ps, predicted_gap(server, now, ps));
}

bool RlPowerManager::defer_idle(sim::Server& server, sim::Time now, sim::EventQueue& queue) {
  if (service_ == nullptr) return false;  // no batching service: inline path
  PerServer& ps = per_server(server.id());
  StagedIdle staged;
  staged.server = &server;
  staged.queue = &queue;
  staged.now = now;
  // Claim the event seq the inline path's push would have received here, so
  // the deferred commit reproduces the heap's (time, seq) order exactly.
  staged.seq = queue.reserve_seq();
  if (server.last_arrival_time() >= 0.0) {
    staged.ticket = service_->stage_predict(*ps.predictor);
    staged.has_ticket = true;
  }  // else: predicted_gap's no-history shortcut needs no prediction
  staged_.push_back(staged);
  return true;
}

void RlPowerManager::flush_decisions() {
  service_->flush();  // all staged predictions resolve in batched sweeps
  for (const StagedIdle& staged : staged_) {
    PerServer& ps = per_server(staged.server->id());
    double gap;
    if (staged.has_ticket) {
      // predicted_gap(), with the predictor read from the batched results.
      const double predicted_next =
          staged.server->last_arrival_time() + service_->prediction(staged.ticket);
      gap = std::max(0.0, predicted_next - staged.now);
    } else {
      gap = opts_.interarrival_bins.back() + 1.0;  // no history: coldest bin
    }
    const double timeout = decide_timeout(*staged.server, staged.now, ps, gap);
    staged.server->commit_idle_decision(timeout, staged.now, staged.seq, *staged.queue);
  }
  staged_.clear();
}

const rl::TabularQAgent& RlPowerManager::agent(sim::ServerId server) const {
  return *servers_.at(server).agent;
}

WorkloadPredictor& RlPowerManager::predictor(sim::ServerId server) {
  return *servers_.at(server).predictor;
}

std::size_t RlPowerManager::decisions(sim::ServerId server) const {
  return servers_.at(server).decisions;
}

}  // namespace hcrl::core
