// Local tier: distributed RL-based dynamic power management (§VI).
//
// One sub-manager per server, operating independently (the "distributed
// manner" of the paper). Decision epochs follow §VI-B exactly:
//
//  case 1 (idle, empty queue): discretize the workload predictor's estimate
//    of time-to-next-arrival into the RL state and epsilon-greedily pick a
//    timeout from the action list (0 = immediate shutdown). This opens an
//    SMDP sojourn.
//  cases 2/3 (job arrives while idle/sleeping): no decision is needed, but
//    the sojourn closes here. The Eqn. (2) update uses the *exact* average
//    reward rate r(t) = -w·P(t)/P_peak - (1-w)·JQ(t) over the idle gap
//    (from the server's power/queue integrals), plus a terminal value that
//    charges the known follow-on cost of the chosen power mode: a job that
//    finds the server asleep must wait out the wake transition (latency
//    term) while the machine burns transition power (power term).
//
// Closing the sojourn at the arrival keeps the learning signal local to the
// timeout decision instead of diluting it across the next busy period.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/core/decision_service.hpp"
#include "src/core/predictor.hpp"
#include "src/rl/tabular_q.hpp"
#include "src/sim/policies.hpp"
#include "src/sim/server.hpp"

namespace hcrl::core {

struct LocalPowerManagerOptions {
  std::size_t num_servers = 30;
  /// Reward weight w in Eqn. (5): w scales power, (1-w) scales queue length.
  /// Sweeping w traces the power/latency trade-off curve (Fig. 10).
  double w = 0.5;
  double power_scale_watts = 145.0;  // normalizes P(t) to ~[0,1]
  /// Timeout action list in seconds; must contain 0 (immediate shutdown).
  std::vector<double> timeout_actions = {0.0, 30.0, 60.0, 120.0, 300.0};
  /// Bin edges (seconds) discretizing predicted time-to-next-arrival into
  /// the n categories of §VI-A; n = edges + 1 states.
  std::vector<double> interarrival_bins = {30.0, 60.0, 120.0, 300.0, 900.0, 3600.0};
  std::string predictor = "lstm";
  LstmPredictorOptions lstm;
  /// Tabular SMDP agent settings. beta is per *second* here; idle gaps span
  /// seconds to hours, so the default horizon is a few minutes.
  rl::TabularQAgent::Options agent = {.learning_rate = 0.1, .beta = 0.005};
  std::uint64_t seed = 13;
  /// Server transition times used to estimate wake costs (kept in sync with
  /// the simulated ServerConfig by ExperimentConfig::finalize()).
  double t_on_s = 30.0;
  double t_off_s = 30.0;
  double transition_watts = 145.0;
  /// Servers are homogeneous, so by default all sub-managers learn into one
  /// shared Q-table (decisions remain fully distributed). Set false for the
  /// strictly-independent per-server variant.
  bool shared_table = true;

  void validate() const;
  std::size_t num_states() const { return interarrival_bins.size() + 1; }
};

class RlPowerManager final : public sim::PowerPolicy {
 public:
  explicit RlPowerManager(const LocalPowerManagerOptions& opts);

  double on_idle(const sim::Server& server, sim::Time now) override;
  void on_arrival(const sim::Server& server, const sim::Job& job, sim::Time now) override;
  std::string name() const override { return "rl-dpm(" + opts_.predictor + ")"; }

  // -- decision-epoch batching (core::DecisionService) -----------------------
  //
  // With a service installed, idle decisions are *staged*: defer_idle()
  // reserves the event seq the inline path would have used and queues the
  // predictor request; the Cluster's epoch-boundary flush_decisions() then
  // resolves all staged predictions in one batched sweep and commits each
  // timeout through Server::commit_idle_decision. Action sequences are
  // bit-identical to the inline path (per-server RNG/predictor streams, pure
  // predict, reserved seqs). Without a service every hook is pass-through.
  void set_decision_service(DecisionService* service) noexcept { service_ = service; }
  bool defer_idle(sim::Server& server, sim::Time now, sim::EventQueue& queue) override;
  bool has_staged_decisions() const override { return !staged_.empty(); }
  void flush_decisions() override;

  void set_learning(bool learning) noexcept { learning_ = learning; }
  bool learning() const noexcept { return learning_; }

  /// Map a predicted time-to-next-arrival to an RL state index.
  std::size_t discretize(double predicted_gap_s) const;

  const rl::TabularQAgent& agent(sim::ServerId server) const;
  WorkloadPredictor& predictor(sim::ServerId server);
  std::size_t decisions(sim::ServerId server) const;
  const LocalPowerManagerOptions& options() const noexcept { return opts_; }

 private:
  struct PerServer {
    std::unique_ptr<WorkloadPredictor> predictor;
    rl::TabularQAgent* agent = nullptr;  // owned via agents_ below
    common::Rng rng{0};
    bool has_pending = false;
    std::size_t pending_state = 0;
    std::size_t pending_action = 0;
    sim::Time pending_time = 0.0;
    double pending_power_integral = 0.0;
    double pending_queue_integral = 0.0;
    std::size_t decisions = 0;
  };

  /// One idle decision staged by defer_idle, awaiting the epoch flush.
  struct StagedIdle {
    sim::Server* server = nullptr;
    sim::EventQueue* queue = nullptr;
    sim::Time now = 0.0;
    std::uint64_t seq = 0;  // reserved at staging; threads into the commit
    DecisionService::Ticket ticket = 0;
    bool has_ticket = false;  // false when the coldest-bin shortcut applies
  };

  /// Checked-once indexed access for the hot hooks (throws std::out_of_range
  /// on an id outside the configured server count).
  PerServer& per_server(sim::ServerId id);
  /// Predicted time from `now` until the next arrival at this server:
  /// (last arrival + predicted inter-arrival) - now, floored at zero.
  double predicted_gap(const sim::Server& server, sim::Time now, PerServer& ps) const;
  /// Apply the Eqn. (2) update for the sojourn that ends at this arrival.
  void close_sojourn(const sim::Server& server, sim::Time now, PerServer& ps);
  /// The decision half of §VI-B case 1 shared by the inline and batched
  /// paths: discretize the gap, epsilon-greedily pick a timeout action, open
  /// the SMDP sojourn. Returns the chosen timeout in seconds.
  double decide_timeout(const sim::Server& server, sim::Time now, PerServer& ps, double gap);

  LocalPowerManagerOptions opts_;
  std::vector<std::unique_ptr<rl::TabularQAgent>> agents_;  // 1 if shared, M otherwise
  std::vector<PerServer> servers_;
  bool learning_ = true;
  DecisionService* service_ = nullptr;  // not owned; null = inline decisions
  std::vector<StagedIdle> staged_;
};

}  // namespace hcrl::core
