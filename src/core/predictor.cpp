#include "src/core/predictor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/common/suggest.hpp"
#include "src/nn/init.hpp"
#include "src/nn/loss.hpp"
#include "src/nn/lstm.hpp"
#include "src/nn/network.hpp"
#include "src/nn/optimizer.hpp"

namespace hcrl::core {

SlidingMeanPredictor::SlidingMeanPredictor(std::size_t window, double prior_s)
    : window_(window), prior_(prior_s) {
  if (window == 0) throw std::invalid_argument("SlidingMeanPredictor: window must be > 0");
}

void SlidingMeanPredictor::observe(double interarrival_s) {
  values_.push_back(interarrival_s);
  sum_ += interarrival_s;
  if (values_.size() > window_) {
    sum_ -= values_.front();
    values_.pop_front();
  }
}

double SlidingMeanPredictor::predict() {
  if (values_.empty()) return prior_;
  return sum_ / static_cast<double>(values_.size());
}

WindowPredictor::WindowPredictor(std::size_t window, double prior_s) {
  if (window == 0) throw std::invalid_argument("WindowPredictor: window must be > 0");
  if (prior_s <= 0.0) throw std::invalid_argument("WindowPredictor: prior must be > 0");
  std::size_t n = 1;
  while (n < window) n <<= 1;
  ring_.assign(n, prior_s);
  mask_ = n - 1;
  sum_ = prior_s * static_cast<double>(n);
}

void WindowPredictor::observe(double interarrival_s) {
  if (interarrival_s < 0.0) throw std::invalid_argument("WindowPredictor: negative inter-arrival");
  sum_ -= ring_[next_];
  sum_ += interarrival_s;
  ring_[next_] = interarrival_s;
  next_ = (next_ + 1) & mask_;
}

ArPredictor::ArPredictor(std::size_t order, double prior_s, std::size_t refit_interval,
                         std::size_t history_capacity, double ridge)
    : order_(order),
      prior_(prior_s),
      refit_interval_(refit_interval),
      history_capacity_(history_capacity),
      ridge_(ridge) {
  if (order == 0) throw std::invalid_argument("ArPredictor: order must be > 0");
  if (refit_interval == 0) throw std::invalid_argument("ArPredictor: refit_interval must be > 0");
  if (history_capacity <= order + 1) {
    throw std::invalid_argument("ArPredictor: history_capacity too small");
  }
  if (ridge < 0.0) throw std::invalid_argument("ArPredictor: negative ridge");
}

void ArPredictor::observe(double interarrival_s) {
  if (interarrival_s < 0.0) throw std::invalid_argument("ArPredictor: negative inter-arrival");
  history_.push_back(interarrival_s);
  if (history_.size() > history_capacity_) history_.pop_front();
  if (++since_refit_ >= refit_interval_ && history_.size() > 3 * order_) {
    refit();
    since_refit_ = 0;
  }
}

void ArPredictor::refit() {
  // Solve (X^T X + ridge I) w = X^T y with X rows [1, x_{t-1}..x_{t-p}] by
  // Gaussian elimination; dimensions are tiny (p+1 <= ~9).
  const std::size_t p = order_;
  const std::size_t dim = p + 1;
  std::vector<double> a(dim * dim, 0.0);
  std::vector<double> b(dim, 0.0);
  for (std::size_t t = p; t < history_.size(); ++t) {
    std::vector<double> row(dim);
    row[0] = 1.0;
    for (std::size_t k = 0; k < p; ++k) row[k + 1] = history_[t - 1 - k];
    const double y = history_[t];
    for (std::size_t i = 0; i < dim; ++i) {
      b[i] += row[i] * y;
      for (std::size_t j = 0; j < dim; ++j) a[i * dim + j] += row[i] * row[j];
    }
  }
  for (std::size_t i = 0; i < dim; ++i) a[i * dim + i] += ridge_;

  // Gaussian elimination with partial pivoting.
  std::vector<std::size_t> perm(dim);
  for (std::size_t i = 0; i < dim; ++i) perm[i] = i;
  for (std::size_t col = 0; col < dim; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < dim; ++r) {
      if (std::abs(a[r * dim + col]) > std::abs(a[pivot * dim + col])) pivot = r;
    }
    if (std::abs(a[pivot * dim + col]) < 1e-12) return;  // singular: keep old fit
    if (pivot != col) {
      for (std::size_t j = 0; j < dim; ++j) std::swap(a[col * dim + j], a[pivot * dim + j]);
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t r = col + 1; r < dim; ++r) {
      const double f = a[r * dim + col] / a[col * dim + col];
      for (std::size_t j = col; j < dim; ++j) a[r * dim + j] -= f * a[col * dim + j];
      b[r] -= f * b[col];
    }
  }
  std::vector<double> w(dim);
  for (std::size_t i = dim; i-- > 0;) {
    double acc = b[i];
    for (std::size_t j = i + 1; j < dim; ++j) acc -= a[i * dim + j] * w[j];
    w[i] = acc / a[i * dim + i];
  }
  coef_ = std::move(w);
  fitted_ = true;
}

double ArPredictor::predict() {
  if (!fitted_ || history_.size() < order_) return history_.empty() ? prior_ : history_.back();
  double y = coef_[0];
  for (std::size_t k = 0; k < order_; ++k) {
    y += coef_[k + 1] * history_[history_.size() - 1 - k];
  }
  return std::max(0.0, y);
}

void LstmPredictorOptions::validate() const {
  if (lookback == 0 || hidden_units == 0 || input_hidden == 0) {
    throw std::invalid_argument("LstmPredictor: zero-sized layer");
  }
  if (learning_rate <= 0.0) throw std::invalid_argument("LstmPredictor: bad learning rate");
  if (norm_scale_s <= 0.0 || prior_s <= 0.0) {
    throw std::invalid_argument("LstmPredictor: bad scale/prior");
  }
  if (history_capacity <= lookback + 1) {
    throw std::invalid_argument("LstmPredictor: history_capacity too small");
  }
  if (train_interval == 0 || train_windows == 0) {
    throw std::invalid_argument("LstmPredictor: train interval/windows must be > 0");
  }
}

namespace detail {

/// Precision-parameterized NN stack of the LSTM predictor: the input/output
/// dense layers, the LSTM cell and the optimizer. The facade owns the
/// (double-typed) normalized history and hands window positions down here.
template <class S>
class LstmNetCore {
 public:
  LstmNetCore(const LstmPredictorOptions& opts, common::Rng& rng) : opts_(opts) {
    // Paper §VI-A: input and output hidden layers initialized N(0, 1) with
    // bias 0.1; the LSTM state starts at zero.
    auto in_params = std::make_shared<nn::DenseParamsT<S>>(opts_.input_hidden, 1);
    nn::normal_init(in_params->W, rng, 0.0, 1.0);
    for (auto& b : in_params->b) b = S(0.1);
    input_layer_.add_shared_dense(in_params, nn::Activation::kIdentity);

    auto lstm_params = std::make_shared<nn::LstmParamsT<S>>(opts_.hidden_units,
                                                            opts_.input_hidden);
    nn::init_lstm(*lstm_params, rng);
    lstm_ = std::make_unique<nn::LstmT<S>>(lstm_params);

    auto out_params = std::make_shared<nn::DenseParamsT<S>>(1, opts_.hidden_units);
    nn::normal_init(out_params->W, rng, 0.0, 1.0);
    for (auto& b : out_params->b) b = S(0.1);
    output_layer_.add_shared_dense(out_params, nn::Activation::kIdentity);

    all_params_ = {in_params, lstm_params, out_params};
    optimizer_ = std::make_unique<nn::AdamT<S>>(all_params_,
                                                nn::AdamOptions{.lr = opts_.learning_rate});
  }

  /// Batched multi-window sweep; returns the *normalized* prediction per
  /// window (the facade denormalizes).
  std::vector<double> predict_windows(const std::deque<double>& history,
                                      const std::vector<std::size_t>& ends) {
    const std::size_t W = ends.size();
    lstm_->reset_batch(W);
    nn::MatrixT<S> h;
    for (std::size_t i = 0; i < opts_.lookback; ++i) {
      nn::MatrixT<S> raw(W, 1);
      for (std::size_t w = 0; w < W; ++w) {
        raw(w, 0) = static_cast<S>(history[ends[w] - opts_.lookback + i]);
      }
      h = lstm_->step_batch(input_layer_.predict_batch(std::move(raw)), /*keep_cache=*/false);
    }
    const nn::MatrixT<S> y = output_layer_.predict_batch(std::move(h));
    lstm_->reset();  // back to per-sample state for train_window
    std::vector<double> out(W);
    for (std::size_t w = 0; w < W; ++w) out[w] = static_cast<double>(y(w, 0));
    return out;
  }

  /// One supervised BPTT step on the window ending at history position
  /// `end`; returns the squared error in normalized space.
  double train_window(const std::deque<double>& history, std::size_t end) {
    const std::size_t begin = end - opts_.lookback;
    // Training forward: per-sample (batch = 1) path, caches kept for BPTT.
    lstm_->reset();
    nn::VecT<S> h;
    for (std::size_t i = 0; i < opts_.lookback; ++i) {
      nn::VecT<S> x = input_layer_.forward(nn::VecT<S>{static_cast<S>(history[begin + i])});
      h = lstm_->step(x);
    }
    const nn::VecT<S> y = output_layer_.forward(h);
    const S pred = y[0];
    const S target = static_cast<S>(history[end]);

    optimizer_->zero_grad();
    nn::LossResultT<S> loss = nn::mse_loss(nn::VecT<S>{pred}, nn::VecT<S>{target});
    // Loss is attached to the last step's output only (next-value
    // prediction); BPTT carries it back through every cached step.
    nn::VecT<S> dh = output_layer_.backward(loss.grad);
    std::vector<nn::VecT<S>> dh_list(opts_.lookback, nn::VecT<S>(opts_.hidden_units, S(0)));
    dh_list.back() = dh;
    std::vector<nn::VecT<S>> dx = lstm_->backward(dh_list);
    for (std::size_t i = dx.size(); i-- > 0;) {
      // LIFO: reverse order of the forwards; the raw-input gradient is unused.
      input_layer_.backward(dx[i], /*want_input_grad=*/false);
    }
    nn::clip_grad_norm(all_params_, opts_.grad_clip);
    optimizer_->step();
    return loss.value;
  }

 private:
  LstmPredictorOptions opts_;
  nn::NetworkT<S> input_layer_;
  std::unique_ptr<nn::LstmT<S>> lstm_;
  nn::NetworkT<S> output_layer_;
  std::unique_ptr<nn::AdamT<S>> optimizer_;
  std::vector<nn::ParamBlockPtrT<S>> all_params_;
};

template class LstmNetCore<float>;
template class LstmNetCore<double>;

}  // namespace detail

LstmPredictor::LstmPredictor(const LstmPredictorOptions& opts) : opts_(opts), rng_(opts.seed) {
  opts_.validate();
  if (opts_.precision == nn::Precision::kF32) {
    f32_ = std::make_unique<detail::LstmNetCore<float>>(opts_, rng_);
  } else {
    f64_ = std::make_unique<detail::LstmNetCore<double>>(opts_, rng_);
  }
}

LstmPredictor::~LstmPredictor() = default;

double LstmPredictor::normalize(double seconds) const {
  return std::log1p(std::max(0.0, seconds)) / std::log1p(opts_.norm_scale_s);
}

double LstmPredictor::denormalize(double z) const {
  return std::expm1(std::max(0.0, z) * std::log1p(opts_.norm_scale_s));
}

void LstmPredictor::observe(double interarrival_s) {
  if (interarrival_s < 0.0) throw std::invalid_argument("LstmPredictor: negative inter-arrival");
  history_.push_back(normalize(interarrival_s));
  if (history_.size() > opts_.history_capacity) history_.pop_front();
  ++total_observed_;
  if (total_observed_ % opts_.train_interval == 0 && history_.size() > opts_.lookback + 1) {
    train_round();
  }
}

double LstmPredictor::predict() {
  if (history_.size() < opts_.lookback) return opts_.prior_s;
  // Batch-of-one window through the batched sweep: same kernels, same result.
  return predict_windows({history_.size()}).front();
}

std::vector<double> LstmPredictor::predict_n(std::size_t n) {
  if (n == 0) return {};
  if (history_.size() < opts_.lookback) return std::vector<double>(n, opts_.prior_s);
  // n copies of the live window through ONE stacked sweep (batch = n). The
  // GEMM row-batch invariance (see nn/matrix.hpp) makes each entry
  // bit-identical to a lone predict() call.
  return predict_windows(std::vector<std::size_t>(n, history_.size()));
}

std::vector<double> LstmPredictor::predict_windows(const std::vector<std::size_t>& ends) {
  if (ends.empty()) return {};
  for (const std::size_t end : ends) {
    if (end > history_.size() || end < opts_.lookback) {
      throw std::invalid_argument("LstmPredictor::predict_windows: bad window end");
    }
  }
  std::vector<double> out =
      f32_ ? f32_->predict_windows(history_, ends) : f64_->predict_windows(history_, ends);
  for (auto& v : out) v = denormalize(v);
  return out;
}

double LstmPredictor::train_window(std::size_t end) {
  if (end >= history_.size() || end < opts_.lookback) {
    throw std::invalid_argument("LstmPredictor::train_window: bad window end");
  }
  return f32_ ? f32_->train_window(history_, end) : f64_->train_window(history_, end);
}

void LstmPredictor::train_round() {
  double total = 0.0;
  for (std::size_t w = 0; w < opts_.train_windows; ++w) {
    const auto end = static_cast<std::size_t>(
        rng_.uniform_int(static_cast<std::int64_t>(opts_.lookback),
                         static_cast<std::int64_t>(history_.size()) - 1));
    total += train_window(end);
  }
  last_loss_ = total / static_cast<double>(opts_.train_windows);
}

std::unique_ptr<WorkloadPredictor> make_predictor(const std::string& kind,
                                                  const LstmPredictorOptions& lstm_opts) {
  if (kind == "lstm") return std::make_unique<LstmPredictor>(lstm_opts);
  if (kind == "last-value") return std::make_unique<LastValuePredictor>(lstm_opts.prior_s);
  if (kind == "sliding-mean") {
    return std::make_unique<SlidingMeanPredictor>(lstm_opts.lookback, lstm_opts.prior_s);
  }
  if (kind == "window") {
    return std::make_unique<WindowPredictor>(lstm_opts.lookback, lstm_opts.prior_s);
  }
  if (kind == "ar") {
    return std::make_unique<ArPredictor>(/*order=*/4, lstm_opts.prior_s);
  }
  throw std::invalid_argument(
      "make_predictor: " + common::unknown_key_message("predictor", kind, predictor_kinds()));
}

std::vector<std::string> predictor_kinds() {
  return {"lstm", "last-value", "sliding-mean", "window", "ar"};
}

}  // namespace hcrl::core
