// Workload predictors for the local tier (§VI-A).
//
// The predictor estimates the next job inter-arrival time at one server;
// its (discretized) output is the state of the RL power manager. The paper
// uses a three-layer LSTM network (input hidden layer, LSTM cell layer with
// 30 hidden units over a 35-step look-back window, output hidden layer)
// trained with Adam. LastValue and SlidingMean reproduce the linear-
// combination predictors of prior work [30, 31] that the paper argues
// against — they are the ablation baselines.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/nn/precision.hpp"

namespace hcrl::core {

class WorkloadPredictor {
 public:
  virtual ~WorkloadPredictor() = default;

  /// Feed one observed inter-arrival time (seconds, > 0).
  virtual void observe(double interarrival_s) = 0;
  /// Predicted next inter-arrival time (seconds). Implementations return a
  /// configurable prior before enough observations accumulate.
  virtual double predict() = 0;
  /// Batching seam for core::DecisionService: `n` live predictions in one
  /// call. predict() is pure (no observation is consumed), so every entry
  /// equals predict(); the default loops it, the LSTM overrides with a single
  /// batched multi-window sweep so n requests cost one stacked-gate GEMM
  /// chain instead of n.
  virtual std::vector<double> predict_n(std::size_t n) {
    std::vector<double> out(n);
    for (auto& v : out) v = predict();
    return out;
  }
  virtual std::string name() const = 0;
};

/// Predicts the next inter-arrival equals the last one observed.
class LastValuePredictor final : public WorkloadPredictor {
 public:
  explicit LastValuePredictor(double prior_s = 600.0) : value_(prior_s) {}
  void observe(double interarrival_s) override { value_ = interarrival_s; }
  double predict() override { return value_; }
  std::string name() const override { return "last-value"; }

 private:
  double value_;
};

/// Mean of the last `window` observations — the linear predictor whose
/// weakness ("one very long inter-arrival time can ruin a set of subsequent
/// predictions") motivates the LSTM.
class SlidingMeanPredictor final : public WorkloadPredictor {
 public:
  explicit SlidingMeanPredictor(std::size_t window = 35, double prior_s = 600.0);
  void observe(double interarrival_s) override;
  double predict() override;
  std::string name() const override { return "sliding-mean"; }

 private:
  std::size_t window_;
  double prior_;
  std::deque<double> values_;
  double sum_ = 0.0;
};

/// Fixed-window rolling-sum mean over a power-of-two ring buffer — the O(1)
/// "length predictor" idiom of production log/replication code (SNIPPETS.md
/// #2/#3). Unlike SlidingMeanPredictor the ring is pre-filled with the
/// prior, so early predictions blend the prior out sample by sample instead
/// of jumping to the mean of a short partial window, and observe()/predict()
/// never allocate. Config name: predictor = "window".
class WindowPredictor final : public WorkloadPredictor {
 public:
  /// `window` is rounded up to the next power of two (mask indexing).
  explicit WindowPredictor(std::size_t window = 32, double prior_s = 600.0);
  void observe(double interarrival_s) override;
  double predict() override { return sum_ / static_cast<double>(ring_.size()); }
  std::string name() const override { return "window"; }
  std::size_t window() const noexcept { return ring_.size(); }

 private:
  std::vector<double> ring_;  // size is a power of two
  std::size_t mask_;
  std::size_t next_ = 0;
  double sum_;
};

/// Autoregressive AR(p) predictor fit by online least squares — the
/// "linear combination of previous idle times (or request inter-arrival
/// times)" model of the paper's references [30, 31], §VI-A. Coefficients
/// are refit periodically on the recent history via the normal equations
/// with ridge regularization.
class ArPredictor final : public WorkloadPredictor {
 public:
  ArPredictor(std::size_t order = 4, double prior_s = 600.0, std::size_t refit_interval = 32,
              std::size_t history_capacity = 1024, double ridge = 1e-3);

  void observe(double interarrival_s) override;
  double predict() override;
  std::string name() const override { return "ar"; }

  const std::vector<double>& coefficients() const noexcept { return coef_; }
  bool fitted() const noexcept { return fitted_; }

 private:
  void refit();

  std::size_t order_;
  double prior_;
  std::size_t refit_interval_;
  std::size_t history_capacity_;
  double ridge_;
  std::deque<double> history_;
  std::vector<double> coef_;  // [bias, w_1..w_p], newest lag first
  bool fitted_ = false;
  std::size_t since_refit_ = 0;
};

struct LstmPredictorOptions {
  std::size_t lookback = 35;       // paper: past 35 inter-arrival times
  std::size_t hidden_units = 30;   // paper: 30 hidden units
  std::size_t input_hidden = 1;    // paper: LSTM cell input size 1
  double learning_rate = 1e-3;     // Adam (paper reference [27])
  double grad_clip = 10.0;
  double norm_scale_s = 3600.0;    // inter-arrivals are log-normalized by this
  double prior_s = 600.0;          // prediction before warm-up
  std::size_t history_capacity = 4096;
  std::size_t train_interval = 8;  // train after every N observations
  std::size_t train_windows = 4;   // windows per training round
  std::uint64_t seed = 11;
  /// Scalar type of the LSTM stack (see nn/precision.hpp). The history,
  /// normalization and prediction interface stay double-typed.
  nn::Precision precision = nn::default_precision();

  void validate() const;
};

namespace detail {
template <class S>
class LstmNetCore;
}  // namespace detail

class LstmPredictor final : public WorkloadPredictor {
 public:
  explicit LstmPredictor(const LstmPredictorOptions& opts);
  ~LstmPredictor() override;

  void observe(double interarrival_s) override;
  double predict() override;
  /// n live predictions through ONE batched LSTM sweep (batch = n), instead
  /// of n sequential forward chains; entries are bit-identical to predict().
  std::vector<double> predict_n(std::size_t n) override;
  std::string name() const override { return "lstm"; }

  /// Batched multi-window prediction: window w feeds the `lookback` history
  /// values before position ends[w] through one stacked LSTM sweep (batch =
  /// ends.size(), one GEMM per timestep) and returns the denormalized
  /// next-value prediction per window. ends[w] = history size predicts the
  /// live next inter-arrival; smaller ends backtest past positions.
  std::vector<double> predict_windows(const std::vector<std::size_t>& ends);

  /// One supervised BPTT step on a window ending at history position `end`
  /// (predicts history[end] from the `lookback` values before it).
  /// Returns the squared error. Exposed for tests and offline pretraining.
  double train_window(std::size_t end);

  std::size_t observations() const noexcept { return total_observed_; }
  double last_training_loss() const noexcept { return last_loss_; }
  const LstmPredictorOptions& options() const noexcept { return opts_; }

  // Normalization helpers (exposed for tests).
  double normalize(double seconds) const;
  double denormalize(double z) const;

 private:
  void train_round();

  LstmPredictorOptions opts_;
  common::Rng rng_;
  // Exactly one core is non-null, matching opts_.precision: the NN stack
  // (input layer, LSTM cell, output layer, optimizer) at that Scalar type.
  std::unique_ptr<detail::LstmNetCore<float>> f32_;
  std::unique_ptr<detail::LstmNetCore<double>> f64_;
  std::deque<double> history_;  // normalized values
  std::size_t total_observed_ = 0;
  double last_loss_ = -1.0;
};

/// Factory used by configs ("lstm", "last-value", "sliding-mean", "window",
/// "ar"). Unknown kinds throw with a did-you-mean suggestion over
/// predictor_kinds().
std::unique_ptr<WorkloadPredictor> make_predictor(const std::string& kind,
                                                  const LstmPredictorOptions& lstm_opts);

/// Every kind make_predictor accepts, in listing order.
std::vector<std::string> predictor_kinds();

}  // namespace hcrl::core
