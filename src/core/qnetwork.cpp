#include "src/core/qnetwork.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/nn/loss.hpp"
#include "src/rl/smdp.hpp"

namespace hcrl::core {

void GroupedQOptions::validate() const {
  encoder.validate();
  if (autoencoder_dims.empty()) throw std::invalid_argument("GroupedQOptions: no AE dims");
  if (subq_hidden == 0) throw std::invalid_argument("GroupedQOptions: subq_hidden == 0");
  if (learning_rate <= 0.0 || autoencoder_learning_rate <= 0.0) {
    throw std::invalid_argument("GroupedQOptions: learning rates must be > 0");
  }
  if (autoencoder_batch == 0 || autoencoder_train_interval == 0 || autoencoder_buffer == 0) {
    throw std::invalid_argument("GroupedQOptions: autoencoder batch/interval/buffer must be > 0");
  }
}

GroupedQNetwork::GroupedQNetwork(const GroupedQOptions& opts, common::Rng& rng) : opts_(opts) {
  opts_.validate();
  const auto& enc = opts_.encoder;

  nn::Autoencoder::Options ae_opts;
  ae_opts.encoder_dims = opts_.autoencoder_dims;
  ae_opts.learning_rate = opts_.autoencoder_learning_rate;
  ae_opts.grad_clip = opts_.grad_clip;
  autoencoder_ = std::make_unique<nn::Autoencoder>(enc.group_state_dim(), ae_opts, rng);

  head_input_dim_ = enc.group_state_dim() + enc.job_state_dim() +
                    (enc.num_groups - 1) * autoencoder_->code_dim();

  online_subq_ = std::make_unique<nn::Network>(build_subq(rng));
  target_subq_ = std::make_unique<nn::Network>(build_subq(rng));
  sync_target();
  optimizer_ = std::make_unique<nn::Adam>(online_subq_->params(),
                                          nn::Adam::Options{.lr = opts_.learning_rate});
  ae_buffer_.reserve(opts_.autoencoder_buffer);
}

nn::Network GroupedQNetwork::build_subq(common::Rng& rng) const {
  // One fully-connected hidden layer of ELUs and a linear output with one
  // unit per server in the group (§VII-A).
  nn::Network net;
  net.add_dense(head_input_dim_, opts_.subq_hidden, nn::Activation::kElu, rng);
  net.add_dense(opts_.subq_hidden, opts_.encoder.group_size(), nn::Activation::kIdentity, rng);
  return net;
}

nn::Vec GroupedQNetwork::slice_group(const nn::Vec& full_state, std::size_t group) const {
  const auto& enc = opts_.encoder;
  if (group >= enc.num_groups) throw std::out_of_range("slice_group: bad group");
  if (full_state.size() != enc.full_state_dim()) {
    throw std::invalid_argument("slice_group: bad state size");
  }
  const std::size_t g = enc.group_state_dim();
  return nn::Vec(full_state.begin() + static_cast<std::ptrdiff_t>(group * g),
                 full_state.begin() + static_cast<std::ptrdiff_t>((group + 1) * g));
}

nn::Vec GroupedQNetwork::slice_job(const nn::Vec& full_state) const {
  const auto& enc = opts_.encoder;
  if (full_state.size() != enc.full_state_dim()) {
    throw std::invalid_argument("slice_job: bad state size");
  }
  return nn::Vec(full_state.end() - static_cast<std::ptrdiff_t>(enc.job_state_dim()),
                 full_state.end());
}

nn::Vec GroupedQNetwork::head_input(const nn::Vec& full_state, std::size_t group,
                                    const std::vector<nn::Vec>& codes) const {
  nn::Vec input;
  input.reserve(head_input_dim_);
  nn::Vec g = slice_group(full_state, group);
  input.insert(input.end(), g.begin(), g.end());
  nn::Vec j = slice_job(full_state);
  input.insert(input.end(), j.begin(), j.end());
  for (std::size_t k = 0; k < codes.size(); ++k) {
    if (k == group) continue;
    input.insert(input.end(), codes[k].begin(), codes[k].end());
  }
  return input;
}

nn::Vec GroupedQNetwork::q_values_with(nn::Network& subq, const nn::Vec& full_state) {
  const auto& enc = opts_.encoder;
  std::vector<nn::Vec> codes(enc.num_groups);
  for (std::size_t k = 0; k < enc.num_groups; ++k) {
    codes[k] = autoencoder_->encode(slice_group(full_state, k));
  }
  nn::Vec q;
  q.reserve(num_actions());
  for (std::size_t k = 0; k < enc.num_groups; ++k) {
    nn::Vec head_q = subq.predict(head_input(full_state, k, codes));
    q.insert(q.end(), head_q.begin(), head_q.end());
  }
  return q;
}

nn::Vec GroupedQNetwork::q_values(const nn::Vec& full_state) {
  return q_values_with(*online_subq_, full_state);
}

nn::Vec GroupedQNetwork::q_values_target(const nn::Vec& full_state) {
  return q_values_with(*target_subq_, full_state);
}

double GroupedQNetwork::train_batch(const std::vector<const rl::Transition*>& batch,
                                    double beta) {
  if (batch.empty()) throw std::invalid_argument("GroupedQNetwork::train_batch: empty batch");
  const auto& enc = opts_.encoder;
  optimizer_->zero_grad();
  double total_loss = 0.0;
  const double inv_n = 1.0 / static_cast<double>(batch.size());

  for (const rl::Transition* t : batch) {
    nn::Vec next_q = q_values_target(t->next_state);
    double best_next;
    if (opts_.double_q) {
      best_next = next_q[nn::argmax(q_values(t->next_state))];
    } else {
      best_next = next_q[nn::argmax(next_q)];
    }
    const double target = rl::smdp_target(t->reward_rate, t->tau, beta, best_next);

    // Only the head owning the chosen action receives gradient; weight
    // sharing means this still trains the one physical Sub-Q network.
    const std::size_t group = t->action / enc.group_size();
    const std::size_t local = t->action % enc.group_size();

    std::vector<nn::Vec> codes(enc.num_groups);
    for (std::size_t k = 0; k < enc.num_groups; ++k) {
      if (k == group) continue;
      codes[k] = autoencoder_->encode(slice_group(t->state, k));
    }
    nn::Vec pred = online_subq_->forward(head_input(t->state, group, codes));
    nn::LossResult loss = nn::masked_huber_loss(pred, local, target, /*delta=*/1.0);
    total_loss += loss.value;
    nn::scale_in_place(loss.grad, inv_n);
    online_subq_->backward(loss.grad);
  }
  nn::clip_grad_norm(online_subq_->params(), opts_.grad_clip);
  optimizer_->step();
  return total_loss * inv_n;
}

std::vector<nn::ParamBlockPtr> GroupedQNetwork::trainable_params() const {
  auto out = online_subq_->params();
  auto ae = autoencoder_->params();
  out.insert(out.end(), ae.begin(), ae.end());
  return out;
}

void GroupedQNetwork::sync_target() {
  nn::copy_param_values(online_subq_->params(), target_subq_->params());
}

double GroupedQNetwork::observe_state(const nn::Vec& full_state, common::Rng& rng) {
  const auto& enc = opts_.encoder;
  for (std::size_t k = 0; k < enc.num_groups; ++k) {
    nn::Vec g = slice_group(full_state, k);
    if (ae_buffer_.size() < opts_.autoencoder_buffer) {
      ae_buffer_.push_back(std::move(g));
    } else {
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(ae_buffer_.size()) - 1));
      ae_buffer_[idx] = std::move(g);  // reservoir-style replacement
    }
  }
  ++ae_seen_;
  if (ae_seen_ % opts_.autoencoder_train_interval != 0 ||
      ae_buffer_.size() < opts_.autoencoder_batch) {
    return -1.0;
  }
  std::vector<nn::Vec> batch;
  batch.reserve(opts_.autoencoder_batch);
  for (std::size_t i = 0; i < opts_.autoencoder_batch; ++i) {
    const auto idx = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(ae_buffer_.size()) - 1));
    batch.push_back(ae_buffer_[idx]);
  }
  last_ae_loss_ = autoencoder_->train_batch(batch);
  return last_ae_loss_;
}

}  // namespace hcrl::core
