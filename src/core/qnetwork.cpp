#include "src/core/qnetwork.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/nn/autoencoder.hpp"
#include "src/nn/loss.hpp"
#include "src/nn/network.hpp"
#include "src/nn/optimizer.hpp"
#include "src/nn/serialize.hpp"
#include "src/rl/smdp.hpp"

namespace hcrl::core {

void GroupedQOptions::validate() const {
  encoder.validate();
  if (autoencoder_dims.empty()) throw std::invalid_argument("GroupedQOptions: no AE dims");
  if (subq_hidden == 0) throw std::invalid_argument("GroupedQOptions: subq_hidden == 0");
  if (learning_rate <= 0.0 || autoencoder_learning_rate <= 0.0) {
    throw std::invalid_argument("GroupedQOptions: learning rates must be > 0");
  }
  if (autoencoder_batch == 0 || autoencoder_train_interval == 0 || autoencoder_buffer == 0) {
    throw std::invalid_argument("GroupedQOptions: autoencoder batch/interval/buffer must be > 0");
  }
}

namespace detail {

/// Precision-parameterized half of GroupedQNetwork: the autoencoder, the
/// online/target Sub-Q stacks, the optimizer and all the GEMM plumbing. The
/// decision-path scratch matrices live here and are reused across calls, so
/// one q_values() decision costs the network sweeps plus a single head
/// matrix staging — no per-head Vec assembly (the hot-hook allocation
/// cleanup of the decision epoch).
template <class S>
class GroupedQCore {
 public:
  GroupedQCore(const GroupedQOptions& opts, std::size_t head_input_dim, common::Rng& rng)
      : opts_(opts), head_input_dim_(head_input_dim) {
    nn::AutoencoderOptions ae_opts;
    ae_opts.encoder_dims = opts_.autoencoder_dims;
    ae_opts.learning_rate = opts_.autoencoder_learning_rate;
    ae_opts.grad_clip = opts_.grad_clip;
    autoencoder_ = std::make_unique<nn::AutoencoderT<S>>(opts_.encoder.group_state_dim(), ae_opts,
                                                         rng);
    online_subq_ = std::make_unique<nn::NetworkT<S>>(build_subq(rng));
    target_subq_ = std::make_unique<nn::NetworkT<S>>(build_subq(rng));
    sync_target();
    optimizer_ = std::make_unique<nn::AdamT<S>>(online_subq_->params(),
                                                nn::AdamOptions{.lr = opts_.learning_rate});
  }

  nn::Vec q_values(const nn::Vec& full_state) { return q_values_with(*online_subq_, full_state); }

  nn::Vec q_values_target(const nn::Vec& full_state) {
    return q_values_with(*target_subq_, full_state);
  }

  void q_values_batch(std::span<const nn::Vec* const> states, nn::Matrix& out) {
    q_values_batch_with(*online_subq_, states, out);
  }

  double train_batch(const std::vector<const rl::Transition*>& batch, double beta) {
    const auto& enc = opts_.encoder;
    const std::size_t n = batch.size();
    const std::size_t K = enc.num_groups;
    optimizer_->zero_grad();

    // Bootstrap-target sweep, batched across the whole minibatch: all n*K
    // next-state group encodes in one autoencoder pass, then all n*K Sub-Q
    // head forwards in one target-network pass (two when double Q-learning
    // also needs the online network's argmax).
    nn::MatrixT<S> next_groups;
    next_groups.resize_for_overwrite(n * K, enc.group_state_dim());
    for (std::size_t b = 0; b < n; ++b) fill_group_rows(next_groups, b * K, batch[b]->next_state);
    const nn::MatrixT<S> next_codes = autoencoder_->encode_batch(std::move(next_groups));
    nn::MatrixT<S> next_heads;
    next_heads.resize_for_overwrite(n * K, head_input_dim_);
    for (std::size_t b = 0; b < n; ++b) {
      for (std::size_t k = 0; k < K; ++k) {
        fill_head_row(next_heads, b * K + k, batch[b]->next_state, k, next_codes, b * K);
      }
    }
    nn::MatrixT<S> next_q_online;
    if (opts_.double_q) next_q_online = online_subq_->predict_batch(next_heads);
    const nn::MatrixT<S> next_q = target_subq_->predict_batch(std::move(next_heads));

    nn::VecT<S> targets(n);
    std::vector<std::size_t> locals(n);
    nn::VecT<S> q_next, q_online;
    for (std::size_t b = 0; b < n; ++b) {
      // Reassemble this transition's K*group_size Q-vector from its K rows.
      q_next.clear();
      for (std::size_t k = 0; k < K; ++k) {
        for (std::size_t a = 0; a < enc.group_size(); ++a) q_next.push_back(next_q(b * K + k, a));
      }
      S best_next;
      if (opts_.double_q) {
        q_online.clear();
        for (std::size_t k = 0; k < K; ++k) {
          for (std::size_t a = 0; a < enc.group_size(); ++a) {
            q_online.push_back(next_q_online(b * K + k, a));
          }
        }
        best_next = q_next[nn::argmax(q_online)];
      } else {
        best_next = q_next[nn::argmax(q_next)];
      }
      targets[b] = static_cast<S>(rl::smdp_target(batch[b]->reward_rate, batch[b]->tau, beta,
                                                  static_cast<double>(best_next)));
      locals[b] = batch[b]->action % enc.group_size();
    }

    // Online pass: only the head owning each chosen action receives gradient;
    // weight sharing means the n rows still train the one physical Sub-Q
    // network, and the per-sample gradient sum folds into the backward GEMMs.
    nn::MatrixT<S> state_groups;
    state_groups.resize_for_overwrite(n * K, enc.group_state_dim());
    for (std::size_t b = 0; b < n; ++b) fill_group_rows(state_groups, b * K, batch[b]->state);
    const nn::MatrixT<S> state_codes = autoencoder_->encode_batch(std::move(state_groups));
    nn::MatrixT<S> pred_heads;
    pred_heads.resize_for_overwrite(n, head_input_dim_);
    for (std::size_t b = 0; b < n; ++b) {
      const std::size_t group = batch[b]->action / enc.group_size();
      fill_head_row(pred_heads, b, batch[b]->state, group, state_codes, b * K);
    }
    const nn::MatrixT<S> pred = online_subq_->forward_batch(std::move(pred_heads));
    const double inv_n = 1.0 / static_cast<double>(n);
    nn::BatchLossResultT<S> loss = nn::masked_huber_loss_batch(pred, locals, targets, S(1),
                                                               static_cast<S>(inv_n));
    online_subq_->backward_batch(loss.grad, /*want_input_grad=*/false);

    nn::clip_grad_norm(online_subq_->params(), opts_.grad_clip);
    optimizer_->step();
    return loss.value * inv_n;
  }

  void sync_target() { nn::copy_param_values(online_subq_->params(), target_subq_->params()); }

  double train_autoencoder(const std::vector<const nn::Vec*>& batch) {
    nn::MatrixT<S> X;
    X.resize_for_overwrite(batch.size(), opts_.encoder.group_state_dim());
    for (std::size_t b = 0; b < batch.size(); ++b) X.set_row_cast(b, *batch[b]);
    return autoencoder_->train_batch_matrix(X);
  }

  std::size_t subq_param_count() const { return online_subq_->param_count(); }
  std::size_t autoencoder_param_count() const { return autoencoder_->param_count(); }

  std::vector<nn::ParamBlockPtrT<S>> trainable_params_typed() const {
    auto out = online_subq_->params();
    auto ae = autoencoder_->params();
    out.insert(out.end(), ae.begin(), ae.end());
    return out;
  }

 private:
  nn::NetworkT<S> build_subq(common::Rng& rng) const {
    // One fully-connected hidden layer of ELUs and a linear output with one
    // unit per server in the group (§VII-A).
    nn::NetworkT<S> net;
    net.add_dense(head_input_dim_, opts_.subq_hidden, nn::Activation::kElu, rng);
    net.add_dense(opts_.subq_hidden, opts_.encoder.group_size(), nn::Activation::kIdentity, rng);
    return net;
  }

  /// Rows row0..row0+K-1 of `dst` = the K group slices of `full_state`.
  void fill_group_rows(nn::MatrixT<S>& dst, std::size_t row0, const nn::Vec& full_state) const {
    const auto& enc = opts_.encoder;
    if (full_state.size() != enc.full_state_dim()) {
      throw std::invalid_argument("GroupedQNetwork: bad state size");
    }
    const std::size_t g = enc.group_state_dim();
    for (std::size_t k = 0; k < enc.num_groups; ++k) {
      S* out = dst.data() + (row0 + k) * dst.cols();
      const double* src = full_state.data() + k * g;
      for (std::size_t i = 0; i < g; ++i) out[i] = static_cast<S>(src[i]);
    }
  }

  /// Row `row` of `dst` = head input of `group`: [g_k, s_j, codes of other
  /// groups]. `codes` holds one code per row; row `code_row0 + k` is group
  /// k's code. Writes in place — no per-head Vec staging.
  void fill_head_row(nn::MatrixT<S>& dst, std::size_t row, const nn::Vec& full_state,
                     std::size_t group, const nn::MatrixT<S>& codes,
                     std::size_t code_row0) const {
    const auto& enc = opts_.encoder;
    const std::size_t g = enc.group_state_dim();
    const std::size_t j = enc.job_state_dim();
    S* out = dst.data() + row * dst.cols();
    const double* gsrc = full_state.data() + group * g;
    for (std::size_t i = 0; i < g; ++i) *out++ = static_cast<S>(gsrc[i]);
    const double* jsrc = full_state.data() + (full_state.size() - j);
    for (std::size_t i = 0; i < j; ++i) *out++ = static_cast<S>(jsrc[i]);
    for (std::size_t k = 0; k < enc.num_groups; ++k) {
      if (k == group) continue;
      const S* code = codes.data() + (code_row0 + k) * codes.cols();
      for (std::size_t i = 0; i < codes.cols(); ++i) *out++ = code[i];
    }
  }

  nn::Vec q_values_with(nn::NetworkT<S>& subq, const nn::Vec& full_state) {
    nn::Matrix out;
    const nn::Vec* state = &full_state;
    q_values_batch_with(subq, {&state, 1}, out);
    return out.row(0);
  }

  /// B decision states through ONE autoencoder sweep (B*K group rows) and ONE
  /// Sub-Q sweep (B*K head rows), instead of B separate 2-sweep q_values()
  /// calls. Row b of `out` is the full |M|-action Q-vector of states[b],
  /// written in place — the decision epoch reads rows as spans, never
  /// assembling per-state Vecs. Single-panel GEMM row invariance (head input
  /// and hidden dims < one k-panel, see nn/matrix.hpp) makes each row
  /// bit-identical to a lone q_values() call.
  void q_values_batch_with(nn::NetworkT<S>& subq, std::span<const nn::Vec* const> states,
                           nn::Matrix& out) {
    const auto& enc = opts_.encoder;
    const std::size_t B = states.size();
    const std::size_t K = enc.num_groups;
    out.resize_for_overwrite(B, enc.num_servers);
    if (B == 0) return;
    // The staging matrices are written row-in-place straight from the states
    // (no per-head Vec assembly, one allocation each) and then move-consumed
    // by the sweeps, which recycle them as layer activations.
    nn::MatrixT<S> groups;
    groups.resize_for_overwrite(B * K, enc.group_state_dim());
    for (std::size_t b = 0; b < B; ++b) fill_group_rows(groups, b * K, *states[b]);
    const nn::MatrixT<S> codes = autoencoder_->encode_batch(std::move(groups));
    nn::MatrixT<S> heads;
    heads.resize_for_overwrite(B * K, head_input_dim_);
    for (std::size_t b = 0; b < B; ++b) {
      for (std::size_t k = 0; k < K; ++k) {
        fill_head_row(heads, b * K + k, *states[b], k, codes, b * K);
      }
    }
    const nn::MatrixT<S> head_q = subq.predict_batch(std::move(heads));
    for (std::size_t b = 0; b < B; ++b) {
      double* dst = out.data() + b * out.cols();
      for (std::size_t k = 0; k < K; ++k) {
        const S* src = head_q.data() + (b * K + k) * head_q.cols();
        for (std::size_t a = 0; a < enc.group_size(); ++a) *dst++ = static_cast<double>(src[a]);
      }
    }
  }

  GroupedQOptions opts_;
  std::size_t head_input_dim_;
  std::unique_ptr<nn::AutoencoderT<S>> autoencoder_;
  std::unique_ptr<nn::NetworkT<S>> online_subq_;
  std::unique_ptr<nn::NetworkT<S>> target_subq_;
  std::unique_ptr<nn::AdamT<S>> optimizer_;
};

template class GroupedQCore<float>;
template class GroupedQCore<double>;

}  // namespace detail

GroupedQNetwork::GroupedQNetwork(const GroupedQOptions& opts, common::Rng& rng) : opts_(opts) {
  opts_.validate();
  const auto& enc = opts_.encoder;
  // The code dimension is the last encoder layer's width.
  head_input_dim_ = enc.group_state_dim() + enc.job_state_dim() +
                    (enc.num_groups - 1) * opts_.autoencoder_dims.back();
  if (opts_.precision == nn::Precision::kF32) {
    f32_ = std::make_unique<detail::GroupedQCore<float>>(opts_, head_input_dim_, rng);
  } else {
    f64_ = std::make_unique<detail::GroupedQCore<double>>(opts_, head_input_dim_, rng);
  }
  ae_buffer_.reserve(opts_.autoencoder_buffer);
}

GroupedQNetwork::~GroupedQNetwork() = default;
GroupedQNetwork::GroupedQNetwork(GroupedQNetwork&&) noexcept = default;
GroupedQNetwork& GroupedQNetwork::operator=(GroupedQNetwork&&) noexcept = default;

nn::Vec GroupedQNetwork::slice_group(const nn::Vec& full_state, std::size_t group) const {
  const auto& enc = opts_.encoder;
  if (group >= enc.num_groups) throw std::out_of_range("slice_group: bad group");
  if (full_state.size() != enc.full_state_dim()) {
    throw std::invalid_argument("slice_group: bad state size");
  }
  const std::size_t g = enc.group_state_dim();
  return nn::Vec(full_state.begin() + static_cast<std::ptrdiff_t>(group * g),
                 full_state.begin() + static_cast<std::ptrdiff_t>((group + 1) * g));
}

nn::Vec GroupedQNetwork::slice_job(const nn::Vec& full_state) const {
  const auto& enc = opts_.encoder;
  if (full_state.size() != enc.full_state_dim()) {
    throw std::invalid_argument("slice_job: bad state size");
  }
  return nn::Vec(full_state.end() - static_cast<std::ptrdiff_t>(enc.job_state_dim()),
                 full_state.end());
}

nn::Vec GroupedQNetwork::q_values(const nn::Vec& full_state) {
  return f32_ ? f32_->q_values(full_state) : f64_->q_values(full_state);
}

nn::Vec GroupedQNetwork::q_values_target(const nn::Vec& full_state) {
  return f32_ ? f32_->q_values_target(full_state) : f64_->q_values_target(full_state);
}

void GroupedQNetwork::q_values_batch(std::span<const nn::Vec* const> states, nn::Matrix& out) {
  if (f32_) {
    f32_->q_values_batch(states, out);
  } else {
    f64_->q_values_batch(states, out);
  }
}

double GroupedQNetwork::train_batch(const std::vector<const rl::Transition*>& batch,
                                    double beta) {
  if (batch.empty()) throw std::invalid_argument("GroupedQNetwork::train_batch: empty batch");
  return f32_ ? f32_->train_batch(batch, beta) : f64_->train_batch(batch, beta);
}

void GroupedQNetwork::sync_target() {
  if (f32_) {
    f32_->sync_target();
  } else {
    f64_->sync_target();
  }
}

std::size_t GroupedQNetwork::subq_param_count() const {
  return f32_ ? f32_->subq_param_count() : f64_->subq_param_count();
}

std::size_t GroupedQNetwork::autoencoder_param_count() const {
  return f32_ ? f32_->autoencoder_param_count() : f64_->autoencoder_param_count();
}

std::vector<nn::ParamBlockPtr> GroupedQNetwork::trainable_params() const {
  if (!f64_) {
    throw std::logic_error(
        "GroupedQNetwork::trainable_params: network is f32; use param_values()");
  }
  return f64_->trainable_params_typed();
}

std::vector<double> GroupedQNetwork::param_values() const {
  return f32_ ? nn::flatten_param_values(f32_->trainable_params_typed())
              : nn::flatten_param_values(f64_->trainable_params_typed());
}

void GroupedQNetwork::save_params(std::ostream& out) const {
  if (f32_) {
    nn::save_params(out, f32_->trainable_params_typed());
  } else {
    nn::save_params(out, f64_->trainable_params_typed());
  }
}

void GroupedQNetwork::load_params(std::istream& in) {
  if (f32_) {
    nn::load_params(in, f32_->trainable_params_typed());
    f32_->sync_target();
  } else {
    nn::load_params(in, f64_->trainable_params_typed());
    f64_->sync_target();
  }
}

double GroupedQNetwork::observe_state(const nn::Vec& full_state, common::Rng& rng) {
  const auto& enc = opts_.encoder;
  for (std::size_t k = 0; k < enc.num_groups; ++k) {
    nn::Vec g = slice_group(full_state, k);
    if (ae_buffer_.size() < opts_.autoencoder_buffer) {
      ae_buffer_.push_back(std::move(g));
    } else {
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(ae_buffer_.size()) - 1));
      ae_buffer_[idx] = std::move(g);  // reservoir-style replacement
    }
  }
  ++ae_seen_;
  if (ae_seen_ % opts_.autoencoder_train_interval != 0 ||
      ae_buffer_.size() < opts_.autoencoder_batch) {
    return -1.0;
  }
  // Sample by pointer: the rows are copied once, straight into the staging
  // matrix of the batched reconstruction pass.
  std::vector<const nn::Vec*> batch;
  batch.reserve(opts_.autoencoder_batch);
  for (std::size_t i = 0; i < opts_.autoencoder_batch; ++i) {
    const auto idx = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(ae_buffer_.size()) - 1));
    batch.push_back(&ae_buffer_[idx]);
  }
  last_ae_loss_ = f32_ ? f32_->train_autoencoder(batch) : f64_->train_autoencoder(batch);
  return last_ae_loss_;
}

}  // namespace hcrl::core
