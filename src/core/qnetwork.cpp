#include "src/core/qnetwork.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/nn/loss.hpp"
#include "src/rl/smdp.hpp"

namespace hcrl::core {

void GroupedQOptions::validate() const {
  encoder.validate();
  if (autoencoder_dims.empty()) throw std::invalid_argument("GroupedQOptions: no AE dims");
  if (subq_hidden == 0) throw std::invalid_argument("GroupedQOptions: subq_hidden == 0");
  if (learning_rate <= 0.0 || autoencoder_learning_rate <= 0.0) {
    throw std::invalid_argument("GroupedQOptions: learning rates must be > 0");
  }
  if (autoencoder_batch == 0 || autoencoder_train_interval == 0 || autoencoder_buffer == 0) {
    throw std::invalid_argument("GroupedQOptions: autoencoder batch/interval/buffer must be > 0");
  }
}

GroupedQNetwork::GroupedQNetwork(const GroupedQOptions& opts, common::Rng& rng) : opts_(opts) {
  opts_.validate();
  const auto& enc = opts_.encoder;

  nn::Autoencoder::Options ae_opts;
  ae_opts.encoder_dims = opts_.autoencoder_dims;
  ae_opts.learning_rate = opts_.autoencoder_learning_rate;
  ae_opts.grad_clip = opts_.grad_clip;
  autoencoder_ = std::make_unique<nn::Autoencoder>(enc.group_state_dim(), ae_opts, rng);

  head_input_dim_ = enc.group_state_dim() + enc.job_state_dim() +
                    (enc.num_groups - 1) * autoencoder_->code_dim();

  online_subq_ = std::make_unique<nn::Network>(build_subq(rng));
  target_subq_ = std::make_unique<nn::Network>(build_subq(rng));
  sync_target();
  optimizer_ = std::make_unique<nn::Adam>(online_subq_->params(),
                                          nn::Adam::Options{.lr = opts_.learning_rate});
  ae_buffer_.reserve(opts_.autoencoder_buffer);
}

nn::Network GroupedQNetwork::build_subq(common::Rng& rng) const {
  // One fully-connected hidden layer of ELUs and a linear output with one
  // unit per server in the group (§VII-A).
  nn::Network net;
  net.add_dense(head_input_dim_, opts_.subq_hidden, nn::Activation::kElu, rng);
  net.add_dense(opts_.subq_hidden, opts_.encoder.group_size(), nn::Activation::kIdentity, rng);
  return net;
}

nn::Vec GroupedQNetwork::slice_group(const nn::Vec& full_state, std::size_t group) const {
  const auto& enc = opts_.encoder;
  if (group >= enc.num_groups) throw std::out_of_range("slice_group: bad group");
  if (full_state.size() != enc.full_state_dim()) {
    throw std::invalid_argument("slice_group: bad state size");
  }
  const std::size_t g = enc.group_state_dim();
  return nn::Vec(full_state.begin() + static_cast<std::ptrdiff_t>(group * g),
                 full_state.begin() + static_cast<std::ptrdiff_t>((group + 1) * g));
}

nn::Vec GroupedQNetwork::slice_job(const nn::Vec& full_state) const {
  const auto& enc = opts_.encoder;
  if (full_state.size() != enc.full_state_dim()) {
    throw std::invalid_argument("slice_job: bad state size");
  }
  return nn::Vec(full_state.end() - static_cast<std::ptrdiff_t>(enc.job_state_dim()),
                 full_state.end());
}

nn::Matrix GroupedQNetwork::group_matrix(const nn::Vec& full_state) const {
  const auto& enc = opts_.encoder;
  nn::Matrix groups;
  groups.resize_for_overwrite(enc.num_groups, enc.group_state_dim());
  for (std::size_t k = 0; k < enc.num_groups; ++k) {
    groups.set_row(k, slice_group(full_state, k));
  }
  return groups;
}

nn::Vec GroupedQNetwork::head_input(const nn::Vec& full_state, std::size_t group,
                                    const nn::Matrix& codes, std::size_t code_row0) const {
  nn::Vec input;
  input.reserve(head_input_dim_);
  nn::Vec g = slice_group(full_state, group);
  input.insert(input.end(), g.begin(), g.end());
  nn::Vec j = slice_job(full_state);
  input.insert(input.end(), j.begin(), j.end());
  for (std::size_t k = 0; k < opts_.encoder.num_groups; ++k) {
    if (k == group) continue;
    const double* code = codes.data() + (code_row0 + k) * codes.cols();
    input.insert(input.end(), code, code + codes.cols());
  }
  return input;
}

nn::Vec GroupedQNetwork::q_values_with(nn::Network& subq, const nn::Vec& full_state) {
  const auto& enc = opts_.encoder;
  // One batched sweep for the K autoencoder encodes and one for the K Sub-Q
  // head forwards, instead of 2K per-sample network walks.
  const nn::Matrix codes = autoencoder_->encode_batch(group_matrix(full_state));
  nn::Matrix heads;
  heads.resize_for_overwrite(enc.num_groups, head_input_dim_);
  for (std::size_t k = 0; k < enc.num_groups; ++k) {
    heads.set_row(k, head_input(full_state, k, codes));
  }
  const nn::Matrix head_q = subq.predict_batch(heads);
  nn::Vec q;
  q.reserve(num_actions());
  for (std::size_t k = 0; k < enc.num_groups; ++k) {
    for (std::size_t a = 0; a < enc.group_size(); ++a) q.push_back(head_q(k, a));
  }
  return q;
}

nn::Vec GroupedQNetwork::q_values(const nn::Vec& full_state) {
  return q_values_with(*online_subq_, full_state);
}

nn::Vec GroupedQNetwork::q_values_target(const nn::Vec& full_state) {
  return q_values_with(*target_subq_, full_state);
}

double GroupedQNetwork::train_batch(const std::vector<const rl::Transition*>& batch,
                                    double beta) {
  if (batch.empty()) throw std::invalid_argument("GroupedQNetwork::train_batch: empty batch");
  const auto& enc = opts_.encoder;
  const std::size_t n = batch.size();
  const std::size_t K = enc.num_groups;
  optimizer_->zero_grad();

  // Bootstrap-target sweep, batched across the whole minibatch: all n*K
  // next-state group encodes in one autoencoder pass, then all n*K Sub-Q
  // head forwards in one target-network pass (two when double Q-learning
  // also needs the online network's argmax).
  nn::Matrix next_groups;
  next_groups.resize_for_overwrite(n * K, enc.group_state_dim());
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t k = 0; k < K; ++k) {
      next_groups.set_row(b * K + k, slice_group(batch[b]->next_state, k));
    }
  }
  const nn::Matrix next_codes = autoencoder_->encode_batch(std::move(next_groups));
  nn::Matrix next_heads;
  next_heads.resize_for_overwrite(n * K, head_input_dim_);
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t k = 0; k < K; ++k) {
      next_heads.set_row(b * K + k, head_input(batch[b]->next_state, k, next_codes, b * K));
    }
  }
  nn::Matrix next_q_online;
  if (opts_.double_q) next_q_online = online_subq_->predict_batch(next_heads);
  const nn::Matrix next_q = target_subq_->predict_batch(std::move(next_heads));

  nn::Vec targets(n);
  std::vector<std::size_t> locals(n);
  for (std::size_t b = 0; b < n; ++b) {
    // Reassemble this transition's K*group_size Q-vector from its K rows.
    nn::Vec q_next;
    q_next.reserve(num_actions());
    for (std::size_t k = 0; k < K; ++k) {
      for (std::size_t a = 0; a < enc.group_size(); ++a) q_next.push_back(next_q(b * K + k, a));
    }
    double best_next;
    if (opts_.double_q) {
      nn::Vec q_online;
      q_online.reserve(num_actions());
      for (std::size_t k = 0; k < K; ++k) {
        for (std::size_t a = 0; a < enc.group_size(); ++a) {
          q_online.push_back(next_q_online(b * K + k, a));
        }
      }
      best_next = q_next[nn::argmax(q_online)];
    } else {
      best_next = q_next[nn::argmax(q_next)];
    }
    targets[b] = rl::smdp_target(batch[b]->reward_rate, batch[b]->tau, beta, best_next);
    locals[b] = batch[b]->action % enc.group_size();
  }

  // Online pass: only the head owning each chosen action receives gradient;
  // weight sharing means the n rows still train the one physical Sub-Q
  // network, and the per-sample gradient sum folds into the backward GEMMs.
  nn::Matrix state_groups;
  state_groups.resize_for_overwrite(n * K, enc.group_state_dim());
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t k = 0; k < K; ++k) {
      state_groups.set_row(b * K + k, slice_group(batch[b]->state, k));
    }
  }
  const nn::Matrix state_codes = autoencoder_->encode_batch(std::move(state_groups));
  nn::Matrix pred_heads;
  pred_heads.resize_for_overwrite(n, head_input_dim_);
  for (std::size_t b = 0; b < n; ++b) {
    const std::size_t group = batch[b]->action / enc.group_size();
    pred_heads.set_row(b, head_input(batch[b]->state, group, state_codes, b * K));
  }
  const nn::Matrix pred = online_subq_->forward_batch(std::move(pred_heads));
  const double inv_n = 1.0 / static_cast<double>(n);
  nn::BatchLossResult loss =
      nn::masked_huber_loss_batch(pred, locals, targets, /*delta=*/1.0, inv_n);
  online_subq_->backward_batch(loss.grad, /*want_input_grad=*/false);

  nn::clip_grad_norm(online_subq_->params(), opts_.grad_clip);
  optimizer_->step();
  return loss.value * inv_n;
}

std::vector<nn::ParamBlockPtr> GroupedQNetwork::trainable_params() const {
  auto out = online_subq_->params();
  auto ae = autoencoder_->params();
  out.insert(out.end(), ae.begin(), ae.end());
  return out;
}

void GroupedQNetwork::sync_target() {
  nn::copy_param_values(online_subq_->params(), target_subq_->params());
}

double GroupedQNetwork::observe_state(const nn::Vec& full_state, common::Rng& rng) {
  const auto& enc = opts_.encoder;
  for (std::size_t k = 0; k < enc.num_groups; ++k) {
    nn::Vec g = slice_group(full_state, k);
    if (ae_buffer_.size() < opts_.autoencoder_buffer) {
      ae_buffer_.push_back(std::move(g));
    } else {
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(ae_buffer_.size()) - 1));
      ae_buffer_[idx] = std::move(g);  // reservoir-style replacement
    }
  }
  ++ae_seen_;
  if (ae_seen_ % opts_.autoencoder_train_interval != 0 ||
      ae_buffer_.size() < opts_.autoencoder_batch) {
    return -1.0;
  }
  std::vector<nn::Vec> batch;
  batch.reserve(opts_.autoencoder_batch);
  for (std::size_t i = 0; i < opts_.autoencoder_batch; ++i) {
    const auto idx = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(ae_buffer_.size()) - 1));
    batch.push_back(ae_buffer_[idx]);
  }
  last_ae_loss_ = autoencoder_->train_batch(batch);
  return last_ae_loss_;
}

}  // namespace hcrl::core
