// The global tier's Q-value network (Fig. 6 of the paper).
//
// For K server groups, Q-values are produced by K logical Sub-Q heads and K
// logical autoencoders, with weights shared across all heads and across all
// autoencoders. Head k consumes:
//   [ g_k (raw group state), s_j (job state), code(g_k') for all k' != k ]
// and outputs one Q-value per server in group k. Weight sharing means any
// training sample trains *the* Sub-Q head and *the* autoencoder, which is
// exactly the scalability argument of §V-A — so this class owns a single
// Sub-Q network and a single autoencoder and applies them K times.
//
// The autoencoder is trained self-supervised on observed group states
// (reconstruction loss); its codes are treated as fixed features by the
// Q-regression (stop-gradient), which keeps the representation stable while
// Q-targets move. A separately-parameterized target copy of the Sub-Q head
// provides the bootstrap targets.
//
// The network is precision-parameterized (GroupedQOptions::precision): the
// Sub-Q/autoencoder stacks, optimizer state and GEMM sweeps run at float or
// double while the public API stays double-typed, so the experiment layer is
// precision-agnostic.
#pragma once

#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/core/state.hpp"
#include "src/nn/matrix.hpp"
#include "src/nn/param.hpp"
#include "src/nn/precision.hpp"
#include "src/rl/replay.hpp"

namespace hcrl::core {

struct GroupedQOptions {
  StateEncoderOptions encoder;
  std::vector<std::size_t> autoencoder_dims = {30, 15};  // paper: 30 and 15 ELUs
  std::size_t subq_hidden = 128;                         // paper: 128 ELUs
  double learning_rate = 1e-3;
  double grad_clip = 10.0;  // paper clips gradient norms to 10
  double autoencoder_learning_rate = 1e-3;
  std::size_t autoencoder_batch = 32;
  std::size_t autoencoder_train_interval = 64;  // one AE batch per N observed states
  std::size_t autoencoder_buffer = 4096;
  /// Double Q-learning for the bootstrap target (see rl::DqnAgent::Options).
  bool double_q = false;
  /// Scalar type of the Sub-Q/autoencoder stacks (see nn/precision.hpp).
  nn::Precision precision = nn::default_precision();

  void validate() const;
};

namespace detail {
template <class S>
class GroupedQCore;
}  // namespace detail

class GroupedQNetwork {
 public:
  GroupedQNetwork(const GroupedQOptions& opts, common::Rng& rng);
  ~GroupedQNetwork();
  GroupedQNetwork(GroupedQNetwork&&) noexcept;
  GroupedQNetwork& operator=(GroupedQNetwork&&) noexcept;

  std::size_t num_actions() const noexcept { return opts_.encoder.num_servers; }
  std::size_t state_dim() const noexcept { return opts_.encoder.full_state_dim(); }
  /// Input dimension of one Sub-Q head.
  std::size_t head_input_dim() const noexcept { return head_input_dim_; }
  nn::Precision precision() const noexcept { return opts_.precision; }

  /// Q-values for all |M| actions (online parameters).
  nn::Vec q_values(const nn::Vec& full_state);
  /// Q-values using the target parameters (for bootstrap targets).
  nn::Vec q_values_target(const nn::Vec& full_state);
  /// Q-values for B states fused into one autoencoder sweep (B*K group rows)
  /// and one Sub-Q sweep (B*K head rows). Row b of `out` (resized to
  /// B x num_actions) is states[b]'s Q-vector, bit-identical to
  /// q_values(*states[b]); callers read rows in place (spans), no per-state
  /// Vec assembly. This is the GEMM fusion point of core::DecisionService.
  void q_values_batch(std::span<const nn::Vec* const> states, nn::Matrix& out);

  /// One SGD step on a minibatch of SMDP transitions; returns mean loss.
  double train_batch(const std::vector<const rl::Transition*>& batch, double beta);

  /// Copy online Sub-Q parameters into the target copy.
  void sync_target();

  /// Feed one observed state into the autoencoder's training buffer;
  /// trains a reconstruction batch every `autoencoder_train_interval` calls.
  /// Returns the reconstruction loss when a batch ran, negative otherwise.
  double observe_state(const nn::Vec& full_state, common::Rng& rng);

  std::size_t subq_param_count() const;
  std::size_t autoencoder_param_count() const;
  /// All learned parameters (online Sub-Q + autoencoder) as double-typed
  /// blocks. Only valid for f64 networks; throws std::logic_error at f32 —
  /// use param_values() or save/load for precision-agnostic access.
  std::vector<nn::ParamBlockPtr> trainable_params() const;
  /// Flattened copy of every learned parameter as double, at any precision.
  std::vector<double> param_values() const;
  /// Persist / restore online Sub-Q + autoencoder (nn/serialize.hpp text
  /// format, precision-agnostic). Loading also syncs the target network.
  void save_params(std::ostream& out) const;
  void load_params(std::istream& in);
  double last_autoencoder_loss() const noexcept { return last_ae_loss_; }

  // -- state slicing helpers (public for tests) ------------------------------
  nn::Vec slice_group(const nn::Vec& full_state, std::size_t group) const;
  nn::Vec slice_job(const nn::Vec& full_state) const;

 private:
  GroupedQOptions opts_;
  std::size_t head_input_dim_ = 0;
  // Exactly one core is non-null, matching opts_.precision.
  std::unique_ptr<detail::GroupedQCore<float>> f32_;
  std::unique_ptr<detail::GroupedQCore<double>> f64_;
  std::vector<nn::Vec> ae_buffer_;
  std::size_t ae_seen_ = 0;
  double last_ae_loss_ = -1.0;
};

}  // namespace hcrl::core
