// The global tier's Q-value network (Fig. 6 of the paper).
//
// For K server groups, Q-values are produced by K logical Sub-Q heads and K
// logical autoencoders, with weights shared across all heads and across all
// autoencoders. Head k consumes:
//   [ g_k (raw group state), s_j (job state), code(g_k') for all k' != k ]
// and outputs one Q-value per server in group k. Weight sharing means any
// training sample trains *the* Sub-Q head and *the* autoencoder, which is
// exactly the scalability argument of §V-A — so this class owns a single
// Sub-Q network and a single autoencoder and applies them K times.
//
// The autoencoder is trained self-supervised on observed group states
// (reconstruction loss); its codes are treated as fixed features by the
// Q-regression (stop-gradient), which keeps the representation stable while
// Q-targets move. A separately-parameterized target copy of the Sub-Q head
// provides the bootstrap targets.
#pragma once

#include <memory>
#include <vector>

#include "src/common/rng.hpp"
#include "src/core/state.hpp"
#include "src/nn/autoencoder.hpp"
#include "src/nn/network.hpp"
#include "src/nn/optimizer.hpp"
#include "src/rl/replay.hpp"

namespace hcrl::core {

struct GroupedQOptions {
  StateEncoderOptions encoder;
  std::vector<std::size_t> autoencoder_dims = {30, 15};  // paper: 30 and 15 ELUs
  std::size_t subq_hidden = 128;                         // paper: 128 ELUs
  double learning_rate = 1e-3;
  double grad_clip = 10.0;  // paper clips gradient norms to 10
  double autoencoder_learning_rate = 1e-3;
  std::size_t autoencoder_batch = 32;
  std::size_t autoencoder_train_interval = 64;  // one AE batch per N observed states
  std::size_t autoencoder_buffer = 4096;
  /// Double Q-learning for the bootstrap target (see rl::DqnAgent::Options).
  bool double_q = false;

  void validate() const;
};

class GroupedQNetwork {
 public:
  GroupedQNetwork(const GroupedQOptions& opts, common::Rng& rng);

  std::size_t num_actions() const noexcept { return opts_.encoder.num_servers; }
  std::size_t state_dim() const noexcept { return opts_.encoder.full_state_dim(); }
  /// Input dimension of one Sub-Q head.
  std::size_t head_input_dim() const noexcept { return head_input_dim_; }

  /// Q-values for all |M| actions (online parameters).
  nn::Vec q_values(const nn::Vec& full_state);
  /// Q-values using the target parameters (for bootstrap targets).
  nn::Vec q_values_target(const nn::Vec& full_state);

  /// One SGD step on a minibatch of SMDP transitions; returns mean loss.
  double train_batch(const std::vector<const rl::Transition*>& batch, double beta);

  /// Copy online Sub-Q parameters into the target copy.
  void sync_target();

  /// Feed one observed state into the autoencoder's training buffer;
  /// trains a reconstruction batch every `autoencoder_train_interval` calls.
  /// Returns the reconstruction loss when a batch ran, negative otherwise.
  double observe_state(const nn::Vec& full_state, common::Rng& rng);

  nn::Autoencoder& autoencoder() noexcept { return *autoencoder_; }
  std::size_t subq_param_count() const { return online_subq_->param_count(); }
  /// All learned parameters (online Sub-Q + autoencoder), for persistence.
  std::vector<nn::ParamBlockPtr> trainable_params() const;
  double last_autoencoder_loss() const noexcept { return last_ae_loss_; }

  // -- state slicing helpers (public for tests) ------------------------------
  nn::Vec slice_group(const nn::Vec& full_state, std::size_t group) const;
  nn::Vec slice_job(const nn::Vec& full_state) const;

 private:
  nn::Network build_subq(common::Rng& rng) const;
  /// Q-values with an explicit Sub-Q network (shared by online/target paths).
  nn::Vec q_values_with(nn::Network& subq, const nn::Vec& full_state);
  /// All K group slices of `full_state` stacked as a (K x group_dim) matrix.
  nn::Matrix group_matrix(const nn::Vec& full_state) const;
  /// Input of head `group`: [g_k, s_j, codes of other groups]. `codes` holds
  /// one code per row; row `code_row0 + k` is group k's code.
  nn::Vec head_input(const nn::Vec& full_state, std::size_t group, const nn::Matrix& codes,
                     std::size_t code_row0 = 0) const;

  GroupedQOptions opts_;
  std::size_t head_input_dim_ = 0;
  std::unique_ptr<nn::Autoencoder> autoencoder_;
  std::unique_ptr<nn::Network> online_subq_;
  std::unique_ptr<nn::Network> target_subq_;
  std::unique_ptr<nn::Adam> optimizer_;
  std::vector<nn::Vec> ae_buffer_;
  std::size_t ae_seen_ = 0;
  double last_ae_loss_ = -1.0;
};

}  // namespace hcrl::core
