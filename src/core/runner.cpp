#include "src/core/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "src/common/log.hpp"
#include "src/common/rng.hpp"
#include "src/common/stats.hpp"
#include "src/nn/matrix.hpp"
#include "src/core/decision_service.hpp"
#include "src/core/global_tier.hpp"
#include "src/core/local_tier.hpp"
#include "src/policy/registry.hpp"
#include "src/sim/cluster.hpp"
#include "src/sim/sharded_cluster.hpp"
#include "src/telemetry/profiler.hpp"
#include "src/telemetry/trace.hpp"

namespace hcrl::core {

void RunObserver::on_checkpoint(const Scenario&, const CheckpointRow&) {}
void RunObserver::on_complete(const Scenario&, const ExperimentResult&) {}

namespace {

sim::ClusterConfig cluster_config(const ExperimentConfig& cfg) {
  sim::ClusterConfig cc;
  cc.num_servers = cfg.num_servers;
  cc.server = cfg.server;
  return cc;
}

void validate_all(const std::vector<Scenario>& scenarios) {
  for (const Scenario& s : scenarios) s.validate();
}

// ---- tail latency / SLA ----------------------------------------------------

std::vector<double> completed_latencies(const sim::Cluster& cluster) {
  std::vector<double> latencies;
  latencies.reserve(cluster.metrics().job_records().size());
  for (const sim::JobRecord& r : cluster.metrics().job_records()) {
    latencies.push_back(r.latency());
  }
  return latencies;
}

std::vector<double> completed_latencies(const sim::ShardedCluster& cluster) {
  std::vector<double> latencies;
  for (std::size_t s = 0; s < cluster.num_shards(); ++s) {
    for (const sim::JobRecord& r : cluster.shard_metrics(s).job_records()) {
      latencies.push_back(r.latency());
    }
  }
  return latencies;
}

void fill_tail_metrics(ExperimentResult& result, std::vector<double> latencies,
                       double sla_latency_s) {
  if (latencies.empty()) return;
  if (sla_latency_s > 0.0) {
    result.sla_violations = static_cast<std::size_t>(std::count_if(
        latencies.begin(), latencies.end(), [&](double l) { return l > sla_latency_s; }));
  }
  // common::percentile uses the same index rule as
  // ClusterMetrics::latency_percentile, computed over the merged shard
  // records so the value is engine-independent (the multiset of latencies is
  // identical across engines; record order is not).
  result.latency_p95_s = common::percentile(latencies, 0.95);
  result.latency_p99_s = common::percentile(latencies, 0.99);
}

// ---- telemetry -------------------------------------------------------------

struct RunnerMetrics {
  telemetry::MetricId scenarios;
  telemetry::MetricId checkpoints;

  static const RunnerMetrics& get() {
    static const RunnerMetrics m = [] {
      auto& reg = telemetry::global_registry();
      return RunnerMetrics{
          .scenarios = reg.counter("runner.scenarios"),
          .checkpoints = reg.counter("runner.checkpoints"),
      };
    }();
    return m;
  }
};

const telemetry::SpanDef& scenario_span() {
  static const telemetry::SpanDef def("runner.scenario");
  return def;
}
const telemetry::SpanDef& trace_load_span() {
  static const telemetry::SpanDef def("runner.trace_load");
  return def;
}
const telemetry::SpanDef& pretrain_span() {
  static const telemetry::SpanDef def("runner.pretrain");
  return def;
}
const telemetry::SpanDef& measured_run_span() {
  static const telemetry::SpanDef def("runner.measured_run");
  return def;
}

/// Serializes observer calls from concurrent workers.
class SerializedObserver final : public RunObserver {
 public:
  explicit SerializedObserver(RunObserver& inner) : inner_(inner) {}
  void on_checkpoint(const Scenario& scenario, const CheckpointRow& row) override {
    std::lock_guard<std::mutex> lock(mutex_);
    inner_.on_checkpoint(scenario, row);
  }
  void on_complete(const Scenario& scenario, const ExperimentResult& result) override {
    std::lock_guard<std::mutex> lock(mutex_);
    inner_.on_complete(scenario, result);
  }

 private:
  RunObserver& inner_;
  std::mutex mutex_;
};

}  // namespace

// ---- run_scenario ----------------------------------------------------------

ExperimentResult run_scenario(const Scenario& scenario, RunObserver* observer) {
  scenario.validate();
  const ExperimentConfig cfg = scenario.materialized();

  // Process-global knob (atomic store; bit-identical at any count, so
  // concurrent scenarios racing on it cannot change any result).
  if (cfg.gemm_threads > 0) nn::set_gemm_threads(cfg.gemm_threads);

  telemetry::Span scenario_guard(scenario_span(), scenario.name);
  if (telemetry::enabled()) telemetry::count(RunnerMetrics::get().scenarios);

  const auto wall_start = std::chrono::steady_clock::now();

  // Watchdog: cooperative wall-clock deadline checked every 64 events. The
  // thrown runtime_error surfaces as a per-cell error ScenarioOutcome through
  // run_outcomes(), so one hung cell never hangs the whole grid.
  std::uint64_t watchdog_tick = 0;
  const auto check_watchdog = [&] {
    if (cfg.watchdog_s <= 0.0 || (++watchdog_tick & 0x3F) != 0) return;
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
    if (elapsed > cfg.watchdog_s) {
      throw std::runtime_error("watchdog: scenario '" + scenario.name + "' exceeded " +
                               std::to_string(cfg.watchdog_s) + " s (wall " +
                               std::to_string(elapsed) + " s)");
    }
  };

  Trace trace = [&] {
    telemetry::Span span(trace_load_span(), scenario.name);
    return scenario.effective_trace()->produce();
  }();

  // Both tiers come from the policy registry: the config's system enum (or
  // its allocator/power override keys) name registered entries.
  policy::SystemBundle policies = policy::build_system(cfg);

  // Decision-epoch batching: one service shared by both tiers, alive across
  // the warmup and measured clusters (actions stay bit-identical to the
  // per-call path, so batch_decisions never changes results — only cost).
  DecisionService decision_service;
  if (cfg.batch_decisions) {
    if (policies.drl != nullptr) policies.drl->set_decision_service(&decision_service);
    if (policies.local_rl != nullptr) policies.local_rl->set_decision_service(&decision_service);
  }

  // ---- offline construction phase (DRL systems only) -----------------------
  if (policies.drl != nullptr && cfg.pretrain_jobs > 0) {
    telemetry::Span span(pretrain_span(), scenario.name);
    const std::size_t n = std::min(cfg.pretrain_jobs, trace.jobs.size());
    std::vector<sim::Job> prefix(trace.jobs.begin(),
                                 trace.jobs.begin() + static_cast<std::ptrdiff_t>(n));
    sim::Cluster warmup(cluster_config(cfg), *policies.allocation, *policies.power);
    warmup.load_jobs(std::move(prefix));
    // Fault-free by design (the offline phase models a clean cluster); the
    // step loop only adds the watchdog check, which never perturbs results.
    while (warmup.step()) check_watchdog();
    policies.drl->end_episode();
    common::log_info() << scenario.name << ": pretrained on " << n << " jobs ("
                       << policies.drl->train_steps() << " gradient steps)";
  }

  // ---- measured run ---------------------------------------------------------
  if (policies.drl != nullptr) policies.drl->set_learning(cfg.learn_during_run);
  if (policies.local_rl != nullptr) policies.local_rl->set_learning(cfg.learn_during_run);

  ExperimentResult result;
  result.system = to_string(cfg.system);
  result.allocator = policies.allocator_name;
  result.power = policies.power_name;
  std::size_t next_checkpoint =
      cfg.checkpoint_every_jobs > 0 ? cfg.checkpoint_every_jobs : static_cast<std::size_t>(-1);

  // One loop body for both engines: sim::Cluster (cfg.shards == 0) and
  // sim::ShardedCluster in lockstep (cfg.shards >= 1). Both expose step(),
  // jobs_completed(), snapshot() and servers_on() with identical semantics,
  // and with one shard the sharded engine is bit-identical to the serial one.
  auto measured_loop = [&](auto& cluster) {
    telemetry::Span span(measured_run_span(), scenario.name);
    while (cluster.step()) {
      check_watchdog();
      if (cluster.jobs_completed() >= next_checkpoint) {
        const auto snap = cluster.snapshot();
        const CheckpointRow row{snap.jobs_completed, snap.now, snap.accumulated_latency_s,
                                snap.energy_kwh(), snap.average_power_watts};
        result.series.push_back(row);
        if (observer != nullptr) observer->on_checkpoint(scenario, row);
        if (telemetry::enabled()) telemetry::count(RunnerMetrics::get().checkpoints);
        next_checkpoint += cfg.checkpoint_every_jobs;
      }
    }
    result.final_snapshot = cluster.snapshot();
    result.servers_on_at_end = cluster.servers_on();
    fill_tail_metrics(result, completed_latencies(cluster), cfg.sla_latency_s);
  };

  // Deterministic fault injection for the measured run (see
  // src/sim/fault/fault.hpp). The schedule is a pure function of
  // (faults.seed, num_servers, horizon): faults.seed == 0 derives one from
  // the trace seed so faulty scenarios stay reproducible without extra keys.
  std::unique_ptr<sim::FaultInjector> faults;
  if (cfg.faults.enabled()) {
    sim::FaultConfig fc = cfg.faults;
    if (fc.seed == 0) fc.seed = common::SplitMix64(cfg.trace.seed ^ 0xFA017FA017FA017FULL).next();
    const double horizon =
        (trace.jobs.empty() ? 0.0 : trace.jobs.back().arrival) + fc.horizon_padding_s;
    faults = std::make_unique<sim::FaultInjector>(fc, cfg.num_servers, horizon);
  }

  if (cfg.shards == 0) {
    sim::Cluster cluster(cluster_config(cfg), *policies.allocation, *policies.power);
    cluster.install_faults(faults.get());
    cluster.load_jobs(std::move(trace.jobs));
    measured_loop(cluster);
  } else {
    sim::ShardedClusterConfig scc;
    scc.cluster = cluster_config(cfg);
    scc.num_shards = cfg.shards;
    sim::ShardedCluster cluster(scc, *policies.allocation, *policies.power);
    cluster.install_faults(faults.get());
    cluster.load_jobs(std::move(trace.jobs));
    measured_loop(cluster);
  }

  result.trace_stats = trace.stats;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  if (observer != nullptr) observer->on_complete(scenario, result);
  return result;
}

// ---- Runner ----------------------------------------------------------------

std::vector<ExperimentResult> Runner::run(const std::vector<Scenario>& scenarios,
                                          RunObserver* observer) {
  std::vector<ScenarioOutcome> outcomes = run_outcomes(scenarios, observer);
  std::vector<ExperimentResult> results;
  results.reserve(outcomes.size());
  for (ScenarioOutcome& o : outcomes) {
    if (o.error != nullptr) std::rethrow_exception(o.error);
    results.push_back(std::move(o.result));
  }
  return results;
}

// ---- SerialRunner ----------------------------------------------------------

std::vector<ScenarioOutcome> SerialRunner::run_outcomes(const std::vector<Scenario>& scenarios,
                                                        RunObserver* observer) {
  validate_all(scenarios);
  std::vector<ScenarioOutcome> outcomes(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    try {
      outcomes[i].result = run_scenario(scenarios[i], observer);
    } catch (...) {
      outcomes[i].error = std::current_exception();
    }
  }
  return outcomes;
}

// ---- ParallelRunner --------------------------------------------------------

ParallelRunner::ParallelRunner(std::size_t num_workers) : num_workers_(num_workers) {
  if (num_workers_ == 0) {
    num_workers_ = std::max(1u, std::thread::hardware_concurrency());
  }
}

std::vector<ScenarioOutcome> ParallelRunner::run_outcomes(const std::vector<Scenario>& scenarios,
                                                          RunObserver* observer) {
  validate_all(scenarios);
  const std::size_t n = scenarios.size();
  if (n == 0) return {};

  std::unique_ptr<SerializedObserver> serialized;
  if (observer != nullptr) serialized = std::make_unique<SerializedObserver>(*observer);
  RunObserver* worker_observer = serialized.get();

  std::vector<ScenarioOutcome> outcomes(n);
  std::atomic<std::size_t> next{0};

  auto worker = [&](std::size_t worker_index) {
    telemetry::set_thread_name("runner-worker-" + std::to_string(worker_index));
    telemetry::ShardScope scope(telemetry::global_registry().acquire_shard());
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        outcomes[i].result = run_scenario(scenarios[i], worker_observer);
      } catch (...) {
        outcomes[i].error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(std::min(num_workers_, n));
  for (std::size_t t = 0; t < std::min(num_workers_, n); ++t) pool.emplace_back(worker, t);
  for (std::thread& t : pool) t.join();

  return outcomes;
}

// ---- stock observers -------------------------------------------------------

CsvCheckpointObserver::CsvCheckpointObserver(std::ostream& out) : out_(out) {
  out_ << "scenario,jobs,sim_time_s,acc_latency_s,energy_kwh,avg_power_w\n";
}

void CsvCheckpointObserver::on_checkpoint(const Scenario& scenario, const CheckpointRow& row) {
  out_ << scenario.name << ',' << row.jobs_completed << ',' << row.sim_time_s << ','
       << row.accumulated_latency_s << ',' << row.energy_kwh << ',' << row.average_power_w
       << '\n';
}

void LogObserver::on_complete(const Scenario& scenario, const ExperimentResult& result) {
  const auto& s = result.final_snapshot;
  common::log_info() << scenario.name << ": energy=" << s.energy_kwh() << " kWh"
                     << " latency=" << s.accumulated_latency_s / 1e6 << "e6 s"
                     << " power=" << s.average_power_watts << " W"
                     << " (wall " << result.wall_seconds << " s)";
}

}  // namespace hcrl::core
