// Runner: execute a batch of Scenarios, serially or on a worker pool.
//
// Contracts shared by every Runner:
//
//   * Validation is up front: every scenario is validated (with its name in
//     the error message) before any simulation starts, so a bad cell fails
//     the whole sweep fast.
//   * Results are order-stable: results[i] always belongs to scenarios[i],
//     regardless of worker count or completion order.
//   * Determinism: a scenario's result depends only on the scenario (all
//     stochastic streams are seeded from its config), so SerialRunner and
//     ParallelRunner produce identical results — only wall_seconds, which
//     measures this process, may differ.
//
// RunObserver is the pluggable seam that replaces the old baked-in
// checkpoint accumulation: the driver streams every checkpoint and completed
// result through it, so CSV streaming and progress reporting are observer
// implementations rather than driver features. Runners serialize observer
// calls (one at a time, from any worker thread); checkpoints of one scenario
// arrive in order, but checkpoints of different scenarios may interleave.
#pragma once

#include <cstddef>
#include <exception>
#include <iosfwd>
#include <vector>

#include "src/core/scenario.hpp"

namespace hcrl::core {

class RunObserver {
 public:
  virtual ~RunObserver() = default;
  /// A metrics checkpoint of `scenario` was recorded (measured run only).
  virtual void on_checkpoint(const Scenario& scenario, const CheckpointRow& row);
  /// `scenario` finished; `result` is final.
  virtual void on_complete(const Scenario& scenario, const ExperimentResult& result);
};

/// Run one scenario start to finish: produce the trace, run the offline
/// construction phase (DRL systems), then the measured simulation, streaming
/// checkpoints through `observer`. The building block under every Runner.
ExperimentResult run_scenario(const Scenario& scenario, RunObserver* observer = nullptr);

/// Per-scenario outcome: either a result or the exception that killed the
/// cell. outcomes[i] always belongs to scenarios[i].
struct ScenarioOutcome {
  ExperimentResult result;
  std::exception_ptr error;  // null on success
  bool ok() const noexcept { return error == nullptr; }
};

class Runner {
 public:
  virtual ~Runner() = default;
  /// Validate every scenario, then run them all; a runtime failure in any
  /// cell is captured into that cell's outcome instead of aborting the batch
  /// (validation errors still throw up front). The tournament harness runs a
  /// whole policy × scenario grid through this.
  virtual std::vector<ScenarioOutcome> run_outcomes(const std::vector<Scenario>& scenarios,
                                                    RunObserver* observer = nullptr) = 0;
  /// run_outcomes with the original throwing contract: rethrows the first
  /// failed cell (in scenario order) after the batch finishes.
  std::vector<ExperimentResult> run(const std::vector<Scenario>& scenarios,
                                    RunObserver* observer = nullptr);
};

class SerialRunner final : public Runner {
 public:
  std::vector<ScenarioOutcome> run_outcomes(const std::vector<Scenario>& scenarios,
                                            RunObserver* observer = nullptr) override;
};

/// Worker pool over a shared scenario queue. `num_workers` = 0 uses the
/// hardware concurrency; the pool never exceeds the scenario count.
class ParallelRunner final : public Runner {
 public:
  explicit ParallelRunner(std::size_t num_workers = 0);

  std::vector<ScenarioOutcome> run_outcomes(const std::vector<Scenario>& scenarios,
                                            RunObserver* observer = nullptr) override;

  std::size_t num_workers() const noexcept { return num_workers_; }

 private:
  std::size_t num_workers_;
};

// ---- stock observers -------------------------------------------------------

/// Streams checkpoints as CSV rows
/// (`scenario,jobs,sim_time_s,acc_latency_s,energy_kwh,avg_power_w`).
/// The header is written on construction. Relies on the runner's observer
/// serialization for thread safety.
class CsvCheckpointObserver final : public RunObserver {
 public:
  explicit CsvCheckpointObserver(std::ostream& out);
  void on_checkpoint(const Scenario& scenario, const CheckpointRow& row) override;

 private:
  std::ostream& out_;
};

/// Logs one summary line per completed scenario via common::log_info —
/// the progress narration run_comparison used to hard-code.
class LogObserver final : public RunObserver {
 public:
  void on_complete(const Scenario& scenario, const ExperimentResult& result) override;
};

}  // namespace hcrl::core
