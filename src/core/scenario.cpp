#include "src/core/scenario.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/common/rng.hpp"
#include "src/sim/types.hpp"
#include "src/workload/trace/calibrate.hpp"

namespace hcrl::core {

// ---- Scenario --------------------------------------------------------------

ExperimentConfig Scenario::materialized() const {
  ExperimentConfig cfg = config;
  if (seed != 0) {
    // One SplitMix64 stream per scenario: trace, global tier and local tier
    // get independent seeds, all reproducible from the single scenario seed.
    common::SplitMix64 sm(seed);
    cfg.trace.seed = sm.next();  // only reaches the workload when trace == null
    cfg.drl.seed = sm.next();
    cfg.local.seed = sm.next();
    cfg.faults.seed = sm.next();  // ignored by the runner when faults are off
  }
  cfg.finalize();
  return cfg;
}

std::shared_ptr<const TraceSource> Scenario::effective_trace() const {
  if (trace != nullptr) return trace;
  return std::make_shared<SyntheticTraceSource>(materialized().trace);
}

void Scenario::validate() const {
  try {
    materialized().validate();
  } catch (const std::exception& e) {
    throw std::invalid_argument("scenario '" + name + "': " + e.what());
  }
}

// ---- helpers ---------------------------------------------------------------

std::vector<Scenario> comparison_scenarios(const ExperimentConfig& base,
                                           const std::vector<SystemKind>& systems,
                                           const std::string& name_prefix) {
  const auto shared = make_cached(std::make_shared<SyntheticTraceSource>(base.trace));
  std::vector<Scenario> scenarios;
  scenarios.reserve(systems.size());
  for (SystemKind kind : systems) {
    Scenario s;
    s.name = name_prefix + to_string(kind);
    s.config = base;
    s.config.system = kind;
    s.trace = shared;
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

ExperimentConfig paper_experiment_config(std::size_t servers, std::size_t jobs) {
  ExperimentConfig cfg;
  cfg.num_servers = servers;
  // K must divide M; the paper varies K in 2..4 (30 -> 3 groups, 40 -> 4).
  cfg.num_groups = servers % 3 == 0 ? 3 : (servers % 4 == 0 ? 4 : 2);
  cfg.trace.num_jobs = jobs;
  cfg.trace.horizon_s = sim::kSecondsPerWeek * static_cast<double>(jobs) / 95000.0;
  cfg.trace.seed = 2011;  // the Google trace month
  cfg.pretrain_jobs = jobs / 4;
  cfg.checkpoint_every_jobs = 0;
  return cfg;
}

Scenario trace_scenario(std::shared_ptr<const TraceSource> source, SystemKind kind) {
  if (source == nullptr) throw std::invalid_argument("trace_scenario: null source");
  Scenario s;
  s.config.system = kind;
  s.config.num_servers = 6;
  s.config.num_groups = 2;
  s.config.checkpoint_every_jobs = 100;
  // Sizing the pretrain prefix costs one produce() here; pass a caching
  // source (CatalogTraceSource caches; wrap others in make_cached) so the
  // runner reuses it.
  s.config.pretrain_jobs = source->produce().jobs.size() / 4;
  s.trace = std::move(source);
  return s;
}

Scenario catalog_scenario(const std::string& dataset, SystemKind kind) {
  return trace_scenario(std::make_shared<CatalogTraceSource>(dataset), kind);
}

Scenario calibrated_scenario(const std::string& dataset, SystemKind kind, std::size_t jobs) {
  const Trace fixture = CatalogTraceSource(dataset).produce();
  workload::trace::CalibrationOptions cal;
  cal.verify = false;  // only the fitted options are needed here
  workload::GeneratorOptions fitted = workload::trace::calibrate(fixture.jobs, cal).options;
  if (jobs > 0 && jobs != fitted.num_jobs) {
    fitted.horizon_s *= static_cast<double>(jobs) / static_cast<double>(fitted.num_jobs);
    fitted.num_jobs = jobs;
  }
  Scenario s;
  s.config.system = kind;
  s.config.num_servers = 6;
  s.config.num_groups = 2;
  s.config.trace = fitted;
  s.config.pretrain_jobs = fitted.num_jobs / 4;
  s.config.checkpoint_every_jobs = 100;
  return s;
}

void share_synthetic_traces(std::vector<Scenario>& scenarios) {
  std::vector<std::pair<workload::GeneratorOptions, std::shared_ptr<const TraceSource>>> groups;
  for (Scenario& s : scenarios) {
    if (s.trace != nullptr) continue;
    const workload::GeneratorOptions opts = s.materialized().trace;
    auto it = std::find_if(groups.begin(), groups.end(),
                           [&](const auto& g) { return g.first == opts; });
    if (it == groups.end()) {
      groups.emplace_back(opts, make_cached(std::make_shared<SyntheticTraceSource>(opts)));
      it = std::prev(groups.end());
    }
    s.trace = it->second;
  }
}

// ---- ScenarioRegistry ------------------------------------------------------

void ScenarioRegistry::add(const std::string& name, Factory factory) {
  if (factory == nullptr) {
    throw std::invalid_argument("ScenarioRegistry: null factory for '" + name + "'");
  }
  if (!factories_.emplace(name, std::move(factory)).second) {
    throw std::invalid_argument("ScenarioRegistry: duplicate scenario '" + name + "'");
  }
  order_.push_back(name);
}

bool ScenarioRegistry::contains(const std::string& name) const {
  return factories_.count(name) != 0;
}

Scenario ScenarioRegistry::make(const std::string& name, std::size_t jobs) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    std::string known;
    for (const auto& n : order_) known += (known.empty() ? "" : ", ") + n;
    throw std::invalid_argument("ScenarioRegistry: unknown scenario '" + name +
                                "' (known: " + known + ")");
  }
  Scenario s = it->second(jobs);
  if (s.name.empty()) s.name = name;
  return s;
}

std::vector<Scenario> ScenarioRegistry::make_group(const std::string& prefix,
                                                   std::size_t jobs) const {
  std::vector<Scenario> group;
  for (const auto& name : order_) {
    if (name.rfind(prefix, 0) == 0) group.push_back(make(name, jobs));
  }
  if (group.empty()) {
    throw std::invalid_argument("ScenarioRegistry: no scenario matches prefix '" + prefix + "'");
  }
  share_synthetic_traces(group);
  return group;
}

std::vector<std::string> ScenarioRegistry::names() const { return order_; }

namespace {

Scenario paper_scenario(std::size_t servers, SystemKind kind, std::size_t jobs,
                        bool with_checkpoints) {
  Scenario s;
  s.config = paper_experiment_config(servers, jobs);
  s.config.system = kind;
  if (with_checkpoints) {
    // ~19 plot points, like the paper's figures.
    s.config.checkpoint_every_jobs = std::max<std::size_t>(1, jobs / 19);
  }
  return s;
}

Scenario tiny_scenario(SystemKind kind, std::size_t jobs) {
  Scenario s;
  s.config.system = kind;
  s.config.num_servers = 6;
  s.config.num_groups = 2;
  s.config.trace.num_jobs = jobs;
  s.config.trace.horizon_s = static_cast<double>(jobs) * 6.4;  // paper-like rate
  s.config.trace.seed = 21;
  s.config.pretrain_jobs = jobs / 4;
  s.config.checkpoint_every_jobs = 100;
  return s;
}

/// Fault-injected variant knobs shared by every `*-faulty` registry entry:
/// crashes every ~4 h per server (10 min repair), evictions every ~6 h, and
/// the default bounded-retry/backoff policy. `faults.seed` is pinned because
/// the tiny scenarios run with Scenario::seed == 0 (no per-scenario stream).
void add_faults(ExperimentConfig& cfg) {
  cfg.faults.mtbf_s = 4.0 * sim::kSecondsPerHour;
  cfg.faults.mttr_s = 600.0;
  cfg.faults.evict_every_s = 6.0 * sim::kSecondsPerHour;
  cfg.faults.seed = 1045;
}

constexpr SystemKind kPaperSystems[] = {SystemKind::kRoundRobin, SystemKind::kDrlOnly,
                                        SystemKind::kHierarchical};
constexpr SystemKind kAllSystems[] = {SystemKind::kRoundRobin,      SystemKind::kDrlOnly,
                                      SystemKind::kHierarchical,    SystemKind::kDrlFixedTimeout,
                                      SystemKind::kLeastLoaded,     SystemKind::kFirstFitPacking};

ScenarioRegistry build_builtin() {
  ScenarioRegistry r;
  for (SystemKind kind : kPaperSystems) {
    r.add("fig8/" + to_string(kind),
          [kind](std::size_t jobs) { return paper_scenario(30, kind, jobs, true); });
  }
  for (SystemKind kind : kPaperSystems) {
    r.add("fig9/" + to_string(kind),
          [kind](std::size_t jobs) { return paper_scenario(40, kind, jobs, true); });
  }
  for (SystemKind kind : kPaperSystems) {
    r.add("table1/m30/" + to_string(kind),
          [kind](std::size_t jobs) { return paper_scenario(30, kind, jobs, false); });
  }
  for (SystemKind kind : kPaperSystems) {
    r.add("table1/m40/" + to_string(kind),
          [kind](std::size_t jobs) { return paper_scenario(40, kind, jobs, false); });
  }
  for (SystemKind kind : kAllSystems) {
    r.add("tiny/" + to_string(kind),
          [kind](std::size_t jobs) { return tiny_scenario(kind, jobs); });
  }
  // Fault-injected twins of the tiny sweep (deterministic crash/evict plans;
  // see src/sim/fault/fault.hpp), plus one paper-scale faulty cell that rides
  // into bench_table1 via make_group("table1/").
  for (SystemKind kind : kAllSystems) {
    r.add("tiny/" + to_string(kind) + "-faulty", [kind](std::size_t jobs) {
      Scenario s = tiny_scenario(kind, jobs);
      add_faults(s.config);
      return s;
    });
  }
  r.add("table1/m30/hierarchical-faulty", [](std::size_t jobs) {
    Scenario s = paper_scenario(30, SystemKind::kHierarchical, jobs, false);
    add_faults(s.config);
    return s;
  });
  // Real-cluster workloads from the TraceCatalog fixtures, plus their
  // calibrated-synthetic twins (workload::trace::calibrate fit to the same
  // fixture). The paper's own system (hierarchical) runs on each.
  for (const char* dataset : {"google2011-sample", "alibaba2018-sample"}) {
    r.add(dataset, [dataset](std::size_t) {
      return catalog_scenario(dataset, SystemKind::kHierarchical);
    });
    const std::string base = dataset;
    r.add(base.substr(0, base.rfind("-sample")) + "-calibrated", [dataset](std::size_t jobs) {
      return calibrated_scenario(dataset, SystemKind::kHierarchical, jobs);
    });
  }
  return r;
}

}  // namespace

const ScenarioRegistry& ScenarioRegistry::builtin() {
  static const ScenarioRegistry registry = build_builtin();
  return registry;
}

}  // namespace hcrl::core
