// Scenario: a named, self-contained experiment description.
//
// The paper's evaluation (§VII) is a grid of scenarios — system kind ×
// cluster size × trace — so the experiment API treats "one cell of that
// grid" as a value: a name (for logs, errors and result tables), an
// ExperimentConfig, an optional TraceSource (null means "synthesize from
// config.trace"), and a scenario seed that re-derives every stochastic
// stream so sweeps can replicate a scenario under independent randomness.
//
// ScenarioRegistry maps names to scenario factories so examples, tests and
// the paper-figure benches say `registry.make("fig9/hierarchical", jobs)`
// instead of hand-assembling configs. `builtin()` carries the paper grid
// (fig8/fig9/table1 plus the tiny test-scale systems).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/experiment.hpp"
#include "src/core/trace_source.hpp"

namespace hcrl::core {

struct Scenario {
  std::string name;
  ExperimentConfig config;
  /// Workload producer; null synthesizes from `config.trace`. Shared (and
  /// usually cached) across scenarios when several systems must see the
  /// same trace.
  std::shared_ptr<const TraceSource> trace;
  /// Scenario seed. 0 keeps the seeds already in `config`; nonzero
  /// deterministically re-derives the trace seed (only when `trace` is
  /// null) and the global/local agent seeds via SplitMix64.
  std::uint64_t seed = 0;

  /// Config with the scenario seed applied and dimensions finalized.
  ExperimentConfig materialized() const;
  /// `trace` if set, else a SyntheticTraceSource over the materialized
  /// config's generator options.
  std::shared_ptr<const TraceSource> effective_trace() const;
  /// Validate the materialized config; errors are prefixed with the
  /// scenario name so a failing cell of a sweep is identifiable.
  void validate() const;
};

/// Scenarios for running `systems` on one shared, cached trace built from
/// `base.trace` — the explicit form of the old run_comparison sharing.
/// Names are `<prefix><system-name>`.
std::vector<Scenario> comparison_scenarios(const ExperimentConfig& base,
                                           const std::vector<SystemKind>& systems,
                                           const std::string& name_prefix = "");

/// Paper-faithful base configuration: M servers, one-week-equivalent trace
/// scaled to `jobs` (the paper's 95,000-job week), seed 2011, offline
/// construction on the first quarter of the trace.
ExperimentConfig paper_experiment_config(std::size_t servers, std::size_t jobs);

/// Real-trace scenario recipe: run `source` at the tiny test scale
/// (6 servers, 2 groups) with pretraining on the first quarter of the
/// trace and checkpoints every 100 jobs. Backs `run_experiment --trace`;
/// pass a caching source — the pretrain sizing produces it once up front.
Scenario trace_scenario(std::shared_ptr<const TraceSource> source, SystemKind kind);

/// trace_scenario over a workload::trace::TraceCatalog dataset
/// (CatalogTraceSource). The same recipe backs the registry's
/// "<dataset>-sample" entries and `run_experiment --catalog`.
Scenario catalog_scenario(const std::string& dataset, SystemKind kind);

/// Calibrated-synthetic twin: generator options fitted to the dataset's
/// fixture (workload::trace::calibrate, fit-only), run through the
/// synthetic generator instead of the trace itself. A nonzero `jobs`
/// rescales the twin to that many jobs at the fitted arrival rate — how a
/// few-hundred-job slice scales to a 95,000-job week; 0 keeps the
/// fixture's size.
Scenario calibrated_scenario(const std::string& dataset, SystemKind kind, std::size_t jobs);

class ScenarioRegistry {
 public:
  /// Factories take the trace scale in jobs; every other knob is fixed by
  /// the registered recipe.
  using Factory = std::function<Scenario(std::size_t jobs)>;

  /// Register a factory; throws on duplicate names.
  void add(const std::string& name, Factory factory);
  bool contains(const std::string& name) const;
  /// Build one scenario; throws std::invalid_argument on unknown names
  /// (the message lists the known ones).
  Scenario make(const std::string& name, std::size_t jobs) const;
  /// Build every scenario whose name starts with `prefix` (in registration
  /// order), then share one cached trace source per group of scenarios
  /// with identical effective generator options — so a figure's systems
  /// run on one materialized trace. Throws if nothing matches.
  std::vector<Scenario> make_group(const std::string& prefix, std::size_t jobs) const;
  /// All registered names, registration order.
  std::vector<std::string> names() const;

  /// The built-in paper grid: "fig8/<system>" (M=30), "fig9/<system>"
  /// (M=40), "table1/m30/<system>", "table1/m40/<system>" for round-robin,
  /// drl-only and hierarchical; "tiny/<system>" for all six systems at
  /// test scale (6 servers). Real-cluster workloads ride along as
  /// "google2011-sample" / "alibaba2018-sample" (TraceCatalog fixture
  /// slices, hierarchical system, `jobs` ignored) and their
  /// "<dataset>-calibrated" synthetic twins (generator options fitted to
  /// the fixture via workload::trace::calibrate; `jobs` rescales the twin
  /// at the fitted arrival rate, 0 keeps the fixture's size).
  static const ScenarioRegistry& builtin();

 private:
  std::vector<std::string> order_;
  std::map<std::string, Factory> factories_;
};

/// Share trace materialization across `scenarios`: every group of
/// scenarios that (a) has no explicit source and (b) resolves to identical
/// generator options gets one shared CachedTraceSource. In-place.
void share_synthetic_traces(std::vector<Scenario>& scenarios);

}  // namespace hcrl::core
