#include "src/core/state.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hcrl::core {

void StateEncoderOptions::validate() const {
  if (num_servers == 0 || num_groups == 0) {
    throw std::invalid_argument("StateEncoder: empty cluster or groups");
  }
  if (num_servers % num_groups != 0) {
    throw std::invalid_argument("StateEncoder: num_groups must divide num_servers");
  }
  if (num_resources == 0) throw std::invalid_argument("StateEncoder: need >= 1 resource");
  if (max_queue_feature <= 0.0 || duration_scale <= 0.0) {
    throw std::invalid_argument("StateEncoder: bad scaling constants");
  }
}

StateEncoder::StateEncoder(const StateEncoderOptions& opts) : opts_(opts) { opts_.validate(); }

void StateEncoder::encode_server(const sim::Server& server, nn::Vec& out) const {
  for (std::size_t d = 0; d < opts_.num_resources; ++d) out.push_back(server.utilization(d));
  double availability = 0.0;
  switch (server.power_state()) {
    case sim::PowerState::kActive:
    case sim::PowerState::kIdle:
      availability = 1.0;
      break;
    case sim::PowerState::kWaking:
    case sim::PowerState::kFallingAsleep:
      availability = 0.5;
      break;
    case sim::PowerState::kSleep:
    case sim::PowerState::kFailed:
      availability = 0.0;
      break;
  }
  out.push_back(availability);
  // Log-scaled so the feature keeps discriminating between moderately and
  // severely backlogged servers instead of saturating.
  out.push_back(std::log1p(static_cast<double>(server.queue_length())) /
                std::log1p(opts_.max_queue_feature));
}

nn::Vec StateEncoder::group_state(const sim::ClusterView& cluster, std::size_t group) const {
  if (group >= opts_.num_groups) throw std::out_of_range("StateEncoder: bad group");
  if (cluster.num_servers() != opts_.num_servers) {
    throw std::invalid_argument("StateEncoder: cluster size mismatch");
  }
  nn::Vec out;
  out.reserve(opts_.group_state_dim());
  const std::size_t base = group * opts_.group_size();
  for (std::size_t i = 0; i < opts_.group_size(); ++i) {
    encode_server(cluster.server(base + i), out);
  }
  return out;
}

nn::Vec StateEncoder::job_state(const sim::Job& job) const {
  nn::Vec out;
  out.reserve(opts_.job_state_dim());
  for (std::size_t d = 0; d < opts_.num_resources; ++d) out.push_back(job.demand[d]);
  // Log-scaled duration in [0, ~1]: log(1+d)/log(1+scale).
  out.push_back(std::log1p(std::max(0.0, job.duration)) / std::log1p(opts_.duration_scale));
  return out;
}

nn::Vec StateEncoder::full_state(const sim::ClusterView& cluster, const sim::Job& job) const {
  nn::Vec out;
  out.reserve(opts_.full_state_dim());
  for (std::size_t k = 0; k < opts_.num_groups; ++k) {
    nn::Vec g = group_state(cluster, k);
    out.insert(out.end(), g.begin(), g.end());
  }
  nn::Vec j = job_state(job);
  out.insert(out.end(), j.begin(), j.end());
  return out;
}

}  // namespace hcrl::core
