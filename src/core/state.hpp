// Global-tier state encoding (§V-A).
//
// The DRL state at job j's arrival is s = [g_1, ..., g_K, s_j]: the K server
// -group states plus the job's own features. Per server we encode the D
// resource utilizations exactly as the paper defines, plus two features the
// joint problem makes observable and material: an availability code for the
// power mode (the broker can see which machines are asleep) and a bounded
// queue-length feature (FCFS waiting drives the latency part of the reward).
// Job features are its D demands plus a log-scaled duration estimate d_j.
#pragma once

#include <cstddef>
#include <vector>

#include "src/nn/matrix.hpp"
#include "src/sim/cluster_view.hpp"

namespace hcrl::core {

struct StateEncoderOptions {
  std::size_t num_servers = 30;
  std::size_t num_groups = 3;       // K; paper varies it between 2 and 4
  std::size_t num_resources = 3;    // D
  double max_queue_feature = 50.0;  // log-scale queue feature reference point
  double duration_scale = 7200.0;   // durations are log-scaled against this

  void validate() const;
  std::size_t group_size() const { return num_servers / num_groups; }
  /// Features per server: D utilizations + availability + queue length.
  std::size_t per_server_features() const { return num_resources + 2; }
  std::size_t group_state_dim() const { return group_size() * per_server_features(); }
  std::size_t job_state_dim() const { return num_resources + 1; }
  /// Dimension of the full flat state [g_1..g_K, s_j].
  std::size_t full_state_dim() const {
    return num_groups * group_state_dim() + job_state_dim();
  }
};

class StateEncoder {
 public:
  explicit StateEncoder(const StateEncoderOptions& opts);

  const StateEncoderOptions& options() const noexcept { return opts_; }

  /// State vector g_k of server group k (servers [k*|G|, (k+1)*|G|)).
  nn::Vec group_state(const sim::ClusterView& cluster, std::size_t group) const;
  /// Job feature vector s_j.
  nn::Vec job_state(const sim::Job& job) const;
  /// Full flat state [g_1, ..., g_K, s_j] (used by the monolithic baseline).
  nn::Vec full_state(const sim::ClusterView& cluster, const sim::Job& job) const;

  /// Group that server `m` belongs to, and its index within the group.
  std::size_t group_of(std::size_t server) const { return server / opts_.group_size(); }
  std::size_t index_in_group(std::size_t server) const { return server % opts_.group_size(); }
  std::size_t server_of(std::size_t group, std::size_t index_in_group) const {
    return group * opts_.group_size() + index_in_group;
  }

 private:
  void encode_server(const sim::Server& server, nn::Vec& out) const;

  StateEncoderOptions opts_;
};

}  // namespace hcrl::core
