#include "src/core/trace_source.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/workload/trace/catalog.hpp"
#include "src/workload/trace_io.hpp"

namespace hcrl::core {

double infer_horizon_s(const std::vector<sim::Job>& jobs) {
  double horizon = 0.0;
  for (const auto& j : jobs) horizon = std::max(horizon, j.arrival + j.duration);
  return horizon;
}

// ---- SyntheticTraceSource --------------------------------------------------

SyntheticTraceSource::SyntheticTraceSource(const workload::GeneratorOptions& options)
    : options_(options) {
  options_.validate();
}

Trace SyntheticTraceSource::produce() const {
  Trace t;
  t.jobs = workload::GoogleTraceGenerator(options_).generate();
  t.horizon_s = options_.horizon_s;
  t.stats = workload::compute_stats(t.jobs, t.horizon_s);
  return t;
}

std::string SyntheticTraceSource::describe() const {
  std::ostringstream os;
  os << "synthetic(jobs=" << options_.num_jobs << ", horizon=" << options_.horizon_s
     << "s, seed=" << options_.seed << ")";
  return os.str();
}

// ---- FileTraceSource -------------------------------------------------------

FileTraceSource::FileTraceSource(std::string path, double horizon_s)
    : path_(std::move(path)), horizon_s_(horizon_s) {
  if (path_.empty()) throw std::invalid_argument("FileTraceSource: empty path");
  if (horizon_s_ < 0.0) throw std::invalid_argument("FileTraceSource: negative horizon");
}

Trace FileTraceSource::produce() const {
  Trace t;
  t.jobs = workload::read_trace_file(path_);
  t.horizon_s = horizon_s_ > 0.0 ? horizon_s_ : infer_horizon_s(t.jobs);
  t.stats = workload::compute_stats(t.jobs, t.horizon_s);
  return t;
}

std::string FileTraceSource::describe() const { return "file(" + path_ + ")"; }

// ---- InMemoryTraceSource ---------------------------------------------------

InMemoryTraceSource::InMemoryTraceSource(std::vector<sim::Job> jobs, double horizon_s,
                                         std::string label)
    : label_(std::move(label)) {
  if (horizon_s < 0.0) throw std::invalid_argument("InMemoryTraceSource: negative horizon");
  trace_.jobs = std::move(jobs);
  trace_.horizon_s = horizon_s > 0.0 ? horizon_s : infer_horizon_s(trace_.jobs);
  trace_.stats = workload::compute_stats(trace_.jobs, trace_.horizon_s);
}

Trace InMemoryTraceSource::produce() const { return trace_; }

std::string InMemoryTraceSource::describe() const {
  return label_ + "(" + std::to_string(trace_.jobs.size()) + " jobs)";
}

// ---- CatalogTraceSource ----------------------------------------------------

CatalogTraceSource::CatalogTraceSource(std::string dataset) : dataset_(std::move(dataset)) {
  // Unknown names throw here (listing the known datasets), so a bad
  // scenario fails at construction instead of mid-sweep.
  workload::trace::TraceCatalog::builtin().entry(dataset_);
}

Trace CatalogTraceSource::produce() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!cache_.has_value()) {
    Trace t;
    t.jobs = workload::trace::TraceCatalog::builtin().load(dataset_);
    t.horizon_s = infer_horizon_s(t.jobs);
    t.stats = workload::compute_stats(t.jobs, t.horizon_s);
    cache_ = std::move(t);
  }
  return *cache_;
}

std::string CatalogTraceSource::describe() const { return "catalog(" + dataset_ + ")"; }

// ---- CachedTraceSource -----------------------------------------------------

CachedTraceSource::CachedTraceSource(std::shared_ptr<const TraceSource> inner)
    : inner_(std::move(inner)) {
  if (inner_ == nullptr) throw std::invalid_argument("CachedTraceSource: null inner source");
}

Trace CachedTraceSource::produce() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!cache_.has_value()) {
    cache_ = inner_->produce();
    ++inner_productions_;
  }
  return *cache_;
}

std::string CachedTraceSource::describe() const { return "cached(" + inner_->describe() + ")"; }

std::size_t CachedTraceSource::inner_productions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return inner_productions_;
}

std::shared_ptr<const TraceSource> make_cached(std::shared_ptr<const TraceSource> inner) {
  return std::make_shared<CachedTraceSource>(std::move(inner));
}

}  // namespace hcrl::core
