#include "src/core/trace_source.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/telemetry/registry.hpp"
#include "src/workload/trace/catalog.hpp"
#include "src/workload/trace_io.hpp"

namespace hcrl::core {

namespace {
// Registry absorption of the ad-hoc AdapterReport / NormalizeReport structs:
// catalog loads publish their ingestion counters here so the one snapshot
// schema covers the trace layer too (the structs themselves remain the
// trace_tools / test API).
struct TraceMetrics {
  telemetry::MetricId rows_read;
  telemetry::MetricId rows_malformed;
  telemetry::MetricId rows_filtered;
  telemetry::MetricId unmatched_tasks;
  telemetry::MetricId jobs_emitted;
  telemetry::MetricId norm_rows_in;
  telemetry::MetricId norm_rows_out;
  telemetry::MetricId dropped_invalid;
  telemetry::MetricId dropped_duplicate;
  telemetry::MetricId dropped_window;
  telemetry::MetricId dropped_sampled;
  telemetry::MetricId clamped_durations;
  telemetry::MetricId clamped_demands;

  static const TraceMetrics& get() {
    static const TraceMetrics m = [] {
      auto& reg = telemetry::global_registry();
      return TraceMetrics{
          .rows_read = reg.counter("trace.adapter.rows_read"),
          .rows_malformed = reg.counter("trace.adapter.rows_malformed"),
          .rows_filtered = reg.counter("trace.adapter.rows_filtered"),
          .unmatched_tasks = reg.counter("trace.adapter.unmatched_tasks"),
          .jobs_emitted = reg.counter("trace.adapter.jobs_emitted"),
          .norm_rows_in = reg.counter("trace.normalize.rows_in"),
          .norm_rows_out = reg.counter("trace.normalize.rows_out"),
          .dropped_invalid = reg.counter("trace.normalize.dropped_invalid"),
          .dropped_duplicate = reg.counter("trace.normalize.dropped_duplicate"),
          .dropped_window = reg.counter("trace.normalize.dropped_window"),
          .dropped_sampled = reg.counter("trace.normalize.dropped_sampled"),
          .clamped_durations = reg.counter("trace.normalize.clamped_durations"),
          .clamped_demands = reg.counter("trace.normalize.clamped_demands"),
      };
    }();
    return m;
  }
};

void publish_reports(const workload::trace::AdapterReport& adapter,
                     const workload::trace::NormalizeReport& normalize) {
  if (!telemetry::enabled()) return;
  const TraceMetrics& m = TraceMetrics::get();
  telemetry::count(m.rows_read, adapter.rows_read);
  telemetry::count(m.rows_malformed, adapter.rows_malformed);
  telemetry::count(m.rows_filtered, adapter.rows_filtered);
  telemetry::count(m.unmatched_tasks, adapter.unmatched_tasks);
  telemetry::count(m.jobs_emitted, adapter.jobs_emitted);
  telemetry::count(m.norm_rows_in, normalize.rows_in);
  telemetry::count(m.norm_rows_out, normalize.rows_out);
  telemetry::count(m.dropped_invalid, normalize.dropped_invalid);
  telemetry::count(m.dropped_duplicate, normalize.dropped_duplicate);
  telemetry::count(m.dropped_window, normalize.dropped_window);
  telemetry::count(m.dropped_sampled, normalize.dropped_sampled);
  telemetry::count(m.clamped_durations, normalize.clamped_durations);
  telemetry::count(m.clamped_demands, normalize.clamped_demands);
}
}  // namespace

double infer_horizon_s(const std::vector<sim::Job>& jobs) {
  double horizon = 0.0;
  for (const auto& j : jobs) horizon = std::max(horizon, j.arrival + j.duration);
  return horizon;
}

// ---- SyntheticTraceSource --------------------------------------------------

SyntheticTraceSource::SyntheticTraceSource(const workload::GeneratorOptions& options)
    : options_(options) {
  options_.validate();
}

Trace SyntheticTraceSource::produce() const {
  Trace t;
  t.jobs = workload::GoogleTraceGenerator(options_).generate();
  t.horizon_s = options_.horizon_s;
  t.stats = workload::compute_stats(t.jobs, t.horizon_s);
  return t;
}

std::string SyntheticTraceSource::describe() const {
  std::ostringstream os;
  os << "synthetic(jobs=" << options_.num_jobs << ", horizon=" << options_.horizon_s
     << "s, seed=" << options_.seed << ")";
  return os.str();
}

// ---- FileTraceSource -------------------------------------------------------

FileTraceSource::FileTraceSource(std::string path, double horizon_s)
    : path_(std::move(path)), horizon_s_(horizon_s) {
  if (path_.empty()) throw std::invalid_argument("FileTraceSource: empty path");
  if (horizon_s_ < 0.0) throw std::invalid_argument("FileTraceSource: negative horizon");
}

Trace FileTraceSource::produce() const {
  Trace t;
  t.jobs = workload::read_trace_file(path_);
  t.horizon_s = horizon_s_ > 0.0 ? horizon_s_ : infer_horizon_s(t.jobs);
  t.stats = workload::compute_stats(t.jobs, t.horizon_s);
  return t;
}

std::string FileTraceSource::describe() const { return "file(" + path_ + ")"; }

// ---- InMemoryTraceSource ---------------------------------------------------

InMemoryTraceSource::InMemoryTraceSource(std::vector<sim::Job> jobs, double horizon_s,
                                         std::string label)
    : label_(std::move(label)) {
  if (horizon_s < 0.0) throw std::invalid_argument("InMemoryTraceSource: negative horizon");
  trace_.jobs = std::move(jobs);
  trace_.horizon_s = horizon_s > 0.0 ? horizon_s : infer_horizon_s(trace_.jobs);
  trace_.stats = workload::compute_stats(trace_.jobs, trace_.horizon_s);
}

Trace InMemoryTraceSource::produce() const { return trace_; }

std::string InMemoryTraceSource::describe() const {
  return label_ + "(" + std::to_string(trace_.jobs.size()) + " jobs)";
}

// ---- CatalogTraceSource ----------------------------------------------------

CatalogTraceSource::CatalogTraceSource(std::string dataset) : dataset_(std::move(dataset)) {
  // Unknown names throw here (listing the known datasets), so a bad
  // scenario fails at construction instead of mid-sweep.
  workload::trace::TraceCatalog::builtin().entry(dataset_);
}

Trace CatalogTraceSource::produce() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!cache_.has_value()) {
    Trace t;
    workload::trace::AdapterReport adapter_report;
    workload::trace::NormalizeReport normalize_report;
    t.jobs = workload::trace::TraceCatalog::builtin().load(dataset_, &adapter_report,
                                                          &normalize_report);
    publish_reports(adapter_report, normalize_report);
    t.horizon_s = infer_horizon_s(t.jobs);
    t.stats = workload::compute_stats(t.jobs, t.horizon_s);
    cache_ = std::move(t);
  }
  return *cache_;
}

std::string CatalogTraceSource::describe() const { return "catalog(" + dataset_ + ")"; }

// ---- CachedTraceSource -----------------------------------------------------

CachedTraceSource::CachedTraceSource(std::shared_ptr<const TraceSource> inner)
    : inner_(std::move(inner)) {
  if (inner_ == nullptr) throw std::invalid_argument("CachedTraceSource: null inner source");
}

Trace CachedTraceSource::produce() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!cache_.has_value()) {
    cache_ = inner_->produce();
    ++inner_productions_;
  }
  return *cache_;
}

std::string CachedTraceSource::describe() const { return "cached(" + inner_->describe() + ")"; }

std::size_t CachedTraceSource::inner_productions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return inner_productions_;
}

std::shared_ptr<const TraceSource> make_cached(std::shared_ptr<const TraceSource> inner) {
  return std::make_shared<CachedTraceSource>(std::move(inner));
}

}  // namespace hcrl::core
