// TraceSource: one polymorphic producer for every kind of workload trace.
//
// The experiment layer used to be welded to the synthetic
// workload::GoogleTraceGenerator; real traces persisted via
// workload::trace_io could not reach run_experiment at all, and
// run_comparison shared a trace across systems only implicitly (by
// re-generating from the same seed). TraceSource makes the producer a
// first-class value:
//
//   * SyntheticTraceSource  — wraps workload::GeneratorOptions;
//   * FileTraceSource       — reads a workload::trace_io CSV file;
//   * InMemoryTraceSource   — wraps an already-materialized job vector;
//   * CachedTraceSource     — decorator that produces the inner trace once
//                             and hands out copies; sharing one cached
//                             source across scenarios is how a comparison
//                             runs several systems on the *same* trace,
//                             explicitly. Thread-safe, so a ParallelRunner
//                             can race several scenarios onto one source.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/sim/types.hpp"
#include "src/workload/generator.hpp"

namespace hcrl::core {

/// A fully-materialized workload: jobs sorted by arrival plus the horizon
/// they were drawn over and their summary statistics.
struct Trace {
  std::vector<sim::Job> jobs;
  double horizon_s = 0.0;
  workload::TraceStats stats;
};

class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Materialize the full trace. Deterministic: every call returns the same
  /// jobs. Must be safe to call from several threads at once.
  virtual Trace produce() const = 0;

  /// Human-readable description for logs and error messages.
  virtual std::string describe() const = 0;
};

/// Synthetic Google-like trace (workload::GoogleTraceGenerator).
class SyntheticTraceSource final : public TraceSource {
 public:
  explicit SyntheticTraceSource(const workload::GeneratorOptions& options);

  Trace produce() const override;
  std::string describe() const override;

  const workload::GeneratorOptions& options() const noexcept { return options_; }

 private:
  workload::GeneratorOptions options_;
};

/// Jobs read from a workload::trace_io CSV file. `horizon_s` = 0 infers the
/// horizon from the trace (latest arrival + that job's duration).
class FileTraceSource final : public TraceSource {
 public:
  explicit FileTraceSource(std::string path, double horizon_s = 0.0);

  Trace produce() const override;
  std::string describe() const override;

  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  double horizon_s_;
};

/// An already-materialized job vector (tests, spliced traces, replay of a
/// previous run). `horizon_s` = 0 infers as in FileTraceSource.
class InMemoryTraceSource final : public TraceSource {
 public:
  InMemoryTraceSource(std::vector<sim::Job> jobs, double horizon_s = 0.0,
                      std::string label = "in-memory");

  Trace produce() const override;
  std::string describe() const override;

 private:
  Trace trace_;
  std::string label_;
};

/// A named dataset from workload::trace::TraceCatalog::builtin() — bundled
/// fixture slices of real cluster traces (Google 2011, Alibaba 2018, Azure
/// 2017), parsed and normalized on first produce() and cached after. The
/// dataset name is validated at construction; the fixture file is only
/// touched by produce().
class CatalogTraceSource final : public TraceSource {
 public:
  explicit CatalogTraceSource(std::string dataset);

  Trace produce() const override;
  std::string describe() const override;

  const std::string& dataset() const noexcept { return dataset_; }

 private:
  std::string dataset_;
  mutable std::mutex mutex_;
  mutable std::optional<Trace> cache_;
};

/// Decorator: produce the inner trace exactly once, then serve copies.
class CachedTraceSource final : public TraceSource {
 public:
  explicit CachedTraceSource(std::shared_ptr<const TraceSource> inner);

  Trace produce() const override;
  std::string describe() const override;

  /// Number of times the inner source has actually been asked to produce
  /// (0 or 1 after construction; observable for tests).
  std::size_t inner_productions() const;

 private:
  std::shared_ptr<const TraceSource> inner_;
  mutable std::mutex mutex_;
  mutable std::optional<Trace> cache_;
  mutable std::size_t inner_productions_ = 0;
};

/// Convenience: wrap a source in a shared cache.
std::shared_ptr<const TraceSource> make_cached(std::shared_ptr<const TraceSource> inner);

/// Horizon inference used by File/InMemory sources: max(arrival + duration)
/// over the jobs (0 for an empty trace).
double infer_horizon_s(const std::vector<sim::Job>& jobs);

}  // namespace hcrl::core
