#include "src/core/tradeoff.hpp"

#include <stdexcept>

#include "src/common/log.hpp"

namespace hcrl::core {

namespace {

TradeoffPoint to_point(const ExperimentResult& r, const std::string& system, double sweep) {
  TradeoffPoint p;
  p.system = system;
  p.sweep_value = sweep;
  const auto& s = r.final_snapshot;
  const double n = static_cast<double>(std::max<std::size_t>(1, s.jobs_completed));
  p.avg_latency_s = s.accumulated_latency_s / n;
  p.avg_energy_wh = s.energy_joules / 3600.0 / n;
  p.energy_kwh = s.energy_kwh();
  p.accumulated_latency_s = s.accumulated_latency_s;
  return p;
}

}  // namespace

TradeoffResult explore_tradeoff(const TradeoffOptions& options) {
  if (options.local_weights.empty()) {
    throw std::invalid_argument("explore_tradeoff: no local weights");
  }
  TradeoffResult result;

  for (double w : options.local_weights) {
    ExperimentConfig cfg = options.base;
    cfg.system = SystemKind::kHierarchical;
    cfg.local.w = w;
    const ExperimentResult r = run_experiment(cfg);
    result.hierarchical.push_back(to_point(r, "hierarchical", w));
    common::log_info() << "tradeoff hierarchical w=" << w
                       << " latency/job=" << result.hierarchical.back().avg_latency_s
                       << "s energy/job=" << result.hierarchical.back().avg_energy_wh << "Wh";
  }

  for (double timeout : options.fixed_timeouts) {
    std::vector<TradeoffPoint> curve;
    for (double w_vms : options.global_vm_weights) {
      ExperimentConfig cfg = options.base;
      cfg.system = SystemKind::kDrlFixedTimeout;
      cfg.fixed_timeout_s = timeout;
      cfg.drl.w_vms = w_vms;
      const ExperimentResult r = run_experiment(cfg);
      const std::string label = "fixed-timeout-" + std::to_string(static_cast<int>(timeout));
      curve.push_back(to_point(r, label, w_vms));
      common::log_info() << "tradeoff " << label << " w_vms=" << w_vms
                         << " latency/job=" << curve.back().avg_latency_s
                         << "s energy/job=" << curve.back().avg_energy_wh << "Wh";
    }
    result.fixed_timeout_curves.push_back(std::move(curve));
  }
  return result;
}

double tradeoff_area(const std::vector<TradeoffPoint>& curve) {
  if (curve.empty()) throw std::invalid_argument("tradeoff_area: empty curve");
  double total = 0.0;
  for (const auto& p : curve) total += p.avg_latency_s * p.avg_energy_wh;
  return total / static_cast<double>(curve.size());
}

}  // namespace hcrl::core
