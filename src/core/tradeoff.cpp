#include "src/core/tradeoff.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

#include "src/common/log.hpp"
#include "src/core/runner.hpp"
#include "src/core/scenario.hpp"

namespace hcrl::core {

namespace {

TradeoffPoint to_point(const ExperimentResult& r, const std::string& system, double sweep) {
  TradeoffPoint p;
  p.system = system;
  p.sweep_value = sweep;
  const auto& s = r.final_snapshot;
  const double n = static_cast<double>(std::max<std::size_t>(1, s.jobs_completed));
  p.avg_latency_s = s.accumulated_latency_s / n;
  p.avg_energy_wh = s.energy_joules / 3600.0 / n;
  p.energy_kwh = s.energy_kwh();
  p.accumulated_latency_s = s.accumulated_latency_s;
  return p;
}

}  // namespace

TradeoffResult explore_tradeoff(const TradeoffOptions& options) {
  if (options.local_weights.empty()) {
    throw std::invalid_argument("explore_tradeoff: no local weights");
  }

  // The whole grid as one scenario batch: the hierarchical curve first, then
  // one fixed-timeout curve per timeout. Every cell runs on the same trace
  // (one shared cached source), and the batch order is the result order.
  struct Cell {
    std::string curve_label;
    double sweep = 0.0;
  };
  std::vector<Scenario> scenarios;
  std::vector<Cell> cells;

  for (double w : options.local_weights) {
    Scenario s;
    s.name = "hierarchical/w=" + std::to_string(w);
    s.config = options.base;
    s.config.system = SystemKind::kHierarchical;
    s.config.local.w = w;
    scenarios.push_back(std::move(s));
    cells.push_back({"hierarchical", w});
  }
  for (double timeout : options.fixed_timeouts) {
    const std::string label = "fixed-timeout-" + std::to_string(static_cast<int>(timeout));
    for (double w_vms : options.global_vm_weights) {
      Scenario s;
      s.name = label + "/w_vms=" + std::to_string(w_vms);
      s.config = options.base;
      s.config.system = SystemKind::kDrlFixedTimeout;
      s.config.fixed_timeout_s = timeout;
      s.config.drl.w_vms = w_vms;
      scenarios.push_back(std::move(s));
      cells.push_back({label, w_vms});
    }
  }
  share_synthetic_traces(scenarios);

  std::vector<ExperimentResult> results;
  if (options.threads == 1) {
    results = SerialRunner().run(scenarios);
  } else {
    results = ParallelRunner(options.threads).run(scenarios);
  }

  TradeoffResult result;
  std::size_t i = 0;
  for (; i < options.local_weights.size(); ++i) {
    result.hierarchical.push_back(to_point(results[i], cells[i].curve_label, cells[i].sweep));
    common::log_info() << "tradeoff hierarchical w=" << cells[i].sweep
                       << " latency/job=" << result.hierarchical.back().avg_latency_s
                       << "s energy/job=" << result.hierarchical.back().avg_energy_wh << "Wh";
  }
  for (std::size_t t = 0; t < options.fixed_timeouts.size(); ++t) {
    std::vector<TradeoffPoint> curve;
    for (std::size_t k = 0; k < options.global_vm_weights.size(); ++k, ++i) {
      curve.push_back(to_point(results[i], cells[i].curve_label, cells[i].sweep));
      common::log_info() << "tradeoff " << cells[i].curve_label << " w_vms=" << cells[i].sweep
                         << " latency/job=" << curve.back().avg_latency_s
                         << "s energy/job=" << curve.back().avg_energy_wh << "Wh";
    }
    result.fixed_timeout_curves.push_back(std::move(curve));
  }
  return result;
}

double tradeoff_area(const std::vector<TradeoffPoint>& curve) {
  if (curve.empty()) throw std::invalid_argument("tradeoff_area: empty curve");
  double total = 0.0;
  for (const auto& p : curve) total += p.avg_latency_s * p.avg_energy_wh;
  return total / static_cast<double>(curve.size());
}

}  // namespace hcrl::core
