// Power/latency trade-off exploration (Fig. 10 of the paper).
//
// The hierarchical framework traces its trade-off curve by sweeping the
// local-tier reward weight w (Eqn. 5): large w favours power, small w
// favours latency. The fixed-timeout baselines (30/60/90 s) trace theirs by
// sweeping the global tier's power-vs-latency reward ratio — and, as the
// paper notes, cannot reach every point of the space.
#pragma once

#include <string>
#include <vector>

#include "src/core/experiment.hpp"

namespace hcrl::core {

struct TradeoffPoint {
  std::string system;
  double sweep_value = 0.0;          // w for hierarchical; global ratio for baselines
  double avg_latency_s = 0.0;        // per completed job
  double avg_energy_wh = 0.0;        // per completed job, watt-hours
  double energy_kwh = 0.0;           // totals, for reference
  double accumulated_latency_s = 0.0;
};

struct TradeoffOptions {
  ExperimentConfig base;                       // trace/cluster/DRL settings
  std::vector<double> local_weights = {0.1, 0.3, 0.5, 0.7, 0.9};
  std::vector<double> fixed_timeouts = {30.0, 60.0, 90.0};
  /// Global w_vms values swept for the fixed-timeout baselines (w_power is
  /// held at the base value so the ratio varies).
  std::vector<double> global_vm_weights = {0.01, 0.05, 0.2};
  /// Worker threads for the sweep (ParallelRunner). 1 = serial; 0 = one per
  /// hardware thread. Results are identical for every setting.
  std::size_t threads = 1;
};

struct TradeoffResult {
  std::vector<TradeoffPoint> hierarchical;
  /// One curve per fixed timeout, same order as options.fixed_timeouts.
  std::vector<std::vector<TradeoffPoint>> fixed_timeout_curves;
};

TradeoffResult explore_tradeoff(const TradeoffOptions& options);

/// Area-under-curve style score: mean of (latency * energy) products along a
/// curve; lower is a better trade-off (the paper's "smallest area" claim).
double tradeoff_area(const std::vector<TradeoffPoint>& curve);

}  // namespace hcrl::core
