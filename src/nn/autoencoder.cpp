#include "src/nn/autoencoder.hpp"

#include <stdexcept>

#include "src/nn/loss.hpp"

namespace hcrl::nn {

Autoencoder::Autoencoder(std::size_t input_dim, const Options& opts, common::Rng& rng)
    : input_dim_(input_dim), grad_clip_(opts.grad_clip) {
  if (input_dim == 0) throw std::invalid_argument("Autoencoder: input_dim must be > 0");
  if (opts.encoder_dims.empty()) {
    throw std::invalid_argument("Autoencoder: need at least one encoder layer");
  }
  std::size_t prev = input_dim;
  for (std::size_t dim : opts.encoder_dims) {
    encoder_.add_dense(prev, dim, opts.activation, rng);
    prev = dim;
  }
  code_dim_ = prev;
  for (std::size_t i = opts.encoder_dims.size(); i-- > 1;) {
    decoder_.add_dense(prev, opts.encoder_dims[i - 1], opts.activation, rng);
    prev = opts.encoder_dims[i - 1];
  }
  // Linear output layer: utilizations are reconstructed unconstrained and
  // the MSE pulls them into range; a linear head trains faster than a
  // saturating one on near-zero targets.
  decoder_.add_dense(prev, input_dim, Activation::kIdentity, rng);

  auto all = params();
  optimizer_ = std::make_unique<Adam>(all, Adam::Options{.lr = opts.learning_rate});
}

Vec Autoencoder::encode(const Vec& x) { return encoder_.predict(x); }

Matrix Autoencoder::encode_batch(Matrix X) {
  if (X.cols() != input_dim_) {
    throw std::invalid_argument("Autoencoder::encode_batch: input is " + X.shape_string());
  }
  return encoder_.predict_batch(std::move(X));
}

Vec Autoencoder::encode_training(const Vec& x) { return encoder_.forward(x); }

Vec Autoencoder::backward_through_encoder(const Vec& dcode) { return encoder_.backward(dcode); }

Vec Autoencoder::reconstruct(const Vec& x) {
  Vec code = encoder_.predict(x);
  return decoder_.predict(code);
}

double Autoencoder::train_batch(const std::vector<Vec>& batch) {
  if (batch.empty()) throw std::invalid_argument("Autoencoder::train_batch: empty batch");
  for (const Vec& x : batch) {
    if (x.size() != input_dim_) {
      throw std::invalid_argument("Autoencoder::train_batch: bad sample dimension");
    }
  }
  optimizer_->zero_grad();
  // One batched reconstruction pass: per-sample gradient accumulation folds
  // into the GEMMs of the backward sweep.
  const Matrix X = Matrix::from_rows(batch);
  const double inv_n = 1.0 / static_cast<double>(batch.size());
  Matrix code = encoder_.forward_batch(X);
  Matrix recon = decoder_.forward_batch(code);
  BatchLossResult loss = mse_loss_batch(recon, X, inv_n);
  Matrix dcode = decoder_.backward_batch(loss.grad);
  encoder_.backward_batch(dcode, /*want_input_grad=*/false);
  clip_grad_norm(params(), grad_clip_);
  optimizer_->step();
  return loss.value * inv_n;
}

std::vector<ParamBlockPtr> Autoencoder::params() const {
  auto out = encoder_.params();
  auto dec = decoder_.params();
  out.insert(out.end(), dec.begin(), dec.end());
  return out;
}

std::size_t Autoencoder::param_count() const {
  std::size_t n = 0;
  for (const auto& p : params()) n += p->param_count();
  return n;
}

}  // namespace hcrl::nn
