#include "src/nn/autoencoder.hpp"

#include <stdexcept>

#include "src/nn/loss.hpp"

namespace hcrl::nn {

template <class S>
AutoencoderT<S>::AutoencoderT(std::size_t input_dim, const Options& opts, common::Rng& rng)
    : input_dim_(input_dim), grad_clip_(opts.grad_clip) {
  if (input_dim == 0) throw std::invalid_argument("Autoencoder: input_dim must be > 0");
  if (opts.encoder_dims.empty()) {
    throw std::invalid_argument("Autoencoder: need at least one encoder layer");
  }
  std::size_t prev = input_dim;
  for (std::size_t dim : opts.encoder_dims) {
    encoder_.add_dense(prev, dim, opts.activation, rng);
    prev = dim;
  }
  code_dim_ = prev;
  for (std::size_t i = opts.encoder_dims.size(); i-- > 1;) {
    decoder_.add_dense(prev, opts.encoder_dims[i - 1], opts.activation, rng);
    prev = opts.encoder_dims[i - 1];
  }
  // Linear output layer: utilizations are reconstructed unconstrained and
  // the MSE pulls them into range; a linear head trains faster than a
  // saturating one on near-zero targets.
  decoder_.add_dense(prev, input_dim, Activation::kIdentity, rng);

  auto all = params();
  optimizer_ = std::make_unique<AdamT<S>>(all, AdamOptions{.lr = opts.learning_rate});
}

template <class S>
VecT<S> AutoencoderT<S>::encode(const VecT<S>& x) {
  return encoder_.predict(x);
}

template <class S>
MatrixT<S> AutoencoderT<S>::encode_batch(MatrixT<S> X) {
  if (X.cols() != input_dim_) {
    throw std::invalid_argument("Autoencoder::encode_batch: input is " + X.shape_string());
  }
  return encoder_.predict_batch(std::move(X));
}

template <class S>
VecT<S> AutoencoderT<S>::encode_training(const VecT<S>& x) {
  return encoder_.forward(x);
}

template <class S>
VecT<S> AutoencoderT<S>::backward_through_encoder(const VecT<S>& dcode) {
  return encoder_.backward(dcode);
}

template <class S>
VecT<S> AutoencoderT<S>::reconstruct(const VecT<S>& x) {
  VecT<S> code = encoder_.predict(x);
  return decoder_.predict(code);
}

template <class S>
double AutoencoderT<S>::train_batch(const std::vector<VecT<S>>& batch) {
  if (batch.empty()) throw std::invalid_argument("Autoencoder::train_batch: empty batch");
  for (const VecT<S>& x : batch) {
    if (x.size() != input_dim_) {
      throw std::invalid_argument("Autoencoder::train_batch: bad sample dimension");
    }
  }
  return train_batch_matrix(MatrixT<S>::from_rows(batch));
}

template <class S>
double AutoencoderT<S>::train_batch_matrix(const MatrixT<S>& X) {
  if (X.rows() == 0 || X.cols() != input_dim_) {
    throw std::invalid_argument("Autoencoder::train_batch_matrix: input is " + X.shape_string());
  }
  optimizer_->zero_grad();
  // One batched reconstruction pass: per-sample gradient accumulation folds
  // into the GEMMs of the backward sweep.
  const double inv_n = 1.0 / static_cast<double>(X.rows());
  MatrixT<S> code = encoder_.forward_batch(X);
  MatrixT<S> recon = decoder_.forward_batch(code);
  BatchLossResultT<S> loss = mse_loss_batch(recon, X, static_cast<S>(inv_n));
  MatrixT<S> dcode = decoder_.backward_batch(loss.grad);
  encoder_.backward_batch(dcode, /*want_input_grad=*/false);
  clip_grad_norm(params(), grad_clip_);
  optimizer_->step();
  return loss.value * inv_n;
}

template <class S>
std::vector<ParamBlockPtrT<S>> AutoencoderT<S>::params() const {
  auto out = encoder_.params();
  auto dec = decoder_.params();
  out.insert(out.end(), dec.begin(), dec.end());
  return out;
}

template <class S>
std::size_t AutoencoderT<S>::param_count() const {
  std::size_t n = 0;
  for (const auto& p : params()) n += p->param_count();
  return n;
}

template class AutoencoderT<float>;
template class AutoencoderT<double>;

}  // namespace hcrl::nn
