// Autoencoder used by the global tier to compress server-group states.
//
// The paper (§V-A, Fig. 6) uses a two-layer fully-connected ELU encoder with
// 30 and 15 neurons; the decoder mirrors it. One Autoencoder instance can be
// applied to all K groups because the K logical autoencoders share weights —
// the LIFO layer caches make repeated forward() calls differentiable.
//
// Templated on the Scalar type (float/double instantiations in
// autoencoder.cpp); `Autoencoder` aliases the double instantiation.
#pragma once

#include <vector>

#include "src/common/rng.hpp"
#include "src/nn/network.hpp"
#include "src/nn/optimizer.hpp"

namespace hcrl::nn {

/// Options are Scalar-independent (shared by both instantiations).
struct AutoencoderOptions {
  std::vector<std::size_t> encoder_dims = {30, 15};  // per the paper
  Activation activation = Activation::kElu;
  double learning_rate = 1e-3;
  double grad_clip = 10.0;
};

template <class S>
class AutoencoderT {
 public:
  using Options = AutoencoderOptions;

  AutoencoderT(std::size_t input_dim, const Options& opts, common::Rng& rng);

  std::size_t input_dim() const noexcept { return input_dim_; }
  std::size_t code_dim() const noexcept { return code_dim_; }

  /// Encode without caching (inference).
  VecT<S> encode(const VecT<S>& x);
  /// Encode a (batch x input_dim) matrix of samples in one GEMM sweep.
  MatrixT<S> encode_batch(MatrixT<S> X);
  /// Encode, keeping caches so that a later backward_through_encoder() can
  /// propagate downstream gradients into the encoder weights.
  VecT<S> encode_training(const VecT<S>& x);
  /// Back-propagate dL/dcode from a downstream consumer through the encoder
  /// (one pending encode_training per call, reverse order).
  VecT<S> backward_through_encoder(const VecT<S>& dcode);

  /// Full reconstruction (inference).
  VecT<S> reconstruct(const VecT<S>& x);

  /// One self-supervised training step on a batch; returns mean MSE.
  double train_batch(const std::vector<VecT<S>>& batch);
  /// train_batch over samples already stacked as a (batch x input_dim)
  /// matrix (no per-sample Vec staging — the hot observe_state path).
  double train_batch_matrix(const MatrixT<S>& X);

  NetworkT<S>& encoder() noexcept { return encoder_; }
  NetworkT<S>& decoder() noexcept { return decoder_; }
  std::vector<ParamBlockPtrT<S>> params() const;
  std::size_t param_count() const;

 private:
  std::size_t input_dim_;
  std::size_t code_dim_;
  NetworkT<S> encoder_;
  NetworkT<S> decoder_;
  std::unique_ptr<AdamT<S>> optimizer_;
  double grad_clip_;
};

using Autoencoder = AutoencoderT<double>;

extern template class AutoencoderT<float>;
extern template class AutoencoderT<double>;

}  // namespace hcrl::nn
