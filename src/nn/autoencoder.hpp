// Autoencoder used by the global tier to compress server-group states.
//
// The paper (§V-A, Fig. 6) uses a two-layer fully-connected ELU encoder with
// 30 and 15 neurons; the decoder mirrors it. One Autoencoder instance can be
// applied to all K groups because the K logical autoencoders share weights —
// the LIFO layer caches make repeated forward() calls differentiable.
#pragma once

#include <vector>

#include "src/common/rng.hpp"
#include "src/nn/network.hpp"
#include "src/nn/optimizer.hpp"

namespace hcrl::nn {

class Autoencoder {
 public:
  struct Options {
    std::vector<std::size_t> encoder_dims = {30, 15};  // per the paper
    Activation activation = Activation::kElu;
    double learning_rate = 1e-3;
    double grad_clip = 10.0;
  };

  Autoencoder(std::size_t input_dim, const Options& opts, common::Rng& rng);

  std::size_t input_dim() const noexcept { return input_dim_; }
  std::size_t code_dim() const noexcept { return code_dim_; }

  /// Encode without caching (inference).
  Vec encode(const Vec& x);
  /// Encode a (batch x input_dim) matrix of samples in one GEMM sweep.
  Matrix encode_batch(Matrix X);
  /// Encode, keeping caches so that a later backward_through_encoder() can
  /// propagate downstream gradients into the encoder weights.
  Vec encode_training(const Vec& x);
  /// Back-propagate dL/dcode from a downstream consumer through the encoder
  /// (one pending encode_training per call, reverse order).
  Vec backward_through_encoder(const Vec& dcode);

  /// Full reconstruction (inference).
  Vec reconstruct(const Vec& x);

  /// One self-supervised training step on a batch; returns mean MSE.
  double train_batch(const std::vector<Vec>& batch);

  Network& encoder() noexcept { return encoder_; }
  Network& decoder() noexcept { return decoder_; }
  std::vector<ParamBlockPtr> params() const;
  std::size_t param_count() const;

 private:
  std::size_t input_dim_;
  std::size_t code_dim_;
  Network encoder_;
  Network decoder_;
  std::unique_ptr<Adam> optimizer_;
  double grad_clip_;
};

}  // namespace hcrl::nn
