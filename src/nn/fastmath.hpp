// Vectorizable transcendentals for the f32 compute mode.
//
// The elementwise halves of the NN substrate — activation sweeps and LSTM
// gate nonlinearities — are transcendental-bound: one libm call per element
// costs more than the GEMM feeding it. For float, a Cephes-style polynomial
// exp (magic-number round-to-nearest, Cody-Waite ln2 split, degree-5
// minimax polynomial — SSE2-vectorizable) replaces libm, with Taylor
// branches below |x| = 0.25 where the exp-based forms would cancel:
//   exp      <= ~8e-8  relative error
//   expm1    <= ~1.6e-6 relative
//   tanh     <= ~4e-7  relative
//   sigmoid  <= ~1.5e-7 relative
// (measured against double libm over [-20, 20] plus a dense near-zero
// sweep) — well inside the 1e-4 f32-vs-f64 parity budget of the gates.
//
// The double path deliberately stays on libm: f64 is the reference
// precision and its results must not move. Dispatch is by Scalar type, and
// every execution path of one Scalar uses the same functions, so batch-1
// and batched sweeps stay bit-identical per precision.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

namespace hcrl::nn::fastmath {

/// Branch-free polynomial expf; |rel err| <= ~8e-8 over the finite range.
/// Inputs are clamped to the finite-result range (the NN paths feed gate
/// pre-activations and ELU arguments, never infinities).
inline float exp_fast(float x) noexcept {
  x = std::min(x, 88.37f);
  x = std::max(x, -87.33f);
  // Round x/ln2 to the nearest integer with the 1.5*2^23 magic constant:
  // the integer lands in the mantissa bits (exact for |k| < 2^22), readable
  // both as a float (y - magic) and as an int (bit difference) without any
  // SSE4 rounding instruction.
  const float y = x * 1.44269504088896341f + 12582912.0f;
  const std::int32_t k = std::bit_cast<std::int32_t>(y) - std::bit_cast<std::int32_t>(12582912.0f);
  const float kf = y - 12582912.0f;
  // Cody-Waite two-term ln2 so r = x - k*ln2 stays accurate.
  float r = x - kf * 0.693359375f;
  r = r - kf * -2.12194440e-4f;
  // Cephes degree-5 minimax polynomial for exp(r), r in [-ln2/2, ln2/2].
  float p = 1.9875691500e-4f;
  p = p * r + 1.3981999507e-3f;
  p = p * r + 8.3334519073e-3f;
  p = p * r + 4.1665795894e-2f;
  p = p * r + 1.6666665459e-1f;
  p = p * r + 5.0000001201e-1f;
  const float e = r * r * p + r + 1.0f;
  // 2^k as a float, by building the exponent field directly.
  const float scale = std::bit_cast<float>((k + 127) << 23);
  return e * scale;
}

inline float expm1_fast(float x) noexcept {
  // exp_fast(x) - 1 cancels catastrophically for small |x| (the result is
  // the rounding noise of exp near 1), so switch to the Taylor series there:
  // truncation error ~x^6/720, far below float epsilon at the threshold.
  if (std::abs(x) < 0.25f) {
    float p = 1.0f / 120.0f;
    p = p * x + 1.0f / 24.0f;
    p = p * x + 1.0f / 6.0f;
    p = p * x + 0.5f;
    p = p * x + 1.0f;
    return p * x;
  }
  return exp_fast(x) - 1.0f;
}

inline float sigmoid_fast(float x) noexcept { return 1.0f / (1.0f + exp_fast(-x)); }

inline float tanh_fast(float x) noexcept {
  const float a = std::abs(x);
  float t;
  if (a < 0.25f) {
    // 1 - 2/(e+1) cancels for small arguments; odd Taylor series instead
    // (x - x^3/3 + 2x^5/15 - 17x^7/315), accurate to ~1e-8 relative here.
    const float z = a * a;
    float p = -17.0f / 315.0f;
    p = p * z + 2.0f / 15.0f;
    p = p * z - 1.0f / 3.0f;
    p = p * z + 1.0f;
    t = p * a;
  } else {
    const float e = exp_fast(2.0f * a);
    t = 1.0f - 2.0f / (e + 1.0f);
  }
  return x < 0.0f ? -t : t;
}

// --- Scalar-typed dispatch used by the elementwise NN kernels --------------

template <class S>
inline S exp_s(S x) noexcept {
  return std::exp(x);
}
template <>
inline float exp_s<float>(float x) noexcept {
  return exp_fast(x);
}

template <class S>
inline S expm1_s(S x) noexcept {
  return std::expm1(x);
}
template <>
inline float expm1_s<float>(float x) noexcept {
  return expm1_fast(x);
}

template <class S>
inline S tanh_s(S x) noexcept {
  return std::tanh(x);
}
template <>
inline float tanh_s<float>(float x) noexcept {
  return tanh_fast(x);
}

template <class S>
inline S sigmoid_s(S x) noexcept {
  return S(1) / (S(1) + std::exp(-x));
}
template <>
inline float sigmoid_s<float>(float x) noexcept {
  return sigmoid_fast(x);
}

}  // namespace hcrl::nn::fastmath
