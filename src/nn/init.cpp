#include "src/nn/init.hpp"

#include <cmath>

namespace hcrl::nn {

template <class S>
void xavier_uniform(MatrixT<S>& w, common::Rng& rng) {
  const double limit = std::sqrt(6.0 / static_cast<double>(w.rows() + w.cols()));
  for (std::size_t i = 0; i < w.size(); ++i) {
    w.data()[i] = static_cast<S>(rng.uniform(-limit, limit));
  }
}

template <class S>
void he_normal(MatrixT<S>& w, common::Rng& rng) {
  const double stddev = std::sqrt(2.0 / static_cast<double>(w.cols()));
  for (std::size_t i = 0; i < w.size(); ++i) {
    w.data()[i] = static_cast<S>(rng.normal(0.0, stddev));
  }
}

template <class S>
void normal_init(MatrixT<S>& w, common::Rng& rng, double mean, double stddev) {
  for (std::size_t i = 0; i < w.size(); ++i) {
    w.data()[i] = static_cast<S>(rng.normal(mean, stddev));
  }
}

template <class S>
void init_dense(DenseParamsT<S>& p, common::Rng& rng, double bias) {
  he_normal(p.W, rng);
  for (auto& b : p.b) b = static_cast<S>(bias);
}

template <class S>
void init_lstm(LstmParamsT<S>& p, common::Rng& rng) {
  xavier_uniform(p.Wx, rng);
  xavier_uniform(p.Wh, rng);
  // Forget-gate bias of 1.0 is the standard trick to let gradients flow
  // early in training; other gates start unbiased.
  const std::size_t h = p.hidden_dim();
  for (std::size_t i = 0; i < p.b.size(); ++i) p.b[i] = S(0);
  for (std::size_t i = h; i < 2 * h; ++i) p.b[i] = S(1);
}

#define HCRL_NN_INSTANTIATE_INIT(S)                                     \
  template void xavier_uniform<S>(MatrixT<S>&, common::Rng&);           \
  template void he_normal<S>(MatrixT<S>&, common::Rng&);                \
  template void normal_init<S>(MatrixT<S>&, common::Rng&, double, double); \
  template void init_dense<S>(DenseParamsT<S>&, common::Rng&, double);  \
  template void init_lstm<S>(LstmParamsT<S>&, common::Rng&);

HCRL_NN_INSTANTIATE_INIT(float)
HCRL_NN_INSTANTIATE_INIT(double)
#undef HCRL_NN_INSTANTIATE_INIT

}  // namespace hcrl::nn
