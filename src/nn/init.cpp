#include "src/nn/init.hpp"

#include <cmath>

namespace hcrl::nn {

void xavier_uniform(Matrix& w, common::Rng& rng) {
  const double limit = std::sqrt(6.0 / static_cast<double>(w.rows() + w.cols()));
  for (std::size_t i = 0; i < w.size(); ++i) w.data()[i] = rng.uniform(-limit, limit);
}

void he_normal(Matrix& w, common::Rng& rng) {
  const double stddev = std::sqrt(2.0 / static_cast<double>(w.cols()));
  for (std::size_t i = 0; i < w.size(); ++i) w.data()[i] = rng.normal(0.0, stddev);
}

void normal_init(Matrix& w, common::Rng& rng, double mean, double stddev) {
  for (std::size_t i = 0; i < w.size(); ++i) w.data()[i] = rng.normal(mean, stddev);
}

void init_dense(DenseParams& p, common::Rng& rng, double bias) {
  he_normal(p.W, rng);
  for (auto& b : p.b) b = bias;
}

void init_lstm(LstmParams& p, common::Rng& rng) {
  xavier_uniform(p.Wx, rng);
  xavier_uniform(p.Wh, rng);
  // Forget-gate bias of 1.0 is the standard trick to let gradients flow
  // early in training; other gates start unbiased.
  const std::size_t h = p.hidden_dim();
  for (std::size_t i = 0; i < p.b.size(); ++i) p.b[i] = 0.0;
  for (std::size_t i = h; i < 2 * h; ++i) p.b[i] = 1.0;
}

}  // namespace hcrl::nn
