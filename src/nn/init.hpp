// Weight initializers.
//
// Templated on the Scalar type. All draws come from the Rng's double stream
// and are cast to the target Scalar, so a float-typed model initialized from
// seed X holds exactly the rounded weights of the double-typed model from
// the same seed — the property the f32-vs-f64 parity gates rely on.
#pragma once

#include "src/common/rng.hpp"
#include "src/nn/param.hpp"

namespace hcrl::nn {

/// Glorot/Xavier uniform: U(-limit, limit), limit = sqrt(6 / (fan_in+fan_out)).
template <class S>
void xavier_uniform(MatrixT<S>& w, common::Rng& rng);

/// He/Kaiming normal: N(0, sqrt(2 / fan_in)). Suited to ELU/ReLU layers.
template <class S>
void he_normal(MatrixT<S>& w, common::Rng& rng);

/// N(mean, stddev) on every entry — the paper initializes the LSTM
/// input/output layers as N(0, 1) with bias 0.1.
template <class S>
void normal_init(MatrixT<S>& w, common::Rng& rng, double mean, double stddev);

/// Initialize a dense layer (He weights, zero bias by default).
template <class S>
void init_dense(DenseParamsT<S>& p, common::Rng& rng, double bias = 0.0);

/// Initialize an LSTM block (Xavier weights, forget-gate bias = 1).
template <class S>
void init_lstm(LstmParamsT<S>& p, common::Rng& rng);

}  // namespace hcrl::nn
