// Weight initializers.
#pragma once

#include "src/common/rng.hpp"
#include "src/nn/param.hpp"

namespace hcrl::nn {

/// Glorot/Xavier uniform: U(-limit, limit), limit = sqrt(6 / (fan_in+fan_out)).
void xavier_uniform(Matrix& w, common::Rng& rng);

/// He/Kaiming normal: N(0, sqrt(2 / fan_in)). Suited to ELU/ReLU layers.
void he_normal(Matrix& w, common::Rng& rng);

/// N(mean, stddev) on every entry — the paper initializes the LSTM
/// input/output layers as N(0, 1) with bias 0.1.
void normal_init(Matrix& w, common::Rng& rng, double mean, double stddev);

/// Initialize a dense layer (He weights, zero bias by default).
void init_dense(DenseParams& p, common::Rng& rng, double bias = 0.0);

/// Initialize an LSTM block (Xavier weights, forget-gate bias = 1).
void init_lstm(LstmParams& p, common::Rng& rng);

}  // namespace hcrl::nn
