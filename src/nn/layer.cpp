#include "src/nn/layer.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "src/nn/fastmath.hpp"

namespace hcrl::nn {

template <class S>
VecT<S> LayerT<S>::forward(const VecT<S>& x) {
  return forward_batch(MatrixT<S>::from_row(x)).row(0);
}

template <class S>
VecT<S> LayerT<S>::backward(const VecT<S>& dy) {
  return backward_batch(MatrixT<S>::from_row(dy)).row(0);
}

template <class S>
DenseT<S>::DenseT(DenseParamsPtrT<S> params) : params_(std::move(params)) {
  if (!params_) throw std::invalid_argument("Dense: null params");
}

template <class S>
MatrixT<S> DenseT<S>::forward_batch(MatrixT<S> X, bool keep_cache) {
  assert(X.cols() == params_->in_dim());
  // Seed every row with the bias, then accumulate X W^T on top in one GEMM
  // for the whole batch — one write pass over Y instead of a separate
  // broadcast-add pass (addition commutes, so the rounding is unchanged).
  MatrixT<S> Y;
  Y.resize_for_overwrite(X.rows(), params_->out_dim());
  for (std::size_t r = 0; r < Y.rows(); ++r) Y.set_row(r, params_->b);
  gemm_nt(X, params_->W, Y, /*accumulate=*/true);
  if (keep_cache) inputs_.push_back(std::move(X));
  return Y;
}

template <class S>
MatrixT<S> DenseT<S>::backward_batch(const MatrixT<S>& dY, bool want_input_grad) {
  if (inputs_.empty()) throw std::logic_error("Dense::backward without forward");
  assert(dY.cols() == params_->out_dim());
  const MatrixT<S> X = std::move(inputs_.back());
  inputs_.pop_back();
  if (dY.rows() != X.rows()) throw std::invalid_argument("Dense::backward: batch mismatch");
  gemm_tn(dY, X, params_->gW, /*accumulate=*/true);  // gW += dY^T X
  dY.add_col_sums_into(params_->gb);                 // gb += per-row dy, in row order
  MatrixT<S> dX;
  if (want_input_grad) gemm(dY, params_->W, dX);  // dX = dY W
  return dX;
}

template <class S>
void DenseT<S>::collect_params(std::vector<ParamBlockPtrT<S>>& out) const {
  out.push_back(params_);
}

template <class S>
S activate(Activation kind, S x) noexcept {
  switch (kind) {
    case Activation::kIdentity: return x;
    case Activation::kRelu: return x > S(0) ? x : S(0);
    case Activation::kElu: return x > S(0) ? x : fastmath::expm1_s(x);
    case Activation::kTanh: return fastmath::tanh_s(x);
    case Activation::kSigmoid: return fastmath::sigmoid_s(x);
  }
  return x;
}

template <class S>
S activate_grad_from_output(Activation kind, S y) noexcept {
  switch (kind) {
    case Activation::kIdentity: return S(1);
    case Activation::kRelu: return y > S(0) ? S(1) : S(0);
    // ELU (alpha=1): y = e^x - 1 for x<=0, so dy/dx = e^x = y + 1; y>0 -> 1.
    case Activation::kElu: return y > S(0) ? S(1) : y + S(1);
    case Activation::kTanh: return S(1) - y * y;
    case Activation::kSigmoid: return y * (S(1) - y);
  }
  return S(1);
}

template <class S>
MatrixT<S> ActivationLayerT<S>::forward_batch(MatrixT<S> X, bool keep_cache) {
  assert(X.cols() == dim_);
  // Transform in place: the by-value input is ours to reuse, so inference
  // allocates nothing. Dispatch on the activation once, not per element, so
  // the simple kinds vectorize and the transcendental kinds lose the
  // per-element switch.
  S* v = X.data();
  const std::size_t size = X.size();
  switch (kind_) {
    case Activation::kIdentity:
      break;
    case Activation::kRelu:
      for (std::size_t i = 0; i < size; ++i) v[i] = v[i] > S(0) ? v[i] : S(0);
      break;
    case Activation::kElu:
      for (std::size_t i = 0; i < size; ++i) {
        if (v[i] <= S(0)) v[i] = fastmath::expm1_s(v[i]);
      }
      break;
    case Activation::kTanh:
      for (std::size_t i = 0; i < size; ++i) v[i] = fastmath::tanh_s(v[i]);
      break;
    case Activation::kSigmoid:
      for (std::size_t i = 0; i < size; ++i) v[i] = fastmath::sigmoid_s(v[i]);
      break;
  }
  if (keep_cache) outputs_.push_back(X);
  return X;
}

template <class S>
MatrixT<S> ActivationLayerT<S>::backward_batch(const MatrixT<S>& dY, bool /*want_input_grad*/) {
  // The "input gradient" of an activation is also its parameter-gradient
  // carrier for the layers below, so it is always computed.
  if (outputs_.empty()) throw std::logic_error("ActivationLayer::backward without forward");
  const MatrixT<S> Y = std::move(outputs_.back());
  outputs_.pop_back();
  if (!dY.same_shape(Y)) throw std::invalid_argument("ActivationLayer::backward: shape mismatch");
  MatrixT<S> dX;
  dX.resize_for_overwrite(dY.rows(), dY.cols());
  const S* dy = dY.data();
  const S* y = Y.data();
  S* dx = dX.data();
  const std::size_t size = dY.size();
  switch (kind_) {
    case Activation::kIdentity:
      for (std::size_t i = 0; i < size; ++i) dx[i] = dy[i];
      break;
    case Activation::kRelu:
      for (std::size_t i = 0; i < size; ++i) dx[i] = y[i] > S(0) ? dy[i] : S(0);
      break;
    case Activation::kElu:
      for (std::size_t i = 0; i < size; ++i) dx[i] = dy[i] * (y[i] > S(0) ? S(1) : y[i] + S(1));
      break;
    case Activation::kTanh:
      for (std::size_t i = 0; i < size; ++i) dx[i] = dy[i] * (S(1) - y[i] * y[i]);
      break;
    case Activation::kSigmoid:
      for (std::size_t i = 0; i < size; ++i) dx[i] = dy[i] * (y[i] * (S(1) - y[i]));
      break;
  }
  return dX;
}

#define HCRL_NN_INSTANTIATE_LAYER(S)                     \
  template class LayerT<S>;                              \
  template class DenseT<S>;                              \
  template class ActivationLayerT<S>;                    \
  template S activate<S>(Activation, S) noexcept;        \
  template S activate_grad_from_output<S>(Activation, S) noexcept;

HCRL_NN_INSTANTIATE_LAYER(float)
HCRL_NN_INSTANTIATE_LAYER(double)
#undef HCRL_NN_INSTANTIATE_LAYER

}  // namespace hcrl::nn
