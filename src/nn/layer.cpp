#include "src/nn/layer.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace hcrl::nn {

Vec Layer::forward(const Vec& x) { return forward_batch(Matrix::from_row(x)).row(0); }

Vec Layer::backward(const Vec& dy) { return backward_batch(Matrix::from_row(dy)).row(0); }

Dense::Dense(DenseParamsPtr params) : params_(std::move(params)) {
  if (!params_) throw std::invalid_argument("Dense: null params");
}

Matrix Dense::forward_batch(Matrix X, bool keep_cache) {
  assert(X.cols() == params_->in_dim());
  // Seed every row with the bias, then accumulate X W^T on top in one GEMM
  // for the whole batch — one write pass over Y instead of a separate
  // broadcast-add pass (addition commutes, so the rounding is unchanged).
  Matrix Y;
  Y.resize_for_overwrite(X.rows(), params_->out_dim());
  for (std::size_t r = 0; r < Y.rows(); ++r) Y.set_row(r, params_->b);
  gemm_nt(X, params_->W, Y, /*accumulate=*/true);
  if (keep_cache) inputs_.push_back(std::move(X));
  return Y;
}

Matrix Dense::backward_batch(const Matrix& dY, bool want_input_grad) {
  if (inputs_.empty()) throw std::logic_error("Dense::backward without forward");
  assert(dY.cols() == params_->out_dim());
  const Matrix X = std::move(inputs_.back());
  inputs_.pop_back();
  if (dY.rows() != X.rows()) throw std::invalid_argument("Dense::backward: batch mismatch");
  gemm_tn(dY, X, params_->gW, /*accumulate=*/true);  // gW += dY^T X
  dY.add_col_sums_into(params_->gb);                 // gb += per-row dy, in row order
  Matrix dX;
  if (want_input_grad) gemm(dY, params_->W, dX);  // dX = dY W
  return dX;
}

void Dense::collect_params(std::vector<ParamBlockPtr>& out) const { out.push_back(params_); }

double activate(Activation kind, double x) noexcept {
  switch (kind) {
    case Activation::kIdentity: return x;
    case Activation::kRelu: return x > 0.0 ? x : 0.0;
    case Activation::kElu: return x > 0.0 ? x : std::expm1(x);
    case Activation::kTanh: return std::tanh(x);
    case Activation::kSigmoid: return 1.0 / (1.0 + std::exp(-x));
  }
  return x;
}

double activate_grad_from_output(Activation kind, double y) noexcept {
  switch (kind) {
    case Activation::kIdentity: return 1.0;
    case Activation::kRelu: return y > 0.0 ? 1.0 : 0.0;
    // ELU (alpha=1): y = e^x - 1 for x<=0, so dy/dx = e^x = y + 1; y>0 -> 1.
    case Activation::kElu: return y > 0.0 ? 1.0 : y + 1.0;
    case Activation::kTanh: return 1.0 - y * y;
    case Activation::kSigmoid: return y * (1.0 - y);
  }
  return 1.0;
}

Matrix ActivationLayer::forward_batch(Matrix X, bool keep_cache) {
  assert(X.cols() == dim_);
  // Transform in place: the by-value input is ours to reuse, so inference
  // allocates nothing. Dispatch on the activation once, not per element, so
  // the simple kinds vectorize and the transcendental kinds lose the
  // per-element switch.
  double* v = X.data();
  const std::size_t size = X.size();
  switch (kind_) {
    case Activation::kIdentity:
      break;
    case Activation::kRelu:
      for (std::size_t i = 0; i < size; ++i) v[i] = v[i] > 0.0 ? v[i] : 0.0;
      break;
    case Activation::kElu:
      for (std::size_t i = 0; i < size; ++i) {
        if (v[i] <= 0.0) v[i] = std::expm1(v[i]);
      }
      break;
    case Activation::kTanh:
      for (std::size_t i = 0; i < size; ++i) v[i] = std::tanh(v[i]);
      break;
    case Activation::kSigmoid:
      for (std::size_t i = 0; i < size; ++i) v[i] = 1.0 / (1.0 + std::exp(-v[i]));
      break;
  }
  if (keep_cache) outputs_.push_back(X);
  return X;
}

Matrix ActivationLayer::backward_batch(const Matrix& dY, bool /*want_input_grad*/) {
  // The "input gradient" of an activation is also its parameter-gradient
  // carrier for the layers below, so it is always computed.
  if (outputs_.empty()) throw std::logic_error("ActivationLayer::backward without forward");
  const Matrix Y = std::move(outputs_.back());
  outputs_.pop_back();
  if (!dY.same_shape(Y)) throw std::invalid_argument("ActivationLayer::backward: shape mismatch");
  Matrix dX;
  dX.resize_for_overwrite(dY.rows(), dY.cols());
  const double* dy = dY.data();
  const double* y = Y.data();
  double* dx = dX.data();
  const std::size_t size = dY.size();
  switch (kind_) {
    case Activation::kIdentity:
      for (std::size_t i = 0; i < size; ++i) dx[i] = dy[i];
      break;
    case Activation::kRelu:
      for (std::size_t i = 0; i < size; ++i) dx[i] = y[i] > 0.0 ? dy[i] : 0.0;
      break;
    case Activation::kElu:
      for (std::size_t i = 0; i < size; ++i) dx[i] = dy[i] * (y[i] > 0.0 ? 1.0 : y[i] + 1.0);
      break;
    case Activation::kTanh:
      for (std::size_t i = 0; i < size; ++i) dx[i] = dy[i] * (1.0 - y[i] * y[i]);
      break;
    case Activation::kSigmoid:
      for (std::size_t i = 0; i < size; ++i) dx[i] = dy[i] * (y[i] * (1.0 - y[i]));
      break;
  }
  return dX;
}

}  // namespace hcrl::nn
