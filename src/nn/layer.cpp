#include "src/nn/layer.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace hcrl::nn {

Dense::Dense(DenseParamsPtr params) : params_(std::move(params)) {
  if (!params_) throw std::invalid_argument("Dense: null params");
}

Vec Dense::forward(const Vec& x) {
  assert(x.size() == params_->in_dim());
  Vec y;
  params_->W.multiply(x, y);
  add_in_place(y, params_->b);
  inputs_.push_back(x);
  return y;
}

Vec Dense::backward(const Vec& dy) {
  if (inputs_.empty()) throw std::logic_error("Dense::backward without forward");
  assert(dy.size() == params_->out_dim());
  const Vec x = std::move(inputs_.back());
  inputs_.pop_back();
  params_->gW.add_outer(dy, x);
  add_in_place(params_->gb, dy);
  Vec dx;
  params_->W.multiply_transposed(dy, dx);
  return dx;
}

void Dense::collect_params(std::vector<ParamBlockPtr>& out) const { out.push_back(params_); }

double activate(Activation kind, double x) noexcept {
  switch (kind) {
    case Activation::kIdentity: return x;
    case Activation::kRelu: return x > 0.0 ? x : 0.0;
    case Activation::kElu: return x > 0.0 ? x : std::expm1(x);
    case Activation::kTanh: return std::tanh(x);
    case Activation::kSigmoid: return 1.0 / (1.0 + std::exp(-x));
  }
  return x;
}

double activate_grad_from_output(Activation kind, double y) noexcept {
  switch (kind) {
    case Activation::kIdentity: return 1.0;
    case Activation::kRelu: return y > 0.0 ? 1.0 : 0.0;
    // ELU (alpha=1): y = e^x - 1 for x<=0, so dy/dx = e^x = y + 1; y>0 -> 1.
    case Activation::kElu: return y > 0.0 ? 1.0 : y + 1.0;
    case Activation::kTanh: return 1.0 - y * y;
    case Activation::kSigmoid: return y * (1.0 - y);
  }
  return 1.0;
}

Vec ActivationLayer::forward(const Vec& x) {
  assert(x.size() == dim_);
  Vec y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = activate(kind_, x[i]);
  outputs_.push_back(y);
  return y;
}

Vec ActivationLayer::backward(const Vec& dy) {
  if (outputs_.empty()) throw std::logic_error("ActivationLayer::backward without forward");
  const Vec y = std::move(outputs_.back());
  outputs_.pop_back();
  assert(dy.size() == y.size());
  Vec dx(dy.size());
  for (std::size_t i = 0; i < dy.size(); ++i) {
    dx[i] = dy[i] * activate_grad_from_output(kind_, y[i]);
  }
  return dx;
}

}  // namespace hcrl::nn
