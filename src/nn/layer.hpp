// Layers with explicit forward/backward and LIFO activation caches.
//
// A layer may be applied several times within one computation (this happens
// whenever parameters are shared, e.g. the K autoencoders of the global
// tier). Each forward pushes its cache; each backward pops. Backward
// passes must therefore run in exactly reverse order of the forward calls,
// which is the natural order of reverse-mode differentiation.
//
// The primitive interface is *batched*: activations travel as a
// (batch x dim) Matrix and the heavy lifting happens in the GEMM kernels of
// matrix.hpp. The per-sample Vec API is a thin wrapper over batch = 1, so
// both paths run the same kernels and stay bit-compatible (pinned by
// tests/batch_parity_test.cpp). Layers are templated on the Scalar type
// (float/double instantiations in layer.cpp); the unsuffixed names alias
// the double instantiation.
#pragma once

#include <memory>
#include <vector>

#include "src/nn/param.hpp"

namespace hcrl::nn {

template <class S>
class LayerT {
 public:
  virtual ~LayerT() = default;

  virtual std::size_t in_dim() const = 0;
  virtual std::size_t out_dim() const = 0;

  /// Compute outputs for a (batch x in_dim) input. Takes the activation by
  /// value so callers that are done with it can std::move it in and the
  /// cache push becomes a move instead of a copy. With keep_cache, pushes
  /// whatever backward_batch() needs (LIFO); inference passes false and
  /// skips the caches entirely.
  virtual MatrixT<S> forward_batch(MatrixT<S> X, bool keep_cache = true) = 0;
  /// Given dL/dY (batch x out_dim), accumulate parameter gradients and
  /// return dL/dX. Must be called once per pending forward, in reverse
  /// order, with the same batch size as the matching forward. When the
  /// caller discards dL/dX (every trainer's first layer does), pass
  /// want_input_grad = false to skip computing it; the returned matrix is
  /// then empty.
  virtual MatrixT<S> backward_batch(const MatrixT<S>& dY, bool want_input_grad = true) = 0;

  /// Per-sample wrappers: one row through the batched kernels.
  VecT<S> forward(const VecT<S>& x);
  VecT<S> backward(const VecT<S>& dy);

  /// Drop any pending caches (e.g. after inference-only forwards).
  virtual void clear_cache() = 0;
  /// Parameter blocks of this layer (empty for activations).
  virtual void collect_params(std::vector<ParamBlockPtrT<S>>& out) const = 0;
};

template <class S>
using LayerPtrT = std::unique_ptr<LayerT<S>>;

/// Fully-connected layer Y = X W^T + b over a (possibly shared) DenseParams.
template <class S>
class DenseT final : public LayerT<S> {
 public:
  explicit DenseT(DenseParamsPtrT<S> params);

  std::size_t in_dim() const override { return params_->in_dim(); }
  std::size_t out_dim() const override { return params_->out_dim(); }

  MatrixT<S> forward_batch(MatrixT<S> X, bool keep_cache = true) override;
  MatrixT<S> backward_batch(const MatrixT<S>& dY, bool want_input_grad = true) override;
  void clear_cache() override { inputs_.clear(); }
  void collect_params(std::vector<ParamBlockPtrT<S>>& out) const override;

  const DenseParamsPtrT<S>& params() const noexcept { return params_; }

 private:
  DenseParamsPtrT<S> params_;
  std::vector<MatrixT<S>> inputs_;
};

enum class Activation { kIdentity, kRelu, kElu, kTanh, kSigmoid };

/// Elementwise activation layer.
template <class S>
class ActivationLayerT final : public LayerT<S> {
 public:
  ActivationLayerT(Activation kind, std::size_t dim) : kind_(kind), dim_(dim) {}

  std::size_t in_dim() const override { return dim_; }
  std::size_t out_dim() const override { return dim_; }

  MatrixT<S> forward_batch(MatrixT<S> X, bool keep_cache = true) override;
  MatrixT<S> backward_batch(const MatrixT<S>& dY, bool want_input_grad = true) override;
  void clear_cache() override { outputs_.clear(); }
  void collect_params(std::vector<ParamBlockPtrT<S>>&) const override {}

  Activation kind() const noexcept { return kind_; }

 private:
  Activation kind_;
  std::size_t dim_;
  // We cache *outputs*: for all supported activations the derivative is
  // expressible from the output alone, halving cache traffic.
  std::vector<MatrixT<S>> outputs_;
};

using Layer = LayerT<double>;
using LayerPtr = LayerPtrT<double>;
using Dense = DenseT<double>;
using ActivationLayer = ActivationLayerT<double>;

// Scalar activation helpers (exposed for tests and the LSTM).
template <class S>
S activate(Activation kind, S x) noexcept;
/// Derivative d(activation)/dx expressed in terms of the *output* y.
template <class S>
S activate_grad_from_output(Activation kind, S y) noexcept;

}  // namespace hcrl::nn
