// Layers with explicit forward/backward and LIFO activation caches.
//
// A layer may be applied several times within one computation (this happens
// whenever parameters are shared, e.g. the K autoencoders of the global
// tier). Each forward pushes its cache; each backward pops. Backward
// passes must therefore run in exactly reverse order of the forward calls,
// which is the natural order of reverse-mode differentiation.
//
// The primitive interface is *batched*: activations travel as a
// (batch x dim) Matrix and the heavy lifting happens in the GEMM kernels of
// matrix.hpp. The per-sample Vec API is a thin wrapper over batch = 1, so
// both paths run the same kernels and stay bit-compatible (pinned by
// tests/batch_parity_test.cpp).
#pragma once

#include <memory>
#include <vector>

#include "src/nn/param.hpp"

namespace hcrl::nn {

class Layer {
 public:
  virtual ~Layer() = default;

  virtual std::size_t in_dim() const = 0;
  virtual std::size_t out_dim() const = 0;

  /// Compute outputs for a (batch x in_dim) input. Takes the activation by
  /// value so callers that are done with it can std::move it in and the
  /// cache push becomes a move instead of a copy. With keep_cache, pushes
  /// whatever backward_batch() needs (LIFO); inference passes false and
  /// skips the caches entirely.
  virtual Matrix forward_batch(Matrix X, bool keep_cache = true) = 0;
  /// Given dL/dY (batch x out_dim), accumulate parameter gradients and
  /// return dL/dX. Must be called once per pending forward, in reverse
  /// order, with the same batch size as the matching forward. When the
  /// caller discards dL/dX (every trainer's first layer does), pass
  /// want_input_grad = false to skip computing it; the returned matrix is
  /// then empty.
  virtual Matrix backward_batch(const Matrix& dY, bool want_input_grad = true) = 0;

  /// Per-sample wrappers: one row through the batched kernels.
  Vec forward(const Vec& x);
  Vec backward(const Vec& dy);

  /// Drop any pending caches (e.g. after inference-only forwards).
  virtual void clear_cache() = 0;
  /// Parameter blocks of this layer (empty for activations).
  virtual void collect_params(std::vector<ParamBlockPtr>& out) const = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

/// Fully-connected layer Y = X W^T + b over a (possibly shared) DenseParams.
class Dense final : public Layer {
 public:
  explicit Dense(DenseParamsPtr params);

  std::size_t in_dim() const override { return params_->in_dim(); }
  std::size_t out_dim() const override { return params_->out_dim(); }

  Matrix forward_batch(Matrix X, bool keep_cache = true) override;
  Matrix backward_batch(const Matrix& dY, bool want_input_grad = true) override;
  void clear_cache() override { inputs_.clear(); }
  void collect_params(std::vector<ParamBlockPtr>& out) const override;

  const DenseParamsPtr& params() const noexcept { return params_; }

 private:
  DenseParamsPtr params_;
  std::vector<Matrix> inputs_;
};

enum class Activation { kIdentity, kRelu, kElu, kTanh, kSigmoid };

/// Elementwise activation layer.
class ActivationLayer final : public Layer {
 public:
  ActivationLayer(Activation kind, std::size_t dim) : kind_(kind), dim_(dim) {}

  std::size_t in_dim() const override { return dim_; }
  std::size_t out_dim() const override { return dim_; }

  Matrix forward_batch(Matrix X, bool keep_cache = true) override;
  Matrix backward_batch(const Matrix& dY, bool want_input_grad = true) override;
  void clear_cache() override { outputs_.clear(); }
  void collect_params(std::vector<ParamBlockPtr>&) const override {}

  Activation kind() const noexcept { return kind_; }

 private:
  Activation kind_;
  std::size_t dim_;
  // We cache *outputs*: for all supported activations the derivative is
  // expressible from the output alone, halving cache traffic.
  std::vector<Matrix> outputs_;
};

// Scalar activation helpers (exposed for tests and the LSTM).
double activate(Activation kind, double x) noexcept;
/// Derivative d(activation)/dx expressed in terms of the *output* y.
double activate_grad_from_output(Activation kind, double y) noexcept;

}  // namespace hcrl::nn
