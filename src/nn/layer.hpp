// Layers with explicit forward/backward and LIFO activation caches.
//
// A layer may be applied several times within one computation (this happens
// whenever parameters are shared, e.g. the K autoencoders of the global
// tier). Each forward() pushes its cache; each backward() pops. Backward
// passes must therefore run in exactly reverse order of the forward calls,
// which is the natural order of reverse-mode differentiation.
#pragma once

#include <memory>
#include <vector>

#include "src/nn/param.hpp"

namespace hcrl::nn {

class Layer {
 public:
  virtual ~Layer() = default;

  virtual std::size_t in_dim() const = 0;
  virtual std::size_t out_dim() const = 0;

  /// Compute output; caches whatever backward() needs (LIFO).
  virtual Vec forward(const Vec& x) = 0;
  /// Given dL/dy, accumulate parameter gradients and return dL/dx.
  /// Must be called once per pending forward(), in reverse order.
  virtual Vec backward(const Vec& dy) = 0;

  /// Drop any pending caches (e.g. after inference-only forwards).
  virtual void clear_cache() = 0;
  /// Parameter blocks of this layer (empty for activations).
  virtual void collect_params(std::vector<ParamBlockPtr>& out) const = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

/// Fully-connected layer y = W x + b over a (possibly shared) DenseParams.
class Dense final : public Layer {
 public:
  explicit Dense(DenseParamsPtr params);

  std::size_t in_dim() const override { return params_->in_dim(); }
  std::size_t out_dim() const override { return params_->out_dim(); }

  Vec forward(const Vec& x) override;
  Vec backward(const Vec& dy) override;
  void clear_cache() override { inputs_.clear(); }
  void collect_params(std::vector<ParamBlockPtr>& out) const override;

  const DenseParamsPtr& params() const noexcept { return params_; }

 private:
  DenseParamsPtr params_;
  std::vector<Vec> inputs_;
};

enum class Activation { kIdentity, kRelu, kElu, kTanh, kSigmoid };

/// Elementwise activation layer.
class ActivationLayer final : public Layer {
 public:
  ActivationLayer(Activation kind, std::size_t dim) : kind_(kind), dim_(dim) {}

  std::size_t in_dim() const override { return dim_; }
  std::size_t out_dim() const override { return dim_; }

  Vec forward(const Vec& x) override;
  Vec backward(const Vec& dy) override;
  void clear_cache() override { outputs_.clear(); }
  void collect_params(std::vector<ParamBlockPtr>&) const override {}

  Activation kind() const noexcept { return kind_; }

 private:
  Activation kind_;
  std::size_t dim_;
  // We cache *outputs*: for all supported activations the derivative is
  // expressible from the output alone, halving cache traffic.
  std::vector<Vec> outputs_;
};

// Scalar activation helpers (exposed for tests and the LSTM).
double activate(Activation kind, double x) noexcept;
/// Derivative d(activation)/dx expressed in terms of the *output* y.
double activate_grad_from_output(Activation kind, double y) noexcept;

}  // namespace hcrl::nn
