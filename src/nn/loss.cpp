#include "src/nn/loss.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace hcrl::nn {

LossResult mse_loss(const Vec& pred, const Vec& target) {
  assert(pred.size() == target.size());
  if (pred.empty()) throw std::invalid_argument("mse_loss: empty");
  LossResult out;
  out.grad.resize(pred.size());
  const double inv_n = 1.0 / static_cast<double>(pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = pred[i] - target[i];
    out.value += d * d * inv_n;
    out.grad[i] = 2.0 * d * inv_n;
  }
  return out;
}

LossResult huber_loss(const Vec& pred, const Vec& target, double delta) {
  assert(pred.size() == target.size());
  if (pred.empty()) throw std::invalid_argument("huber_loss: empty");
  if (delta <= 0.0) throw std::invalid_argument("huber_loss: delta must be > 0");
  LossResult out;
  out.grad.resize(pred.size());
  const double inv_n = 1.0 / static_cast<double>(pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = pred[i] - target[i];
    if (std::abs(d) <= delta) {
      out.value += 0.5 * d * d * inv_n;
      out.grad[i] = d * inv_n;
    } else {
      out.value += delta * (std::abs(d) - 0.5 * delta) * inv_n;
      out.grad[i] = (d > 0.0 ? delta : -delta) * inv_n;
    }
  }
  return out;
}

LossResult masked_mse_loss(const Vec& pred, std::size_t index, double target) {
  if (index >= pred.size()) throw std::invalid_argument("masked_mse_loss: index out of range");
  LossResult out;
  out.grad.assign(pred.size(), 0.0);
  const double d = pred[index] - target;
  out.value = d * d;
  out.grad[index] = 2.0 * d;
  return out;
}

LossResult masked_huber_loss(const Vec& pred, std::size_t index, double target, double delta) {
  if (index >= pred.size()) throw std::invalid_argument("masked_huber_loss: index out of range");
  if (delta <= 0.0) throw std::invalid_argument("masked_huber_loss: delta must be > 0");
  LossResult out;
  out.grad.assign(pred.size(), 0.0);
  const double d = pred[index] - target;
  if (std::abs(d) <= delta) {
    out.value = 0.5 * d * d;
    out.grad[index] = d;
  } else {
    out.value = delta * (std::abs(d) - 0.5 * delta);
    out.grad[index] = d > 0.0 ? delta : -delta;
  }
  return out;
}

}  // namespace hcrl::nn
