#include "src/nn/loss.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace hcrl::nn {

LossResult mse_loss(const Vec& pred, const Vec& target) {
  assert(pred.size() == target.size());
  if (pred.empty()) throw std::invalid_argument("mse_loss: empty");
  LossResult out;
  out.grad.resize(pred.size());
  const double inv_n = 1.0 / static_cast<double>(pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = pred[i] - target[i];
    out.value += d * d * inv_n;
    out.grad[i] = 2.0 * d * inv_n;
  }
  return out;
}

LossResult huber_loss(const Vec& pred, const Vec& target, double delta) {
  assert(pred.size() == target.size());
  if (pred.empty()) throw std::invalid_argument("huber_loss: empty");
  if (delta <= 0.0) throw std::invalid_argument("huber_loss: delta must be > 0");
  LossResult out;
  out.grad.resize(pred.size());
  const double inv_n = 1.0 / static_cast<double>(pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = pred[i] - target[i];
    if (std::abs(d) <= delta) {
      out.value += 0.5 * d * d * inv_n;
      out.grad[i] = d * inv_n;
    } else {
      out.value += delta * (std::abs(d) - 0.5 * delta) * inv_n;
      out.grad[i] = (d > 0.0 ? delta : -delta) * inv_n;
    }
  }
  return out;
}

LossResult masked_mse_loss(const Vec& pred, std::size_t index, double target) {
  if (index >= pred.size()) throw std::invalid_argument("masked_mse_loss: index out of range");
  LossResult out;
  out.grad.assign(pred.size(), 0.0);
  const double d = pred[index] - target;
  out.value = d * d;
  out.grad[index] = 2.0 * d;
  return out;
}

LossResult masked_huber_loss(const Vec& pred, std::size_t index, double target, double delta) {
  if (index >= pred.size()) throw std::invalid_argument("masked_huber_loss: index out of range");
  if (delta <= 0.0) throw std::invalid_argument("masked_huber_loss: delta must be > 0");
  LossResult out;
  out.grad.assign(pred.size(), 0.0);
  const double d = pred[index] - target;
  if (std::abs(d) <= delta) {
    out.value = 0.5 * d * d;
    out.grad[index] = d;
  } else {
    out.value = delta * (std::abs(d) - 0.5 * delta);
    out.grad[index] = d > 0.0 ? delta : -delta;
  }
  return out;
}

BatchLossResult mse_loss_batch(const Matrix& pred, const Matrix& target, double grad_scale) {
  if (!pred.same_shape(target)) {
    throw std::invalid_argument("mse_loss_batch: shape mismatch " + pred.shape_string() + " vs " +
                                target.shape_string());
  }
  if (pred.size() == 0) throw std::invalid_argument("mse_loss_batch: empty");
  BatchLossResult out;
  out.grad.resize(pred.rows(), pred.cols());
  const double inv_c = 1.0 / static_cast<double>(pred.cols());
  for (std::size_t b = 0; b < pred.rows(); ++b) {
    double row_value = 0.0;
    for (std::size_t i = 0; i < pred.cols(); ++i) {
      const double d = pred(b, i) - target(b, i);
      row_value += d * d * inv_c;
      out.grad(b, i) = 2.0 * d * inv_c * grad_scale;
    }
    out.value += row_value;
  }
  return out;
}

namespace {

void check_masked_batch(const Matrix& pred, const std::vector<std::size_t>& index,
                        const Vec& target, const char* who) {
  if (index.size() != pred.rows() || target.size() != pred.rows()) {
    throw std::invalid_argument(std::string(who) + ": need one index and target per row");
  }
  for (std::size_t b = 0; b < pred.rows(); ++b) {
    if (index[b] >= pred.cols()) {
      throw std::invalid_argument(std::string(who) + ": index out of range");
    }
  }
}

}  // namespace

BatchLossResult masked_mse_loss_batch(const Matrix& pred, const std::vector<std::size_t>& index,
                                      const Vec& target, double grad_scale) {
  check_masked_batch(pred, index, target, "masked_mse_loss_batch");
  BatchLossResult out;
  out.grad.resize(pred.rows(), pred.cols(), 0.0);
  for (std::size_t b = 0; b < pred.rows(); ++b) {
    const double d = pred(b, index[b]) - target[b];
    out.value += d * d;
    out.grad(b, index[b]) = 2.0 * d * grad_scale;
  }
  return out;
}

BatchLossResult masked_huber_loss_batch(const Matrix& pred, const std::vector<std::size_t>& index,
                                        const Vec& target, double delta, double grad_scale) {
  check_masked_batch(pred, index, target, "masked_huber_loss_batch");
  if (delta <= 0.0) throw std::invalid_argument("masked_huber_loss_batch: delta must be > 0");
  BatchLossResult out;
  out.grad.resize(pred.rows(), pred.cols(), 0.0);
  for (std::size_t b = 0; b < pred.rows(); ++b) {
    const double d = pred(b, index[b]) - target[b];
    if (std::abs(d) <= delta) {
      out.value += 0.5 * d * d;
      out.grad(b, index[b]) = d * grad_scale;
    } else {
      out.value += delta * (std::abs(d) - 0.5 * delta);
      out.grad(b, index[b]) = (d > 0.0 ? delta : -delta) * grad_scale;
    }
  }
  return out;
}

}  // namespace hcrl::nn
