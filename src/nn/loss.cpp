#include "src/nn/loss.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace hcrl::nn {

template <class S>
LossResultT<S> mse_loss(const VecT<S>& pred, const VecT<S>& target) {
  assert(pred.size() == target.size());
  if (pred.empty()) throw std::invalid_argument("mse_loss: empty");
  LossResultT<S> out;
  out.grad.resize(pred.size());
  const S inv_n = S(1) / static_cast<S>(pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const S d = pred[i] - target[i];
    out.value += static_cast<double>(d * d * inv_n);
    out.grad[i] = S(2) * d * inv_n;
  }
  return out;
}

template <class S>
LossResultT<S> huber_loss(const VecT<S>& pred, const VecT<S>& target, S delta) {
  assert(pred.size() == target.size());
  if (pred.empty()) throw std::invalid_argument("huber_loss: empty");
  if (delta <= S(0)) throw std::invalid_argument("huber_loss: delta must be > 0");
  LossResultT<S> out;
  out.grad.resize(pred.size());
  const S inv_n = S(1) / static_cast<S>(pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const S d = pred[i] - target[i];
    if (std::abs(d) <= delta) {
      out.value += static_cast<double>(S(0.5) * d * d * inv_n);
      out.grad[i] = d * inv_n;
    } else {
      out.value += static_cast<double>(delta * (std::abs(d) - S(0.5) * delta) * inv_n);
      out.grad[i] = (d > S(0) ? delta : -delta) * inv_n;
    }
  }
  return out;
}

template <class S>
LossResultT<S> masked_mse_loss(const VecT<S>& pred, std::size_t index, S target) {
  if (index >= pred.size()) throw std::invalid_argument("masked_mse_loss: index out of range");
  LossResultT<S> out;
  out.grad.assign(pred.size(), S(0));
  const S d = pred[index] - target;
  out.value = static_cast<double>(d * d);
  out.grad[index] = S(2) * d;
  return out;
}

template <class S>
LossResultT<S> masked_huber_loss(const VecT<S>& pred, std::size_t index, S target, S delta) {
  if (index >= pred.size()) throw std::invalid_argument("masked_huber_loss: index out of range");
  if (delta <= S(0)) throw std::invalid_argument("masked_huber_loss: delta must be > 0");
  LossResultT<S> out;
  out.grad.assign(pred.size(), S(0));
  const S d = pred[index] - target;
  if (std::abs(d) <= delta) {
    out.value = static_cast<double>(S(0.5) * d * d);
    out.grad[index] = d;
  } else {
    out.value = static_cast<double>(delta * (std::abs(d) - S(0.5) * delta));
    out.grad[index] = d > S(0) ? delta : -delta;
  }
  return out;
}

template <class S>
BatchLossResultT<S> mse_loss_batch(const MatrixT<S>& pred, const MatrixT<S>& target,
                                   S grad_scale) {
  if (!pred.same_shape(target)) {
    throw std::invalid_argument("mse_loss_batch: shape mismatch " + pred.shape_string() + " vs " +
                                target.shape_string());
  }
  if (pred.size() == 0) throw std::invalid_argument("mse_loss_batch: empty");
  BatchLossResultT<S> out;
  out.grad.resize(pred.rows(), pred.cols());
  const S inv_c = S(1) / static_cast<S>(pred.cols());
  for (std::size_t b = 0; b < pred.rows(); ++b) {
    S row_value = S(0);
    for (std::size_t i = 0; i < pred.cols(); ++i) {
      const S d = pred(b, i) - target(b, i);
      row_value += d * d * inv_c;
      out.grad(b, i) = S(2) * d * inv_c * grad_scale;
    }
    out.value += static_cast<double>(row_value);
  }
  return out;
}

namespace {

template <class S>
void check_masked_batch(const MatrixT<S>& pred, const std::vector<std::size_t>& index,
                        const VecT<S>& target, const char* who) {
  if (index.size() != pred.rows() || target.size() != pred.rows()) {
    throw std::invalid_argument(std::string(who) + ": need one index and target per row");
  }
  for (std::size_t b = 0; b < pred.rows(); ++b) {
    if (index[b] >= pred.cols()) {
      throw std::invalid_argument(std::string(who) + ": index out of range");
    }
  }
}

}  // namespace

template <class S>
BatchLossResultT<S> masked_mse_loss_batch(const MatrixT<S>& pred,
                                          const std::vector<std::size_t>& index,
                                          const VecT<S>& target, S grad_scale) {
  check_masked_batch(pred, index, target, "masked_mse_loss_batch");
  BatchLossResultT<S> out;
  out.grad.resize(pred.rows(), pred.cols(), S(0));
  for (std::size_t b = 0; b < pred.rows(); ++b) {
    const S d = pred(b, index[b]) - target[b];
    out.value += static_cast<double>(d * d);
    out.grad(b, index[b]) = S(2) * d * grad_scale;
  }
  return out;
}

template <class S>
BatchLossResultT<S> masked_huber_loss_batch(const MatrixT<S>& pred,
                                            const std::vector<std::size_t>& index,
                                            const VecT<S>& target, S delta, S grad_scale) {
  check_masked_batch(pred, index, target, "masked_huber_loss_batch");
  if (delta <= S(0)) throw std::invalid_argument("masked_huber_loss_batch: delta must be > 0");
  BatchLossResultT<S> out;
  out.grad.resize(pred.rows(), pred.cols(), S(0));
  for (std::size_t b = 0; b < pred.rows(); ++b) {
    const S d = pred(b, index[b]) - target[b];
    if (std::abs(d) <= delta) {
      out.value += static_cast<double>(S(0.5) * d * d);
      out.grad(b, index[b]) = d * grad_scale;
    } else {
      out.value += static_cast<double>(delta * (std::abs(d) - S(0.5) * delta));
      out.grad(b, index[b]) = (d > S(0) ? delta : -delta) * grad_scale;
    }
  }
  return out;
}

#define HCRL_NN_INSTANTIATE_LOSS(S)                                                          \
  template LossResultT<S> mse_loss<S>(const VecT<S>&, const VecT<S>&);                       \
  template LossResultT<S> huber_loss<S>(const VecT<S>&, const VecT<S>&, S);                  \
  template LossResultT<S> masked_mse_loss<S>(const VecT<S>&, std::size_t, S);                \
  template LossResultT<S> masked_huber_loss<S>(const VecT<S>&, std::size_t, S, S);           \
  template BatchLossResultT<S> mse_loss_batch<S>(const MatrixT<S>&, const MatrixT<S>&, S);   \
  template BatchLossResultT<S> masked_mse_loss_batch<S>(                                     \
      const MatrixT<S>&, const std::vector<std::size_t>&, const VecT<S>&, S);                \
  template BatchLossResultT<S> masked_huber_loss_batch<S>(                                   \
      const MatrixT<S>&, const std::vector<std::size_t>&, const VecT<S>&, S, S);

HCRL_NN_INSTANTIATE_LOSS(float)
HCRL_NN_INSTANTIATE_LOSS(double)
#undef HCRL_NN_INSTANTIATE_LOSS

}  // namespace hcrl::nn
