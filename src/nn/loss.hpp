// Losses: value + gradient with respect to the prediction.
#pragma once

#include "src/nn/matrix.hpp"

namespace hcrl::nn {

struct LossResult {
  double value = 0.0;
  Vec grad;  // dL/dpred
};

/// Mean squared error: L = (1/n) * sum (pred - target)^2.
LossResult mse_loss(const Vec& pred, const Vec& target);

/// Huber loss with threshold delta (mean over components). Robust choice for
/// Q-value regression (used by the DQN trainer).
LossResult huber_loss(const Vec& pred, const Vec& target, double delta = 1.0);

/// MSE on a single output component, leaving other gradients zero.
/// Used when only the Q-value of the taken action receives a target.
LossResult masked_mse_loss(const Vec& pred, std::size_t index, double target);

/// Huber loss on a single output component (gradient magnitude capped at
/// delta) — the robust choice for Q-regression with bootstrapped targets.
LossResult masked_huber_loss(const Vec& pred, std::size_t index, double target,
                             double delta = 1.0);

}  // namespace hcrl::nn
