// Losses: value + gradient with respect to the prediction.
//
// Templated on the Scalar type of the prediction/gradient (float/double
// instantiations in loss.cpp); loss *values* are always accumulated and
// reported in double, so f32 training reports comparable loss curves.
#pragma once

#include "src/nn/matrix.hpp"

namespace hcrl::nn {

template <class S>
struct LossResultT {
  double value = 0.0;
  VecT<S> grad;  // dL/dpred
};

using LossResult = LossResultT<double>;

/// Mean squared error: L = (1/n) * sum (pred - target)^2.
template <class S>
LossResultT<S> mse_loss(const VecT<S>& pred, const VecT<S>& target);

/// Huber loss with threshold delta (mean over components). Robust choice for
/// Q-value regression (used by the DQN trainer).
template <class S>
LossResultT<S> huber_loss(const VecT<S>& pred, const VecT<S>& target, S delta = S(1));

/// MSE on a single output component, leaving other gradients zero.
/// Used when only the Q-value of the taken action receives a target.
template <class S>
LossResultT<S> masked_mse_loss(const VecT<S>& pred, std::size_t index, S target);

/// Huber loss on a single output component (gradient magnitude capped at
/// delta) — the robust choice for Q-regression with bootstrapped targets.
template <class S>
LossResultT<S> masked_huber_loss(const VecT<S>& pred, std::size_t index, S target,
                                 S delta = S(1));

// --- batched variants -----------------------------------------------------
//
// `pred` carries one sample per row; the gradient matrix feeds straight into
// Network::backward_batch. `grad_scale` (typically 1/batch) is folded into
// the gradient with the same operation order as the per-sample
// loss-then-scale_in_place sequence, so batched and per-sample training
// accumulate bit-identical gradients. `value` is the *sum* of the per-row
// loss values (callers divide by the batch size, as the per-sample loops do).

template <class S>
struct BatchLossResultT {
  double value = 0.0;
  MatrixT<S> grad;  // dL/dpred, (batch x n), already multiplied by grad_scale
};

using BatchLossResult = BatchLossResultT<double>;

/// Row-wise MSE (mean over components, summed over rows).
template <class S>
BatchLossResultT<S> mse_loss_batch(const MatrixT<S>& pred, const MatrixT<S>& target,
                                   S grad_scale = S(1));

/// Row b contributes (pred(b, index[b]) - target[b])^2; other grads zero.
template <class S>
BatchLossResultT<S> masked_mse_loss_batch(const MatrixT<S>& pred,
                                          const std::vector<std::size_t>& index,
                                          const VecT<S>& target, S grad_scale = S(1));

/// Huber per row on component index[b] (gradient capped at delta).
template <class S>
BatchLossResultT<S> masked_huber_loss_batch(const MatrixT<S>& pred,
                                            const std::vector<std::size_t>& index,
                                            const VecT<S>& target, S delta = S(1),
                                            S grad_scale = S(1));

}  // namespace hcrl::nn
