// Losses: value + gradient with respect to the prediction.
#pragma once

#include "src/nn/matrix.hpp"

namespace hcrl::nn {

struct LossResult {
  double value = 0.0;
  Vec grad;  // dL/dpred
};

/// Mean squared error: L = (1/n) * sum (pred - target)^2.
LossResult mse_loss(const Vec& pred, const Vec& target);

/// Huber loss with threshold delta (mean over components). Robust choice for
/// Q-value regression (used by the DQN trainer).
LossResult huber_loss(const Vec& pred, const Vec& target, double delta = 1.0);

/// MSE on a single output component, leaving other gradients zero.
/// Used when only the Q-value of the taken action receives a target.
LossResult masked_mse_loss(const Vec& pred, std::size_t index, double target);

/// Huber loss on a single output component (gradient magnitude capped at
/// delta) — the robust choice for Q-regression with bootstrapped targets.
LossResult masked_huber_loss(const Vec& pred, std::size_t index, double target,
                             double delta = 1.0);

// --- batched variants -----------------------------------------------------
//
// `pred` carries one sample per row; the gradient matrix feeds straight into
// Network::backward_batch. `grad_scale` (typically 1/batch) is folded into
// the gradient with the same operation order as the per-sample
// loss-then-scale_in_place sequence, so batched and per-sample training
// accumulate bit-identical gradients. `value` is the *sum* of the per-row
// loss values (callers divide by the batch size, as the per-sample loops do).

struct BatchLossResult {
  double value = 0.0;
  Matrix grad;  // dL/dpred, (batch x n), already multiplied by grad_scale
};

/// Row-wise MSE (mean over components, summed over rows).
BatchLossResult mse_loss_batch(const Matrix& pred, const Matrix& target, double grad_scale = 1.0);

/// Row b contributes (pred(b, index[b]) - target[b])^2; other grads zero.
BatchLossResult masked_mse_loss_batch(const Matrix& pred, const std::vector<std::size_t>& index,
                                      const Vec& target, double grad_scale = 1.0);

/// Huber per row on component index[b] (gradient capped at delta).
BatchLossResult masked_huber_loss_batch(const Matrix& pred, const std::vector<std::size_t>& index,
                                        const Vec& target, double delta = 1.0,
                                        double grad_scale = 1.0);

}  // namespace hcrl::nn
