#include "src/nn/lstm.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace hcrl::nn {

namespace {
inline double sigmoid(double x) noexcept { return 1.0 / (1.0 + std::exp(-x)); }
}  // namespace

Lstm::Lstm(LstmParamsPtr params) : params_(std::move(params)) {
  if (!params_) throw std::invalid_argument("Lstm: null params");
  reset();
}

void Lstm::reset() {
  h_.assign(hidden_dim(), 0.0);
  c_.assign(hidden_dim(), 0.0);
  cache_.clear();
}

Vec Lstm::step(const Vec& x) {
  assert(x.size() == in_dim());
  const std::size_t H = hidden_dim();

  Vec z, zh;
  params_->Wx.multiply(x, z);
  params_->Wh.multiply(h_, zh);
  add_in_place(z, zh);
  add_in_place(z, params_->b);

  StepCache sc;
  sc.x = x;
  sc.h_prev = h_;
  sc.c_prev = c_;
  sc.i.resize(H);
  sc.f.resize(H);
  sc.g.resize(H);
  sc.o.resize(H);
  sc.c.resize(H);
  sc.tanh_c.resize(H);

  for (std::size_t j = 0; j < H; ++j) {
    sc.i[j] = sigmoid(z[j]);
    sc.f[j] = sigmoid(z[H + j]);
    sc.g[j] = std::tanh(z[2 * H + j]);
    sc.o[j] = sigmoid(z[3 * H + j]);
    sc.c[j] = sc.f[j] * sc.c_prev[j] + sc.i[j] * sc.g[j];
    sc.tanh_c[j] = std::tanh(sc.c[j]);
    h_[j] = sc.o[j] * sc.tanh_c[j];
  }
  c_ = sc.c;
  cache_.push_back(std::move(sc));
  return h_;
}

std::vector<Vec> Lstm::forward(const std::vector<Vec>& xs) {
  reset();
  std::vector<Vec> hs;
  hs.reserve(xs.size());
  for (const auto& x : xs) hs.push_back(step(x));
  return hs;
}

std::vector<Vec> Lstm::backward(const std::vector<Vec>& dh) {
  if (dh.size() != cache_.size()) {
    throw std::invalid_argument("Lstm::backward: dh size != cached steps");
  }
  const std::size_t H = hidden_dim();
  const std::size_t T = cache_.size();
  std::vector<Vec> dx(T);

  Vec dh_next(H, 0.0);  // dL/dh_t flowing from step t+1
  Vec dc_next(H, 0.0);  // dL/dc_t flowing from step t+1
  Vec dz(4 * H);

  for (std::size_t tt = T; tt-- > 0;) {
    const StepCache& sc = cache_[tt];
    Vec dht = dh[tt];
    add_in_place(dht, dh_next);

    for (std::size_t j = 0; j < H; ++j) {
      // h = o * tanh(c)
      const double do_ = dht[j] * sc.tanh_c[j];
      double dc = dht[j] * sc.o[j] * (1.0 - sc.tanh_c[j] * sc.tanh_c[j]) + dc_next[j];
      const double di = dc * sc.g[j];
      const double df = dc * sc.c_prev[j];
      const double dg = dc * sc.i[j];
      // gate pre-activations
      dz[j] = di * sc.i[j] * (1.0 - sc.i[j]);
      dz[H + j] = df * sc.f[j] * (1.0 - sc.f[j]);
      dz[2 * H + j] = dg * (1.0 - sc.g[j] * sc.g[j]);
      dz[3 * H + j] = do_ * sc.o[j] * (1.0 - sc.o[j]);
      dc_next[j] = dc * sc.f[j];
    }

    params_->gWx.add_outer(dz, sc.x);
    params_->gWh.add_outer(dz, sc.h_prev);
    add_in_place(params_->gb, dz);

    params_->Wx.multiply_transposed(dz, dx[tt]);
    params_->Wh.multiply_transposed(dz, dh_next);
  }
  cache_.clear();
  return dx;
}

}  // namespace hcrl::nn
