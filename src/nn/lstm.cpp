#include "src/nn/lstm.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace hcrl::nn {

namespace {
inline double sigmoid(double x) noexcept { return 1.0 / (1.0 + std::exp(-x)); }
}  // namespace

Lstm::Lstm(LstmParamsPtr params) : params_(std::move(params)) {
  if (!params_) throw std::invalid_argument("Lstm: null params");
  reset();
}

void Lstm::reset() { reset_batch(1); }

void Lstm::reset_batch(std::size_t batch) {
  if (batch == 0) throw std::invalid_argument("Lstm::reset_batch: batch must be > 0");
  batch_ = batch;
  h_.resize(batch, hidden_dim(), 0.0);
  c_.resize(batch, hidden_dim(), 0.0);
  cache_.clear();
}

const Matrix& Lstm::step_batch(const Matrix& X, bool keep_cache) {
  if (X.cols() != in_dim()) {
    throw std::invalid_argument("Lstm::step_batch: input is " + X.shape_string());
  }
  if (X.rows() != batch_) {
    throw std::invalid_argument("Lstm::step_batch: batch changed mid-sequence; reset_batch first");
  }
  const std::size_t B = batch_;
  const std::size_t H = hidden_dim();

  // All four gate pre-activations for the whole batch in one GEMM per
  // operand: Z = b + X Wx^T + H_prev Wh^T, shape (B x 4H); the bias seeds
  // the accumulators so no separate broadcast pass is needed.
  Matrix Z;
  Z.resize_for_overwrite(B, 4 * H);
  for (std::size_t b = 0; b < B; ++b) Z.set_row(b, params_->b);
  gemm_nt(X, params_->Wx, Z, /*accumulate=*/true);
  gemm_nt(h_, params_->Wh, Z, /*accumulate=*/true);

  if (!keep_cache) {
    // Inference: update h/c in place, no per-step cache.
    for (std::size_t b = 0; b < B; ++b) {
      for (std::size_t j = 0; j < H; ++j) {
        const double i = sigmoid(Z(b, j));
        const double f = sigmoid(Z(b, H + j));
        const double g = std::tanh(Z(b, 2 * H + j));
        const double o = sigmoid(Z(b, 3 * H + j));
        c_(b, j) = f * c_(b, j) + i * g;
        h_(b, j) = o * std::tanh(c_(b, j));
      }
    }
    return h_;
  }

  StepCache sc;
  sc.X = X;
  sc.Hprev = h_;
  sc.Cprev = c_;
  sc.I.resize_for_overwrite(B, H);
  sc.F.resize_for_overwrite(B, H);
  sc.G.resize_for_overwrite(B, H);
  sc.O.resize_for_overwrite(B, H);
  sc.C.resize_for_overwrite(B, H);
  sc.TanhC.resize_for_overwrite(B, H);

  for (std::size_t b = 0; b < B; ++b) {
    for (std::size_t j = 0; j < H; ++j) {
      const double i = sigmoid(Z(b, j));
      const double f = sigmoid(Z(b, H + j));
      const double g = std::tanh(Z(b, 2 * H + j));
      const double o = sigmoid(Z(b, 3 * H + j));
      const double c = f * sc.Cprev(b, j) + i * g;
      const double tc = std::tanh(c);
      sc.I(b, j) = i;
      sc.F(b, j) = f;
      sc.G(b, j) = g;
      sc.O(b, j) = o;
      sc.C(b, j) = c;
      sc.TanhC(b, j) = tc;
      h_(b, j) = o * tc;
    }
  }
  c_ = sc.C;
  cache_.push_back(std::move(sc));
  return h_;
}

std::vector<Matrix> Lstm::forward_batch(const std::vector<Matrix>& Xs) {
  if (Xs.empty()) return {};
  reset_batch(Xs.front().rows());
  std::vector<Matrix> hs;
  hs.reserve(Xs.size());
  for (const auto& X : Xs) hs.push_back(step_batch(X));
  return hs;
}

std::vector<Matrix> Lstm::backward_batch(const std::vector<Matrix>& dH) {
  if (dH.size() != cache_.size()) {
    throw std::invalid_argument("Lstm::backward: dH size != cached steps");
  }
  const std::size_t B = batch_;
  const std::size_t H = hidden_dim();
  const std::size_t T = cache_.size();
  // Validate every dH shape up front so a mismatch cannot throw after some
  // timesteps already accumulated into the shared parameter gradients.
  for (std::size_t tt = 0; tt < T; ++tt) {
    if (dH[tt].rows() != B || dH[tt].cols() != H) {
      throw std::invalid_argument("Lstm::backward: dH[" + std::to_string(tt) + "] is " +
                                  dH[tt].shape_string());
    }
  }
  std::vector<Matrix> dX(T);

  Matrix dHnext(B, H, 0.0);  // dL/dh_t flowing from step t+1
  Matrix dCnext(B, H, 0.0);  // dL/dc_t flowing from step t+1
  Matrix dZ(B, 4 * H);

  for (std::size_t tt = T; tt-- > 0;) {
    const StepCache& sc = cache_[tt];
    Matrix dHt = dH[tt];
    add_in_place(dHt, dHnext);

    for (std::size_t b = 0; b < B; ++b) {
      for (std::size_t j = 0; j < H; ++j) {
        // h = o * tanh(c)
        const double do_ = dHt(b, j) * sc.TanhC(b, j);
        const double dc =
            dHt(b, j) * sc.O(b, j) * (1.0 - sc.TanhC(b, j) * sc.TanhC(b, j)) + dCnext(b, j);
        const double di = dc * sc.G(b, j);
        const double df = dc * sc.Cprev(b, j);
        const double dg = dc * sc.I(b, j);
        // gate pre-activations
        dZ(b, j) = di * sc.I(b, j) * (1.0 - sc.I(b, j));
        dZ(b, H + j) = df * sc.F(b, j) * (1.0 - sc.F(b, j));
        dZ(b, 2 * H + j) = dg * (1.0 - sc.G(b, j) * sc.G(b, j));
        dZ(b, 3 * H + j) = do_ * sc.O(b, j) * (1.0 - sc.O(b, j));
        dCnext(b, j) = dc * sc.F(b, j);
      }
    }

    gemm_tn(dZ, sc.X, params_->gWx, /*accumulate=*/true);
    gemm_tn(dZ, sc.Hprev, params_->gWh, /*accumulate=*/true);
    dZ.add_col_sums_into(params_->gb);

    gemm(dZ, params_->Wx, dX[tt]);
    gemm(dZ, params_->Wh, dHnext);
  }
  cache_.clear();
  return dX;
}

Vec Lstm::step(const Vec& x) {
  if (batch_ != 1) {
    throw std::logic_error("Lstm::step: per-sample step on batched state; call reset() first");
  }
  return step_batch(Matrix::from_row(x)).row(0);
}

std::vector<Vec> Lstm::forward(const std::vector<Vec>& xs) {
  reset();
  std::vector<Vec> hs;
  hs.reserve(xs.size());
  for (const auto& x : xs) hs.push_back(step(x));
  return hs;
}

std::vector<Vec> Lstm::backward(const std::vector<Vec>& dh) {
  std::vector<Matrix> dH;
  dH.reserve(dh.size());
  for (const auto& d : dh) dH.push_back(Matrix::from_row(d));
  std::vector<Matrix> dX = backward_batch(dH);
  std::vector<Vec> dx;
  dx.reserve(dX.size());
  for (const auto& d : dX) dx.push_back(d.row(0));
  return dx;
}

}  // namespace hcrl::nn
