#include "src/nn/lstm.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "src/nn/fastmath.hpp"

namespace hcrl::nn {

namespace {
template <class S>
inline S sigmoid(S x) noexcept {
  return fastmath::sigmoid_s(x);
}
template <class S>
inline S cell_tanh(S x) noexcept {
  return fastmath::tanh_s(x);
}
}  // namespace

template <class S>
LstmT<S>::LstmT(LstmParamsPtrT<S> params) : params_(std::move(params)) {
  if (!params_) throw std::invalid_argument("Lstm: null params");
  reset();
}

template <class S>
void LstmT<S>::reset() {
  reset_batch(1);
}

template <class S>
void LstmT<S>::reset_batch(std::size_t batch) {
  if (batch == 0) throw std::invalid_argument("Lstm::reset_batch: batch must be > 0");
  batch_ = batch;
  h_.resize(batch, hidden_dim(), S(0));
  c_.resize(batch, hidden_dim(), S(0));
  recycle_cache();
}

template <class S>
typename LstmT<S>::StepCache LstmT<S>::take_spare() {
  if (spare_.empty()) return StepCache{};
  StepCache sc = std::move(spare_.back());
  spare_.pop_back();
  return sc;
}

template <class S>
void LstmT<S>::recycle_cache() {
  for (auto& sc : cache_) spare_.push_back(std::move(sc));
  cache_.clear();
}

template <class S>
const MatrixT<S>& LstmT<S>::step_batch(const MatrixT<S>& X, bool keep_cache) {
  if (X.cols() != in_dim()) {
    throw std::invalid_argument("Lstm::step_batch: input is " + X.shape_string());
  }
  if (X.rows() != batch_) {
    throw std::invalid_argument("Lstm::step_batch: batch changed mid-sequence; reset_batch first");
  }
  const std::size_t B = batch_;
  const std::size_t H = hidden_dim();

  // All four gate pre-activations for the whole batch in one GEMM per
  // operand: Z = b + X Wx^T + H_prev Wh^T, shape (B x 4H); the bias seeds
  // the accumulators so no separate broadcast pass is needed.
  MatrixT<S>& Z = z_scratch_;
  Z.resize_for_overwrite(B, 4 * H);
  for (std::size_t b = 0; b < B; ++b) Z.set_row(b, params_->b);
  gemm_nt(X, params_->Wx, Z, /*accumulate=*/true);
  gemm_nt(h_, params_->Wh, Z, /*accumulate=*/true);

  if (!keep_cache) {
    // Inference: update h/c in place, no per-step cache.
    for (std::size_t b = 0; b < B; ++b) {
      for (std::size_t j = 0; j < H; ++j) {
        const S i = sigmoid(Z(b, j));
        const S f = sigmoid(Z(b, H + j));
        const S g = cell_tanh(Z(b, 2 * H + j));
        const S o = sigmoid(Z(b, 3 * H + j));
        c_(b, j) = f * c_(b, j) + i * g;
        h_(b, j) = o * cell_tanh(c_(b, j));
      }
    }
    return h_;
  }

  StepCache sc = take_spare();
  sc.X = X;
  sc.Hprev = h_;
  sc.Cprev = c_;
  sc.I.resize_for_overwrite(B, H);
  sc.F.resize_for_overwrite(B, H);
  sc.G.resize_for_overwrite(B, H);
  sc.O.resize_for_overwrite(B, H);
  sc.C.resize_for_overwrite(B, H);
  sc.TanhC.resize_for_overwrite(B, H);

  for (std::size_t b = 0; b < B; ++b) {
    for (std::size_t j = 0; j < H; ++j) {
      const S i = sigmoid(Z(b, j));
      const S f = sigmoid(Z(b, H + j));
      const S g = cell_tanh(Z(b, 2 * H + j));
      const S o = sigmoid(Z(b, 3 * H + j));
      const S c = f * sc.Cprev(b, j) + i * g;
      const S tc = cell_tanh(c);
      sc.I(b, j) = i;
      sc.F(b, j) = f;
      sc.G(b, j) = g;
      sc.O(b, j) = o;
      sc.C(b, j) = c;
      sc.TanhC(b, j) = tc;
      h_(b, j) = o * tc;
    }
  }
  c_ = sc.C;
  cache_.push_back(std::move(sc));
  return h_;
}

template <class S>
std::vector<MatrixT<S>> LstmT<S>::forward_batch(const std::vector<MatrixT<S>>& Xs) {
  if (Xs.empty()) return {};
  reset_batch(Xs.front().rows());
  std::vector<MatrixT<S>> hs;
  hs.reserve(Xs.size());
  for (const auto& X : Xs) hs.push_back(step_batch(X));
  return hs;
}

template <class S>
std::vector<MatrixT<S>> LstmT<S>::backward_batch(const std::vector<MatrixT<S>>& dH) {
  if (dH.size() != cache_.size()) {
    throw std::invalid_argument("Lstm::backward: dH size != cached steps");
  }
  const std::size_t B = batch_;
  const std::size_t H = hidden_dim();
  const std::size_t T = cache_.size();
  // Validate every dH shape up front so a mismatch cannot throw after some
  // timesteps already accumulated into the shared parameter gradients.
  for (std::size_t tt = 0; tt < T; ++tt) {
    if (dH[tt].rows() != B || dH[tt].cols() != H) {
      throw std::invalid_argument("Lstm::backward: dH[" + std::to_string(tt) + "] is " +
                                  dH[tt].shape_string());
    }
  }
  std::vector<MatrixT<S>> dX(T);

  MatrixT<S> dHnext(B, H, S(0));  // dL/dh_t flowing from step t+1
  MatrixT<S> dCnext(B, H, S(0));  // dL/dc_t flowing from step t+1
  MatrixT<S> dZ(B, 4 * H);

  for (std::size_t tt = T; tt-- > 0;) {
    const StepCache& sc = cache_[tt];
    MatrixT<S> dHt = dH[tt];
    add_in_place(dHt, dHnext);

    for (std::size_t b = 0; b < B; ++b) {
      for (std::size_t j = 0; j < H; ++j) {
        // h = o * tanh(c)
        const S do_ = dHt(b, j) * sc.TanhC(b, j);
        const S dc =
            dHt(b, j) * sc.O(b, j) * (S(1) - sc.TanhC(b, j) * sc.TanhC(b, j)) + dCnext(b, j);
        const S di = dc * sc.G(b, j);
        const S df = dc * sc.Cprev(b, j);
        const S dg = dc * sc.I(b, j);
        // gate pre-activations
        dZ(b, j) = di * sc.I(b, j) * (S(1) - sc.I(b, j));
        dZ(b, H + j) = df * sc.F(b, j) * (S(1) - sc.F(b, j));
        dZ(b, 2 * H + j) = dg * (S(1) - sc.G(b, j) * sc.G(b, j));
        dZ(b, 3 * H + j) = do_ * sc.O(b, j) * (S(1) - sc.O(b, j));
        dCnext(b, j) = dc * sc.F(b, j);
      }
    }

    gemm_tn(dZ, sc.X, params_->gWx, /*accumulate=*/true);
    gemm_tn(dZ, sc.Hprev, params_->gWh, /*accumulate=*/true);
    dZ.add_col_sums_into(params_->gb);

    gemm(dZ, params_->Wx, dX[tt]);
    gemm(dZ, params_->Wh, dHnext);
  }
  recycle_cache();
  return dX;
}

template <class S>
VecT<S> LstmT<S>::step(const VecT<S>& x) {
  if (batch_ != 1) {
    throw std::logic_error("Lstm::step: per-sample step on batched state; call reset() first");
  }
  return step_batch(MatrixT<S>::from_row(x)).row(0);
}

template <class S>
std::vector<VecT<S>> LstmT<S>::forward(const std::vector<VecT<S>>& xs) {
  reset();
  std::vector<VecT<S>> hs;
  hs.reserve(xs.size());
  for (const auto& x : xs) hs.push_back(step(x));
  return hs;
}

template <class S>
std::vector<VecT<S>> LstmT<S>::backward(const std::vector<VecT<S>>& dh) {
  std::vector<MatrixT<S>> dH;
  dH.reserve(dh.size());
  for (const auto& d : dh) dH.push_back(MatrixT<S>::from_row(d));
  std::vector<MatrixT<S>> dX = backward_batch(dH);
  std::vector<VecT<S>> dx;
  dx.reserve(dX.size());
  for (const auto& d : dX) dx.push_back(d.row(0));
  return dx;
}

template class LstmT<float>;
template class LstmT<double>;

}  // namespace hcrl::nn
