// LSTM layer with truncated back-propagation through time (BPTT).
//
// Standard (Hochreiter & Schmidhuber) cell with gates packed [i, f, g, o]:
//   z   = Wx x_t + Wh h_{t-1} + b
//   i,f,o = sigmoid(z_i), sigmoid(z_f), sigmoid(z_o);  g = tanh(z_g)
//   c_t = f * c_{t-1} + i * g
//   h_t = o * tanh(c_t)
// The paper's workload predictor uses one such layer with 30 hidden units
// over a 35-step look-back window of job inter-arrival times (§VI-A).
//
// The cell is batched: hidden and cell state are (batch x H) matrices, and
// each timestep stacks the four gate pre-activations for the whole batch
// into one (batch x 4H) GEMM against Wx / Wh. The per-sample step/backward
// API is a thin wrapper over batch = 1 running the same kernels. Templated
// on the Scalar type (float/double instantiations in lstm.cpp); `Lstm`
// aliases the double instantiation.
#pragma once

#include <vector>

#include "src/nn/param.hpp"

namespace hcrl::nn {

template <class S>
class LstmT {
 public:
  explicit LstmT(LstmParamsPtrT<S> params);

  std::size_t hidden_dim() const noexcept { return params_->hidden_dim(); }
  std::size_t in_dim() const noexcept { return params_->in_dim(); }
  std::size_t batch_size() const noexcept { return batch_; }
  const LstmParamsPtrT<S>& params() const noexcept { return params_; }

  /// Clear hidden/cell state and all cached steps (batch = 1).
  void reset();
  /// Clear state and caches, sized for `batch` parallel sequences.
  void reset_batch(std::size_t batch);

  // --- batched path --------------------------------------------------------

  /// One forward step for `batch` sequences at once: X is (batch x in_dim),
  /// the returned hidden state is (batch x H). With keep_cache, caches the
  /// step for backward_batch; inference passes false and skips the copies.
  const MatrixT<S>& step_batch(const MatrixT<S>& X, bool keep_cache = true);

  /// Reset to Xs[0].rows() sequences, then run the whole stacked sequence;
  /// returns the (batch x H) hidden state of every step.
  std::vector<MatrixT<S>> forward_batch(const std::vector<MatrixT<S>>& Xs);

  /// BPTT over all cached steps. `dH` holds dL/dh_t (batch x H) for each
  /// cached step (zero matrices for steps without direct loss). Accumulates
  /// parameter gradients and returns dL/dX_t per step. Clears the cache.
  std::vector<MatrixT<S>> backward_batch(const std::vector<MatrixT<S>>& dH);

  const MatrixT<S>& hidden_batch() const noexcept { return h_; }
  const MatrixT<S>& cell_batch() const noexcept { return c_; }

  // --- per-sample wrappers (batch = 1) -------------------------------------

  /// One forward step; returns h_t and caches intermediates for backward.
  VecT<S> step(const VecT<S>& x);

  /// Reset, then run the whole sequence; returns h_t for every step.
  std::vector<VecT<S>> forward(const std::vector<VecT<S>>& xs);

  /// BPTT over all cached steps (see backward_batch); per-sample shapes.
  std::vector<VecT<S>> backward(const std::vector<VecT<S>>& dh);

  /// Row 0 of the hidden/cell state (the only row in per-sample use).
  VecT<S> hidden() const { return h_.row(0); }
  VecT<S> cell() const { return c_.row(0); }
  std::size_t cached_steps() const noexcept { return cache_.size(); }

 private:
  struct StepCache {
    MatrixT<S> X, Hprev, Cprev;
    MatrixT<S> I, F, G, O;   // gate activations (batch x H each)
    MatrixT<S> C, TanhC;     // new cell state and tanh(c)
  };

  /// Reusable StepCache (buffers intact) from the free list, or a fresh one.
  StepCache take_spare();
  /// Recycle consumed caches so the next sequence reuses their buffers.
  void recycle_cache();

  LstmParamsPtrT<S> params_;
  std::size_t batch_ = 1;
  MatrixT<S> h_, c_;  // (batch x H)
  std::vector<StepCache> cache_;
  // Hot-path buffer reuse: the per-step gate pre-activation matrix and a
  // free list of spent StepCaches (every field is fully overwritten before
  // use, so recycling buffers cannot change any value).
  MatrixT<S> z_scratch_;
  std::vector<StepCache> spare_;
};

using Lstm = LstmT<double>;

extern template class LstmT<float>;
extern template class LstmT<double>;

}  // namespace hcrl::nn
