// LSTM layer with truncated back-propagation through time (BPTT).
//
// Standard (Hochreiter & Schmidhuber) cell with gates packed [i, f, g, o]:
//   z   = Wx x_t + Wh h_{t-1} + b
//   i,f,o = sigmoid(z_i), sigmoid(z_f), sigmoid(z_o);  g = tanh(z_g)
//   c_t = f * c_{t-1} + i * g
//   h_t = o * tanh(c_t)
// The paper's workload predictor uses one such layer with 30 hidden units
// over a 35-step look-back window of job inter-arrival times (§VI-A).
#pragma once

#include <vector>

#include "src/nn/param.hpp"

namespace hcrl::nn {

class Lstm {
 public:
  explicit Lstm(LstmParamsPtr params);

  std::size_t hidden_dim() const noexcept { return params_->hidden_dim(); }
  std::size_t in_dim() const noexcept { return params_->in_dim(); }
  const LstmParamsPtr& params() const noexcept { return params_; }

  /// Clear hidden/cell state and all cached steps.
  void reset();

  /// One forward step; returns h_t and caches intermediates for backward.
  Vec step(const Vec& x);

  /// Reset, then run the whole sequence; returns h_t for every step.
  std::vector<Vec> forward(const std::vector<Vec>& xs);

  /// BPTT over all cached steps. `dh` holds dL/dh_t for each cached step
  /// (use zero vectors for steps without direct loss). Accumulates
  /// parameter gradients and returns dL/dx_t per step. Clears the cache.
  std::vector<Vec> backward(const std::vector<Vec>& dh);

  const Vec& hidden() const noexcept { return h_; }
  const Vec& cell() const noexcept { return c_; }
  std::size_t cached_steps() const noexcept { return cache_.size(); }

 private:
  struct StepCache {
    Vec x, h_prev, c_prev;
    Vec i, f, g, o;     // gate activations
    Vec c, tanh_c;      // new cell state and tanh(c)
  };

  LstmParamsPtr params_;
  Vec h_, c_;
  std::vector<StepCache> cache_;
};

}  // namespace hcrl::nn
