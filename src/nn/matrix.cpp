#include "src/nn/matrix.hpp"

#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace hcrl::nn {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

void Matrix::fill(double v) noexcept {
  for (auto& d : data_) d = v;
}

void Matrix::resize(std::size_t rows, std::size_t cols, double fill_value) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, fill_value);
}

void Matrix::multiply(const Vec& x, Vec& y) const {
  assert(x.size() == cols_);
  y.assign(rows_, 0.0);
  const double* w = data_.data();
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = w + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
}

void Matrix::multiply_transposed(const Vec& x, Vec& y) const {
  assert(x.size() == rows_);
  y.assign(cols_, 0.0);
  const double* w = data_.data();
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    const double* row = w + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) y[c] += row[c] * xr;
  }
}

void Matrix::add_outer(const Vec& a, const Vec& b) {
  assert(a.size() == rows_ && b.size() == cols_);
  double* w = data_.data();
  for (std::size_t r = 0; r < rows_; ++r) {
    const double ar = a[r];
    if (ar == 0.0) continue;
    double* row = w + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) row[c] += ar * b[c];
  }
}

std::string Matrix::shape_string() const {
  std::ostringstream os;
  os << rows_ << "x" << cols_;
  return os.str();
}

Vec add(const Vec& x, const Vec& y) {
  assert(x.size() == y.size());
  Vec z(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = x[i] + y[i];
  return z;
}

void add_in_place(Vec& x, const Vec& y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += y[i];
}

void scale_in_place(Vec& x, double s) {
  for (auto& v : x) v *= s;
}

double dot(const Vec& x, const Vec& y) {
  assert(x.size() == y.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

double norm(const Vec& x) { return std::sqrt(dot(x, x)); }

Vec concat(const std::vector<const Vec*>& parts) {
  std::size_t total = 0;
  for (const Vec* p : parts) total += p->size();
  Vec out;
  out.reserve(total);
  for (const Vec* p : parts) out.insert(out.end(), p->begin(), p->end());
  return out;
}

std::size_t argmax(const Vec& x) {
  if (x.empty()) throw std::invalid_argument("argmax: empty vector");
  std::size_t best = 0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    if (x[i] > x[best]) best = i;
  }
  return best;
}

}  // namespace hcrl::nn
