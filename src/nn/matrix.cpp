#include "src/nn/matrix.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace hcrl::nn {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill) {
  resize(rows, cols, fill);
}

Matrix::Matrix(const Matrix& other) {
  resize_for_overwrite(other.rows_, other.cols_);
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) data_[i] = other.data_[i];
}

Matrix::Matrix(Matrix&& other) noexcept
    : rows_(other.rows_),
      cols_(other.cols_),
      capacity_(other.capacity_),
      data_(std::move(other.data_)) {
  other.rows_ = other.cols_ = other.capacity_ = 0;
}

Matrix& Matrix::operator=(const Matrix& other) {
  if (this == &other) return *this;
  resize_for_overwrite(other.rows_, other.cols_);
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) data_[i] = other.data_[i];
  return *this;
}

Matrix& Matrix::operator=(Matrix&& other) noexcept {
  if (this == &other) return *this;
  rows_ = other.rows_;
  cols_ = other.cols_;
  capacity_ = other.capacity_;
  data_ = std::move(other.data_);
  other.rows_ = other.cols_ = other.capacity_ = 0;
  return *this;
}

void Matrix::fill(double v) noexcept {
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) data_[i] = v;
}

void Matrix::resize(std::size_t rows, std::size_t cols, double fill_value) {
  resize_for_overwrite(rows, cols);
  fill(fill_value);
}

void Matrix::resize_for_overwrite(std::size_t rows, std::size_t cols) {
  const std::size_t n = rows * cols;
  if (n > capacity_) {
    data_ = std::make_unique_for_overwrite<double[]>(n);
    capacity_ = n;
  }
  rows_ = rows;
  cols_ = cols;
}

void Matrix::multiply(const Vec& x, Vec& y) const {
  assert(x.size() == cols_);
  y.assign(rows_, 0.0);
  const double* w = data_.get();
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = w + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
}

void Matrix::multiply_transposed(const Vec& x, Vec& y) const {
  assert(x.size() == rows_);
  y.assign(cols_, 0.0);
  const double* w = data_.get();
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    const double* row = w + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) y[c] += row[c] * xr;
  }
}

void Matrix::add_outer(const Vec& a, const Vec& b) {
  assert(a.size() == rows_ && b.size() == cols_);
  double* w = data_.get();
  for (std::size_t r = 0; r < rows_; ++r) {
    const double ar = a[r];
    if (ar == 0.0) continue;
    double* row = w + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) row[c] += ar * b[c];
  }
}

std::string Matrix::shape_string() const {
  std::ostringstream os;
  os << rows_ << "x" << cols_;
  return os.str();
}

Matrix Matrix::from_row(const Vec& x) {
  Matrix m(1, x.size());
  for (std::size_t c = 0; c < x.size(); ++c) m.data_[c] = x[c];
  return m;
}

Matrix Matrix::from_rows(const std::vector<Vec>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != m.cols_) {
      throw std::invalid_argument("Matrix::from_rows: ragged row lengths");
    }
    for (std::size_t c = 0; c < m.cols_; ++c) m.data_[r * m.cols_ + c] = rows[r][c];
  }
  return m;
}

Vec Matrix::row(std::size_t r) const {
  assert(r < rows_);
  const double* src = data_.get() + r * cols_;
  return Vec(src, src + cols_);
}

void Matrix::set_row(std::size_t r, const Vec& x) {
  assert(r < rows_ && x.size() == cols_);
  double* dst = data_.get() + r * cols_;
  for (std::size_t c = 0; c < cols_; ++c) dst[c] = x[c];
}

void Matrix::add_row_broadcast(const Vec& b) {
  assert(b.size() == cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    double* dst = data_.get() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) dst[c] += b[c];
  }
}

void Matrix::add_col_sums_into(Vec& out) const {
  assert(out.size() == cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* src = data_.get() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) out[c] += src[c];
  }
}

namespace {

// Register-tile shape of the shared micro-kernel. 4x4 doubles fit the
// baseline 16-register SSE2 file without spilling the accumulator tile.
constexpr std::size_t kTileM = 4;
constexpr std::size_t kTileN = 4;

void prepare_output(Matrix& C, std::size_t rows, std::size_t cols, bool accumulate,
                    const char* who) {
  if (accumulate) {
    if (C.rows() != rows || C.cols() != cols) {
      throw std::invalid_argument(std::string(who) + ": accumulate into " + C.shape_string() +
                                  ", want " + std::to_string(rows) + "x" + std::to_string(cols));
    }
  } else {
    // Every element is written by the kernels below (overwrite mode), so the
    // usual zero-fill pass would be pure overhead.
    C.resize_for_overwrite(rows, cols);
  }
}

// Reusable packing buffer for the transposed operand of gemm_tn/gemm_nt.
// thread_local so concurrent experiment sweeps don't share it; reusing the
// allocation matters because a fresh buffer per call means an mmap + page
// faults + a redundant zero-fill on every GEMM.
thread_local std::vector<double> pack_scratch;

// dst (rows x cols) = src (cols x rows) transposed, in 8x8 blocks so reads
// and writes both stay within a handful of cache lines per block.
void pack_transpose(const double* src, double* dst, std::size_t rows, std::size_t cols) {
  constexpr std::size_t kB = 8;
  for (std::size_t r0 = 0; r0 < rows; r0 += kB) {
    const std::size_t r1 = std::min(r0 + kB, rows);
    for (std::size_t c0 = 0; c0 < cols; c0 += kB) {
      const std::size_t c1 = std::min(c0 + kB, cols);
      for (std::size_t c = c0; c < c1; ++c) {
        const double* srow = src + c * rows;
        for (std::size_t r = r0; r < r1; ++r) dst[r * cols + c] = srow[r];
      }
    }
  }
}

// Shared blocked micro-kernel: c (m x n) = or += a (m x kk) * bkn (kk x n),
// all row-major. Main tiles keep a kTileM x kTileN accumulator block in
// registers across the whole k loop (the jj loop vectorizes; c sees one
// store per element instead of one per multiply-accumulate); edge elements
// fall back to strided dot products. Every output element — tile or edge,
// any m — accumulates its kk products in increasing k order inside a
// register and lands on memory with a single store or add, so batch-1
// wrappers and batched calls produce identical sums.
template <bool kOverwrite>
void tile_mul_add(const double* a, std::size_t lda, const double* bkn, std::size_t ldb, double* c,
                  std::size_t ldc, std::size_t m, std::size_t kk, std::size_t n) {
  for (std::size_t i0 = 0; i0 < m; i0 += kTileM) {
    const std::size_t mr = std::min(kTileM, m - i0);
    for (std::size_t j0 = 0; j0 < n; j0 += kTileN) {
      const std::size_t nr = std::min(kTileN, n - j0);
      double acc[kTileM][kTileN] = {};
      if (mr == kTileM && nr == kTileN) {
        // Hot full tile: fixed trip counts unroll and keep acc in registers.
        for (std::size_t k = 0; k < kk; ++k) {
          const double* brow = bkn + k * ldb + j0;
          for (std::size_t ii = 0; ii < kTileM; ++ii) {
            const double aik = a[(i0 + ii) * lda + k];
            for (std::size_t jj = 0; jj < kTileN; ++jj) acc[ii][jj] += aik * brow[jj];
          }
        }
      } else {
        // Edge tile: same structure with runtime trip counts — loads stay
        // contiguous and accumulation order is identical.
        for (std::size_t k = 0; k < kk; ++k) {
          const double* brow = bkn + k * ldb + j0;
          for (std::size_t ii = 0; ii < mr; ++ii) {
            const double aik = a[(i0 + ii) * lda + k];
            for (std::size_t jj = 0; jj < nr; ++jj) acc[ii][jj] += aik * brow[jj];
          }
        }
      }
      for (std::size_t ii = 0; ii < mr; ++ii) {
        double* crow = c + (i0 + ii) * ldc + j0;
        for (std::size_t jj = 0; jj < nr; ++jj) {
          if constexpr (kOverwrite) {
            crow[jj] = acc[ii][jj];
          } else {
            crow[jj] += acc[ii][jj];
          }
        }
      }
    }
  }
}

// L2 panel blocks for large shapes: a (kKBlock x kNBlock) panel of bkn is
// ~0.4 MB, so it stays cache-resident while every row of A streams past it.
constexpr std::size_t kKBlock = 192;
constexpr std::size_t kNBlock = 256;

// Driver: c (m x n) = or += a (m x kk) * bkn (kk x n), all row-major and
// densely packed. Shapes that fit one panel (every NN layer in this project)
// take the single tile_mul_add call, preserving the exact per-element
// accumulation order the parity tests pin down; larger shapes are split into
// panels, which regroups each element's k-chain into per-panel partial sums
// (same k order, different rounding breaks — well inside the 1e-12 parity
// budget).
void tile_mul(const double* a, const double* bkn, double* c, std::size_t m, std::size_t kk,
              std::size_t n, bool accumulate) {
  if (kk <= kKBlock && n <= kNBlock) {
    if (accumulate) {
      tile_mul_add<false>(a, kk, bkn, n, c, n, m, kk, n);
    } else {
      tile_mul_add<true>(a, kk, bkn, n, c, n, m, kk, n);
    }
    return;
  }
  for (std::size_t j0 = 0; j0 < n; j0 += kNBlock) {
    const std::size_t nb = std::min(kNBlock, n - j0);
    for (std::size_t k0 = 0; k0 < kk; k0 += kKBlock) {
      const std::size_t kb = std::min(kKBlock, kk - k0);
      const bool first = k0 == 0 && !accumulate;
      if (first) {
        tile_mul_add<true>(a + k0, kk, bkn + k0 * n + j0, n, c + j0, n, m, kb, nb);
      } else {
        tile_mul_add<false>(a + k0, kk, bkn + k0 * n + j0, n, c + j0, n, m, kb, nb);
      }
    }
  }
}

}  // namespace

void gemm(const Matrix& A, const Matrix& B, Matrix& C, bool accumulate) {
  if (A.cols() != B.rows()) {
    throw std::invalid_argument("gemm: shape mismatch " + A.shape_string() + " * " +
                                B.shape_string());
  }
  const std::size_t m = A.rows(), kk = A.cols(), n = B.cols();
  prepare_output(C, m, n, accumulate, "gemm");
  // Small-batch path: accumulate rows of B directly into the output row —
  // contiguous walks; k = 0 seeds the row, so the incremental adds round
  // exactly like the micro-kernel's register sums (0 + p0 is exact).
  if (m < kTileM && !accumulate) {
    const double* a = A.data();
    const double* b = B.data();
    double* c = C.data();
    for (std::size_t i = 0; i < m; ++i) {
      const double* arow = a + i * kk;
      double* crow = c + i * n;
      if (kk == 0) {
        for (std::size_t j = 0; j < n; ++j) crow[j] = 0.0;
        continue;
      }
      for (std::size_t j = 0; j < n; ++j) crow[j] = arow[0] * b[j];
      for (std::size_t k = 1; k < kk; ++k) {
        const double aik = arow[k];
        const double* brow = b + k * n;
        for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
    return;
  }
  // B is already (kk x n) row-major — the micro-kernel's native layout.
  tile_mul(A.data(), B.data(), C.data(), m, kk, n, accumulate);
}

void gemm_tn(const Matrix& A, const Matrix& B, Matrix& C, bool accumulate) {
  if (A.rows() != B.rows()) {
    throw std::invalid_argument("gemm_tn: shape mismatch " + A.shape_string() + "^T * " +
                                B.shape_string());
  }
  const std::size_t kk = A.rows(), m = A.cols(), n = B.cols();
  prepare_output(C, m, n, accumulate, "gemm_tn");
  // Pack A^T (m x kk) once — O(m*kk), amortized over the m*kk*n kernel work.
  pack_scratch.resize(m * kk);
  double* at = pack_scratch.data();
  pack_transpose(A.data(), at, m, kk);
  tile_mul(at, B.data(), C.data(), m, kk, n, accumulate);
}

void gemm_nt(const Matrix& A, const Matrix& B, Matrix& C, bool accumulate) {
  if (A.cols() != B.cols()) {
    throw std::invalid_argument("gemm_nt: shape mismatch " + A.shape_string() + " * " +
                                B.shape_string() + "^T");
  }
  const std::size_t m = A.rows(), kk = A.cols(), n = B.rows();
  prepare_output(C, m, n, accumulate, "gemm_nt");
  const double* a = A.data();
  const double* b = B.data();
  double* c = C.data();
  // Batched path: pack B^T (kk x n) once — amortized across the m batch
  // rows — then run the register-tiled micro-kernel.
  if (m >= kTileM) {
    pack_scratch.resize(kk * n);
    double* bt = pack_scratch.data();
    pack_transpose(b, bt, kk, n);
    tile_mul(a, bt, c, m, kk, n, accumulate);
    return;
  }
  // Small-batch path: both operands walked along contiguous rows; skipping
  // the pack is cheaper below kTileM rows. Same k-ordered register dot and
  // single store/add per element as the micro-kernel, so results are
  // identical.
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a + i * kk;
    double* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const double* brow = b + j * kk;
      double acc = 0.0;
      for (std::size_t k = 0; k < kk; ++k) acc += arow[k] * brow[k];
      if (accumulate) {
        crow[j] += acc;
      } else {
        crow[j] = acc;
      }
    }
  }
}

void add_in_place(Matrix& X, const Matrix& Y) {
  if (!X.same_shape(Y)) {
    throw std::invalid_argument("Matrix add_in_place: " + X.shape_string() + " vs " +
                                Y.shape_string());
  }
  double* x = X.data();
  const double* y = Y.data();
  for (std::size_t i = 0; i < X.size(); ++i) x[i] += y[i];
}

Vec add(const Vec& x, const Vec& y) {
  assert(x.size() == y.size());
  Vec z(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = x[i] + y[i];
  return z;
}

void add_in_place(Vec& x, const Vec& y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += y[i];
}

void scale_in_place(Vec& x, double s) {
  for (auto& v : x) v *= s;
}

double dot(const Vec& x, const Vec& y) {
  assert(x.size() == y.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

double norm(const Vec& x) { return std::sqrt(dot(x, x)); }

Vec concat(const std::vector<const Vec*>& parts) {
  std::size_t total = 0;
  for (const Vec* p : parts) total += p->size();
  Vec out;
  out.reserve(total);
  for (const Vec* p : parts) out.insert(out.end(), p->begin(), p->end());
  return out;
}

std::size_t argmax(const Vec& x) {
  if (x.empty()) throw std::invalid_argument("argmax: empty vector");
  std::size_t best = 0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    if (x[i] > x[best]) best = i;
  }
  return best;
}

}  // namespace hcrl::nn
