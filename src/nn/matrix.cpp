#include "src/nn/matrix.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "src/telemetry/registry.hpp"
#include "src/telemetry/trace.hpp"

namespace hcrl::nn {

template <class Scalar>
MatrixT<Scalar>::MatrixT(std::size_t rows, std::size_t cols, Scalar fill) {
  resize(rows, cols, fill);
}

template <class Scalar>
MatrixT<Scalar>::MatrixT(const MatrixT& other) {
  resize_for_overwrite(other.rows_, other.cols_);
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) data_[i] = other.data_[i];
}

template <class Scalar>
MatrixT<Scalar>::MatrixT(MatrixT&& other) noexcept
    : rows_(other.rows_),
      cols_(other.cols_),
      capacity_(other.capacity_),
      data_(std::move(other.data_)) {
  other.rows_ = other.cols_ = other.capacity_ = 0;
}

template <class Scalar>
MatrixT<Scalar>& MatrixT<Scalar>::operator=(const MatrixT& other) {
  if (this == &other) return *this;
  resize_for_overwrite(other.rows_, other.cols_);
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) data_[i] = other.data_[i];
  return *this;
}

template <class Scalar>
MatrixT<Scalar>& MatrixT<Scalar>::operator=(MatrixT&& other) noexcept {
  if (this == &other) return *this;
  rows_ = other.rows_;
  cols_ = other.cols_;
  capacity_ = other.capacity_;
  data_ = std::move(other.data_);
  other.rows_ = other.cols_ = other.capacity_ = 0;
  return *this;
}

template <class Scalar>
void MatrixT<Scalar>::fill(Scalar v) noexcept {
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) data_[i] = v;
}

template <class Scalar>
void MatrixT<Scalar>::resize(std::size_t rows, std::size_t cols, Scalar fill_value) {
  resize_for_overwrite(rows, cols);
  fill(fill_value);
}

template <class Scalar>
void MatrixT<Scalar>::resize_for_overwrite(std::size_t rows, std::size_t cols) {
  const std::size_t n = rows * cols;
  if (n > capacity_) {
    data_ = std::make_unique_for_overwrite<Scalar[]>(n);
    capacity_ = n;
  }
  rows_ = rows;
  cols_ = cols;
}

template <class Scalar>
void MatrixT<Scalar>::multiply(const VecT<Scalar>& x, VecT<Scalar>& y) const {
  assert(x.size() == cols_);
  y.assign(rows_, Scalar(0));
  const Scalar* w = data_.get();
  for (std::size_t r = 0; r < rows_; ++r) {
    Scalar acc = Scalar(0);
    const Scalar* row = w + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
}

template <class Scalar>
void MatrixT<Scalar>::multiply_transposed(const VecT<Scalar>& x, VecT<Scalar>& y) const {
  assert(x.size() == rows_);
  y.assign(cols_, Scalar(0));
  const Scalar* w = data_.get();
  for (std::size_t r = 0; r < rows_; ++r) {
    const Scalar xr = x[r];
    if (xr == Scalar(0)) continue;
    const Scalar* row = w + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) y[c] += row[c] * xr;
  }
}

template <class Scalar>
void MatrixT<Scalar>::add_outer(const VecT<Scalar>& a, const VecT<Scalar>& b) {
  assert(a.size() == rows_ && b.size() == cols_);
  Scalar* w = data_.get();
  for (std::size_t r = 0; r < rows_; ++r) {
    const Scalar ar = a[r];
    if (ar == Scalar(0)) continue;
    Scalar* row = w + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) row[c] += ar * b[c];
  }
}

template <class Scalar>
std::string MatrixT<Scalar>::shape_string() const {
  std::ostringstream os;
  os << rows_ << "x" << cols_;
  return os.str();
}

template <class Scalar>
MatrixT<Scalar> MatrixT<Scalar>::from_row(const VecT<Scalar>& x) {
  MatrixT m(1, x.size());
  for (std::size_t c = 0; c < x.size(); ++c) m.data_[c] = x[c];
  return m;
}

template <class Scalar>
MatrixT<Scalar> MatrixT<Scalar>::from_rows(const std::vector<VecT<Scalar>>& rows) {
  if (rows.empty()) return MatrixT();
  MatrixT m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != m.cols_) {
      throw std::invalid_argument("Matrix::from_rows: ragged row lengths");
    }
    for (std::size_t c = 0; c < m.cols_; ++c) m.data_[r * m.cols_ + c] = rows[r][c];
  }
  return m;
}

template <class Scalar>
VecT<Scalar> MatrixT<Scalar>::row(std::size_t r) const {
  assert(r < rows_);
  const Scalar* src = data_.get() + r * cols_;
  return VecT<Scalar>(src, src + cols_);
}

template <class Scalar>
void MatrixT<Scalar>::set_row(std::size_t r, const VecT<Scalar>& x) {
  assert(r < rows_ && x.size() == cols_);
  Scalar* dst = data_.get() + r * cols_;
  for (std::size_t c = 0; c < cols_; ++c) dst[c] = x[c];
}

template <class Scalar>
void MatrixT<Scalar>::add_row_broadcast(const VecT<Scalar>& b) {
  assert(b.size() == cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    Scalar* dst = data_.get() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) dst[c] += b[c];
  }
}

template <class Scalar>
void MatrixT<Scalar>::add_col_sums_into(VecT<Scalar>& out) const {
  assert(out.size() == cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const Scalar* src = data_.get() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) out[c] += src[c];
  }
}

template class MatrixT<float>;
template class MatrixT<double>;

namespace {

// The hot full tile uses GNU vector extensions (16-byte lanes) on gcc/clang:
// explicit lane-wise multiply-adds keep the accumulator tile in vector
// registers and sidestep the autovectorizer's shuffle-heavy k-direction
// gather (measured ~2.4x on the f32 kernel). Elsewhere (and on every edge
// tile) the plain scalar loops run — identical arithmetic, identical
// rounding, since lane ops are IEEE scalar ops.
#if defined(__GNUC__) || defined(__clang__)
#define HCRL_GEMM_VECTOR_EXT 1
#else
#define HCRL_GEMM_VECTOR_EXT 0
#endif

// Register-tile shape of the shared micro-kernel: 4 rows x four 16-byte
// vectors of accumulator per row. A float lane is half as wide as a double
// lane, so the f32 tile doubles its N extent (4x16 vs 4x8) while filling
// the same vector registers — the "wider micro-tile" of the f32 mode.
template <class S>
struct Tile {
  static constexpr std::size_t kM = 4;
  static constexpr std::size_t kN = 8;
};
template <>
struct Tile<float> {
  static constexpr std::size_t kM = 4;
  static constexpr std::size_t kN = 16;
};

// L2 panel blocks for large shapes: a (kK x kN) panel of bkn stays
// cache-resident (~0.4 MB at either precision — float halves the element
// size, so the f32 panels double their extent) while every row of A streams
// past it.
template <class S>
struct Panel {
  static constexpr std::size_t kK = 192;
  static constexpr std::size_t kN = 256;
};
template <>
struct Panel<float> {
  static constexpr std::size_t kK = 256;
  static constexpr std::size_t kN = 512;
};

template <class S>
void prepare_output(MatrixT<S>& C, std::size_t rows, std::size_t cols, bool accumulate,
                    const char* who) {
  if (accumulate) {
    if (C.rows() != rows || C.cols() != cols) {
      throw std::invalid_argument(std::string(who) + ": accumulate into " + C.shape_string() +
                                  ", want " + std::to_string(rows) + "x" + std::to_string(cols));
    }
  } else {
    // Every element is written by the kernels below (overwrite mode), so the
    // usual zero-fill pass would be pure overhead.
    C.resize_for_overwrite(rows, cols);
  }
}

// Reusable packing buffer for the transposed operand of gemm_tn/gemm_nt.
// thread_local so concurrent experiment sweeps don't share it; reusing the
// allocation matters because a fresh buffer per call means an mmap + page
// faults + a redundant zero-fill on every GEMM. One buffer per Scalar type.
template <class S>
std::vector<S>& pack_scratch() {
  thread_local std::vector<S> scratch;
  return scratch;
}

// dst (rows x cols) = src (cols x rows) transposed, in 8x8 blocks so reads
// and writes both stay within a handful of cache lines per block.
template <class S>
void pack_transpose(const S* src, S* dst, std::size_t rows, std::size_t cols) {
  constexpr std::size_t kB = 8;
  for (std::size_t r0 = 0; r0 < rows; r0 += kB) {
    const std::size_t r1 = std::min(r0 + kB, rows);
    for (std::size_t c0 = 0; c0 < cols; c0 += kB) {
      const std::size_t c1 = std::min(c0 + kB, cols);
      for (std::size_t c = c0; c < c1; ++c) {
        const S* srow = src + c * rows;
        for (std::size_t r = r0; r < r1; ++r) dst[r * cols + c] = srow[r];
      }
    }
  }
}

// Shared blocked micro-kernel: c (m x n) = or += a (m x kk) * bkn (kk x n),
// all row-major. Main tiles keep a Tile<S>::kM x Tile<S>::kN accumulator
// block in registers across the whole k loop (the jj loop vectorizes; c sees
// one store per element instead of one per multiply-accumulate); edge
// elements fall back to strided dot products. Every output element — tile or
// edge, any m — accumulates its kk products in increasing k order inside a
// register and lands on memory with a single store or add, so batch-1
// wrappers and batched calls produce identical sums.
template <bool kOverwrite, class S>
void tile_mul_add(const S* a, std::size_t lda, const S* bkn, std::size_t ldb, S* c,
                  std::size_t ldc, std::size_t m, std::size_t kk, std::size_t n) {
  constexpr std::size_t kTileM = Tile<S>::kM;
  constexpr std::size_t kTileN = Tile<S>::kN;
  for (std::size_t i0 = 0; i0 < m; i0 += kTileM) {
    const std::size_t mr = std::min(kTileM, m - i0);
    for (std::size_t j0 = 0; j0 < n; j0 += kTileN) {
      const std::size_t nr = std::min(kTileN, n - j0);
      if (mr == kTileM && nr == kTileN) {
#if HCRL_GEMM_VECTOR_EXT
        // Hot full tile, explicit 16-byte vectors: each accumulator lane
        // runs its element's products in increasing k order with one
        // mul + one add per k — bit-identical to the scalar loops below.
        typedef S V __attribute__((vector_size(16)));
        constexpr std::size_t kLanes = 16 / sizeof(S);
        constexpr std::size_t kNV = kTileN / kLanes;
        V acc[kTileM][kNV] = {};
        for (std::size_t k = 0; k < kk; ++k) {
          const S* brow = bkn + k * ldb + j0;
          V bv[kNV];
          for (std::size_t v = 0; v < kNV; ++v) {
            __builtin_memcpy(&bv[v], brow + v * kLanes, sizeof(V));
          }
          for (std::size_t ii = 0; ii < kTileM; ++ii) {
            const S aik = a[(i0 + ii) * lda + k];
            V av = {};
            for (std::size_t l = 0; l < kLanes; ++l) av[l] = aik;
            for (std::size_t v = 0; v < kNV; ++v) acc[ii][v] += av * bv[v];
          }
        }
        for (std::size_t ii = 0; ii < kTileM; ++ii) {
          S* crow = c + (i0 + ii) * ldc + j0;
          for (std::size_t v = 0; v < kNV; ++v) {
            if constexpr (kOverwrite) {
              __builtin_memcpy(crow + v * kLanes, &acc[ii][v], sizeof(V));
            } else {
              V cv;
              __builtin_memcpy(&cv, crow + v * kLanes, sizeof(V));
              cv += acc[ii][v];
              __builtin_memcpy(crow + v * kLanes, &cv, sizeof(V));
            }
          }
        }
#else
        // Hot full tile, portable scalar form: fixed trip counts unroll and
        // keep acc in registers.
        S acc[kTileM][kTileN] = {};
        for (std::size_t k = 0; k < kk; ++k) {
          const S* brow = bkn + k * ldb + j0;
          for (std::size_t ii = 0; ii < kTileM; ++ii) {
            const S aik = a[(i0 + ii) * lda + k];
            for (std::size_t jj = 0; jj < kTileN; ++jj) acc[ii][jj] += aik * brow[jj];
          }
        }
        for (std::size_t ii = 0; ii < kTileM; ++ii) {
          S* crow = c + (i0 + ii) * ldc + j0;
          for (std::size_t jj = 0; jj < kTileN; ++jj) {
            if constexpr (kOverwrite) {
              crow[jj] = acc[ii][jj];
            } else {
              crow[jj] += acc[ii][jj];
            }
          }
        }
#endif
      } else {
        // Edge tile: same structure with runtime trip counts — loads stay
        // contiguous and accumulation order is identical.
        S acc[kTileM][kTileN] = {};
        for (std::size_t k = 0; k < kk; ++k) {
          const S* brow = bkn + k * ldb + j0;
          for (std::size_t ii = 0; ii < mr; ++ii) {
            const S aik = a[(i0 + ii) * lda + k];
            for (std::size_t jj = 0; jj < nr; ++jj) acc[ii][jj] += aik * brow[jj];
          }
        }
        for (std::size_t ii = 0; ii < mr; ++ii) {
          S* crow = c + (i0 + ii) * ldc + j0;
          for (std::size_t jj = 0; jj < nr; ++jj) {
            if constexpr (kOverwrite) {
              crow[jj] = acc[ii][jj];
            } else {
              crow[jj] += acc[ii][jj];
            }
          }
        }
      }
    }
  }
}

// Serial driver: c (m x n) = or += a (m x kk) * bkn (kk x n), all row-major
// and densely packed. Shapes that fit one panel (every NN layer in this
// project) take the single tile_mul_add call, preserving the exact
// per-element accumulation order the parity tests pin down; larger shapes
// are split into panels, which regroups each element's k-chain into
// per-panel partial sums (same k order, different rounding breaks — well
// inside the parity budget).
template <class S>
void tile_mul_serial(const S* a, const S* bkn, S* c, std::size_t m, std::size_t kk, std::size_t n,
                     bool accumulate) {
  constexpr std::size_t kKBlock = Panel<S>::kK;
  constexpr std::size_t kNBlock = Panel<S>::kN;
  if (kk <= kKBlock && n <= kNBlock) {
    if (accumulate) {
      tile_mul_add<false>(a, kk, bkn, n, c, n, m, kk, n);
    } else {
      tile_mul_add<true>(a, kk, bkn, n, c, n, m, kk, n);
    }
    return;
  }
  for (std::size_t j0 = 0; j0 < n; j0 += kNBlock) {
    const std::size_t nb = std::min(kNBlock, n - j0);
    for (std::size_t k0 = 0; k0 < kk; k0 += kKBlock) {
      const std::size_t kb = std::min(kKBlock, kk - k0);
      const bool first = k0 == 0 && !accumulate;
      if (first) {
        tile_mul_add<true>(a + k0, kk, bkn + k0 * n + j0, n, c + j0, n, m, kb, nb);
      } else {
        tile_mul_add<false>(a + k0, kk, bkn + k0 * n + j0, n, c + j0, n, m, kb, nb);
      }
    }
  }
}

// --- GEMM worker pool -----------------------------------------------------

constexpr std::size_t kMaxGemmThreads = 64;

std::size_t gemm_threads_from_env() {
  const char* env = std::getenv("HCRL_GEMM_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v < 1) return 1;
  return std::min<std::size_t>(static_cast<std::size_t>(v), kMaxGemmThreads);
}

std::atomic<std::size_t>& gemm_thread_setting() {
  static std::atomic<std::size_t> setting{gemm_threads_from_env()};
  return setting;
}

/// Persistent workers for the threaded GEMM path. One job at a time (callers
/// serialize on run_mutex_, so concurrent scenario threads never interleave
/// chunks); workers are spawned lazily up to the largest count ever
/// requested and parked on a condition variable between jobs.
class GemmPool {
 public:
  static GemmPool& instance() {
    static GemmPool pool;
    return pool;
  }

  /// Invoke fn(0) .. fn(nchunks - 1), chunk 0 on the calling thread and the
  /// rest on pool workers; returns after all chunks completed.
  void run(std::size_t nchunks, const std::function<void(std::size_t)>& fn) {
    if (nchunks <= 1) {
      if (nchunks == 1) fn(0);
      return;
    }
    std::lock_guard<std::mutex> run_lock(run_mutex_);
    ensure_workers(nchunks - 1);
    {
      std::lock_guard<std::mutex> lk(m_);
      job_ = &fn;
      claim_ = nchunks - 1;      // workers take chunk indexes nchunks-1 .. 1
      remaining_ = nchunks - 1;
    }
    cv_.notify_all();
    fn(0);
    std::unique_lock<std::mutex> lk(m_);
    done_cv_.wait(lk, [&] { return remaining_ == 0; });
    job_ = nullptr;
  }

 private:
  GemmPool() = default;

  ~GemmPool() {
    {
      std::lock_guard<std::mutex> lk(m_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  void ensure_workers(std::size_t count) {
    while (workers_.size() < count) {
      const std::size_t index = workers_.size();
      workers_.emplace_back([this, index] {
        telemetry::set_thread_name("gemm-worker-" + std::to_string(index));
        worker_loop();
      });
    }
  }

  void worker_loop() {
    std::unique_lock<std::mutex> lk(m_);
    for (;;) {
      cv_.wait(lk, [&] { return stop_ || claim_ > 0; });
      if (stop_) return;
      while (claim_ > 0) {
        const std::size_t idx = claim_--;
        const auto* job = job_;
        lk.unlock();
        (*job)(idx);
        lk.lock();
        if (--remaining_ == 0) done_cv_.notify_one();
      }
    }
  }

  std::mutex run_mutex_;  // one threaded GEMM at a time
  std::mutex m_;
  std::condition_variable cv_, done_cv_;
  std::vector<std::thread> workers_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t claim_ = 0;      // unclaimed chunk indexes (counts down to 1)
  std::size_t remaining_ = 0;  // chunks not yet finished by workers
  bool stop_ = false;
};

// Minimum multiply-accumulates per worker before fan-out pays for the
// wake/join handshake (~ a few microseconds of kernel work per thread).
constexpr std::size_t kMinMacsPerThread = 32 * 1024;

struct GemmMetrics {
  telemetry::MetricId calls;
  telemetry::MetricId macs;
  telemetry::MetricId threaded_dispatches;

  static const GemmMetrics& get() {
    static const GemmMetrics m = [] {
      auto& reg = telemetry::global_registry();
      return GemmMetrics{
          .calls = reg.counter("nn.gemm.calls"),
          .macs = reg.counter("nn.gemm.macs"),
          .threaded_dispatches = reg.counter("nn.gemm.threaded_dispatches"),
      };
    }();
    return m;
  }
};

// Threading driver: row-block the M dimension into one contiguous chunk per
// worker (aligned to the micro-tile). Each chunk runs the unmodified serial
// kernel over its row range and every output row keeps its full k reduction
// on one thread, so the result is bit-identical to the serial path.
template <class S>
void tile_mul(const S* a, const S* bkn, S* c, std::size_t m, std::size_t kk, std::size_t n,
              bool accumulate) {
  if (telemetry::enabled()) {
    const GemmMetrics& gm = GemmMetrics::get();
    telemetry::count(gm.calls);
    telemetry::count(gm.macs, static_cast<std::uint64_t>(m) * kk * n);
  }
  const std::size_t threads = gemm_threads();
  if (threads > 1 && m >= 2 * Tile<S>::kM && m * kk * n >= kMinMacsPerThread * 2) {
    const std::size_t want =
        std::min(threads, std::max<std::size_t>(1, (m * kk * n) / kMinMacsPerThread));
    const std::size_t rows_per =
        ((m + want - 1) / want + Tile<S>::kM - 1) / Tile<S>::kM * Tile<S>::kM;
    const std::size_t nchunks = (m + rows_per - 1) / rows_per;
    if (nchunks > 1) {
      if (telemetry::enabled()) telemetry::count(GemmMetrics::get().threaded_dispatches);
      GemmPool::instance().run(nchunks, [&](std::size_t chunk) {
        const std::size_t i0 = chunk * rows_per;
        const std::size_t i1 = std::min(i0 + rows_per, m);
        tile_mul_serial(a + i0 * kk, bkn, c + i0 * n, i1 - i0, kk, n, accumulate);
      });
      return;
    }
  }
  tile_mul_serial(a, bkn, c, m, kk, n, accumulate);
}

}  // namespace

void set_gemm_threads(std::size_t n) noexcept {
  gemm_thread_setting().store(std::clamp<std::size_t>(n, 1, kMaxGemmThreads),
                              std::memory_order_relaxed);
}

std::size_t gemm_threads() noexcept {
  return gemm_thread_setting().load(std::memory_order_relaxed);
}

template <class S>
void gemm(const MatrixT<S>& A, const MatrixT<S>& B, MatrixT<S>& C, bool accumulate) {
  if (A.cols() != B.rows()) {
    throw std::invalid_argument("gemm: shape mismatch " + A.shape_string() + " * " +
                                B.shape_string());
  }
  const std::size_t m = A.rows(), kk = A.cols(), n = B.cols();
  prepare_output(C, m, n, accumulate, "gemm");
  // Small-batch path: accumulate rows of B directly into the output row —
  // contiguous walks; k = 0 seeds the row, so the incremental adds round
  // exactly like the micro-kernel's register sums (0 + p0 is exact).
  if (m < Tile<S>::kM && !accumulate) {
    const S* a = A.data();
    const S* b = B.data();
    S* c = C.data();
    for (std::size_t i = 0; i < m; ++i) {
      const S* arow = a + i * kk;
      S* crow = c + i * n;
      if (kk == 0) {
        for (std::size_t j = 0; j < n; ++j) crow[j] = S(0);
        continue;
      }
      for (std::size_t j = 0; j < n; ++j) crow[j] = arow[0] * b[j];
      for (std::size_t k = 1; k < kk; ++k) {
        const S aik = arow[k];
        const S* brow = b + k * n;
        for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
    return;
  }
  // B is already (kk x n) row-major — the micro-kernel's native layout.
  tile_mul(A.data(), B.data(), C.data(), m, kk, n, accumulate);
}

template <class S>
void gemm_tn(const MatrixT<S>& A, const MatrixT<S>& B, MatrixT<S>& C, bool accumulate) {
  if (A.rows() != B.rows()) {
    throw std::invalid_argument("gemm_tn: shape mismatch " + A.shape_string() + "^T * " +
                                B.shape_string());
  }
  const std::size_t kk = A.rows(), m = A.cols(), n = B.cols();
  prepare_output(C, m, n, accumulate, "gemm_tn");
  // Pack A^T (m x kk) once — O(m*kk), amortized over the m*kk*n kernel work.
  auto& scratch = pack_scratch<S>();
  scratch.resize(m * kk);
  S* at = scratch.data();
  pack_transpose(A.data(), at, m, kk);
  tile_mul(at, B.data(), C.data(), m, kk, n, accumulate);
}

template <class S>
void gemm_nt(const MatrixT<S>& A, const MatrixT<S>& B, MatrixT<S>& C, bool accumulate) {
  if (A.cols() != B.cols()) {
    throw std::invalid_argument("gemm_nt: shape mismatch " + A.shape_string() + " * " +
                                B.shape_string() + "^T");
  }
  const std::size_t m = A.rows(), kk = A.cols(), n = B.rows();
  prepare_output(C, m, n, accumulate, "gemm_nt");
  const S* a = A.data();
  const S* b = B.data();
  S* c = C.data();
  // Batched path: pack B^T (kk x n) once — amortized across the m batch
  // rows — then run the register-tiled micro-kernel.
  if (m >= Tile<S>::kM) {
    auto& scratch = pack_scratch<S>();
    scratch.resize(kk * n);
    S* bt = scratch.data();
    pack_transpose(b, bt, kk, n);
    tile_mul(a, bt, c, m, kk, n, accumulate);
    return;
  }
  // Small-batch path: both operands walked along contiguous rows; skipping
  // the pack is cheaper below the tile height. Same k-ordered register dot
  // and single store/add per element as the micro-kernel, so results are
  // identical.
  for (std::size_t i = 0; i < m; ++i) {
    const S* arow = a + i * kk;
    S* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const S* brow = b + j * kk;
      S acc = S(0);
      for (std::size_t k = 0; k < kk; ++k) acc += arow[k] * brow[k];
      if (accumulate) {
        crow[j] += acc;
      } else {
        crow[j] = acc;
      }
    }
  }
}

template <class S>
void add_in_place(MatrixT<S>& X, const MatrixT<S>& Y) {
  if (!X.same_shape(Y)) {
    throw std::invalid_argument("Matrix add_in_place: " + X.shape_string() + " vs " +
                                Y.shape_string());
  }
  S* x = X.data();
  const S* y = Y.data();
  for (std::size_t i = 0; i < X.size(); ++i) x[i] += y[i];
}

template <class S>
VecT<S> add(const VecT<S>& x, const VecT<S>& y) {
  assert(x.size() == y.size());
  VecT<S> z(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = x[i] + y[i];
  return z;
}

template <class S>
void add_in_place(VecT<S>& x, const VecT<S>& y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += y[i];
}

template <class S>
void scale_in_place(VecT<S>& x, S s) {
  for (auto& v : x) v *= s;
}

template <class S>
S dot(const VecT<S>& x, const VecT<S>& y) {
  assert(x.size() == y.size());
  S acc = S(0);
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

template <class S>
S norm(const VecT<S>& x) {
  return std::sqrt(dot(x, x));
}

template <class S>
VecT<S> concat(const std::vector<const VecT<S>*>& parts) {
  std::size_t total = 0;
  for (const VecT<S>* p : parts) total += p->size();
  VecT<S> out;
  out.reserve(total);
  for (const VecT<S>* p : parts) out.insert(out.end(), p->begin(), p->end());
  return out;
}

template <class S>
std::size_t argmax(const VecT<S>& x) {
  if (x.empty()) throw std::invalid_argument("argmax: empty vector");
  std::size_t best = 0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    if (x[i] > x[best]) best = i;
  }
  return best;
}

// Explicit instantiations: the library ships exactly the float and double
// kernels (matrix.hpp declares the templates without definitions).
#define HCRL_NN_INSTANTIATE_MATRIX(S)                                                  \
  template void gemm<S>(const MatrixT<S>&, const MatrixT<S>&, MatrixT<S>&, bool);      \
  template void gemm_tn<S>(const MatrixT<S>&, const MatrixT<S>&, MatrixT<S>&, bool);   \
  template void gemm_nt<S>(const MatrixT<S>&, const MatrixT<S>&, MatrixT<S>&, bool);   \
  template void add_in_place<S>(MatrixT<S>&, const MatrixT<S>&);                       \
  template VecT<S> add<S>(const VecT<S>&, const VecT<S>&);                             \
  template void add_in_place<S>(VecT<S>&, const VecT<S>&);                             \
  template void scale_in_place<S>(VecT<S>&, S);                                        \
  template S dot<S>(const VecT<S>&, const VecT<S>&);                                   \
  template S norm<S>(const VecT<S>&);                                                  \
  template VecT<S> concat<S>(const std::vector<const VecT<S>*>&);                      \
  template std::size_t argmax<S>(const VecT<S>&);

HCRL_NN_INSTANTIATE_MATRIX(float)
HCRL_NN_INSTANTIATE_MATRIX(double)
#undef HCRL_NN_INSTANTIATE_MATRIX

}  // namespace hcrl::nn
