// Dense row-major matrix and vector helpers for the NN substrate.
//
// The networks in this project are tiny (tens to a few hundred units), so a
// straightforward double-precision matrix with cache-friendly loops is both
// simple and fast enough; there is intentionally no BLAS dependency.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hcrl::nn {

using Vec = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }

  double& operator()(std::size_t r, std::size_t c) noexcept { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const noexcept { return data_[r * cols_ + c]; }

  double* data() noexcept { return data_.data(); }
  const double* data() const noexcept { return data_.data(); }

  void fill(double v) noexcept;
  void resize(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// y = this * x  (rows x cols) * (cols) -> (rows)
  void multiply(const Vec& x, Vec& y) const;
  /// y = this^T * x  (cols) <- (rows)
  void multiply_transposed(const Vec& x, Vec& y) const;
  /// this += outer(a, b): this(r,c) += a[r] * b[c]
  void add_outer(const Vec& a, const Vec& b);

  bool same_shape(const Matrix& other) const noexcept {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  std::string shape_string() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// --- small Vec helpers used throughout the nn/ and core/ code -------------

/// z = x + y (sizes must match).
Vec add(const Vec& x, const Vec& y);
/// x += y
void add_in_place(Vec& x, const Vec& y);
/// x *= s
void scale_in_place(Vec& x, double s);
/// Dot product.
double dot(const Vec& x, const Vec& y);
/// Euclidean norm.
double norm(const Vec& x);
/// Concatenate a list of vectors.
Vec concat(const std::vector<const Vec*>& parts);
/// Index of the maximum element (first on ties); requires non-empty.
std::size_t argmax(const Vec& x);

}  // namespace hcrl::nn
