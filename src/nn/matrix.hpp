// Dense row-major matrix and vector helpers for the NN substrate.
//
// The networks in this project are tiny (tens to a few hundred units), so a
// straightforward matrix with cache-friendly loops is both simple and fast
// enough; there is intentionally no BLAS dependency. The GEMM kernels below
// are the batched substrate: every batched layer carries a (batch x dim)
// activation Matrix through them, and the per-sample APIs are thin wrappers
// over batch = 1.
//
// Everything is templated on the Scalar type and instantiated for float and
// double (matrix.cpp). `Matrix`/`Vec` alias the double instantiation — the
// default precision of the library — while the f32 instantiation doubles
// SIMD lanes and halves cache/bandwidth pressure for the GEMM-bound sweeps
// (the micro-kernel widens its register tile accordingly). The runtime
// selector between the two lives in precision.hpp.
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace hcrl::nn {

template <class Scalar>
using VecT = std::vector<Scalar>;

template <class Scalar>
class MatrixT {
 public:
  using value_type = Scalar;

  MatrixT() = default;
  MatrixT(std::size_t rows, std::size_t cols, Scalar fill = Scalar(0));

  // Storage is a capacity-tracked raw buffer (not std::vector) so that
  // resize_for_overwrite() can hand out genuinely uninitialized memory:
  // every batched layer output is fully written by a GEMM or elementwise
  // kernel, and zero-filling it first would be a wasted pass per matrix.
  MatrixT(const MatrixT& other);
  MatrixT(MatrixT&& other) noexcept;
  MatrixT& operator=(const MatrixT& other);
  MatrixT& operator=(MatrixT&& other) noexcept;

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return rows_ * cols_; }

  Scalar& operator()(std::size_t r, std::size_t c) noexcept { return data_[r * cols_ + c]; }
  Scalar operator()(std::size_t r, std::size_t c) const noexcept { return data_[r * cols_ + c]; }

  Scalar* data() noexcept { return data_.get(); }
  const Scalar* data() const noexcept { return data_.get(); }

  void fill(Scalar v) noexcept;
  void resize(std::size_t rows, std::size_t cols, Scalar fill = Scalar(0));
  /// Resize leaving element values unspecified (cheap when the shape is
  /// already right); callers must overwrite every element before reading.
  void resize_for_overwrite(std::size_t rows, std::size_t cols);

  /// y = this * x  (rows x cols) * (cols) -> (rows)
  void multiply(const VecT<Scalar>& x, VecT<Scalar>& y) const;
  /// y = this^T * x  (cols) <- (rows)
  void multiply_transposed(const VecT<Scalar>& x, VecT<Scalar>& y) const;
  /// this += outer(a, b): this(r,c) += a[r] * b[c]
  void add_outer(const VecT<Scalar>& a, const VecT<Scalar>& b);

  bool same_shape(const MatrixT& other) const noexcept {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  std::string shape_string() const;

  // --- row-oriented helpers for the batched (batch x dim) layout ----------

  /// 1 x n matrix holding `x` as its single row.
  static MatrixT from_row(const VecT<Scalar>& x);
  /// rows.size() x rows[0].size() matrix; all rows must share one length.
  static MatrixT from_rows(const std::vector<VecT<Scalar>>& rows);

  /// Copy of row r as a Vec.
  VecT<Scalar> row(std::size_t r) const;
  void set_row(std::size_t r, const VecT<Scalar>& x);
  /// set_row from a possibly differently-typed source (value conversion per
  /// element) — the precision boundary of the type-erased agents.
  template <class U>
  void set_row_cast(std::size_t r, const std::vector<U>& x) {
    assert(r < rows_ && x.size() == cols_);
    Scalar* dst = data_.get() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) dst[c] = static_cast<Scalar>(x[c]);
  }
  /// this(r, :) += b for every row r (bias broadcast).
  void add_row_broadcast(const VecT<Scalar>& b);
  /// out[c] += sum over rows of this(r, c), accumulated in row order so the
  /// result is bit-identical to adding the rows one by one (bias gradients).
  void add_col_sums_into(VecT<Scalar>& out) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t capacity_ = 0;
  std::unique_ptr<Scalar[]> data_;
};

using Matrix = MatrixT<double>;
using Vec = VecT<double>;

// --- GEMM kernels ---------------------------------------------------------
//
// C (+)= op(A) * op(B) with blocked, cache-friendly loops. When `accumulate`
// is false C is resized and overwritten; when true C must already have the
// result shape and the product is added into it. Shape mismatches throw
// std::invalid_argument. Each output element's reduction runs in strictly
// increasing k order, so a batch-1 GEMM reproduces the per-sample
// multiply/multiply_transposed/add_outer results bit-for-bit — the property
// the batch-parity suite pins down.

/// C (+)= A * B;  A is (m x k), B is (k x n), C is (m x n).
template <class S>
void gemm(const MatrixT<S>& A, const MatrixT<S>& B, MatrixT<S>& C, bool accumulate = false);
/// C (+)= A^T * B;  A is (k x m), B is (k x n), C is (m x n).
template <class S>
void gemm_tn(const MatrixT<S>& A, const MatrixT<S>& B, MatrixT<S>& C, bool accumulate = false);
/// C (+)= A * B^T;  A is (m x k), B is (n x k), C is (m x n).
template <class S>
void gemm_nt(const MatrixT<S>& A, const MatrixT<S>& B, MatrixT<S>& C, bool accumulate = false);

// --- intra-GEMM threading -------------------------------------------------
//
// When the thread count is > 1, large-enough GEMMs row-block the M dimension
// across a small persistent worker pool. The partition is static and each
// output element is still computed by exactly the serial code path over its
// full k range (rows never split), so there are no cross-thread partial
// reductions to reorder: threaded results are BIT-IDENTICAL to serial at any
// thread count, at both precisions. The knob is process-global; concurrent
// GEMMs (e.g. under core::ParallelRunner) serialize on the pool.

/// Set the GEMM worker count (clamped to [1, 64]; 0 behaves as 1 = serial).
void set_gemm_threads(std::size_t n) noexcept;
/// Current GEMM worker count; initialized once from the HCRL_GEMM_THREADS
/// environment variable (default 1).
std::size_t gemm_threads() noexcept;

// --- small Vec helpers used throughout the nn/ and core/ code -------------

/// X += Y elementwise (shapes must match).
template <class S>
void add_in_place(MatrixT<S>& X, const MatrixT<S>& Y);

/// z = x + y (sizes must match).
template <class S>
VecT<S> add(const VecT<S>& x, const VecT<S>& y);
/// x += y
template <class S>
void add_in_place(VecT<S>& x, const VecT<S>& y);
/// x *= s
template <class S>
void scale_in_place(VecT<S>& x, S s);
/// Dot product.
template <class S>
S dot(const VecT<S>& x, const VecT<S>& y);
/// Euclidean norm.
template <class S>
S norm(const VecT<S>& x);
/// Concatenate a list of vectors.
template <class S>
VecT<S> concat(const std::vector<const VecT<S>*>& parts);
/// Index of the maximum element (first on ties); requires non-empty.
template <class S>
std::size_t argmax(const VecT<S>& x);

/// argmax over a borrowed contiguous range — same semantics as the VecT
/// overload, for callers that read rows of a batched output Matrix in place
/// (core::DecisionService) instead of assembling a temporary Vec.
template <class S>
std::size_t argmax(std::span<const S> x) {
  if (x.empty()) throw std::invalid_argument("argmax: empty span");
  std::size_t best = 0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    if (x[i] > x[best]) best = i;
  }
  return best;
}

/// Per-element value conversion between precisions (the agent boundary).
template <class To, class From>
VecT<To> convert_vec(const VecT<From>& v) {
  VecT<To> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = static_cast<To>(v[i]);
  return out;
}

extern template class MatrixT<float>;
extern template class MatrixT<double>;

}  // namespace hcrl::nn
