// Dense row-major matrix and vector helpers for the NN substrate.
//
// The networks in this project are tiny (tens to a few hundred units), so a
// straightforward double-precision matrix with cache-friendly loops is both
// simple and fast enough; there is intentionally no BLAS dependency. The
// GEMM kernels below are the batched substrate: every batched layer carries
// a (batch x dim) activation Matrix through them, and the per-sample APIs
// are thin wrappers over batch = 1.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace hcrl::nn {

using Vec = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  // Storage is a capacity-tracked raw buffer (not std::vector) so that
  // resize_for_overwrite() can hand out genuinely uninitialized memory:
  // every batched layer output is fully written by a GEMM or elementwise
  // kernel, and zero-filling it first would be a wasted pass per matrix.
  Matrix(const Matrix& other);
  Matrix(Matrix&& other) noexcept;
  Matrix& operator=(const Matrix& other);
  Matrix& operator=(Matrix&& other) noexcept;

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return rows_ * cols_; }

  double& operator()(std::size_t r, std::size_t c) noexcept { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const noexcept { return data_[r * cols_ + c]; }

  double* data() noexcept { return data_.get(); }
  const double* data() const noexcept { return data_.get(); }

  void fill(double v) noexcept;
  void resize(std::size_t rows, std::size_t cols, double fill = 0.0);
  /// Resize leaving element values unspecified (cheap when the shape is
  /// already right); callers must overwrite every element before reading.
  void resize_for_overwrite(std::size_t rows, std::size_t cols);

  /// y = this * x  (rows x cols) * (cols) -> (rows)
  void multiply(const Vec& x, Vec& y) const;
  /// y = this^T * x  (cols) <- (rows)
  void multiply_transposed(const Vec& x, Vec& y) const;
  /// this += outer(a, b): this(r,c) += a[r] * b[c]
  void add_outer(const Vec& a, const Vec& b);

  bool same_shape(const Matrix& other) const noexcept {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  std::string shape_string() const;

  // --- row-oriented helpers for the batched (batch x dim) layout ----------

  /// 1 x n matrix holding `x` as its single row.
  static Matrix from_row(const Vec& x);
  /// rows.size() x rows[0].size() matrix; all rows must share one length.
  static Matrix from_rows(const std::vector<Vec>& rows);

  /// Copy of row r as a Vec.
  Vec row(std::size_t r) const;
  void set_row(std::size_t r, const Vec& x);
  /// this(r, :) += b for every row r (bias broadcast).
  void add_row_broadcast(const Vec& b);
  /// out[c] += sum over rows of this(r, c), accumulated in row order so the
  /// result is bit-identical to adding the rows one by one (bias gradients).
  void add_col_sums_into(Vec& out) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t capacity_ = 0;
  std::unique_ptr<double[]> data_;
};

// --- GEMM kernels ---------------------------------------------------------
//
// C (+)= op(A) * op(B) with blocked, cache-friendly loops. When `accumulate`
// is false C is resized and overwritten; when true C must already have the
// result shape and the product is added into it. Shape mismatches throw
// std::invalid_argument. Each output element's reduction runs in strictly
// increasing k order, so a batch-1 GEMM reproduces the per-sample
// multiply/multiply_transposed/add_outer results bit-for-bit — the property
// the batch-parity suite pins down.

/// C (+)= A * B;  A is (m x k), B is (k x n), C is (m x n).
void gemm(const Matrix& A, const Matrix& B, Matrix& C, bool accumulate = false);
/// C (+)= A^T * B;  A is (k x m), B is (k x n), C is (m x n).
void gemm_tn(const Matrix& A, const Matrix& B, Matrix& C, bool accumulate = false);
/// C (+)= A * B^T;  A is (m x k), B is (n x k), C is (m x n).
void gemm_nt(const Matrix& A, const Matrix& B, Matrix& C, bool accumulate = false);

// --- small Vec helpers used throughout the nn/ and core/ code -------------

/// X += Y elementwise (shapes must match).
void add_in_place(Matrix& X, const Matrix& Y);

/// z = x + y (sizes must match).
Vec add(const Vec& x, const Vec& y);
/// x += y
void add_in_place(Vec& x, const Vec& y);
/// x *= s
void scale_in_place(Vec& x, double s);
/// Dot product.
double dot(const Vec& x, const Vec& y);
/// Euclidean norm.
double norm(const Vec& x);
/// Concatenate a list of vectors.
Vec concat(const std::vector<const Vec*>& parts);
/// Index of the maximum element (first on ties); requires non-empty.
std::size_t argmax(const Vec& x);

}  // namespace hcrl::nn
