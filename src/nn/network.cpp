#include "src/nn/network.hpp"

#include <iterator>
#include <stdexcept>

#include "src/nn/init.hpp"

namespace hcrl::nn {

Network& Network::add(LayerPtr layer) {
  if (!layer) throw std::invalid_argument("Network::add: null layer");
  if (!layers_.empty() && layers_.back()->out_dim() != layer->in_dim()) {
    throw std::invalid_argument("Network::add: dimension mismatch");
  }
  layers_.push_back(std::move(layer));
  return *this;
}

Network& Network::add_dense(std::size_t in_dim, std::size_t out_dim, Activation act,
                            common::Rng& rng) {
  auto params = std::make_shared<DenseParams>(out_dim, in_dim);
  init_dense(*params, rng);
  return add_shared_dense(std::move(params), act);
}

Network& Network::add_shared_dense(DenseParamsPtr params, Activation act) {
  const std::size_t out = params->out_dim();
  add(std::make_unique<Dense>(std::move(params)));
  if (act != Activation::kIdentity) {
    add(std::make_unique<ActivationLayer>(act, out));
  }
  return *this;
}

std::size_t Network::in_dim() const {
  if (layers_.empty()) throw std::logic_error("Network: empty");
  return layers_.front()->in_dim();
}

std::size_t Network::out_dim() const {
  if (layers_.empty()) throw std::logic_error("Network: empty");
  return layers_.back()->out_dim();
}

Matrix Network::forward_batch(Matrix X) {
  for (auto& layer : layers_) X = layer->forward_batch(std::move(X));
  return X;
}

Matrix Network::backward_batch(const Matrix& dY, bool want_input_grad) {
  Matrix G = dY;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    const bool innermost = std::next(it) == layers_.rend();
    G = (*it)->backward_batch(G, want_input_grad || !innermost);
  }
  return G;
}

Matrix Network::predict_batch(Matrix X) {
  // Inference: no caches are pushed at all, so predicting is safe even in
  // the middle of an un-backpropagated training pass.
  for (auto& layer : layers_) X = layer->forward_batch(std::move(X), /*keep_cache=*/false);
  return X;
}

Vec Network::forward(const Vec& x) { return forward_batch(Matrix::from_row(x)).row(0); }

Vec Network::backward(const Vec& dy, bool want_input_grad) {
  Matrix dX = backward_batch(Matrix::from_row(dy), want_input_grad);
  return want_input_grad ? dX.row(0) : Vec();
}

Vec Network::predict(const Vec& x) { return predict_batch(Matrix::from_row(x)).row(0); }

void Network::clear_cache() {
  for (auto& layer : layers_) layer->clear_cache();
}

void Network::zero_grad() {
  for (const auto& p : params()) p->zero_grad();
}

std::vector<ParamBlockPtr> Network::params() const {
  std::vector<ParamBlockPtr> out;
  for (const auto& layer : layers_) layer->collect_params(out);
  return out;
}

std::size_t Network::param_count() const {
  std::size_t n = 0;
  for (const auto& p : params()) n += p->param_count();
  return n;
}

}  // namespace hcrl::nn
