#include "src/nn/network.hpp"

#include <iterator>
#include <stdexcept>

#include "src/nn/init.hpp"

namespace hcrl::nn {

template <class S>
NetworkT<S>& NetworkT<S>::add(LayerPtrT<S> layer) {
  if (!layer) throw std::invalid_argument("Network::add: null layer");
  if (!layers_.empty() && layers_.back()->out_dim() != layer->in_dim()) {
    throw std::invalid_argument("Network::add: dimension mismatch");
  }
  layers_.push_back(std::move(layer));
  return *this;
}

template <class S>
NetworkT<S>& NetworkT<S>::add_dense(std::size_t in_dim, std::size_t out_dim, Activation act,
                                    common::Rng& rng) {
  auto params = std::make_shared<DenseParamsT<S>>(out_dim, in_dim);
  init_dense(*params, rng);
  return add_shared_dense(std::move(params), act);
}

template <class S>
NetworkT<S>& NetworkT<S>::add_shared_dense(DenseParamsPtrT<S> params, Activation act) {
  const std::size_t out = params->out_dim();
  add(std::make_unique<DenseT<S>>(std::move(params)));
  if (act != Activation::kIdentity) {
    add(std::make_unique<ActivationLayerT<S>>(act, out));
  }
  return *this;
}

template <class S>
std::size_t NetworkT<S>::in_dim() const {
  if (layers_.empty()) throw std::logic_error("Network: empty");
  return layers_.front()->in_dim();
}

template <class S>
std::size_t NetworkT<S>::out_dim() const {
  if (layers_.empty()) throw std::logic_error("Network: empty");
  return layers_.back()->out_dim();
}

template <class S>
MatrixT<S> NetworkT<S>::forward_batch(MatrixT<S> X) {
  for (auto& layer : layers_) X = layer->forward_batch(std::move(X));
  return X;
}

template <class S>
MatrixT<S> NetworkT<S>::backward_batch(const MatrixT<S>& dY, bool want_input_grad) {
  MatrixT<S> G = dY;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    const bool innermost = std::next(it) == layers_.rend();
    G = (*it)->backward_batch(G, want_input_grad || !innermost);
  }
  return G;
}

template <class S>
MatrixT<S> NetworkT<S>::predict_batch(MatrixT<S> X) {
  // Inference: no caches are pushed at all, so predicting is safe even in
  // the middle of an un-backpropagated training pass.
  for (auto& layer : layers_) X = layer->forward_batch(std::move(X), /*keep_cache=*/false);
  return X;
}

template <class S>
VecT<S> NetworkT<S>::forward(const VecT<S>& x) {
  return forward_batch(MatrixT<S>::from_row(x)).row(0);
}

template <class S>
VecT<S> NetworkT<S>::backward(const VecT<S>& dy, bool want_input_grad) {
  MatrixT<S> dX = backward_batch(MatrixT<S>::from_row(dy), want_input_grad);
  return want_input_grad ? dX.row(0) : VecT<S>();
}

template <class S>
VecT<S> NetworkT<S>::predict(const VecT<S>& x) {
  return predict_batch(MatrixT<S>::from_row(x)).row(0);
}

template <class S>
void NetworkT<S>::clear_cache() {
  for (auto& layer : layers_) layer->clear_cache();
}

template <class S>
void NetworkT<S>::zero_grad() {
  for (const auto& p : params()) p->zero_grad();
}

template <class S>
std::vector<ParamBlockPtrT<S>> NetworkT<S>::params() const {
  std::vector<ParamBlockPtrT<S>> out;
  for (const auto& layer : layers_) layer->collect_params(out);
  return out;
}

template <class S>
std::size_t NetworkT<S>::param_count() const {
  std::size_t n = 0;
  for (const auto& p : params()) n += p->param_count();
  return n;
}

template class NetworkT<float>;
template class NetworkT<double>;

}  // namespace hcrl::nn
