// Sequential feed-forward network built from layers.
#pragma once

#include <initializer_list>
#include <memory>
#include <vector>

#include "src/common/rng.hpp"
#include "src/nn/layer.hpp"

namespace hcrl::nn {

class Network {
 public:
  Network() = default;

  /// Append a layer; dimensions must chain (checked).
  Network& add(LayerPtr layer);
  /// Convenience: append a freshly-initialized dense layer + activation.
  Network& add_dense(std::size_t in_dim, std::size_t out_dim, Activation act, common::Rng& rng);
  /// Append a dense layer over an existing (shared) parameter block.
  Network& add_shared_dense(DenseParamsPtr params, Activation act);

  std::size_t in_dim() const;
  std::size_t out_dim() const;
  bool empty() const noexcept { return layers_.empty(); }

  // Batched path: a (batch x dim) activation matrix flows through the GEMM
  // kernels; one call handles a whole minibatch.
  Matrix forward_batch(Matrix X);
  /// Backward through the whole stack; returns dL/dX (batch x in_dim).
  /// Trainers that discard dL/dX pass want_input_grad = false to skip the
  /// first layer's input-gradient GEMM (the result is then empty).
  Matrix backward_batch(const Matrix& dY, bool want_input_grad = true);
  /// Batched forward without keeping caches (inference only).
  Matrix predict_batch(Matrix X);

  // Per-sample wrappers over batch = 1 (same kernels, same results).
  Vec forward(const Vec& x);
  /// Backward through the whole stack; returns dL/dx (see backward_batch).
  Vec backward(const Vec& dy, bool want_input_grad = true);
  /// Forward without keeping caches (inference only).
  Vec predict(const Vec& x);

  void clear_cache();
  void zero_grad();
  std::vector<ParamBlockPtr> params() const;
  std::size_t param_count() const;

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace hcrl::nn
