// Sequential feed-forward network built from layers.
#pragma once

#include <initializer_list>
#include <memory>
#include <vector>

#include "src/common/rng.hpp"
#include "src/nn/layer.hpp"

namespace hcrl::nn {

class Network {
 public:
  Network() = default;

  /// Append a layer; dimensions must chain (checked).
  Network& add(LayerPtr layer);
  /// Convenience: append a freshly-initialized dense layer + activation.
  Network& add_dense(std::size_t in_dim, std::size_t out_dim, Activation act, common::Rng& rng);
  /// Append a dense layer over an existing (shared) parameter block.
  Network& add_shared_dense(DenseParamsPtr params, Activation act);

  std::size_t in_dim() const;
  std::size_t out_dim() const;
  bool empty() const noexcept { return layers_.empty(); }

  Vec forward(const Vec& x);
  /// Backward through the whole stack; returns dL/dx.
  Vec backward(const Vec& dy);
  /// Forward without keeping caches (inference only).
  Vec predict(const Vec& x);

  void clear_cache();
  void zero_grad();
  std::vector<ParamBlockPtr> params() const;
  std::size_t param_count() const;

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace hcrl::nn
