// Sequential feed-forward network built from layers.
//
// Templated on the Scalar type (float/double instantiations in network.cpp);
// `Network` aliases the double instantiation.
#pragma once

#include <initializer_list>
#include <memory>
#include <vector>

#include "src/common/rng.hpp"
#include "src/nn/layer.hpp"

namespace hcrl::nn {

template <class S>
class NetworkT {
 public:
  NetworkT() = default;

  /// Append a layer; dimensions must chain (checked).
  NetworkT& add(LayerPtrT<S> layer);
  /// Convenience: append a freshly-initialized dense layer + activation.
  NetworkT& add_dense(std::size_t in_dim, std::size_t out_dim, Activation act, common::Rng& rng);
  /// Append a dense layer over an existing (shared) parameter block.
  NetworkT& add_shared_dense(DenseParamsPtrT<S> params, Activation act);

  std::size_t in_dim() const;
  std::size_t out_dim() const;
  bool empty() const noexcept { return layers_.empty(); }

  // Batched path: a (batch x dim) activation matrix flows through the GEMM
  // kernels; one call handles a whole minibatch.
  MatrixT<S> forward_batch(MatrixT<S> X);
  /// Backward through the whole stack; returns dL/dX (batch x in_dim).
  /// Trainers that discard dL/dX pass want_input_grad = false to skip the
  /// first layer's input-gradient GEMM (the result is then empty).
  MatrixT<S> backward_batch(const MatrixT<S>& dY, bool want_input_grad = true);
  /// Batched forward without keeping caches (inference only).
  MatrixT<S> predict_batch(MatrixT<S> X);

  // Per-sample wrappers over batch = 1 (same kernels, same results).
  VecT<S> forward(const VecT<S>& x);
  /// Backward through the whole stack; returns dL/dx (see backward_batch).
  VecT<S> backward(const VecT<S>& dy, bool want_input_grad = true);
  /// Forward without keeping caches (inference only).
  VecT<S> predict(const VecT<S>& x);

  void clear_cache();
  void zero_grad();
  std::vector<ParamBlockPtrT<S>> params() const;
  std::size_t param_count() const;

 private:
  std::vector<LayerPtrT<S>> layers_;
};

using Network = NetworkT<double>;

extern template class NetworkT<float>;
extern template class NetworkT<double>;

}  // namespace hcrl::nn
