#include "src/nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace hcrl::nn {

double clip_grad_norm(const std::vector<ParamBlockPtr>& params, double max_norm) {
  if (max_norm <= 0.0) throw std::invalid_argument("clip_grad_norm: max_norm must be > 0");
  auto segs = gather_segments(params);
  double sq = 0.0;
  for (const auto& s : segs) {
    for (std::size_t i = 0; i < s.n; ++i) sq += s.grad[i] * s.grad[i];
  }
  const double total = std::sqrt(sq);
  if (total > max_norm) {
    const double scale = max_norm / total;
    for (auto& s : segs) {
      for (std::size_t i = 0; i < s.n; ++i) s.grad[i] *= scale;
    }
  }
  return total;
}

Sgd::Sgd(std::vector<ParamBlockPtr> params, double lr, double momentum)
    : params_(std::move(params)), lr_(lr), momentum_(momentum) {
  segments_ = gather_segments(params_);
  velocity_.reserve(segments_.size());
  for (const auto& s : segments_) velocity_.emplace_back(s.n, 0.0);
}

void Sgd::step() {
  for (std::size_t k = 0; k < segments_.size(); ++k) {
    auto& s = segments_[k];
    auto& vel = velocity_[k];
    for (std::size_t i = 0; i < s.n; ++i) {
      vel[i] = momentum_ * vel[i] + s.grad[i];
      s.value[i] -= lr_ * vel[i];
    }
  }
}

void Sgd::zero_grad() {
  for (const auto& p : params_) p->zero_grad();
}

Adam::Adam(std::vector<ParamBlockPtr> params) : Adam(std::move(params), Options{}) {}

Adam::Adam(std::vector<ParamBlockPtr> params, Options opts)
    : params_(std::move(params)), opts_(opts) {
  if (opts_.lr <= 0.0) throw std::invalid_argument("Adam: lr must be > 0");
  segments_ = gather_segments(params_);
  m_.reserve(segments_.size());
  v_.reserve(segments_.size());
  for (const auto& s : segments_) {
    m_.emplace_back(s.n, 0.0);
    v_.emplace_back(s.n, 0.0);
  }
}

void Adam::step() {
  ++t_;
  // Hoist the bias corrections into reciprocals: one divide and one sqrt per
  // element instead of three divides, and the loop body stays branch-free so
  // it can vectorize. This is the whole-network fixed cost of every SGD
  // step, so it shows up directly in the train-step benchmarks.
  const double inv_bc1 = 1.0 / (1.0 - std::pow(opts_.beta1, static_cast<double>(t_)));
  const double inv_bc2 = 1.0 / (1.0 - std::pow(opts_.beta2, static_cast<double>(t_)));
  const double one_minus_beta1 = 1.0 - opts_.beta1;
  const double one_minus_beta2 = 1.0 - opts_.beta2;
  const double lr_decay = opts_.lr * opts_.weight_decay;
  const bool decay = opts_.weight_decay > 0.0;
  for (std::size_t k = 0; k < segments_.size(); ++k) {
    auto& s = segments_[k];
    double* m = m_[k].data();
    double* v = v_[k].data();
    for (std::size_t i = 0; i < s.n; ++i) {
      const double g = s.grad[i];
      m[i] = opts_.beta1 * m[i] + one_minus_beta1 * g;
      v[i] = opts_.beta2 * v[i] + one_minus_beta2 * g * g;
      const double m_hat = m[i] * inv_bc1;
      const double v_hat = v[i] * inv_bc2;
      double update = opts_.lr * m_hat / (std::sqrt(v_hat) + opts_.epsilon);
      if (decay) update += lr_decay * s.value[i];
      s.value[i] -= update;
    }
  }
}

void Adam::zero_grad() {
  for (const auto& p : params_) p->zero_grad();
}

}  // namespace hcrl::nn
