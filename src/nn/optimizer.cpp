#include "src/nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace hcrl::nn {

template <class S>
double clip_grad_norm(const std::vector<ParamBlockPtrT<S>>& params, double max_norm) {
  if (max_norm <= 0.0) throw std::invalid_argument("clip_grad_norm: max_norm must be > 0");
  auto segs = gather_segments(params);
  double sq = 0.0;
  for (const auto& s : segs) {
    for (std::size_t i = 0; i < s.n; ++i) {
      sq += static_cast<double>(s.grad[i]) * static_cast<double>(s.grad[i]);
    }
  }
  const double total = std::sqrt(sq);
  if (total > max_norm) {
    const S scale = static_cast<S>(max_norm / total);
    for (auto& s : segs) {
      for (std::size_t i = 0; i < s.n; ++i) s.grad[i] *= scale;
    }
  }
  return total;
}

template <class S>
SgdT<S>::SgdT(std::vector<ParamBlockPtrT<S>> params, double lr, double momentum)
    : params_(std::move(params)), lr_(lr), momentum_(momentum) {
  segments_ = gather_segments(params_);
  velocity_.reserve(segments_.size());
  for (const auto& s : segments_) velocity_.emplace_back(s.n, S(0));
}

template <class S>
void SgdT<S>::step() {
  const S lr = static_cast<S>(lr_);
  const S momentum = static_cast<S>(momentum_);
  for (std::size_t k = 0; k < segments_.size(); ++k) {
    auto& s = segments_[k];
    auto& vel = velocity_[k];
    for (std::size_t i = 0; i < s.n; ++i) {
      vel[i] = momentum * vel[i] + s.grad[i];
      s.value[i] -= lr * vel[i];
    }
  }
}

template <class S>
void SgdT<S>::zero_grad() {
  for (const auto& p : params_) p->zero_grad();
}

template <class S>
AdamT<S>::AdamT(std::vector<ParamBlockPtrT<S>> params) : AdamT(std::move(params), Options{}) {}

template <class S>
AdamT<S>::AdamT(std::vector<ParamBlockPtrT<S>> params, Options opts)
    : params_(std::move(params)), opts_(opts) {
  if (opts_.lr <= 0.0) throw std::invalid_argument("Adam: lr must be > 0");
  segments_ = gather_segments(params_);
  m_.reserve(segments_.size());
  v_.reserve(segments_.size());
  for (const auto& s : segments_) {
    m_.emplace_back(s.n, S(0));
    v_.emplace_back(s.n, S(0));
  }
}

template <class S>
void AdamT<S>::step() {
  ++t_;
  // Hoist the bias corrections into reciprocals: one divide and one sqrt per
  // element instead of three divides, and the loop body stays branch-free so
  // it can vectorize. This is the whole-network fixed cost of every SGD
  // step, so it shows up directly in the train-step benchmarks. The hoisted
  // constants are computed in double, then cast once to the element type.
  const S inv_bc1 = static_cast<S>(1.0 / (1.0 - std::pow(opts_.beta1, static_cast<double>(t_))));
  const S inv_bc2 = static_cast<S>(1.0 / (1.0 - std::pow(opts_.beta2, static_cast<double>(t_))));
  const S beta1 = static_cast<S>(opts_.beta1);
  const S beta2 = static_cast<S>(opts_.beta2);
  const S one_minus_beta1 = S(1) - beta1;
  const S one_minus_beta2 = S(1) - beta2;
  const S lr = static_cast<S>(opts_.lr);
  const S epsilon = static_cast<S>(opts_.epsilon);
  const S lr_decay = static_cast<S>(opts_.lr * opts_.weight_decay);
  const bool decay = opts_.weight_decay > 0.0;
  for (std::size_t k = 0; k < segments_.size(); ++k) {
    auto& s = segments_[k];
    S* m = m_[k].data();
    S* v = v_[k].data();
    for (std::size_t i = 0; i < s.n; ++i) {
      const S g = s.grad[i];
      m[i] = beta1 * m[i] + one_minus_beta1 * g;
      v[i] = beta2 * v[i] + one_minus_beta2 * g * g;
      const S m_hat = m[i] * inv_bc1;
      const S v_hat = v[i] * inv_bc2;
      S update = lr * m_hat / (std::sqrt(v_hat) + epsilon);
      if (decay) update += lr_decay * s.value[i];
      s.value[i] -= update;
    }
  }
}

template <class S>
void AdamT<S>::zero_grad() {
  for (const auto& p : params_) p->zero_grad();
}

template double clip_grad_norm<float>(const std::vector<ParamBlockPtrT<float>>&, double);
template double clip_grad_norm<double>(const std::vector<ParamBlockPtrT<double>>&, double);
template class SgdT<float>;
template class SgdT<double>;
template class AdamT<float>;
template class AdamT<double>;

}  // namespace hcrl::nn
