// Optimizers over parameter blocks, plus global-norm gradient clipping.
//
// The paper trains the global-tier DNN and the LSTM predictor with Adam
// (Kingma & Ba) and clips gradients to a global norm of 10. Templated on
// the Scalar type of the parameters (float/double instantiations in
// optimizer.cpp); hyper-parameters stay double and the per-element update
// runs in Scalar. The global-norm accumulation always runs in double so the
// f32 path cannot overflow/saturate the squared-norm sum.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/nn/param.hpp"

namespace hcrl::nn {

/// Scale all gradients so their global L2 norm is at most max_norm.
/// Returns the pre-clip norm.
template <class S>
double clip_grad_norm(const std::vector<ParamBlockPtrT<S>>& params, double max_norm);

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Apply one update using the currently-accumulated gradients,
  /// then leave gradients untouched (caller decides when to zero).
  virtual void step() = 0;
  virtual void zero_grad() = 0;
};

template <class S>
class SgdT final : public Optimizer {
 public:
  SgdT(std::vector<ParamBlockPtrT<S>> params, double lr, double momentum = 0.0);

  void step() override;
  void zero_grad() override;
  void set_lr(double lr) noexcept { lr_ = lr; }
  double lr() const noexcept { return lr_; }

 private:
  std::vector<ParamBlockPtrT<S>> params_;
  double lr_;
  double momentum_;
  std::vector<std::vector<S>> velocity_;  // one per segment
  std::vector<ParamSegmentT<S>> segments_;
};

/// Adam with bias correction; epsilon in the denominator as in the paper's
/// reference [27] (Kingma & Ba 2014).
struct AdamOptions {
  double lr = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  double weight_decay = 0.0;  // decoupled (AdamW-style) when > 0
};

template <class S>
class AdamT final : public Optimizer {
 public:
  using Options = AdamOptions;

  explicit AdamT(std::vector<ParamBlockPtrT<S>> params);
  AdamT(std::vector<ParamBlockPtrT<S>> params, Options opts);

  void step() override;
  void zero_grad() override;
  void set_lr(double lr) noexcept { opts_.lr = lr; }
  double lr() const noexcept { return opts_.lr; }
  std::int64_t steps_taken() const noexcept { return t_; }

 private:
  std::vector<ParamBlockPtrT<S>> params_;
  Options opts_;
  std::int64_t t_ = 0;
  std::vector<std::vector<S>> m_;  // first moment, one per segment
  std::vector<std::vector<S>> v_;  // second moment
  std::vector<ParamSegmentT<S>> segments_;
};

using Sgd = SgdT<double>;
using Adam = AdamT<double>;

extern template class SgdT<float>;
extern template class SgdT<double>;
extern template class AdamT<float>;
extern template class AdamT<double>;

}  // namespace hcrl::nn
