// Optimizers over parameter blocks, plus global-norm gradient clipping.
//
// The paper trains the global-tier DNN and the LSTM predictor with Adam
// (Kingma & Ba) and clips gradients to a global norm of 10.
#pragma once

#include <memory>
#include <vector>

#include "src/nn/param.hpp"

namespace hcrl::nn {

/// Scale all gradients so their global L2 norm is at most max_norm.
/// Returns the pre-clip norm.
double clip_grad_norm(const std::vector<ParamBlockPtr>& params, double max_norm);

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Apply one update using the currently-accumulated gradients,
  /// then leave gradients untouched (caller decides when to zero).
  virtual void step() = 0;
  virtual void zero_grad() = 0;
};

class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<ParamBlockPtr> params, double lr, double momentum = 0.0);

  void step() override;
  void zero_grad() override;
  void set_lr(double lr) noexcept { lr_ = lr; }
  double lr() const noexcept { return lr_; }

 private:
  std::vector<ParamBlockPtr> params_;
  double lr_;
  double momentum_;
  std::vector<std::vector<double>> velocity_;  // one per segment
  std::vector<ParamSegment> segments_;
};

/// Adam with bias correction; epsilon in the denominator as in the paper's
/// reference [27] (Kingma & Ba 2014).
class Adam final : public Optimizer {
 public:
  struct Options {
    double lr = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    double weight_decay = 0.0;  // decoupled (AdamW-style) when > 0
  };

  explicit Adam(std::vector<ParamBlockPtr> params);
  Adam(std::vector<ParamBlockPtr> params, Options opts);

  void step() override;
  void zero_grad() override;
  void set_lr(double lr) noexcept { opts_.lr = lr; }
  double lr() const noexcept { return opts_.lr; }
  std::int64_t steps_taken() const noexcept { return t_; }

 private:
  std::vector<ParamBlockPtr> params_;
  Options opts_;
  std::int64_t t_ = 0;
  std::vector<std::vector<double>> m_;  // first moment, one per segment
  std::vector<std::vector<double>> v_;  // second moment
  std::vector<ParamSegment> segments_;
};

}  // namespace hcrl::nn
