#include "src/nn/param.hpp"

#include <stdexcept>

namespace hcrl::nn {

template <class S>
std::vector<ParamSegmentT<S>> gather_segments(const std::vector<ParamBlockPtrT<S>>& params) {
  std::vector<ParamSegmentT<S>> segs;
  for (const auto& p : params) {
    if (!p) throw std::invalid_argument("gather_segments: null param block");
    p->append_segments(segs);
  }
  return segs;
}

template <class S>
void copy_param_values(const std::vector<ParamBlockPtrT<S>>& src,
                       const std::vector<ParamBlockPtrT<S>>& dst) {
  auto s = gather_segments(src);
  auto d = gather_segments(dst);
  if (s.size() != d.size()) throw std::invalid_argument("copy_param_values: segment count mismatch");
  for (std::size_t k = 0; k < s.size(); ++k) {
    if (s[k].n != d[k].n) throw std::invalid_argument("copy_param_values: segment size mismatch");
    for (std::size_t i = 0; i < s[k].n; ++i) d[k].value[i] = s[k].value[i];
  }
}

template <class S>
std::size_t total_param_count(const std::vector<ParamBlockPtrT<S>>& params) {
  std::size_t n = 0;
  for (const auto& s : gather_segments(params)) n += s.n;
  return n;
}

template <class S>
std::vector<double> flatten_param_values(const std::vector<ParamBlockPtrT<S>>& params) {
  std::vector<double> out;
  for (const auto& s : gather_segments(params)) {
    for (std::size_t i = 0; i < s.n; ++i) out.push_back(static_cast<double>(s.value[i]));
  }
  return out;
}

#define HCRL_NN_INSTANTIATE_PARAM(S)                                                      \
  template std::vector<ParamSegmentT<S>> gather_segments<S>(                              \
      const std::vector<ParamBlockPtrT<S>>&);                                             \
  template void copy_param_values<S>(const std::vector<ParamBlockPtrT<S>>&,               \
                                     const std::vector<ParamBlockPtrT<S>>&);              \
  template std::size_t total_param_count<S>(const std::vector<ParamBlockPtrT<S>>&);       \
  template std::vector<double> flatten_param_values<S>(const std::vector<ParamBlockPtrT<S>>&);

HCRL_NN_INSTANTIATE_PARAM(float)
HCRL_NN_INSTANTIATE_PARAM(double)
#undef HCRL_NN_INSTANTIATE_PARAM

}  // namespace hcrl::nn
