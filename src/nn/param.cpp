#include "src/nn/param.hpp"

#include <stdexcept>

namespace hcrl::nn {

std::vector<ParamSegment> gather_segments(const std::vector<ParamBlockPtr>& params) {
  std::vector<ParamSegment> segs;
  for (const auto& p : params) {
    if (!p) throw std::invalid_argument("gather_segments: null param block");
    p->append_segments(segs);
  }
  return segs;
}

void copy_param_values(const std::vector<ParamBlockPtr>& src,
                       const std::vector<ParamBlockPtr>& dst) {
  auto s = gather_segments(src);
  auto d = gather_segments(dst);
  if (s.size() != d.size()) throw std::invalid_argument("copy_param_values: segment count mismatch");
  for (std::size_t k = 0; k < s.size(); ++k) {
    if (s[k].n != d[k].n) throw std::invalid_argument("copy_param_values: segment size mismatch");
    for (std::size_t i = 0; i < s[k].n; ++i) d[k].value[i] = s[k].value[i];
  }
}

std::size_t total_param_count(const std::vector<ParamBlockPtr>& params) {
  std::size_t n = 0;
  for (const auto& s : gather_segments(params)) n += s.n;
  return n;
}

}  // namespace hcrl::nn
