// Parameter blocks: the unit of ownership, sharing and optimization.
//
// Layers hold parameters through shared_ptr<...Params>, which is exactly how
// the paper's weight sharing (Fig. 6) is expressed: K autoencoders (and the
// K Sub-Q heads) hold the *same* parameter block, so every training sample
// updates the shared weights and gradients accumulate across uses.
//
// Everything is templated on the Scalar type (float/double instantiations in
// param.cpp); the unsuffixed names alias the double instantiation.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "src/nn/matrix.hpp"

namespace hcrl::nn {

/// A view over one contiguous run of parameters and its gradient.
template <class S>
struct ParamSegmentT {
  S* value = nullptr;
  S* grad = nullptr;
  std::size_t n = 0;
};

/// Anything the optimizer can update.
template <class S>
class ParamBlockT {
 public:
  virtual ~ParamBlockT() = default;

  /// Append (value, grad) segments. Order must be stable across calls.
  virtual void append_segments(std::vector<ParamSegmentT<S>>& out) = 0;

  std::size_t param_count() {
    std::vector<ParamSegmentT<S>> segs;
    append_segments(segs);
    std::size_t n = 0;
    for (const auto& s : segs) n += s.n;
    return n;
  }

  void zero_grad() {
    std::vector<ParamSegmentT<S>> segs;
    append_segments(segs);
    for (auto& s : segs) {
      for (std::size_t i = 0; i < s.n; ++i) s.grad[i] = S(0);
    }
  }
};

template <class S>
using ParamBlockPtrT = std::shared_ptr<ParamBlockT<S>>;

/// Parameters of a fully-connected layer: y = W x + b.
template <class S>
class DenseParamsT final : public ParamBlockT<S> {
 public:
  DenseParamsT(std::size_t out_dim, std::size_t in_dim)
      : W(out_dim, in_dim), b(out_dim, S(0)), gW(out_dim, in_dim), gb(out_dim, S(0)) {}

  std::size_t in_dim() const noexcept { return W.cols(); }
  std::size_t out_dim() const noexcept { return W.rows(); }

  void append_segments(std::vector<ParamSegmentT<S>>& out) override {
    out.push_back({W.data(), gW.data(), W.size()});
    out.push_back({b.data(), gb.data(), b.size()});
  }

  MatrixT<S> W;
  VecT<S> b;
  MatrixT<S> gW;
  VecT<S> gb;
};

template <class S>
using DenseParamsPtrT = std::shared_ptr<DenseParamsT<S>>;

/// Parameters of an LSTM layer. Gates are packed [i, f, g, o] along rows.
template <class S>
class LstmParamsT final : public ParamBlockT<S> {
 public:
  LstmParamsT(std::size_t hidden_dim, std::size_t in_dim)
      : Wx(4 * hidden_dim, in_dim),
        Wh(4 * hidden_dim, hidden_dim),
        b(4 * hidden_dim, S(0)),
        gWx(4 * hidden_dim, in_dim),
        gWh(4 * hidden_dim, hidden_dim),
        gb(4 * hidden_dim, S(0)),
        hidden_(hidden_dim),
        in_(in_dim) {}

  std::size_t hidden_dim() const noexcept { return hidden_; }
  std::size_t in_dim() const noexcept { return in_; }

  void append_segments(std::vector<ParamSegmentT<S>>& out) override {
    out.push_back({Wx.data(), gWx.data(), Wx.size()});
    out.push_back({Wh.data(), gWh.data(), Wh.size()});
    out.push_back({b.data(), gb.data(), b.size()});
  }

  MatrixT<S> Wx;  // input->gates
  MatrixT<S> Wh;  // hidden->gates
  VecT<S> b;
  MatrixT<S> gWx;
  MatrixT<S> gWh;
  VecT<S> gb;

 private:
  std::size_t hidden_;
  std::size_t in_;
};

template <class S>
using LstmParamsPtrT = std::shared_ptr<LstmParamsT<S>>;

using ParamSegment = ParamSegmentT<double>;
using ParamBlock = ParamBlockT<double>;
using ParamBlockPtr = ParamBlockPtrT<double>;
using DenseParams = DenseParamsT<double>;
using DenseParamsPtr = DenseParamsPtrT<double>;
using LstmParams = LstmParamsT<double>;
using LstmParamsPtr = LstmParamsPtrT<double>;

/// Flatten the segments of a list of blocks (order = registration order).
template <class S>
std::vector<ParamSegmentT<S>> gather_segments(const std::vector<ParamBlockPtrT<S>>& params);

/// Copy parameter *values* from src to dst; shapes must match in total size
/// and per-segment sizes (used for target-network sync).
template <class S>
void copy_param_values(const std::vector<ParamBlockPtrT<S>>& src,
                       const std::vector<ParamBlockPtrT<S>>& dst);

/// Total scalar parameter count across blocks.
template <class S>
std::size_t total_param_count(const std::vector<ParamBlockPtrT<S>>& params);

/// Flattened copy of all parameter values as doubles (precision-agnostic —
/// what the type-erased agent boundary exposes for tests and tools).
template <class S>
std::vector<double> flatten_param_values(const std::vector<ParamBlockPtrT<S>>& params);

}  // namespace hcrl::nn
