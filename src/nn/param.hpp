// Parameter blocks: the unit of ownership, sharing and optimization.
//
// Layers hold parameters through shared_ptr<...Params>, which is exactly how
// the paper's weight sharing (Fig. 6) is expressed: K autoencoders (and the
// K Sub-Q heads) hold the *same* parameter block, so every training sample
// updates the shared weights and gradients accumulate across uses.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "src/nn/matrix.hpp"

namespace hcrl::nn {

/// A view over one contiguous run of parameters and its gradient.
struct ParamSegment {
  double* value = nullptr;
  double* grad = nullptr;
  std::size_t n = 0;
};

/// Anything the optimizer can update.
class ParamBlock {
 public:
  virtual ~ParamBlock() = default;

  /// Append (value, grad) segments. Order must be stable across calls.
  virtual void append_segments(std::vector<ParamSegment>& out) = 0;

  std::size_t param_count() {
    std::vector<ParamSegment> segs;
    append_segments(segs);
    std::size_t n = 0;
    for (const auto& s : segs) n += s.n;
    return n;
  }

  void zero_grad() {
    std::vector<ParamSegment> segs;
    append_segments(segs);
    for (auto& s : segs) {
      for (std::size_t i = 0; i < s.n; ++i) s.grad[i] = 0.0;
    }
  }
};

using ParamBlockPtr = std::shared_ptr<ParamBlock>;

/// Parameters of a fully-connected layer: y = W x + b.
class DenseParams final : public ParamBlock {
 public:
  DenseParams(std::size_t out_dim, std::size_t in_dim)
      : W(out_dim, in_dim), b(out_dim, 0.0), gW(out_dim, in_dim), gb(out_dim, 0.0) {}

  std::size_t in_dim() const noexcept { return W.cols(); }
  std::size_t out_dim() const noexcept { return W.rows(); }

  void append_segments(std::vector<ParamSegment>& out) override {
    out.push_back({W.data(), gW.data(), W.size()});
    out.push_back({b.data(), gb.data(), b.size()});
  }

  Matrix W;
  Vec b;
  Matrix gW;
  Vec gb;
};

using DenseParamsPtr = std::shared_ptr<DenseParams>;

/// Parameters of an LSTM layer. Gates are packed [i, f, g, o] along rows.
class LstmParams final : public ParamBlock {
 public:
  LstmParams(std::size_t hidden_dim, std::size_t in_dim)
      : Wx(4 * hidden_dim, in_dim),
        Wh(4 * hidden_dim, hidden_dim),
        b(4 * hidden_dim, 0.0),
        gWx(4 * hidden_dim, in_dim),
        gWh(4 * hidden_dim, hidden_dim),
        gb(4 * hidden_dim, 0.0),
        hidden_(hidden_dim),
        in_(in_dim) {}

  std::size_t hidden_dim() const noexcept { return hidden_; }
  std::size_t in_dim() const noexcept { return in_; }

  void append_segments(std::vector<ParamSegment>& out) override {
    out.push_back({Wx.data(), gWx.data(), Wx.size()});
    out.push_back({Wh.data(), gWh.data(), Wh.size()});
    out.push_back({b.data(), gb.data(), b.size()});
  }

  Matrix Wx;  // input->gates
  Matrix Wh;  // hidden->gates
  Vec b;
  Matrix gWx;
  Matrix gWh;
  Vec gb;

 private:
  std::size_t hidden_;
  std::size_t in_;
};

using LstmParamsPtr = std::shared_ptr<LstmParams>;

/// Flatten the segments of a list of blocks (order = registration order).
std::vector<ParamSegment> gather_segments(const std::vector<ParamBlockPtr>& params);

/// Copy parameter *values* from src to dst; shapes must match in total size
/// and per-segment sizes (used for target-network sync).
void copy_param_values(const std::vector<ParamBlockPtr>& src,
                       const std::vector<ParamBlockPtr>& dst);

/// Total scalar parameter count across blocks.
std::size_t total_param_count(const std::vector<ParamBlockPtr>& params);

}  // namespace hcrl::nn
