#include "src/nn/precision.hpp"

#include <cstdlib>
#include <stdexcept>

namespace hcrl::nn {

std::string to_string(Precision p) { return p == Precision::kF32 ? "f32" : "f64"; }

Precision precision_from_string(const std::string& name) {
  if (name == "f32" || name == "float") return Precision::kF32;
  if (name == "f64" || name == "double") return Precision::kF64;
  throw std::invalid_argument("precision_from_string: unknown precision '" + name +
                              "' (want f32 or f64)");
}

Precision default_precision() {
  // Read once: flipping the environment mid-process would otherwise let two
  // halves of one experiment disagree about the default.
  static const Precision p = [] {
    const char* env = std::getenv("HCRL_PRECISION");
    if (env == nullptr || *env == '\0') return Precision::kF64;
    return precision_from_string(env);
  }();
  return p;
}

}  // namespace hcrl::nn
