// Compute precision of the NN substrate.
//
// Every class in src/nn is templated on a Scalar type and instantiated for
// float and double; Precision is the runtime-facing selector that the agent
// boundary (rl::DqnAgent, core::GroupedQNetwork, core::LstmPredictor) and
// the experiment config use to pick an instantiation. The f32 mode halves
// cache/bandwidth pressure and doubles SIMD lanes in the GEMM-bound paths;
// Q-learning is noise-tolerant, and the f32-vs-f64 parity gates in
// tests/batch_parity_test.cpp pin the numerical agreement.
#pragma once

#include <string>

namespace hcrl::nn {

enum class Precision { kF32, kF64 };

std::string to_string(Precision p);

/// "f32"/"float" -> kF32, "f64"/"double" -> kF64; throws std::invalid_argument.
Precision precision_from_string(const std::string& name);

/// Process-wide default, read once from the HCRL_PRECISION environment
/// variable ("f32" or "f64"); kF64 when unset. This is what experiment and
/// agent option structs initialize their `precision` field from, so a CI leg
/// can flip the whole experiment stack to f32 without a rebuild.
Precision default_precision();

}  // namespace hcrl::nn
