#include "src/nn/serialize.hpp"

#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace hcrl::nn {

namespace {
constexpr const char* kMagic = "hcrl-params-v1";
}  // namespace

void save_params(std::ostream& out, const std::vector<ParamBlockPtr>& params) {
  auto segs = gather_segments(params);
  std::size_t total = 0;
  for (const auto& s : segs) total += s.n;
  out << kMagic << "\n" << total << "\n";
  out.precision(std::numeric_limits<double>::max_digits10);
  for (const auto& s : segs) {
    for (std::size_t i = 0; i < s.n; ++i) out << s.value[i] << "\n";
  }
  if (!out) throw std::runtime_error("save_params: stream write failed");
}

void save_params_file(const std::string& path, const std::vector<ParamBlockPtr>& params) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_params_file: cannot open " + path);
  save_params(out, params);
}

void load_params(std::istream& in, const std::vector<ParamBlockPtr>& params) {
  std::string magic;
  std::size_t total = 0;
  in >> magic >> total;
  if (magic != kMagic) throw std::invalid_argument("load_params: bad magic '" + magic + "'");
  auto segs = gather_segments(params);
  std::size_t expected = 0;
  for (const auto& s : segs) expected += s.n;
  if (expected != total) {
    throw std::invalid_argument("load_params: size mismatch (file " + std::to_string(total) +
                                ", model " + std::to_string(expected) + ")");
  }
  for (auto& s : segs) {
    for (std::size_t i = 0; i < s.n; ++i) {
      if (!(in >> s.value[i])) throw std::invalid_argument("load_params: truncated file");
    }
  }
}

void load_params_file(const std::string& path, const std::vector<ParamBlockPtr>& params) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_params_file: cannot open " + path);
  load_params(in, params);
}

}  // namespace hcrl::nn
