#include "src/nn/serialize.hpp"

#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace hcrl::nn {

namespace {
constexpr const char* kMagic = "hcrl-params-v1";
}  // namespace

template <class S>
void save_params(std::ostream& out, const std::vector<ParamBlockPtrT<S>>& params) {
  auto segs = gather_segments(params);
  std::size_t total = 0;
  for (const auto& s : segs) total += s.n;
  out << kMagic << "\n" << total << "\n";
  out.precision(std::numeric_limits<double>::max_digits10);
  for (const auto& s : segs) {
    for (std::size_t i = 0; i < s.n; ++i) out << static_cast<double>(s.value[i]) << "\n";
  }
  if (!out) throw std::runtime_error("save_params: stream write failed");
}

template <class S>
void save_params_file(const std::string& path, const std::vector<ParamBlockPtrT<S>>& params) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_params_file: cannot open " + path);
  save_params(out, params);
}

template <class S>
void load_params(std::istream& in, const std::vector<ParamBlockPtrT<S>>& params) {
  std::string magic;
  std::size_t total = 0;
  in >> magic >> total;
  if (magic != kMagic) throw std::invalid_argument("load_params: bad magic '" + magic + "'");
  auto segs = gather_segments(params);
  std::size_t expected = 0;
  for (const auto& s : segs) expected += s.n;
  if (expected != total) {
    throw std::invalid_argument("load_params: size mismatch (file " + std::to_string(total) +
                                ", model " + std::to_string(expected) + ")");
  }
  for (auto& s : segs) {
    for (std::size_t i = 0; i < s.n; ++i) {
      double v = 0.0;
      if (!(in >> v)) throw std::invalid_argument("load_params: truncated file");
      s.value[i] = static_cast<S>(v);
    }
  }
}

template <class S>
void load_params_file(const std::string& path, const std::vector<ParamBlockPtrT<S>>& params) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_params_file: cannot open " + path);
  load_params(in, params);
}

#define HCRL_NN_INSTANTIATE_SERIALIZE(S)                                                   \
  template void save_params<S>(std::ostream&, const std::vector<ParamBlockPtrT<S>>&);      \
  template void save_params_file<S>(const std::string&,                                    \
                                    const std::vector<ParamBlockPtrT<S>>&);                \
  template void load_params<S>(std::istream&, const std::vector<ParamBlockPtrT<S>>&);      \
  template void load_params_file<S>(const std::string&,                                    \
                                    const std::vector<ParamBlockPtrT<S>>&);

HCRL_NN_INSTANTIATE_SERIALIZE(float)
HCRL_NN_INSTANTIATE_SERIALIZE(double)
#undef HCRL_NN_INSTANTIATE_SERIALIZE

}  // namespace hcrl::nn
