// Save/load parameter values of a model (text format, versioned).
//
// The format is intentionally simple: a magic header, the number of
// parameter scalars, then one value per line with full precision. It is
// shape-unaware — the caller must construct an identically-shaped model
// before loading — which keeps the format stable across refactors. It is
// also precision-unaware: values are written as decimal text at full double
// precision regardless of the model's Scalar type, so an f32 model can be
// saved and restored (and a f64 checkpoint loads into an f32 model with the
// expected rounding).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/nn/param.hpp"

namespace hcrl::nn {

template <class S>
void save_params(std::ostream& out, const std::vector<ParamBlockPtrT<S>>& params);
template <class S>
void save_params_file(const std::string& path, const std::vector<ParamBlockPtrT<S>>& params);

/// Throws std::invalid_argument on header/size mismatch.
template <class S>
void load_params(std::istream& in, const std::vector<ParamBlockPtrT<S>>& params);
template <class S>
void load_params_file(const std::string& path, const std::vector<ParamBlockPtrT<S>>& params);

}  // namespace hcrl::nn
