// Save/load parameter values of a model (text format, versioned).
//
// The format is intentionally simple: a magic header, the number of
// parameter scalars, then one value per line with full precision. It is
// shape-unaware — the caller must construct an identically-shaped model
// before loading — which keeps the format stable across refactors.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/nn/param.hpp"

namespace hcrl::nn {

void save_params(std::ostream& out, const std::vector<ParamBlockPtr>& params);
void save_params_file(const std::string& path, const std::vector<ParamBlockPtr>& params);

/// Throws std::invalid_argument on header/size mismatch.
void load_params(std::istream& in, const std::vector<ParamBlockPtr>& params);
void load_params_file(const std::string& path, const std::vector<ParamBlockPtr>& params);

}  // namespace hcrl::nn
