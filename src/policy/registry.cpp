#include "src/policy/registry.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "src/common/rng.hpp"
#include "src/common/suggest.hpp"
#include "src/core/global_tier.hpp"
#include "src/core/local_tier.hpp"
#include "src/core/predictor.hpp"

namespace hcrl::policy {

namespace {

std::vector<std::string> schema_keys(const std::vector<OptionSpec>& options) {
  std::vector<std::string> keys;
  keys.reserve(options.size());
  for (const OptionSpec& o : options) keys.push_back(o.key);
  return keys;
}

void check_block(const std::string& kind, const std::string& name,
                 const std::vector<OptionSpec>& options, const common::Config& opts) {
  const std::vector<std::string> valid = schema_keys(options);
  for (const std::string& key : opts.keys()) {
    if (std::find(valid.begin(), valid.end(), key) == valid.end()) {
      throw std::invalid_argument(
          kind + " '" + name + "': " +
          common::unknown_key_message("option key", key, valid));
    }
  }
}

}  // namespace

// ---- PolicyRegistry --------------------------------------------------------

void PolicyRegistry::add_allocator(AllocatorInfo info) {
  if (info.factory == nullptr) {
    throw std::invalid_argument("PolicyRegistry: null factory for allocator '" + info.name + "'");
  }
  if (has_allocator(info.name)) {
    throw std::invalid_argument("PolicyRegistry: duplicate allocator '" + info.name + "'");
  }
  allocators_.push_back(std::move(info));
}

void PolicyRegistry::add_power(PowerInfo info) {
  if (info.factory == nullptr) {
    throw std::invalid_argument("PolicyRegistry: null factory for power policy '" + info.name +
                                "'");
  }
  if (has_power(info.name)) {
    throw std::invalid_argument("PolicyRegistry: duplicate power policy '" + info.name + "'");
  }
  powers_.push_back(std::move(info));
}

bool PolicyRegistry::has_allocator(const std::string& name) const {
  return std::any_of(allocators_.begin(), allocators_.end(),
                     [&](const AllocatorInfo& a) { return a.name == name; });
}

bool PolicyRegistry::has_power(const std::string& name) const {
  return std::any_of(powers_.begin(), powers_.end(),
                     [&](const PowerInfo& p) { return p.name == name; });
}

const AllocatorInfo& PolicyRegistry::allocator_info(const std::string& name) const {
  for (const AllocatorInfo& a : allocators_) {
    if (a.name == name) return a;
  }
  throw std::invalid_argument(
      "PolicyRegistry: " + common::unknown_key_message("allocator", name, allocator_names()));
}

const PowerInfo& PolicyRegistry::power_info(const std::string& name) const {
  for (const PowerInfo& p : powers_) {
    if (p.name == name) return p;
  }
  throw std::invalid_argument(
      "PolicyRegistry: " + common::unknown_key_message("power policy", name, power_names()));
}

std::vector<std::string> PolicyRegistry::allocator_names() const {
  std::vector<std::string> names;
  names.reserve(allocators_.size());
  for (const AllocatorInfo& a : allocators_) names.push_back(a.name);
  return names;
}

std::vector<std::string> PolicyRegistry::power_names() const {
  std::vector<std::string> names;
  names.reserve(powers_.size());
  for (const PowerInfo& p : powers_) names.push_back(p.name);
  return names;
}

void PolicyRegistry::validate_options(const AllocatorInfo& info,
                                      const common::Config& opts) const {
  check_block("allocator", info.name, info.options, opts);
}

void PolicyRegistry::validate_options(const PowerInfo& info, const common::Config& opts) const {
  check_block("power policy", info.name, info.options, opts);
}

BuiltAllocator PolicyRegistry::make_allocator(const std::string& name,
                                              const core::ExperimentConfig& cfg,
                                              const common::Config& opts) const {
  const AllocatorInfo& info = allocator_info(name);
  validate_options(info, opts);
  common::Config block = opts;  // factory marks reads on the copy
  BuiltAllocator built = info.factory(cfg, block);
  if (built.policy == nullptr) {
    throw std::logic_error("PolicyRegistry: allocator '" + name + "' factory returned null");
  }
  const auto unread = block.unused_keys();
  if (!unread.empty()) {
    throw std::logic_error("PolicyRegistry: allocator '" + name +
                           "' schema names option '" + unread.front() +
                           "' but the factory never read it");
  }
  return built;
}

BuiltPower PolicyRegistry::make_power(const std::string& name, const core::ExperimentConfig& cfg,
                                      const common::Config& opts) const {
  const PowerInfo& info = power_info(name);
  validate_options(info, opts);
  common::Config block = opts;
  BuiltPower built = info.factory(cfg, block);
  if (built.policy == nullptr) {
    throw std::logic_error("PolicyRegistry: power policy '" + name + "' factory returned null");
  }
  const auto unread = block.unused_keys();
  if (!unread.empty()) {
    throw std::logic_error("PolicyRegistry: power policy '" + name +
                           "' schema names option '" + unread.front() +
                           "' but the factory never read it");
  }
  return built;
}

// ---- builtin entries -------------------------------------------------------

namespace {

using sim::AllocationPolicy;

PolicyRegistry build_builtin() {
  PolicyRegistry r;

  // -- allocation (global tier) ----------------------------------------------
  r.add_allocator({.name = "round-robin",
                   .description = "paper baseline: cyclic dispatch",
                   .options = {},
                   .routing = AllocationPolicy::RoutingMode::kTraceOnly,
                   .factory = [](const core::ExperimentConfig&, common::Config&) {
                     return BuiltAllocator{std::make_unique<sim::RoundRobinAllocator>()};
                   }});
  r.add_allocator({.name = "random",
                   .description = "uniformly random dispatch (diagnostic)",
                   .options = {{"seed", "RNG seed (default: drl.seed)"}},
                   .routing = AllocationPolicy::RoutingMode::kTraceOnly,
                   .factory = [](const core::ExperimentConfig& cfg, common::Config& opts) {
                     const auto seed = static_cast<std::uint64_t>(
                         opts.get_int("seed", static_cast<std::int64_t>(cfg.drl.seed)));
                     return BuiltAllocator{
                         std::make_unique<sim::RandomAllocator>(common::Rng(seed))};
                   }});
  r.add_allocator({.name = "least-loaded",
                   .description = "least-utilized awake server; wakes only when saturated",
                   .options = {},
                   .factory = [](const core::ExperimentConfig&, common::Config&) {
                     return BuiltAllocator{std::make_unique<sim::LeastLoadedAllocator>()};
                   }});
  r.add_allocator({.name = "first-fit-packing",
                   .description = "busiest awake server that fits (greedy consolidation)",
                   .options = {},
                   .factory = [](const core::ExperimentConfig&, common::Config&) {
                     return BuiltAllocator{std::make_unique<sim::FirstFitPackingAllocator>()};
                   }});
  r.add_allocator({.name = "best-fit",
                   .description = "tightest fitting awake server (least leftover capacity)",
                   .options = {},
                   .factory = [](const core::ExperimentConfig&, common::Config&) {
                     return BuiltAllocator{std::make_unique<sim::BestFitAllocator>()};
                   }});
  r.add_allocator({.name = "worst-fit",
                   .description = "loosest fitting awake server (load spreading)",
                   .options = {},
                   .factory = [](const core::ExperimentConfig&, common::Config&) {
                     return BuiltAllocator{std::make_unique<sim::WorstFitAllocator>()};
                   }});
  r.add_allocator({.name = "tetris",
                   .description = "dot-product alignment of demand and free resources",
                   .options = {},
                   .factory = [](const core::ExperimentConfig&, common::Config&) {
                     return BuiltAllocator{std::make_unique<sim::TetrisAllocator>()};
                   }});
  r.add_allocator({.name = "random-k",
                   .description = "power-of-k-choices: best of k sampled servers",
                   .options = {{"k", "servers sampled per decision (default 3)"},
                               {"seed", "RNG seed (default: drl.seed)"}},
                   .factory = [](const core::ExperimentConfig& cfg, common::Config& opts) {
                     const std::int64_t k = opts.get_int("k", 3);
                     if (k <= 0) {
                       throw std::invalid_argument("allocator 'random-k': k must be >= 1");
                     }
                     const auto seed = static_cast<std::uint64_t>(
                         opts.get_int("seed", static_cast<std::int64_t>(cfg.drl.seed)));
                     return BuiltAllocator{std::make_unique<sim::RandomKAllocator>(
                         static_cast<std::size_t>(k), common::Rng(seed))};
                   }});
  r.add_allocator({.name = "drl",
                   .description = "the paper's DRL global tier (grouped Q-network)",
                   .options = {{"guide", "exploration guide allocator (default "
                                         "first-fit-packing; must be non-learning)"}},
                   .learning = true,
                   .factory = [&r](const core::ExperimentConfig& cfg, common::Config& opts) {
                     const std::string guide = opts.get_string("guide", "first-fit-packing");
                     const AllocatorInfo& guide_info = r.allocator_info(guide);
                     if (guide_info.learning) {
                       throw std::invalid_argument(
                           "allocator 'drl': guide '" + guide + "' must be non-learning");
                     }
                     auto drl = std::make_unique<core::DrlAllocator>(cfg.drl);
                     drl->set_guide(std::move(r.make_allocator(guide, cfg).policy));
                     BuiltAllocator built;
                     built.drl = drl.get();
                     built.policy = std::move(drl);
                     return built;
                   }});

  // -- power (local tier) ----------------------------------------------------
  r.add_power({.name = "always-on",
               .description = "never sleeps (paper baseline)",
               .options = {},
               .shard_parallel_safe = true,
               .factory = [](const core::ExperimentConfig&, common::Config&) {
                 return BuiltPower{std::make_unique<sim::AlwaysOnPolicy>()};
               }});
  r.add_power({.name = "immediate-sleep",
               .description = "sleeps the instant the server idles (\"ad hoc\")",
               .options = {},
               .shard_parallel_safe = true,
               .factory = [](const core::ExperimentConfig&, common::Config&) {
                 return BuiltPower{std::make_unique<sim::ImmediateSleepPolicy>()};
               }});
  r.add_power({.name = "fixed-timeout",
               .description = "sleep after a fixed idle timeout",
               .options = {{"timeout_s", "idle timeout in seconds (default: fixed_timeout_s)"}},
               .shard_parallel_safe = true,
               .factory = [](const core::ExperimentConfig& cfg, common::Config& opts) {
                 const double t = opts.get_double("timeout_s", cfg.fixed_timeout_s);
                 return BuiltPower{std::make_unique<sim::FixedTimeoutPolicy>(t)};
               }});
  r.add_power({.name = "rl-dpm",
               .description = "the paper's staged RL local tier (tabular SMDP + predictor)",
               .options = {{"predictor", "workload predictor kind (default: local.predictor; "
                                         "lstm|last-value|sliding-mean|window|ar)"}},
               .learning = true,
               .factory = [](const core::ExperimentConfig& cfg, common::Config& opts) {
                 core::LocalPowerManagerOptions local = cfg.local;
                 local.predictor = opts.get_string("predictor", cfg.local.predictor);
                 auto rl = std::make_unique<core::RlPowerManager>(local);
                 BuiltPower built;
                 built.rl = rl.get();
                 built.policy = std::move(rl);
                 return built;
               }});

  return r;
}

}  // namespace

const PolicyRegistry& PolicyRegistry::builtin() {
  static const PolicyRegistry registry = build_builtin();
  return registry;
}

// ---- system resolution -----------------------------------------------------

ResolvedSystem resolve_system(const core::ExperimentConfig& cfg) {
  ResolvedSystem r;
  switch (cfg.system) {
    case core::SystemKind::kRoundRobin:
      r.allocator = "round-robin";
      r.power = "always-on";
      break;
    case core::SystemKind::kDrlOnly:
      r.allocator = "drl";
      r.power = "immediate-sleep";
      break;
    case core::SystemKind::kHierarchical:
      r.allocator = "drl";
      r.power = "rl-dpm";
      break;
    case core::SystemKind::kDrlFixedTimeout:
      r.allocator = "drl";
      r.power = "fixed-timeout";
      break;
    case core::SystemKind::kLeastLoaded:
      r.allocator = "least-loaded";
      r.power = "immediate-sleep";
      break;
    case core::SystemKind::kFirstFitPacking:
      r.allocator = "first-fit-packing";
      r.power = "immediate-sleep";
      break;
  }
  if (!cfg.allocator.empty()) {
    r.allocator = cfg.allocator;
    r.allocator_opts = cfg.allocator_opts;
  } else if (!cfg.allocator_opts.keys().empty()) {
    throw std::invalid_argument(
        "ExperimentConfig: allocator.* options require the allocator key");
  }
  if (!cfg.power.empty()) {
    r.power = cfg.power;
    r.power_opts = cfg.power_opts;
  } else if (!cfg.power_opts.keys().empty()) {
    throw std::invalid_argument("ExperimentConfig: power.* options require the power key");
  }
  return r;
}

SystemBundle build_system(const core::ExperimentConfig& cfg) {
  const ResolvedSystem sel = resolve_system(cfg);
  const PolicyRegistry& reg = PolicyRegistry::builtin();
  BuiltAllocator a = reg.make_allocator(sel.allocator, cfg, sel.allocator_opts);
  BuiltPower p = reg.make_power(sel.power, cfg, sel.power_opts);
  SystemBundle bundle;
  bundle.allocation = std::move(a.policy);
  bundle.power = std::move(p.policy);
  bundle.drl = a.drl;
  bundle.local_rl = p.rl;
  bundle.allocator_name = sel.allocator;
  bundle.power_name = sel.power;
  return bundle;
}

void validate_system_selection(const core::ExperimentConfig& cfg) {
  const ResolvedSystem sel = resolve_system(cfg);
  const PolicyRegistry& reg = PolicyRegistry::builtin();
  const AllocatorInfo& a = reg.allocator_info(sel.allocator);
  reg.validate_options(a, sel.allocator_opts);
  const PowerInfo& p = reg.power_info(sel.power);
  reg.validate_options(p, sel.power_opts);
  if (p.name == "rl-dpm") {
    common::Config opts = sel.power_opts;
    const std::string kind = opts.get_string("predictor", cfg.local.predictor);
    const std::vector<std::string> kinds = core::predictor_kinds();
    if (std::find(kinds.begin(), kinds.end(), kind) == kinds.end()) {
      throw std::invalid_argument("ExperimentConfig: " +
                                  common::unknown_key_message("predictor", kind, kinds));
    }
  }
}

// ---- listing ---------------------------------------------------------------

namespace {

void print_padded(std::ostream& out, const std::string& name, const std::string& rest) {
  out << "  " << name;
  for (std::size_t i = name.size(); i < 20; ++i) out << ' ';
  out << ' ' << rest << '\n';
}

template <class Info>
void print_options(std::ostream& out, const std::string& prefix, const Info& info) {
  for (const OptionSpec& o : info.options) {
    print_padded(out, "  " + prefix + "." + o.key, o.doc);
  }
}

}  // namespace

void print_policy_listing(std::ostream& out) {
  const PolicyRegistry& reg = PolicyRegistry::builtin();
  out << "allocation policies (config: allocator = <name>, options as allocator.<key>):\n";
  for (const std::string& name : reg.allocator_names()) {
    const AllocatorInfo& info = reg.allocator_info(name);
    std::string tags =
        info.routing == AllocationPolicy::RoutingMode::kTraceOnly ? "trace-only" : "global-state";
    if (info.learning) tags += ", learning";
    print_padded(out, name, info.description + " [" + tags + "]");
    print_options(out, "allocator", info);
  }
  out << "power policies (config: power = <name>, options as power.<key>):\n";
  for (const std::string& name : reg.power_names()) {
    const PowerInfo& info = reg.power_info(name);
    std::string tags = info.shard_parallel_safe ? "shard-parallel-safe" : "lockstep-only";
    if (info.learning) tags += ", learning";
    print_padded(out, name, info.description + " [" + tags + "]");
    print_options(out, "power", info);
  }
}

}  // namespace hcrl::policy
