// Policy plug-in registry: named factories for every allocation (global
// tier) and power (local tier) policy in the system.
//
// The registry replaces the ad-hoc construction that used to live in
// core/runner.cpp: a policy is an entry — name, one-line description, option
// schema, parallel-safety metadata, factory — and anything that can name a
// registered entry (an ExperimentConfig, a tournament combo, a CLI flag) can
// construct it. New policies and new scenarios then multiply instead of add:
// registering one policy makes it a row in every tournament, a value for the
// `allocator =` / `power =` config keys, and a line in every CLI's
// --list-policies, with no driver changes.
//
// Contract for an entry (see src/policy/README.md for the long form):
//  * `name` is unique within its kind and stable — configs and leaderboard
//    artifacts reference it.
//  * `options` lists every key the factory reads from its option block;
//    make_allocator/make_power reject unknown keys with a did-you-mean
//    diagnostic, so the schema IS the validation.
//  * `routing` / `shard_parallel_safe` must match what the constructed
//    policy declares — the registry audit test instantiates every entry and
//    checks, so a wrong declaration cannot land silently.
//  * Factories must be deterministic: everything stochastic seeds from the
//    ExperimentConfig (or an option key), never from global state.
//
// Layering note: policy/ sits beside core/ rather than below it. Factories
// consume core's option structs (DrlAllocatorOptions, LocalPowerManagerOptions)
// to build the learning tiers, and core's driver (runner.cpp) builds systems
// through build_system() below — a mutual .cpp-level dependency inside the
// single hcrl library, with no header cycle.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "src/common/config.hpp"
#include "src/core/experiment.hpp"
#include "src/sim/policies.hpp"

namespace hcrl::policy {

/// A constructed allocation policy plus the learner hook the driver wires
/// (decision service, pretraining, set_learning). Null `drl` = non-learning.
struct BuiltAllocator {
  std::unique_ptr<sim::AllocationPolicy> policy;
  core::DrlAllocator* drl = nullptr;  // non-owning view into `policy`
};

struct BuiltPower {
  std::unique_ptr<sim::PowerPolicy> policy;
  core::RlPowerManager* rl = nullptr;  // non-owning view into `policy`
};

/// One option key a factory understands, with a doc line for listings.
struct OptionSpec {
  std::string key;
  std::string doc;
};

struct AllocatorInfo {
  std::string name;
  std::string description;
  std::vector<OptionSpec> options;
  /// Declared routing mode; audited against the built instance in tests.
  sim::AllocationPolicy::RoutingMode routing =
      sim::AllocationPolicy::RoutingMode::kGlobalState;
  /// True for policies that learn online (the driver runs the offline
  /// construction phase and wires the decision service for these).
  bool learning = false;
  /// Builds the policy. `opts` arrives as a by-value copy of the per-policy
  /// option block; the registry rejects keys the factory did not read.
  std::function<BuiltAllocator(const core::ExperimentConfig& cfg, common::Config& opts)> factory;
};

struct PowerInfo {
  std::string name;
  std::string description;
  std::vector<OptionSpec> options;
  /// Declared PowerPolicy::shard_parallel_safe(); audited in tests.
  bool shard_parallel_safe = false;
  bool learning = false;
  std::function<BuiltPower(const core::ExperimentConfig& cfg, common::Config& opts)> factory;
};

class PolicyRegistry {
 public:
  /// Register an entry; throws std::invalid_argument on duplicate names or
  /// null factories.
  void add_allocator(AllocatorInfo info);
  void add_power(PowerInfo info);

  bool has_allocator(const std::string& name) const;
  bool has_power(const std::string& name) const;

  /// Lookup; unknown names throw std::invalid_argument with a did-you-mean
  /// suggestion and the full valid-name list.
  const AllocatorInfo& allocator_info(const std::string& name) const;
  const PowerInfo& power_info(const std::string& name) const;

  /// Registration order (the order listings and tournaments iterate).
  std::vector<std::string> allocator_names() const;
  std::vector<std::string> power_names() const;

  /// Validate an option block against an entry's schema without building:
  /// throws on any key the schema does not name (did-you-mean included).
  void validate_options(const AllocatorInfo& info, const common::Config& opts) const;
  void validate_options(const PowerInfo& info, const common::Config& opts) const;

  /// Construct a policy. Option blocks are validated against the schema;
  /// keys the factory leaves unread are also rejected (schema drift guard).
  BuiltAllocator make_allocator(const std::string& name, const core::ExperimentConfig& cfg,
                                const common::Config& opts = {}) const;
  BuiltPower make_power(const std::string& name, const core::ExperimentConfig& cfg,
                        const common::Config& opts = {}) const;

  /// The built-in policy set. Allocators: round-robin, random, least-loaded,
  /// first-fit-packing, best-fit, worst-fit, tetris, random-k, drl. Powers:
  /// always-on, immediate-sleep, fixed-timeout, rl-dpm.
  static const PolicyRegistry& builtin();

 private:
  std::vector<AllocatorInfo> allocators_;  // registration order; small N
  std::vector<PowerInfo> powers_;
};

/// The system a config resolves to: the pair implied by `system`, with any
/// non-empty allocator/power override applied on top.
struct ResolvedSystem {
  std::string allocator;
  common::Config allocator_opts;
  std::string power;
  common::Config power_opts;
};

ResolvedSystem resolve_system(const core::ExperimentConfig& cfg);

/// Everything run_scenario needs to run a system: both constructed tiers
/// plus the learner views the driver wires (pretraining, decision service).
struct SystemBundle {
  std::unique_ptr<sim::AllocationPolicy> allocation;
  std::unique_ptr<sim::PowerPolicy> power;
  core::DrlAllocator* drl = nullptr;
  core::RlPowerManager* local_rl = nullptr;
  std::string allocator_name;  // registry names actually used
  std::string power_name;
};

/// The registry construction path used by core::run_scenario: resolve the
/// config's system selection and build both tiers from the builtin registry.
SystemBundle build_system(const core::ExperimentConfig& cfg);

/// Config-time diagnostics (called from ExperimentConfig::validate):
/// resolve the selection, check names and option keys against the registry,
/// and check the predictor kind when the local tier is the RL manager. All
/// failures are std::invalid_argument with did-you-mean suggestions.
void validate_system_selection(const core::ExperimentConfig& cfg);

/// The shared --list-policies body: every registered allocator and power
/// policy with descriptions, option schemas and parallel-safety flags.
/// run_experiment, trace_tools and tournament all print exactly this.
void print_policy_listing(std::ostream& out);

}  // namespace hcrl::policy
