#include "src/policy/tournament.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <utility>

#include "src/common/csv.hpp"
#include "src/common/suggest.hpp"
#include "src/core/predictor.hpp"
#include "src/policy/registry.hpp"
#include "src/telemetry/profiler.hpp"

namespace hcrl::policy {

namespace {

std::string render_side(const std::string& name, const common::Config& opts) {
  const std::vector<std::string> keys = opts.keys();
  if (keys.empty()) return name;
  std::string out = name + "(";
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (i > 0) out += ';';
    out += keys[i] + "=" + opts.get_string(keys[i]);
  }
  return out + ")";
}

/// Strict numeric suffix parse for the combo sugar forms.
bool parse_suffix_double(const std::string& s, double& out) {
  const auto v = common::parse_csv_double(s);
  if (!v.has_value()) return false;
  out = *v;
  return true;
}

bool parse_suffix_int(const std::string& s, long long& out) {
  const auto v = common::parse_csv_int(s);
  if (!v.has_value()) return false;
  out = *v;
  return true;
}

std::string what_of(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown error";
  }
}

}  // namespace

std::string PolicyCombo::label() const {
  return render_side(allocator, allocator_opts) + "+" + render_side(power, power_opts);
}

PolicyCombo combo_from_string(const std::string& text) {
  const std::size_t plus = text.find('+');
  if (plus == std::string::npos || plus == 0 || plus + 1 >= text.size()) {
    throw std::invalid_argument("combo '" + text +
                                "' must have the form '<allocator>+<power>' "
                                "(e.g. best-fit+fixed-timeout-60)");
  }
  const std::string lhs = text.substr(0, plus);
  const std::string rhs = text.substr(plus + 1);
  const PolicyRegistry& reg = PolicyRegistry::builtin();

  PolicyCombo combo;
  if (reg.has_allocator(lhs)) {
    combo.allocator = lhs;
  } else {
    long long k = 0;
    if (lhs.rfind("random-", 0) == 0 && parse_suffix_int(lhs.substr(7), k) && k > 0) {
      combo.allocator = "random-k";
      combo.allocator_opts.set("k", lhs.substr(7));  // raw text keeps labels clean
    } else {
      throw std::invalid_argument(
          "combo '" + text + "': " +
          common::unknown_key_message("allocator", lhs, reg.allocator_names()));
    }
  }
  if (reg.has_power(rhs)) {
    combo.power = rhs;
  } else {
    double timeout = 0.0;
    const std::vector<std::string> predictors = core::predictor_kinds();
    if (rhs.rfind("fixed-timeout-", 0) == 0 && parse_suffix_double(rhs.substr(14), timeout) &&
        timeout >= 0.0) {
      combo.power = "fixed-timeout";
      combo.power_opts.set("timeout_s", rhs.substr(14));  // raw text keeps labels clean
    } else if (rhs.rfind("rl-", 0) == 0 &&
               std::find(predictors.begin(), predictors.end(), rhs.substr(3)) !=
                   predictors.end()) {
      combo.power = "rl-dpm";
      combo.power_opts.set("predictor", rhs.substr(3));
    } else {
      throw std::invalid_argument(
          "combo '" + text + "': " +
          common::unknown_key_message("power policy", rhs, reg.power_names()));
    }
  }
  return combo;
}

std::vector<PolicyCombo> default_combos() {
  const char* specs[] = {
      "round-robin+always-on",         // the paper's baseline pairing
      "round-robin+fixed-timeout-60",  // Fig. 10 style timeout baseline
      "least-loaded+immediate-sleep",
      "first-fit-packing+immediate-sleep",
      "best-fit+immediate-sleep",
      "worst-fit+immediate-sleep",
      "tetris+immediate-sleep",
      "random-3+immediate-sleep",
      "first-fit-packing+rl-window",  // staged RL local tier coverage
  };
  std::vector<PolicyCombo> combos;
  combos.reserve(std::size(specs));
  for (const char* s : specs) combos.push_back(combo_from_string(s));
  return combos;
}

std::vector<std::string> default_scenario_names() {
  return {"tiny/round-robin", "google2011-sample", "alibaba2018-sample", "alibaba2018-calibrated"};
}

TournamentResult run_tournament(const TournamentOptions& opts, core::Runner& runner) {
  TournamentResult result;
  result.combos = opts.combos.empty() ? default_combos() : opts.combos;

  // Build each scenario recipe once; combos reuse the instance (and so share
  // its explicit trace source) via copies.
  std::vector<core::Scenario> bases;
  const std::vector<std::string> names =
      opts.scenario_names.empty() && opts.extra_scenarios.empty() ? default_scenario_names()
                                                                  : opts.scenario_names;
  for (const std::string& name : names) {
    bases.push_back(core::ScenarioRegistry::builtin().make(name, opts.jobs));
  }
  for (const core::Scenario& s : opts.extra_scenarios) bases.push_back(s);
  if (bases.empty()) throw std::invalid_argument("run_tournament: no scenarios");
  if (result.combos.empty()) throw std::invalid_argument("run_tournament: no combos");
  for (const core::Scenario& s : bases) result.scenarios.push_back(s.name);

  std::vector<core::Scenario> cells;
  cells.reserve(result.combos.size() * bases.size());
  for (const PolicyCombo& combo : result.combos) {
    for (const core::Scenario& base : bases) {
      core::Scenario cell = base;
      cell.name = base.name + "|" + combo.label();
      cell.config.allocator = combo.allocator;
      cell.config.allocator_opts = combo.allocator_opts;
      cell.config.power = combo.power;
      cell.config.power_opts = combo.power_opts;
      cell.config.sla_latency_s = opts.sla_latency_s;
      cells.push_back(std::move(cell));
    }
  }
  // Synthetic cells over identical generator options share one cached trace.
  core::share_synthetic_traces(cells);

  // Per-cell timing comes from run_scenario's "runner.scenario" span (each
  // cell name embeds the combo label); this span wraps the whole grid.
  static const telemetry::SpanDef kGridSpan("tournament.grid");
  if (telemetry::enabled()) {
    telemetry::count(telemetry::global_registry().counter("tournament.cells"), cells.size());
  }
  std::vector<core::ScenarioOutcome> outcomes = [&] {
    telemetry::Span span(kGridSpan, std::to_string(cells.size()) + " cells");
    return runner.run_outcomes(cells);
  }();

  result.cells.resize(cells.size());
  for (std::size_t c = 0; c < result.combos.size(); ++c) {
    for (std::size_t s = 0; s < bases.size(); ++s) {
      const std::size_t i = c * bases.size() + s;
      TournamentCell& cell = result.cells[i];
      cell.scenario = result.scenarios[s];
      cell.combo = result.combos[c];
      if (outcomes[i].ok()) {
        cell.ok = true;
        cell.result = std::move(outcomes[i].result);
        if (cell.result.wall_seconds > 0.0) {
          cell.decisions_per_sec =
              static_cast<double>(cell.result.final_snapshot.jobs_completed) /
              cell.result.wall_seconds;
        }
      } else {
        cell.error = what_of(outcomes[i].error);
      }
    }
  }
  return result;
}

std::vector<LeaderboardRow> leaderboard(const TournamentResult& result) {
  const std::size_t num_scenarios = result.scenarios.size();
  std::vector<LeaderboardRow> rows;
  rows.reserve(result.combos.size());
  for (std::size_t c = 0; c < result.combos.size(); ++c) {
    LeaderboardRow row;
    row.combo = result.combos[c].label();
    row.allocator = result.combos[c].allocator;
    row.power = result.combos[c].power;
    for (std::size_t s = 0; s < num_scenarios; ++s) {
      const TournamentCell& cell = result.cells[c * num_scenarios + s];
      if (!cell.ok) {
        ++row.scenarios_failed;
        continue;
      }
      ++row.scenarios_ok;
      row.energy_kwh += cell.result.final_snapshot.energy_kwh();
      row.latency_p95_s = std::max(row.latency_p95_s, cell.result.latency_p95_s);
      row.latency_p99_s = std::max(row.latency_p99_s, cell.result.latency_p99_s);
      row.sla_violations += cell.result.sla_violations;
      row.jobs_completed += cell.result.final_snapshot.jobs_completed;
      row.wall_seconds += cell.result.wall_seconds;
    }
    if (row.wall_seconds > 0.0) {
      row.decisions_per_sec = static_cast<double>(row.jobs_completed) / row.wall_seconds;
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const LeaderboardRow& a, const LeaderboardRow& b) {
    if (a.scenarios_failed != b.scenarios_failed) return a.scenarios_failed < b.scenarios_failed;
    if (a.energy_kwh != b.energy_kwh) return a.energy_kwh < b.energy_kwh;
    return a.combo < b.combo;
  });
  return rows;
}

void write_leaderboard_csv(std::ostream& out, const TournamentResult& result,
                           LeaderboardColumns columns) {
  common::CsvWriter writer(out);
  std::vector<std::string> header = {"rank",          "combo",          "allocator",
                                     "power",         "scenarios_ok",   "scenarios_failed",
                                     "energy_kwh",    "latency_p95_s",  "latency_p99_s",
                                     "sla_violations", "jobs_completed"};
  if (columns == LeaderboardColumns::kWithTiming) {
    header.push_back("decisions_per_sec");
    header.push_back("wall_seconds");
  }
  writer.write_row(header);
  const std::vector<LeaderboardRow> rows = leaderboard(result);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const LeaderboardRow& r = rows[i];
    std::vector<std::string> fields = {std::to_string(i + 1),
                                       r.combo,
                                       r.allocator,
                                       r.power,
                                       std::to_string(r.scenarios_ok),
                                       std::to_string(r.scenarios_failed),
                                       common::format_csv_double(r.energy_kwh),
                                       common::format_csv_double(r.latency_p95_s),
                                       common::format_csv_double(r.latency_p99_s),
                                       std::to_string(r.sla_violations),
                                       std::to_string(r.jobs_completed)};
    if (columns == LeaderboardColumns::kWithTiming) {
      fields.push_back(common::format_csv_double(r.decisions_per_sec));
      fields.push_back(common::format_csv_double(r.wall_seconds));
    }
    writer.write_row(fields);
  }
}

void write_cells_csv(std::ostream& out, const TournamentResult& result,
                     LeaderboardColumns columns) {
  common::CsvWriter writer(out);
  std::vector<std::string> header = {"scenario",       "combo",          "allocator",
                                     "power",          "status",         "error",
                                     "energy_kwh",     "avg_power_w",    "avg_latency_s",
                                     "latency_p95_s",  "latency_p99_s",  "sla_violations",
                                     "jobs_completed"};
  if (columns == LeaderboardColumns::kWithTiming) {
    header.push_back("decisions_per_sec");
    header.push_back("wall_seconds");
  }
  writer.write_row(header);
  for (const TournamentCell& cell : result.cells) {
    std::vector<std::string> fields = {cell.scenario, cell.combo.label(), cell.combo.allocator,
                                       cell.combo.power};
    if (cell.ok) {
      const auto& snap = cell.result.final_snapshot;
      fields.push_back("ok");
      fields.push_back("");
      fields.push_back(common::format_csv_double(snap.energy_kwh()));
      fields.push_back(common::format_csv_double(snap.average_power_watts));
      fields.push_back(common::format_csv_double(snap.average_latency_s()));
      fields.push_back(common::format_csv_double(cell.result.latency_p95_s));
      fields.push_back(common::format_csv_double(cell.result.latency_p99_s));
      fields.push_back(std::to_string(cell.result.sla_violations));
      fields.push_back(std::to_string(snap.jobs_completed));
      if (columns == LeaderboardColumns::kWithTiming) {
        fields.push_back(common::format_csv_double(cell.decisions_per_sec));
        fields.push_back(common::format_csv_double(cell.result.wall_seconds));
      }
    } else {
      fields.push_back("error");
      fields.push_back(cell.error);
      for (int i = 0; i < 7; ++i) fields.push_back("");
      if (columns == LeaderboardColumns::kWithTiming) {
        fields.push_back("");
        fields.push_back("");
      }
    }
    writer.write_row(fields);
  }
}

}  // namespace hcrl::policy
