#include "src/policy/tournament.hpp"

#include <algorithm>
#include <cstdint>
#include <exception>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <type_traits>
#include <unordered_map>
#include <utility>

#include "src/common/csv.hpp"
#include "src/common/suggest.hpp"
#include "src/core/predictor.hpp"
#include "src/policy/registry.hpp"
#include "src/telemetry/profiler.hpp"

namespace hcrl::policy {

namespace {

std::string render_side(const std::string& name, const common::Config& opts) {
  const std::vector<std::string> keys = opts.keys();
  if (keys.empty()) return name;
  std::string out = name + "(";
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (i > 0) out += ';';
    out += keys[i] + "=" + opts.get_string(keys[i]);
  }
  return out + ")";
}

/// Strict numeric suffix parse for the combo sugar forms.
bool parse_suffix_double(const std::string& s, double& out) {
  const auto v = common::parse_csv_double(s);
  if (!v.has_value()) return false;
  out = *v;
  return true;
}

bool parse_suffix_int(const std::string& s, long long& out) {
  const auto v = common::parse_csv_int(s);
  if (!v.has_value()) return false;
  out = *v;
  return true;
}

std::string what_of(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown error";
  }
}

// ---- resume journal --------------------------------------------------------
//
// Append-only CSV: one magic line, then one record per successfully finished
// cell (keyed by the cell name, which embeds the combo label). Every numeric
// field uses format_csv_double / integer text, so a journaled cell's CSV
// output reproduces byte-identically on resume. A short or non-numeric
// trailing record — the signature of a SIGKILL mid-write — ends the load
// without error; everything after it recomputes.

constexpr const char* kJournalMagic = "hcrl-tournament-journal-v1";
constexpr std::size_t kJournalFields = 21;  // name + 20 numerics below

std::vector<std::string> journal_record(const std::string& name,
                                        const core::ExperimentResult& r) {
  const auto& snap = r.final_snapshot;
  const auto& f = snap.faults;
  return {name,
          std::to_string(snap.jobs_completed),
          std::to_string(snap.jobs_arrived),
          common::format_csv_double(snap.energy_joules),
          common::format_csv_double(snap.accumulated_latency_s),
          common::format_csv_double(snap.average_power_watts),
          common::format_csv_double(snap.now),
          common::format_csv_double(r.latency_p95_s),
          common::format_csv_double(r.latency_p99_s),
          std::to_string(r.sla_violations),
          std::to_string(r.servers_on_at_end),
          common::format_csv_double(r.wall_seconds),
          std::to_string(f.crashes),
          std::to_string(f.recoveries),
          std::to_string(f.evictions),
          std::to_string(f.jobs_killed),
          std::to_string(f.bounces),
          std::to_string(f.retries),
          std::to_string(f.jobs_lost),
          common::format_csv_double(f.lost_cpu_seconds),
          common::format_csv_double(f.downtime_s)};
}

bool parse_journal_record(const std::vector<std::string>& fields, core::ExperimentResult& r) {
  if (fields.size() != kJournalFields) return false;
  std::size_t i = 1;
  const auto next_int = [&](auto& out) {
    const auto v = common::parse_csv_int(fields[i++]);
    if (!v.has_value() || *v < 0) return false;
    out = static_cast<std::decay_t<decltype(out)>>(*v);
    return true;
  };
  const auto next_double = [&](double& out) {
    const auto v = common::parse_csv_double(fields[i++]);
    if (!v.has_value()) return false;
    out = *v;
    return true;
  };
  auto& snap = r.final_snapshot;
  auto& f = snap.faults;
  return next_int(snap.jobs_completed) && next_int(snap.jobs_arrived) &&
         next_double(snap.energy_joules) && next_double(snap.accumulated_latency_s) &&
         next_double(snap.average_power_watts) && next_double(snap.now) &&
         next_double(r.latency_p95_s) && next_double(r.latency_p99_s) &&
         next_int(r.sla_violations) && next_int(r.servers_on_at_end) &&
         next_double(r.wall_seconds) && next_int(f.crashes) && next_int(f.recoveries) &&
         next_int(f.evictions) && next_int(f.jobs_killed) && next_int(f.bounces) &&
         next_int(f.retries) && next_int(f.jobs_lost) && next_double(f.lost_cpu_seconds) &&
         next_double(f.downtime_s);
}

/// Parsed journal state: finished-cell records plus the byte offset of the
/// end of the last *complete* record, so a truncated tail (the previous run
/// was killed mid-write) can be trimmed before new records are appended —
/// appending straight after a dangling partial line would glue two records
/// together and corrupt the journal for the next resume.
struct JournalContents {
  std::unordered_map<std::string, core::ExperimentResult> done;
  bool has_magic = false;
  std::streamoff valid_bytes = 0;
};

/// Load an existing journal (empty state when the file does not exist or is
/// empty). Throws std::invalid_argument when the file exists but does not
/// start with the journal magic — silently resuming from an unrelated file
/// would drop cells.
JournalContents load_journal(const std::string& path) {
  JournalContents journal;
  std::ifstream in(path, std::ios::binary);
  if (!in) return journal;  // fresh journal
  common::CsvReader reader(in);
  std::vector<std::string> fields;
  if (!reader.read_row(fields)) return journal;  // empty file: treat as fresh
  if (fields.size() != 1 || fields[0] != kJournalMagic) {
    throw std::invalid_argument("tournament journal '" + path + "': not a journal file (bad magic)");
  }
  journal.has_magic = true;
  const auto mark = [&] {
    // tellg() is -1 once eofbit is set (final line without a trailing
    // newline); leaving valid_bytes at the previous record just re-runs
    // that cell, which is always safe.
    const std::streamoff pos = in.tellg();
    if (pos >= 0) journal.valid_bytes = pos;
  };
  mark();
  while (reader.read_row(fields)) {
    core::ExperimentResult r;
    if (fields.empty() || !parse_journal_record(fields, r)) break;  // truncated tail
    journal.done[fields[0]] = std::move(r);
    mark();
  }
  return journal;
}

/// Appends one journal record per completed cell, flushed immediately so a
/// killed run loses at most the record being written.
class JournalWriter final : public core::RunObserver {
 public:
  JournalWriter(const std::string& path, bool fresh)
      : out_(path, std::ios::app), writer_(out_) {
    if (!out_) throw std::runtime_error("tournament journal: cannot open " + path);
    if (fresh) {
      writer_.write_row({kJournalMagic});
      out_.flush();
    }
  }

  void on_complete(const core::Scenario& scenario, const core::ExperimentResult& result) override {
    writer_.write_row(journal_record(scenario.name, result));
    out_.flush();
  }

 private:
  std::ofstream out_;
  common::CsvWriter writer_;
};

}  // namespace

std::string PolicyCombo::label() const {
  return render_side(allocator, allocator_opts) + "+" + render_side(power, power_opts);
}

PolicyCombo combo_from_string(const std::string& text) {
  const std::size_t plus = text.find('+');
  if (plus == std::string::npos || plus == 0 || plus + 1 >= text.size()) {
    throw std::invalid_argument("combo '" + text +
                                "' must have the form '<allocator>+<power>' "
                                "(e.g. best-fit+fixed-timeout-60)");
  }
  const std::string lhs = text.substr(0, plus);
  const std::string rhs = text.substr(plus + 1);
  const PolicyRegistry& reg = PolicyRegistry::builtin();

  PolicyCombo combo;
  if (reg.has_allocator(lhs)) {
    combo.allocator = lhs;
  } else {
    long long k = 0;
    if (lhs.rfind("random-", 0) == 0 && parse_suffix_int(lhs.substr(7), k) && k > 0) {
      combo.allocator = "random-k";
      combo.allocator_opts.set("k", lhs.substr(7));  // raw text keeps labels clean
    } else {
      throw std::invalid_argument(
          "combo '" + text + "': " +
          common::unknown_key_message("allocator", lhs, reg.allocator_names()));
    }
  }
  if (reg.has_power(rhs)) {
    combo.power = rhs;
  } else {
    double timeout = 0.0;
    const std::vector<std::string> predictors = core::predictor_kinds();
    if (rhs.rfind("fixed-timeout-", 0) == 0 && parse_suffix_double(rhs.substr(14), timeout) &&
        timeout >= 0.0) {
      combo.power = "fixed-timeout";
      combo.power_opts.set("timeout_s", rhs.substr(14));  // raw text keeps labels clean
    } else if (rhs.rfind("rl-", 0) == 0 &&
               std::find(predictors.begin(), predictors.end(), rhs.substr(3)) !=
                   predictors.end()) {
      combo.power = "rl-dpm";
      combo.power_opts.set("predictor", rhs.substr(3));
    } else {
      throw std::invalid_argument(
          "combo '" + text + "': " +
          common::unknown_key_message("power policy", rhs, reg.power_names()));
    }
  }
  return combo;
}

std::vector<PolicyCombo> default_combos() {
  const char* specs[] = {
      "round-robin+always-on",         // the paper's baseline pairing
      "round-robin+fixed-timeout-60",  // Fig. 10 style timeout baseline
      "least-loaded+immediate-sleep",
      "first-fit-packing+immediate-sleep",
      "best-fit+immediate-sleep",
      "worst-fit+immediate-sleep",
      "tetris+immediate-sleep",
      "random-3+immediate-sleep",
      "first-fit-packing+rl-window",  // staged RL local tier coverage
  };
  std::vector<PolicyCombo> combos;
  combos.reserve(std::size(specs));
  for (const char* s : specs) combos.push_back(combo_from_string(s));
  return combos;
}

std::vector<std::string> default_scenario_names() {
  return {"tiny/round-robin", "google2011-sample", "alibaba2018-sample", "alibaba2018-calibrated"};
}

TournamentResult run_tournament(const TournamentOptions& opts, core::Runner& runner) {
  TournamentResult result;
  result.combos = opts.combos.empty() ? default_combos() : opts.combos;

  // Build each scenario recipe once; combos reuse the instance (and so share
  // its explicit trace source) via copies.
  std::vector<core::Scenario> bases;
  const std::vector<std::string> names =
      opts.scenario_names.empty() && opts.extra_scenarios.empty() ? default_scenario_names()
                                                                  : opts.scenario_names;
  for (const std::string& name : names) {
    bases.push_back(core::ScenarioRegistry::builtin().make(name, opts.jobs));
  }
  for (const core::Scenario& s : opts.extra_scenarios) bases.push_back(s);
  if (bases.empty()) throw std::invalid_argument("run_tournament: no scenarios");
  if (result.combos.empty()) throw std::invalid_argument("run_tournament: no combos");
  for (const core::Scenario& s : bases) result.scenarios.push_back(s.name);

  std::vector<core::Scenario> cells;
  cells.reserve(result.combos.size() * bases.size());
  for (const PolicyCombo& combo : result.combos) {
    for (const core::Scenario& base : bases) {
      core::Scenario cell = base;
      cell.name = base.name + "|" + combo.label();
      cell.config.allocator = combo.allocator;
      cell.config.allocator_opts = combo.allocator_opts;
      cell.config.power = combo.power;
      cell.config.power_opts = combo.power_opts;
      cell.config.sla_latency_s = opts.sla_latency_s;
      if (opts.watchdog_s > 0.0) cell.config.watchdog_s = opts.watchdog_s;
      cells.push_back(std::move(cell));
    }
  }
  // Synthetic cells over identical generator options share one cached trace.
  core::share_synthetic_traces(cells);

  // Per-cell timing comes from run_scenario's "runner.scenario" span (each
  // cell name embeds the combo label); this span wraps the whole grid.
  static const telemetry::SpanDef kGridSpan("tournament.grid");
  if (telemetry::enabled()) {
    telemetry::count(telemetry::global_registry().counter("tournament.cells"), cells.size());
  }
  std::vector<core::ScenarioOutcome> outcomes = [&] {
    telemetry::Span span(kGridSpan, std::to_string(cells.size()) + " cells");
    if (opts.journal_path.empty()) return runner.run_outcomes(cells);

    // Crash-safe resume: journaled cells are reconstructed without running;
    // only the remainder goes through the runner (with a journaling
    // observer), and its outcomes merge back into grid order.
    const JournalContents done = load_journal(opts.journal_path);
    std::vector<core::ScenarioOutcome> merged(cells.size());
    std::vector<core::Scenario> todo;
    std::vector<std::size_t> todo_index;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const auto it = done.done.find(cells[i].name);
      if (it != done.done.end()) {
        merged[i].result = it->second;
      } else {
        todo.push_back(cells[i]);
        todo_index.push_back(i);
      }
    }
    if (!todo.empty()) {
      if (done.has_magic) {
        // Trim any truncated trailing record so appended records start on a
        // fresh line instead of gluing onto the dangling partial one.
        std::error_code ec;
        const std::uintmax_t size = std::filesystem::file_size(opts.journal_path, ec);
        if (!ec && size > static_cast<std::uintmax_t>(done.valid_bytes)) {
          std::filesystem::resize_file(
              opts.journal_path, static_cast<std::uintmax_t>(done.valid_bytes), ec);
          if (ec) {
            throw std::runtime_error("tournament journal: cannot trim truncated tail of " +
                                     opts.journal_path + ": " + ec.message());
          }
        }
      }
      // The magic line is written only when the file is genuinely absent or
      // empty — a journal whose every record was truncated away still has
      // its magic and must not get a second one.
      JournalWriter journal(opts.journal_path, !done.has_magic);
      std::vector<core::ScenarioOutcome> ran = runner.run_outcomes(todo, &journal);
      for (std::size_t j = 0; j < ran.size(); ++j) merged[todo_index[j]] = std::move(ran[j]);
    }
    return merged;
  }();

  result.cells.resize(cells.size());
  for (std::size_t c = 0; c < result.combos.size(); ++c) {
    for (std::size_t s = 0; s < bases.size(); ++s) {
      const std::size_t i = c * bases.size() + s;
      TournamentCell& cell = result.cells[i];
      cell.scenario = result.scenarios[s];
      cell.combo = result.combos[c];
      if (outcomes[i].ok()) {
        cell.ok = true;
        cell.result = std::move(outcomes[i].result);
        if (cell.result.wall_seconds > 0.0) {
          cell.decisions_per_sec =
              static_cast<double>(cell.result.final_snapshot.jobs_completed) /
              cell.result.wall_seconds;
        }
      } else {
        cell.error = what_of(outcomes[i].error);
      }
    }
  }
  return result;
}

std::vector<LeaderboardRow> leaderboard(const TournamentResult& result) {
  const std::size_t num_scenarios = result.scenarios.size();
  std::vector<LeaderboardRow> rows;
  rows.reserve(result.combos.size());
  for (std::size_t c = 0; c < result.combos.size(); ++c) {
    LeaderboardRow row;
    row.combo = result.combos[c].label();
    row.allocator = result.combos[c].allocator;
    row.power = result.combos[c].power;
    double downtime_s = 0.0;
    std::size_t recoveries = 0;
    for (std::size_t s = 0; s < num_scenarios; ++s) {
      const TournamentCell& cell = result.cells[c * num_scenarios + s];
      if (!cell.ok) {
        ++row.scenarios_failed;
        continue;
      }
      ++row.scenarios_ok;
      row.energy_kwh += cell.result.final_snapshot.energy_kwh();
      row.latency_p95_s = std::max(row.latency_p95_s, cell.result.latency_p95_s);
      row.latency_p99_s = std::max(row.latency_p99_s, cell.result.latency_p99_s);
      row.sla_violations += cell.result.sla_violations;
      row.jobs_completed += cell.result.final_snapshot.jobs_completed;
      const sim::FaultCounters& f = cell.result.final_snapshot.faults;
      row.crashes += f.crashes;
      row.evictions += f.evictions;
      row.retries += f.retries;
      row.jobs_lost += f.jobs_lost;
      row.lost_cpu_seconds += f.lost_cpu_seconds;
      downtime_s += f.downtime_s;
      recoveries += f.recoveries;
      row.wall_seconds += cell.result.wall_seconds;
    }
    if (recoveries > 0) row.mttr_s = downtime_s / static_cast<double>(recoveries);
    if (row.wall_seconds > 0.0) {
      row.decisions_per_sec = static_cast<double>(row.jobs_completed) / row.wall_seconds;
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const LeaderboardRow& a, const LeaderboardRow& b) {
    if (a.scenarios_failed != b.scenarios_failed) return a.scenarios_failed < b.scenarios_failed;
    if (a.energy_kwh != b.energy_kwh) return a.energy_kwh < b.energy_kwh;
    return a.combo < b.combo;
  });
  return rows;
}

void write_leaderboard_csv(std::ostream& out, const TournamentResult& result,
                           LeaderboardColumns columns) {
  common::CsvWriter writer(out);
  std::vector<std::string> header = {"rank",          "combo",          "allocator",
                                     "power",         "scenarios_ok",   "scenarios_failed",
                                     "energy_kwh",    "latency_p95_s",  "latency_p99_s",
                                     "sla_violations", "jobs_completed",
                                     "crashes",        "evictions",     "retries",
                                     "jobs_lost",      "lost_cpu_s",    "mttr_s"};
  if (columns == LeaderboardColumns::kWithTiming) {
    header.push_back("decisions_per_sec");
    header.push_back("wall_seconds");
  }
  writer.write_row(header);
  const std::vector<LeaderboardRow> rows = leaderboard(result);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const LeaderboardRow& r = rows[i];
    std::vector<std::string> fields = {std::to_string(i + 1),
                                       r.combo,
                                       r.allocator,
                                       r.power,
                                       std::to_string(r.scenarios_ok),
                                       std::to_string(r.scenarios_failed),
                                       common::format_csv_double(r.energy_kwh),
                                       common::format_csv_double(r.latency_p95_s),
                                       common::format_csv_double(r.latency_p99_s),
                                       std::to_string(r.sla_violations),
                                       std::to_string(r.jobs_completed),
                                       std::to_string(r.crashes),
                                       std::to_string(r.evictions),
                                       std::to_string(r.retries),
                                       std::to_string(r.jobs_lost),
                                       common::format_csv_double(r.lost_cpu_seconds),
                                       common::format_csv_double(r.mttr_s)};
    if (columns == LeaderboardColumns::kWithTiming) {
      fields.push_back(common::format_csv_double(r.decisions_per_sec));
      fields.push_back(common::format_csv_double(r.wall_seconds));
    }
    writer.write_row(fields);
  }
}

void write_cells_csv(std::ostream& out, const TournamentResult& result,
                     LeaderboardColumns columns) {
  common::CsvWriter writer(out);
  std::vector<std::string> header = {"scenario",       "combo",          "allocator",
                                     "power",          "status",         "error",
                                     "energy_kwh",     "avg_power_w",    "avg_latency_s",
                                     "latency_p95_s",  "latency_p99_s",  "sla_violations",
                                     "jobs_completed", "crashes",        "evictions",
                                     "retries",        "jobs_lost",      "lost_cpu_s",
                                     "mttr_s"};
  if (columns == LeaderboardColumns::kWithTiming) {
    header.push_back("decisions_per_sec");
    header.push_back("wall_seconds");
  }
  writer.write_row(header);
  for (const TournamentCell& cell : result.cells) {
    std::vector<std::string> fields = {cell.scenario, cell.combo.label(), cell.combo.allocator,
                                       cell.combo.power};
    if (cell.ok) {
      const auto& snap = cell.result.final_snapshot;
      fields.push_back("ok");
      fields.push_back("");
      fields.push_back(common::format_csv_double(snap.energy_kwh()));
      fields.push_back(common::format_csv_double(snap.average_power_watts));
      fields.push_back(common::format_csv_double(snap.average_latency_s()));
      fields.push_back(common::format_csv_double(cell.result.latency_p95_s));
      fields.push_back(common::format_csv_double(cell.result.latency_p99_s));
      fields.push_back(std::to_string(cell.result.sla_violations));
      fields.push_back(std::to_string(snap.jobs_completed));
      fields.push_back(std::to_string(snap.faults.crashes));
      fields.push_back(std::to_string(snap.faults.evictions));
      fields.push_back(std::to_string(snap.faults.retries));
      fields.push_back(std::to_string(snap.faults.jobs_lost));
      fields.push_back(common::format_csv_double(snap.faults.lost_cpu_seconds));
      fields.push_back(common::format_csv_double(snap.faults.mttr_s()));
      if (columns == LeaderboardColumns::kWithTiming) {
        fields.push_back(common::format_csv_double(cell.decisions_per_sec));
        fields.push_back(common::format_csv_double(cell.result.wall_seconds));
      }
    } else {
      fields.push_back("error");
      fields.push_back(cell.error);
      for (int i = 0; i < 13; ++i) fields.push_back("");
      if (columns == LeaderboardColumns::kWithTiming) {
        fields.push_back("");
        fields.push_back("");
      }
    }
    writer.write_row(fields);
  }
}

}  // namespace hcrl::policy
