// Tournament harness: {policy combos} × {scenario set} → leaderboard.
//
// A tournament expands every entered PolicyCombo against every scenario into
// a grid of Scenario cells (each cell = one scenario recipe with the combo's
// allocator/power overrides applied), runs the grid through any core::Runner
// via run_outcomes() — so one failing cell is captured per-cell instead of
// killing the run — and aggregates per-combo leaderboard rows.
//
// Determinism contract (pinned by tests): cell results depend only on the
// cell's scenario, so SerialRunner and ParallelRunner produce bit-identical
// leaderboards at any precision — except the timing columns (wall-clock,
// decisions/sec), which measure this process. write_*_csv therefore take a
// LeaderboardColumns switch; CI artifacts use kWithTiming, the parity tests
// use kDeterministic.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/common/config.hpp"
#include "src/core/runner.hpp"
#include "src/core/scenario.hpp"

namespace hcrl::policy {

/// One allocator+power pairing entered in the tournament.
struct PolicyCombo {
  std::string allocator;
  common::Config allocator_opts;
  std::string power;
  common::Config power_opts;

  /// Stable display/CSV key: `alloc(k=v;...)+power(k=v;...)`, options in
  /// sorted key order, omitted when empty.
  std::string label() const;
};

/// Parse `<allocator>+<power>` into a combo. Each side is a registry name,
/// with sugar for the common parameterizations: `random-<k>` → random-k with
/// that k, `fixed-timeout-<seconds>` → fixed-timeout with that timeout, and
/// `rl-<predictor>` (e.g. rl-window, rl-lstm) → rl-dpm with that predictor.
/// Unknown names throw std::invalid_argument with did-you-mean suggestions.
PolicyCombo combo_from_string(const std::string& text);

/// The default entry list: every cheap heuristic pairing plus one staged-RL
/// local tier (first-fit-packing + rl-dpm/window). DRL combos are entered
/// explicitly by name (they pretrain, so they dominate wall-clock).
std::vector<PolicyCombo> default_combos();

/// Default scenario set: one synthetic tiny cluster, both real-trace catalog
/// samples, and one calibrated synthetic twin.
std::vector<std::string> default_scenario_names();

struct TournamentOptions {
  /// Combos to enter; empty uses default_combos().
  std::vector<PolicyCombo> combos;
  /// core::ScenarioRegistry::builtin() names; empty uses
  /// default_scenario_names().
  std::vector<std::string> scenario_names;
  /// Extra scenarios used as-is (after the named ones) — the seam for custom
  /// TraceSources in tests and embedders.
  std::vector<core::Scenario> extra_scenarios;
  /// Trace scale passed to the scenario factories (ignored by fixed-size
  /// catalog scenarios).
  std::size_t jobs = 2000;
  /// SLA threshold applied to every cell (seconds; 0 disables the count).
  double sla_latency_s = 300.0;
  /// Per-cell wall-clock watchdog applied to every cell (seconds; 0
  /// disables): a cell exceeding it becomes a per-cell error outcome while
  /// the rest of the grid completes. See ExperimentConfig::watchdog_s.
  double watchdog_s = 0.0;
  /// Crash-safe resume journal (empty disables). Every successfully finished
  /// cell appends one fsync-free flushed CSV record to this file; rerunning
  /// the same grid with the same path skips journaled cells and reproduces
  /// their results (including wall_seconds) byte-identically from the
  /// round-trip-exact record instead of recomputing. Failed cells are never
  /// journaled, so they re-run on resume. A truncated trailing record (the
  /// run was killed mid-write) is ignored.
  std::string journal_path;
};

/// One cell of the grid. Exactly one of {ok, error} is meaningful.
struct TournamentCell {
  std::string scenario;  // scenario name (registry name or extra scenario's)
  PolicyCombo combo;
  bool ok = false;
  std::string error;  // exception message when !ok
  core::ExperimentResult result;
  /// jobs_completed / wall_seconds (decision epochs per second; timing —
  /// varies run to run).
  double decisions_per_sec = 0.0;
};

struct TournamentResult {
  std::vector<std::string> scenarios;  // resolved scenario names, grid order
  std::vector<PolicyCombo> combos;     // entered combos, grid order
  /// Combo-major grid: cells[c * scenarios.size() + s].
  std::vector<TournamentCell> cells;
};

/// Expand the grid and run it through `runner`. Scenario recipes are built
/// once per name and share trace materialization across combos. Invalid
/// combos/scenarios throw up front (did-you-mean); runtime failures land in
/// the affected cells.
TournamentResult run_tournament(const TournamentOptions& opts, core::Runner& runner);

/// One leaderboard row: a combo aggregated over its scenario cells.
struct LeaderboardRow {
  std::string combo;  // PolicyCombo::label()
  std::string allocator;
  std::string power;
  std::size_t scenarios_ok = 0;
  std::size_t scenarios_failed = 0;
  double energy_kwh = 0.0;       // sum over ok cells
  double latency_p95_s = 0.0;    // max over ok cells
  double latency_p99_s = 0.0;    // max over ok cells
  std::size_t sla_violations = 0;
  std::size_t jobs_completed = 0;
  // Lost-work accounting under fault injection (sums over ok cells; all
  // zero for fault-free scenario sets).
  std::size_t crashes = 0;
  std::size_t evictions = 0;
  std::size_t retries = 0;
  std::size_t jobs_lost = 0;
  double lost_cpu_seconds = 0.0;
  double mttr_s = 0.0;  // combo-wide downtime / recoveries
  double wall_seconds = 0.0;        // timing
  double decisions_per_sec = 0.0;   // timing
};

/// Deterministic ranking: complete combos first (fewest failed cells), then
/// ascending total energy, then label.
std::vector<LeaderboardRow> leaderboard(const TournamentResult& result);

enum class LeaderboardColumns {
  kDeterministic,  // engine-independent columns only (parity tests)
  kWithTiming,     // + wall_seconds / decisions_per_sec (CI artifacts)
};

/// Leaderboard CSV (one ranked row per combo; round-trip-exact doubles).
void write_leaderboard_csv(std::ostream& out, const TournamentResult& result,
                           LeaderboardColumns columns = LeaderboardColumns::kWithTiming);

/// Per-cell results CSV in grid order (failed cells keep their error message
/// and empty metric fields).
void write_cells_csv(std::ostream& out, const TournamentResult& result,
                     LeaderboardColumns columns = LeaderboardColumns::kWithTiming);

}  // namespace hcrl::policy
