#include "src/rl/dqn.hpp"

#include <stdexcept>

#include "src/nn/loss.hpp"
#include "src/rl/smdp.hpp"

namespace hcrl::rl {

namespace {
nn::Network build_net(std::size_t state_dim, std::size_t n_actions,
                      const DqnAgent::Options& opts, common::Rng& rng) {
  nn::Network net;
  std::size_t prev = state_dim;
  for (std::size_t dim : opts.hidden_dims) {
    net.add_dense(prev, dim, opts.activation, rng);
    prev = dim;
  }
  net.add_dense(prev, n_actions, nn::Activation::kIdentity, rng);
  return net;
}
}  // namespace

DqnAgent::DqnAgent(std::size_t state_dim, std::size_t n_actions, const Options& opts,
                   common::Rng& rng)
    : state_dim_(state_dim),
      n_actions_(n_actions),
      opts_(opts),
      online_(build_net(state_dim, n_actions, opts, rng)),
      target_(build_net(state_dim, n_actions, opts, rng)),
      replay_(opts.replay_capacity),
      train_rng_(rng.fork()) {
  if (state_dim == 0 || n_actions == 0) {
    throw std::invalid_argument("DqnAgent: empty state or action space");
  }
  if (opts.batch_size == 0) throw std::invalid_argument("DqnAgent: batch_size must be > 0");
  optimizer_ = std::make_unique<nn::Adam>(online_.params(),
                                          nn::Adam::Options{.lr = opts.learning_rate});
  sync_target();
}

nn::Vec DqnAgent::q_values(const nn::Vec& state) { return online_.predict(state); }

std::size_t DqnAgent::act(const nn::Vec& state, common::Rng& rng) {
  const double eps = opts_.epsilon.value(action_steps_);
  ++action_steps_;
  if (rng.bernoulli(eps)) {
    return static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n_actions_) - 1));
  }
  return act_greedy(state);
}

std::size_t DqnAgent::act_greedy(const nn::Vec& state) { return nn::argmax(q_values(state)); }

void DqnAgent::observe(Transition t) {
  if (t.state.size() != state_dim_ || t.next_state.size() != state_dim_) {
    throw std::invalid_argument("DqnAgent::observe: bad state dimension");
  }
  if (t.action >= n_actions_) throw std::invalid_argument("DqnAgent::observe: bad action");
  replay_.push(std::move(t));
  ++observed_;
  if (replay_.size() >= opts_.min_replay_before_training &&
      observed_ % static_cast<std::int64_t>(opts_.train_interval) == 0) {
    last_loss_ = train_step();
  }
  if (observed_ % static_cast<std::int64_t>(opts_.target_sync_interval) == 0) {
    sync_target();
  }
}

double DqnAgent::train_step() {
  if (replay_.size() < opts_.min_replay_before_training) return -1.0;
  auto batch = replay_.sample(opts_.batch_size, train_rng_);
  optimizer_->zero_grad();
  double total_loss = 0.0;
  const double inv_n = 1.0 / static_cast<double>(batch.size());
  for (const Transition* t : batch) {
    nn::Vec next_q = target_.predict(t->next_state);
    double best_next;
    if (opts_.double_q) {
      best_next = next_q[nn::argmax(online_.predict(t->next_state))];
    } else {
      best_next = next_q[nn::argmax(next_q)];
    }
    const double target = smdp_target(t->reward_rate, t->tau, opts_.beta, best_next);

    nn::Vec pred = online_.forward(t->state);
    nn::LossResult loss = nn::masked_mse_loss(pred, t->action, target);
    total_loss += loss.value;
    nn::scale_in_place(loss.grad, inv_n);
    online_.backward(loss.grad);
  }
  nn::clip_grad_norm(online_.params(), opts_.grad_clip);
  optimizer_->step();
  ++train_steps_;
  return total_loss * inv_n;
}

void DqnAgent::sync_target() { nn::copy_param_values(online_.params(), target_.params()); }

}  // namespace hcrl::rl
