#include "src/rl/dqn.hpp"

#include <stdexcept>

#include "src/nn/loss.hpp"
#include "src/rl/smdp.hpp"

namespace hcrl::rl {

namespace {
nn::Network build_net(std::size_t state_dim, std::size_t n_actions,
                      const DqnAgent::Options& opts, common::Rng& rng) {
  nn::Network net;
  std::size_t prev = state_dim;
  for (std::size_t dim : opts.hidden_dims) {
    net.add_dense(prev, dim, opts.activation, rng);
    prev = dim;
  }
  net.add_dense(prev, n_actions, nn::Activation::kIdentity, rng);
  return net;
}
}  // namespace

DqnAgent::DqnAgent(std::size_t state_dim, std::size_t n_actions, const Options& opts,
                   common::Rng& rng)
    : state_dim_(state_dim),
      n_actions_(n_actions),
      opts_(opts),
      online_(build_net(state_dim, n_actions, opts, rng)),
      target_(build_net(state_dim, n_actions, opts, rng)),
      replay_(opts.replay_capacity),
      train_rng_(rng.fork()) {
  if (state_dim == 0 || n_actions == 0) {
    throw std::invalid_argument("DqnAgent: empty state or action space");
  }
  if (opts.batch_size == 0) throw std::invalid_argument("DqnAgent: batch_size must be > 0");
  online_params_ = online_.params();
  optimizer_ = std::make_unique<nn::Adam>(online_params_,
                                          nn::Adam::Options{.lr = opts.learning_rate});
  sync_target();
}

nn::Vec DqnAgent::q_values(const nn::Vec& state) { return online_.predict(state); }

std::size_t DqnAgent::act(const nn::Vec& state, common::Rng& rng) {
  const double eps = opts_.epsilon.value(action_steps_);
  ++action_steps_;
  if (rng.bernoulli(eps)) {
    return static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n_actions_) - 1));
  }
  return act_greedy(state);
}

std::size_t DqnAgent::act_greedy(const nn::Vec& state) { return nn::argmax(q_values(state)); }

void DqnAgent::observe(Transition t) {
  if (t.state.size() != state_dim_ || t.next_state.size() != state_dim_) {
    throw std::invalid_argument("DqnAgent::observe: bad state dimension");
  }
  if (t.action >= n_actions_) throw std::invalid_argument("DqnAgent::observe: bad action");
  replay_.push(std::move(t));
  ++observed_;
  if (replay_.size() >= opts_.min_replay_before_training &&
      observed_ % static_cast<std::int64_t>(opts_.train_interval) == 0) {
    last_loss_ = train_step();
  }
  if (observed_ % static_cast<std::int64_t>(opts_.target_sync_interval) == 0) {
    sync_target();
  }
}

double DqnAgent::train_step() {
  if (replay_.size() < opts_.min_replay_before_training) return -1.0;
  auto batch = replay_.sample(opts_.batch_size, train_rng_);
  optimizer_->zero_grad();
  const double inv_n = 1.0 / static_cast<double>(batch.size());
  const double total_loss = opts_.batched_train ? accumulate_grads_batched(batch, inv_n)
                                                : accumulate_grads_per_sample(batch, inv_n);
  nn::clip_grad_norm(online_params_, opts_.grad_clip);
  optimizer_->step();
  ++train_steps_;
  return total_loss * inv_n;
}

double DqnAgent::accumulate_grads_per_sample(const std::vector<const Transition*>& batch,
                                             double inv_n) {
  double total_loss = 0.0;
  for (const Transition* t : batch) {
    nn::Vec next_q = target_.predict(t->next_state);
    double best_next;
    if (opts_.double_q) {
      best_next = next_q[nn::argmax(online_.predict(t->next_state))];
    } else {
      best_next = next_q[nn::argmax(next_q)];
    }
    const double target = smdp_target(t->reward_rate, t->tau, opts_.beta, best_next);

    nn::Vec pred = online_.forward(t->state);
    nn::LossResult loss = nn::masked_mse_loss(pred, t->action, target);
    total_loss += loss.value;
    nn::scale_in_place(loss.grad, inv_n);
    online_.backward(loss.grad, /*want_input_grad=*/false);
  }
  return total_loss;
}

double DqnAgent::accumulate_grads_batched(const std::vector<const Transition*>& batch,
                                          double inv_n) {
  const std::size_t n = batch.size();
  nn::Matrix states, next_states;
  states.resize_for_overwrite(n, state_dim_);
  next_states.resize_for_overwrite(n, state_dim_);
  std::vector<std::size_t> actions(n);
  for (std::size_t b = 0; b < n; ++b) {
    states.set_row(b, batch[b]->state);
    next_states.set_row(b, batch[b]->next_state);
    actions[b] = batch[b]->action;
  }

  // Bootstrap targets: one batched sweep over the target (and, for double
  // Q-learning, the online) network instead of |batch| predict() calls.
  nn::Matrix next_q_online;
  if (opts_.double_q) next_q_online = online_.predict_batch(next_states);
  const nn::Matrix next_q = target_.predict_batch(std::move(next_states));
  nn::Vec targets(n);
  for (std::size_t b = 0; b < n; ++b) {
    const double* row = next_q.data() + b * n_actions_;
    std::size_t best = 0;
    if (opts_.double_q) {
      const double* sel = next_q_online.data() + b * n_actions_;
      for (std::size_t a = 1; a < n_actions_; ++a) {
        if (sel[a] > sel[best]) best = a;
      }
    } else {
      for (std::size_t a = 1; a < n_actions_; ++a) {
        if (row[a] > row[best]) best = a;
      }
    }
    targets[b] = smdp_target(batch[b]->reward_rate, batch[b]->tau, opts_.beta, row[best]);
  }

  // One forward/backward pair for the whole minibatch; the per-sample
  // gradient accumulation folds into the GEMMs of the backward pass.
  const nn::Matrix pred = online_.forward_batch(std::move(states));
  nn::BatchLossResult loss = nn::masked_mse_loss_batch(pred, actions, targets, inv_n);
  online_.backward_batch(loss.grad, /*want_input_grad=*/false);
  return loss.value;
}

void DqnAgent::sync_target() { nn::copy_param_values(online_.params(), target_.params()); }

}  // namespace hcrl::rl
