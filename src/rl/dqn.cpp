#include "src/rl/dqn.hpp"

#include <stdexcept>
#include <type_traits>
#include <utility>

#include "src/nn/loss.hpp"
#include "src/nn/network.hpp"
#include "src/nn/optimizer.hpp"
#include "src/nn/serialize.hpp"
#include "src/rl/smdp.hpp"

namespace hcrl::rl {

namespace detail {

/// Precision-parameterized half of DqnAgent: the networks, optimizer and
/// gradient math. The facade owns replay/counters and hands sampled
/// minibatches (double-typed Transitions) down here; states cross the
/// boundary with one value-cast per element.
template <class S>
class DqnCore {
 public:
  DqnCore(std::size_t state_dim, std::size_t n_actions, const DqnAgent::Options& opts,
          common::Rng& rng)
      : state_dim_(state_dim),
        n_actions_(n_actions),
        online_(build_net(state_dim, n_actions, opts, rng)),
        target_(build_net(state_dim, n_actions, opts, rng)) {
    online_params_ = online_.params();
    optimizer_ = std::make_unique<nn::AdamT<S>>(online_params_,
                                                nn::AdamOptions{.lr = opts.learning_rate});
    sync_target();
  }

  nn::Vec q_values(const nn::Vec& state) {
    if constexpr (std::is_same_v<S, double>) {
      return online_.predict(state);  // no conversion copies on the f64 path
    } else {
      return nn::convert_vec<double>(online_.predict(nn::convert_vec<S>(state)));
    }
  }

  /// B states through ONE batched forward sweep (GEMM) instead of B predict()
  /// walks. Row b of `out` (resized to B x n_actions) is states[b]'s
  /// Q-vector; for layer dims within one GEMM panel the rows are
  /// bit-identical to per-call q_values() (see nn/matrix.hpp).
  void q_values_batch(std::span<const nn::Vec* const> states, nn::Matrix& out) {
    const std::size_t B = states.size();
    out.resize_for_overwrite(B, n_actions_);
    if (B == 0) return;
    nn::MatrixT<S> X;
    X.resize_for_overwrite(B, state_dim_);
    for (std::size_t b = 0; b < B; ++b) X.set_row_cast(b, *states[b]);
    const nn::MatrixT<S> Q = online_.predict_batch(std::move(X));
    for (std::size_t b = 0; b < B; ++b) {
      double* dst = out.data() + b * out.cols();
      const S* src = Q.data() + b * Q.cols();
      for (std::size_t a = 0; a < n_actions_; ++a) dst[a] = static_cast<double>(src[a]);
    }
  }

  /// One SGD step on `batch`; returns the mean loss.
  double train(const std::vector<const Transition*>& batch, const DqnAgent::Options& opts) {
    optimizer_->zero_grad();
    const double inv_n = 1.0 / static_cast<double>(batch.size());
    const double total_loss = opts.batched_train ? accumulate_grads_batched(batch, inv_n, opts)
                                                 : accumulate_grads_per_sample(batch, inv_n, opts);
    nn::clip_grad_norm(online_params_, opts.grad_clip);
    optimizer_->step();
    return total_loss * inv_n;
  }

  void sync_target() { nn::copy_param_values(online_.params(), target_.params()); }

  std::vector<nn::ParamBlockPtrT<S>> params() const { return online_.params(); }

 private:
  static nn::NetworkT<S> build_net(std::size_t state_dim, std::size_t n_actions,
                                   const DqnAgent::Options& opts, common::Rng& rng) {
    nn::NetworkT<S> net;
    std::size_t prev = state_dim;
    for (std::size_t dim : opts.hidden_dims) {
      net.add_dense(prev, dim, opts.activation, rng);
      prev = dim;
    }
    net.add_dense(prev, n_actions, nn::Activation::kIdentity, rng);
    return net;
  }

  /// Accumulate minibatch gradients sample by sample; returns summed loss.
  double accumulate_grads_per_sample(const std::vector<const Transition*>& batch, double inv_n,
                                     const DqnAgent::Options& opts) {
    double total_loss = 0.0;
    for (const Transition* t : batch) {
      const nn::VecT<S> next_state = nn::convert_vec<S>(t->next_state);
      nn::VecT<S> next_q = target_.predict(next_state);
      S best_next;
      if (opts.double_q) {
        best_next = next_q[nn::argmax(online_.predict(next_state))];
      } else {
        best_next = next_q[nn::argmax(next_q)];
      }
      const double target =
          smdp_target(t->reward_rate, t->tau, opts.beta, static_cast<double>(best_next));

      nn::VecT<S> pred = online_.forward(nn::convert_vec<S>(t->state));
      nn::LossResultT<S> loss = nn::masked_mse_loss(pred, t->action, static_cast<S>(target));
      total_loss += loss.value;
      nn::scale_in_place(loss.grad, static_cast<S>(inv_n));
      online_.backward(loss.grad, /*want_input_grad=*/false);
    }
    return total_loss;
  }

  /// Same math through one batched forward/backward pair per network.
  double accumulate_grads_batched(const std::vector<const Transition*>& batch, double inv_n,
                                  const DqnAgent::Options& opts) {
    const std::size_t n = batch.size();
    nn::MatrixT<S> states, next_states;
    states.resize_for_overwrite(n, state_dim_);
    next_states.resize_for_overwrite(n, state_dim_);
    std::vector<std::size_t> actions(n);
    for (std::size_t b = 0; b < n; ++b) {
      states.set_row_cast(b, batch[b]->state);
      next_states.set_row_cast(b, batch[b]->next_state);
      actions[b] = batch[b]->action;
    }

    // Bootstrap targets: one batched sweep over the target (and, for double
    // Q-learning, the online) network instead of |batch| predict() calls.
    nn::MatrixT<S> next_q_online;
    if (opts.double_q) next_q_online = online_.predict_batch(next_states);
    const nn::MatrixT<S> next_q = target_.predict_batch(std::move(next_states));
    nn::VecT<S> targets(n);
    for (std::size_t b = 0; b < n; ++b) {
      const S* row = next_q.data() + b * n_actions_;
      std::size_t best = 0;
      if (opts.double_q) {
        const S* sel = next_q_online.data() + b * n_actions_;
        for (std::size_t a = 1; a < n_actions_; ++a) {
          if (sel[a] > sel[best]) best = a;
        }
      } else {
        for (std::size_t a = 1; a < n_actions_; ++a) {
          if (row[a] > row[best]) best = a;
        }
      }
      targets[b] = static_cast<S>(smdp_target(batch[b]->reward_rate, batch[b]->tau, opts.beta,
                                              static_cast<double>(row[best])));
    }

    // One forward/backward pair for the whole minibatch; the per-sample
    // gradient accumulation folds into the GEMMs of the backward pass.
    const nn::MatrixT<S> pred = online_.forward_batch(std::move(states));
    nn::BatchLossResultT<S> loss =
        nn::masked_mse_loss_batch(pred, actions, targets, static_cast<S>(inv_n));
    online_.backward_batch(loss.grad, /*want_input_grad=*/false);
    return loss.value;
  }

  std::size_t state_dim_;
  std::size_t n_actions_;
  nn::NetworkT<S> online_;
  nn::NetworkT<S> target_;
  std::vector<nn::ParamBlockPtrT<S>> online_params_;  // gathered once, reused every step
  std::unique_ptr<nn::AdamT<S>> optimizer_;
};

template class DqnCore<float>;
template class DqnCore<double>;

}  // namespace detail

DqnAgent::DqnAgent(std::size_t state_dim, std::size_t n_actions, const Options& opts,
                   common::Rng& rng)
    : state_dim_(state_dim),
      n_actions_(n_actions),
      opts_(opts),
      replay_(opts.replay_capacity) {
  if (state_dim == 0 || n_actions == 0) {
    throw std::invalid_argument("DqnAgent: empty state or action space");
  }
  if (opts.batch_size == 0) throw std::invalid_argument("DqnAgent: batch_size must be > 0");
  // Draw the network weights from `rng` first and fork the training stream
  // afterwards — the same consumption order as before the precision split,
  // so seeded runs reproduce the old trajectories at f64 (and the f32 agent
  // consumes the identical double stream, rounding each draw).
  if (opts_.precision == nn::Precision::kF32) {
    f32_ = std::make_unique<detail::DqnCore<float>>(state_dim, n_actions, opts_, rng);
  } else {
    f64_ = std::make_unique<detail::DqnCore<double>>(state_dim, n_actions, opts_, rng);
  }
  train_rng_ = rng.fork();
}

DqnAgent::~DqnAgent() = default;
DqnAgent::DqnAgent(DqnAgent&&) noexcept = default;
DqnAgent& DqnAgent::operator=(DqnAgent&&) noexcept = default;

nn::Vec DqnAgent::q_values(const nn::Vec& state) {
  return f32_ ? f32_->q_values(state) : f64_->q_values(state);
}

std::size_t DqnAgent::act(const nn::Vec& state, common::Rng& rng) {
  const double eps = opts_.epsilon.value(action_steps_);
  ++action_steps_;
  if (rng.bernoulli(eps)) {
    return static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n_actions_) - 1));
  }
  return act_greedy(state);
}

std::size_t DqnAgent::act_greedy(const nn::Vec& state) { return nn::argmax(q_values(state)); }

void DqnAgent::q_values_batch(std::span<const nn::Vec* const> states, nn::Matrix& out) {
  if (f32_) {
    f32_->q_values_batch(states, out);
  } else {
    f64_->q_values_batch(states, out);
  }
}

std::vector<std::size_t> DqnAgent::act_batch(std::span<const nn::Vec* const> states,
                                             common::Rng& rng) {
  // Phase 1 walks the states in order making exactly the RNG draws a loop of
  // act() calls would make (epsilon advances per state; exploration draws its
  // uniform immediately), so the action sequence is bit-identical to the
  // per-call path. Phase 2 fuses only the greedy states' forwards into one
  // GEMM batch — exploration never evaluates the network, in either path.
  std::vector<std::size_t> actions(states.size());
  std::vector<const nn::Vec*> greedy_states;
  std::vector<std::size_t> greedy_pos;
  for (std::size_t i = 0; i < states.size(); ++i) {
    const double eps = opts_.epsilon.value(action_steps_);
    ++action_steps_;
    if (rng.bernoulli(eps)) {
      actions[i] =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n_actions_) - 1));
    } else {
      greedy_states.push_back(states[i]);
      greedy_pos.push_back(i);
    }
  }
  if (!greedy_states.empty()) {
    nn::Matrix q;
    q_values_batch(greedy_states, q);
    for (std::size_t g = 0; g < greedy_pos.size(); ++g) {
      actions[greedy_pos[g]] =
          nn::argmax(std::span<const double>(q.data() + g * q.cols(), q.cols()));
    }
  }
  return actions;
}

void DqnAgent::observe(Transition t) {
  if (t.state.size() != state_dim_ || t.next_state.size() != state_dim_) {
    throw std::invalid_argument("DqnAgent::observe: bad state dimension");
  }
  if (t.action >= n_actions_) throw std::invalid_argument("DqnAgent::observe: bad action");
  replay_.push(std::move(t));
  ++observed_;
  if (replay_.size() >= opts_.min_replay_before_training &&
      observed_ % static_cast<std::int64_t>(opts_.train_interval) == 0) {
    last_loss_ = train_step();
  }
  if (observed_ % static_cast<std::int64_t>(opts_.target_sync_interval) == 0) {
    sync_target_();
  }
}

double DqnAgent::train_step() {
  if (replay_.size() < opts_.min_replay_before_training) return -1.0;
  auto batch = replay_.sample(opts_.batch_size, train_rng_);
  ++train_steps_;
  return f32_ ? f32_->train(batch, opts_) : f64_->train(batch, opts_);
}

std::vector<nn::ParamBlockPtr> DqnAgent::trainable_params() const {
  if (!f64_) {
    throw std::logic_error("DqnAgent::trainable_params: agent is f32; use param_values()");
  }
  return f64_->params();
}

std::vector<double> DqnAgent::param_values() const {
  return f32_ ? nn::flatten_param_values(f32_->params())
              : nn::flatten_param_values(f64_->params());
}

void DqnAgent::save_params(std::ostream& out) const {
  if (f32_) {
    nn::save_params(out, f32_->params());
  } else {
    nn::save_params(out, f64_->params());
  }
}

void DqnAgent::load_params(std::istream& in) {
  if (f32_) {
    nn::load_params(in, f32_->params());
    f32_->sync_target();
  } else {
    nn::load_params(in, f64_->params());
    f64_->sync_target();
  }
}

void DqnAgent::sync_target_() {
  if (f32_) {
    f32_->sync_target();
  } else {
    f64_->sync_target();
  }
}

}  // namespace hcrl::rl
