// Monolithic deep Q-learning agent over a feed-forward network.
//
// This is the "conventional feed-forward neural network that directly
// outputs Q value estimates" the paper discusses (and rejects for the
// global tier) in §V-A. We keep it as (a) the ablation baseline against the
// autoencoder/weight-sharing architecture, and (b) a reusable DRL building
// block. Targets use continuous-time SMDP discounting (Eqn. 2); stability
// comes from experience replay and a periodically-synced target network.
//
// The agent is precision-parameterized: Options::precision picks the float
// or double instantiation of the NN substrate for the networks, optimizer
// state and GEMM sweeps. The boundary stays double-typed (states, Q-values,
// replay transitions) so callers are precision-agnostic; replay storage and
// minibatch sampling are shared across precisions, which is what lets the
// f32-vs-f64 parity gates compare agents transition for transition.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "src/common/rng.hpp"
#include "src/nn/layer.hpp"
#include "src/nn/precision.hpp"
#include "src/rl/replay.hpp"
#include "src/rl/schedule.hpp"

namespace hcrl::rl {

namespace detail {
template <class S>
class DqnCore;
}  // namespace detail

class DqnAgent {
 public:
  struct Options {
    std::vector<std::size_t> hidden_dims = {128};
    nn::Activation activation = nn::Activation::kElu;
    double beta = 0.5;               // continuous-time discount rate
    double learning_rate = 1e-3;
    double grad_clip = 10.0;         // the paper clips gradient norm to 10
    std::size_t replay_capacity = 50000;
    std::size_t batch_size = 32;
    std::size_t min_replay_before_training = 500;
    std::size_t train_interval = 4;       // SGD steps every N observed transitions
    std::size_t target_sync_interval = 500;
    EpsilonSchedule epsilon = EpsilonSchedule::exponential(1.0, 0.05, 10000);
    /// Double Q-learning (van Hasselt): select the bootstrap action with the
    /// online network, evaluate it with the target network. Reduces the
    /// max-operator overestimation bias of vanilla DQN.
    bool double_q = false;
    /// Train on the whole minibatch in one batched forward/backward pair
    /// (GEMM path). The per-sample loop is kept as the reference
    /// implementation. For layer dimensions within one GEMM panel
    /// (see matrix.cpp's Panel<S>) the two paths accumulate bit-identical
    /// gradients (tests/batch_parity_test.cpp); beyond that the panel split
    /// regroups the reduction chains, and the paths agree only to
    /// floating-point reassociation error.
    bool batched_train = true;
    /// Scalar type of the networks/optimizer (f32 halves memory traffic and
    /// doubles SIMD width in the GEMM kernels). Defaults to the process-wide
    /// default (HCRL_PRECISION environment variable, f64 when unset).
    nn::Precision precision = nn::default_precision();
  };

  DqnAgent(std::size_t state_dim, std::size_t n_actions, const Options& opts, common::Rng& rng);
  ~DqnAgent();
  DqnAgent(DqnAgent&&) noexcept;
  DqnAgent& operator=(DqnAgent&&) noexcept;

  std::size_t state_dim() const noexcept { return state_dim_; }
  std::size_t n_actions() const noexcept { return n_actions_; }
  nn::Precision precision() const noexcept { return opts_.precision; }

  /// Q-values of every action in `state` (online network, inference).
  nn::Vec q_values(const nn::Vec& state);
  /// Epsilon-greedy action; advances the exploration counter.
  std::size_t act(const nn::Vec& state, common::Rng& rng);
  std::size_t act_greedy(const nn::Vec& state);

  /// Q-values of B states in one batched forward sweep; row b of `out`
  /// (resized to B x n_actions) is states[b]'s Q-vector, bit-identical to
  /// q_values(*states[b]) for panel-sized layers (see nn/matrix.hpp).
  void q_values_batch(std::span<const nn::Vec* const> states, nn::Matrix& out);
  /// Epsilon-greedy actions for B states with the RNG drawn in per-call act()
  /// order (bit-identical action sequence); greedy states share one batched
  /// forward, exploration states never touch the network.
  std::vector<std::size_t> act_batch(std::span<const nn::Vec* const> states, common::Rng& rng);

  /// Record a transition; trains and syncs the target net on schedule.
  void observe(Transition t);

  /// One gradient step on a sampled minibatch. Returns the batch loss, or
  /// a negative value if the replay buffer is still warming up.
  double train_step();

  const ReplayBuffer<Transition>& replay() const noexcept { return replay_; }
  /// Online-network parameter blocks. Only valid for f64 agents (the blocks
  /// are double-typed); throws std::logic_error at f32 — use param_values()
  /// or save/load for precision-agnostic access.
  std::vector<nn::ParamBlockPtr> trainable_params() const;
  /// Flattened copy of every online-network parameter as double, at any
  /// precision (parity tests, diagnostics).
  std::vector<double> param_values() const;
  /// Persist / restore the online network (text format of nn/serialize.hpp;
  /// works at either precision). Loading also syncs the target network.
  void save_params(std::ostream& out) const;
  void load_params(std::istream& in);

  std::int64_t observed_transitions() const noexcept { return observed_; }
  std::int64_t train_steps() const noexcept { return train_steps_; }
  double current_epsilon() const { return opts_.epsilon.value(action_steps_); }
  double last_loss() const noexcept { return last_loss_; }

 private:
  void sync_target_();

  std::size_t state_dim_;
  std::size_t n_actions_;
  Options opts_;
  // Exactly one core is non-null, matching opts_.precision; the facade keeps
  // the precision-independent state (replay, counters, schedules) so both
  // instantiations share one behaviour.
  std::unique_ptr<detail::DqnCore<float>> f32_;
  std::unique_ptr<detail::DqnCore<double>> f64_;
  ReplayBuffer<Transition> replay_;
  common::Rng train_rng_;
  std::int64_t observed_ = 0;
  std::int64_t train_steps_ = 0;
  std::int64_t action_steps_ = 0;
  double last_loss_ = 0.0;
};

}  // namespace hcrl::rl
