// Experience replay memory (the paper's "experience memory D", §IV).
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "src/common/rng.hpp"
#include "src/nn/matrix.hpp"

namespace hcrl::rl {

/// One SMDP transition: state, action, average reward *rate* over the
/// sojourn, sojourn length tau, and successor state.
struct Transition {
  nn::Vec state;
  std::size_t action = 0;
  double reward_rate = 0.0;
  double tau = 0.0;
  nn::Vec next_state;
};

/// Fixed-capacity ring buffer with uniform sampling.
template <typename T = Transition>
class ReplayBuffer {
 public:
  explicit ReplayBuffer(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) throw std::invalid_argument("ReplayBuffer: capacity must be > 0");
    items_.reserve(capacity);
  }

  void push(T item) {
    if (items_.size() < capacity_) {
      items_.push_back(std::move(item));
    } else {
      items_[head_] = std::move(item);
      head_ = (head_ + 1) % capacity_;
    }
  }

  std::size_t size() const noexcept { return items_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  bool empty() const noexcept { return items_.empty(); }

  const T& at(std::size_t i) const { return items_.at(i); }

  /// Sample `n` items uniformly with replacement.
  std::vector<const T*> sample(std::size_t n, common::Rng& rng) const {
    if (items_.empty()) throw std::logic_error("ReplayBuffer::sample: empty");
    std::vector<const T*> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto idx =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(items_.size()) - 1));
      out.push_back(&items_[idx]);
    }
    return out;
  }

  void clear() noexcept {
    items_.clear();
    head_ = 0;
  }

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;
  std::vector<T> items_;
};

}  // namespace hcrl::rl
