// Exploration schedules for epsilon-greedy policies.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace hcrl::rl {

/// Epsilon as a function of the step counter. Supports constant, linear
/// decay and exponential decay; all clamp to [end, start].
class EpsilonSchedule {
 public:
  enum class Kind { kConstant, kLinear, kExponential };

  static EpsilonSchedule constant(double eps) {
    if (eps < 0.0 || eps > 1.0) throw std::invalid_argument("epsilon out of [0,1]");
    return EpsilonSchedule(Kind::kConstant, eps, eps, 1);
  }
  /// Linearly anneal from `start` to `end` over `steps` steps.
  static EpsilonSchedule linear(double start, double end, std::int64_t steps) {
    check(start, end, steps);
    return EpsilonSchedule(Kind::kLinear, start, end, steps);
  }
  /// Exponentially anneal: eps(t) = end + (start-end) * 0.5^(t/steps).
  static EpsilonSchedule exponential(double start, double end, std::int64_t half_life) {
    check(start, end, half_life);
    return EpsilonSchedule(Kind::kExponential, start, end, half_life);
  }

  double value(std::int64_t step) const {
    switch (kind_) {
      case Kind::kConstant:
        return start_;
      case Kind::kLinear: {
        const double frac = std::min(1.0, static_cast<double>(step) / static_cast<double>(steps_));
        return start_ + (end_ - start_) * frac;
      }
      case Kind::kExponential: {
        const double decay =
            std::pow(0.5, static_cast<double>(step) / static_cast<double>(steps_));
        return end_ + (start_ - end_) * decay;
      }
    }
    return end_;
  }

 private:
  EpsilonSchedule(Kind kind, double start, double end, std::int64_t steps)
      : kind_(kind), start_(start), end_(end), steps_(steps) {}

  static void check(double start, double end, std::int64_t steps) {
    if (start < 0.0 || start > 1.0 || end < 0.0 || end > 1.0) {
      throw std::invalid_argument("epsilon out of [0,1]");
    }
    if (steps <= 0) throw std::invalid_argument("schedule steps must be > 0");
  }

  Kind kind_;
  double start_;
  double end_;
  std::int64_t steps_;
};

}  // namespace hcrl::rl
