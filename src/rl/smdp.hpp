// Continuous-time (SMDP) Q-learning math — Eqn. (1)/(2) of the paper.
//
// For a sojourn of length tau in which the reward *rate* is r̄ and the
// discount rate is beta, the discounted accumulated reward is
//   ∫_0^tau e^{-beta t} r̄ dt = r̄ (1 - e^{-beta tau}) / beta,
// and the value of the successor state is discounted by e^{-beta tau}.
#pragma once

#include <cmath>
#include <stdexcept>

namespace hcrl::rl {

/// e^{-beta * tau}: discount applied to the successor value.
inline double smdp_discount(double beta, double tau) {
  if (beta <= 0.0) throw std::invalid_argument("smdp_discount: beta must be > 0");
  if (tau < 0.0) throw std::invalid_argument("smdp_discount: tau must be >= 0");
  return std::exp(-beta * tau);
}

/// (1 - e^{-beta tau}) / beta: the integral of e^{-beta t} over [0, tau].
/// Numerically stable for small beta*tau (expm1).
inline double smdp_reward_weight(double beta, double tau) {
  if (beta <= 0.0) throw std::invalid_argument("smdp_reward_weight: beta must be > 0");
  if (tau < 0.0) throw std::invalid_argument("smdp_reward_weight: tau must be >= 0");
  return -std::expm1(-beta * tau) / beta;
}

/// Bellman target of Eqn. (2):
///   (1-e^{-beta tau})/beta * reward_rate + e^{-beta tau} * next_value.
inline double smdp_target(double reward_rate, double tau, double beta, double next_value) {
  return smdp_reward_weight(beta, tau) * reward_rate + smdp_discount(beta, tau) * next_value;
}

}  // namespace hcrl::rl
