#include "src/rl/tabular_q.hpp"

#include <stdexcept>

#include "src/rl/smdp.hpp"

namespace hcrl::rl {

TabularQAgent::TabularQAgent(std::size_t n_states, std::size_t n_actions, const Options& opts)
    : n_states_(n_states),
      n_actions_(n_actions),
      opts_(opts),
      q_(n_states * n_actions, opts.initial_q),
      visits_(n_states * n_actions, 0) {
  if (n_states == 0 || n_actions == 0) {
    throw std::invalid_argument("TabularQAgent: empty state or action space");
  }
  if (opts.learning_rate <= 0.0 || opts.learning_rate > 1.0) {
    throw std::invalid_argument("TabularQAgent: learning_rate must be in (0,1]");
  }
  if (opts.beta <= 0.0) throw std::invalid_argument("TabularQAgent: beta must be > 0");
}

std::size_t TabularQAgent::index(std::size_t state, std::size_t action) const {
  if (state >= n_states_ || action >= n_actions_) {
    throw std::out_of_range("TabularQAgent: state/action out of range");
  }
  return state * n_actions_ + action;
}

std::size_t TabularQAgent::select_action(std::size_t state, common::Rng& rng) {
  const double eps = opts_.epsilon.value(step_);
  ++step_;
  if (rng.bernoulli(eps)) {
    return static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n_actions_) - 1));
  }
  return greedy_action(state);
}

std::size_t TabularQAgent::greedy_action(std::size_t state) const {
  std::size_t best = 0;
  double best_q = q_[index(state, 0)];
  for (std::size_t a = 1; a < n_actions_; ++a) {
    const double v = q_[index(state, a)];
    if (v > best_q) {
      best_q = v;
      best = a;
    }
  }
  return best;
}

void TabularQAgent::update(std::size_t state, std::size_t action, double reward_rate, double tau,
                           std::size_t next_state) {
  update_with_value(state, action, reward_rate, tau, max_q(next_state));
}

void TabularQAgent::update_with_value(std::size_t state, std::size_t action, double reward_rate,
                                      double tau, double next_value) {
  const double target = smdp_target(reward_rate, tau, opts_.beta, next_value);
  double& qv = q_[index(state, action)];
  qv += opts_.learning_rate * (target - qv);
  ++visits_[index(state, action)];
}

double TabularQAgent::q(std::size_t state, std::size_t action) const {
  return q_[index(state, action)];
}

double TabularQAgent::max_q(std::size_t state) const {
  double best = q_[index(state, 0)];
  for (std::size_t a = 1; a < n_actions_; ++a) best = std::max(best, q_[index(state, a)]);
  return best;
}

std::size_t TabularQAgent::visits(std::size_t state, std::size_t action) const {
  return visits_[index(state, action)];
}

}  // namespace hcrl::rl
