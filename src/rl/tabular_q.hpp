// Tabular continuous-time Q-learning for SMDPs (Duff & Bradtke; Eqn. 2).
//
// This is the algorithm used by the local-tier power manager (§VI-B):
// discrete states (predicted inter-arrival category × machine mode),
// discrete actions (timeout values), event-driven updates.
#pragma once

#include <cstddef>
#include <vector>

#include "src/common/rng.hpp"
#include "src/rl/schedule.hpp"

namespace hcrl::rl {

class TabularQAgent {
 public:
  struct Options {
    double learning_rate = 0.1;   // alpha in Eqn. (2)
    double beta = 0.5;            // continuous-time discount rate
    EpsilonSchedule epsilon = EpsilonSchedule::exponential(0.3, 0.02, 300);
    double initial_q = 0.0;       // optimistic init when > 0 for max-reward agents
  };

  TabularQAgent(std::size_t n_states, std::size_t n_actions, const Options& opts);

  std::size_t n_states() const noexcept { return n_states_; }
  std::size_t n_actions() const noexcept { return n_actions_; }

  /// Epsilon-greedy action; advances the exploration step counter.
  std::size_t select_action(std::size_t state, common::Rng& rng);
  /// Greedy action (no exploration, no counter).
  std::size_t greedy_action(std::size_t state) const;

  /// Eqn. (2): Q(s,a) += alpha * [ (1-e^{-beta tau})/beta * reward_rate
  ///                               + e^{-beta tau} * max_a' Q(s',a') - Q(s,a) ].
  void update(std::size_t state, std::size_t action, double reward_rate, double tau,
              std::size_t next_state);

  /// Same update but with an explicit successor value instead of
  /// max_a' Q(s',a') — used when the sojourn ends in a state whose follow-on
  /// cost is known in closed form (e.g. a committed wake transition).
  void update_with_value(std::size_t state, std::size_t action, double reward_rate, double tau,
                         double next_value);

  double q(std::size_t state, std::size_t action) const;
  double max_q(std::size_t state) const;
  std::int64_t steps() const noexcept { return step_; }
  double current_epsilon() const { return opts_.epsilon.value(step_); }

  /// Visit counts, useful for diagnostics and tests.
  std::size_t visits(std::size_t state, std::size_t action) const;

 private:
  std::size_t index(std::size_t state, std::size_t action) const;

  std::size_t n_states_;
  std::size_t n_actions_;
  Options opts_;
  std::vector<double> q_;
  std::vector<std::size_t> visits_;
  std::int64_t step_ = 0;
};

}  // namespace hcrl::rl
