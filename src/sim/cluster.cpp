#include "src/sim/cluster.hpp"

#include <limits>
#include <stdexcept>
#include <unordered_set>

#include "src/sim/sim_telemetry.hpp"

namespace hcrl::sim {

void ClusterConfig::validate() const {
  if (num_servers == 0) throw std::invalid_argument("ClusterConfig: need >= 1 server");
  server.validate();
}

Cluster::Cluster(const ClusterConfig& cfg, AllocationPolicy& allocation, PowerPolicy& power)
    : Cluster(cfg, std::vector<ServerConfig>(cfg.num_servers, cfg.server), allocation, power) {}

Cluster::Cluster(const ClusterConfig& cfg, std::vector<ServerConfig> per_server,
                 AllocationPolicy& allocation, PowerPolicy& power)
    : cfg_(cfg),
      allocation_(allocation),
      power_policy_(power),
      metrics_(cfg.num_servers, cfg.keep_job_records) {
  cfg_.validate();
  if (per_server.size() != cfg_.num_servers) {
    throw std::invalid_argument("Cluster: per-server config count != num_servers");
  }
  servers_.reserve(cfg_.num_servers);
  for (std::size_t i = 0; i < cfg_.num_servers; ++i) {
    if (per_server[i].num_resources != cfg_.server.num_resources) {
      throw std::invalid_argument("Cluster: all servers must share num_resources");
    }
    per_server[i].validate();
    servers_.emplace_back(i, per_server[i], &metrics_);
  }
  set_server_view({servers_.data(), servers_.size()});
}

void Cluster::install_faults(FaultInjector* faults) {
  if (jobs_loaded_) throw std::logic_error("Cluster::install_faults: jobs already loaded");
  if (faults != nullptr) {
    for (const FaultEvent& f : faults->plan().events) {
      if (f.server >= servers_.size()) {
        throw std::invalid_argument("Cluster::install_faults: plan targets server " +
                                    std::to_string(f.server) + " out of range");
      }
    }
  }
  faults_ = faults;
}

void Cluster::load_jobs(std::vector<Job> jobs) {
  if (jobs_loaded_) throw std::logic_error("Cluster::load_jobs: already loaded");
  // Arrival events carry the jobs_ index in their JobId-typed `job` field, so
  // a trace larger than JobId's range would silently alias indices. Fail loud.
  if (jobs.size() > static_cast<std::size_t>(std::numeric_limits<JobId>::max())) {
    throw std::invalid_argument("Cluster::load_jobs: trace exceeds JobId index range");
  }
  std::unordered_set<JobId> ids;
  ids.reserve(jobs.size());
  Time prev = 0.0;
  for (const Job& j : jobs) {
    j.validate(cfg_.server.num_resources);
    if (j.arrival < prev) throw std::invalid_argument("Cluster::load_jobs: not sorted by arrival");
    prev = j.arrival;
    if (!ids.insert(j.id).second) throw std::invalid_argument("Cluster::load_jobs: duplicate id");
  }
  jobs_ = std::move(jobs);
  jobs_loaded_ = true;
  // The `job` field of an arrival event is the *index* into jobs_.
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    queue_.push(jobs_[i].arrival, EventType::kJobArrival, /*server=*/0,
                static_cast<JobId>(i));
  }
  // Fault-plan events take the next seq block: at equal timestamps they
  // lose to trace arrivals (lower seqs) and win against runtime events.
  if (faults_ != nullptr) {
    for (const FaultEvent& f : faults_->plan().events) {
      queue_.push(f.time, to_event_type(f.kind), f.server);
    }
  }
}

bool Cluster::step() {
  // Decision-epoch boundary: decisions staged via PowerPolicy::defer_idle
  // must be committed before any event that could observe their outcome —
  // a time advance (a staged timeout may schedule an event earlier than the
  // current heap top), any job arrival (the global tier's state encoding
  // reads every server's power state), or queue drain. Same-time non-arrival
  // events touch only their own server's state and the staged decisions touch
  // only theirs, so they commute with the staged requests and may extend the
  // epoch — that is where the cross-server batching comes from.
  // Fault-injected retries are re-arrivals, so for the barrier they count
  // exactly like arrival events (and a pending retry means the simulation
  // is not drained).
  bool retry_next = retry_outranks_heap();
  if (power_policy_.has_staged_decisions()) {
    const bool drained = queue_.empty() && !retry_next;
    const Time next_time =
        retry_next ? faults_->next_retry_time() : (queue_.empty() ? now_ : queue_.top().time);
    const bool arrival_next =
        retry_next || (!queue_.empty() && queue_.top().type == EventType::kJobArrival);
    if (drained || next_time != now_ || arrival_next) {
      count_flush(drained        ? FlushReason::kDrain
                  : arrival_next ? FlushReason::kArrival
                                 : FlushReason::kTimeAdvance);
      power_policy_.flush_decisions();  // may push events at times >= now_
      retry_next = retry_outranks_heap();
    }
  }
  if (retry_next) {
    const FaultInjector::Retry r = faults_->pop_retry();
    if (r.time < now_) throw std::logic_error("Cluster: time went backwards");
    now_ = r.time;
    dispatch_arrival(r.job);
    if (telemetry::enabled()) telemetry::count(SimMetrics::get().events);
    return true;
  }
  if (queue_.empty()) {
    if (!finished_notified_) {
      finished_notified_ = true;
      allocation_.on_simulation_end(*this, now_);
    }
    return false;
  }
  const Event e = queue_.pop();
  if (e.time < now_) throw std::logic_error("Cluster: time went backwards");
  now_ = e.time;
  handle(e);
  if (telemetry::enabled()) telemetry::count(SimMetrics::get().events);
  return true;
}

bool Cluster::retry_outranks_heap() const {
  if (faults_ == nullptr || !faults_->has_pending_retry()) return false;
  if (queue_.empty()) return true;
  const Event& top = queue_.top();
  const Time rt = faults_->next_retry_time();
  if (rt != top.time) return rt < top.time;
  // Equal-time precedence: trace arrival, then retry, then anything else.
  // (Retries never enter the heap, so a kJobArrival top is a trace arrival.)
  return top.type != EventType::kJobArrival;
}

void Cluster::run() {
  while (step()) {
  }
}

void Cluster::run_until_completed(std::size_t n) {
  while (metrics_.jobs_completed() < n && step()) {
  }
  // The loop can exit with decisions still staged (the n-th completion may
  // land mid-epoch). Their outcomes are already fixed — only arrivals feed
  // the predictors, and none intervened — so committing here preserves the
  // (time, seq) order a longer run would have produced.
  if (power_policy_.has_staged_decisions()) {
    count_flush(FlushReason::kForced);
    power_policy_.flush_decisions();
  }
}

void Cluster::handle(const Event& e) {
  switch (e.type) {
    case EventType::kJobArrival:
      dispatch_arrival(jobs_.at(static_cast<std::size_t>(e.job)));
      break;
    case EventType::kJobFinish:
      servers_.at(e.server).handle_job_finish(e.job, now_, queue_, power_policy_, e.generation);
      break;
    case EventType::kWakeComplete:
      servers_.at(e.server).handle_wake_complete(now_, queue_, power_policy_, e.generation);
      break;
    case EventType::kSleepComplete:
      servers_.at(e.server).handle_sleep_complete(now_, queue_, power_policy_, e.generation);
      break;
    case EventType::kIdleTimeout:
      servers_.at(e.server).handle_idle_timeout(e.generation, now_, queue_, power_policy_);
      break;
    case EventType::kServerCrash:
      if (telemetry::enabled()) telemetry::count(SimMetrics::get().fault_crashes);
      requeue_killed(servers_.at(e.server).handle_crash(now_));
      break;
    case EventType::kServerRecover:
      servers_.at(e.server).handle_recover(now_);
      break;
    case EventType::kSpotEvict:
      if (telemetry::enabled()) telemetry::count(SimMetrics::get().fault_evictions);
      requeue_killed(servers_.at(e.server).handle_eviction(now_, queue_, power_policy_));
      break;
  }
}

void Cluster::dispatch_arrival(const Job& job) {
  const ServerId target = allocation_.select_server(*this, job);
  if (target >= servers_.size()) {
    throw std::logic_error("AllocationPolicy returned invalid server " + std::to_string(target));
  }
  if (faults_ != nullptr && servers_[target].failed()) {
    // Transient allocation failure: the placement raced a crash. The job
    // never enters the system; it bounces into the retry stream.
    metrics_.on_bounce();
    if (faults_->schedule_retry(job, now_)) {
      metrics_.on_retry();
      if (telemetry::enabled()) telemetry::count(SimMetrics::get().fault_retries);
    } else {
      metrics_.on_job_lost();
      if (telemetry::enabled()) telemetry::count(SimMetrics::get().fault_lost);
    }
    return;
  }
  metrics_.on_arrival(job, now_);
  servers_[target].handle_arrival(job, now_, queue_, power_policy_);
  if (telemetry::enabled()) telemetry::count(SimMetrics::get().arrivals);
}

void Cluster::requeue_killed(const std::vector<Job>& killed) {
  for (const Job& j : killed) {
    if (faults_ != nullptr && faults_->schedule_retry(j, now_)) {
      metrics_.on_retry();
      if (telemetry::enabled()) telemetry::count(SimMetrics::get().fault_retries);
    } else {
      metrics_.on_job_lost();
      if (telemetry::enabled()) telemetry::count(SimMetrics::get().fault_lost);
    }
  }
}

double Cluster::mean_cpu_utilization() const {
  return metrics_.cpu_used_sum() / static_cast<double>(servers_.size());
}

std::size_t Cluster::servers_on() const { return metrics_.servers_on(); }

double Cluster::mean_cpu_utilization_scan() const {
  double total = 0.0;
  for (const Server& s : servers_) total += s.utilization(0);
  return total / static_cast<double>(servers_.size());
}

std::size_t Cluster::servers_on_scan() const {
  std::size_t n = 0;
  for (const Server& s : servers_) {
    if (s.is_on()) ++n;
  }
  return n;
}

}  // namespace hcrl::sim
