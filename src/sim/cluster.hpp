// The cluster simulation engine: job broker + M servers + event loop.
//
// Continuous-time and event-driven, exactly as the paper's decision
// framework requires: every job arrival is a global-tier decision epoch,
// every idle-entry is a local-tier decision epoch. `step()` processes one
// event so callers can checkpoint metrics at any granularity (the figures
// plot metrics versus number-of-jobs).
#pragma once

#include <memory>
#include <vector>

#include "src/sim/cluster_view.hpp"
#include "src/sim/event_queue.hpp"
#include "src/sim/fault/fault.hpp"
#include "src/sim/metrics.hpp"
#include "src/sim/policies.hpp"
#include "src/sim/server.hpp"
#include "src/sim/types.hpp"

namespace hcrl::sim {

struct ClusterConfig {
  std::size_t num_servers = 30;
  ServerConfig server;
  bool keep_job_records = true;

  void validate() const;
};

class Cluster final : public ClusterView {
 public:
  /// Policies are borrowed and must outlive the cluster.
  Cluster(const ClusterConfig& cfg, AllocationPolicy& allocation, PowerPolicy& power);

  /// Heterogeneous variant: one ServerConfig per server (size must equal
  /// cfg.num_servers; all must share cfg.server.num_resources). The paper
  /// assumes a homogeneous cluster "without loss of generality" — this
  /// constructor removes that restriction (mixed power models, transition
  /// times, hot-spot thresholds).
  Cluster(const ClusterConfig& cfg, std::vector<ServerConfig> per_server,
          AllocationPolicy& allocation, PowerPolicy& power);

  /// Install deterministic fault injection (borrowed; must outlive the
  /// cluster). Must be called before load_jobs, which materializes the
  /// fault plan into the event queue.
  void install_faults(FaultInjector* faults);

  /// Load the trace. Jobs must be sorted by arrival time and have unique
  /// ids; throws otherwise. May only be called once, before stepping.
  void load_jobs(std::vector<Job> jobs);

  /// Process one event; returns false when the event queue is empty.
  bool step();
  /// Run until all events (arrivals + completions + transitions) drain.
  void run();
  /// Run until at least `n` jobs have completed (or events drain).
  void run_until_completed(std::size_t n);

  Time now() const noexcept override { return now_; }
  const std::vector<Job>& jobs() const noexcept { return jobs_; }

  ClusterMetrics& metrics() noexcept { return metrics_; }
  const ClusterMetrics& metrics() const noexcept { return metrics_; }
  MetricsSnapshot snapshot() const { return metrics_.snapshot(now_); }

  // ClusterView aggregate queries, answered from the metrics accumulators.
  double energy_joules(Time t) const override { return metrics_.energy_joules(t); }
  double jobs_in_system_integral(Time t) const override {
    return metrics_.jobs_in_system_integral(t);
  }
  double reliability_integral(Time t) const override { return metrics_.reliability_integral(t); }
  std::size_t jobs_arrived() const noexcept override { return metrics_.jobs_arrived(); }
  std::size_t jobs_completed() const noexcept override { return metrics_.jobs_completed(); }

  /// Sum of CPU utilizations across servers divided by M (cluster load); O(1).
  double mean_cpu_utilization() const override;
  /// Number of servers currently powered on (active or idle); O(1).
  std::size_t servers_on() const override;
  /// Number of servers currently crash-failed; O(1).
  std::size_t servers_failed() const override { return metrics_.servers_failed(); }
  /// Brute-force O(M) rescans of the same quantities. Tests pin the
  /// incremental counters against these; production code should not call them.
  double mean_cpu_utilization_scan() const;
  std::size_t servers_on_scan() const;

  const ClusterConfig& config() const noexcept { return cfg_; }

 private:
  void handle(const Event& e);
  /// Route a (trace or retry) arrival to the selected server, bouncing it
  /// into the retry stream when the target has crash-failed.
  void dispatch_arrival(const Job& job);
  /// Re-queue jobs revoked by a crash/eviction through the retry policy.
  void requeue_killed(const std::vector<Job>& killed);
  /// True when the pending retry stream outranks the heap top: strictly
  /// earlier, or equal-time against anything but a trace arrival.
  bool retry_outranks_heap() const;

  ClusterConfig cfg_;
  AllocationPolicy& allocation_;
  PowerPolicy& power_policy_;
  ClusterMetrics metrics_;
  std::vector<Server> servers_;
  EventQueue queue_;
  std::vector<Job> jobs_;
  FaultInjector* faults_ = nullptr;  // not owned; null = faults off
  bool jobs_loaded_ = false;
  bool finished_notified_ = false;
  Time now_ = 0.0;
};

}  // namespace hcrl::sim
