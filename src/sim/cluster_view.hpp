// Read-only view of a running cluster simulation.
//
// Policies (the global allocation tier in particular) observe cluster-wide
// state at every decision epoch: per-server power states and utilizations for
// the DRL state encoding, and the exact metric integrals behind the Eqn. (4)
// reward. ClusterView is that observation surface, decoupled from the engine
// that advances the simulation — the serial `Cluster` and the partitioned
// `ShardedCluster` both implement it, so one policy implementation drives
// either engine.
//
// Server access is non-virtual (a span over the engine's contiguous server
// array) because encoders and heuristics scan every server on the hot path;
// only the aggregate metric queries — whose implementation genuinely differs
// between one metrics collector and a per-shard set — go through the vtable.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>

#include "src/sim/server.hpp"
#include "src/sim/types.hpp"

namespace hcrl::sim {

class ClusterView {
 public:
  virtual ~ClusterView() = default;

  /// All servers, indexed by ServerId (contiguous in every engine).
  std::span<const Server> servers() const noexcept { return servers_; }
  std::size_t num_servers() const noexcept { return servers_.size(); }
  const Server& server(std::size_t i) const {
    if (i >= servers_.size()) {
      throw std::out_of_range("ClusterView::server: id " + std::to_string(i) + " out of range");
    }
    return servers_[i];
  }

  /// Current simulation time (the engine's committed clock).
  virtual Time now() const noexcept = 0;

  // ---- exact metric integrals (the Eqn. 4 reward signals) ------------------
  virtual double energy_joules(Time t) const = 0;
  virtual double jobs_in_system_integral(Time t) const = 0;
  virtual double reliability_integral(Time t) const = 0;
  virtual std::size_t jobs_arrived() const noexcept = 0;
  virtual std::size_t jobs_completed() const noexcept = 0;

  // ---- O(1) cluster aggregates (incrementally maintained) ------------------
  /// Sum of CPU utilizations across servers divided by M (cluster load).
  virtual double mean_cpu_utilization() const = 0;
  /// Number of servers currently powered on (active or idle).
  virtual std::size_t servers_on() const = 0;

  // ---- failure mask (fault injection; see src/sim/fault/fault.hpp) ---------
  /// Number of servers currently crash-failed. 0 when faults are off.
  virtual std::size_t servers_failed() const { return 0; }
  /// True when server i is crash-failed. Policies must exclude such
  /// servers from placement; the engine bounces placements into them.
  bool server_failed(std::size_t i) const { return server(i).failed(); }

 protected:
  /// Set once by the engine after its server array is fully constructed.
  void set_server_view(std::span<const Server> servers) noexcept { servers_ = servers; }

 private:
  std::span<const Server> servers_;
};

}  // namespace hcrl::sim
