// Discrete-event queue with deterministic tie-breaking.
#pragma once

#include <cstdint>
#include <queue>
#include <stdexcept>
#include <vector>

#include "src/sim/types.hpp"

namespace hcrl::sim {

enum class EventType : std::uint8_t {
  kJobArrival,     // broker-level arrival (job field set)
  kJobFinish,      // job completes on `server`
  kWakeComplete,   // server finished its sleep->active transition
  kSleepComplete,  // server finished its active->sleep transition
  kIdleTimeout,    // server's DPM timeout expired (guarded by `generation`)
  kServerCrash,    // fault injection: server fails, all its work is revoked
  kServerRecover,  // fault injection: repair completes, server returns cold
  kSpotEvict,      // fault injection: spot revocation kills running jobs
};

struct Event {
  Time time = 0.0;
  std::uint64_t seq = 0;  // insertion order; breaks ties deterministically
  EventType type = EventType::kJobArrival;
  ServerId server = 0;
  JobId job = 0;
  std::uint64_t generation = 0;  // for cancellable timeouts
};

class EventQueue {
 public:
  void push(Time time, EventType type, ServerId server = 0, JobId job = 0,
            std::uint64_t generation = 0) {
    heap_.push(Event{time, next_seq_++, type, server, job, generation});
  }

  /// Claim the next insertion-order number without pushing an event. A
  /// decision staged for a later batched flush reserves its seq at the exact
  /// point the inline path would have pushed, so the (time, seq) total order
  /// of the heap — and therefore every tie-break — is identical whether
  /// decisions are answered inline or committed at the epoch boundary.
  std::uint64_t reserve_seq() noexcept { return next_seq_++; }

  /// Push with a previously reserved seq (see reserve_seq()).
  void push_at(Time time, std::uint64_t seq, EventType type, ServerId server = 0, JobId job = 0,
               std::uint64_t generation = 0) {
    heap_.push(Event{time, seq, type, server, job, generation});
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  /// Checked: inspecting or popping an empty heap is a driver bug (it was UB
  /// through std::priority_queue), so both throw instead.
  const Event& top() const {
    if (heap_.empty()) throw std::logic_error("EventQueue::top: empty queue");
    return heap_.top();
  }
  Event pop() {
    if (heap_.empty()) throw std::logic_error("EventQueue::pop: empty queue");
    Event e = heap_.top();
    heap_.pop();
    return e;
  }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace hcrl::sim
