#include "src/sim/fault/fault.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/common/rng.hpp"

namespace hcrl::sim {

namespace {

constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

void require_finite_nonneg(double v, const char* key) {
  if (!std::isfinite(v) || v < 0.0) {
    throw std::invalid_argument(std::string("FaultConfig: ") + key +
                                " must be finite and >= 0, got " + std::to_string(v));
  }
}

/// Uniform double in [0, 1) from one SplitMix64 output.
double to_unit(std::uint64_t bits) noexcept {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

void FaultConfig::validate() const {
  require_finite_nonneg(mtbf_s, "faults.mtbf_s");
  require_finite_nonneg(mttr_s, "faults.mttr_s");
  require_finite_nonneg(evict_every_s, "faults.evict_every_s");
  require_finite_nonneg(backoff_base_s, "faults.backoff_base_s");
  require_finite_nonneg(backoff_cap_s, "faults.backoff_cap_s");
  require_finite_nonneg(horizon_padding_s, "faults.horizon_padding_s");
  if (mtbf_s > 0.0 && mttr_s <= 0.0) {
    throw std::invalid_argument("FaultConfig: faults.mttr_s must be > 0 when crashes are enabled");
  }
  if (backoff_cap_s > 0.0 && backoff_base_s > backoff_cap_s) {
    throw std::invalid_argument("FaultConfig: faults.backoff_base_s exceeds faults.backoff_cap_s");
  }
  if (!std::isfinite(backoff_jitter) || backoff_jitter < 0.0 || backoff_jitter >= 1.0) {
    throw std::invalid_argument("FaultConfig: faults.backoff_jitter must be in [0, 1), got " +
                                std::to_string(backoff_jitter));
  }
  if (max_retries > 1000000) {
    throw std::invalid_argument("FaultConfig: faults.max_retries is absurd (" +
                                std::to_string(max_retries) + " > 1e6)");
  }
}

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kRecover:
      return "recover";
    case FaultKind::kEvict:
      return "evict";
  }
  return "?";
}

EventType to_event_type(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kCrash:
      return EventType::kServerCrash;
    case FaultKind::kRecover:
      return EventType::kServerRecover;
    case FaultKind::kEvict:
      return EventType::kSpotEvict;
  }
  return EventType::kServerCrash;
}

FaultPlan FaultPlan::generate(const FaultConfig& cfg, std::size_t num_servers, Time horizon) {
  cfg.validate();
  FaultPlan plan;
  if (!cfg.enabled() || num_servers == 0 || !(horizon > 0.0)) return plan;

  // Two independent root streams so toggling evictions never perturbs the
  // crash schedule (and vice versa).
  common::SplitMix64 root(cfg.seed);
  const std::uint64_t crash_stream = root.next();
  const std::uint64_t evict_stream = root.next();

  for (ServerId s = 0; s < num_servers; ++s) {
    const std::uint64_t salt = kGolden * (static_cast<std::uint64_t>(s) + 1);
    if (cfg.mtbf_s > 0.0) {
      common::SplitMix64 sm(crash_stream ^ salt);
      common::Rng rng(sm.next());
      Time t = 0.0;
      for (;;) {
        t += rng.exponential(1.0 / cfg.mtbf_s);
        if (t > horizon) break;
        plan.events.push_back({t, s, FaultKind::kCrash});
        const Time down = rng.exponential(1.0 / cfg.mttr_s);
        // The matching recovery always ships, even past the horizon: a
        // crashed server must not stay dead into the drain phase.
        plan.events.push_back({t + down, s, FaultKind::kRecover});
        t += down;
      }
    }
    if (cfg.evict_every_s > 0.0) {
      common::SplitMix64 sm(evict_stream ^ salt);
      common::Rng rng(sm.next());
      Time t = 0.0;
      for (;;) {
        t += rng.exponential(1.0 / cfg.evict_every_s);
        if (t > horizon) break;
        plan.events.push_back({t, s, FaultKind::kEvict});
      }
    }
  }

  // (time, server, kind) — at equal times faults fire in ascending server
  // order, which the contiguous shard partition preserves for any shard
  // count (see ShardedCluster::load_jobs).
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) noexcept {
                     if (a.time != b.time) return a.time < b.time;
                     if (a.server != b.server) return a.server < b.server;
                     return static_cast<int>(a.kind) < static_cast<int>(b.kind);
                   });
  return plan;
}

FaultInjector::FaultInjector(const FaultConfig& cfg, FaultPlan plan)
    : cfg_(cfg), plan_(std::move(plan)) {
  cfg_.validate();
}

FaultInjector::FaultInjector(const FaultConfig& cfg, std::size_t num_servers, Time horizon)
    : FaultInjector(cfg, FaultPlan::generate(cfg, num_servers, horizon)) {}

Time FaultInjector::next_retry_time() const {
  if (retries_.empty()) throw std::logic_error("FaultInjector::next_retry_time: no retry pending");
  return retries_.top().time;
}

FaultInjector::Retry FaultInjector::pop_retry() {
  if (retries_.empty()) throw std::logic_error("FaultInjector::pop_retry: no retry pending");
  Retry r = retries_.top();
  retries_.pop();
  return r;
}

bool FaultInjector::schedule_retry(const Job& job, Time now) {
  const std::size_t attempt = ++attempts_[job.id];
  if (attempt > cfg_.max_retries) return false;
  Retry r;
  r.time = now + backoff_delay(job.id, attempt);
  r.seq = next_seq_++;
  r.job = job;
  if (r.job.submitted < 0.0) r.job.submitted = r.job.arrival;
  r.job.arrival = r.time;  // re-enters the arrival stream at delivery time
  retries_.push(std::move(r));
  return true;
}

double FaultInjector::backoff_delay(JobId id, std::size_t attempt) const {
  if (attempt == 0) throw std::invalid_argument("FaultInjector::backoff_delay: attempt counts from 1");
  // 2^(attempt-1), saturating well past any sane cap.
  const int shift = static_cast<int>(std::min<std::size_t>(attempt - 1, 512));
  double delay = cfg_.backoff_base_s * std::ldexp(1.0, shift);
  if (cfg_.backoff_cap_s > 0.0) delay = std::min(delay, cfg_.backoff_cap_s);
  if (cfg_.backoff_jitter > 0.0) {
    common::SplitMix64 sm((cfg_.seed ^ (static_cast<std::uint64_t>(id) * kGolden)) +
                          static_cast<std::uint64_t>(attempt));
    const double u = to_unit(sm.next());  // [0, 1)
    delay *= 1.0 + cfg_.backoff_jitter * (2.0 * u - 1.0);
  }
  // Retries must move time forward even with base = 0.
  return std::max(delay, 1e-9);
}

std::size_t FaultInjector::attempts(JobId id) const {
  const auto it = attempts_.find(id);
  return it == attempts_.end() ? 0 : it->second;
}

}  // namespace hcrl::sim
