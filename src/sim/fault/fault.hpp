// Deterministic fault injection: seeded schedules of server crashes,
// recoveries and spot-eviction revocations, plus the bounded retry/backoff
// stream that re-submits killed work.
//
// Design notes (the determinism contract lives or dies here):
//
//  * A FaultPlan is generated *up front* from (seed, num_servers, horizon)
//    and is completely independent of simulator state. Per-server event
//    streams are derived from per-server SplitMix64 sub-seeds, so the plan
//    does not change when servers are added (existing streams are stable)
//    and generation order is irrelevant. The plan is sorted by
//    (time, server, kind) and injected as ordinary EventQueue events at
//    load time, so fault events occupy a contiguous block of low sequence
//    numbers: at equal timestamps they lose to trace arrivals (which hold
//    the lowest seqs) and win against runtime events — on the serial engine
//    and on every lockstep shard count alike.
//
//  * Retries do NOT go through the event heap. They live in a dedicated
//    (time, seq) min-heap inside the FaultInjector, and both engines give
//    them a fixed precedence at equal timestamps: trace arrival, then
//    retry, then heap event. Because kills and bounces happen at globally
//    ordered points, the retry heap's insertion order — and therefore every
//    tie-break — is identical across engines and shard counts.
//
//  * Backoff is a pure function of (seed, job id, attempt): capped
//    exponential with deterministic jitter. Re-running a scenario replays
//    the exact same retry times.
#pragma once

#include <cstdint>
#include <queue>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "src/sim/event_queue.hpp"
#include "src/sim/types.hpp"

namespace hcrl::sim {

/// Fault model knobs (config keys `faults.*`; see src/core/README.md).
/// All mean times are in simulated seconds; 0 disables that fault class.
struct FaultConfig {
  /// Mean time between full-server crashes (exponential), per server.
  /// A crash revokes running AND queued jobs; the server goes kFailed.
  double mtbf_s = 0.0;
  /// Mean time to repair after a crash (exponential). Recovered servers
  /// come back cold (kSleep) and must be woken by the next placement.
  double mttr_s = 600.0;
  /// Mean time between spot-eviction revocations (exponential), per
  /// server. An eviction kills running jobs only; the server stays up.
  double evict_every_s = 0.0;
  /// Per-job retry budget; a job killed/bounced more than this is lost.
  std::size_t max_retries = 3;
  /// Retry delay: min(backoff_cap_s, backoff_base_s * 2^(attempt-1)),
  /// then scaled by a deterministic jitter in [1-j, 1+j).
  double backoff_base_s = 30.0;
  double backoff_cap_s = 600.0;
  double backoff_jitter = 0.25;
  /// Fault schedules are generated out to last-arrival + this padding, so
  /// work retried near the end of the trace still sees faults.
  double horizon_padding_s = 3600.0;
  /// Dedicated fault stream seed. 0 = derive from the trace seed (and the
  /// scenario seed, when set, derives this like the other sub-seeds).
  std::uint64_t seed = 0;

  bool enabled() const noexcept { return mtbf_s > 0.0 || evict_every_s > 0.0; }
  /// Throws std::invalid_argument on non-finite, negative or absurd values.
  void validate() const;
};

enum class FaultKind : std::uint8_t {
  kCrash,    // server fails; running + queued jobs revoked
  kRecover,  // repair completes; server returns cold (kSleep)
  kEvict,    // spot revocation; running jobs revoked, server stays up
};

const char* to_string(FaultKind kind) noexcept;

/// Map a plan entry onto the engines' event vocabulary.
EventType to_event_type(FaultKind kind) noexcept;

struct FaultEvent {
  Time time = 0.0;
  ServerId server = 0;
  FaultKind kind = FaultKind::kCrash;
};

/// The full, pre-materialized fault schedule for one run.
struct FaultPlan {
  std::vector<FaultEvent> events;  // sorted by (time, server, kind)

  /// Deterministically generate a plan. Crash/recover events come in pairs
  /// (every crash within the horizon gets its recovery, possibly past the
  /// horizon); evictions are an independent per-server renewal process.
  static FaultPlan generate(const FaultConfig& cfg, std::size_t num_servers, Time horizon);
};

/// Owns the plan plus the deterministic retry stream. One per run; shared
/// by the engine via install_faults(). Not thread-safe (lockstep engines
/// only — ShardedCluster rejects faults in kParallel mode).
class FaultInjector {
 public:
  FaultInjector(const FaultConfig& cfg, FaultPlan plan);
  /// Convenience: generate the plan from the config.
  FaultInjector(const FaultConfig& cfg, std::size_t num_servers, Time horizon);

  const FaultConfig& config() const noexcept { return cfg_; }
  const FaultPlan& plan() const noexcept { return plan_; }

  /// One pending re-submission. `job.arrival` is rewritten to the delivery
  /// time (allocators treat retries exactly like fresh arrivals);
  /// `job.submitted` keeps the original submission for latency accounting.
  struct Retry {
    Time time = 0.0;
    std::uint64_t seq = 0;  // insertion order; breaks equal-time ties
    Job job;
  };

  bool has_pending_retry() const noexcept { return !retries_.empty(); }
  /// Throws std::logic_error when no retry is pending.
  Time next_retry_time() const;
  Retry pop_retry();

  /// Schedule a bounded-backoff retry for a killed or bounced job. Returns
  /// false when the job exhausted its retry budget (the job is lost).
  bool schedule_retry(const Job& job, Time now);

  /// Deterministic capped-exponential backoff delay for (job, attempt);
  /// attempt counts from 1. Pure function of the config seed.
  double backoff_delay(JobId id, std::size_t attempt) const;

  /// Attempts recorded so far for a job (0 if never killed/bounced).
  std::size_t attempts(JobId id) const;

 private:
  struct RetryLater {
    bool operator()(const Retry& a, const Retry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  FaultConfig cfg_;
  FaultPlan plan_;
  std::priority_queue<Retry, std::vector<Retry>, RetryLater> retries_;
  std::unordered_map<JobId, std::size_t> attempts_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace hcrl::sim
