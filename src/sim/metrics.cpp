#include "src/sim/metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/common/stats.hpp"

namespace hcrl::sim {

ClusterMetrics::ClusterMetrics(std::size_t num_servers, bool keep_job_records)
    : keep_job_records_(keep_job_records),
      server_power_(num_servers, 0.0),
      server_reliability_(num_servers, 0.0),
      server_on_(num_servers, 0),
      server_cpu_(num_servers, 0.0) {
  total_power_.set(0.0, 0.0);
  jobs_in_system_.set(0.0, 0.0);
  reliability_.set(0.0, 0.0);
}

void ClusterMetrics::on_arrival(const Job& job, Time now) {
  (void)job;
  ++arrived_;
  jobs_in_system_.set(now, jobs_in_system_.current() + 1.0);
}

void ClusterMetrics::on_completion(const JobRecord& record, Time now) {
  ++completed_;
  jobs_in_system_.set(now, jobs_in_system_.current() - 1.0);
  latency_sum_ += record.latency();
  latency_stats_.add(record.latency());
  wait_stats_.add(record.wait());
  if (keep_job_records_) records_.push_back(record);
}

void ClusterMetrics::on_power_change(ServerId server, double new_watts, Time now) {
  if (server >= server_power_.size()) throw std::out_of_range("metrics: bad server id");
  const double delta = new_watts - server_power_[server];
  server_power_[server] = new_watts;
  total_power_.set(now, total_power_.current() + delta);
}

void ClusterMetrics::on_reliability_change(ServerId server, double new_penalty, Time now) {
  if (server >= server_reliability_.size()) throw std::out_of_range("metrics: bad server id");
  const double delta = new_penalty - server_reliability_[server];
  server_reliability_[server] = new_penalty;
  reliability_.set(now, reliability_.current() + delta);
}

void ClusterMetrics::on_server_status(ServerId server, bool is_on, double cpu_used) {
  if (server >= server_on_.size()) throw std::out_of_range("metrics: bad server id");
  if (static_cast<bool>(server_on_[server]) != is_on) {
    server_on_[server] = is_on ? 1 : 0;
    servers_on_ += is_on ? 1 : static_cast<std::size_t>(-1);
  }
  // Incremental sum: exact when a server returns to a previously-seen load
  // only up to float rounding; the brute-force-scan pin lives in the tests.
  cpu_used_sum_ += cpu_used - server_cpu_[server];
  server_cpu_[server] = cpu_used;
}

void ClusterMetrics::on_crash(Time now) {
  (void)now;
  ++faults_.crashes;
  ++servers_failed_;
}

void ClusterMetrics::on_recovery(double downtime_s, Time now) {
  (void)now;
  ++faults_.recoveries;
  faults_.downtime_s += downtime_s;
  if (servers_failed_ == 0) throw std::logic_error("metrics: recovery without a crash");
  --servers_failed_;
}

void ClusterMetrics::on_eviction(Time now) {
  (void)now;
  ++faults_.evictions;
}

void ClusterMetrics::on_job_killed(double lost_cpu_seconds, Time now) {
  ++faults_.jobs_killed;
  faults_.lost_cpu_seconds += lost_cpu_seconds;
  jobs_in_system_.set(now, jobs_in_system_.current() - 1.0);
}

void ClusterMetrics::on_bounce() { ++faults_.bounces; }

void ClusterMetrics::on_retry() { ++faults_.retries; }

void ClusterMetrics::on_job_lost() { ++faults_.jobs_lost; }

double ClusterMetrics::latency_percentile(double q) const {
  if (!keep_job_records_) {
    throw std::logic_error("latency_percentile: job records disabled");
  }
  if (records_.empty()) throw std::logic_error("latency_percentile: no completed jobs");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("latency_percentile: q out of [0,1]");
  std::vector<double> latencies;
  latencies.reserve(records_.size());
  for (const auto& r : records_) latencies.push_back(r.latency());
  return common::percentile(latencies, q);
}

MetricsSnapshot ClusterMetrics::snapshot(Time now) const {
  MetricsSnapshot s;
  s.now = now;
  s.jobs_arrived = arrived_;
  s.jobs_completed = completed_;
  s.energy_joules = total_power_.integral(now);
  s.accumulated_latency_s = latency_sum_;
  s.average_power_watts = now > 0.0 ? s.energy_joules / now : 0.0;
  s.jobs_in_system = jobs_in_system_.current();
  s.reliability_penalty = reliability_.integral(now);
  s.faults = faults_;
  return s;
}

}  // namespace hcrl::sim
