// Cluster-level measurement: energy, latency, jobs-in-system, reliability.
//
// All quantities are exact integrals of piecewise-constant signals between
// events — no sampling error. These integrals are also what the RL reward
// functions consume (Eqn. 4 and Eqn. 5 integrate power / #VMs over sojourns).
#pragma once

#include <cstddef>
#include <vector>

#include "src/common/stats.hpp"
#include "src/sim/types.hpp"

namespace hcrl::sim {

/// Lost-work accounting under fault injection (all zero without faults).
/// Integer fields are exact and shard-count-invariant: every count is taken
/// at a globally ordered event on the owning shard's collector.
struct FaultCounters {
  std::size_t crashes = 0;          // full-server failures applied
  std::size_t recoveries = 0;       // repairs completed
  std::size_t evictions = 0;        // spot revocations that killed >= 1 job
  std::size_t jobs_killed = 0;      // running/queued jobs revoked
  std::size_t bounces = 0;          // arrivals rejected (target had failed)
  std::size_t retries = 0;          // re-submissions scheduled
  std::size_t jobs_lost = 0;        // dropped after the retry budget
  double lost_cpu_seconds = 0.0;    // discarded execution progress
  double downtime_s = 0.0;          // total failed time over recovered servers

  /// Mean time to repair over completed recoveries.
  double mttr_s() const noexcept {
    return recoveries > 0 ? downtime_s / static_cast<double>(recoveries) : 0.0;
  }
};

struct MetricsSnapshot {
  Time now = 0.0;
  std::size_t jobs_arrived = 0;
  std::size_t jobs_completed = 0;
  double energy_joules = 0.0;           // integral of total cluster power
  double accumulated_latency_s = 0.0;   // sum of completed-job latencies
  double average_power_watts = 0.0;     // energy / elapsed
  double jobs_in_system = 0.0;          // current count
  double reliability_penalty = 0.0;     // integral of hot-spot penalty
  FaultCounters faults;                 // lost-work accounting (fault injection)

  double energy_kwh() const noexcept { return energy_joules / 3.6e6; }
  double average_latency_s() const noexcept {
    return jobs_completed > 0 ? accumulated_latency_s / static_cast<double>(jobs_completed) : 0.0;
  }
  /// Average energy per completed job, in joules.
  double energy_per_job() const noexcept {
    return jobs_completed > 0 ? energy_joules / static_cast<double>(jobs_completed) : 0.0;
  }
};

class ClusterMetrics {
 public:
  explicit ClusterMetrics(std::size_t num_servers, bool keep_job_records = true);

  // -- signal updates (called by the cluster/servers) -----------------------
  void on_arrival(const Job& job, Time now);
  void on_completion(const JobRecord& record, Time now);
  /// A server's power draw changed; delta may be negative.
  void on_power_change(ServerId server, double new_watts, Time now);
  /// A server's hot-spot (reliability) penalty contribution changed.
  void on_reliability_change(ServerId server, double new_penalty, Time now);
  /// A server's availability (powered on/off) or CPU utilization changed.
  /// Maintains the O(1) servers_on / cpu_used_sum aggregates so cluster-wide
  /// load queries never rescan every server (at 10k-server shards the
  /// per-checkpoint O(M) scans dominate the metrics path).
  void on_server_status(ServerId server, bool is_on, double cpu_used);

  // -- fault accounting (see src/sim/fault/fault.hpp) ------------------------
  void on_crash(Time now);
  void on_recovery(double downtime_s, Time now);
  void on_eviction(Time now);
  /// A running/queued job was revoked; removes it from the in-system count.
  void on_job_killed(double lost_cpu_seconds, Time now);
  /// An arrival was rejected because its target had failed (the job never
  /// entered the system; it re-enters via the retry stream).
  void on_bounce();
  void on_retry();
  void on_job_lost();

  // -- queries ---------------------------------------------------------------
  double total_power_watts() const noexcept { return total_power_.current(); }
  double energy_joules(Time now) const { return total_power_.integral(now); }
  double jobs_in_system() const noexcept { return jobs_in_system_.current(); }
  double jobs_in_system_integral(Time now) const { return jobs_in_system_.integral(now); }
  double reliability_integral(Time now) const { return reliability_.integral(now); }
  std::size_t jobs_arrived() const noexcept { return arrived_; }
  std::size_t jobs_completed() const noexcept { return completed_; }
  /// Servers currently powered on (active or idle); O(1).
  std::size_t servers_on() const noexcept { return servers_on_; }
  /// Servers currently crash-failed; O(1).
  std::size_t servers_failed() const noexcept { return servers_failed_; }
  const FaultCounters& faults() const noexcept { return faults_; }
  /// Sum of per-server CPU utilizations; O(1). Incrementally maintained, so
  /// it may drift from an exact rescan by float rounding only (pinned to the
  /// brute-force scan in tests).
  double cpu_used_sum() const noexcept { return cpu_used_sum_; }
  double accumulated_latency(Time /*unused*/ = 0.0) const noexcept { return latency_sum_; }
  const common::RunningStats& latency_stats() const noexcept { return latency_stats_; }
  const common::RunningStats& wait_stats() const noexcept { return wait_stats_; }
  const std::vector<JobRecord>& job_records() const noexcept { return records_; }

  /// Latency percentile over completed jobs (q in [0, 1]). Requires job
  /// records to be kept; throws std::logic_error otherwise or when empty.
  double latency_percentile(double q) const;

  MetricsSnapshot snapshot(Time now) const;

 private:
  bool keep_job_records_;
  std::vector<double> server_power_;
  std::vector<double> server_reliability_;
  std::vector<std::uint8_t> server_on_;
  std::vector<double> server_cpu_;
  std::size_t servers_on_ = 0;
  std::size_t servers_failed_ = 0;
  FaultCounters faults_;
  double cpu_used_sum_ = 0.0;
  common::TimeWeightedValue total_power_;
  common::TimeWeightedValue jobs_in_system_;
  common::TimeWeightedValue reliability_;
  std::size_t arrived_ = 0;
  std::size_t completed_ = 0;
  double latency_sum_ = 0.0;
  common::RunningStats latency_stats_;
  common::RunningStats wait_stats_;
  std::vector<JobRecord> records_;
};

}  // namespace hcrl::sim
