#include "src/sim/policies.hpp"

#include "src/sim/cluster_view.hpp"
#include "src/sim/server.hpp"

namespace hcrl::sim {

namespace {

/// Failure mask for stateless allocators: first non-failed server scanning
/// cyclically from `start`. Returns `start` itself when every server is
/// failed (the engine then bounces the placement into the retry stream).
/// A no-op (returns `start`) whenever fault injection is off.
ServerId first_live_from(const ClusterView& cluster, ServerId start) {
  const std::size_t m = cluster.num_servers();
  for (std::size_t k = 0; k < m; ++k) {
    const ServerId i = (start + k) % m;
    if (!cluster.server(i).failed()) return i;
  }
  return start;
}

}  // namespace

ServerId RoundRobinAllocator::select_server(const ClusterView& cluster, const Job& job) {
  (void)job;
  const ServerId chosen = next_ % cluster.num_servers();
  next_ = (next_ + 1) % cluster.num_servers();
  return first_live_from(cluster, chosen);
}

ServerId RandomAllocator::select_server(const ClusterView& cluster, const Job& job) {
  (void)job;
  const auto chosen = static_cast<ServerId>(
      rng_.uniform_int(0, static_cast<std::int64_t>(cluster.num_servers()) - 1));
  return first_live_from(cluster, chosen);
}

ServerId LeastLoadedAllocator::select_server(const ClusterView& cluster, const Job& job) {
  (void)job;
  // Prefer the least-utilized awake server; wake a sleeping one only when
  // no awake server can absorb the job without saturating.
  ServerId best_awake = cluster.num_servers();
  double best_util = 2.0;
  for (ServerId i = 0; i < cluster.num_servers(); ++i) {
    const Server& s = cluster.server(i);
    if (!s.is_on() && s.power_state() != PowerState::kWaking) continue;
    const double u = s.utilization(0) + static_cast<double>(s.queue_length());
    if (u < best_util) {
      best_util = u;
      best_awake = i;
    }
  }
  if (best_awake < cluster.num_servers() && best_util + job.demand[0] <= 1.0) return best_awake;
  // Saturated (or nothing awake): pick any sleeping server, else least loaded.
  // (kFailed is excluded everywhere: it is neither on, waking, nor kSleep.)
  for (ServerId i = 0; i < cluster.num_servers(); ++i) {
    if (cluster.server(i).power_state() == PowerState::kSleep) return i;
  }
  return best_awake < cluster.num_servers() ? best_awake : first_live_from(cluster, 0);
}

ServerId FirstFitPackingAllocator::select_server(const ClusterView& cluster, const Job& job) {
  // Choose the *busiest* awake server whose free resources fit the job and
  // whose queue is empty (consolidation without creating waits); fall back
  // to waking the first sleeping server, then to the shortest queue.
  ServerId best = cluster.num_servers();
  double best_util = -1.0;
  for (ServerId i = 0; i < cluster.num_servers(); ++i) {
    const Server& s = cluster.server(i);
    const bool usable = s.is_on() || s.power_state() == PowerState::kWaking;
    if (!usable || s.queue_length() > 0) continue;
    if (!s.available().fits(job.demand)) continue;
    if (s.utilization(0) > best_util) {
      best_util = s.utilization(0);
      best = i;
    }
  }
  if (best < cluster.num_servers()) return best;
  for (ServerId i = 0; i < cluster.num_servers(); ++i) {
    if (cluster.server(i).power_state() == PowerState::kSleep) return i;
  }
  // Everything is busy: shortest combined backlog among live servers.
  ServerId fallback = cluster.num_servers();
  std::size_t best_backlog = static_cast<std::size_t>(-1);
  for (ServerId i = 0; i < cluster.num_servers(); ++i) {
    if (cluster.server(i).failed()) continue;
    const std::size_t backlog = cluster.server(i).jobs_on_server();
    if (backlog < best_backlog) {
      best_backlog = backlog;
      fallback = i;
    }
  }
  return fallback < cluster.num_servers() ? fallback : 0;
}

namespace {

/// Shared fallback when no awake server can take the job now: wake the first
/// sleeping server, else join the shortest combined backlog among live
/// servers (0 as a last resort when the whole cluster is failed — the
/// engine bounces that placement).
ServerId wake_or_shortest_backlog(const ClusterView& cluster) {
  for (ServerId i = 0; i < cluster.num_servers(); ++i) {
    if (cluster.server(i).power_state() == PowerState::kSleep) return i;
  }
  ServerId fallback = cluster.num_servers();
  std::size_t best_backlog = static_cast<std::size_t>(-1);
  for (ServerId i = 0; i < cluster.num_servers(); ++i) {
    if (cluster.server(i).failed()) continue;
    const std::size_t backlog = cluster.server(i).jobs_on_server();
    if (backlog < best_backlog) {
      best_backlog = backlog;
      fallback = i;
    }
  }
  return fallback < cluster.num_servers() ? fallback : 0;
}

/// Scan the awake (or waking), empty-queue servers that fit `job` and return
/// the one with the best score (strictly-greater wins, so ties keep the
/// lowest id). Returns num_servers when no server qualifies.
template <class ScoreFn>
ServerId best_scoring_fit(const ClusterView& cluster, const Job& job, ScoreFn score) {
  ServerId best = cluster.num_servers();
  double best_score = -std::numeric_limits<double>::infinity();
  for (ServerId i = 0; i < cluster.num_servers(); ++i) {
    const Server& s = cluster.server(i);
    const bool usable = s.is_on() || s.power_state() == PowerState::kWaking;
    if (!usable || s.queue_length() > 0) continue;
    if (!s.available().fits(job.demand)) continue;
    const double sc = score(s);
    if (sc > best_score) {
      best_score = sc;
      best = i;
    }
  }
  return best;
}

double total_available(const Server& s) {
  const ResourceVector avail = s.available();
  double sum = 0.0;
  for (std::size_t d = 0; d < avail.dims(); ++d) sum += avail[d];
  return sum;
}

}  // namespace

ServerId BestFitAllocator::select_server(const ClusterView& cluster, const Job& job) {
  const ServerId best = best_scoring_fit(cluster, job, [](const Server& s) {
    return -total_available(s);  // least leftover = tightest bin
  });
  if (best < cluster.num_servers()) return best;
  return wake_or_shortest_backlog(cluster);
}

ServerId WorstFitAllocator::select_server(const ClusterView& cluster, const Job& job) {
  const ServerId best = best_scoring_fit(cluster, job, &total_available);
  if (best < cluster.num_servers()) return best;
  return wake_or_shortest_backlog(cluster);
}

ServerId TetrisAllocator::select_server(const ClusterView& cluster, const Job& job) {
  const ServerId best = best_scoring_fit(cluster, job, [&job](const Server& s) {
    const ResourceVector avail = s.available();
    double dot = 0.0;
    for (std::size_t d = 0; d < avail.dims() && d < job.demand.dims(); ++d) {
      dot += avail[d] * job.demand[d];
    }
    return dot;
  });
  if (best < cluster.num_servers()) return best;
  return wake_or_shortest_backlog(cluster);
}

RandomKAllocator::RandomKAllocator(std::size_t k, common::Rng rng) : k_(k), rng_(rng) {
  if (k == 0) throw std::invalid_argument("RandomKAllocator: k == 0");
}

ServerId RandomKAllocator::select_server(const ClusterView& cluster, const Job& job) {
  (void)job;
  // k independent draws (with replacement — the classic power-of-k-choices
  // sampler); among the sampled servers prefer the least-loaded usable one.
  ServerId chosen = cluster.num_servers();
  double chosen_load = std::numeric_limits<double>::infinity();
  for (std::size_t draw = 0; draw < k_; ++draw) {
    const auto i = static_cast<ServerId>(
        rng_.uniform_int(0, static_cast<std::int64_t>(cluster.num_servers()) - 1));
    const Server& s = cluster.server(i);
    if (s.failed()) continue;  // failed samples burn a draw but never win
    const bool usable = s.is_on() || s.power_state() == PowerState::kWaking;
    // Sleeping samples are admissible (they wake on dispatch) but rank after
    // any usable sample: charge them the wake as one queued-job equivalent.
    const double load = s.utilization(0) + static_cast<double>(s.queue_length()) +
                        (usable ? 0.0 : 1.0 + static_cast<double>(s.jobs_on_server()));
    if (load < chosen_load) {
      chosen_load = load;
      chosen = i;
    }
  }
  return chosen < cluster.num_servers() ? chosen : first_live_from(cluster, 0);
}

double AlwaysOnPolicy::on_idle(const Server& server, Time now) {
  (void)server;
  (void)now;
  return kNeverSleep;
}

double ImmediateSleepPolicy::on_idle(const Server& server, Time now) {
  (void)server;
  (void)now;
  return 0.0;
}

double FixedTimeoutPolicy::on_idle(const Server& server, Time now) {
  (void)server;
  (void)now;
  return timeout_;
}

}  // namespace hcrl::sim
