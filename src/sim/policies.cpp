#include "src/sim/policies.hpp"

#include "src/sim/cluster_view.hpp"
#include "src/sim/server.hpp"

namespace hcrl::sim {

ServerId RoundRobinAllocator::select_server(const ClusterView& cluster, const Job& job) {
  (void)job;
  const ServerId chosen = next_ % cluster.num_servers();
  next_ = (next_ + 1) % cluster.num_servers();
  return chosen;
}

ServerId RandomAllocator::select_server(const ClusterView& cluster, const Job& job) {
  (void)job;
  return static_cast<ServerId>(
      rng_.uniform_int(0, static_cast<std::int64_t>(cluster.num_servers()) - 1));
}

ServerId LeastLoadedAllocator::select_server(const ClusterView& cluster, const Job& job) {
  (void)job;
  // Prefer the least-utilized awake server; wake a sleeping one only when
  // no awake server can absorb the job without saturating.
  ServerId best_awake = cluster.num_servers();
  double best_util = 2.0;
  for (ServerId i = 0; i < cluster.num_servers(); ++i) {
    const Server& s = cluster.server(i);
    if (!s.is_on() && s.power_state() != PowerState::kWaking) continue;
    const double u = s.utilization(0) + static_cast<double>(s.queue_length());
    if (u < best_util) {
      best_util = u;
      best_awake = i;
    }
  }
  if (best_awake < cluster.num_servers() && best_util + job.demand[0] <= 1.0) return best_awake;
  // Saturated (or nothing awake): pick any sleeping server, else least loaded.
  for (ServerId i = 0; i < cluster.num_servers(); ++i) {
    if (cluster.server(i).power_state() == PowerState::kSleep) return i;
  }
  return best_awake < cluster.num_servers() ? best_awake : 0;
}

ServerId FirstFitPackingAllocator::select_server(const ClusterView& cluster, const Job& job) {
  // Choose the *busiest* awake server whose free resources fit the job and
  // whose queue is empty (consolidation without creating waits); fall back
  // to waking the first sleeping server, then to the shortest queue.
  ServerId best = cluster.num_servers();
  double best_util = -1.0;
  for (ServerId i = 0; i < cluster.num_servers(); ++i) {
    const Server& s = cluster.server(i);
    const bool usable = s.is_on() || s.power_state() == PowerState::kWaking;
    if (!usable || s.queue_length() > 0) continue;
    if (!s.available().fits(job.demand)) continue;
    if (s.utilization(0) > best_util) {
      best_util = s.utilization(0);
      best = i;
    }
  }
  if (best < cluster.num_servers()) return best;
  for (ServerId i = 0; i < cluster.num_servers(); ++i) {
    if (cluster.server(i).power_state() == PowerState::kSleep) return i;
  }
  // Everything is busy: shortest combined backlog.
  ServerId fallback = 0;
  std::size_t best_backlog = static_cast<std::size_t>(-1);
  for (ServerId i = 0; i < cluster.num_servers(); ++i) {
    const std::size_t backlog = cluster.server(i).jobs_on_server();
    if (backlog < best_backlog) {
      best_backlog = backlog;
      fallback = i;
    }
  }
  return fallback;
}

double AlwaysOnPolicy::on_idle(const Server& server, Time now) {
  (void)server;
  (void)now;
  return kNeverSleep;
}

double ImmediateSleepPolicy::on_idle(const Server& server, Time now) {
  (void)server;
  (void)now;
  return 0.0;
}

double FixedTimeoutPolicy::on_idle(const Server& server, Time now) {
  (void)server;
  (void)now;
  return timeout_;
}

}  // namespace hcrl::sim
