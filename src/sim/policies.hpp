// Policy interfaces + reference policies.
//
// The global tier implements AllocationPolicy (which server gets the job);
// the local tier implements PowerPolicy (what to do when a server idles).
// Reference implementations here are the paper's baselines: round-robin
// allocation, always-on, immediate ("ad hoc") sleep, and fixed timeouts.
#pragma once

#include <limits>
#include <stdexcept>
#include <string>

#include "src/common/rng.hpp"
#include "src/sim/types.hpp"

namespace hcrl::sim {

class ClusterView;
class Server;

/// Returned by PowerPolicy::on_idle to keep the server powered on forever.
constexpr double kNeverSleep = std::numeric_limits<double>::infinity();

/// Global tier: decides the target server for each arriving job.
class AllocationPolicy {
 public:
  virtual ~AllocationPolicy() = default;

  /// What cluster state select_server actually reads. The sharded engine
  /// uses this to decide how much synchronization an arrival needs.
  enum class RoutingMode {
    /// Reads live cluster state (utilizations, power states, metrics).
    /// Arrivals are cross-shard sync points: every shard must have drained
    /// strictly past the arrival time before the decision is made.
    kGlobalState,
    /// Depends only on the trace (arrival order) and num_servers — e.g.
    /// round-robin or seeded-random dispatch. Arrivals can be pre-routed to
    /// shards at load time and shards run fully independently.
    kTraceOnly,
  };

  /// Called once per job arrival (= one decision epoch, §V). Must return a
  /// server index in [0, cluster.num_servers()).
  virtual ServerId select_server(const ClusterView& cluster, const Job& job) = 0;

  /// Called when the simulation finishes (hook for learners to flush).
  virtual void on_simulation_end(const ClusterView& cluster, Time now) {
    (void)cluster;
    (void)now;
  }

  /// Conservative default: assume the policy reads global state.
  virtual RoutingMode routing_mode() const { return RoutingMode::kGlobalState; }

  virtual std::string name() const = 0;
};

class EventQueue;

/// Local tier: per-server dynamic power management.
class PowerPolicy {
 public:
  virtual ~PowerPolicy() = default;

  /// Called when `server` enters the idle state with an empty queue
  /// (decision-epoch case 1 of §VI-B). Return the timeout in seconds:
  /// 0 sleeps immediately, kNeverSleep stays on.
  virtual double on_idle(const Server& server, Time now) = 0;

  // ---- batched decision-epoch seam ----------------------------------------
  //
  // A policy that fuses its decisions into shared NN batches stages each
  // idle decision instead of answering inline: defer_idle() records the
  // request (reserving the event seq the inline path would have consumed —
  // see EventQueue::reserve_seq) and returns true; the cluster calls
  // flush_decisions() at the epoch boundary — before the next event that
  // could observe the outcome (a time advance, any job arrival, or queue
  // drain) — and the policy then answers every staged request via
  // Server::commit_idle_decision. The defaults keep every existing policy on
  // the inline path.

  /// Stage the idle decision for `server` at `now`; return false to answer
  /// inline through on_idle() instead.
  virtual bool defer_idle(Server& server, Time now, EventQueue& queue) {
    (void)server; (void)now; (void)queue;
    return false;
  }
  /// True while staged decisions await flush_decisions().
  virtual bool has_staged_decisions() const { return false; }
  /// Commit every staged decision (in staging order).
  virtual void flush_decisions() {}

  /// Called on every job arrival at the server, before it is enqueued
  /// (feeds workload predictors; cases 2/3 of §VI-B need no decision).
  virtual void on_arrival(const Server& server, const Job& job, Time now) {
    (void)server; (void)job; (void)now;
  }

  /// True when the policy keeps no mutable cross-server state, so distinct
  /// shards may call on_idle()/on_arrival() concurrently from worker threads.
  /// Policies that stage decisions or share learners must return false (the
  /// sharded engine then runs them in single-threaded lockstep).
  virtual bool shard_parallel_safe() const { return false; }

  virtual std::string name() const = 0;
};

// ---- reference allocation policies ----------------------------------------

/// The paper's baseline: dispatch jobs to servers cyclically.
class RoundRobinAllocator final : public AllocationPolicy {
 public:
  ServerId select_server(const ClusterView& cluster, const Job& job) override;
  RoutingMode routing_mode() const override { return RoutingMode::kTraceOnly; }
  std::string name() const override { return "round-robin"; }

 private:
  ServerId next_ = 0;
};

/// Uniformly random dispatch (diagnostic baseline).
class RandomAllocator final : public AllocationPolicy {
 public:
  explicit RandomAllocator(common::Rng rng) : rng_(rng) {}
  ServerId select_server(const ClusterView& cluster, const Job& job) override;
  RoutingMode routing_mode() const override { return RoutingMode::kTraceOnly; }
  std::string name() const override { return "random"; }

 private:
  common::Rng rng_;
};

/// Sends each job to the awake server with the lowest CPU utilization;
/// wakes a sleeping server only when every awake server is saturated.
class LeastLoadedAllocator final : public AllocationPolicy {
 public:
  ServerId select_server(const ClusterView& cluster, const Job& job) override;
  std::string name() const override { return "least-loaded"; }
};

/// Packs jobs onto the busiest awake server that still fits them
/// (greedy consolidation heuristic — a non-learning contrast to the DRL tier).
class FirstFitPackingAllocator final : public AllocationPolicy {
 public:
  ServerId select_server(const ClusterView& cluster, const Job& job) override;
  std::string name() const override { return "first-fit-packing"; }
};

/// Classical best-fit: the awake, empty-queue server that fits the job with
/// the LEAST total capacity left over (tightest bin). Falls back to waking a
/// sleeping server, then to the shortest backlog.
class BestFitAllocator final : public AllocationPolicy {
 public:
  ServerId select_server(const ClusterView& cluster, const Job& job) override;
  std::string name() const override { return "best-fit"; }
};

/// Classical worst-fit: the awake, empty-queue fitting server with the MOST
/// total capacity left over (load spreading, the anti-consolidation
/// contrast). Same fallbacks as best-fit.
class WorstFitAllocator final : public AllocationPolicy {
 public:
  ServerId select_server(const ClusterView& cluster, const Job& job) override;
  std::string name() const override { return "worst-fit"; }
};

/// Tetris-style multi-resource packing: among awake, empty-queue servers
/// that fit, maximize the dot product of the job's demand vector and the
/// server's available-resource vector — placements where the job's shape
/// aligns with the machine's remaining shape, which packs mixed CPU/mem/disk
/// demands tighter than any single-dimension rule.
class TetrisAllocator final : public AllocationPolicy {
 public:
  ServerId select_server(const ClusterView& cluster, const Job& job) override;
  std::string name() const override { return "tetris"; }
};

/// Power-of-k-choices: sample k servers from the seeded per-policy stream
/// and dispatch to the least-loaded usable one among them. Reads the sampled
/// servers' live state, so unlike RandomAllocator it is NOT trace-only.
class RandomKAllocator final : public AllocationPolicy {
 public:
  RandomKAllocator(std::size_t k, common::Rng rng);
  ServerId select_server(const ClusterView& cluster, const Job& job) override;
  std::string name() const override { return "random-" + std::to_string(k_); }
  std::size_t k() const noexcept { return k_; }

 private:
  std::size_t k_;
  common::Rng rng_;
};

// ---- reference power policies ----------------------------------------------

/// Never sleeps. Paired with round-robin this is the paper's baseline.
class AlwaysOnPolicy final : public PowerPolicy {
 public:
  double on_idle(const Server& server, Time now) override;
  bool shard_parallel_safe() const override { return true; }
  std::string name() const override { return "always-on"; }
};

/// Sleeps the instant the server idles — the "ad hoc" manner of Fig. 4(a);
/// pairing it with the DRL global tier gives the paper's "DRL-based
/// resource allocation only" system.
class ImmediateSleepPolicy final : public PowerPolicy {
 public:
  double on_idle(const Server& server, Time now) override;
  bool shard_parallel_safe() const override { return true; }
  std::string name() const override { return "immediate-sleep"; }
};

/// Sleeps after a fixed timeout (the 30/60/90 s baselines of Fig. 10).
class FixedTimeoutPolicy final : public PowerPolicy {
 public:
  explicit FixedTimeoutPolicy(double timeout_s) : timeout_(timeout_s) {
    if (timeout_s < 0.0) throw std::invalid_argument("FixedTimeoutPolicy: negative timeout");
  }
  double on_idle(const Server& server, Time now) override;
  bool shard_parallel_safe() const override { return true; }
  std::string name() const override { return "fixed-timeout-" + std::to_string(timeout_); }
  double timeout() const noexcept { return timeout_; }

 private:
  double timeout_;
};

}  // namespace hcrl::sim
