#include "src/sim/power_model.hpp"

#include <algorithm>
#include <cmath>

namespace hcrl::sim {

double PowerModel::active_power(double utilization) const noexcept {
  const double x = std::clamp(utilization, 0.0, 1.0);
  return idle_watts + (peak_watts - idle_watts) * (2.0 * x - std::pow(x, 1.4));
}

}  // namespace hcrl::sim
