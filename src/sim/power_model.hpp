// Server power model — Eqn. (3) of the paper, after Fan/Weber/Barroso:
//   P(x) = P(0%) + (P(100%) - P(0%)) * (2x - x^1.4)
// with x the CPU utilization in [0, 1]. Sleep draws ~0 W; mode transitions
// draw more than idle (the paper cites [21, 22]) — we default them to peak.
#pragma once

#include <stdexcept>

namespace hcrl::sim {

struct PowerModel {
  double idle_watts = 87.0;        // P(0%)   (paper, §VII-A)
  double peak_watts = 145.0;       // P(100%) (paper, §VII-A)
  double sleep_watts = 0.0;        // paper assumes zero in sleep
  double transition_watts = 145.0; // during sleep<->active transitions

  /// Active-mode power at CPU utilization x in [0, 1] (clamped).
  double active_power(double utilization) const noexcept;

  void validate() const {
    if (idle_watts < 0.0 || peak_watts < idle_watts) {
      throw std::invalid_argument("PowerModel: need 0 <= idle <= peak");
    }
    if (sleep_watts < 0.0 || transition_watts < 0.0) {
      throw std::invalid_argument("PowerModel: negative power");
    }
  }
};

}  // namespace hcrl::sim
