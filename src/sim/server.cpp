#include "src/sim/server.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "src/sim/policies.hpp"

namespace hcrl::sim {

const char* to_string(PowerState s) noexcept {
  switch (s) {
    case PowerState::kSleep: return "sleep";
    case PowerState::kWaking: return "waking";
    case PowerState::kActive: return "active";
    case PowerState::kIdle: return "idle";
    case PowerState::kFallingAsleep: return "falling-asleep";
    case PowerState::kFailed: return "failed";
  }
  return "?";
}

void ServerConfig::validate() const {
  power.validate();
  if (num_resources == 0) throw std::invalid_argument("ServerConfig: need >= 1 resource");
  if (t_on < 0.0 || t_off < 0.0) throw std::invalid_argument("ServerConfig: negative transition");
  if (hotspot_threshold <= 0.0 || hotspot_threshold > 1.0) {
    throw std::invalid_argument("ServerConfig: hotspot_threshold out of (0,1]");
  }
}

Server::Server(ServerId id, const ServerConfig& cfg, ClusterMetrics* metrics)
    : id_(id),
      cfg_(cfg),
      metrics_(metrics),
      state_(cfg.start_asleep ? PowerState::kSleep : PowerState::kIdle),
      used_(cfg.num_resources, 0.0),
      capacity_(cfg.num_resources, 1.0) {
  cfg_.validate();
  const double initial_watts =
      cfg_.start_asleep ? cfg_.power.sleep_watts : cfg_.power.active_power(0.0);
  power_.set(0.0, 0.0);
  queue_len_.set(0.0, 0.0);
  jobs_.set(0.0, 0.0);
  set_power(0.0, initial_watts);
  if (metrics_ != nullptr) metrics_->on_server_status(id_, is_on(), 0.0);
}

ResourceVector Server::available() const {
  ResourceVector avail = capacity_;
  avail.subtract(used_);
  return avail;
}

void Server::set_power(Time now, double watts) {
  power_.set(now, watts);
  if (metrics_ != nullptr) metrics_->on_power_change(id_, watts, now);
}

void Server::refresh_power(Time now) {
  switch (state_) {
    case PowerState::kSleep:
      set_power(now, cfg_.power.sleep_watts);
      break;
    case PowerState::kWaking:
    case PowerState::kFallingAsleep:
      set_power(now, cfg_.power.transition_watts);
      break;
    case PowerState::kActive:
    case PowerState::kIdle:
      set_power(now, cfg_.power.active_power(utilization(0)));
      break;
    case PowerState::kFailed:
      set_power(now, 0.0);  // dead servers draw nothing
      break;
  }
  if (metrics_ != nullptr) {
    const double over = std::max(0.0, utilization(0) - cfg_.hotspot_threshold);
    metrics_->on_reliability_change(id_, over * over, now);
    // Every is_on()/utilization transition funnels through refresh_power, so
    // reporting here keeps the O(1) cluster aggregates exact per event.
    metrics_->on_server_status(id_, is_on(), utilization(0));
  }
}

void Server::update_trackers(Time now) {
  queue_len_.set(now, static_cast<double>(queue_.size()));
  jobs_.set(now, static_cast<double>(jobs_on_server()));
}

void Server::handle_arrival(const Job& job, Time now, EventQueue& queue, PowerPolicy& policy) {
  job.validate(cfg_.num_resources);
  policy.on_arrival(*this, job, now);
  last_arrival_ = now;
  ++total_arrivals_;
  queue_.push_back(job);
  update_trackers(now);

  switch (state_) {
    case PowerState::kSleep:
      begin_wake(now, queue);
      break;
    case PowerState::kFallingAsleep:
      // Must finish powering down first; handle_sleep_complete re-wakes.
      break;
    case PowerState::kIdle:
      ++timeout_generation_;  // cancel any pending idle timeout
      state_ = PowerState::kActive;
      try_start_jobs(now, queue);
      break;
    case PowerState::kWaking:
      break;
    case PowerState::kActive:
      try_start_jobs(now, queue);
      break;
    case PowerState::kFailed:
      // The engine bounces arrivals targeting failed servers into the
      // retry stream before they reach the server.
      throw std::logic_error("Server: arrival at failed server");
  }
}

void Server::try_start_jobs(Time now, EventQueue& queue) {
  assert(state_ == PowerState::kActive);
  while (!queue_.empty()) {
    ResourceVector avail = capacity_;
    avail.subtract(used_);
    if (!avail.fits(queue_.front().demand)) break;  // strict FCFS: no backfill
    Job job = std::move(queue_.front());
    queue_.pop_front();
    used_.add(job.demand);
    queue.push(now + job.duration, EventType::kJobFinish, id_, job.id, incarnation_);
    running_.push_back(RunningJob{std::move(job), now});
  }
  update_trackers(now);
  refresh_power(now);
}

void Server::handle_job_finish(JobId job, Time now, EventQueue& queue, PowerPolicy& policy,
                               std::uint64_t generation) {
  if (generation != incarnation_) return;  // job was revoked by a crash/eviction
  auto it = std::find_if(running_.begin(), running_.end(),
                         [job](const RunningJob& r) { return r.job.id == job; });
  if (it == running_.end()) throw std::logic_error("Server: finish for unknown job");
  used_.subtract(it->job.demand);
  used_.clamp(0.0, 1.0);  // absorb float noise from many add/subtract cycles

  if (metrics_ != nullptr) {
    JobRecord rec;
    rec.id = it->job.id;
    rec.server = id_;
    rec.arrival = it->job.submit_time();
    rec.start = it->start;
    rec.finish = now;
    metrics_->on_completion(rec, now);
  }
  *it = std::move(running_.back());
  running_.pop_back();

  try_start_jobs(now, queue);
  if (running_.empty() && queue_.empty()) {
    enter_idle(now, queue, policy);
  }
}

void Server::enter_idle(Time now, EventQueue& queue, PowerPolicy& policy) {
  assert(running_.empty() && queue_.empty());
  state_ = PowerState::kIdle;
  refresh_power(now);
  if (policy.defer_idle(*this, now, queue)) return;  // staged; committed at the epoch flush
  apply_idle_timeout(policy.on_idle(*this, now), now, queue, kFreshSeq);
}

void Server::apply_idle_timeout(double timeout, Time now, EventQueue& queue, std::uint64_t seq) {
  if (timeout < 0.0) throw std::invalid_argument("PowerPolicy returned negative timeout");
  if (timeout == 0.0) {
    begin_sleep(now, queue, seq);
  } else if (timeout < kNeverSleep) {
    ++timeout_generation_;
    if (seq == kFreshSeq) {
      queue.push(now + timeout, EventType::kIdleTimeout, id_, /*job=*/0, timeout_generation_);
    } else {
      queue.push_at(now + timeout, seq, EventType::kIdleTimeout, id_, /*job=*/0,
                    timeout_generation_);
    }
  }
  // kNeverSleep: stay idle with no pending event (a reserved seq stays unused,
  // which leaves the heap's relative order untouched).
}

void Server::commit_idle_decision(double timeout, Time staged_at, std::uint64_t reserved_seq,
                                  EventQueue& queue) {
  if (state_ != PowerState::kIdle) return;  // decision became moot since staging
  apply_idle_timeout(timeout, staged_at, queue, reserved_seq);
}

void Server::begin_wake(Time now, EventQueue& queue) {
  assert(state_ == PowerState::kSleep);
  state_ = PowerState::kWaking;
  refresh_power(now);
  queue.push(now + cfg_.t_on, EventType::kWakeComplete, id_, /*job=*/0, incarnation_);
}

void Server::begin_sleep(Time now, EventQueue& queue, std::uint64_t seq) {
  assert(state_ == PowerState::kIdle);
  state_ = PowerState::kFallingAsleep;
  refresh_power(now);
  if (seq == kFreshSeq) {
    queue.push(now + cfg_.t_off, EventType::kSleepComplete, id_, /*job=*/0, incarnation_);
  } else {
    queue.push_at(now + cfg_.t_off, seq, EventType::kSleepComplete, id_, /*job=*/0, incarnation_);
  }
}

void Server::handle_wake_complete(Time now, EventQueue& queue, PowerPolicy& policy,
                                  std::uint64_t generation) {
  if (generation != incarnation_) return;  // transition revoked by a crash
  assert(state_ == PowerState::kWaking);
  state_ = PowerState::kActive;
  try_start_jobs(now, queue);
  if (running_.empty() && queue_.empty()) {
    // Possible if the only queued job was somehow invalidated; stay safe.
    enter_idle(now, queue, policy);
  }
}

void Server::handle_sleep_complete(Time now, EventQueue& queue, PowerPolicy& policy,
                                   std::uint64_t generation) {
  (void)policy;
  if (generation != incarnation_) return;  // transition revoked by a crash
  assert(state_ == PowerState::kFallingAsleep);
  state_ = PowerState::kSleep;
  refresh_power(now);
  if (!queue_.empty()) {
    // A job arrived during the power-down transition (Fig. 4a): the server
    // must complete the transition and immediately wake again.
    begin_wake(now, queue);
  }
}

void Server::handle_idle_timeout(std::uint64_t generation, Time now, EventQueue& queue,
                                 PowerPolicy& policy) {
  (void)policy;
  if (state_ != PowerState::kIdle || generation != timeout_generation_) return;  // stale
  begin_sleep(now, queue);
}

std::vector<Job> Server::handle_crash(Time now) {
  if (state_ == PowerState::kFailed) return {};  // no-op crash on a dead server
  std::vector<Job> killed;
  killed.reserve(running_.size() + queue_.size());
  for (RunningJob& r : running_) {
    if (metrics_ != nullptr) {
      metrics_->on_job_killed((now - r.start) * r.job.demand[0], now);
    }
    killed.push_back(std::move(r.job));
  }
  for (Job& j : queue_) {
    // Queued work lost no CPU progress, only wall time.
    if (metrics_ != nullptr) metrics_->on_job_killed(0.0, now);
    killed.push_back(std::move(j));
  }
  running_.clear();
  queue_.clear();
  used_ = ResourceVector(cfg_.num_resources, 0.0);
  ++incarnation_;         // invalidates pending finish/wake/sleep events
  ++timeout_generation_;  // and any pending idle timeout
  state_ = PowerState::kFailed;
  failed_since_ = now;
  update_trackers(now);
  refresh_power(now);
  if (metrics_ != nullptr) metrics_->on_crash(now);
  return killed;
}

void Server::handle_recover(Time now) {
  if (state_ != PowerState::kFailed) return;  // no crash happened (or double recover)
  state_ = PowerState::kSleep;  // cold boot: the next placement wakes it
  refresh_power(now);
  if (metrics_ != nullptr) metrics_->on_recovery(now - failed_since_, now);
}

std::vector<Job> Server::handle_eviction(Time now, EventQueue& queue, PowerPolicy& policy) {
  if (running_.empty()) return {};  // nothing to revoke (sleeping/idle/failed)
  assert(state_ == PowerState::kActive);
  std::vector<Job> killed;
  killed.reserve(running_.size());
  for (RunningJob& r : running_) {
    if (metrics_ != nullptr) {
      metrics_->on_job_killed((now - r.start) * r.job.demand[0], now);
    }
    used_.subtract(r.job.demand);
    killed.push_back(std::move(r.job));
  }
  running_.clear();
  used_.clamp(0.0, 1.0);
  ++incarnation_;  // invalidates the revoked jobs' pending finish events
  if (metrics_ != nullptr) metrics_->on_eviction(now);
  try_start_jobs(now, queue);  // queued jobs survive the revocation
  if (running_.empty() && queue_.empty()) {
    enter_idle(now, queue, policy);
  }
  return killed;
}

}  // namespace hcrl::sim
