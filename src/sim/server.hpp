// A single physical server: FCFS job execution + power state machine.
//
// States and transitions (§III, Figs. 3-4):
//
//   Sleep --arrival--> Waking --(Ton)--> Active <--> Idle
//   Idle --timeout/immediate--> FallingAsleep --(Toff)--> Sleep
//   FallingAsleep + arrival: finish the transition, then wake (Fig. 4a).
//
// Jobs are queued FCFS; the head starts as soon as every resource component
// fits (no backfilling). A started job runs for exactly its duration.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "src/common/stats.hpp"
#include "src/sim/event_queue.hpp"
#include "src/sim/metrics.hpp"
#include "src/sim/power_model.hpp"
#include "src/sim/types.hpp"

namespace hcrl::sim {

class PowerPolicy;

enum class PowerState : std::uint8_t {
  kSleep,
  kWaking,         // sleep -> active transition (takes Ton)
  kActive,         // at least one job running
  kIdle,           // powered on, no jobs
  kFallingAsleep,  // active/idle -> sleep transition (takes Toff)
  kFailed,         // crash-failed (fault injection); draws no power
};

const char* to_string(PowerState s) noexcept;

struct ServerConfig {
  std::size_t num_resources = 3;
  PowerModel power;
  Time t_on = 30.0;
  Time t_off = 30.0;
  bool start_asleep = true;
  /// Utilization above which the hot-spot (reliability) penalty kicks in.
  double hotspot_threshold = 0.8;

  void validate() const;
};

class Server {
 public:
  Server(ServerId id, const ServerConfig& cfg, ClusterMetrics* metrics);

  // ---- event handlers (called by the Cluster engine) ----------------------
  void handle_arrival(const Job& job, Time now, EventQueue& queue, PowerPolicy& policy);
  /// The `generation` on finish/wake/sleep events carries the server's
  /// incarnation at scheduling time; a crash or eviction bumps it, so
  /// events scheduled before the fault arrive stale and are dropped.
  /// (Always 0 == 0 when fault injection is off — bit-identical behavior.)
  void handle_job_finish(JobId job, Time now, EventQueue& queue, PowerPolicy& policy,
                         std::uint64_t generation = 0);
  void handle_wake_complete(Time now, EventQueue& queue, PowerPolicy& policy,
                            std::uint64_t generation = 0);
  void handle_sleep_complete(Time now, EventQueue& queue, PowerPolicy& policy,
                             std::uint64_t generation = 0);
  void handle_idle_timeout(std::uint64_t generation, Time now, EventQueue& queue,
                           PowerPolicy& policy);

  // ---- fault injection (see src/sim/fault/fault.hpp) -----------------------
  /// Full-server crash: every running and queued job is revoked and
  /// returned (the engine routes them into the retry stream); pending
  /// finish/wake/sleep/timeout events go stale via the incarnation bump.
  /// No-op (empty return) when already failed.
  std::vector<Job> handle_crash(Time now);
  /// Repair completes: kFailed -> kSleep (cold boot; the next placement
  /// wakes it). No-op unless failed.
  void handle_recover(Time now);
  /// Spot revocation: running jobs are revoked and returned; queued jobs
  /// survive and may start immediately. No-op (empty return) when nothing
  /// is running.
  std::vector<Job> handle_eviction(Time now, EventQueue& queue, PowerPolicy& policy);

  /// Deferred half of the idle decision (batched decision epochs): apply the
  /// timeout a policy staged via PowerPolicy::defer_idle at time `staged_at`,
  /// scheduling any event with the seq reserved at staging time so the heap's
  /// (time, seq) order matches the inline path exactly. A no-op if the server
  /// has left the idle state since staging (cannot happen under the cluster's
  /// flush barriers; kept as a guard for direct drivers).
  void commit_idle_decision(double timeout, Time staged_at, std::uint64_t reserved_seq,
                            EventQueue& queue);

  // ---- views ---------------------------------------------------------------
  ServerId id() const noexcept { return id_; }
  PowerState power_state() const noexcept { return state_; }
  bool is_on() const noexcept { return state_ == PowerState::kActive || state_ == PowerState::kIdle; }
  bool failed() const noexcept { return state_ == PowerState::kFailed; }
  /// Bumped on every crash/eviction; stamps newly scheduled events.
  std::uint64_t incarnation() const noexcept { return incarnation_; }
  /// Utilization of one resource dimension (0 = CPU), in [0, 1].
  double utilization(std::size_t resource = 0) const { return used_[resource]; }
  const ResourceVector& used() const noexcept { return used_; }
  ResourceVector available() const;
  std::size_t queue_length() const noexcept { return queue_.size(); }
  std::size_t running_count() const noexcept { return running_.size(); }
  std::size_t jobs_on_server() const noexcept { return queue_.size() + running_.size(); }
  double power_watts() const noexcept { return power_.current(); }

  /// Exact integrals used by the local-tier RL reward (Eqn. 5).
  double power_integral(Time now) const { return power_.integral(now); }
  double queue_integral(Time now) const { return queue_len_.integral(now); }
  double jobs_integral(Time now) const { return jobs_.integral(now); }
  double energy_joules(Time now) const { return power_.integral(now); }

  /// Time of the most recent job arrival at this server (-inf if none).
  Time last_arrival_time() const noexcept { return last_arrival_; }
  std::size_t total_arrivals() const noexcept { return total_arrivals_; }

  const ServerConfig& config() const noexcept { return cfg_; }

 private:
  struct RunningJob {
    Job job;
    Time start = 0.0;
  };

  /// Sentinel for "allocate a fresh seq" in the seq-threaded helpers.
  static constexpr std::uint64_t kFreshSeq = ~std::uint64_t{0};

  void try_start_jobs(Time now, EventQueue& queue);
  void enter_idle(Time now, EventQueue& queue, PowerPolicy& policy);
  void apply_idle_timeout(double timeout, Time now, EventQueue& queue, std::uint64_t seq);
  void begin_wake(Time now, EventQueue& queue);
  void begin_sleep(Time now, EventQueue& queue, std::uint64_t seq = kFreshSeq);
  void set_power(Time now, double watts);
  void refresh_power(Time now);
  void update_trackers(Time now);

  ServerId id_;
  ServerConfig cfg_;
  ClusterMetrics* metrics_;  // not owned; may be null in unit tests

  PowerState state_;
  ResourceVector used_;
  ResourceVector capacity_;
  std::deque<Job> queue_;
  std::vector<RunningJob> running_;
  std::uint64_t timeout_generation_ = 0;
  std::uint64_t incarnation_ = 0;
  Time failed_since_ = 0.0;

  common::TimeWeightedValue power_;
  common::TimeWeightedValue queue_len_;
  common::TimeWeightedValue jobs_;
  Time last_arrival_ = -1.0;
  std::size_t total_arrivals_ = 0;
};

}  // namespace hcrl::sim
