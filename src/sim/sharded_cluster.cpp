#include "src/sim/sharded_cluster.hpp"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_set>

#include "src/sim/sim_telemetry.hpp"
#include "src/telemetry/profiler.hpp"
#include "src/telemetry/trace.hpp"

namespace hcrl::sim {

void ShardedClusterConfig::validate() const {
  cluster.validate();
  if (num_shards == 0) throw std::invalid_argument("ShardedClusterConfig: need >= 1 shard");
  if (num_shards > cluster.num_servers) {
    throw std::invalid_argument("ShardedClusterConfig: more shards than servers");
  }
}

ShardedCluster::ShardedCluster(const ShardedClusterConfig& cfg, AllocationPolicy& allocation,
                               PowerPolicy& power)
    : cfg_(cfg), allocation_(allocation), power_policy_(power) {
  cfg_.validate();
  if (cfg_.execution == ShardedClusterConfig::Execution::kParallel &&
      !power_policy_.shard_parallel_safe()) {
    throw std::invalid_argument("ShardedCluster: power policy '" + power_policy_.name() +
                                "' is not shard_parallel_safe; use lockstep execution");
  }

  const std::size_t m = cfg_.cluster.num_servers;
  const std::size_t n = cfg_.num_shards;
  shards_.resize(n);
  owner_.resize(m);
  // Contiguous block partition; the first (m % n) shards take one extra.
  const std::size_t base = m / n;
  const std::size_t rem = m % n;
  std::size_t next = 0;
  for (std::size_t s = 0; s < n; ++s) {
    shards_[s].begin = next;
    next += base + (s < rem ? 1 : 0);
    shards_[s].end = next;
    shards_[s].metrics =
        std::make_unique<ClusterMetrics>(m, cfg_.cluster.keep_job_records);
    for (std::size_t i = shards_[s].begin; i < shards_[s].end; ++i) owner_[i] = s;
  }

  servers_.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    servers_.emplace_back(i, cfg_.cluster.server, shards_[owner_[i]].metrics.get());
  }
  set_server_view({servers_.data(), servers_.size()});
}

void ShardedCluster::install_faults(FaultInjector* faults) {
  if (jobs_loaded_) throw std::logic_error("ShardedCluster::install_faults: jobs already loaded");
  if (faults != nullptr && cfg_.execution == ShardedClusterConfig::Execution::kParallel) {
    throw std::invalid_argument(
        "ShardedCluster: fault injection requires lockstep execution (the retry "
        "stream is a cross-shard interaction the parallel window protocol cannot order)");
  }
  if (faults != nullptr) {
    for (const FaultEvent& f : faults->plan().events) {
      if (f.server >= servers_.size()) {
        throw std::invalid_argument("ShardedCluster::install_faults: plan targets server " +
                                    std::to_string(f.server) + " out of range");
      }
    }
  }
  faults_ = faults;
}

void ShardedCluster::load_jobs(std::vector<Job> jobs) {
  if (jobs_loaded_) throw std::logic_error("ShardedCluster::load_jobs: already loaded");
  if (jobs.size() > static_cast<std::size_t>(std::numeric_limits<JobId>::max())) {
    throw std::invalid_argument("ShardedCluster::load_jobs: trace exceeds JobId index range");
  }
  std::unordered_set<JobId> ids;
  ids.reserve(jobs.size());
  Time prev = 0.0;
  for (const Job& j : jobs) {
    j.validate(cfg_.cluster.server.num_resources);
    if (j.arrival < prev) {
      throw std::invalid_argument("ShardedCluster::load_jobs: not sorted by arrival");
    }
    prev = j.arrival;
    if (!ids.insert(j.id).second) {
      throw std::invalid_argument("ShardedCluster::load_jobs: duplicate id");
    }
  }
  jobs_ = std::move(jobs);
  jobs_loaded_ = true;

  if (cfg_.execution == ShardedClusterConfig::Execution::kParallel &&
      allocation_.routing_mode() == AllocationPolicy::RoutingMode::kTraceOnly) {
    // Trace-only routing depends on nothing but the arrival order, so every
    // decision can be made now, in trace order. The arrival event carries the
    // chosen target in its `server` field and the jobs_ index in `job`;
    // arrivals are pushed first, so within each shard they hold the smallest
    // seqs and win every same-time tie — exactly the serial tie-break.
    pre_routed_ = true;
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
      const ServerId target = allocation_.select_server(*this, jobs_[i]);
      if (target >= servers_.size()) {
        throw std::logic_error("AllocationPolicy returned invalid server " +
                               std::to_string(target));
      }
      shards_[owner_[target]].queue.push(jobs_[i].arrival, EventType::kJobArrival, target,
                                         static_cast<JobId>(i));
    }
    next_arrival_ = jobs_.size();
  }

  // Fault-plan events land per owning shard, in plan order, before any
  // runtime event is pushed: within each shard they hold the smallest seqs
  // (lockstep arrivals come via the cursor, not the queues). The plan's
  // (time, server, kind) sort plus the contiguous ascending shard ranges
  // make the merged (time, shard, seq) pop order equal to the serial
  // engine's (time, seq) order for every shard count.
  if (faults_ != nullptr) {
    for (const FaultEvent& f : faults_->plan().events) {
      shards_[owner_[f.server]].queue.push(f.time, to_event_type(f.kind), f.server);
    }
  }
}

ShardedCluster::MergedTop ShardedCluster::merged_top() const {
  MergedTop best;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& sh = shards_[s];
    if (sh.queue.empty()) continue;
    const Time t = sh.queue.top().time;
    if (!best.any || t < best.time) {
      best.any = true;
      best.time = t;
      best.shard = s;
    }
  }
  // Equal-time precedence (matches Cluster::step): trace arrival, then
  // retry, then heap events — the retry check comes first so the arrival
  // check below can still overrule it.
  if (faults_ != nullptr && faults_->has_pending_retry()) {
    const Time rt = faults_->next_retry_time();
    if (!best.any || rt <= best.time) {
      best.any = true;
      best.is_retry = true;
      best.time = rt;
    }
  }
  if (next_arrival_ < jobs_.size()) {
    const Time ta = jobs_[next_arrival_].arrival;
    // Arrivals win time-ties: in the serial engine they were pushed at load
    // and own seqs 0..J-1, below every runtime event's seq.
    if (!best.any || ta <= best.time) {
      best.any = true;
      best.is_arrival = true;
      best.is_retry = false;
      best.time = ta;
    }
  }
  return best;
}

bool ShardedCluster::step() {
  if (cfg_.execution == ShardedClusterConfig::Execution::kParallel) {
    throw std::logic_error("ShardedCluster::step: parallel mode runs whole windows; use run()");
  }
  // Decision-epoch flush barrier, same contract as Cluster::step(): staged
  // decisions commit before any event that could observe their outcome — a
  // time advance, any arrival, or queue drain. The flush may push events
  // earlier than the current merged top, so re-derive it afterwards.
  MergedTop top = merged_top();
  // Retries are re-arrivals: for the barrier they count like arrivals.
  if (power_policy_.has_staged_decisions() &&
      (!top.any || top.time != now_ || top.is_arrival || top.is_retry)) {
    count_flush(!top.any                         ? FlushReason::kDrain
                : top.is_arrival || top.is_retry ? FlushReason::kArrival
                                                 : FlushReason::kTimeAdvance);
    power_policy_.flush_decisions();
    top = merged_top();
  }
  if (!top.any) {
    if (!finished_notified_) {
      finished_notified_ = true;
      allocation_.on_simulation_end(*this, now_);
    }
    return false;
  }
  if (top.time < now_) throw std::logic_error("ShardedCluster: time went backwards");
  now_ = top.time;
  if (top.is_arrival) {
    const Job& job = jobs_[next_arrival_];
    ++next_arrival_;
    deliver_arrival(job);
  } else if (top.is_retry) {
    const FaultInjector::Retry r = faults_->pop_retry();
    deliver_arrival(r.job);
  } else {
    Shard& sh = shards_[top.shard];
    const Event e = sh.queue.pop();
    sh.clock = e.time;
    handle_shard_event(sh, e);
  }
  return true;
}

void ShardedCluster::deliver_arrival(const Job& job) {
  const ServerId target = allocation_.select_server(*this, job);
  if (target >= servers_.size()) {
    throw std::logic_error("AllocationPolicy returned invalid server " + std::to_string(target));
  }
  Shard& sh = shards_[owner_[target]];
  ++sh.events;
  if (telemetry::enabled()) telemetry::count(SimMetrics::get().events);
  if (faults_ != nullptr && servers_[target].failed()) {
    // Transient allocation failure: bounce into the retry stream (same
    // semantics as Cluster::dispatch_arrival), accounted on the owner shard.
    sh.metrics->on_bounce();
    if (faults_->schedule_retry(job, now_)) {
      sh.metrics->on_retry();
      if (telemetry::enabled()) telemetry::count(SimMetrics::get().fault_retries);
    } else {
      sh.metrics->on_job_lost();
      if (telemetry::enabled()) telemetry::count(SimMetrics::get().fault_lost);
    }
    return;
  }
  if (telemetry::enabled()) telemetry::count(SimMetrics::get().arrivals);
  sh.metrics->on_arrival(job, now_);
  servers_[target].handle_arrival(job, now_, sh.queue, power_policy_);
}

void ShardedCluster::requeue_killed(Shard& sh, const std::vector<Job>& killed) {
  for (const Job& j : killed) {
    if (faults_ != nullptr && faults_->schedule_retry(j, sh.clock)) {
      sh.metrics->on_retry();
      if (telemetry::enabled()) telemetry::count(SimMetrics::get().fault_retries);
    } else {
      sh.metrics->on_job_lost();
      if (telemetry::enabled()) telemetry::count(SimMetrics::get().fault_lost);
    }
  }
}

void ShardedCluster::handle_shard_event(Shard& sh, const Event& e) {
  ++sh.events;
  if (telemetry::enabled()) {
    const SimMetrics& m = SimMetrics::get();
    telemetry::count(m.events);
    if (e.type == EventType::kJobArrival) telemetry::count(m.arrivals);
  }
  switch (e.type) {
    case EventType::kJobArrival: {
      // Pre-routed arrival: target already chosen at load (e.server).
      const Job& job = jobs_[static_cast<std::size_t>(e.job)];
      sh.metrics->on_arrival(job, e.time);
      servers_[e.server].handle_arrival(job, e.time, sh.queue, power_policy_);
      break;
    }
    case EventType::kJobFinish:
      servers_[e.server].handle_job_finish(e.job, e.time, sh.queue, power_policy_, e.generation);
      break;
    case EventType::kWakeComplete:
      servers_[e.server].handle_wake_complete(e.time, sh.queue, power_policy_, e.generation);
      break;
    case EventType::kSleepComplete:
      servers_[e.server].handle_sleep_complete(e.time, sh.queue, power_policy_, e.generation);
      break;
    case EventType::kIdleTimeout:
      servers_[e.server].handle_idle_timeout(e.generation, e.time, sh.queue, power_policy_);
      break;
    case EventType::kServerCrash:
      if (telemetry::enabled()) telemetry::count(SimMetrics::get().fault_crashes);
      requeue_killed(sh, servers_[e.server].handle_crash(e.time));
      break;
    case EventType::kServerRecover:
      servers_[e.server].handle_recover(e.time);
      break;
    case EventType::kSpotEvict:
      if (telemetry::enabled()) telemetry::count(SimMetrics::get().fault_evictions);
      requeue_killed(sh, servers_[e.server].handle_eviction(e.time, sh.queue, power_policy_));
      break;
  }
}

void ShardedCluster::drain_shard(std::size_t shard, Time bound) {
  Shard& sh = shards_[shard];
  while (!sh.queue.empty() && sh.queue.top().time < bound) {
    const Event e = sh.queue.pop();
    if (e.time < sh.clock) throw std::logic_error("ShardedCluster: shard time went backwards");
    sh.clock = e.time;
    handle_shard_event(sh, e);
  }
}

void ShardedCluster::run() {
  if (cfg_.execution == ShardedClusterConfig::Execution::kLockstep) {
    while (step()) {
    }
    return;
  }
  run_parallel();
}

void ShardedCluster::run_until_completed(std::size_t n) {
  if (cfg_.execution == ShardedClusterConfig::Execution::kParallel) {
    throw std::logic_error("ShardedCluster::run_until_completed: lockstep mode only");
  }
  while (jobs_completed() < n && step()) {
  }
  if (power_policy_.has_staged_decisions()) {
    count_flush(FlushReason::kForced);
    power_policy_.flush_decisions();
  }
}

void ShardedCluster::run_parallel() {
  constexpr Time kInf = std::numeric_limits<Time>::infinity();
  const std::size_t n = shards_.size();

  // Window protocol: the coordinator publishes (generation, bound) under the
  // mutex; each worker drains its shard strictly below `bound` and reports
  // done. The mutex handshake orders every shard mutation before the
  // coordinator's cross-shard reads at the barrier (arrival routing sees a
  // fully quiesced cluster), and vice versa for the next window.
  std::mutex mu;
  std::condition_variable cv_work;
  std::condition_variable cv_done;
  std::uint64_t generation = 0;
  Time bound = 0.0;
  std::size_t done = 0;
  bool stop = false;
  std::vector<std::exception_ptr> errors(n);

  std::vector<std::thread> workers;
  workers.reserve(n);
  // Each worker owns one telemetry shard slab (no cross-thread contention on
  // metric cells) and a named trace track. The span shows each shard's busy
  // time inside every sync window.
  static const telemetry::SpanDef kDrainSpan("sim.shard_drain");
  for (std::size_t s = 0; s < n; ++s) {
    workers.emplace_back([&, s] {
      telemetry::set_thread_name("shard-" + std::to_string(s));
      telemetry::ShardScope scope(telemetry::global_registry().acquire_shard());
      std::uint64_t seen = 0;
      for (;;) {
        Time b = 0.0;
        {
          std::unique_lock<std::mutex> lock(mu);
          cv_work.wait(lock, [&] { return stop || generation != seen; });
          if (stop) return;
          seen = generation;
          b = bound;
        }
        try {
          telemetry::Span span(kDrainSpan);
          drain_shard(s, b);
        } catch (...) {
          errors[s] = std::current_exception();
        }
        {
          std::lock_guard<std::mutex> lock(mu);
          ++done;
        }
        cv_done.notify_one();
      }
    });
  }

  std::exception_ptr failure;
  auto open_window = [&](Time b) {
    if (telemetry::enabled()) telemetry::count(SimMetrics::get().sync_windows);
    {
      std::lock_guard<std::mutex> lock(mu);
      bound = b;
      done = 0;
      ++generation;
    }
    cv_work.notify_all();
    {
      std::unique_lock<std::mutex> lock(mu);
      cv_done.wait(lock, [&] { return done == n; });
    }
    for (std::exception_ptr& e : errors) {
      if (e != nullptr && failure == nullptr) failure = std::move(e);
      e = nullptr;
    }
    return failure == nullptr;
  };

  if (pre_routed_) {
    // Fully independent shards: one unbounded window, zero barriers.
    open_window(kInf);
  } else {
    while (next_arrival_ < jobs_.size()) {
      const Time ta = jobs_[next_arrival_].arrival;
      if (!open_window(ta)) break;  // conservative lookahead: drain below ta
      now_ = std::max(now_, ta);
      while (next_arrival_ < jobs_.size() && jobs_[next_arrival_].arrival == ta) {
        deliver_arrival(jobs_[next_arrival_]);
        ++next_arrival_;
      }
    }
    if (failure == nullptr) open_window(kInf);
  }

  {
    std::lock_guard<std::mutex> lock(mu);
    stop = true;
  }
  cv_work.notify_all();
  for (std::thread& t : workers) t.join();
  if (failure != nullptr) std::rethrow_exception(failure);

  now_ = end_time();
  if (!finished_notified_) {
    finished_notified_ = true;
    allocation_.on_simulation_end(*this, now_);
  }
}

std::uint64_t ShardedCluster::events_processed() const noexcept {
  std::uint64_t n = 0;
  for (const Shard& sh : shards_) n += sh.events;
  return n;
}

Time ShardedCluster::end_time() const {
  Time t = now_;
  for (const Shard& sh : shards_) t = std::max(t, sh.clock);
  return t;
}

double ShardedCluster::energy_joules(Time t) const {
  double e = 0.0;
  for (const Shard& sh : shards_) e += sh.metrics->energy_joules(t);
  return e;
}

double ShardedCluster::jobs_in_system_integral(Time t) const {
  double v = 0.0;
  for (const Shard& sh : shards_) v += sh.metrics->jobs_in_system_integral(t);
  return v;
}

double ShardedCluster::reliability_integral(Time t) const {
  double v = 0.0;
  for (const Shard& sh : shards_) v += sh.metrics->reliability_integral(t);
  return v;
}

std::size_t ShardedCluster::jobs_arrived() const noexcept {
  std::size_t v = 0;
  for (const Shard& sh : shards_) v += sh.metrics->jobs_arrived();
  return v;
}

std::size_t ShardedCluster::jobs_completed() const noexcept {
  std::size_t v = 0;
  for (const Shard& sh : shards_) v += sh.metrics->jobs_completed();
  return v;
}

double ShardedCluster::mean_cpu_utilization() const {
  double total = 0.0;
  for (const Shard& sh : shards_) total += sh.metrics->cpu_used_sum();
  return total / static_cast<double>(servers_.size());
}

std::size_t ShardedCluster::servers_on() const {
  std::size_t v = 0;
  for (const Shard& sh : shards_) v += sh.metrics->servers_on();
  return v;
}

std::size_t ShardedCluster::servers_failed() const {
  std::size_t v = 0;
  for (const Shard& sh : shards_) v += sh.metrics->servers_failed();
  return v;
}

MetricsSnapshot ShardedCluster::snapshot() const {
  const Time t = end_time();
  MetricsSnapshot agg;
  agg.now = t;
  for (const Shard& sh : shards_) {
    const MetricsSnapshot s = sh.metrics->snapshot(t);
    agg.jobs_arrived += s.jobs_arrived;
    agg.jobs_completed += s.jobs_completed;
    agg.energy_joules += s.energy_joules;
    agg.accumulated_latency_s += s.accumulated_latency_s;
    agg.jobs_in_system += s.jobs_in_system;
    agg.reliability_penalty += s.reliability_penalty;
    agg.faults.crashes += s.faults.crashes;
    agg.faults.recoveries += s.faults.recoveries;
    agg.faults.evictions += s.faults.evictions;
    agg.faults.jobs_killed += s.faults.jobs_killed;
    agg.faults.bounces += s.faults.bounces;
    agg.faults.retries += s.faults.retries;
    agg.faults.jobs_lost += s.faults.jobs_lost;
    agg.faults.lost_cpu_seconds += s.faults.lost_cpu_seconds;
    agg.faults.downtime_s += s.faults.downtime_s;
  }
  agg.average_power_watts = t > 0.0 ? agg.energy_joules / t : 0.0;
  return agg;
}

}  // namespace hcrl::sim
