// Sharded cluster engine: servers partitioned into N logical shards, each
// with its own EventQueue, metrics accumulator and local clock.
//
// All non-arrival events (finish, wake/sleep transitions, idle timeouts) are
// server-local, so between consecutive job arrivals the shards are fully
// independent. Arrivals are the only cross-shard interactions — the global
// tier reads cluster-wide state to route them — which yields a conservative
// lookahead bound: every shard may safely advance to (strictly below) the
// next arrival time before the router runs.
//
// Two execution modes:
//  - kLockstep: single-threaded; shards advance one event at a time under a
//    merged (time, arrival-first, shard, seq) order that reproduces the
//    serial Cluster exactly when num_shards == 1 (including the staged
//    decision-epoch flush barrier). Supports every policy.
//  - kParallel: one worker thread per shard draining windows bounded by the
//    next arrival; requires PowerPolicy::shard_parallel_safe(). When the
//    allocator is RoutingMode::kTraceOnly, arrivals are pre-routed at load
//    and the whole run is a single window with no barriers.
//
// See src/sim/README.md for the determinism contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/sim/cluster.hpp"
#include "src/sim/cluster_view.hpp"
#include "src/sim/event_queue.hpp"
#include "src/sim/metrics.hpp"
#include "src/sim/policies.hpp"
#include "src/sim/server.hpp"
#include "src/sim/types.hpp"

namespace hcrl::sim {

struct ShardedClusterConfig {
  ClusterConfig cluster;
  std::size_t num_shards = 2;

  enum class Execution {
    kLockstep,  // single-threaded merged order; any policy
    kParallel,  // worker thread per shard; needs shard_parallel_safe()
  };
  Execution execution = Execution::kLockstep;

  void validate() const;
};

class ShardedCluster final : public ClusterView {
 public:
  /// Policies are borrowed and must outlive the engine. Throws if
  /// execution == kParallel and the power policy is not shard_parallel_safe().
  ShardedCluster(const ShardedClusterConfig& cfg, AllocationPolicy& allocation,
                 PowerPolicy& power);

  /// Install deterministic fault injection (borrowed; must outlive the
  /// engine). Must be called before load_jobs. Lockstep mode only: throws
  /// std::invalid_argument in kParallel mode, where the retry stream and
  /// crash/recover events would be cross-shard interactions that break the
  /// conservative-lookahead window protocol.
  void install_faults(FaultInjector* faults);

  /// Load the trace (sorted by arrival, unique ids; may be called once).
  /// In parallel mode with a RoutingMode::kTraceOnly allocator the arrivals
  /// are routed here, in trace order, and pushed into their shards' queues.
  void load_jobs(std::vector<Job> jobs);

  /// Process one event under the merged lockstep order; returns false when
  /// every shard has drained. Throws std::logic_error in parallel mode.
  bool step();
  /// Run to completion (steps in lockstep mode, windowed threads in parallel).
  void run();
  /// Run until at least `n` jobs completed cluster-wide (lockstep only).
  void run_until_completed(std::size_t n);

  Time now() const noexcept override { return now_; }
  const std::vector<Job>& jobs() const noexcept { return jobs_; }
  std::size_t num_shards() const noexcept { return shards_.size(); }
  std::size_t shard_of(ServerId server) const { return owner_.at(server); }
  const ShardedClusterConfig& config() const noexcept { return cfg_; }

  // ClusterView aggregate queries: deterministic shard-order sums of the
  // per-shard accumulators. With one shard each sum is an identity, which is
  // what makes shards=1 bit-identical to the serial engine.
  double energy_joules(Time t) const override;
  double jobs_in_system_integral(Time t) const override;
  double reliability_integral(Time t) const override;
  std::size_t jobs_arrived() const noexcept override;
  std::size_t jobs_completed() const noexcept override;
  double mean_cpu_utilization() const override;
  std::size_t servers_on() const override;
  std::size_t servers_failed() const override;

  MetricsSnapshot snapshot() const;
  const ClusterMetrics& shard_metrics(std::size_t shard) const {
    return *shards_.at(shard).metrics;
  }
  /// Total events processed across shards (arrivals + server-local events).
  std::uint64_t events_processed() const noexcept;

 private:
  struct Shard {
    std::size_t begin = 0;  // owned server-id range [begin, end)
    std::size_t end = 0;
    EventQueue queue;
    std::unique_ptr<ClusterMetrics> metrics;
    Time clock = 0.0;  // time of the shard's last processed event
    std::uint64_t events = 0;
  };

  struct MergedTop {
    bool any = false;
    bool is_arrival = false;  // trace arrival (cursor)
    bool is_retry = false;    // fault-injected re-arrival (injector heap)
    Time time = 0.0;
    std::size_t shard = 0;
  };

  MergedTop merged_top() const;
  void deliver_arrival(const Job& job);
  /// Route jobs revoked by a crash/eviction into the retry stream,
  /// accounting on the shard that owned the killing event.
  void requeue_killed(Shard& sh, const std::vector<Job>& killed);
  void handle_shard_event(Shard& shard, const Event& e);
  void drain_shard(std::size_t shard, Time bound);
  void run_parallel();
  Time end_time() const;

  ShardedClusterConfig cfg_;
  AllocationPolicy& allocation_;
  PowerPolicy& power_policy_;
  std::vector<Shard> shards_;
  std::vector<std::size_t> owner_;  // server id -> shard index
  std::vector<Server> servers_;
  std::vector<Job> jobs_;
  FaultInjector* faults_ = nullptr;  // not owned; null = faults off
  std::size_t next_arrival_ = 0;  // coordinator cursor (unused when pre-routed)
  bool pre_routed_ = false;
  bool jobs_loaded_ = false;
  bool finished_notified_ = false;
  Time now_ = 0.0;
};

}  // namespace hcrl::sim
