// Simulation-layer telemetry ids, shared by Cluster and ShardedCluster so
// both engines report into the same metric names. The structs are magic
// statics: ids resolve once per process, and the hot helpers in
// telemetry/registry.hpp are a relaxed load + branch while telemetry is
// disabled — the engines' determinism contracts are unaffected either way.
#pragma once

#include "src/telemetry/registry.hpp"

namespace hcrl::sim {

/// Why a decision epoch was flushed (mirrors the barrier conditions in
/// Cluster::step() / ShardedCluster::step()).
enum class FlushReason { kDrain, kTimeAdvance, kArrival, kForced };

struct SimMetrics {
  telemetry::MetricId events;
  telemetry::MetricId arrivals;
  telemetry::MetricId sync_windows;
  telemetry::MetricId flush_drain;
  telemetry::MetricId flush_time_advance;
  telemetry::MetricId flush_arrival;
  telemetry::MetricId flush_forced;
  // Fault injection (see src/sim/fault/fault.hpp).
  telemetry::MetricId fault_crashes;
  telemetry::MetricId fault_evictions;
  telemetry::MetricId fault_retries;
  telemetry::MetricId fault_lost;

  static const SimMetrics& get() {
    static const SimMetrics m = [] {
      auto& reg = telemetry::global_registry();
      return SimMetrics{
          .events = reg.counter("sim.events"),
          .arrivals = reg.counter("sim.arrivals"),
          .sync_windows = reg.counter("sim.sync_windows"),
          .flush_drain = reg.counter("sim.epoch_flush.drain"),
          .flush_time_advance = reg.counter("sim.epoch_flush.time_advance"),
          .flush_arrival = reg.counter("sim.epoch_flush.arrival"),
          .flush_forced = reg.counter("sim.epoch_flush.forced"),
          .fault_crashes = reg.counter("sim.faults.crashes"),
          .fault_evictions = reg.counter("sim.faults.evictions"),
          .fault_retries = reg.counter("sim.faults.retries"),
          .fault_lost = reg.counter("sim.faults.jobs_lost"),
      };
    }();
    return m;
  }
};

inline void count_flush(FlushReason reason) {
  if (!telemetry::enabled()) return;
  const SimMetrics& m = SimMetrics::get();
  switch (reason) {
    case FlushReason::kDrain: telemetry::count(m.flush_drain); break;
    case FlushReason::kTimeAdvance: telemetry::count(m.flush_time_advance); break;
    case FlushReason::kArrival: telemetry::count(m.flush_arrival); break;
    case FlushReason::kForced: telemetry::count(m.flush_forced); break;
  }
}

}  // namespace hcrl::sim
