#include "src/sim/types.hpp"

#include <algorithm>
#include <sstream>

namespace hcrl::sim {

void ResourceVector::add(const ResourceVector& other) {
  if (other.dims() != dims()) throw std::invalid_argument("ResourceVector::add: dim mismatch");
  for (std::size_t i = 0; i < v_.size(); ++i) v_[i] += other.v_[i];
}

void ResourceVector::subtract(const ResourceVector& other) {
  if (other.dims() != dims()) throw std::invalid_argument("ResourceVector::subtract: dim mismatch");
  for (std::size_t i = 0; i < v_.size(); ++i) v_[i] -= other.v_[i];
}

bool ResourceVector::fits(const ResourceVector& demand) const {
  if (demand.dims() != dims()) throw std::invalid_argument("ResourceVector::fits: dim mismatch");
  // Small epsilon so that accumulated floating-point release/acquire noise
  // never wedges a job that exactly fills the machine.
  constexpr double kEps = 1e-9;
  for (std::size_t i = 0; i < v_.size(); ++i) {
    if (demand.v_[i] > v_[i] + kEps) return false;
  }
  return true;
}

double ResourceVector::max_component() const noexcept {
  double m = 0.0;
  for (double x : v_) m = std::max(m, x);
  return m;
}

void ResourceVector::clamp(double lo, double hi) noexcept {
  for (double& x : v_) x = std::clamp(x, lo, hi);
}

std::string ResourceVector::to_string() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < v_.size(); ++i) {
    if (i) os << ", ";
    os << v_[i];
  }
  os << "]";
  return os.str();
}

void Job::validate(std::size_t expected_dims) const {
  if (duration <= 0.0) throw std::invalid_argument("Job: duration must be > 0");
  if (arrival < 0.0) throw std::invalid_argument("Job: arrival must be >= 0");
  if (demand.dims() != expected_dims) throw std::invalid_argument("Job: wrong demand dims");
  for (std::size_t i = 0; i < demand.dims(); ++i) {
    if (demand[i] < 0.0 || demand[i] > 1.0) {
      throw std::invalid_argument("Job: demand component out of [0,1]");
    }
  }
}

}  // namespace hcrl::sim
