// Core value types of the cluster simulator.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace hcrl::sim {

/// Simulation time in seconds (continuous).
using Time = double;
using JobId = std::int64_t;
using ServerId = std::size_t;

constexpr Time kSecondsPerHour = 3600.0;
constexpr Time kSecondsPerDay = 24.0 * kSecondsPerHour;
constexpr Time kSecondsPerWeek = 7.0 * kSecondsPerDay;

/// Per-resource utilization/request vector, normalized so that one server
/// offers 1.0 of each resource (CPU, memory, disk, ... — dimension D).
class ResourceVector {
 public:
  ResourceVector() = default;
  explicit ResourceVector(std::size_t dims, double fill = 0.0) : v_(dims, fill) {}
  ResourceVector(std::initializer_list<double> init) : v_(init) {}

  std::size_t dims() const noexcept { return v_.size(); }
  double operator[](std::size_t i) const { return v_.at(i); }
  double& operator[](std::size_t i) { return v_.at(i); }

  void add(const ResourceVector& other);
  void subtract(const ResourceVector& other);
  /// True when every component of `demand` fits within `*this` capacity.
  bool fits(const ResourceVector& demand) const;
  /// Largest component value (the bottleneck dimension).
  double max_component() const noexcept;
  /// Clamp all components to [lo, hi].
  void clamp(double lo, double hi) noexcept;

  const std::vector<double>& values() const noexcept { return v_; }
  std::string to_string() const;

 private:
  std::vector<double> v_;
};

/// A job / VM request: the unit of work dispatched by the broker.
struct Job {
  JobId id = 0;
  Time arrival = 0.0;      // cluster arrival time (rewritten on retry delivery)
  Time duration = 0.0;     // execution time once started (> 0)
  ResourceVector demand;   // normalized per-resource request, each in (0, 1]
  /// Original submission time; < 0 means "never retried" (== arrival).
  /// Fault-injected retries set this so latency/SLA accounting measures
  /// from first submission, not from the last re-delivery.
  Time submitted = -1.0;

  Time submit_time() const noexcept { return submitted < 0.0 ? arrival : submitted; }

  void validate(std::size_t expected_dims) const;
};

/// Completion record kept by the metrics collector.
struct JobRecord {
  JobId id = 0;
  ServerId server = 0;
  Time arrival = 0.0;
  Time start = 0.0;
  Time finish = 0.0;

  Time latency() const noexcept { return finish - arrival; }
  Time wait() const noexcept { return start - arrival; }
};

}  // namespace hcrl::sim
