#include "src/telemetry/export.hpp"

#include <fstream>
#include <stdexcept>

#include "src/common/log.hpp"
#include "src/telemetry/json_util.hpp"

namespace hcrl::telemetry {

std::string build_git_describe() {
#ifdef HCRL_GIT_DESCRIBE
  return HCRL_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

namespace {

std::string manifest_body(const RunManifest& m) {
  std::string out;
  out += "{";
  out += R"("tool":")" + json_escape(m.tool) + R"(",)";
  out += R"("scenario":")" + json_escape(m.scenario) + R"(",)";
  out += R"("precision":")" + json_escape(m.precision) + R"(",)";
  out += R"("shards":)" + std::to_string(m.shards) + ",";
  out += R"("gemm_threads":)" + std::to_string(m.gemm_threads) + ",";
  out += R"("git_describe":")" + json_escape(build_git_describe()) + R"(",)";
  out += R"("wall_seconds":)" + json_number(m.wall_seconds);
  for (const auto& [key, value] : m.extra) {
    out += R"(,")" + json_escape(key) + R"(":")" + json_escape(value) + R"(")";
  }
  out += "}";
  return out;
}

std::string metric_body(const MetricValue& m) {
  std::string out = R"({"kind":")" + to_string(m.kind) + R"(","count":)" +
                    std::to_string(m.count);
  switch (m.kind) {
    case MetricKind::kCounter:
    case MetricKind::kGauge:
      out += R"(,"value":)" + json_number(m.value);
      break;
    case MetricKind::kHistogram: {
      out += R"(,"sum":)" + json_number(m.value);
      out += R"(,"p50":)" + json_number(m.quantile(0.50));
      out += R"(,"p95":)" + json_number(m.quantile(0.95));
      out += R"(,"p99":)" + json_number(m.quantile(0.99));
      out += R"(,"bounds":[)";
      for (std::size_t i = 0; i < m.bounds.size(); ++i) {
        if (i > 0) out += ",";
        out += json_number(m.bounds[i]);
      }
      out += R"(],"bins":[)";
      for (std::size_t i = 0; i < m.bins.size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(m.bins[i]);
      }
      out += "]";
      break;
    }
  }
  out += "}";
  return out;
}

}  // namespace

void write_manifest_json(std::ostream& os, const RunManifest& manifest) {
  os << R"({"schema":"hcrl-manifest-v1","manifest":)" << manifest_body(manifest) << "}\n";
}

void write_metrics_json(std::ostream& os, const RegistrySnapshot& snapshot,
                        const RunManifest& manifest) {
  os << R"({"schema":"hcrl-metrics-v1",)" << "\n";
  os << R"("manifest":)" << manifest_body(manifest) << ",\n";
  os << R"("metrics":{)";
  bool first = true;
  for (const auto& m : snapshot.metrics) {
    if (!first) os << ",";
    first = false;
    os << "\n" << R"(")" << json_escape(m.name) << R"(":)" << metric_body(m);
  }
  os << "\n}}\n";
}

std::string manifest_path_for(const std::string& metrics_path) {
  const std::string suffix = ".json";
  if (metrics_path.size() > suffix.size() &&
      metrics_path.compare(metrics_path.size() - suffix.size(), suffix.size(), suffix) == 0) {
    return metrics_path.substr(0, metrics_path.size() - suffix.size()) + ".manifest.json";
  }
  return metrics_path + ".manifest.json";
}

CliSession::CliSession(std::string metrics_path, std::string trace_path)
    : metrics_path_(std::move(metrics_path)), trace_path_(std::move(trace_path)) {
  active_ = !metrics_path_.empty() || !trace_path_.empty();
  if (!active_) return;
  global_registry().reset();
  set_enabled(true);
  if (!trace_path_.empty()) collector_.install();
}

CliSession::~CliSession() {
  if (!active_) return;
  collector_.uninstall();
  set_enabled(false);
}

void CliSession::finish(const RunManifest& manifest) {
  if (!active_ || finished_) return;
  finished_ = true;
  collector_.uninstall();
  auto open = [](const std::string& path) {
    std::ofstream os(path);
    if (!os) throw std::runtime_error("telemetry: cannot write " + path);
    return os;
  };
  if (!metrics_path_.empty()) {
    const RegistrySnapshot snap = global_registry().snapshot();
    {
      auto os = open(metrics_path_);
      write_metrics_json(os, snap, manifest);
    }
    common::log_info() << "telemetry: wrote metrics snapshot (" << snap.metrics.size()
                       << " metrics) to " << metrics_path_;
    const std::string manifest_path = manifest_path_for(metrics_path_);
    {
      auto os = open(manifest_path);
      write_manifest_json(os, manifest);
    }
    common::log_info() << "telemetry: wrote run manifest to " << manifest_path;
  }
  if (!trace_path_.empty()) {
    auto os = open(trace_path_);
    collector_.write_json(os);
    common::log_info() << "telemetry: wrote Chrome trace (" << collector_.num_events()
                       << " events) to " << trace_path_;
  }
}

}  // namespace hcrl::telemetry
