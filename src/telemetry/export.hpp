// Snapshot + manifest exporters and the CLI session glue that backs the
// `--metrics-json` / `--chrome-trace` flags on run_experiment and
// tournament.
//
// Snapshot schema (`hcrl-metrics-v1`): a single JSON object with the run
// manifest embedded and one entry per metric, keyed by name —
//   counter:   {"kind":"counter","count":N,"value":N}
//   gauge:     {"kind":"gauge","count":N,"value":V}
//   histogram: {"kind":"histogram","count":N,"sum":S,
//               "p50":…,"p95":…,"p99":…,"bounds":[…],"bins":[…]}
// A standalone run-manifest JSON (config, precision, shards, git describe,
// wall-clock) is additionally written next to every metrics snapshot.
#pragma once

#include <map>
#include <ostream>
#include <string>

#include "src/telemetry/registry.hpp"
#include "src/telemetry/trace.hpp"

namespace hcrl::telemetry {

/// What produced a snapshot: enough to reproduce the run.
struct RunManifest {
  std::string tool;      // e.g. "run_experiment", "tournament"
  std::string scenario;  // scenario name / grid description
  std::string precision; // "f32" / "f64" / "mixed"
  int shards = 0;        // 0 = serial engine
  int gemm_threads = 1;
  double wall_seconds = 0.0;
  /// Extra tool-specific keys (sorted on output).
  std::map<std::string, std::string> extra;
};

/// `git describe --always --dirty` captured at configure time
/// (HCRL_GIT_DESCRIBE compile definition); "unknown" when unavailable.
std::string build_git_describe();

void write_manifest_json(std::ostream& os, const RunManifest& manifest);
void write_metrics_json(std::ostream& os, const RegistrySnapshot& snapshot,
                        const RunManifest& manifest);

/// Sibling path for the standalone manifest: `runs/m.json` ->
/// `runs/m.manifest.json` (appends when the path has no .json suffix).
std::string manifest_path_for(const std::string& metrics_path);

/// RAII wiring for a CLI run: when either path is non-empty, resets the
/// global registry, enables telemetry, and (for a trace path) installs a
/// TraceCollector. finish() writes every requested artifact — metrics
/// snapshot + sibling manifest, Chrome trace — after the run. The
/// destructor restores the disabled state.
class CliSession {
 public:
  CliSession(std::string metrics_path, std::string trace_path);
  ~CliSession();
  CliSession(const CliSession&) = delete;
  CliSession& operator=(const CliSession&) = delete;

  bool active() const noexcept { return active_; }
  /// Write all requested artifacts; logs each emitted path. Call once,
  /// after the instrumented workload has quiesced.
  void finish(const RunManifest& manifest);

 private:
  std::string metrics_path_;
  std::string trace_path_;
  bool active_ = false;
  bool finished_ = false;
  TraceCollector collector_;
};

}  // namespace hcrl::telemetry
