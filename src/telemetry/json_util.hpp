// Minimal JSON emission helpers shared by the telemetry exporters.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>

namespace hcrl::telemetry {

/// Escape a string for embedding inside a JSON string literal.
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Shortest round-trip representation of a double that is still valid JSON
/// (no bare NaN/Inf — those become null).
inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace hcrl::telemetry
