#include "src/telemetry/profiler.hpp"

#include "src/telemetry/trace.hpp"

namespace hcrl::telemetry {

const std::vector<double>& duration_bounds() {
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    for (double decade = 1e-6; decade < 1e3; decade *= 10.0) {
      b.push_back(decade);
      b.push_back(2.0 * decade);
      b.push_back(5.0 * decade);
    }
    b.resize(b.size() - 2);  // stop at 1e2 s
    return b;
  }();
  return bounds;
}

Span::~Span() {
  if (!active_) return;
  const auto end = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(end - start_).count();
  global_registry().observe(current_shard(), def_->hist, seconds);
  if (TraceCollector* collector = TraceCollector::current()) {
    collector->record(def_->name, label_, start_, end);
  }
}

}  // namespace hcrl::telemetry
