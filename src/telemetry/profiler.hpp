// Scoped-timer phase profiler. A Span times a region with RAII and, on
// destruction, (a) observes the duration into a registry histogram
// `<name>.seconds` and (b) appends a timeline event to the installed
// TraceCollector, if any. Everything no-ops when telemetry is disabled —
// the constructor is a relaxed load + branch.
//
//   static const telemetry::SpanDef kFlushSpan("core.decision.flush");
//   { telemetry::Span span(kFlushSpan); flush(); }
//
// SpanDef registers its histogram once (function-local static at the
// instrumentation site); Span itself is cheap enough for per-phase use but
// is NOT meant for per-event inner loops — use counters there.
#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "src/telemetry/registry.hpp"

namespace hcrl::telemetry {

/// Log-spaced duration histogram boundaries in seconds, 1 µs .. 100 s
/// (three per decade). Shared by every SpanDef so phase histograms merge
/// and compare uniformly.
const std::vector<double>& duration_bounds();

/// One named phase; registers `<name>.seconds` in the global registry.
struct SpanDef {
  explicit SpanDef(const char* span_name)
      : name(span_name), hist(global_registry().histogram(std::string(span_name) + ".seconds",
                                                          duration_bounds())) {}
  const char* name;
  MetricId hist;
};

class Span {
 public:
  explicit Span(const SpanDef& def) noexcept : Span(def, std::string()) {}
  Span(const SpanDef& def, std::string trace_label) noexcept
      : def_(&def), label_(std::move(trace_label)), active_(enabled()) {
    if (active_) start_ = std::chrono::steady_clock::now();
  }
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const SpanDef* def_;
  std::string label_;
  std::chrono::steady_clock::time_point start_{};
  bool active_;
};

}  // namespace hcrl::telemetry
