#include "src/telemetry/registry.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/common/stats.hpp"

namespace hcrl::telemetry {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

std::string to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

double MetricValue::quantile(double q) const {
  if (kind != MetricKind::kHistogram || count == 0) return 0.0;
  return common::quantile_from_bins(bins, bounds, q);
}

const MetricValue* RegistrySnapshot::find(const std::string& name) const noexcept {
  for (const auto& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

MetricRegistry::~MetricRegistry() {
  for (auto& cell : slabs_) {
    delete cell.load(std::memory_order_acquire);
  }
}

MetricId MetricRegistry::counter(const std::string& name) {
  return define(name, MetricKind::kCounter, {});
}

MetricId MetricRegistry::gauge(const std::string& name) {
  return define(name, MetricKind::kGauge, {});
}

MetricId MetricRegistry::histogram(const std::string& name, std::vector<double> bounds) {
  if (bounds.empty()) throw std::logic_error("histogram '" + name + "': empty bounds");
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (!std::isfinite(bounds[i]) || (i > 0 && !(bounds[i] > bounds[i - 1]))) {
      throw std::logic_error("histogram '" + name + "': bounds must be finite and ascending");
    }
  }
  return define(name, MetricKind::kHistogram, std::move(bounds));
}

MetricId MetricRegistry::define(const std::string& name, MetricKind kind,
                                std::vector<double> bounds) {
  if (name.empty()) throw std::logic_error("metric name must be non-empty");
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < num_defs_; ++i) {
    if (defs_[i].name != name) continue;
    if (defs_[i].kind != kind) {
      throw std::logic_error("metric '" + name + "' redefined as " + to_string(kind) +
                             " (was " + to_string(defs_[i].kind) + ")");
    }
    if (kind == MetricKind::kHistogram && defs_[i].bounds != bounds) {
      throw std::logic_error("histogram '" + name + "' redefined with different bounds");
    }
    return static_cast<MetricId>(i);
  }
  if (num_defs_ >= kMaxMetrics) throw std::logic_error("MetricRegistry: kMaxMetrics exhausted");
  Def& d = defs_[num_defs_];
  d.name = name;
  d.kind = kind;
  if (kind == MetricKind::kHistogram) {
    const auto nbins = static_cast<std::uint32_t>(bounds.size() + 1);
    if (next_bin_ + nbins > kMaxBins) throw std::logic_error("MetricRegistry: kMaxBins exhausted");
    d.bin_offset = next_bin_;
    next_bin_ += nbins;
    d.bounds = std::move(bounds);
  }
  return static_cast<MetricId>(num_defs_++);
}

MetricRegistry::Slab& MetricRegistry::create_slab(std::size_t shard) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  Slab* s = slabs_[shard].load(std::memory_order_acquire);
  if (s == nullptr) {
    s = new Slab();
    slabs_[shard].store(s, std::memory_order_release);
  }
  return *s;
}

void MetricRegistry::observe(std::size_t shard, MetricId id, double x) noexcept {
  Slab& s = slab(shard);
  // Defs are append-only; the id was handed out under the mutex, so the Def
  // it indexes is immutable by now. Read without locking.
  const Def& d = defs_[id];
  const auto bin = static_cast<std::size_t>(
      std::upper_bound(d.bounds.begin(), d.bounds.end(), x) - d.bounds.begin());
  s.bins[d.bin_offset + bin].fetch_add(1, std::memory_order_relaxed);
  s.count[id].fetch_add(1, std::memory_order_relaxed);
  // CAS-accumulate the double sum in the fbits cell.
  std::uint64_t old_bits = s.fbits[id].load(std::memory_order_relaxed);
  while (true) {
    const double updated = std::bit_cast<double>(old_bits) + x;
    if (s.fbits[id].compare_exchange_weak(old_bits, std::bit_cast<std::uint64_t>(updated),
                                          std::memory_order_relaxed)) {
      break;
    }
  }
}

RegistrySnapshot MetricRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot snap;
  snap.metrics.reserve(num_defs_);
  for (std::size_t i = 0; i < num_defs_; ++i) {
    const Def& d = defs_[i];
    MetricValue v;
    v.name = d.name;
    v.kind = d.kind;
    v.bounds = d.bounds;
    if (d.kind == MetricKind::kHistogram) v.bins.assign(d.bounds.size() + 1, 0);
    double gauge_max = -std::numeric_limits<double>::infinity();
    for (std::size_t shard = 0; shard < kMaxShards; ++shard) {
      const Slab* s = slabs_[shard].load(std::memory_order_acquire);
      if (s == nullptr) continue;
      const std::uint64_t c = s->count[i].load(std::memory_order_relaxed);
      v.count += c;
      switch (d.kind) {
        case MetricKind::kCounter:
          break;
        case MetricKind::kGauge:
          if (c > 0) {
            gauge_max = std::max(gauge_max,
                                 std::bit_cast<double>(s->fbits[i].load(std::memory_order_relaxed)));
          }
          break;
        case MetricKind::kHistogram:
          v.value += std::bit_cast<double>(s->fbits[i].load(std::memory_order_relaxed));
          for (std::size_t b = 0; b < v.bins.size(); ++b) {
            v.bins[b] += s->bins[d.bin_offset + b].load(std::memory_order_relaxed);
          }
          break;
      }
    }
    if (d.kind == MetricKind::kCounter) v.value = static_cast<double>(v.count);
    if (d.kind == MetricKind::kGauge) v.value = v.count > 0 ? gauge_max : 0.0;
    snap.metrics.push_back(std::move(v));
  }
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const MetricValue& a, const MetricValue& b) { return a.name < b.name; });
  return snap;
}

void MetricRegistry::reset() noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& cell : slabs_) {
    Slab* s = cell.load(std::memory_order_acquire);
    if (s == nullptr) continue;
    for (auto& a : s->count) a.store(0, std::memory_order_relaxed);
    for (auto& a : s->fbits) a.store(0, std::memory_order_relaxed);
    for (auto& a : s->bins) a.store(0, std::memory_order_relaxed);
  }
}

std::size_t MetricRegistry::num_metrics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return num_defs_;
}

void set_enabled(bool on) noexcept { detail::g_enabled.store(on, std::memory_order_relaxed); }

MetricRegistry& global_registry() {
  // Leaked on purpose (never destroyed before late worker threads exit);
  // the static pointer keeps it reachable so LSan stays quiet.
  static MetricRegistry* const reg = new MetricRegistry();
  return *reg;
}

namespace {
thread_local std::size_t t_shard = 0;
}  // namespace

std::size_t current_shard() noexcept { return t_shard; }

ShardScope::ShardScope(std::size_t shard) noexcept : prev_(t_shard) {
  t_shard = shard % MetricRegistry::kMaxShards;
}

ShardScope::~ShardScope() { t_shard = prev_; }

}  // namespace hcrl::telemetry
