// Low-overhead metric registry: named counters, gauges and fixed-boundary
// histograms with shard-local accumulation and a deterministic merge.
//
// Design constraints (the tentpole contract, pinned by telemetry_test):
//  - Telemetry NEVER perturbs simulation results. Instrumentation only reads
//    counts and clocks — it feeds nothing back — so runs with telemetry on
//    are bit-identical to runs with it off, at both precisions.
//  - Near-zero cost when disabled: every hot helper is a relaxed atomic
//    load + branch (BM_TelemetryCounter commits the number to
//    BENCH_micro.json).
//  - Shard-local accumulation: writers bind a shard slab (ShardScope) and
//    increment plain relaxed atomics in it, so concurrent writers — runner
//    workers, sharded-cluster shard threads — never contend on one cache
//    line. Sharing a slab is still safe (cells are atomic), just slower.
//  - Deterministic merge: snapshot() folds the shard slabs in shard-index
//    order. Counter values and histogram bin counts are integer sums, so the
//    merged snapshot is invariant to how increments were distributed across
//    shards (tested across shard counts); gauges merge by maximum.
//
// Metric definitions are process-lifetime and idempotent by name: any module
// may `global_registry().counter("sim.events")` from a function-local static
// and every call site resolves to the same id. Capacities are fixed
// (kMaxMetrics / kMaxShards / kMaxBins) so slabs never reallocate under
// concurrent writers.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hcrl::telemetry {

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Dense metric index into every shard slab; stable for process lifetime.
using MetricId = std::uint32_t;

std::string to_string(MetricKind kind);

/// One merged metric in a RegistrySnapshot.
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  /// Counter: the value. Histogram: total samples. Gauge: times set.
  std::uint64_t count = 0;
  /// Gauge: merged (maximum) value. Histogram: sum of samples (folded in
  /// shard order). Counters: equal to `count`.
  double value = 0.0;
  /// Histogram only: ascending boundaries and bounds.size() + 1 bin counts
  /// (bin i holds samples with x < bounds[i] and x >= bounds[i-1]; the last
  /// bin is the >= bounds.back() overflow).
  std::vector<double> bounds;
  std::vector<std::uint64_t> bins;

  /// Histogram quantile via common::quantile_from_bins; 0 when empty.
  double quantile(double q) const;
};

struct RegistrySnapshot {
  /// Sorted by name (the export order of the snapshot schema).
  std::vector<MetricValue> metrics;

  /// Lookup by exact name; nullptr when absent.
  const MetricValue* find(const std::string& name) const noexcept;
};

class MetricRegistry {
 public:
  static constexpr std::size_t kMaxMetrics = 256;
  static constexpr std::size_t kMaxShards = 128;
  static constexpr std::size_t kMaxBins = 4096;  // per-shard histogram bin pool

  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;
  ~MetricRegistry();

  /// Define (or look up) a metric. Idempotent by name; a kind (or, for
  /// histograms, boundary) mismatch with an existing name throws
  /// std::logic_error, as does exhausting a capacity.
  MetricId counter(const std::string& name);
  MetricId gauge(const std::string& name);
  /// `bounds` must be non-empty, finite and strictly ascending.
  MetricId histogram(const std::string& name, std::vector<double> bounds);

  /// Next writer shard index, round-robin over [0, kMaxShards).
  std::size_t acquire_shard() noexcept {
    return next_shard_.fetch_add(1, std::memory_order_relaxed) % kMaxShards;
  }

  // -- hot-path writes (relaxed atomics on the shard's slab) -----------------

  void add(std::size_t shard, MetricId id, std::uint64_t n = 1) noexcept {
    slab(shard).count[id].fetch_add(n, std::memory_order_relaxed);
  }

  /// Record a gauge value: last set wins within a shard; shards merge by max.
  void set_gauge(std::size_t shard, MetricId id, double v) noexcept {
    Slab& s = slab(shard);
    s.fbits[id].store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
    s.count[id].fetch_add(1, std::memory_order_relaxed);
  }

  void observe(std::size_t shard, MetricId id, double x) noexcept;

  // -- cold-path queries -----------------------------------------------------

  /// Deterministic merge of every shard slab, metrics sorted by name.
  RegistrySnapshot snapshot() const;
  /// Zero every slab cell; definitions are kept (bench/test isolation).
  void reset() noexcept;
  std::size_t num_metrics() const;

 private:
  struct Slab {
    std::array<std::atomic<std::uint64_t>, kMaxMetrics> count{};
    /// Gauge value bits / histogram sum bits (CAS-accumulated).
    std::array<std::atomic<std::uint64_t>, kMaxMetrics> fbits{};
    std::array<std::atomic<std::uint64_t>, kMaxBins> bins{};
  };
  struct Def {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    std::uint32_t bin_offset = 0;  // histogram slice of Slab::bins
    std::vector<double> bounds;
  };

  MetricId define(const std::string& name, MetricKind kind, std::vector<double> bounds);

  Slab& slab(std::size_t shard) noexcept {
    Slab* s = slabs_[shard % kMaxShards].load(std::memory_order_acquire);
    return s != nullptr ? *s : create_slab(shard % kMaxShards);
  }
  Slab& create_slab(std::size_t shard) noexcept;

  mutable std::mutex mutex_;  // guards definitions and slab creation
  std::array<Def, kMaxMetrics> defs_;
  std::size_t num_defs_ = 0;
  std::uint32_t next_bin_ = 0;
  std::array<std::atomic<Slab*>, kMaxShards> slabs_{};
  std::atomic<std::size_t> next_shard_{0};
};

// -- process-global registry + enable switch ---------------------------------

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// Master switch for all collection (metrics and trace spans). Off by
/// default; the hot helpers below are a relaxed load + branch while off.
inline bool enabled() noexcept { return detail::g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) noexcept;

/// The process-wide registry every built-in instrumentation site writes to.
/// (Instantiating private MetricRegistry objects is still supported — tests
/// do — but the convenience helpers below always target this one.)
MetricRegistry& global_registry();

/// The calling thread's current shard slab index (default 0).
std::size_t current_shard() noexcept;

/// Scoped binding of the calling thread to a registry shard. Writers that
/// may run concurrently (runner workers, shard threads) bind distinct shards
/// so their increments never share cache lines.
class ShardScope {
 public:
  explicit ShardScope(std::size_t shard) noexcept;
  ~ShardScope();
  ShardScope(const ShardScope&) = delete;
  ShardScope& operator=(const ShardScope&) = delete;

 private:
  std::size_t prev_;
};

// -- hot helpers (no-ops while disabled) -------------------------------------

inline void count(MetricId id, std::uint64_t n = 1) noexcept {
  if (!enabled()) return;
  global_registry().add(current_shard(), id, n);
}

inline void observe(MetricId id, double x) noexcept {
  if (!enabled()) return;
  global_registry().observe(current_shard(), id, x);
}

inline void gauge_set(MetricId id, double v) noexcept {
  if (!enabled()) return;
  global_registry().set_gauge(current_shard(), id, v);
}

}  // namespace hcrl::telemetry
