#include "src/telemetry/trace.hpp"

#include <atomic>
#include <stdexcept>

#include "src/common/log.hpp"
#include "src/telemetry/json_util.hpp"

namespace hcrl::telemetry {

namespace {

std::atomic<TraceCollector*> g_collector{nullptr};
std::atomic<std::uint64_t> g_next_collector_id{1};

// The calling thread's registration with a specific collector. A collector
// id mismatch (collector replaced or destroyed) invalidates the pointer.
struct ThreadSlot {
  std::uint64_t collector_id = 0;
  void* buffer = nullptr;
};
thread_local ThreadSlot t_slot;
thread_local std::string t_thread_name;

}  // namespace

TraceCollector::TraceCollector()
    : id_(g_next_collector_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

TraceCollector::~TraceCollector() { uninstall(); }

void TraceCollector::install() {
  TraceCollector* expected = nullptr;
  if (!g_collector.compare_exchange_strong(expected, this, std::memory_order_release,
                                           std::memory_order_relaxed)) {
    if (expected == this) return;
    throw std::logic_error("TraceCollector: another collector is already installed");
  }
}

void TraceCollector::uninstall() noexcept {
  TraceCollector* expected = this;
  g_collector.compare_exchange_strong(expected, nullptr, std::memory_order_release,
                                      std::memory_order_relaxed);
}

bool TraceCollector::installed() const noexcept {
  return g_collector.load(std::memory_order_relaxed) == this;
}

TraceCollector* TraceCollector::current() noexcept {
  return g_collector.load(std::memory_order_acquire);
}

TraceCollector::ThreadBuffer& TraceCollector::buffer_for_this_thread() {
  if (t_slot.collector_id == id_ && t_slot.buffer != nullptr) {
    return *static_cast<ThreadBuffer*>(t_slot.buffer);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  buffers_.push_back(std::make_unique<ThreadBuffer>());
  ThreadBuffer& buf = *buffers_.back();
  buf.thread_name =
      t_thread_name.empty() ? "thread-" + std::to_string(buffers_.size() - 1) : t_thread_name;
  t_slot.collector_id = id_;
  t_slot.buffer = &buf;
  return buf;
}

void TraceCollector::record(const char* name, const std::string& label,
                            std::chrono::steady_clock::time_point start,
                            std::chrono::steady_clock::time_point end) {
  using std::chrono::duration_cast;
  using std::chrono::microseconds;
  ThreadBuffer& buf = buffer_for_this_thread();
  Event ev;
  ev.name = name;
  ev.label = label;
  ev.ts_us = duration_cast<microseconds>(start - epoch_).count();
  ev.dur_us = duration_cast<microseconds>(end - start).count();
  buf.events.push_back(std::move(ev));
}

void TraceCollector::name_thread(const std::string& name) {
  buffer_for_this_thread().thread_name = name;
}

void TraceCollector::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  os << "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& obj) {
    if (!first) os << ",";
    first = false;
    os << "\n" << obj;
  };
  emit(R"({"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"hcrl"}})");
  for (std::size_t tid = 0; tid < buffers_.size(); ++tid) {
    emit(R"({"name":"thread_name","ph":"M","pid":0,"tid":)" + std::to_string(tid) +
         R"(,"args":{"name":")" + json_escape(buffers_[tid]->thread_name) + R"("}})");
  }
  for (std::size_t tid = 0; tid < buffers_.size(); ++tid) {
    for (const Event& ev : buffers_[tid]->events) {
      std::string obj = R"({"name":")" + json_escape(ev.name) +
                        R"(","cat":"hcrl","ph":"X","pid":0,"tid":)" + std::to_string(tid) +
                        R"(,"ts":)" + std::to_string(ev.ts_us) + R"(,"dur":)" +
                        std::to_string(ev.dur_us);
      if (!ev.label.empty()) obj += R"(,"args":{"label":")" + json_escape(ev.label) + R"("})";
      obj += "}";
      emit(obj);
    }
  }
  os << "\n]}\n";
}

std::size_t TraceCollector::num_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& buf : buffers_) n += buf->events.size();
  return n;
}

void set_thread_name(const std::string& name) {
  t_thread_name = name;
  common::set_log_thread_tag(name);
  if (TraceCollector* c = TraceCollector::current()) c->name_thread(name);
}

}  // namespace hcrl::telemetry
