// Chrome trace-event collector: per-thread timeline tracks for RAII spans,
// exported as chrome://tracing / Perfetto-compatible JSON.
//
// Usage: construct a TraceCollector, install() it (one at a time,
// process-wide), run the instrumented workload, uninstall(), then
// write_json(). Spans (src/telemetry/profiler.hpp) record into the installed
// collector automatically; each recording thread gets its own track (tid),
// named via set_thread_name().
//
// Thread safety: track registration takes the collector mutex once per
// thread; subsequent appends are single-writer on the thread's own buffer.
// Buffers carry the owning collector's unique id, so a stale thread_local
// pointer from a destroyed collector (persistent pool workers outlive
// collectors) is detected and re-registered instead of dereferenced.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace hcrl::telemetry {

class TraceCollector {
 public:
  TraceCollector();
  ~TraceCollector();
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Make this the process-wide collector spans record into. Throws
  /// std::logic_error if another collector is currently installed.
  void install();
  /// Stop collecting (no-op if not installed). Spans that already loaded
  /// the collector pointer may still append; call this only when the
  /// instrumented workload has quiesced (runners joined).
  void uninstall() noexcept;
  bool installed() const noexcept;

  /// The installed collector, or nullptr. Hot path: one relaxed load.
  static TraceCollector* current() noexcept;

  /// Append one complete ("ph":"X") event on the calling thread's track.
  /// Called by Span's destructor; `label` (optional) lands in args.label.
  void record(const char* name, const std::string& label,
              std::chrono::steady_clock::time_point start,
              std::chrono::steady_clock::time_point end);

  /// Name the calling thread's track in this collector (idempotent).
  void name_thread(const std::string& name);

  /// Emit `{"traceEvents":[...]}` — metadata (process_name/thread_name)
  /// events first, then every span event. Tracks are numbered in thread
  /// registration order, so output is deterministic for a serial run.
  void write_json(std::ostream& os) const;

  std::size_t num_events() const;

 private:
  struct Event {
    const char* name;
    std::string label;
    std::int64_t ts_us;
    std::int64_t dur_us;
  };
  struct ThreadBuffer {
    std::string thread_name;
    std::vector<Event> events;
  };

  ThreadBuffer& buffer_for_this_thread();

  std::uint64_t id_;  // process-unique, for stale-TLS detection
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// Set the calling thread's human-readable name for telemetry: names the
/// thread's track in the installed collector (if any) and sets the logger
/// thread tag (common::set_log_thread_tag) to match.
void set_thread_name(const std::string& name);

}  // namespace hcrl::telemetry
