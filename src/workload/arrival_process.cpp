#include "src/workload/arrival_process.hpp"

// Before any standard headers: on an old toolchain <numbers> may not even
// exist, and the include error would otherwise mask this actionable message.
#if __cplusplus < 202002L
#error "hcrl requires C++20 (std::numbers). Configure with -DCMAKE_CXX_STANDARD=20 or use the repo's CMakeLists.txt, which pins cxx_std_20."
#endif

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace hcrl::workload {

void ArrivalProcessOptions::validate() const {
  if (base_rate_hz <= 0.0) throw std::invalid_argument("ArrivalProcess: base_rate_hz must be > 0");
  if (diurnal_amplitude < 0.0 || diurnal_amplitude >= 1.0) {
    throw std::invalid_argument("ArrivalProcess: diurnal_amplitude out of [0,1)");
  }
  if (diurnal_period_s <= 0.0) throw std::invalid_argument("ArrivalProcess: bad period");
  if (burst_multiplier < 1.0) throw std::invalid_argument("ArrivalProcess: burst_multiplier < 1");
  if (mean_burst_s <= 0.0 || mean_calm_s <= 0.0) {
    throw std::invalid_argument("ArrivalProcess: burst/calm means must be > 0");
  }
}

double ArrivalProcessOptions::effective_rate() const {
  const double duty = mean_burst_s / (mean_burst_s + mean_calm_s);
  return base_rate_hz * (1.0 + duty * (burst_multiplier - 1.0));
}

ArrivalProcess::ArrivalProcess(const ArrivalProcessOptions& opts, common::Rng rng)
    : opts_(opts), rng_(rng) {
  opts_.validate();
  lambda_max_ = opts_.base_rate_hz * (1.0 + opts_.diurnal_amplitude) * opts_.burst_multiplier;
  next_switch_ = rng_.exponential(1.0 / opts_.mean_calm_s);
}

void ArrivalProcess::advance_burst_state(double t) {
  while (t >= next_switch_) {
    bursting_ = !bursting_;
    const double mean = bursting_ ? opts_.mean_burst_s : opts_.mean_calm_s;
    next_switch_ += rng_.exponential(1.0 / mean);
  }
}

double ArrivalProcess::rate(double t) const {
  const double diurnal =
      1.0 + opts_.diurnal_amplitude *
                std::sin(2.0 * std::numbers::pi * t / opts_.diurnal_period_s + opts_.diurnal_phase);
  return opts_.base_rate_hz * diurnal * (bursting_ ? opts_.burst_multiplier : 1.0);
}

double ArrivalProcess::next_after(double t) {
  // Lewis-Shedler thinning against the constant envelope lambda_max_.
  for (;;) {
    t += rng_.exponential(lambda_max_);
    advance_burst_state(t);
    if (rng_.uniform() * lambda_max_ <= rate(t)) return t;
  }
}

std::vector<double> ArrivalProcess::generate(double horizon) {
  std::vector<double> out;
  double t = 0.0;
  for (;;) {
    t = next_after(t);
    if (t >= horizon) break;
    out.push_back(t);
  }
  return out;
}

}  // namespace hcrl::workload
