// Non-stationary arrival process for synthetic cluster traces.
//
// Google cluster arrivals are neither stationary nor Poisson: rates follow a
// diurnal cycle and exhibit bursts. We model a doubly-modulated Poisson
// process:
//   lambda(t) = base * (1 + diurnal_amplitude * sin(2 pi t / period + phase))
//               * burst_factor(t)
// where burst_factor switches between 1 and `burst_multiplier` following a
// two-state continuous-time Markov chain (an MMPP). Samples are drawn by
// Lewis-Shedler thinning, which is exact for bounded lambda(t).
#pragma once

#include <vector>

#include "src/common/rng.hpp"
#include "src/sim/types.hpp"

namespace hcrl::workload {

struct ArrivalProcessOptions {
  double base_rate_hz = 0.15;       // long-run average arrivals per second
  double diurnal_amplitude = 0.4;   // 0 disables the daily cycle; must be < 1
  double diurnal_period_s = hcrl::sim::kSecondsPerDay;
  double diurnal_phase = 0.0;
  double burst_multiplier = 2.5;    // rate multiplier while bursting; >= 1
  double mean_burst_s = 600.0;      // expected burst duration
  double mean_calm_s = 5400.0;      // expected gap between bursts

  void validate() const;
  /// Long-run expected rate including burst duty cycle.
  double effective_rate() const;
};

class ArrivalProcess {
 public:
  ArrivalProcess(const ArrivalProcessOptions& opts, common::Rng rng);

  /// Instantaneous rate at time t given the current burst state.
  double rate(double t) const;
  /// Next arrival strictly after `t`.
  double next_after(double t);
  /// All arrivals in [0, horizon).
  std::vector<double> generate(double horizon);

  bool bursting() const noexcept { return bursting_; }

 private:
  void advance_burst_state(double t);

  ArrivalProcessOptions opts_;
  common::Rng rng_;
  bool bursting_ = false;
  double next_switch_ = 0.0;
  double lambda_max_ = 0.0;
};

}  // namespace hcrl::workload
