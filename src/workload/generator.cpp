#include "src/workload/generator.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace hcrl::workload {

void GeneratorOptions::validate() const {
  if (num_jobs == 0) throw std::invalid_argument("GeneratorOptions: num_jobs must be > 0");
  if (horizon_s <= 0.0) throw std::invalid_argument("GeneratorOptions: horizon must be > 0");
  if (min_duration_s <= 0.0 || max_duration_s < min_duration_s) {
    throw std::invalid_argument("GeneratorOptions: bad duration bounds");
  }
  if (cpu_min <= 0.0 || cpu_max > 1.0 || cpu_max < cpu_min) {
    throw std::invalid_argument("GeneratorOptions: bad cpu bounds");
  }
  if (mem_min <= 0.0 || mem_max > 1.0 || mem_max < mem_min) {
    throw std::invalid_argument("GeneratorOptions: bad memory bounds");
  }
  if (disk_lo <= 0.0 || disk_hi > 1.0 || disk_hi < disk_lo) {
    throw std::invalid_argument("GeneratorOptions: bad disk bounds");
  }
  if (mem_ratio_lo <= 0.0 || mem_ratio_hi < mem_ratio_lo) {
    throw std::invalid_argument("GeneratorOptions: bad memory ratio");
  }
}

double TraceStats::cpu_load(std::size_t num_servers) const {
  if (num_servers == 0 || horizon_s <= 0.0) return 0.0;
  return total_cpu_seconds / (horizon_s * static_cast<double>(num_servers));
}

std::string TraceStats::to_string() const {
  std::ostringstream os;
  os << "jobs=" << num_jobs << " horizon=" << horizon_s / 3600.0 << "h"
     << " mean_interarrival=" << mean_interarrival_s << "s"
     << " mean_duration=" << mean_duration_s << "s"
     << " mean_cpu=" << mean_cpu << " mean_mem=" << mean_memory << " mean_disk=" << mean_disk;
  return os.str();
}

GoogleTraceGenerator::GoogleTraceGenerator(const GeneratorOptions& opts) : opts_(opts) {
  opts_.validate();
}

sim::Job GoogleTraceGenerator::make_job(sim::JobId id, sim::Time arrival,
                                        common::Rng& rng) const {
  sim::Job job;
  job.id = id;
  job.arrival = arrival;
  job.duration = std::clamp(std::exp(rng.normal(opts_.duration_log_mean, opts_.duration_log_sigma)),
                            opts_.min_duration_s, opts_.max_duration_s);
  const double cpu =
      std::clamp(opts_.cpu_min + rng.exponential(1.0 / opts_.cpu_exp_mean), opts_.cpu_min,
                 opts_.cpu_max);
  const double mem = std::clamp(cpu * rng.uniform(opts_.mem_ratio_lo, opts_.mem_ratio_hi),
                                opts_.mem_min, opts_.mem_max);
  const double disk = rng.uniform(opts_.disk_lo, opts_.disk_hi);
  job.demand = sim::ResourceVector{cpu, mem, disk};
  return job;
}

std::vector<sim::Job> GoogleTraceGenerator::generate() {
  common::Rng rng(opts_.seed);

  ArrivalProcessOptions ap;
  ap.diurnal_amplitude = opts_.diurnal_amplitude;
  ap.burst_multiplier = opts_.burst_multiplier;
  ap.mean_burst_s = opts_.mean_burst_s;
  ap.mean_calm_s = opts_.mean_calm_s;
  // Pick the base rate so the long-run effective rate produces num_jobs
  // over the horizon in expectation.
  const double target_rate = static_cast<double>(opts_.num_jobs) / opts_.horizon_s;
  ap.base_rate_hz = 1.0;  // placeholder to pass validation
  const double duty_gain = ap.effective_rate();
  ap.base_rate_hz = target_rate / duty_gain;

  ArrivalProcess process(ap, rng.fork());
  std::vector<double> arrivals = process.generate(opts_.horizon_s);
  // The thinning draw count is random; trim or extend to exactly num_jobs so
  // experiments are comparable across seeds (the paper fixes 95,000 jobs).
  while (arrivals.size() > opts_.num_jobs) arrivals.pop_back();
  while (arrivals.size() < opts_.num_jobs) {
    const double last = arrivals.empty() ? 0.0 : arrivals.back();
    arrivals.push_back(process.next_after(std::max(last, opts_.horizon_s)));
  }

  std::vector<sim::Job> jobs;
  jobs.reserve(arrivals.size());
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    jobs.push_back(make_job(static_cast<sim::JobId>(i), arrivals[i], rng));
  }
  return jobs;
}

TraceStats compute_stats(const std::vector<sim::Job>& jobs, double horizon_s) {
  TraceStats s;
  s.num_jobs = jobs.size();
  s.horizon_s = horizon_s;
  if (jobs.empty()) return s;
  double dur = 0.0, cpu = 0.0, mem = 0.0, disk = 0.0, cpu_seconds = 0.0;
  for (const auto& j : jobs) {
    dur += j.duration;
    cpu += j.demand[0];
    if (j.demand.dims() > 1) mem += j.demand[1];
    if (j.demand.dims() > 2) disk += j.demand[2];
    cpu_seconds += j.duration * j.demand[0];
  }
  const double n = static_cast<double>(jobs.size());
  s.mean_duration_s = dur / n;
  s.mean_cpu = cpu / n;
  s.mean_memory = mem / n;
  s.mean_disk = disk / n;
  s.total_cpu_seconds = cpu_seconds;
  if (jobs.size() > 1) {
    s.mean_interarrival_s = (jobs.back().arrival - jobs.front().arrival) / (n - 1.0);
  }
  return s;
}

}  // namespace hcrl::workload
