// Synthetic Google-cluster-like trace generator.
//
// The paper evaluates on segments of the May-2011 Google cluster-usage
// trace: ~100,000 jobs per one-week segment per 30-40 machine cluster, job
// durations clipped to [1 min, 2 h], and per-job CPU/memory/disk requests
// normalized by one server's capacity. The real trace cannot ship with this
// repository, so this generator reproduces those published aggregates:
//
//  * arrivals: non-stationary Poisson (diurnal + bursty MMPP), calibrated so
//    the expected job count over the horizon matches `num_jobs`;
//  * durations: lognormal body clipped to [min_duration, max_duration]
//    (Google task durations are heavy-tailed; the clip matches the paper's
//    extraction rule);
//  * demands: small CPU requests (exponential body, clipped), memory
//    correlated with CPU, small disk — matching the "most tasks are tiny"
//    shape of the Google trace.
//
// `TraceStats` quantifies the result so tests can pin the calibration.
#pragma once

#include <vector>

#include "src/common/rng.hpp"
#include "src/sim/types.hpp"
#include "src/workload/arrival_process.hpp"

namespace hcrl::workload {

struct GeneratorOptions {
  std::size_t num_jobs = 95000;
  double horizon_s = hcrl::sim::kSecondsPerWeek;
  std::uint64_t seed = 1;

  // Durations (seconds): lognormal(log_mean, log_sigma) clipped.
  double min_duration_s = 60.0;     // 1 minute  (paper, §VII-A)
  double max_duration_s = 7200.0;   // 2 hours   (paper, §VII-A)
  double duration_log_mean = 6.2;   // exp(6.2) ~ 493 s median
  double duration_log_sigma = 1.0;

  // CPU demand: cpu = clip(cpu_min + Exp(cpu_exp_mean), cpu_min, cpu_max).
  // Google-trace task requests are tiny relative to a server (the paper's
  // round-robin cluster idles near P(0%)); these defaults give a mean
  // request of ~0.04 CPU and a cluster CPU load of ~15-20% at 95k jobs/week
  // on 30 machines — light enough that consolidation does not stall jobs,
  // exactly the regime in which the paper's effects appear.
  double cpu_min = 0.01;
  double cpu_max = 0.35;
  double cpu_exp_mean = 0.03;

  // Memory demand: mem = clip(cpu * U(mem_ratio_lo, mem_ratio_hi), ...).
  double mem_ratio_lo = 0.5;
  double mem_ratio_hi = 1.5;
  double mem_min = 0.01;
  double mem_max = 0.8;

  // Disk demand: U(disk_lo, disk_hi).
  double disk_lo = 0.005;
  double disk_hi = 0.05;

  // Arrival-process shape (its base rate is derived from num_jobs/horizon).
  // Google arrivals are strongly bursty: jobs come in waves with calm gaps
  // of a few minutes in between — short enough that an "ad hoc" immediate
  // sleep policy thrashes through wake/sleep cycles (Fig. 4a).
  double diurnal_amplitude = 0.4;
  double burst_multiplier = 4.0;
  double mean_burst_s = 300.0;
  double mean_calm_s = 1500.0;

  void validate() const;

  /// Field-wise equality: two option sets produce the same trace iff equal.
  bool operator==(const GeneratorOptions&) const = default;
};

struct TraceStats {
  std::size_t num_jobs = 0;
  double horizon_s = 0.0;
  double mean_interarrival_s = 0.0;
  double mean_duration_s = 0.0;
  double mean_cpu = 0.0;
  double mean_memory = 0.0;
  double mean_disk = 0.0;
  /// Offered CPU load per server: sum(duration*cpu) / (horizon * servers).
  double cpu_load(std::size_t num_servers) const;
  double total_cpu_seconds = 0.0;

  std::string to_string() const;
};

class GoogleTraceGenerator {
 public:
  explicit GoogleTraceGenerator(const GeneratorOptions& opts);

  /// Generate a full trace, sorted by arrival, ids 0..n-1.
  std::vector<sim::Job> generate();

  /// Generate only the per-job fields for an externally-supplied arrival
  /// time (used when splicing synthetic jobs into real arrival sequences).
  sim::Job make_job(sim::JobId id, sim::Time arrival, common::Rng& rng) const;

  const GeneratorOptions& options() const noexcept { return opts_; }

 private:
  GeneratorOptions opts_;
};

TraceStats compute_stats(const std::vector<sim::Job>& jobs, double horizon_s);

}  // namespace hcrl::workload
