#include "src/workload/trace/adapters.hpp"

#include <cstddef>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/common/csv.hpp"

namespace hcrl::workload::trace {

namespace {

// Strict full-field parses shared with trace_io (common/csv.hpp): empty
// and partial matches fail, and the caller decides the error policy.
std::optional<double> parse_double(const std::string& field) {
  return common::parse_csv_double(field);
}

std::optional<long long> parse_int(const std::string& field) {
  return common::parse_csv_int(field);
}

/// Azure bucket columns only: an open-ended bucket (">24") parses as its
/// bound. Everywhere else a stray '>' must stay malformed.
std::optional<double> parse_bucket(const std::string& field) {
  if (!field.empty() && field[0] == '>') return parse_double(field.substr(1));
  return parse_double(field);
}

}  // namespace

void AdapterOptions::validate() const {
  if (alibaba_machine_cores <= 0.0 || azure_host_cores <= 0.0 || azure_host_memory_gb <= 0.0) {
    throw std::invalid_argument("AdapterOptions: machine capacities must be > 0");
  }
  if (default_disk < 0.0) {
    throw std::invalid_argument("AdapterOptions: default_disk must be >= 0");
  }
}

std::string AdapterReport::to_string() const {
  std::ostringstream os;
  os << "rows_read=" << rows_read << " jobs_emitted=" << jobs_emitted
     << " rows_malformed=" << rows_malformed << " rows_filtered=" << rows_filtered
     << " unmatched_tasks=" << unmatched_tasks;
  return os.str();
}

TraceFormat parse_format(const std::string& name) {
  if (name == "google2011") return TraceFormat::kGoogle2011;
  if (name == "alibaba2018") return TraceFormat::kAlibaba2018;
  if (name == "azure2017") return TraceFormat::kAzure2017;
  throw std::invalid_argument("parse_format: unknown trace format '" + name +
                              "' (known: google2011, alibaba2018, azure2017)");
}

std::string to_string(TraceFormat format) {
  switch (format) {
    case TraceFormat::kGoogle2011: return "google2011";
    case TraceFormat::kAlibaba2018: return "alibaba2018";
    case TraceFormat::kAzure2017: return "azure2017";
  }
  return "unknown";
}

// ---- Google ClusterData 2011 task_events -----------------------------------

namespace {

// task_events column indices (schema.csv of the public dataset).
constexpr std::size_t kGTime = 0;
constexpr std::size_t kGJobId = 2;
constexpr std::size_t kGTaskIndex = 3;
constexpr std::size_t kGEventType = 5;
constexpr std::size_t kGCpu = 9;
constexpr std::size_t kGMemory = 10;
constexpr std::size_t kGDisk = 11;
constexpr std::size_t kGColumns = 13;

enum GoogleEvent : long long {
  kSubmit = 0,
  kSchedule = 1,
  kEvict = 2,
  kFail = 3,
  kFinish = 4,
  kKill = 5,
  kLost = 6,
};

struct PendingTask {
  double submit_s = 0.0;
  std::optional<double> schedule_s;
  double cpu = 0.0, memory = 0.0, disk = 0.0;
};

}  // namespace

std::vector<sim::Job> parse_google2011(std::istream& in, AdapterReport* report) {
  common::CsvReader reader(in);
  std::vector<std::string> fields;
  AdapterReport local;
  std::map<std::pair<long long, long long>, PendingTask> pending;
  std::vector<sim::Job> jobs;

  while (reader.read_row(fields)) {
    ++local.rows_read;
    if (fields.size() != kGColumns) {
      ++local.rows_malformed;
      continue;
    }
    const auto time_us = parse_double(fields[kGTime]);
    const auto job_id = parse_int(fields[kGJobId]);
    const auto task_index = parse_int(fields[kGTaskIndex]);
    const auto event = parse_int(fields[kGEventType]);
    if (!time_us || !job_id || !task_index || !event) {
      ++local.rows_malformed;
      continue;
    }
    const std::pair<long long, long long> key{*job_id, *task_index};
    const double t_s = *time_us / 1e6;

    switch (*event) {
      case kSubmit: {
        // Requests may be blank in the public trace; blanks become 0 and the
        // normalization floor lifts them into the simulator's range. A
        // non-blank field that fails to parse is data corruption and must
        // surface in the report, not coerce to 0.
        const auto request = [](const std::string& field) {
          return field.empty() ? std::optional<double>(0.0) : parse_double(field);
        };
        const auto cpu = request(fields[kGCpu]);
        const auto memory = request(fields[kGMemory]);
        const auto disk = request(fields[kGDisk]);
        if (!cpu || !memory || !disk) {
          ++local.rows_malformed;
          break;
        }
        PendingTask task;
        task.submit_s = t_s;
        task.cpu = *cpu;
        task.memory = *memory;
        task.disk = *disk;
        pending[key] = task;  // re-SUBMIT replaces the stale entry
        break;
      }
      case kSchedule: {
        const auto it = pending.find(key);
        if (it == pending.end()) {
          ++local.rows_filtered;  // scheduled before the slice started
        } else {
          it->second.schedule_s = t_s;
        }
        break;
      }
      case kFinish: {
        const auto it = pending.find(key);
        if (it == pending.end()) {
          ++local.rows_filtered;
          break;
        }
        const PendingTask& task = it->second;
        sim::Job job;
        job.id = static_cast<sim::JobId>(jobs.size());
        job.arrival = task.submit_s;
        job.duration = t_s - task.schedule_s.value_or(task.submit_s);
        job.demand = sim::ResourceVector{task.cpu, task.memory, task.disk};
        jobs.push_back(std::move(job));
        pending.erase(it);
        break;
      }
      case kEvict:
      case kFail:
      case kKill:
      case kLost:
        if (pending.erase(key) > 0) ++local.unmatched_tasks;
        break;
      default:
        ++local.rows_filtered;  // UPDATE_PENDING / UPDATE_RUNNING and friends
        break;
    }
  }
  local.unmatched_tasks += pending.size();  // submitted but never finished
  local.jobs_emitted = jobs.size();
  if (report != nullptr) *report = local;
  return jobs;
}

// ---- Alibaba ClusterData 2018 batch_task -----------------------------------

namespace {
constexpr std::size_t kAStatus = 4;
constexpr std::size_t kAStart = 5;
constexpr std::size_t kAEnd = 6;
constexpr std::size_t kAPlanCpu = 7;
constexpr std::size_t kAPlanMem = 8;
constexpr std::size_t kAColumns = 9;
}  // namespace

std::vector<sim::Job> parse_alibaba2018(std::istream& in, const AdapterOptions& options,
                                        AdapterReport* report) {
  options.validate();
  common::CsvReader reader(in);
  std::vector<std::string> fields;
  AdapterReport local;
  std::vector<sim::Job> jobs;

  while (reader.read_row(fields)) {
    ++local.rows_read;
    if (fields.size() != kAColumns) {
      ++local.rows_malformed;
      continue;
    }
    if (fields[kAStatus] != "Terminated") {
      ++local.rows_filtered;  // Running/Failed/Waiting tasks have no duration
      continue;
    }
    const auto start = parse_double(fields[kAStart]);
    const auto end = parse_double(fields[kAEnd]);
    const auto plan_cpu = parse_double(fields[kAPlanCpu]);
    const auto plan_mem = parse_double(fields[kAPlanMem]);
    if (!start || !end || !plan_cpu || !plan_mem) {
      ++local.rows_malformed;
      continue;
    }
    sim::Job job;
    job.id = static_cast<sim::JobId>(jobs.size());
    job.arrival = *start;
    job.duration = *end - *start;
    job.demand = sim::ResourceVector{*plan_cpu / 100.0 / options.alibaba_machine_cores,
                                     *plan_mem / 100.0, options.default_disk};
    jobs.push_back(std::move(job));
  }
  local.jobs_emitted = jobs.size();
  if (report != nullptr) *report = local;
  return jobs;
}

// ---- Azure 2017 vmtable ----------------------------------------------------

namespace {
constexpr std::size_t kVCreated = 3;
constexpr std::size_t kVDeleted = 4;
constexpr std::size_t kVCores = 9;
constexpr std::size_t kVMemoryGb = 10;
constexpr std::size_t kVColumns = 11;
}  // namespace

std::vector<sim::Job> parse_azure2017(std::istream& in, const AdapterOptions& options,
                                      AdapterReport* report) {
  options.validate();
  common::CsvReader reader(in);
  std::vector<std::string> fields;
  AdapterReport local;
  std::vector<sim::Job> jobs;

  while (reader.read_row(fields)) {
    ++local.rows_read;
    if (fields.size() != kVColumns) {
      ++local.rows_malformed;
      continue;
    }
    const auto created = parse_double(fields[kVCreated]);
    const auto deleted = parse_double(fields[kVDeleted]);
    const auto cores = parse_bucket(fields[kVCores]);
    const auto memory_gb = parse_bucket(fields[kVMemoryGb]);
    if (!created || !deleted || !cores || !memory_gb) {
      ++local.rows_malformed;
      continue;
    }
    sim::Job job;
    job.id = static_cast<sim::JobId>(jobs.size());
    job.arrival = *created;
    job.duration = *deleted - *created;
    job.demand = sim::ResourceVector{*cores / options.azure_host_cores,
                                     *memory_gb / options.azure_host_memory_gb,
                                     options.default_disk};
    jobs.push_back(std::move(job));
  }
  local.jobs_emitted = jobs.size();
  if (report != nullptr) *report = local;
  return jobs;
}

// ---- dispatch --------------------------------------------------------------

std::vector<sim::Job> parse_raw_trace(TraceFormat format, std::istream& in,
                                      const AdapterOptions& options, AdapterReport* report) {
  switch (format) {
    case TraceFormat::kGoogle2011: return parse_google2011(in, report);
    case TraceFormat::kAlibaba2018: return parse_alibaba2018(in, options, report);
    case TraceFormat::kAzure2017: return parse_azure2017(in, options, report);
  }
  throw std::invalid_argument("parse_raw_trace: unknown format");
}

std::vector<sim::Job> parse_raw_trace_file(TraceFormat format, const std::string& path,
                                           const AdapterOptions& options, AdapterReport* report) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("parse_raw_trace_file: cannot open " + path);
  return parse_raw_trace(format, in, options, report);
}

}  // namespace hcrl::workload::trace
