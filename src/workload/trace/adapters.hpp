// Format adapters: external cluster-trace schemas -> sim::Job rows.
//
// Each public cluster dataset ships its own schema; the adapters translate
// three of them into the simulator's job tuple (arrival, duration, demand):
//
//   * Google ClusterData 2011 `task_events` — event log, one row per task
//     state transition. Columns (no header): timestamp_us, missing_info,
//     job_id, task_index, machine_id, event_type, user, scheduling_class,
//     priority, cpu_request, memory_request, disk_request, constraint.
//     The adapter pairs SUBMIT(0) / SCHEDULE(1) / FINISH(4) events per
//     (job_id, task_index): arrival is the SUBMIT time, duration is
//     FINISH - SCHEDULE (FINISH - SUBMIT when no SCHEDULE was seen), and
//     demands come from the SUBMIT row (already normalized to one machine
//     in the public trace). Tasks that are EVICTed/FAILed/KILLed/LOST or
//     never finish inside the slice are dropped and counted.
//
//   * Alibaba ClusterData 2018 `batch_task` — one row per terminated task.
//     Columns (no header): task_name, instance_num, job_name, task_type,
//     status, start_time_s, end_time_s, plan_cpu, plan_mem. plan_cpu is in
//     percent of one core (100 == 1 core) and plan_mem in percent of one
//     machine's memory; demands are normalized by `alibaba_machine_cores`.
//     Only `Terminated` rows become jobs; one job per task (per-instance
//     demand), since the simulator's unit of work is a single request.
//
//   * Azure 2017 `vmtable` — one row per VM lifetime. Columns (no header):
//     vm_id, subscription_id, deployment_id, created_s, deleted_s, max_cpu,
//     avg_cpu, p95_max_cpu, vm_category, core_count_bucket, memory_gb_bucket.
//     arrival = created, duration = deleted - created, and demands are the
//     VM's core/memory buckets normalized by one host
//     (`azure_host_cores` / `azure_host_memory_gb`). Buckets like ">24"
//     parse as their bound.
//
// Adapters emit rows in *native* units: arrivals in seconds since the trace
// epoch (not rebased), unsorted, ids in emission order, demands possibly
// outside the simulator's (0, 1] range. Run trace::normalize() before
// handing the rows to trace_io or an experiment. Malformed rows are skipped
// and counted, never fatal — public trace slices are messy by nature; the
// AdapterReport makes the mess visible.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/sim/types.hpp"

namespace hcrl::workload::trace {

enum class TraceFormat {
  kGoogle2011,
  kAlibaba2018,
  kAzure2017,
};

/// "google2011" | "alibaba2018" | "azure2017"; throws std::invalid_argument
/// on anything else (the message lists the known names).
TraceFormat parse_format(const std::string& name);
std::string to_string(TraceFormat format);

struct AdapterOptions {
  /// Alibaba 2018 machines have 96 cores; plan_cpu=100 means one core.
  double alibaba_machine_cores = 96.0;
  /// Azure host capacity used to normalize VM core/memory buckets.
  double azure_host_cores = 64.0;
  double azure_host_memory_gb = 256.0;
  /// Alibaba batch_task and Azure vmtable carry no disk request; adapters
  /// fill this constant so every row stays 3-dimensional (cpu, mem, disk).
  double default_disk = 0.01;

  void validate() const;
};

struct AdapterReport {
  std::size_t rows_read = 0;        ///< data rows consumed (header excluded)
  std::size_t rows_malformed = 0;   ///< wrong column count / non-numeric
  std::size_t rows_filtered = 0;    ///< valid rows outside the job model
                                    ///< (non-terminal status, zero lifetime)
  std::size_t unmatched_tasks = 0;  ///< google: tasks without a FINISH
  std::size_t jobs_emitted = 0;

  std::string to_string() const;
};

std::vector<sim::Job> parse_google2011(std::istream& in, AdapterReport* report = nullptr);
std::vector<sim::Job> parse_alibaba2018(std::istream& in, const AdapterOptions& options = {},
                                        AdapterReport* report = nullptr);
std::vector<sim::Job> parse_azure2017(std::istream& in, const AdapterOptions& options = {},
                                      AdapterReport* report = nullptr);

/// Dispatch on `format`.
std::vector<sim::Job> parse_raw_trace(TraceFormat format, std::istream& in,
                                      const AdapterOptions& options = {},
                                      AdapterReport* report = nullptr);
/// Throws std::runtime_error when `path` cannot be opened.
std::vector<sim::Job> parse_raw_trace_file(TraceFormat format, const std::string& path,
                                           const AdapterOptions& options = {},
                                           AdapterReport* report = nullptr);

}  // namespace hcrl::workload::trace
