#include "src/workload/trace/calibrate.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "src/common/csv.hpp"
#include "src/common/stats.hpp"

namespace hcrl::workload::trace {

void CalibrationOptions::validate() const {
  if (horizon_s < 0.0) throw std::invalid_argument("CalibrationOptions: negative horizon");
}

double CalibrationReport::worst_rel_error() const {
  double worst = 0.0;
  for (const auto& r : rows) worst = std::max(worst, r.rel_error);
  return worst;
}

double CalibrationReport::worst_ks() const {
  double worst = 0.0;
  for (const auto& r : rows) {
    if (r.ks_statistic >= 0.0) worst = std::max(worst, r.ks_statistic);
  }
  return worst;
}

std::string CalibrationReport::to_string() const {
  std::ostringstream os;
  os << "calibration fit (empirical vs regenerated synthetic):\n";
  for (const auto& r : rows) {
    os << "  " << r.quantity << ": mean " << r.empirical_mean << " vs " << r.synthetic_mean
       << " (rel err " << r.rel_error;
    if (r.ks_statistic >= 0.0) os << ", KS " << r.ks_statistic;
    os << ")\n";
  }
  os << "  interarrival CV " << interarrival_cv << "; worst rel err " << worst_rel_error()
     << ", worst KS " << worst_ks();
  return os.str();
}

void CalibrationReport::write_csv(std::ostream& out) const {
  common::CsvWriter writer(out);
  writer.write_row({"quantity", "empirical_mean", "synthetic_mean", "rel_error", "ks_statistic"});
  for (const auto& r : rows) {
    // Round-trip-exact formatting: sub-1e-6 fit changes must stay visible
    // in the CI-uploaded report (std::to_string would flatten them to 0).
    writer.write_row({r.quantity, common::format_csv_double(r.empirical_mean),
                      common::format_csv_double(r.synthetic_mean),
                      common::format_csv_double(r.rel_error),
                      common::format_csv_double(r.ks_statistic)});
  }
}

double ks_statistic(std::vector<double> a, std::vector<double> b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("ks_statistic: empty sample");
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  std::size_t ia = 0, ib = 0;
  double d = 0.0;
  // Walk the pooled distinct values; consuming every tie at once keeps the
  // CDF comparison exact for repeated observations.
  while (ia < a.size() && ib < b.size()) {
    const double v = std::min(a[ia], b[ib]);
    while (ia < a.size() && a[ia] == v) ++ia;
    while (ib < b.size() && b[ib] == v) ++ib;
    d = std::max(d, std::abs(static_cast<double>(ia) / na - static_cast<double>(ib) / nb));
  }
  // Once one sample is exhausted its CDF is 1; the remaining values only
  // shrink the gap, so nothing more to scan.
  return d;
}

namespace {

constexpr double kEps = 1e-6;

double rel_error(double empirical, double synthetic) {
  return std::abs(synthetic - empirical) / std::max(std::abs(empirical), kEps);
}

double quantile_of_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::vector<double> interarrivals_of(const std::vector<sim::Job>& jobs) {
  std::vector<double> gaps;
  gaps.reserve(jobs.size() > 0 ? jobs.size() - 1 : 0);
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    gaps.push_back(jobs[i].arrival - jobs[i - 1].arrival);
  }
  return gaps;
}

FitRow make_row(const std::string& quantity, const std::vector<double>& empirical,
                const std::vector<double>& synthetic) {
  common::RunningStats emp, syn;
  for (double v : empirical) emp.add(v);
  for (double v : synthetic) syn.add(v);
  FitRow row;
  row.quantity = quantity;
  row.empirical_mean = emp.mean();
  row.synthetic_mean = syn.mean();
  row.rel_error = rel_error(emp.mean(), syn.mean());
  row.ks_statistic = ks_statistic(empirical, synthetic);
  return row;
}

}  // namespace

CalibrationResult calibrate(const std::vector<sim::Job>& jobs,
                            const CalibrationOptions& cal_options) {
  cal_options.validate();
  if (jobs.size() < 8) {
    throw std::invalid_argument("calibrate: need at least 8 jobs, got " +
                                std::to_string(jobs.size()));
  }
  const std::size_t dims = jobs.front().demand.dims();
  if (dims < 1) throw std::invalid_argument("calibrate: jobs carry no demand");

  // ---- empirical samples ----------------------------------------------------
  std::vector<double> gaps = interarrivals_of(jobs);
  std::vector<double> durations, cpus, mems, disks, mem_ratios;
  durations.reserve(jobs.size());
  cpus.reserve(jobs.size());
  for (const auto& j : jobs) {
    durations.push_back(j.duration);
    cpus.push_back(j.demand[0]);
    if (dims > 1) {
      mems.push_back(j.demand[1]);
      mem_ratios.push_back(j.demand[1] / std::max(j.demand[0], kEps));
    }
    if (dims > 2) disks.push_back(j.demand[2]);
  }

  common::RunningStats gap_stats, log_dur, cpu_stats, mem_stats, disk_stats;
  for (double g : gaps) gap_stats.add(g);
  for (double d : durations) log_dur.add(std::log(d));
  for (double c : cpus) cpu_stats.add(c);
  for (double m : mems) mem_stats.add(m);
  for (double d : disks) disk_stats.add(d);

  // ---- fit the generator knobs ----------------------------------------------
  GeneratorOptions fit;
  fit.seed = cal_options.seed;
  fit.num_jobs = jobs.size();
  const double n = static_cast<double>(jobs.size());
  const double span = jobs.back().arrival - jobs.front().arrival;
  // Horizon that reproduces the empirical arrival rate: mean gap * n.
  fit.horizon_s = cal_options.horizon_s > 0.0
                      ? cal_options.horizon_s
                      : std::max(span * n / std::max(n - 1.0, 1.0), kEps);

  // Durations: lognormal body from log moments, clipped at the data's range.
  const auto [dur_min_it, dur_max_it] = std::minmax_element(durations.begin(), durations.end());
  fit.min_duration_s = std::max(*dur_min_it, kEps);
  fit.max_duration_s = std::max(*dur_max_it, fit.min_duration_s);
  fit.duration_log_mean = log_dur.mean();
  fit.duration_log_sigma = std::max(log_dur.stddev(), 0.01);

  // CPU: shifted exponential on the data's support.
  fit.cpu_min = std::max(cpu_stats.min(), kEps);
  fit.cpu_max = std::clamp(cpu_stats.max(), fit.cpu_min, 1.0);
  fit.cpu_exp_mean = std::max(cpu_stats.mean() - fit.cpu_min, kEps);

  // Memory: the generator draws mem = cpu * U(lo, hi), so E[mem] =
  // E[cpu * ratio]. Center the uniform on the ratio of means (E[mem]/E[cpu]
  // — NOT the mean per-job ratio, which biases E[mem] whenever memory is
  // independent of cpu, e.g. Alibaba/Azure), and take the spread from the
  // 10th/90th percentiles of the per-job ratio.
  if (!mems.empty()) {
    std::sort(mem_ratios.begin(), mem_ratios.end());
    const double mid = mem_stats.mean() / std::max(cpu_stats.mean(), kEps);
    const double half = 0.5 * (quantile_of_sorted(mem_ratios, 0.90) -
                               quantile_of_sorted(mem_ratios, 0.10));
    fit.mem_ratio_lo = std::max(mid - half, kEps);
    fit.mem_ratio_hi = std::max(mid + half, fit.mem_ratio_lo);
    fit.mem_min = std::max(mem_stats.min(), kEps);
    fit.mem_max = std::clamp(mem_stats.max(), fit.mem_min, 1.0);
  }

  // Disk: uniform on the empirical support.
  if (!disks.empty()) {
    fit.disk_lo = std::max(disk_stats.min(), kEps);
    fit.disk_hi = std::clamp(disk_stats.max(), fit.disk_lo, 1.0);
  }

  // Arrivals: Poisson-like traces collapse the MMPP to a constant rate;
  // burstier traces map CV^2 onto the burst multiplier. A short window
  // cannot identify a daily cycle, so the diurnal term is off.
  const double cv =
      gap_stats.mean() > 0.0 ? gap_stats.stddev() / gap_stats.mean() : 0.0;
  fit.diurnal_amplitude = 0.0;
  fit.burst_multiplier = cv <= 1.05 ? 1.0 : std::clamp(cv * cv, 1.0, 8.0);

  fit.validate();

  if (!cal_options.verify) {
    CalibrationReport report;
    report.empirical = compute_stats(jobs, fit.horizon_s);
    report.interarrival_cv = cv;
    return CalibrationResult{fit, std::move(report)};
  }

  // ---- verify: regenerate and compare ---------------------------------------
  const std::vector<sim::Job> regen = GoogleTraceGenerator(fit).generate();

  std::vector<double> regen_gaps = interarrivals_of(regen);
  std::vector<double> regen_durations, regen_cpus, regen_mems, regen_disks;
  regen_durations.reserve(regen.size());
  for (const auto& j : regen) {
    regen_durations.push_back(j.duration);
    regen_cpus.push_back(j.demand[0]);
    if (dims > 1) regen_mems.push_back(j.demand[1]);
    if (dims > 2) regen_disks.push_back(j.demand[2]);
  }

  CalibrationReport report;
  report.empirical = compute_stats(jobs, fit.horizon_s);
  report.synthetic = compute_stats(regen, fit.horizon_s);
  report.interarrival_cv = cv;
  report.rows.push_back(make_row("interarrival_s", gaps, regen_gaps));
  report.rows.push_back(make_row("duration_s", durations, regen_durations));
  report.rows.push_back(make_row("cpu", cpus, regen_cpus));
  if (!mems.empty()) report.rows.push_back(make_row("memory", mems, regen_mems));
  if (!disks.empty()) report.rows.push_back(make_row("disk", disks, regen_disks));

  return CalibrationResult{fit, std::move(report)};
}

}  // namespace hcrl::workload::trace
