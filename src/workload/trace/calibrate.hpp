// Calibration engine: fit workload::GeneratorOptions to an empirical trace.
//
// The synthetic generator models a trace with a handful of closed-form
// distributions (lognormal durations, shifted-exponential CPU, uniform
// memory ratio and disk, MMPP arrivals). Calibration inverts that model:
// given any normalized job vector, estimate each knob from the data so
// GoogleTraceGenerator(options).generate() mimics the real cluster:
//
//   * arrivals — the base rate is implied by (num_jobs, horizon); the MMPP
//     burst multiplier is set from the inter-arrival coefficient of
//     variation (CV <= ~1 is Poisson-like, so the multiplier collapses to
//     1; heavier burstiness maps to min(CV^2, 8)). The diurnal term is
//     disabled: short windows cannot identify a daily cycle.
//   * durations — mean/stddev of log(duration) give the lognormal body;
//     the clip bounds are the empirical min/max.
//   * cpu — the generator draws cpu_min + Exp(mean); fit cpu_min as the
//     empirical minimum and the exponential mean as mean(cpu) - min(cpu).
//   * memory — the generator draws cpu * U(lo, hi); fit lo/hi as the 10th
//     and 90th percentile of the per-job mem/cpu ratio.
//   * disk — uniform on the empirical [min, max].
//
// Every fit is verified, not trusted: the engine regenerates a synthetic
// trace from the fitted options and reports moment relative errors plus
// two-sample Kolmogorov-Smirnov statistics for the inter-arrival, duration
// and CPU distributions. The report is the product — a calibration that
// cannot show its goodness-of-fit numbers is a guess.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/sim/types.hpp"
#include "src/workload/generator.hpp"

namespace hcrl::workload::trace {

struct CalibrationOptions {
  /// Seed stamped into the fitted GeneratorOptions (and used for the
  /// verification regeneration).
  std::uint64_t seed = 2011;
  /// Horizon override; 0 infers the empirical arrival rate from the trace.
  double horizon_s = 0.0;
  /// When false, skip the verification regeneration: the result carries
  /// the fitted options and empirical stats but no fit rows. For callers
  /// that only want the options (e.g. the registry's calibrated-twin
  /// scenarios), this avoids generating a full synthetic trace per fit.
  bool verify = true;

  void validate() const;
};

/// One fitted dimension: empirical vs regenerated-synthetic moments.
struct FitRow {
  std::string quantity;        ///< "interarrival_s", "duration_s", ...
  double empirical_mean = 0.0;
  double synthetic_mean = 0.0;
  double rel_error = 0.0;      ///< |syn - emp| / max(|emp|, eps)
  double ks_statistic = -1.0;  ///< two-sample KS; -1 when not computed
};

struct CalibrationReport {
  TraceStats empirical;
  TraceStats synthetic;
  std::vector<FitRow> rows;
  double interarrival_cv = 0.0;  ///< empirical CV that drove the MMPP fit

  /// Largest rel_error across rows (the headline fit number).
  double worst_rel_error() const;
  /// Largest computed KS statistic across rows.
  double worst_ks() const;

  std::string to_string() const;
  /// CSV: quantity,empirical_mean,synthetic_mean,rel_error,ks_statistic.
  void write_csv(std::ostream& out) const;
};

struct CalibrationResult {
  GeneratorOptions options;
  CalibrationReport report;
};

/// Fit generator options to `jobs` (normalized, sorted by arrival; throws
/// std::invalid_argument on an empty or too-small trace — fitting needs at
/// least 8 jobs).
CalibrationResult calibrate(const std::vector<sim::Job>& jobs,
                            const CalibrationOptions& options = {});

/// Two-sample Kolmogorov-Smirnov statistic (sup |F1 - F2|). Exposed for
/// tests; inputs need not be sorted.
double ks_statistic(std::vector<double> a, std::vector<double> b);

}  // namespace hcrl::workload::trace
