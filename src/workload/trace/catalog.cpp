#include "src/workload/trace/catalog.hpp"

#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <utility>

#ifndef HCRL_DATA_DIR
#define HCRL_DATA_DIR ""
#endif

namespace hcrl::workload::trace {

void TraceCatalog::add(CatalogEntry entry) {
  if (entry.name.empty()) throw std::invalid_argument("TraceCatalog: empty entry name");
  if (contains(entry.name)) {
    throw std::invalid_argument("TraceCatalog: duplicate entry '" + entry.name + "'");
  }
  entries_.push_back(std::move(entry));
}

bool TraceCatalog::contains(const std::string& name) const {
  for (const auto& e : entries_) {
    if (e.name == name) return true;
  }
  return false;
}

const CatalogEntry& TraceCatalog::entry(const std::string& name) const {
  for (const auto& e : entries_) {
    if (e.name == name) return e;
  }
  std::string known;
  for (const auto& e : entries_) known += (known.empty() ? "" : ", ") + e.name;
  throw std::invalid_argument("TraceCatalog: unknown dataset '" + name + "' (known: " + known +
                              ")");
}

std::vector<std::string> TraceCatalog::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.name);
  return out;
}

namespace {

std::vector<std::string> candidate_dirs() {
  std::vector<std::string> dirs;
  if (const char* dir = std::getenv("HCRL_TRACE_DIR")) {
    if (*dir != '\0') dirs.push_back(dir);
  }
  dirs.emplace_back("data/traces");
  dirs.emplace_back(HCRL_DATA_DIR);
  return dirs;
}

}  // namespace

std::string TraceCatalog::data_dir() {
  std::error_code ec;
  for (const auto& dir : candidate_dirs()) {
    if (std::filesystem::is_directory(dir, ec)) return dir;
  }
  return "";
}

std::string TraceCatalog::fixture_path(const std::string& name) const {
  const CatalogEntry& e = entry(name);
  // Probe per file, not per directory: a data/traces in the cwd that lacks
  // this fixture must not mask the compile-time fallback that has it.
  std::string probed;
  std::error_code ec;
  for (const auto& dir : candidate_dirs()) {
    const std::string candidate = dir + "/" + e.fixture_file;
    if (std::filesystem::is_regular_file(candidate, ec)) return candidate;
    probed += (probed.empty() ? "" : ", ") + dir;
  }
  throw std::runtime_error("TraceCatalog: fixture '" + e.fixture_file + "' for dataset '" +
                           name + "' not found (probed: " + probed +
                           "; set HCRL_TRACE_DIR or run from the repo root)");
}

std::vector<sim::Job> TraceCatalog::load(const std::string& name, AdapterReport* adapter_report,
                                         NormalizeReport* normalize_report) const {
  const CatalogEntry& e = entry(name);
  std::vector<sim::Job> raw =
      parse_raw_trace_file(e.format, fixture_path(name), e.adapter, adapter_report);
  return normalize(std::move(raw), e.normalize, normalize_report);
}

namespace {

TraceCatalog build_builtin() {
  TraceCatalog c;
  {
    CatalogEntry e;
    e.name = "google2011-sample";
    e.format = TraceFormat::kGoogle2011;
    e.fixture_file = "google2011_task_events.sample.csv";
    e.description = "Google ClusterData 2011 task_events slice (the paper's evaluation trace): "
                    "SUBMIT/SCHEDULE/FINISH event log with machine-normalized requests";
    e.source_url = "https://github.com/google/cluster-data/blob/master/ClusterData2011_2.md";
    e.fetch_hint = "scripts/fetch_traces.sh google2011  (gsutil, ~400 GB full)";
    // Requests in the public trace are already normalized to one machine;
    // only the floor/clip repair is needed.
    c.add(std::move(e));
  }
  {
    CatalogEntry e;
    e.name = "alibaba2018-sample";
    e.format = TraceFormat::kAlibaba2018;
    e.fixture_file = "alibaba2018_batch_task.sample.csv";
    e.description = "Alibaba ClusterData 2018 batch_task slice: terminated batch tasks with "
                    "plan_cpu (percent of a core) and plan_mem (percent of a machine)";
    e.source_url = "https://github.com/alibaba/clusterdata/tree/master/cluster-trace-v2018";
    e.fetch_hint = "scripts/fetch_traces.sh alibaba2018  (~270 GB full)";
    c.add(std::move(e));
  }
  {
    CatalogEntry e;
    e.name = "azure2017-sample";
    e.format = TraceFormat::kAzure2017;
    e.fixture_file = "azure2017_vmtable.sample.csv";
    e.description = "Azure 2017 VM trace slice: per-VM lifetimes with core/memory buckets "
                    "normalized by one host";
    e.source_url = "https://github.com/Azure/AzurePublicDataset/blob/master/AzurePublicDatasetV1.md";
    e.fetch_hint = "scripts/fetch_traces.sh azure2017  (~120 GB full)";
    // VM lifetimes run to days; the paper's [1 min, 2 h] clip keeps the
    // slice comparable with the job-scale traces.
    c.add(std::move(e));
  }
  return c;
}

}  // namespace

const TraceCatalog& TraceCatalog::builtin() {
  static const TraceCatalog catalog = build_builtin();
  return catalog;
}

}  // namespace hcrl::workload::trace
