// TraceCatalog: named real-cluster datasets with provenance.
//
// A catalog entry ties together everything needed to turn a public dataset
// into a simulator workload: the raw format, the bundled fixture slice
// (checked in under data/traces/), adapter capacity assumptions, the
// normalization recipe, and provenance (where the full dataset lives and
// how to fetch it — see scripts/fetch_traces.sh). `load()` runs
// adapter + normalize in one call, so examples and the scenario registry
// can say `TraceCatalog::builtin().load("google2011-sample")` and get jobs
// that drop straight into an experiment.
//
// Fixture resolution order (first hit wins):
//   1. $HCRL_TRACE_DIR — explicit override;
//   2. ./data/traces relative to the current directory — running from the
//      repository root;
//   3. the compile-time source path (HCRL_DATA_DIR) — tests and tools
//      running from a build tree.
#pragma once

#include <string>
#include <vector>

#include "src/sim/types.hpp"
#include "src/workload/trace/adapters.hpp"
#include "src/workload/trace/normalize.hpp"

namespace hcrl::workload::trace {

struct CatalogEntry {
  std::string name;          ///< registry / CLI handle, e.g. "google2011-sample"
  TraceFormat format = TraceFormat::kGoogle2011;
  std::string fixture_file;  ///< file name under the data directory
  std::string description;
  std::string source_url;    ///< provenance: where the full dataset lives
  std::string fetch_hint;    ///< one-liner for getting the full dataset
  AdapterOptions adapter;
  NormalizeOptions normalize;
};

class TraceCatalog {
 public:
  /// Register an entry; throws on duplicate or empty names.
  void add(CatalogEntry entry);

  bool contains(const std::string& name) const;
  /// Throws std::invalid_argument on unknown names (message lists known).
  const CatalogEntry& entry(const std::string& name) const;
  /// All entry names, registration order.
  std::vector<std::string> names() const;

  /// Resolve the entry's bundled fixture path (throws std::runtime_error
  /// when no candidate directory holds the file).
  std::string fixture_path(const std::string& name) const;

  /// Parse + normalize the bundled fixture into simulator-ready jobs.
  std::vector<sim::Job> load(const std::string& name, AdapterReport* adapter_report = nullptr,
                             NormalizeReport* normalize_report = nullptr) const;

  /// The built-in datasets: google2011-sample, alibaba2018-sample,
  /// azure2017-sample.
  static const TraceCatalog& builtin();

  /// The resolved data directory ("" when none of the candidates exist).
  static std::string data_dir();

 private:
  std::vector<CatalogEntry> entries_;
};

}  // namespace hcrl::workload::trace
