#include "src/workload/trace/normalize.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "src/common/rng.hpp"

namespace hcrl::workload::trace {

void NormalizeOptions::validate() const {
  if (window_start_s < 0.0 || window_end_s <= window_start_s) {
    throw std::invalid_argument("NormalizeOptions: bad window");
  }
  if (min_duration_s <= 0.0 || max_duration_s < min_duration_s) {
    throw std::invalid_argument("NormalizeOptions: bad duration clip");
  }
  if (resource_floor <= 0.0 || resource_cap > 1.0 || resource_cap < resource_floor) {
    throw std::invalid_argument("NormalizeOptions: bad resource clamp");
  }
  if (rescale_peak < 0.0 || rescale_peak > 1.0) {
    throw std::invalid_argument("NormalizeOptions: rescale_peak must be in [0, 1]");
  }
}

std::string NormalizeReport::to_string() const {
  std::ostringstream os;
  os << "rows_in=" << rows_in << " rows_out=" << rows_out
     << " dropped_invalid=" << dropped_invalid << " dropped_duplicate=" << dropped_duplicate
     << " dropped_window=" << dropped_window << " dropped_sampled=" << dropped_sampled
     << " clamped_durations=" << clamped_durations << " clamped_demands=" << clamped_demands
     << " rescale_factor=" << rescale_factor;
  return os.str();
}

namespace {

bool job_is_usable(const sim::Job& job, std::size_t dims) {
  if (!std::isfinite(job.arrival) || !std::isfinite(job.duration)) return false;
  if (job.duration <= 0.0) return false;
  if (job.demand.dims() != dims) return false;
  for (std::size_t d = 0; d < dims; ++d) {
    if (!std::isfinite(job.demand[d]) || job.demand[d] < 0.0) return false;
  }
  return true;
}

bool same_row(const sim::Job& a, const sim::Job& b) {
  if (a.arrival != b.arrival || a.duration != b.duration) return false;
  if (a.demand.dims() != b.demand.dims()) return false;
  for (std::size_t d = 0; d < a.demand.dims(); ++d) {
    if (a.demand[d] != b.demand[d]) return false;
  }
  return true;
}

/// Full-row ordering (arrival first, then duration and demand) so that
/// exact duplicates always end up adjacent — event logs interleave repeated
/// rows at identical timestamps, where an arrival-only sort would leave
/// them separated and the adjacent dedup would miss them.
bool row_less(const sim::Job& a, const sim::Job& b) {
  if (a.arrival != b.arrival) return a.arrival < b.arrival;
  if (a.duration != b.duration) return a.duration < b.duration;
  const std::size_t dims = std::min(a.demand.dims(), b.demand.dims());
  for (std::size_t d = 0; d < dims; ++d) {
    if (a.demand[d] != b.demand[d]) return a.demand[d] < b.demand[d];
  }
  return a.demand.dims() < b.demand.dims();
}

}  // namespace

std::vector<sim::Job> normalize(std::vector<sim::Job> jobs, const NormalizeOptions& options,
                                NormalizeReport* report) {
  options.validate();
  NormalizeReport local;
  local.rows_in = jobs.size();

  // The trace's dimensionality is the most common row dimensionality; rows
  // that disagree are unusable.
  std::size_t dims = 3;
  if (!jobs.empty()) {
    std::vector<std::size_t> counts;
    for (const auto& j : jobs) {
      const std::size_t d = j.demand.dims();
      if (d >= counts.size()) counts.resize(d + 1, 0);
      ++counts[d];
    }
    dims = static_cast<std::size_t>(
        std::max_element(counts.begin(), counts.end()) - counts.begin());
  }

  // 1. drop unusable rows.
  std::vector<sim::Job> kept;
  kept.reserve(jobs.size());
  for (auto& j : jobs) {
    if (job_is_usable(j, dims)) {
      kept.push_back(std::move(j));
    } else {
      ++local.dropped_invalid;
    }
  }

  // 2. stable sort by full row key, then drop exact duplicates.
  std::stable_sort(kept.begin(), kept.end(), row_less);
  std::vector<sim::Job> unique_jobs;
  unique_jobs.reserve(kept.size());
  for (auto& j : kept) {
    if (!unique_jobs.empty() && same_row(unique_jobs.back(), j)) {
      ++local.dropped_duplicate;
    } else {
      unique_jobs.push_back(std::move(j));
    }
  }

  // 3. rebase to t = 0.
  if (!unique_jobs.empty()) {
    const double epoch = unique_jobs.front().arrival;
    for (auto& j : unique_jobs) j.arrival -= epoch;
  }

  // 4. window slice, then rebase to the window start.
  if (options.window_start_s > 0.0 || std::isfinite(options.window_end_s)) {
    std::vector<sim::Job> windowed;
    windowed.reserve(unique_jobs.size());
    for (auto& j : unique_jobs) {
      if (j.arrival >= options.window_start_s && j.arrival < options.window_end_s) {
        j.arrival -= options.window_start_s;
        windowed.push_back(std::move(j));
      } else {
        ++local.dropped_window;
      }
    }
    unique_jobs = std::move(windowed);
  }

  // 5. deterministic down-sampling: rank rows by a per-index hash and keep
  // the smallest `max_jobs` ranks, preserving arrival order.
  if (options.max_jobs > 0 && unique_jobs.size() > options.max_jobs) {
    std::vector<std::pair<std::uint64_t, std::size_t>> ranked(unique_jobs.size());
    for (std::size_t i = 0; i < unique_jobs.size(); ++i) {
      ranked[i] = {common::SplitMix64(options.sample_seed ^ i).next(), i};
    }
    std::nth_element(ranked.begin(),
                     ranked.begin() + static_cast<std::ptrdiff_t>(options.max_jobs),
                     ranked.end());
    std::vector<bool> keep(unique_jobs.size(), false);
    for (std::size_t k = 0; k < options.max_jobs; ++k) keep[ranked[k].second] = true;
    std::vector<sim::Job> sampled;
    sampled.reserve(options.max_jobs);
    for (std::size_t i = 0; i < unique_jobs.size(); ++i) {
      if (keep[i]) {
        sampled.push_back(std::move(unique_jobs[i]));
      } else {
        ++local.dropped_sampled;
      }
    }
    unique_jobs = std::move(sampled);
  }

  // 6. demand rescale + clamp.
  if (options.rescale_peak > 0.0) {
    double peak = 0.0;
    for (const auto& j : unique_jobs) peak = std::max(peak, j.demand.max_component());
    if (peak > 0.0) {
      local.rescale_factor = options.rescale_peak / peak;
      for (auto& j : unique_jobs) {
        for (std::size_t d = 0; d < j.demand.dims(); ++d) {
          j.demand[d] *= local.rescale_factor;
        }
      }
    }
  }
  for (auto& j : unique_jobs) {
    bool clamped = false;
    for (std::size_t d = 0; d < j.demand.dims(); ++d) {
      const double v = std::clamp(j.demand[d], options.resource_floor, options.resource_cap);
      if (v != j.demand[d]) clamped = true;
      j.demand[d] = v;
    }
    if (clamped) ++local.clamped_demands;
  }

  // 7. duration clip.
  for (auto& j : unique_jobs) {
    const double v = std::clamp(j.duration, options.min_duration_s, options.max_duration_s);
    if (v != j.duration) ++local.clamped_durations;
    j.duration = v;
  }

  // 8. renumber in arrival order.
  for (std::size_t i = 0; i < unique_jobs.size(); ++i) {
    unique_jobs[i].id = static_cast<sim::JobId>(i);
  }

  local.rows_out = unique_jobs.size();
  if (report != nullptr) *report = local;
  return unique_jobs;
}

}  // namespace hcrl::workload::trace
