// Normalization pipeline: raw adapter output -> simulator-ready jobs.
//
// Public trace slices arrive messy: epoch-based timestamps, unsorted rows,
// zero-duration tasks, duplicate rows, demands quoted in machine units or
// zero where the request column was blank. trace_io::read_trace and
// sim::Job::validate are deliberately strict, so this pipeline repairs the
// rows in a fixed, documented order:
//
//   1. drop rows that can never be jobs (non-finite fields, duration <= 0,
//      demand dimensionality mismatch);
//   2. sort by full row key — arrival, then duration and demand, so exact
//      duplicate rows are always adjacent even when an event log
//      interleaves them at one timestamp — and drop the duplicates
//      (remaining ties keep input order);
//   3. rebase time so the first arrival is t = 0;
//   4. slice the window [window_start_s, window_end_s) on rebased arrivals
//      and rebase again to the window start;
//   5. deterministically down-sample to at most `max_jobs` rows: each row is
//      ranked by SplitMix64(sample_seed ^ row index) and the smallest ranks
//      survive, which preserves burst structure far better than taking a
//      prefix and is reproducible bit-for-bit from the seed;
//   6. optionally rescale demands so the trace's largest component equals
//      `rescale_peak` (0 disables), then clamp every component into
//      [resource_floor, resource_cap];
//   7. clamp durations into [min_duration_s, max_duration_s] (the paper
//      clips Google durations to [1 min, 2 h] the same way);
//   8. renumber ids 0..n-1 in arrival order.
//
// Every repair increments a NormalizeReport counter, so "how much surgery
// did this dataset need" is part of the result, not something to guess.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "src/sim/types.hpp"

namespace hcrl::workload::trace {

struct NormalizeOptions {
  /// Window on rebased arrivals, [start, end) seconds; end = inf keeps all.
  double window_start_s = 0.0;
  double window_end_s = std::numeric_limits<double>::infinity();

  /// Down-sample to at most this many jobs (0 keeps every row).
  std::size_t max_jobs = 0;
  std::uint64_t sample_seed = 1;

  /// Duration clip, mirroring the paper's [1 min, 2 h] extraction rule.
  double min_duration_s = 60.0;
  double max_duration_s = 7200.0;

  /// Demand repair: optional global rescale, then a per-component clamp.
  double rescale_peak = 0.0;  ///< 0 disables; else max component maps here
  double resource_floor = 0.005;
  double resource_cap = 1.0;

  void validate() const;
};

struct NormalizeReport {
  std::size_t rows_in = 0;
  std::size_t rows_out = 0;
  std::size_t dropped_invalid = 0;   ///< non-finite / duration <= 0 / bad dims
  std::size_t dropped_duplicate = 0;
  std::size_t dropped_window = 0;
  std::size_t dropped_sampled = 0;
  std::size_t clamped_durations = 0;
  std::size_t clamped_demands = 0;   ///< jobs with >= 1 clamped component
  double rescale_factor = 1.0;       ///< applied demand scale (1 = untouched)

  std::string to_string() const;
};

/// Run the pipeline. The result is sorted, deduplicated, rebased to t = 0,
/// ids 0..n-1, and every job passes sim::Job::validate — i.e. it survives
/// trace_io::write_trace / read_trace round trips and drops straight into
/// an experiment.
std::vector<sim::Job> normalize(std::vector<sim::Job> jobs, const NormalizeOptions& options = {},
                                NormalizeReport* report = nullptr);

}  // namespace hcrl::workload::trace
