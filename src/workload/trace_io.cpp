#include "src/workload/trace_io.hpp"

#include <fstream>
#include <stdexcept>

#include "src/common/csv.hpp"

namespace hcrl::workload {

namespace {
constexpr const char* kResourceNames[] = {"cpu", "memory", "disk"};
}

void write_trace(std::ostream& out, const std::vector<sim::Job>& jobs) {
  common::CsvWriter writer(out);
  const std::size_t dims = jobs.empty() ? 3 : jobs.front().demand.dims();
  std::vector<std::string> header = {"id", "arrival", "duration"};
  for (std::size_t d = 0; d < dims; ++d) {
    header.push_back(d < 3 ? kResourceNames[d] : "resource" + std::to_string(d));
  }
  writer.write_row(header);
  for (const auto& job : jobs) {
    // The id column is written as an integer (a double-typed column would
    // lose ids above 2^53).
    std::vector<std::string> row = {std::to_string(job.id),
                                    common::format_csv_double(job.arrival),
                                    common::format_csv_double(job.duration)};
    for (std::size_t d = 0; d < job.demand.dims(); ++d) {
      row.push_back(common::format_csv_double(job.demand[d]));
    }
    writer.write_row(row);
  }
}

void write_trace_file(const std::string& path, const std::vector<sim::Job>& jobs) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_trace_file: cannot open " + path);
  write_trace(out, jobs);
}

namespace {

[[noreturn]] void fail_at(std::size_t line, const std::string& what) {
  throw std::invalid_argument("read_trace: line " + std::to_string(line) + ": " + what);
}

/// Strict full-field numeric parse; names the column and quotes the value
/// on failure so a malformed row in a million-line trace is findable.
double parse_field(const std::string& value, const std::string& column, std::size_t line) {
  if (const auto v = common::parse_csv_double(value)) return *v;
  fail_at(line, "non-numeric value '" + value + "' in column '" + column + "'");
}

sim::JobId parse_id_field(const std::string& value, std::size_t line) {
  if (const auto v = common::parse_csv_int(value)) return *v;
  fail_at(line, "non-integer value '" + value + "' in column 'id'");
}

}  // namespace

std::vector<sim::Job> read_trace(std::istream& in) {
  common::CsvReader reader(in);
  std::vector<std::string> fields;
  if (!reader.read_row(fields)) throw std::invalid_argument("read_trace: empty input");
  if (fields.size() < 4 || fields[0] != "id") {
    fail_at(reader.line(),
            "bad header (expected 'id,arrival,duration,<resource columns>')");
  }
  const std::vector<std::string> header = fields;
  const std::size_t dims = header.size() - 3;

  std::vector<sim::Job> jobs;
  double prev_arrival = -1.0;
  while (reader.read_row(fields)) {
    const std::size_t line = reader.line();
    if (fields.size() != dims + 3) {
      fail_at(line, "expected " + std::to_string(dims + 3) + " columns, got " +
                        std::to_string(fields.size()));
    }
    sim::Job job;
    job.id = parse_id_field(fields[0], line);
    job.arrival = parse_field(fields[1], header[1], line);
    job.duration = parse_field(fields[2], header[2], line);
    job.demand = sim::ResourceVector(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      job.demand[d] = parse_field(fields[3 + d], header[3 + d], line);
    }
    try {
      job.validate(dims);
    } catch (const std::exception& e) {
      fail_at(line, e.what());
    }
    if (job.arrival < prev_arrival) {
      fail_at(line, "arrivals not sorted (" + fields[1] + " after " +
                        std::to_string(prev_arrival) + ")");
    }
    prev_arrival = job.arrival;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<sim::Job> read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_trace_file: cannot open " + path);
  return read_trace(in);
}

}  // namespace hcrl::workload
