#include "src/workload/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/common/csv.hpp"

namespace hcrl::workload {

namespace {
constexpr const char* kResourceNames[] = {"cpu", "memory", "disk"};
}

void write_trace(std::ostream& out, const std::vector<sim::Job>& jobs) {
  common::CsvWriter writer(out);
  const std::size_t dims = jobs.empty() ? 3 : jobs.front().demand.dims();
  std::vector<std::string> header = {"id", "arrival", "duration"};
  for (std::size_t d = 0; d < dims; ++d) {
    header.push_back(d < 3 ? kResourceNames[d] : "resource" + std::to_string(d));
  }
  writer.write_row(header);
  for (const auto& job : jobs) {
    std::vector<double> row = {static_cast<double>(job.id), job.arrival, job.duration};
    for (std::size_t d = 0; d < job.demand.dims(); ++d) row.push_back(job.demand[d]);
    writer.write_row_doubles(row);
  }
}

void write_trace_file(const std::string& path, const std::vector<sim::Job>& jobs) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_trace_file: cannot open " + path);
  write_trace(out, jobs);
}

std::vector<sim::Job> read_trace(std::istream& in) {
  common::CsvReader reader(in);
  std::vector<std::string> fields;
  if (!reader.read_row(fields)) throw std::invalid_argument("read_trace: empty input");
  if (fields.size() < 4 || fields[0] != "id") {
    throw std::invalid_argument("read_trace: bad header");
  }
  const std::size_t dims = fields.size() - 3;

  std::vector<sim::Job> jobs;
  double prev_arrival = -1.0;
  while (reader.read_row(fields)) {
    if (fields.size() != dims + 3) {
      throw std::invalid_argument("read_trace: row has wrong column count");
    }
    sim::Job job;
    try {
      job.id = std::stoll(fields[0]);
      job.arrival = std::stod(fields[1]);
      job.duration = std::stod(fields[2]);
      job.demand = sim::ResourceVector(dims);
      for (std::size_t d = 0; d < dims; ++d) job.demand[d] = std::stod(fields[3 + d]);
    } catch (const std::exception&) {
      throw std::invalid_argument("read_trace: non-numeric field in row " +
                                  std::to_string(jobs.size() + 2));
    }
    job.validate(dims);
    if (job.arrival < prev_arrival) {
      throw std::invalid_argument("read_trace: arrivals not sorted");
    }
    prev_arrival = job.arrival;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<sim::Job> read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_trace_file: cannot open " + path);
  return read_trace(in);
}

}  // namespace hcrl::workload
