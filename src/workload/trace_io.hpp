// CSV trace persistence so real (e.g. Google) traces can be dropped in.
//
// Format: header `id,arrival,duration,cpu,memory,disk` (resource columns
// grow with D), one job per row, sorted by arrival.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/sim/types.hpp"

namespace hcrl::workload {

void write_trace(std::ostream& out, const std::vector<sim::Job>& jobs);
void write_trace_file(const std::string& path, const std::vector<sim::Job>& jobs);

/// Throws std::invalid_argument on malformed rows; enforces sorted arrivals.
std::vector<sim::Job> read_trace(std::istream& in);
std::vector<sim::Job> read_trace_file(const std::string& path);

}  // namespace hcrl::workload
