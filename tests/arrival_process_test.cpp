#include "src/workload/arrival_process.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace hcrl::workload {
namespace {

ArrivalProcessOptions plain_poisson(double rate) {
  ArrivalProcessOptions o;
  o.base_rate_hz = rate;
  o.diurnal_amplitude = 0.0;
  o.burst_multiplier = 1.0;
  return o;
}

TEST(ArrivalProcessOptions, Validation) {
  ArrivalProcessOptions o;
  EXPECT_NO_THROW(o.validate());
  o.base_rate_hz = 0.0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = ArrivalProcessOptions{};
  o.diurnal_amplitude = 1.0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = ArrivalProcessOptions{};
  o.burst_multiplier = 0.5;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = ArrivalProcessOptions{};
  o.mean_burst_s = 0.0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
}

TEST(ArrivalProcessOptions, EffectiveRateIncludesBurstDuty) {
  ArrivalProcessOptions o;
  o.base_rate_hz = 1.0;
  o.burst_multiplier = 3.0;
  o.mean_burst_s = 100.0;
  o.mean_calm_s = 300.0;
  // duty = 0.25 -> 1 + 0.25 * 2 = 1.5.
  EXPECT_NEAR(o.effective_rate(), 1.5, 1e-12);
}

TEST(ArrivalProcess, PlainPoissonRateMatches) {
  common::Rng rng(1);
  ArrivalProcess p(plain_poisson(0.5), rng);
  const auto arrivals = p.generate(20000.0);
  EXPECT_NEAR(static_cast<double>(arrivals.size()) / 20000.0, 0.5, 0.02);
}

TEST(ArrivalProcess, ArrivalsAreSortedAndPositive) {
  common::Rng rng(2);
  ArrivalProcess p(ArrivalProcessOptions{}, rng);
  const auto arrivals = p.generate(50000.0);
  ASSERT_FALSE(arrivals.empty());
  EXPECT_GT(arrivals.front(), 0.0);
  for (std::size_t i = 1; i < arrivals.size(); ++i) EXPECT_GT(arrivals[i], arrivals[i - 1]);
  EXPECT_LT(arrivals.back(), 50000.0);
}

TEST(ArrivalProcess, EffectiveRateWithBurstsMatches) {
  ArrivalProcessOptions o;
  o.base_rate_hz = 0.2;
  o.diurnal_amplitude = 0.0;
  o.burst_multiplier = 3.0;
  o.mean_burst_s = 200.0;
  o.mean_calm_s = 800.0;
  common::Rng rng(3);
  ArrivalProcess p(o, rng);
  const double horizon = 500000.0;
  const auto arrivals = p.generate(horizon);
  EXPECT_NEAR(static_cast<double>(arrivals.size()) / horizon, o.effective_rate(),
              0.05 * o.effective_rate());
}

TEST(ArrivalProcess, DiurnalModulationChangesRateOverDay) {
  ArrivalProcessOptions o;
  o.base_rate_hz = 1.0;
  o.diurnal_amplitude = 0.8;
  o.burst_multiplier = 1.0;
  common::Rng rng(4);
  ArrivalProcess p(o, rng);
  // rate() is deterministic given burst state (no bursts here):
  const double quarter = o.diurnal_period_s / 4.0;  // sin peak
  EXPECT_NEAR(p.rate(quarter), 1.8, 1e-9);
  EXPECT_NEAR(p.rate(3.0 * quarter), 0.2, 1e-9);
}

TEST(ArrivalProcess, NextAfterIsStrictlyIncreasing) {
  common::Rng rng(5);
  ArrivalProcess p(ArrivalProcessOptions{}, rng);
  double t = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double next = p.next_after(t);
    EXPECT_GT(next, t);
    t = next;
  }
}

TEST(ArrivalProcess, DeterministicGivenSeed) {
  ArrivalProcessOptions o;
  common::Rng a(6), b(6);
  ArrivalProcess pa(o, a), pb(o, b);
  const auto xa = pa.generate(10000.0);
  const auto xb = pb.generate(10000.0);
  ASSERT_EQ(xa.size(), xb.size());
  for (std::size_t i = 0; i < xa.size(); ++i) EXPECT_DOUBLE_EQ(xa[i], xb[i]);
}

}  // namespace
}  // namespace hcrl::workload
