#include "src/nn/autoencoder.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/nn/loss.hpp"

namespace hcrl::nn {
namespace {

Autoencoder make_ae(std::size_t in_dim, common::Rng& rng) {
  Autoencoder::Options opts;
  opts.encoder_dims = {8, 4};
  opts.learning_rate = 3e-3;
  return Autoencoder(in_dim, opts, rng);
}

std::vector<Vec> structured_batch(common::Rng& rng, std::size_t n, std::size_t dim) {
  // Low-rank structure: x = u * pattern1 + v * pattern2 (learnable by a
  // 4-dimensional code).
  std::vector<Vec> batch;
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.uniform(), v = rng.uniform();
    Vec x(dim);
    for (std::size_t d = 0; d < dim; ++d) {
      x[d] = u * (d % 2 == 0 ? 1.0 : 0.2) + v * (d % 3 == 0 ? 0.5 : 0.9);
    }
    batch.push_back(std::move(x));
  }
  return batch;
}

TEST(Autoencoder, Dimensions) {
  common::Rng rng(1);
  Autoencoder ae = make_ae(12, rng);
  EXPECT_EQ(ae.input_dim(), 12u);
  EXPECT_EQ(ae.code_dim(), 4u);
  EXPECT_EQ(ae.encode({Vec(12, 0.1)}).size(), 4u);
  EXPECT_EQ(ae.reconstruct({Vec(12, 0.1)}).size(), 12u);
}

TEST(Autoencoder, PaperDefaultDims) {
  // The paper's autoencoder: fully-connected ELU layers of 30 and 15 units.
  common::Rng rng(2);
  Autoencoder ae(50, Autoencoder::Options{}, rng);
  EXPECT_EQ(ae.code_dim(), 15u);
}

TEST(Autoencoder, TrainingReducesReconstructionError) {
  common::Rng rng(3);
  Autoencoder ae = make_ae(12, rng);
  auto data = structured_batch(rng, 64, 12);
  const double first = ae.train_batch(data);
  double last = first;
  for (int i = 0; i < 300; ++i) last = ae.train_batch(data);
  EXPECT_LT(last, first * 0.2) << "first=" << first << " last=" << last;
}

TEST(Autoencoder, EncodeTrainingBackwardRoundTrip) {
  common::Rng rng(4);
  Autoencoder ae = make_ae(6, rng);
  const Vec x(6, 0.5);
  const Vec code = ae.encode_training(x);
  ASSERT_EQ(code.size(), 4u);
  const Vec dx = ae.backward_through_encoder(Vec(4, 1.0));
  EXPECT_EQ(dx.size(), 6u);
}

TEST(Autoencoder, RepeatedEncodesAreLifo) {
  // K weight-shared autoencoder applications within one computation: encode
  // twice, backprop twice in reverse order — must not throw and must give
  // per-application input gradients.
  common::Rng rng(5);
  Autoencoder ae = make_ae(6, rng);
  ae.encode_training(Vec(6, 0.1));
  ae.encode_training(Vec(6, 0.9));
  const Vec dx2 = ae.backward_through_encoder(Vec(4, 1.0));
  const Vec dx1 = ae.backward_through_encoder(Vec(4, 1.0));
  EXPECT_EQ(dx2.size(), 6u);
  EXPECT_EQ(dx1.size(), 6u);
}

TEST(Autoencoder, InvalidConstruction) {
  common::Rng rng(6);
  EXPECT_THROW(Autoencoder(0, Autoencoder::Options{}, rng), std::invalid_argument);
  Autoencoder::Options no_layers;
  no_layers.encoder_dims = {};
  EXPECT_THROW(Autoencoder(4, no_layers, rng), std::invalid_argument);
}

TEST(Autoencoder, TrainBatchValidation) {
  common::Rng rng(7);
  Autoencoder ae = make_ae(6, rng);
  EXPECT_THROW(ae.train_batch({}), std::invalid_argument);
  EXPECT_THROW(ae.train_batch({Vec(5, 0.0)}), std::invalid_argument);
}

TEST(Autoencoder, ParamCountMatchesArchitecture) {
  common::Rng rng(8);
  Autoencoder ae = make_ae(12, rng);
  // encoder: 12->8 (104), 8->4 (36); decoder: 4->8 (40), 8->12 (108).
  EXPECT_EQ(ae.param_count(), 104u + 36u + 40u + 108u);
}

}  // namespace
}  // namespace hcrl::nn
