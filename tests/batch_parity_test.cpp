// Property tests pinning the batched GEMM execution path to the per-sample
// path: Network::forward_batch on N stacked inputs must match N per-sample
// forward() calls (and likewise for backward gradients, LSTM steps/BPTT, the
// autoencoder training step, the grouped Q-network sweep, and the batched
// DQN train step) to 1e-12, across random shapes, activations and seeds.
//
// Also the precision gates of the f32 compute mode: the float instantiation
// of the substrate must track the double one to 1e-4 relative (forward,
// backward gradients, LSTM) and a DQN agent trained at f32 must pick the
// same greedy actions as its f64 twin; and the threaded GEMM path must be
// BIT-identical to serial at any thread count.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "src/common/rng.hpp"
#include "src/nn/autoencoder.hpp"
#include "src/nn/init.hpp"
#include "src/nn/loss.hpp"
#include "src/nn/lstm.hpp"
#include "src/nn/network.hpp"
#include "src/nn/precision.hpp"
#include "src/rl/dqn.hpp"

namespace hcrl::nn {
namespace {

constexpr double kTol = 1e-12;

Vec random_vec(std::size_t n, common::Rng& rng) {
  Vec v(n);
  for (auto& x : v) x = rng.uniform(-2.0, 2.0);
  return v;
}

// All segments (values and gradients) of two parameter lists must agree.
void expect_params_close(const std::vector<ParamBlockPtr>& a, const std::vector<ParamBlockPtr>& b,
                         double tol, const char* what) {
  std::vector<ParamSegment> sa, sb;
  for (const auto& p : a) p->append_segments(sa);
  for (const auto& p : b) p->append_segments(sb);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t s = 0; s < sa.size(); ++s) {
    ASSERT_EQ(sa[s].n, sb[s].n);
    for (std::size_t i = 0; i < sa[s].n; ++i) {
      EXPECT_NEAR(sa[s].value[i], sb[s].value[i], tol)
          << what << ": value segment " << s << " index " << i;
      EXPECT_NEAR(sa[s].grad[i], sb[s].grad[i], tol)
          << what << ": grad segment " << s << " index " << i;
    }
  }
}

Network random_network(std::size_t in, common::Rng& rng, std::size_t* out_dim) {
  static const Activation kKinds[] = {Activation::kIdentity, Activation::kRelu,
                                      Activation::kElu, Activation::kTanh,
                                      Activation::kSigmoid};
  Network net;
  const std::size_t layers = 1 + static_cast<std::size_t>(rng.uniform_int(0, 2));
  std::size_t prev = in;
  for (std::size_t l = 0; l < layers; ++l) {
    const std::size_t next = 1 + static_cast<std::size_t>(rng.uniform_int(0, 15));
    const Activation act = kKinds[rng.uniform_int(0, 4)];
    net.add_dense(prev, next, act, rng);
    prev = next;
  }
  *out_dim = prev;
  return net;
}

TEST(BatchParity, NetworkForwardMatchesPerSample) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    common::Rng rng(seed);
    const std::size_t in = 1 + static_cast<std::size_t>(rng.uniform_int(0, 11));
    const std::size_t batch = 1 + static_cast<std::size_t>(rng.uniform_int(0, 32));
    std::size_t out = 0;
    Network net = random_network(in, rng, &out);

    std::vector<Vec> xs;
    for (std::size_t b = 0; b < batch; ++b) xs.push_back(random_vec(in, rng));
    const Matrix Y = net.predict_batch(Matrix::from_rows(xs));
    ASSERT_EQ(Y.rows(), batch);
    ASSERT_EQ(Y.cols(), out);
    for (std::size_t b = 0; b < batch; ++b) {
      const Vec y = net.predict(xs[b]);
      for (std::size_t j = 0; j < out; ++j) {
        EXPECT_NEAR(Y(b, j), y[j], kTol) << "seed " << seed << " row " << b;
      }
    }
  }
}

TEST(BatchParity, NetworkBackwardGradientsMatchPerSample) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const std::size_t in = 2 + (seed % 7);
    const std::size_t batch = 1 + static_cast<std::size_t>(seed * 5 % 29);
    // Two identically-initialized networks: one runs the batched pass, the
    // other the per-sample loop.
    common::Rng rng_a(seed * 97), rng_b(seed * 97);
    std::size_t out_a = 0, out_b = 0;
    Network net_a = random_network(in, rng_a, &out_a);
    Network net_b = random_network(in, rng_b, &out_b);
    ASSERT_EQ(out_a, out_b);

    common::Rng data(seed * 1337);
    std::vector<Vec> xs, dys;
    for (std::size_t b = 0; b < batch; ++b) {
      xs.push_back(random_vec(in, data));
      dys.push_back(random_vec(out_a, data));
    }

    net_a.zero_grad();
    net_a.forward_batch(Matrix::from_rows(xs));
    const Matrix dX = net_a.backward_batch(Matrix::from_rows(dys));

    net_b.zero_grad();
    std::vector<Vec> dx_rows;
    for (std::size_t b = 0; b < batch; ++b) {
      net_b.forward(xs[b]);
      dx_rows.push_back(net_b.backward(dys[b]));
    }

    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t j = 0; j < in; ++j) {
        EXPECT_NEAR(dX(b, j), dx_rows[b][j], kTol) << "seed " << seed << " row " << b;
      }
    }
    expect_params_close(net_a.params(), net_b.params(), kTol, "network backward");
  }
}

TEST(BatchParity, LstmStepsMatchPerSampleInstances) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    common::Rng rng(seed * 11);
    const std::size_t in = 1 + static_cast<std::size_t>(rng.uniform_int(0, 3));
    const std::size_t hidden = 1 + static_cast<std::size_t>(rng.uniform_int(0, 9));
    const std::size_t batch = 1 + static_cast<std::size_t>(rng.uniform_int(0, 15));
    const std::size_t steps = 1 + static_cast<std::size_t>(rng.uniform_int(0, 6));

    auto params = std::make_shared<LstmParams>(hidden, in);
    init_lstm(*params, rng);

    // batch parallel sequences through one batched cell...
    Lstm batched(params);
    batched.reset_batch(batch);
    // ...versus `batch` independent per-sample cells sharing the parameters.
    std::vector<Lstm> singles;
    for (std::size_t b = 0; b < batch; ++b) singles.emplace_back(params);

    for (std::size_t t = 0; t < steps; ++t) {
      std::vector<Vec> xs;
      for (std::size_t b = 0; b < batch; ++b) xs.push_back(random_vec(in, rng));
      const Matrix H = batched.step_batch(Matrix::from_rows(xs));
      for (std::size_t b = 0; b < batch; ++b) {
        const Vec h = singles[b].step(xs[b]);
        for (std::size_t j = 0; j < hidden; ++j) {
          EXPECT_NEAR(H(b, j), h[j], kTol) << "seed " << seed << " t " << t << " row " << b;
        }
      }
    }
    for (auto& s : singles) s.reset();  // drop caches; no backward here
  }
}

TEST(BatchParity, LstmBpttGradientsMatchPerSample) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    common::Rng rng(seed * 29);
    const std::size_t in = 1 + static_cast<std::size_t>(rng.uniform_int(0, 2));
    const std::size_t hidden = 2 + static_cast<std::size_t>(rng.uniform_int(0, 6));
    const std::size_t batch = 2 + static_cast<std::size_t>(rng.uniform_int(0, 6));
    const std::size_t steps = 2 + static_cast<std::size_t>(rng.uniform_int(0, 4));

    auto params_a = std::make_shared<LstmParams>(hidden, in);
    common::Rng init_rng(seed * 71);
    init_lstm(*params_a, init_rng);
    auto params_b = std::make_shared<LstmParams>(hidden, in);
    common::Rng init_rng2(seed * 71);
    init_lstm(*params_b, init_rng2);

    std::vector<std::vector<Vec>> xs(steps), dhs(steps);
    for (std::size_t t = 0; t < steps; ++t) {
      for (std::size_t b = 0; b < batch; ++b) {
        xs[t].push_back(random_vec(in, rng));
        dhs[t].push_back(random_vec(hidden, rng));
      }
    }

    // Batched: one cell carrying all sequences.
    params_a->zero_grad();
    Lstm batched(params_a);
    std::vector<Matrix> Xs;
    for (std::size_t t = 0; t < steps; ++t) Xs.push_back(Matrix::from_rows(xs[t]));
    batched.forward_batch(Xs);
    std::vector<Matrix> dH;
    for (std::size_t t = 0; t < steps; ++t) dH.push_back(Matrix::from_rows(dhs[t]));
    const std::vector<Matrix> dX = batched.backward_batch(dH);

    // Per-sample: one cell per sequence, gradients summed into params_b.
    params_b->zero_grad();
    std::vector<Vec> dx_single(batch);  // per sequence: dx flattened over time
    for (std::size_t b = 0; b < batch; ++b) {
      Lstm single(params_b);
      std::vector<Vec> seq;
      for (std::size_t t = 0; t < steps; ++t) seq.push_back(xs[t][b]);
      single.forward(seq);
      std::vector<Vec> dh;
      for (std::size_t t = 0; t < steps; ++t) dh.push_back(dhs[t][b]);
      dx_single[b] = [&] {
        auto v = single.backward(dh);
        Vec flat;
        for (const auto& d : v) flat.insert(flat.end(), d.begin(), d.end());
        return flat;
      }();
    }

    for (std::size_t t = 0; t < steps; ++t) {
      for (std::size_t b = 0; b < batch; ++b) {
        for (std::size_t j = 0; j < in; ++j) {
          EXPECT_NEAR(dX[t](b, j), dx_single[b][t * in + j], kTol)
              << "seed " << seed << " t " << t << " row " << b;
        }
      }
    }
    expect_params_close({params_a}, {params_b}, kTol, "lstm bptt");
  }
}

TEST(BatchParity, AutoencoderBatchedTrainMatchesPerSampleReference) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const std::size_t dim = 6 + (seed % 5);
    const std::size_t batch = 3 + (seed % 6);
    Autoencoder::Options opts;
    common::Rng rng_a(seed * 13), rng_b(seed * 13);
    Autoencoder ae(dim, opts, rng_a);

    // Reference: the same architecture trained by an explicit per-sample
    // loop over forward/backward (the seed implementation of train_batch).
    Autoencoder ref(dim, opts, rng_b);

    common::Rng data(seed * 101);
    std::vector<Vec> samples;
    for (std::size_t b = 0; b < batch; ++b) samples.push_back(random_vec(dim, data));

    const double batched_loss = ae.train_batch(samples);

    Adam ref_opt(ref.params(), Adam::Options{.lr = opts.learning_rate});
    ref_opt.zero_grad();
    double total = 0.0;
    const double inv_n = 1.0 / static_cast<double>(batch);
    for (const Vec& x : samples) {
      Vec code = ref.encoder().forward(x);
      Vec recon = ref.decoder().forward(code);
      LossResult loss = mse_loss(recon, x);
      total += loss.value;
      scale_in_place(loss.grad, inv_n);
      Vec dcode = ref.decoder().backward(loss.grad);
      ref.encoder().backward(dcode);
    }
    clip_grad_norm(ref.params(), opts.grad_clip);
    ref_opt.step();

    EXPECT_NEAR(batched_loss, total * inv_n, kTol);
    expect_params_close(ae.params(), ref.params(), kTol, "autoencoder train");
  }
}

// ---- f32-vs-f64 precision gates ------------------------------------------

// |a - b| <= tol * max(1, |b|): relative against the f64 reference, with an
// absolute floor so near-zero values don't demand absolute f32 exactness.
void expect_rel_close(double a, double b, double tol, const char* what) {
  EXPECT_LE(std::abs(a - b), tol * std::max(1.0, std::abs(b))) << what << ": " << a << " vs " << b;
}

constexpr double kPrecTol = 1e-4;

struct NetGeometry {
  std::vector<std::size_t> dims;       // layer widths incl. input
  std::vector<Activation> activations;  // one per dense layer
};

NetGeometry random_geometry(std::uint64_t seed) {
  static const Activation kKinds[] = {Activation::kIdentity, Activation::kRelu,
                                      Activation::kElu, Activation::kTanh,
                                      Activation::kSigmoid};
  common::Rng rng(seed * 7919);
  NetGeometry g;
  g.dims.push_back(1 + static_cast<std::size_t>(rng.uniform_int(0, 11)));
  const std::size_t layers = 1 + static_cast<std::size_t>(rng.uniform_int(0, 2));
  for (std::size_t l = 0; l < layers; ++l) {
    g.dims.push_back(1 + static_cast<std::size_t>(rng.uniform_int(0, 15)));
    g.activations.push_back(kKinds[rng.uniform_int(0, 4)]);
  }
  return g;
}

// Both precisions consume the identical double-valued init stream, so the
// f32 net holds exactly the rounded weights of the f64 net.
template <class S>
NetworkT<S> build_geometry_net(const NetGeometry& g, std::uint64_t weight_seed) {
  common::Rng rng(weight_seed);
  NetworkT<S> net;
  for (std::size_t l = 0; l + 1 < g.dims.size(); ++l) {
    net.add_dense(g.dims[l], g.dims[l + 1], g.activations[l], rng);
  }
  return net;
}

TEST(PrecisionParity, NetworkForwardF32TracksF64) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const NetGeometry g = random_geometry(seed);
    NetworkT<double> net64 = build_geometry_net<double>(g, seed * 131);
    NetworkT<float> net32 = build_geometry_net<float>(g, seed * 131);

    common::Rng data(seed * 977);
    const std::size_t batch = 1 + static_cast<std::size_t>(data.uniform_int(0, 24));
    std::vector<Vec> xs;
    for (std::size_t b = 0; b < batch; ++b) xs.push_back(random_vec(g.dims.front(), data));
    std::vector<VecT<float>> xs32;
    for (const Vec& x : xs) xs32.push_back(convert_vec<float>(x));

    const MatrixT<double> Y64 = net64.predict_batch(MatrixT<double>::from_rows(xs));
    const MatrixT<float> Y32 = net32.predict_batch(MatrixT<float>::from_rows(xs32));
    ASSERT_TRUE(Y64.rows() == Y32.rows() && Y64.cols() == Y32.cols());
    for (std::size_t b = 0; b < Y64.rows(); ++b) {
      for (std::size_t j = 0; j < Y64.cols(); ++j) {
        expect_rel_close(static_cast<double>(Y32(b, j)), Y64(b, j), kPrecTol, "forward");
      }
    }
  }
}

TEST(PrecisionParity, NetworkBackwardGradientsF32TrackF64) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const NetGeometry g = random_geometry(seed);
    NetworkT<double> net64 = build_geometry_net<double>(g, seed * 577);
    NetworkT<float> net32 = build_geometry_net<float>(g, seed * 577);

    common::Rng data(seed * 271);
    const std::size_t batch = 1 + static_cast<std::size_t>(data.uniform_int(0, 16));
    std::vector<Vec> xs, dys;
    for (std::size_t b = 0; b < batch; ++b) {
      xs.push_back(random_vec(g.dims.front(), data));
      dys.push_back(random_vec(g.dims.back(), data));
    }
    std::vector<VecT<float>> xs32, dys32;
    for (const Vec& x : xs) xs32.push_back(convert_vec<float>(x));
    for (const Vec& d : dys) dys32.push_back(convert_vec<float>(d));

    net64.zero_grad();
    net64.forward_batch(MatrixT<double>::from_rows(xs));
    net64.backward_batch(MatrixT<double>::from_rows(dys));
    net32.zero_grad();
    net32.forward_batch(MatrixT<float>::from_rows(xs32));
    net32.backward_batch(MatrixT<float>::from_rows(dys32));

    std::vector<ParamSegmentT<double>> s64 = gather_segments(net64.params());
    std::vector<ParamSegmentT<float>> s32 = gather_segments(net32.params());
    ASSERT_EQ(s64.size(), s32.size());
    for (std::size_t s = 0; s < s64.size(); ++s) {
      ASSERT_EQ(s64[s].n, s32[s].n);
      for (std::size_t i = 0; i < s64[s].n; ++i) {
        expect_rel_close(static_cast<double>(s32[s].grad[i]), s64[s].grad[i], kPrecTol,
                         "backward grad");
      }
    }
  }
}

TEST(PrecisionParity, LstmF32TracksF64ThroughStepsAndBptt) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    common::Rng geo(seed * 43);
    const std::size_t in = 1 + static_cast<std::size_t>(geo.uniform_int(0, 2));
    const std::size_t hidden = 2 + static_cast<std::size_t>(geo.uniform_int(0, 8));
    const std::size_t batch = 1 + static_cast<std::size_t>(geo.uniform_int(0, 7));
    const std::size_t steps = 2 + static_cast<std::size_t>(geo.uniform_int(0, 4));

    auto params64 = std::make_shared<LstmParamsT<double>>(hidden, in);
    auto params32 = std::make_shared<LstmParamsT<float>>(hidden, in);
    common::Rng init64(seed * 17), init32(seed * 17);
    init_lstm(*params64, init64);
    init_lstm(*params32, init32);
    params64->zero_grad();
    params32->zero_grad();

    LstmT<double> lstm64(params64);
    LstmT<float> lstm32(params32);

    common::Rng data(seed * 601);
    std::vector<MatrixT<double>> Xs64, dH64;
    std::vector<MatrixT<float>> Xs32, dH32;
    for (std::size_t t = 0; t < steps; ++t) {
      std::vector<Vec> xs, dhs;
      std::vector<VecT<float>> xs32, dhs32;
      for (std::size_t b = 0; b < batch; ++b) {
        xs.push_back(random_vec(in, data));
        dhs.push_back(random_vec(hidden, data));
        xs32.push_back(convert_vec<float>(xs.back()));
        dhs32.push_back(convert_vec<float>(dhs.back()));
      }
      Xs64.push_back(MatrixT<double>::from_rows(xs));
      dH64.push_back(MatrixT<double>::from_rows(dhs));
      Xs32.push_back(MatrixT<float>::from_rows(xs32));
      dH32.push_back(MatrixT<float>::from_rows(dhs32));
    }

    const auto hs64 = lstm64.forward_batch(Xs64);
    const auto hs32 = lstm32.forward_batch(Xs32);
    for (std::size_t t = 0; t < steps; ++t) {
      for (std::size_t b = 0; b < batch; ++b) {
        for (std::size_t j = 0; j < hidden; ++j) {
          expect_rel_close(static_cast<double>(hs32[t](b, j)), hs64[t](b, j), kPrecTol,
                           "lstm hidden");
        }
      }
    }

    lstm64.backward_batch(dH64);
    lstm32.backward_batch(dH32);
    std::vector<ParamSegmentT<double>> s64;
    std::vector<ParamSegmentT<float>> s32;
    params64->append_segments(s64);
    params32->append_segments(s32);
    ASSERT_EQ(s64.size(), s32.size());
    for (std::size_t s = 0; s < s64.size(); ++s) {
      ASSERT_EQ(s64[s].n, s32[s].n);
      for (std::size_t i = 0; i < s64[s].n; ++i) {
        expect_rel_close(static_cast<double>(s32[s].grad[i]), s64[s].grad[i], kPrecTol,
                         "lstm bptt grad");
      }
    }
  }
}

// ---- threaded GEMM: bit-identity against serial ---------------------------

template <class S>
MatrixT<S> random_matrix(std::size_t r, std::size_t c, common::Rng& rng) {
  MatrixT<S> m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<S>(rng.uniform(-1.5, 1.5));
  }
  return m;
}

template <class S>
void expect_bit_identical(const MatrixT<S>& a, const MatrixT<S>& b, const char* what) {
  ASSERT_TRUE(a.same_shape(b)) << what;
  ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(S)), 0) << what;
}

// Row-blocking the M dimension never splits an output element's k reduction
// across threads, so every element is computed by the identical serial code
// path: results must match BIT for bit, at any thread count, kernels and
// precisions alike (this is what keeps ParallelRunner runs reproducible when
// HCRL_GEMM_THREADS > 1).
template <class S>
void check_threaded_gemm_bit_identical() {
  struct Shape {
    std::size_t m, k, n;
  };
  // Includes shapes large enough to engage the pool and to cross the L2
  // panel blocking thresholds of both precisions.
  const Shape shapes[] = {{64, 64, 64}, {33, 17, 9}, {96, 300, 40}, {128, 260, 300}};
  common::Rng rng(20260729);
  for (const Shape& sh : shapes) {
    const MatrixT<S> A = random_matrix<S>(sh.m, sh.k, rng);
    const MatrixT<S> B = random_matrix<S>(sh.k, sh.n, rng);
    const MatrixT<S> At = random_matrix<S>(sh.k, sh.m, rng);
    const MatrixT<S> Bt = random_matrix<S>(sh.n, sh.k, rng);
    const MatrixT<S> Acc = random_matrix<S>(sh.m, sh.n, rng);

    set_gemm_threads(1);
    MatrixT<S> c1, d1, e1, f1 = Acc;
    gemm(A, B, c1);
    gemm_tn(At, B, d1);
    gemm_nt(A, Bt, e1);
    gemm(A, B, f1, /*accumulate=*/true);

    for (std::size_t threads : {2u, 4u, 7u}) {
      set_gemm_threads(threads);
      MatrixT<S> c2, d2, e2, f2 = Acc;
      gemm(A, B, c2);
      gemm_tn(At, B, d2);
      gemm_nt(A, Bt, e2);
      gemm(A, B, f2, /*accumulate=*/true);
      expect_bit_identical(c1, c2, "gemm");
      expect_bit_identical(d1, d2, "gemm_tn");
      expect_bit_identical(e1, e2, "gemm_nt");
      expect_bit_identical(f1, f2, "gemm accumulate");
    }
    set_gemm_threads(1);
  }
}

TEST(GemmThreads, ThreadedBitIdenticalToSerialF64) {
  check_threaded_gemm_bit_identical<double>();
}

TEST(GemmThreads, ThreadedBitIdenticalToSerialF32) {
  check_threaded_gemm_bit_identical<float>();
}

TEST(GemmThreads, KnobClampsAndReads) {
  const std::size_t before = gemm_threads();
  set_gemm_threads(0);
  EXPECT_EQ(gemm_threads(), 1u);
  set_gemm_threads(3);
  EXPECT_EQ(gemm_threads(), 3u);
  set_gemm_threads(1 << 20);
  EXPECT_EQ(gemm_threads(), 64u);
  set_gemm_threads(before > 0 ? before : 1);
}

}  // namespace
}  // namespace hcrl::nn

namespace hcrl::rl {
namespace {

Transition random_transition(std::size_t state_dim, std::size_t n_actions, common::Rng& rng) {
  Transition t;
  t.state.resize(state_dim);
  t.next_state.resize(state_dim);
  for (auto& v : t.state) v = rng.uniform(-1.0, 1.0);
  for (auto& v : t.next_state) v = rng.uniform(-1.0, 1.0);
  t.action = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n_actions) - 1));
  t.reward_rate = rng.uniform(-2.0, 0.0);
  t.tau = rng.uniform(0.1, 5.0);
  return t;
}

// Same seed + same replay contents => identical parameters after K train
// steps, whether the minibatch is processed by the batched GEMM path or the
// per-sample seed loop — at either precision (the accumulation-order
// argument is Scalar-independent).
TEST(BatchParity, DqnBatchedTrainStepIsDeterministicallyEquivalent) {
  for (const nn::Precision precision : {nn::Precision::kF64, nn::Precision::kF32}) {
    for (const bool double_q : {false, true}) {
      DqnAgent::Options base;
      base.hidden_dims = {24, 16};
      base.batch_size = 32;
      base.min_replay_before_training = 64;
      base.train_interval = 1000000;  // never train inside observe()
      base.target_sync_interval = 1000000;
      base.double_q = double_q;
      base.precision = precision;

      DqnAgent::Options batched = base;
      batched.batched_train = true;
      DqnAgent::Options per_sample = base;
      per_sample.batched_train = false;

      const std::size_t state_dim = 9, n_actions = 5;
      common::Rng rng_a(4242), rng_b(4242);
      DqnAgent agent_a(state_dim, n_actions, batched, rng_a);
      DqnAgent agent_b(state_dim, n_actions, per_sample, rng_b);

      common::Rng data_a(7), data_b(7);
      for (int i = 0; i < 200; ++i) {
        agent_a.observe(random_transition(state_dim, n_actions, data_a));
        agent_b.observe(random_transition(state_dim, n_actions, data_b));
      }

      for (int k = 0; k < 25; ++k) {
        const double la = agent_a.train_step();
        const double lb = agent_b.train_step();
        EXPECT_NEAR(la, lb, 1e-12) << "precision=" << nn::to_string(precision)
                                   << " double_q=" << double_q << " step " << k;
      }
      // Compare the full online-network parameter vectors element by element
      // (param_values works at either precision).
      const std::vector<double> va = agent_a.param_values();
      const std::vector<double> vb = agent_b.param_values();
      ASSERT_EQ(va.size(), vb.size());
      for (std::size_t i = 0; i < va.size(); ++i) {
        EXPECT_NEAR(va[i], vb[i], 1e-12) << "precision=" << nn::to_string(precision)
                                         << " double_q=" << double_q << " index " << i;
      }
    }
  }
}

// f32-vs-f64 gate on the full training loop: two agents fed the identical
// transition stream and minibatch schedule, differing only in Scalar type,
// must agree on (almost all) greedy actions after a 25-step training run —
// the decision-level statement of "Q-learning is noise-tolerant".
TEST(PrecisionParity, DqnGreedyActionsAgreeAcrossPrecisionsAfterTraining) {
  DqnAgent::Options base;
  base.hidden_dims = {32};
  base.batch_size = 32;
  base.min_replay_before_training = 64;
  base.train_interval = 1000000;
  base.target_sync_interval = 1000000;

  DqnAgent::Options f64 = base;
  f64.precision = nn::Precision::kF64;
  DqnAgent::Options f32 = base;
  f32.precision = nn::Precision::kF32;

  const std::size_t state_dim = 12, n_actions = 6;
  common::Rng rng_a(90210), rng_b(90210);
  DqnAgent agent64(state_dim, n_actions, f64, rng_a);
  DqnAgent agent32(state_dim, n_actions, f32, rng_b);

  common::Rng data_a(31), data_b(31);
  for (int i = 0; i < 256; ++i) {
    agent64.observe(random_transition(state_dim, n_actions, data_a));
    agent32.observe(random_transition(state_dim, n_actions, data_b));
  }
  for (int k = 0; k < 25; ++k) {
    const double l64 = agent64.train_step();
    const double l32 = agent32.train_step();
    // Same minibatch schedule (same fork seed), so the losses track closely.
    EXPECT_LE(std::abs(l64 - l32), 1e-3 * std::max(1.0, std::abs(l64))) << "step " << k;
  }

  common::Rng probe(777);
  int agree = 0;
  const int probes = 200;
  for (int i = 0; i < probes; ++i) {
    nn::Vec s(state_dim);
    for (auto& v : s) v = probe.uniform(-1.0, 1.0);
    agree += agent64.act_greedy(s) == agent32.act_greedy(s) ? 1 : 0;
  }
  // Ties between near-equal Q-values may flip under f32 rounding; anything
  // beyond a stray handful of states means the precisions diverged.
  EXPECT_GE(agree, probes * 95 / 100) << "agreement " << agree << "/" << probes;
}

}  // namespace
}  // namespace hcrl::rl
