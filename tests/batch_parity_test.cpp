// Property tests pinning the batched GEMM execution path to the per-sample
// path: Network::forward_batch on N stacked inputs must match N per-sample
// forward() calls (and likewise for backward gradients, LSTM steps/BPTT, the
// autoencoder training step, the grouped Q-network sweep, and the batched
// DQN train step) to 1e-12, across random shapes, activations and seeds.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/rng.hpp"
#include "src/nn/autoencoder.hpp"
#include "src/nn/init.hpp"
#include "src/nn/loss.hpp"
#include "src/nn/lstm.hpp"
#include "src/nn/network.hpp"
#include "src/rl/dqn.hpp"

namespace hcrl::nn {
namespace {

constexpr double kTol = 1e-12;

Vec random_vec(std::size_t n, common::Rng& rng) {
  Vec v(n);
  for (auto& x : v) x = rng.uniform(-2.0, 2.0);
  return v;
}

// All segments (values and gradients) of two parameter lists must agree.
void expect_params_close(const std::vector<ParamBlockPtr>& a, const std::vector<ParamBlockPtr>& b,
                         double tol, const char* what) {
  std::vector<ParamSegment> sa, sb;
  for (const auto& p : a) p->append_segments(sa);
  for (const auto& p : b) p->append_segments(sb);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t s = 0; s < sa.size(); ++s) {
    ASSERT_EQ(sa[s].n, sb[s].n);
    for (std::size_t i = 0; i < sa[s].n; ++i) {
      EXPECT_NEAR(sa[s].value[i], sb[s].value[i], tol)
          << what << ": value segment " << s << " index " << i;
      EXPECT_NEAR(sa[s].grad[i], sb[s].grad[i], tol)
          << what << ": grad segment " << s << " index " << i;
    }
  }
}

Network random_network(std::size_t in, common::Rng& rng, std::size_t* out_dim) {
  static const Activation kKinds[] = {Activation::kIdentity, Activation::kRelu,
                                      Activation::kElu, Activation::kTanh,
                                      Activation::kSigmoid};
  Network net;
  const std::size_t layers = 1 + static_cast<std::size_t>(rng.uniform_int(0, 2));
  std::size_t prev = in;
  for (std::size_t l = 0; l < layers; ++l) {
    const std::size_t next = 1 + static_cast<std::size_t>(rng.uniform_int(0, 15));
    const Activation act = kKinds[rng.uniform_int(0, 4)];
    net.add_dense(prev, next, act, rng);
    prev = next;
  }
  *out_dim = prev;
  return net;
}

TEST(BatchParity, NetworkForwardMatchesPerSample) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    common::Rng rng(seed);
    const std::size_t in = 1 + static_cast<std::size_t>(rng.uniform_int(0, 11));
    const std::size_t batch = 1 + static_cast<std::size_t>(rng.uniform_int(0, 32));
    std::size_t out = 0;
    Network net = random_network(in, rng, &out);

    std::vector<Vec> xs;
    for (std::size_t b = 0; b < batch; ++b) xs.push_back(random_vec(in, rng));
    const Matrix Y = net.predict_batch(Matrix::from_rows(xs));
    ASSERT_EQ(Y.rows(), batch);
    ASSERT_EQ(Y.cols(), out);
    for (std::size_t b = 0; b < batch; ++b) {
      const Vec y = net.predict(xs[b]);
      for (std::size_t j = 0; j < out; ++j) {
        EXPECT_NEAR(Y(b, j), y[j], kTol) << "seed " << seed << " row " << b;
      }
    }
  }
}

TEST(BatchParity, NetworkBackwardGradientsMatchPerSample) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const std::size_t in = 2 + (seed % 7);
    const std::size_t batch = 1 + static_cast<std::size_t>(seed * 5 % 29);
    // Two identically-initialized networks: one runs the batched pass, the
    // other the per-sample loop.
    common::Rng rng_a(seed * 97), rng_b(seed * 97);
    std::size_t out_a = 0, out_b = 0;
    Network net_a = random_network(in, rng_a, &out_a);
    Network net_b = random_network(in, rng_b, &out_b);
    ASSERT_EQ(out_a, out_b);

    common::Rng data(seed * 1337);
    std::vector<Vec> xs, dys;
    for (std::size_t b = 0; b < batch; ++b) {
      xs.push_back(random_vec(in, data));
      dys.push_back(random_vec(out_a, data));
    }

    net_a.zero_grad();
    net_a.forward_batch(Matrix::from_rows(xs));
    const Matrix dX = net_a.backward_batch(Matrix::from_rows(dys));

    net_b.zero_grad();
    std::vector<Vec> dx_rows;
    for (std::size_t b = 0; b < batch; ++b) {
      net_b.forward(xs[b]);
      dx_rows.push_back(net_b.backward(dys[b]));
    }

    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t j = 0; j < in; ++j) {
        EXPECT_NEAR(dX(b, j), dx_rows[b][j], kTol) << "seed " << seed << " row " << b;
      }
    }
    expect_params_close(net_a.params(), net_b.params(), kTol, "network backward");
  }
}

TEST(BatchParity, LstmStepsMatchPerSampleInstances) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    common::Rng rng(seed * 11);
    const std::size_t in = 1 + static_cast<std::size_t>(rng.uniform_int(0, 3));
    const std::size_t hidden = 1 + static_cast<std::size_t>(rng.uniform_int(0, 9));
    const std::size_t batch = 1 + static_cast<std::size_t>(rng.uniform_int(0, 15));
    const std::size_t steps = 1 + static_cast<std::size_t>(rng.uniform_int(0, 6));

    auto params = std::make_shared<LstmParams>(hidden, in);
    init_lstm(*params, rng);

    // batch parallel sequences through one batched cell...
    Lstm batched(params);
    batched.reset_batch(batch);
    // ...versus `batch` independent per-sample cells sharing the parameters.
    std::vector<Lstm> singles;
    for (std::size_t b = 0; b < batch; ++b) singles.emplace_back(params);

    for (std::size_t t = 0; t < steps; ++t) {
      std::vector<Vec> xs;
      for (std::size_t b = 0; b < batch; ++b) xs.push_back(random_vec(in, rng));
      const Matrix H = batched.step_batch(Matrix::from_rows(xs));
      for (std::size_t b = 0; b < batch; ++b) {
        const Vec h = singles[b].step(xs[b]);
        for (std::size_t j = 0; j < hidden; ++j) {
          EXPECT_NEAR(H(b, j), h[j], kTol) << "seed " << seed << " t " << t << " row " << b;
        }
      }
    }
    for (auto& s : singles) s.reset();  // drop caches; no backward here
  }
}

TEST(BatchParity, LstmBpttGradientsMatchPerSample) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    common::Rng rng(seed * 29);
    const std::size_t in = 1 + static_cast<std::size_t>(rng.uniform_int(0, 2));
    const std::size_t hidden = 2 + static_cast<std::size_t>(rng.uniform_int(0, 6));
    const std::size_t batch = 2 + static_cast<std::size_t>(rng.uniform_int(0, 6));
    const std::size_t steps = 2 + static_cast<std::size_t>(rng.uniform_int(0, 4));

    auto params_a = std::make_shared<LstmParams>(hidden, in);
    common::Rng init_rng(seed * 71);
    init_lstm(*params_a, init_rng);
    auto params_b = std::make_shared<LstmParams>(hidden, in);
    common::Rng init_rng2(seed * 71);
    init_lstm(*params_b, init_rng2);

    std::vector<std::vector<Vec>> xs(steps), dhs(steps);
    for (std::size_t t = 0; t < steps; ++t) {
      for (std::size_t b = 0; b < batch; ++b) {
        xs[t].push_back(random_vec(in, rng));
        dhs[t].push_back(random_vec(hidden, rng));
      }
    }

    // Batched: one cell carrying all sequences.
    params_a->zero_grad();
    Lstm batched(params_a);
    std::vector<Matrix> Xs;
    for (std::size_t t = 0; t < steps; ++t) Xs.push_back(Matrix::from_rows(xs[t]));
    batched.forward_batch(Xs);
    std::vector<Matrix> dH;
    for (std::size_t t = 0; t < steps; ++t) dH.push_back(Matrix::from_rows(dhs[t]));
    const std::vector<Matrix> dX = batched.backward_batch(dH);

    // Per-sample: one cell per sequence, gradients summed into params_b.
    params_b->zero_grad();
    std::vector<Vec> dx_single(batch);  // per sequence: dx flattened over time
    for (std::size_t b = 0; b < batch; ++b) {
      Lstm single(params_b);
      std::vector<Vec> seq;
      for (std::size_t t = 0; t < steps; ++t) seq.push_back(xs[t][b]);
      single.forward(seq);
      std::vector<Vec> dh;
      for (std::size_t t = 0; t < steps; ++t) dh.push_back(dhs[t][b]);
      dx_single[b] = [&] {
        auto v = single.backward(dh);
        Vec flat;
        for (const auto& d : v) flat.insert(flat.end(), d.begin(), d.end());
        return flat;
      }();
    }

    for (std::size_t t = 0; t < steps; ++t) {
      for (std::size_t b = 0; b < batch; ++b) {
        for (std::size_t j = 0; j < in; ++j) {
          EXPECT_NEAR(dX[t](b, j), dx_single[b][t * in + j], kTol)
              << "seed " << seed << " t " << t << " row " << b;
        }
      }
    }
    expect_params_close({params_a}, {params_b}, kTol, "lstm bptt");
  }
}

TEST(BatchParity, AutoencoderBatchedTrainMatchesPerSampleReference) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const std::size_t dim = 6 + (seed % 5);
    const std::size_t batch = 3 + (seed % 6);
    Autoencoder::Options opts;
    common::Rng rng_a(seed * 13), rng_b(seed * 13);
    Autoencoder ae(dim, opts, rng_a);

    // Reference: the same architecture trained by an explicit per-sample
    // loop over forward/backward (the seed implementation of train_batch).
    Autoencoder ref(dim, opts, rng_b);

    common::Rng data(seed * 101);
    std::vector<Vec> samples;
    for (std::size_t b = 0; b < batch; ++b) samples.push_back(random_vec(dim, data));

    const double batched_loss = ae.train_batch(samples);

    Adam ref_opt(ref.params(), Adam::Options{.lr = opts.learning_rate});
    ref_opt.zero_grad();
    double total = 0.0;
    const double inv_n = 1.0 / static_cast<double>(batch);
    for (const Vec& x : samples) {
      Vec code = ref.encoder().forward(x);
      Vec recon = ref.decoder().forward(code);
      LossResult loss = mse_loss(recon, x);
      total += loss.value;
      scale_in_place(loss.grad, inv_n);
      Vec dcode = ref.decoder().backward(loss.grad);
      ref.encoder().backward(dcode);
    }
    clip_grad_norm(ref.params(), opts.grad_clip);
    ref_opt.step();

    EXPECT_NEAR(batched_loss, total * inv_n, kTol);
    expect_params_close(ae.params(), ref.params(), kTol, "autoencoder train");
  }
}

}  // namespace
}  // namespace hcrl::nn

namespace hcrl::rl {
namespace {

Transition random_transition(std::size_t state_dim, std::size_t n_actions, common::Rng& rng) {
  Transition t;
  t.state.resize(state_dim);
  t.next_state.resize(state_dim);
  for (auto& v : t.state) v = rng.uniform(-1.0, 1.0);
  for (auto& v : t.next_state) v = rng.uniform(-1.0, 1.0);
  t.action = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n_actions) - 1));
  t.reward_rate = rng.uniform(-2.0, 0.0);
  t.tau = rng.uniform(0.1, 5.0);
  return t;
}

// Same seed + same replay contents => identical parameters after K train
// steps, whether the minibatch is processed by the batched GEMM path or the
// per-sample seed loop.
TEST(BatchParity, DqnBatchedTrainStepIsDeterministicallyEquivalent) {
  for (const bool double_q : {false, true}) {
    DqnAgent::Options base;
    base.hidden_dims = {24, 16};
    base.batch_size = 32;
    base.min_replay_before_training = 64;
    base.train_interval = 1000000;  // never train inside observe()
    base.target_sync_interval = 1000000;
    base.double_q = double_q;

    DqnAgent::Options batched = base;
    batched.batched_train = true;
    DqnAgent::Options per_sample = base;
    per_sample.batched_train = false;

    const std::size_t state_dim = 9, n_actions = 5;
    common::Rng rng_a(4242), rng_b(4242);
    DqnAgent agent_a(state_dim, n_actions, batched, rng_a);
    DqnAgent agent_b(state_dim, n_actions, per_sample, rng_b);

    common::Rng data_a(7), data_b(7);
    for (int i = 0; i < 200; ++i) {
      agent_a.observe(random_transition(state_dim, n_actions, data_a));
      agent_b.observe(random_transition(state_dim, n_actions, data_b));
    }

    for (int k = 0; k < 25; ++k) {
      const double la = agent_a.train_step();
      const double lb = agent_b.train_step();
      EXPECT_NEAR(la, lb, 1e-12) << "double_q=" << double_q << " step " << k;
    }
    // Compare the full online-network parameter vectors element by element.
    std::vector<nn::ParamSegment> sa, sb;
    for (const auto& p : agent_a.trainable_params()) p->append_segments(sa);
    for (const auto& p : agent_b.trainable_params()) p->append_segments(sb);
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t s = 0; s < sa.size(); ++s) {
      ASSERT_EQ(sa[s].n, sb[s].n);
      for (std::size_t i = 0; i < sa[s].n; ++i) {
        EXPECT_NEAR(sa[s].value[i], sb[s].value[i], 1e-12)
            << "double_q=" << double_q << " segment " << s << " index " << i;
      }
    }
  }
}

}  // namespace
}  // namespace hcrl::rl
