#include "src/sim/cluster.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace hcrl::sim {
namespace {

Job make_job(JobId id, Time arrival, Time duration = 60.0, double cpu = 0.2) {
  Job j;
  j.id = id;
  j.arrival = arrival;
  j.duration = duration;
  j.demand = ResourceVector{cpu, cpu, 0.01};
  return j;
}

ClusterConfig small_cluster(std::size_t n = 3) {
  ClusterConfig cfg;
  cfg.num_servers = n;
  cfg.server.num_resources = 3;
  return cfg;
}

TEST(Cluster, ConfigValidation) {
  ClusterConfig cfg = small_cluster(0);
  RoundRobinAllocator alloc;
  AlwaysOnPolicy power;
  EXPECT_THROW(Cluster(cfg, alloc, power), std::invalid_argument);
}

TEST(Cluster, LoadJobsValidation) {
  RoundRobinAllocator alloc;
  AlwaysOnPolicy power;
  Cluster c(small_cluster(), alloc, power);
  // Unsorted.
  EXPECT_THROW(c.load_jobs({make_job(1, 10.0), make_job(2, 5.0)}), std::invalid_argument);
  // Duplicate ids.
  EXPECT_THROW(c.load_jobs({make_job(1, 1.0), make_job(1, 2.0)}), std::invalid_argument);
  // Valid load succeeds once and only once.
  EXPECT_NO_THROW(c.load_jobs({make_job(1, 1.0), make_job(2, 2.0)}));
  EXPECT_THROW(c.load_jobs({make_job(3, 3.0)}), std::logic_error);
}

TEST(Cluster, AllJobsCompleteAndConserve) {
  RoundRobinAllocator alloc;
  AlwaysOnPolicy power;
  Cluster c(small_cluster(), alloc, power);
  std::vector<Job> jobs;
  for (int i = 0; i < 20; ++i) jobs.push_back(make_job(i, i * 10.0));
  c.load_jobs(jobs);
  c.run();
  EXPECT_EQ(c.metrics().jobs_arrived(), 20u);
  EXPECT_EQ(c.metrics().jobs_completed(), 20u);
  EXPECT_DOUBLE_EQ(c.metrics().jobs_in_system(), 0.0);
  EXPECT_EQ(c.metrics().job_records().size(), 20u);
}

TEST(Cluster, RoundRobinDispatchPattern) {
  RoundRobinAllocator alloc;
  AlwaysOnPolicy power;
  Cluster c(small_cluster(3), alloc, power);
  std::vector<Job> jobs;
  for (int i = 0; i < 9; ++i) jobs.push_back(make_job(i, i * 1.0));
  c.load_jobs(jobs);
  c.run();
  for (std::size_t s = 0; s < 3; ++s) EXPECT_EQ(c.server(s).total_arrivals(), 3u);
}

TEST(Cluster, LatencyAtLeastDuration) {
  RoundRobinAllocator alloc;
  AlwaysOnPolicy power;
  Cluster c(small_cluster(), alloc, power);
  std::vector<Job> jobs;
  for (int i = 0; i < 10; ++i) jobs.push_back(make_job(i, i * 5.0, 42.0));
  c.load_jobs(jobs);
  c.run();
  for (const auto& r : c.metrics().job_records()) EXPECT_GE(r.latency(), 42.0 - 1e-9);
}

TEST(Cluster, InvalidAllocatorActionThrows) {
  class BadAllocator final : public AllocationPolicy {
   public:
    ServerId select_server(const ClusterView& cluster, const Job&) override {
      return cluster.num_servers() + 5;
    }
    std::string name() const override { return "bad"; }
  };
  BadAllocator alloc;
  AlwaysOnPolicy power;
  Cluster c(small_cluster(), alloc, power);
  c.load_jobs({make_job(1, 0.0)});
  EXPECT_THROW(c.run(), std::logic_error);
}

TEST(Cluster, StepReturnsFalseWhenDrained) {
  RoundRobinAllocator alloc;
  AlwaysOnPolicy power;
  Cluster c(small_cluster(), alloc, power);
  c.load_jobs({make_job(1, 0.0)});
  while (c.step()) {
  }
  EXPECT_FALSE(c.step());
}

TEST(Cluster, SimulationEndNotifiesAllocatorOnce) {
  class EndCounter final : public AllocationPolicy {
   public:
    ServerId select_server(const ClusterView&, const Job&) override { return 0; }
    void on_simulation_end(const ClusterView&, Time) override { ++ends; }
    std::string name() const override { return "end-counter"; }
    int ends = 0;
  };
  EndCounter alloc;
  AlwaysOnPolicy power;
  Cluster c(small_cluster(), alloc, power);
  c.load_jobs({make_job(1, 0.0)});
  c.run();
  EXPECT_FALSE(c.step());
  EXPECT_FALSE(c.step());
  EXPECT_EQ(alloc.ends, 1);
}

TEST(Cluster, RunUntilCompletedStopsEarly) {
  RoundRobinAllocator alloc;
  AlwaysOnPolicy power;
  Cluster c(small_cluster(), alloc, power);
  std::vector<Job> jobs;
  for (int i = 0; i < 10; ++i) jobs.push_back(make_job(i, i * 1.0, 5.0));
  c.load_jobs(jobs);
  c.run_until_completed(4);
  EXPECT_GE(c.metrics().jobs_completed(), 4u);
  EXPECT_LT(c.metrics().jobs_completed(), 10u);
}

TEST(Cluster, ServersOnAndUtilization) {
  RoundRobinAllocator alloc;
  AlwaysOnPolicy power;
  ClusterConfig cfg = small_cluster(2);
  cfg.server.start_asleep = false;
  Cluster c(cfg, alloc, power);
  EXPECT_EQ(c.servers_on(), 2u);
  EXPECT_DOUBLE_EQ(c.mean_cpu_utilization(), 0.0);
  c.load_jobs({make_job(1, 0.0, 1000.0, 0.5)});
  // The arrival event both dispatches and (idle server) starts the job.
  while (c.metrics().jobs_arrived() < 1) c.step();
  EXPECT_NEAR(c.mean_cpu_utilization(), 0.25, 1e-9);  // 0.5 on one of two
}

TEST(Cluster, EnergyNeverExceedsAllPeak) {
  RoundRobinAllocator alloc;
  AlwaysOnPolicy power;
  Cluster c(small_cluster(3), alloc, power);
  std::vector<Job> jobs;
  for (int i = 0; i < 50; ++i) jobs.push_back(make_job(i, i * 2.0, 30.0, 0.3));
  c.load_jobs(jobs);
  c.run();
  const auto snap = c.snapshot();
  EXPECT_LE(snap.energy_joules, 3.0 * 145.0 * snap.now + 1e-6);
  EXPECT_GE(snap.energy_joules, 0.0);
}

TEST(Cluster, SleepingClusterUsesLessEnergyThanAlwaysOn) {
  auto run_with = [](PowerPolicy& power) {
    RoundRobinAllocator alloc;
    ClusterConfig cfg = small_cluster(3);
    cfg.server.start_asleep = false;
    Cluster c(cfg, alloc, power);
    std::vector<Job> jobs;
    // Sparse arrivals with huge gaps: sleeping pays off.
    for (int i = 0; i < 6; ++i) jobs.push_back(make_job(i, i * 3600.0, 60.0, 0.3));
    c.load_jobs(jobs);
    c.run();
    return c.snapshot().energy_joules;
  };
  AlwaysOnPolicy on;
  ImmediateSleepPolicy sleep_now;
  EXPECT_LT(run_with(sleep_now), 0.5 * run_with(on));
}

// A power policy that stages every idle decision (the RL local tier's seam)
// with a fixed timeout, so engine-level flush behavior can be probed without
// the full learning stack.
class StagingTimeoutPolicy final : public PowerPolicy {
 public:
  explicit StagingTimeoutPolicy(double timeout) : timeout_(timeout) {}
  double on_idle(const Server&, Time) override { return timeout_; }
  bool defer_idle(Server& server, Time now, EventQueue& queue) override {
    staged_.push_back(Staged{&server, &queue, now, queue.reserve_seq()});
    return true;
  }
  bool has_staged_decisions() const override { return !staged_.empty(); }
  void flush_decisions() override {
    ++flushes;
    for (const Staged& s : staged_) {
      s.server->commit_idle_decision(timeout_, s.at, s.seq, *s.queue);
    }
    staged_.clear();
  }
  std::string name() const override { return "staging-timeout"; }
  int flushes = 0;

 private:
  struct Staged {
    Server* server;
    EventQueue* queue;
    Time at;
    std::uint64_t seq;
  };
  double timeout_;
  std::vector<Staged> staged_;
};

// Regression: run_until_completed could return mid-epoch with decisions
// still staged — never committed, leaving servers idle-forever and the
// policy holding dangling work. It must flush before returning.
TEST(Cluster, RunUntilCompletedFlushesStagedDecisions) {
  RoundRobinAllocator alloc;
  StagingTimeoutPolicy power(5.0);
  Cluster c(small_cluster(1), alloc, power);
  // One job: its finish event both completes job #1 and idles the server,
  // staging a decision in the same step that satisfies the target count.
  c.load_jobs({make_job(1, 0.0, 10.0)});
  c.run_until_completed(1);
  EXPECT_EQ(c.metrics().jobs_completed(), 1u);
  EXPECT_FALSE(power.has_staged_decisions());
  EXPECT_GE(power.flushes, 1);
  // The committed timeout is real: draining the rest puts the server to sleep.
  c.run();
  EXPECT_EQ(c.server(0).power_state(), PowerState::kSleep);
}

TEST(Cluster, StagedAndInlineTimeoutsProduceIdenticalRuns) {
  auto run_with = [](PowerPolicy& power) {
    RoundRobinAllocator alloc;
    Cluster c(small_cluster(2), alloc, power);
    std::vector<Job> jobs;
    for (int i = 0; i < 30; ++i) jobs.push_back(make_job(i, i * 40.0, 25.0, 0.4));
    c.load_jobs(jobs);
    c.run();
    return c.snapshot();
  };
  FixedTimeoutPolicy inline_policy(5.0);
  StagingTimeoutPolicy staged_policy(5.0);
  const auto a = run_with(inline_policy);
  const auto b = run_with(staged_policy);
  EXPECT_EQ(a.now, b.now);
  EXPECT_EQ(a.energy_joules, b.energy_joules);
  EXPECT_EQ(a.accumulated_latency_s, b.accumulated_latency_s);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
}

// The O(1) incremental counters must track the brute-force rescans at every
// event of a run that exercises all power-state transitions.
TEST(Cluster, IncrementalCountersMatchBruteForceScan) {
  RoundRobinAllocator alloc;
  FixedTimeoutPolicy power(20.0);
  ClusterConfig cfg = small_cluster(4);
  cfg.server.t_on = 30.0;
  cfg.server.t_off = 10.0;
  Cluster c(cfg, alloc, power);
  std::vector<Job> jobs;
  for (int i = 0; i < 60; ++i) jobs.push_back(make_job(i, i * 35.0, 35.0, 0.45));
  c.load_jobs(jobs);
  EXPECT_EQ(c.servers_on(), c.servers_on_scan());
  while (c.step()) {
    ASSERT_EQ(c.servers_on(), c.servers_on_scan());
    ASSERT_NEAR(c.mean_cpu_utilization(), c.mean_cpu_utilization_scan(), 1e-12);
  }
  EXPECT_EQ(c.metrics().jobs_completed(), 60u);
}

}  // namespace
}  // namespace hcrl::sim
