#include "src/core/config_binding.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace hcrl::core {
namespace {

TEST(SystemKindFromString, AllNamesRoundTrip) {
  for (SystemKind kind : {SystemKind::kRoundRobin, SystemKind::kDrlOnly,
                          SystemKind::kHierarchical, SystemKind::kDrlFixedTimeout,
                          SystemKind::kLeastLoaded, SystemKind::kFirstFitPacking}) {
    EXPECT_EQ(system_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW(system_kind_from_string("nonsense"), std::invalid_argument);
}

TEST(ExperimentConfigFrom, DefaultsWhenEmpty) {
  const auto cfg = experiment_config_from(common::Config{});
  EXPECT_EQ(cfg.system, SystemKind::kHierarchical);
  EXPECT_EQ(cfg.num_servers, 30u);
  EXPECT_EQ(cfg.drl.qnet.encoder.num_servers, 30u);  // finalize() ran
}

TEST(ExperimentConfigFrom, OverridesApply) {
  const auto raw = common::Config::from_string(
      "system = drl-only\n"
      "num_servers = 12\n"
      "num_groups = 4\n"
      "trace.num_jobs = 2000\n"
      "server.peak_watts = 200\n"
      "drl.w_vms = 0.25\n"
      "local.w = 0.9\n"
      "local.predictor = sliding-mean\n");
  const auto cfg = experiment_config_from(raw);
  EXPECT_EQ(cfg.system, SystemKind::kDrlOnly);
  EXPECT_EQ(cfg.num_servers, 12u);
  EXPECT_EQ(cfg.num_groups, 4u);
  EXPECT_EQ(cfg.trace.num_jobs, 2000u);
  EXPECT_DOUBLE_EQ(cfg.server.power.peak_watts, 200.0);
  EXPECT_DOUBLE_EQ(cfg.drl.w_vms, 0.25);
  EXPECT_DOUBLE_EQ(cfg.local.w, 0.9);
  EXPECT_EQ(cfg.local.predictor, "sliding-mean");
  // finalize() propagated the power scale.
  EXPECT_DOUBLE_EQ(cfg.local.power_scale_watts, 200.0);
}

TEST(ExperimentConfigFrom, HorizonDefaultsToPaperRate) {
  const auto raw = common::Config::from_string("trace.num_jobs = 9500\n");
  const auto cfg = experiment_config_from(raw);
  // 9500 jobs at the paper's 95k/week rate -> one tenth of a week.
  EXPECT_NEAR(cfg.trace.horizon_s, sim::kSecondsPerWeek / 10.0, 1.0);
}

TEST(ExperimentConfigFrom, PolicySelectionKeysBind) {
  const auto raw = common::Config::from_string(
      "allocator = random-k\n"
      "allocator.k = 2\n"
      "power = fixed-timeout\n"
      "power.timeout_s = 45\n"
      "sla_latency_s = 120\n");
  const auto cfg = experiment_config_from(raw);
  EXPECT_EQ(cfg.allocator, "random-k");
  EXPECT_EQ(cfg.allocator_opts.get_string("k"), "2");
  EXPECT_EQ(cfg.power, "fixed-timeout");
  EXPECT_DOUBLE_EQ(cfg.power_opts.get_double("timeout_s"), 45.0);
  EXPECT_DOUBLE_EQ(cfg.sla_latency_s, 120.0);
}

TEST(ExperimentConfigFrom, UnknownPolicyOptionKeyRejected) {
  // Dotted policy options bypass the binder's unused-key audit, but the
  // registry schema still rejects keys the factory would never read.
  const auto raw = common::Config::from_string(
      "allocator = random-k\n"
      "allocator.kk = 2\n");
  try {
    experiment_config_from(raw);
    FAIL() << "expected unknown-option rejection";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean 'k'"), std::string::npos) << e.what();
  }
}

TEST(ExperimentConfigFrom, NegativeSlaRejected) {
  const auto raw = common::Config::from_string("sla_latency_s = -5\n");
  EXPECT_THROW(experiment_config_from(raw), std::invalid_argument);
}

TEST(ExperimentConfigFrom, UnknownKeysRejected) {
  const auto raw = common::Config::from_string("trace.num_jobs = 100\nnot_a_key = 1\n");
  EXPECT_THROW(experiment_config_from(raw), std::invalid_argument);
}

TEST(ExperimentConfigFrom, InvalidValuesRejectedByValidation) {
  const auto raw = common::Config::from_string("num_servers = 10\nnum_groups = 3\n");
  // 3 does not divide 10 -> StateEncoderOptions::validate fails in finalize
  // path via ExperimentConfig::validate + DrlAllocator construction later;
  // the encoder check fires when the config is validated.
  EXPECT_THROW(experiment_config_from(raw), std::invalid_argument);
}

TEST(ExperimentConfigFrom, RunsEndToEnd) {
  const auto raw = common::Config::from_string(
      "system = round-robin\n"
      "num_servers = 4\n"
      "num_groups = 2\n"
      "trace.num_jobs = 300\n"
      "checkpoint_every_jobs = 100\n"
      "pretrain_jobs = 0\n");
  const auto cfg = experiment_config_from(raw);
  const auto result = run_experiment(cfg);
  EXPECT_EQ(result.final_snapshot.jobs_completed, 300u);
  EXPECT_EQ(result.series.size(), 3u);
}

}  // namespace
}  // namespace hcrl::core
