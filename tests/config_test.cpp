#include "src/common/config.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace hcrl::common {
namespace {

TEST(Config, ParsesBasicPairs) {
  const Config cfg = Config::from_string("a = 1\nb = hello\nc=3.5\n");
  EXPECT_EQ(cfg.get_int("a"), 1);
  EXPECT_EQ(cfg.get_string("b"), "hello");
  EXPECT_DOUBLE_EQ(cfg.get_double("c"), 3.5);
}

TEST(Config, IgnoresCommentsAndBlankLines) {
  const Config cfg = Config::from_string("# header\n\n a = 2  # trailing\n\n");
  EXPECT_EQ(cfg.get_int("a"), 2);
  EXPECT_EQ(cfg.keys().size(), 1u);
}

TEST(Config, DuplicateKeyThrows) {
  // A repeated key in config *text* is a copy-paste mistake, not an override;
  // programmatic Config::set keeps last-write-wins.
  EXPECT_THROW(Config::from_string("x = 1\nx = 2\n"), std::invalid_argument);
  Config cfg;
  cfg.set("x", std::int64_t{1});
  cfg.set("x", std::int64_t{2});
  EXPECT_EQ(cfg.get_int("x"), 2);
}

TEST(Config, MissingEqualsThrows) {
  EXPECT_THROW(Config::from_string("just a line\n"), std::invalid_argument);
}

TEST(Config, EmptyKeyThrows) {
  EXPECT_THROW(Config::from_string("= 1\n"), std::invalid_argument);
}

TEST(Config, MissingKeyThrows) {
  const Config cfg = Config::from_string("a = 1\n");
  EXPECT_THROW(cfg.get_string("b"), std::invalid_argument);
  EXPECT_THROW(cfg.get_double("b"), std::invalid_argument);
  EXPECT_THROW(cfg.get_int("b"), std::invalid_argument);
}

TEST(Config, FallbacksUsedWhenAbsent) {
  const Config cfg = Config::from_string("a = 1\n");
  EXPECT_EQ(cfg.get_int("missing", 9), 9);
  EXPECT_DOUBLE_EQ(cfg.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(cfg.get_string("missing", "x"), "x");
  EXPECT_TRUE(cfg.get_bool("missing", true));
  // Present key still wins over fallback.
  EXPECT_EQ(cfg.get_int("a", 9), 1);
}

TEST(Config, BadNumericValueThrows) {
  const Config cfg = Config::from_string("a = 12abc\nb = 1.5\n");
  EXPECT_THROW(cfg.get_int("a"), std::invalid_argument);
  EXPECT_THROW(cfg.get_int("b"), std::invalid_argument);  // trailing chars after 1
}

TEST(Config, BoolParsingVariants) {
  const Config cfg = Config::from_string(
      "t1 = true\nt2 = YES\nt3 = 1\nt4 = on\nf1 = false\nf2 = No\nf3 = 0\nf4 = OFF\nbad = maybe\n");
  for (const char* k : {"t1", "t2", "t3", "t4"}) EXPECT_TRUE(cfg.get_bool(k)) << k;
  for (const char* k : {"f1", "f2", "f3", "f4"}) EXPECT_FALSE(cfg.get_bool(k)) << k;
  EXPECT_THROW(cfg.get_bool("bad"), std::invalid_argument);
}

TEST(Config, SettersRoundTrip) {
  Config cfg;
  cfg.set("s", "v");
  cfg.set("d", 1.5);
  cfg.set("i", std::int64_t{42});
  cfg.set("b", true);
  EXPECT_EQ(cfg.get_string("s"), "v");
  EXPECT_DOUBLE_EQ(cfg.get_double("d"), 1.5);
  EXPECT_EQ(cfg.get_int("i"), 42);
  EXPECT_TRUE(cfg.get_bool("b"));
}

TEST(Config, UnusedKeysTracksReads) {
  const Config cfg = Config::from_string("a = 1\nb = 2\nc = 3\n");
  (void)cfg.get_int("a");
  (void)cfg.get_int("b", 0);
  const auto unused = cfg.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "c");
}

TEST(Config, ToStringParsesBack) {
  Config cfg;
  cfg.set("alpha", 0.25);
  cfg.set("name", "run-1");
  const Config round = Config::from_string(cfg.to_string());
  EXPECT_DOUBLE_EQ(round.get_double("alpha"), 0.25);
  EXPECT_EQ(round.get_string("name"), "run-1");
}

TEST(Config, FromFileMissingThrows) {
  EXPECT_THROW(Config::from_file("/nonexistent/path/cfg.txt"), std::invalid_argument);
}

}  // namespace
}  // namespace hcrl::common
