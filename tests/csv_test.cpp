#include "src/common/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace hcrl::common {
namespace {

TEST(CsvWriter, PlainRow) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"a", "b", "c"});
  EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(CsvWriter, EscapesCommasAndQuotes) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvWriter, DoubleRowKeepsPrecision) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row_doubles({0.1, 123456789.123456});
  std::istringstream is(os.str());
  CsvReader r(is);
  std::vector<std::string> fields;
  ASSERT_TRUE(r.read_row(fields));
  EXPECT_DOUBLE_EQ(std::stod(fields[0]), 0.1);
  EXPECT_DOUBLE_EQ(std::stod(fields[1]), 123456789.123456);
}

TEST(CsvReader, ParsesQuotedFields) {
  const auto fields = CsvReader::parse_line("a,\"b,c\",\"d\"\"e\"");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b,c");
  EXPECT_EQ(fields[2], "d\"e");
}

TEST(CsvReader, EmptyFields) {
  const auto fields = CsvReader::parse_line(",,");
  ASSERT_EQ(fields.size(), 3u);
  for (const auto& f : fields) EXPECT_TRUE(f.empty());
}

TEST(CsvReader, SkipsBlankLinesAndHandlesCrLf) {
  std::istringstream is("a,b\r\n\r\nc,d\n");
  CsvReader r(is);
  std::vector<std::string> fields;
  ASSERT_TRUE(r.read_row(fields));
  EXPECT_EQ(fields[0], "a");
  ASSERT_TRUE(r.read_row(fields));
  EXPECT_EQ(fields[0], "c");
  EXPECT_FALSE(r.read_row(fields));
}

TEST(CsvReader, UnterminatedQuoteThrows) {
  EXPECT_THROW(CsvReader::parse_line("\"oops"), std::invalid_argument);
}

TEST(Csv, RoundTripWithSpecialCharacters) {
  std::ostringstream os;
  CsvWriter w(os);
  const std::vector<std::string> original = {"x,y", "q\"uote", "plain", ""};
  w.write_row(original);
  std::istringstream is(os.str());
  CsvReader r(is);
  std::vector<std::string> fields;
  ASSERT_TRUE(r.read_row(fields));
  EXPECT_EQ(fields, original);
}

}  // namespace
}  // namespace hcrl::common
