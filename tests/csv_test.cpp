#include "src/common/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace hcrl::common {
namespace {

TEST(CsvWriter, PlainRow) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"a", "b", "c"});
  EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(CsvWriter, EscapesCommasAndQuotes) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvWriter, DoubleRowKeepsPrecision) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row_doubles({0.1, 123456789.123456});
  std::istringstream is(os.str());
  CsvReader r(is);
  std::vector<std::string> fields;
  ASSERT_TRUE(r.read_row(fields));
  EXPECT_DOUBLE_EQ(std::stod(fields[0]), 0.1);
  EXPECT_DOUBLE_EQ(std::stod(fields[1]), 123456789.123456);
}

TEST(CsvReader, ParsesQuotedFields) {
  const auto fields = CsvReader::parse_line("a,\"b,c\",\"d\"\"e\"");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b,c");
  EXPECT_EQ(fields[2], "d\"e");
}

TEST(CsvReader, EmptyFields) {
  const auto fields = CsvReader::parse_line(",,");
  ASSERT_EQ(fields.size(), 3u);
  for (const auto& f : fields) EXPECT_TRUE(f.empty());
}

TEST(CsvReader, SkipsBlankLinesAndHandlesCrLf) {
  std::istringstream is("a,b\r\n\r\nc,d\n");
  CsvReader r(is);
  std::vector<std::string> fields;
  ASSERT_TRUE(r.read_row(fields));
  EXPECT_EQ(fields[0], "a");
  ASSERT_TRUE(r.read_row(fields));
  EXPECT_EQ(fields[0], "c");
  EXPECT_FALSE(r.read_row(fields));
}

TEST(CsvReader, UnterminatedQuoteThrows) {
  EXPECT_THROW(CsvReader::parse_line("\"oops"), std::invalid_argument);
}

TEST(Csv, ParseCsvDoubleIsStrict) {
  EXPECT_EQ(parse_csv_double("60.5"), 60.5);
  EXPECT_EQ(parse_csv_double("-1e3"), -1000.0);
  EXPECT_FALSE(parse_csv_double("").has_value());
  EXPECT_FALSE(parse_csv_double("60.0x").has_value());   // partial match
  EXPECT_FALSE(parse_csv_double("0x1f").has_value());    // hexfloat = corruption
  EXPECT_FALSE(parse_csv_double(">24").has_value());
  EXPECT_FALSE(parse_csv_double("n/a").has_value());
}

TEST(Csv, ParseCsvIntIsStrict) {
  EXPECT_EQ(parse_csv_int("42"), 42);
  EXPECT_EQ(parse_csv_int("-7"), -7);
  EXPECT_EQ(parse_csv_int("9007199254740993"), 9007199254740993LL);  // > 2^53
  EXPECT_FALSE(parse_csv_int("3.9").has_value());
  EXPECT_FALSE(parse_csv_int("").has_value());
  EXPECT_FALSE(parse_csv_int("12a").has_value());
}

TEST(CsvReader, LineNumbersCountSkippedBlanks) {
  std::istringstream is("a,b\n\n\nc,d\n");
  CsvReader r(is);
  std::vector<std::string> fields;
  EXPECT_EQ(r.line(), 0u);
  ASSERT_TRUE(r.read_row(fields));
  EXPECT_EQ(r.line(), 1u);
  ASSERT_TRUE(r.read_row(fields));
  EXPECT_EQ(r.line(), 4u);
  EXPECT_FALSE(r.read_row(fields));
  EXPECT_EQ(r.line(), 4u);  // unchanged at EOF
}

TEST(Csv, RoundTripWithSpecialCharacters) {
  std::ostringstream os;
  CsvWriter w(os);
  const std::vector<std::string> original = {"x,y", "q\"uote", "plain", ""};
  w.write_row(original);
  std::istringstream is(os.str());
  CsvReader r(is);
  std::vector<std::string> fields;
  ASSERT_TRUE(r.read_row(fields));
  EXPECT_EQ(fields, original);
}

}  // namespace
}  // namespace hcrl::common
