// The decision-epoch batching service and its bit-identity contract: staged
// predictor/Q requests fuse into batched sweeps whose results — and every
// downstream action, metric and learned parameter — are bit-identical to the
// per-call path. Covers the DecisionService unit behaviour (empty / single /
// mixed epochs), the q_values_batch / act_batch fusion kernels at both
// precisions, the WindowPredictor, and full-experiment parity between
// batch_decisions on and off.
#include "src/core/decision_service.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "src/core/local_tier.hpp"
#include "src/core/predictor.hpp"
#include "src/core/qnetwork.hpp"
#include "src/core/runner.hpp"
#include "src/core/scenario.hpp"
#include "src/core/trace_source.hpp"
#include "src/rl/dqn.hpp"
#include "src/sim/cluster.hpp"

namespace hcrl::core {
namespace {

// ---- test doubles ----------------------------------------------------------

/// Predictor stub: predict() returns `base`, predict_n(n) returns
/// base, base+1, ... so tests can see exactly how requests were grouped and
/// scattered. Records every batch size it was asked for.
class ProbePredictor final : public WorkloadPredictor {
 public:
  explicit ProbePredictor(double base) : base_(base) {}
  void observe(double) override {}
  double predict() override { return base_; }
  std::vector<double> predict_n(std::size_t n) override {
    batches.push_back(n);
    std::vector<double> out(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = base_ + static_cast<double>(i);
    return out;
  }
  std::string name() const override { return "probe"; }

  std::vector<std::size_t> batches;

 private:
  double base_;
};

GroupedQOptions small_qopts(nn::Precision precision = nn::Precision::kF64) {
  GroupedQOptions o;
  o.encoder.num_servers = 6;
  o.encoder.num_groups = 2;
  o.encoder.num_resources = 2;
  o.autoencoder_dims = {8, 4};
  o.subq_hidden = 16;
  o.precision = precision;
  return o;
}

nn::Vec random_state(std::size_t dim, common::Rng& rng) {
  nn::Vec s(dim);
  for (auto& v : s) v = rng.uniform();
  return s;
}

// ---- WindowPredictor (satellite: O(1) rolling-sum predictor) ---------------

TEST(WindowPredictor, RoundsWindowUpToPowerOfTwoAndStartsAtPrior) {
  WindowPredictor p(/*window=*/5, /*prior_s=*/100.0);
  EXPECT_EQ(p.window(), 8u);  // 5 -> 8
  EXPECT_DOUBLE_EQ(p.predict(), 100.0);
  EXPECT_EQ(p.name(), "window");
}

TEST(WindowPredictor, BlendsPriorOutSampleBySample) {
  WindowPredictor p(/*window=*/4, /*prior_s=*/40.0);
  p.observe(80.0);
  // Ring now holds {80, 40, 40, 40}.
  EXPECT_DOUBLE_EQ(p.predict(), (80.0 + 3 * 40.0) / 4.0);
}

TEST(WindowPredictor, MatchesBruteForceMeanOfLastWindow) {
  const std::size_t window = 8;
  WindowPredictor p(window, /*prior_s=*/10.0);
  common::Rng rng(99);
  std::vector<double> seen;
  for (int i = 0; i < 100; ++i) {
    const double v = rng.uniform() * 500.0;
    p.observe(v);
    seen.push_back(v);
    if (seen.size() >= window) {
      double sum = 0.0;
      for (std::size_t j = seen.size() - window; j < seen.size(); ++j) sum += seen[j];
      EXPECT_NEAR(p.predict(), sum / static_cast<double>(window), 1e-9);
    }
  }
}

TEST(WindowPredictor, Validation) {
  EXPECT_THROW(WindowPredictor(0, 10.0), std::invalid_argument);
  EXPECT_THROW(WindowPredictor(4, 0.0), std::invalid_argument);
  WindowPredictor p(4, 10.0);
  EXPECT_THROW(p.observe(-1.0), std::invalid_argument);
}

TEST(WindowPredictor, FactoryBuildsItFromLookback) {
  LstmPredictorOptions opts;
  opts.lookback = 5;
  opts.prior_s = 33.0;
  const auto p = make_predictor("window", opts);
  EXPECT_EQ(p->name(), "window");
  EXPECT_DOUBLE_EQ(p->predict(), 33.0);
}

// ---- DecisionService unit behaviour ----------------------------------------

TEST(DecisionService, EmptyFlushIsANoOp) {
  DecisionService svc;
  EXPECT_FALSE(svc.pending());
  svc.flush();
  svc.flush();
  EXPECT_EQ(svc.stats().flushes, 0u);
  EXPECT_EQ(svc.stats().predict_batches, 0u);
  EXPECT_EQ(svc.stats().q_batches, 0u);
}

TEST(DecisionService, SinglePredictRequestRoundTrips) {
  DecisionService svc;
  ProbePredictor p(7.0);
  const auto t = svc.stage_predict(p);
  EXPECT_TRUE(svc.pending());
  svc.flush();
  EXPECT_FALSE(svc.pending());
  EXPECT_DOUBLE_EQ(svc.prediction(t), 7.0);
  ASSERT_EQ(p.batches.size(), 1u);
  EXPECT_EQ(p.batches[0], 1u);
  EXPECT_EQ(svc.stats().flushes, 1u);
  EXPECT_EQ(svc.stats().predict_requests, 1u);
  EXPECT_EQ(svc.stats().predict_batches, 1u);
}

TEST(DecisionService, FusesRequestsPerPredictorPreservingOrder) {
  DecisionService svc;
  ProbePredictor a(100.0), b(200.0);
  // Interleaved staging: a, b, a, a, b.
  const auto ta0 = svc.stage_predict(a);
  const auto tb0 = svc.stage_predict(b);
  const auto ta1 = svc.stage_predict(a);
  const auto ta2 = svc.stage_predict(a);
  const auto tb1 = svc.stage_predict(b);
  svc.flush();
  // One predict_n per predictor instance, sized to its request count.
  ASSERT_EQ(a.batches.size(), 1u);
  EXPECT_EQ(a.batches[0], 3u);
  ASSERT_EQ(b.batches.size(), 1u);
  EXPECT_EQ(b.batches[0], 2u);
  // Scatter in request order within each group.
  EXPECT_DOUBLE_EQ(svc.prediction(ta0), 100.0);
  EXPECT_DOUBLE_EQ(svc.prediction(ta1), 101.0);
  EXPECT_DOUBLE_EQ(svc.prediction(ta2), 102.0);
  EXPECT_DOUBLE_EQ(svc.prediction(tb0), 200.0);
  EXPECT_DOUBLE_EQ(svc.prediction(tb1), 201.0);
  EXPECT_EQ(svc.stats().predict_batches, 2u);
  EXPECT_EQ(svc.stats().max_epoch_requests, 5u);
}

TEST(DecisionService, MixedEpochServesPredictionsAndQValues) {
  DecisionService svc;
  ProbePredictor p(5.0);
  common::Rng rng(1);
  const auto qopts = small_qopts();
  GroupedQNetwork net(qopts, rng);
  common::Rng srng(2);
  const nn::Vec s0 = random_state(qopts.encoder.full_state_dim(), srng);
  const nn::Vec s1 = random_state(qopts.encoder.full_state_dim(), srng);

  const auto tp = svc.stage_predict(p);
  const auto tq0 = svc.stage_q_values(net, s0);
  const auto tq1 = svc.stage_q_values(net, s1);
  svc.flush();

  EXPECT_DOUBLE_EQ(svc.prediction(tp), 5.0);
  const nn::Vec q0 = net.q_values(s0);
  const nn::Vec q1 = net.q_values(s1);
  const auto r0 = svc.q_values(tq0);
  const auto r1 = svc.q_values(tq1);
  ASSERT_EQ(r0.size(), q0.size());
  for (std::size_t i = 0; i < q0.size(); ++i) EXPECT_EQ(r0[i], q0[i]);
  for (std::size_t i = 0; i < q1.size(); ++i) EXPECT_EQ(r1[i], q1[i]);
  EXPECT_EQ(svc.stats().q_requests, 2u);
  EXPECT_EQ(svc.stats().q_batches, 1u);  // ONE fused GEMM sweep for both
}

TEST(DecisionService, NewEpochInvalidatesOldResultsUntilFlushed) {
  DecisionService svc;
  ProbePredictor p(1.0);
  const auto t0 = svc.stage_predict(p);
  EXPECT_THROW(svc.prediction(t0), std::logic_error);  // not flushed yet
  svc.flush();
  EXPECT_DOUBLE_EQ(svc.prediction(t0), 1.0);
  const auto t1 = svc.stage_predict(p);  // starts the next epoch
  EXPECT_THROW(svc.prediction(t1), std::logic_error);
  svc.flush();
  EXPECT_DOUBLE_EQ(svc.prediction(t1), 1.0);
  EXPECT_THROW(svc.prediction(t1 + 1), std::out_of_range);
}

TEST(DecisionService, RejectsTwoNetworksInOneEpoch) {
  DecisionService svc;
  common::Rng rng(1);
  GroupedQNetwork net_a(small_qopts(), rng);
  GroupedQNetwork net_b(small_qopts(), rng);
  const nn::Vec s = random_state(net_a.state_dim(), rng);
  svc.stage_q_values(net_a, s);
  EXPECT_THROW(svc.stage_q_values(net_b, s), std::logic_error);
}

// ---- batched forward kernels: exact parity with the per-call path ----------

TEST(GroupedQNetwork, QValuesBatchBitIdenticalToPerCallBothPrecisions) {
  for (const nn::Precision precision : {nn::Precision::kF64, nn::Precision::kF32}) {
    common::Rng rng(11);
    const auto qopts = small_qopts(precision);
    GroupedQNetwork net(qopts, rng);

    common::Rng srng(12);
    std::vector<nn::Vec> states;
    for (int i = 0; i < 16; ++i) states.push_back(random_state(net.state_dim(), srng));
    std::vector<const nn::Vec*> ptrs;
    for (const auto& s : states) ptrs.push_back(&s);

    nn::Matrix batched;
    net.q_values_batch(ptrs, batched);
    ASSERT_EQ(batched.rows(), 16u);
    ASSERT_EQ(batched.cols(), net.num_actions());
    for (std::size_t b = 0; b < states.size(); ++b) {
      const nn::Vec per_call = net.q_values(states[b]);
      for (std::size_t a = 0; a < per_call.size(); ++a) {
        EXPECT_EQ(batched(b, a), per_call[a])
            << "precision=" << nn::to_string(precision) << " b=" << b << " a=" << a;
      }
    }
  }
}

TEST(LstmPredictor, PredictNBitIdenticalToPredict) {
  LstmPredictorOptions opts;
  opts.lookback = 6;
  opts.hidden_units = 5;
  opts.train_interval = 4;
  LstmPredictor p(opts);
  // Before warm-up: prior fan-out.
  const auto cold = p.predict_n(3);
  for (const double v : cold) EXPECT_DOUBLE_EQ(v, opts.prior_s);
  common::Rng rng(5);
  for (int i = 0; i < 40; ++i) p.observe(60.0 + 500.0 * rng.uniform());
  const double one = p.predict();
  const auto many = p.predict_n(4);
  ASSERT_EQ(many.size(), 4u);
  for (const double v : many) EXPECT_EQ(v, one);
  EXPECT_TRUE(p.predict_n(0).empty());
}

TEST(DqnAgent, BatchedActAndQValuesMatchPerCall) {
  for (const nn::Precision precision : {nn::Precision::kF64, nn::Precision::kF32}) {
    rl::DqnAgent::Options opts;
    opts.hidden_dims = {12};
    opts.precision = precision;
    opts.epsilon = rl::EpsilonSchedule::exponential(0.5, 0.05, 50);

    // Two agents from identically-seeded rngs -> identical weights; drive one
    // per-call and one batched with identically-seeded action rngs.
    common::Rng ra(7), rb(7);
    rl::DqnAgent per_call(4, 3, opts, ra);
    rl::DqnAgent batched(4, 3, opts, rb);

    common::Rng srng(8);
    std::vector<nn::Vec> states;
    for (int i = 0; i < 32; ++i) states.push_back(random_state(4, srng));
    std::vector<const nn::Vec*> ptrs;
    for (const auto& s : states) ptrs.push_back(&s);

    nn::Matrix qb;
    batched.q_values_batch(ptrs, qb);
    for (std::size_t b = 0; b < states.size(); ++b) {
      const nn::Vec q = per_call.q_values(states[b]);
      for (std::size_t a = 0; a < q.size(); ++a) EXPECT_EQ(qb(b, a), q[a]);
    }

    common::Rng act_a(9), act_b(9);
    std::vector<std::size_t> expected;
    for (const auto& s : states) expected.push_back(per_call.act(s, act_a));
    const std::vector<std::size_t> got = batched.act_batch(ptrs, act_b);
    EXPECT_EQ(got, expected) << "precision=" << nn::to_string(precision);
  }
}

// ---- in-sim parity: batched decision epochs vs inline decisions ------------

workload::GeneratorOptions tiny_trace(std::size_t jobs) {
  workload::GeneratorOptions o;
  o.num_jobs = jobs;
  o.horizon_s = static_cast<double>(jobs) * 6.4;
  o.seed = 21;
  return o;
}

LocalPowerManagerOptions local_opts(std::size_t num_servers, const std::string& predictor) {
  LocalPowerManagerOptions o;
  o.num_servers = num_servers;
  o.predictor = predictor;
  o.lstm.lookback = 6;
  o.lstm.hidden_units = 5;
  o.lstm.train_interval = 8;
  return o;
}

/// Drive one Cluster + RlPowerManager over the tiny trace, with or without a
/// DecisionService, and return (manager, metrics snapshot) observations.
struct LocalRunResult {
  std::vector<std::size_t> decisions;
  std::vector<double> q_table;  // shared table flattened
  double energy_joules = 0.0;
  double latency_s = 0.0;
  DecisionServiceStats stats;
};

LocalRunResult run_local_tier(const std::string& predictor, bool batched) {
  const std::size_t num_servers = 4;
  sim::ClusterConfig cc;
  cc.num_servers = num_servers;

  const auto opts = local_opts(num_servers, predictor);
  RlPowerManager manager(opts);
  DecisionService svc;
  if (batched) manager.set_decision_service(&svc);

  sim::RoundRobinAllocator alloc;
  sim::Cluster cluster(cc, alloc, manager);
  cluster.load_jobs(SyntheticTraceSource(tiny_trace(400)).produce().jobs);
  cluster.run();

  LocalRunResult r;
  for (std::size_t s = 0; s < num_servers; ++s) r.decisions.push_back(manager.decisions(s));
  const auto& agent = manager.agent(0);  // shared table
  for (std::size_t s = 0; s < opts.num_states(); ++s) {
    for (std::size_t a = 0; a < opts.timeout_actions.size(); ++a) {
      r.q_table.push_back(agent.q(s, a));
    }
  }
  const sim::Time end = cluster.now();
  r.energy_joules = cluster.metrics().energy_joules(end);
  r.latency_s = cluster.metrics().accumulated_latency(end);
  r.stats = svc.stats();
  return r;
}

TEST(DecisionEpochParity, LocalTierBitIdenticalWithWindowPredictor) {
  const LocalRunResult inline_run = run_local_tier("window", /*batched=*/false);
  const LocalRunResult batched_run = run_local_tier("window", /*batched=*/true);
  EXPECT_EQ(batched_run.decisions, inline_run.decisions);
  ASSERT_EQ(batched_run.q_table.size(), inline_run.q_table.size());
  for (std::size_t i = 0; i < inline_run.q_table.size(); ++i) {
    EXPECT_EQ(batched_run.q_table[i], inline_run.q_table[i]) << "q-table entry " << i;
  }
  EXPECT_EQ(batched_run.energy_joules, inline_run.energy_joules);
  EXPECT_EQ(batched_run.latency_s, inline_run.latency_s);
  // The batched run actually staged work through the service.
  EXPECT_GT(batched_run.stats.flushes, 0u);
  EXPECT_GT(batched_run.stats.predict_requests, 0u);
  EXPECT_EQ(inline_run.stats.flushes, 0u);
}

TEST(DecisionEpochParity, LocalTierBitIdenticalWithLstmPredictor) {
  const LocalRunResult inline_run = run_local_tier("lstm", /*batched=*/false);
  const LocalRunResult batched_run = run_local_tier("lstm", /*batched=*/true);
  EXPECT_EQ(batched_run.decisions, inline_run.decisions);
  for (std::size_t i = 0; i < inline_run.q_table.size(); ++i) {
    EXPECT_EQ(batched_run.q_table[i], inline_run.q_table[i]) << "q-table entry " << i;
  }
  EXPECT_EQ(batched_run.energy_joules, inline_run.energy_joules);
  EXPECT_EQ(batched_run.latency_s, inline_run.latency_s);
}

// ---- full-experiment parity (tiny registry, both precisions) ---------------

void expect_results_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.final_snapshot.now, b.final_snapshot.now);
  EXPECT_EQ(a.final_snapshot.jobs_completed, b.final_snapshot.jobs_completed);
  EXPECT_EQ(a.final_snapshot.energy_joules, b.final_snapshot.energy_joules);
  EXPECT_EQ(a.final_snapshot.accumulated_latency_s, b.final_snapshot.accumulated_latency_s);
  EXPECT_EQ(a.final_snapshot.average_power_watts, b.final_snapshot.average_power_watts);
  EXPECT_EQ(a.servers_on_at_end, b.servers_on_at_end);
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t i = 0; i < a.series.size(); ++i) {
    EXPECT_EQ(a.series[i].sim_time_s, b.series[i].sim_time_s);
    EXPECT_EQ(a.series[i].energy_kwh, b.series[i].energy_kwh);
    EXPECT_EQ(a.series[i].accumulated_latency_s, b.series[i].accumulated_latency_s);
  }
}

TEST(DecisionEpochParity, FullHierarchicalExperimentBothPrecisions) {
  for (const nn::Precision precision : {nn::Precision::kF64, nn::Precision::kF32}) {
    Scenario batched = ScenarioRegistry::builtin().make("tiny/hierarchical", 250);
    batched.config.precision = precision;
    batched.config.batch_decisions = true;
    Scenario inline_mode = batched;
    inline_mode.config.batch_decisions = false;

    const ExperimentResult rb = run_scenario(batched);
    const ExperimentResult ri = run_scenario(inline_mode);
    SCOPED_TRACE(std::string("precision=") + nn::to_string(precision));
    expect_results_identical(rb, ri);
  }
}

}  // namespace
}  // namespace hcrl::core
