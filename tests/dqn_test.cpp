#include "src/rl/dqn.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace hcrl::rl {
namespace {

DqnAgent::Options small_opts() {
  DqnAgent::Options o;
  o.hidden_dims = {16};
  o.beta = 0.5;
  o.learning_rate = 5e-3;
  o.replay_capacity = 2000;
  o.batch_size = 16;
  o.min_replay_before_training = 64;
  o.train_interval = 1;
  o.target_sync_interval = 50;
  o.epsilon = EpsilonSchedule::constant(0.2);
  return o;
}

TEST(DqnAgent, ConstructionValidation) {
  common::Rng rng(1);
  EXPECT_THROW(DqnAgent(0, 2, small_opts(), rng), std::invalid_argument);
  EXPECT_THROW(DqnAgent(2, 0, small_opts(), rng), std::invalid_argument);
  auto bad = small_opts();
  bad.batch_size = 0;
  EXPECT_THROW(DqnAgent(2, 2, bad, rng), std::invalid_argument);
}

TEST(DqnAgent, QValuesShape) {
  common::Rng rng(2);
  DqnAgent agent(3, 5, small_opts(), rng);
  EXPECT_EQ(agent.q_values({0.1, 0.2, 0.3}).size(), 5u);
}

TEST(DqnAgent, ObserveValidation) {
  common::Rng rng(3);
  DqnAgent agent(2, 2, small_opts(), rng);
  Transition bad_state;
  bad_state.state = {1.0};
  bad_state.next_state = {1.0, 2.0};
  EXPECT_THROW(agent.observe(bad_state), std::invalid_argument);
  Transition bad_action;
  bad_action.state = {1.0, 2.0};
  bad_action.next_state = {1.0, 2.0};
  bad_action.action = 5;
  EXPECT_THROW(agent.observe(bad_action), std::invalid_argument);
}

TEST(DqnAgent, TrainStepRequiresWarmReplay) {
  common::Rng rng(4);
  DqnAgent agent(2, 2, small_opts(), rng);
  EXPECT_LT(agent.train_step(), 0.0);  // signals "not trained"
}

TEST(DqnAgent, ActGreedyIsArgmaxOfQValues) {
  common::Rng rng(5);
  DqnAgent agent(2, 3, small_opts(), rng);
  const nn::Vec s = {0.4, -0.4};
  const auto q = agent.q_values(s);
  EXPECT_EQ(agent.act_greedy(s), nn::argmax(q));
}

// A contextual bandit the agent must solve: state (x) in {(0),(1)}; action
// must match the state bit; matching pays 0, mismatching pays -2 (as reward
// *rates* over unit sojourns). After training, greedy actions must match.
TEST(DqnAgent, SolvesContextualBandit) {
  common::Rng rng(6);
  DqnAgent agent(1, 2, small_opts(), rng);
  common::Rng env_rng(7);
  for (int i = 0; i < 1500; ++i) {
    const double x = env_rng.bernoulli(0.5) ? 1.0 : 0.0;
    const nn::Vec state = {x};
    const std::size_t a = agent.act(state, env_rng);
    const double r = (static_cast<double>(a) == x) ? 0.0 : -2.0;
    Transition t;
    t.state = state;
    t.action = a;
    t.reward_rate = r;
    t.tau = 1.0;
    t.next_state = {env_rng.bernoulli(0.5) ? 1.0 : 0.0};
    agent.observe(std::move(t));
  }
  EXPECT_EQ(agent.act_greedy({0.0}), 0u);
  EXPECT_EQ(agent.act_greedy({1.0}), 1u);
  EXPECT_GT(agent.train_steps(), 100);
}

TEST(DqnAgent, EpsilonDecaysWithActions) {
  common::Rng rng(8);
  auto o = small_opts();
  o.epsilon = EpsilonSchedule::linear(1.0, 0.0, 100);
  DqnAgent agent(1, 2, o, rng);
  EXPECT_DOUBLE_EQ(agent.current_epsilon(), 1.0);
  common::Rng act_rng(9);
  for (int i = 0; i < 100; ++i) agent.act({0.0}, act_rng);
  EXPECT_DOUBLE_EQ(agent.current_epsilon(), 0.0);
}

TEST(DqnAgent, ReplayTracksObservations) {
  common::Rng rng(10);
  DqnAgent agent(1, 2, small_opts(), rng);
  for (int i = 0; i < 10; ++i) {
    Transition t;
    t.state = {0.0};
    t.next_state = {0.0};
    agent.observe(std::move(t));
  }
  EXPECT_EQ(agent.observed_transitions(), 10);
  EXPECT_EQ(agent.replay().size(), 10u);
}

}  // namespace
}  // namespace hcrl::rl
