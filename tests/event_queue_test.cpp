#include "src/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "src/common/rng.hpp"

namespace hcrl::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  q.push(5.0, EventType::kJobFinish, 1);
  q.push(1.0, EventType::kJobArrival, 0);
  q.push(3.0, EventType::kWakeComplete, 2);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_DOUBLE_EQ(q.pop().time, 1.0);
  EXPECT_DOUBLE_EQ(q.pop().time, 3.0);
  EXPECT_DOUBLE_EQ(q.pop().time, 5.0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  q.push(2.0, EventType::kJobArrival, 0, 100);
  q.push(2.0, EventType::kJobArrival, 0, 200);
  q.push(2.0, EventType::kJobArrival, 0, 300);
  EXPECT_EQ(q.pop().job, 100);
  EXPECT_EQ(q.pop().job, 200);
  EXPECT_EQ(q.pop().job, 300);
}

TEST(EventQueue, CarriesPayload) {
  EventQueue q;
  q.push(1.0, EventType::kIdleTimeout, 7, 0, 42);
  const Event e = q.pop();
  EXPECT_EQ(e.type, EventType::kIdleTimeout);
  EXPECT_EQ(e.server, 7u);
  EXPECT_EQ(e.generation, 42u);
}

TEST(EventQueue, TopDoesNotPop) {
  EventQueue q;
  q.push(1.0, EventType::kJobArrival);
  EXPECT_DOUBLE_EQ(q.top().time, 1.0);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, InterleavedPushPopKeepsOrder) {
  EventQueue q;
  q.push(10.0, EventType::kJobFinish, 0, 1);
  q.push(4.0, EventType::kJobArrival, 0, 2);
  EXPECT_EQ(q.pop().job, 2);
  q.push(6.0, EventType::kJobArrival, 0, 3);
  q.push(12.0, EventType::kSleepComplete, 0, 4);
  EXPECT_EQ(q.pop().job, 3);
  EXPECT_EQ(q.pop().job, 1);
  EXPECT_EQ(q.pop().job, 4);
}

TEST(EventQueue, EmptyTopAndPopThrow) {
  EventQueue q;
  EXPECT_THROW(q.top(), std::logic_error);
  EXPECT_THROW(q.pop(), std::logic_error);
  q.push(1.0, EventType::kJobArrival);
  q.pop();
  EXPECT_THROW(q.top(), std::logic_error);
  EXPECT_THROW(q.pop(), std::logic_error);
}

// Randomized interleavings of push / reserve_seq / push_at — the mix the
// sharded engine's per-shard queues see when staged decisions claim their
// inline-path seq — must always drain as the one total (time, seq) order.
// The test mirrors the queue's seq counter (push and reserve_seq each
// consume exactly one number) and checks the drain against a sort.
TEST(EventQueue, RandomizedReserveSeqInterleavingsDrainInTotalOrder) {
  common::Rng rng(1234);
  for (int trial = 0; trial < 50; ++trial) {
    EventQueue q;
    std::uint64_t mirror_seq = 0;
    std::vector<std::pair<Time, std::uint64_t>> expected;  // (time, seq) of every push
    std::vector<std::pair<Time, std::uint64_t>> reserved;  // staged, not yet pushed
    const int ops = 40 + static_cast<int>(rng.uniform_int(0, 40));
    for (int i = 0; i < ops; ++i) {
      // Coarse times force plenty of ties so the seq order is load-bearing.
      const Time t = static_cast<Time>(rng.uniform_int(0, 9));
      switch (rng.uniform_int(0, 2)) {
        case 0:
          q.push(t, EventType::kJobFinish);
          expected.emplace_back(t, mirror_seq++);
          break;
        case 1: {
          const std::uint64_t seq = q.reserve_seq();
          ASSERT_EQ(seq, mirror_seq++);
          // A staged decision may commit at a later timestamp than when it
          // reserved; draw the commit time independently.
          reserved.emplace_back(static_cast<Time>(rng.uniform_int(0, 9)), seq);
          break;
        }
        default:
          if (!reserved.empty()) {
            const auto [rt, rs] = reserved.back();
            reserved.pop_back();
            q.push_at(rt, rs, EventType::kIdleTimeout);
            expected.emplace_back(rt, rs);
          }
          break;
      }
    }
    // Flush any still-reserved decisions, mimicking the epoch flush.
    for (const auto& [rt, rs] : reserved) {
      q.push_at(rt, rs, EventType::kSleepComplete);
      expected.emplace_back(rt, rs);
    }
    std::sort(expected.begin(), expected.end());
    for (const auto& [et, es] : expected) {
      ASSERT_FALSE(q.empty());
      const Event e = q.pop();
      ASSERT_EQ(e.time, et);
      ASSERT_EQ(e.seq, es);
    }
    EXPECT_TRUE(q.empty());
  }
}

}  // namespace
}  // namespace hcrl::sim
