#include "src/sim/event_queue.hpp"

#include <gtest/gtest.h>

namespace hcrl::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  q.push(5.0, EventType::kJobFinish, 1);
  q.push(1.0, EventType::kJobArrival, 0);
  q.push(3.0, EventType::kWakeComplete, 2);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_DOUBLE_EQ(q.pop().time, 1.0);
  EXPECT_DOUBLE_EQ(q.pop().time, 3.0);
  EXPECT_DOUBLE_EQ(q.pop().time, 5.0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  q.push(2.0, EventType::kJobArrival, 0, 100);
  q.push(2.0, EventType::kJobArrival, 0, 200);
  q.push(2.0, EventType::kJobArrival, 0, 300);
  EXPECT_EQ(q.pop().job, 100);
  EXPECT_EQ(q.pop().job, 200);
  EXPECT_EQ(q.pop().job, 300);
}

TEST(EventQueue, CarriesPayload) {
  EventQueue q;
  q.push(1.0, EventType::kIdleTimeout, 7, 0, 42);
  const Event e = q.pop();
  EXPECT_EQ(e.type, EventType::kIdleTimeout);
  EXPECT_EQ(e.server, 7u);
  EXPECT_EQ(e.generation, 42u);
}

TEST(EventQueue, TopDoesNotPop) {
  EventQueue q;
  q.push(1.0, EventType::kJobArrival);
  EXPECT_DOUBLE_EQ(q.top().time, 1.0);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, InterleavedPushPopKeepsOrder) {
  EventQueue q;
  q.push(10.0, EventType::kJobFinish, 0, 1);
  q.push(4.0, EventType::kJobArrival, 0, 2);
  EXPECT_EQ(q.pop().job, 2);
  q.push(6.0, EventType::kJobArrival, 0, 3);
  q.push(12.0, EventType::kSleepComplete, 0, 4);
  EXPECT_EQ(q.pop().job, 3);
  EXPECT_EQ(q.pop().job, 1);
  EXPECT_EQ(q.pop().job, 4);
}

}  // namespace
}  // namespace hcrl::sim
