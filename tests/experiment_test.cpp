#include "src/core/experiment.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace hcrl::core {
namespace {

ExperimentConfig tiny_config(SystemKind kind, std::size_t jobs = 600) {
  ExperimentConfig cfg;
  cfg.system = kind;
  cfg.num_servers = 6;
  cfg.num_groups = 2;
  cfg.trace.num_jobs = jobs;
  cfg.trace.horizon_s = static_cast<double>(jobs) * 6.4;  // paper-like rate
  cfg.trace.seed = 21;
  cfg.pretrain_jobs = jobs / 4;
  cfg.checkpoint_every_jobs = 100;
  return cfg;
}

TEST(ExperimentConfig, FinalizePropagatesDimensions) {
  ExperimentConfig cfg = tiny_config(SystemKind::kHierarchical);
  cfg.server.t_on = 25.0;
  cfg.finalize();
  EXPECT_EQ(cfg.drl.qnet.encoder.num_servers, 6u);
  EXPECT_EQ(cfg.drl.qnet.encoder.num_groups, 2u);
  EXPECT_EQ(cfg.local.num_servers, 6u);
  EXPECT_DOUBLE_EQ(cfg.local.t_on_s, 25.0);
}

TEST(ExperimentConfig, ValidationCatchesBadSetups) {
  ExperimentConfig cfg = tiny_config(SystemKind::kDrlFixedTimeout);
  cfg.fixed_timeout_s = -5.0;
  cfg.finalize();
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(SystemKind, NamesAreDistinct) {
  EXPECT_EQ(to_string(SystemKind::kRoundRobin), "round-robin");
  EXPECT_EQ(to_string(SystemKind::kDrlOnly), "drl-only");
  EXPECT_EQ(to_string(SystemKind::kHierarchical), "hierarchical");
  EXPECT_EQ(to_string(SystemKind::kDrlFixedTimeout), "drl-fixed-timeout");
  EXPECT_EQ(to_string(SystemKind::kLeastLoaded), "least-loaded");
  EXPECT_EQ(to_string(SystemKind::kFirstFitPacking), "first-fit-packing");
}

class ExperimentRun : public testing::TestWithParam<SystemKind> {};

TEST_P(ExperimentRun, CompletesAllJobsWithSaneMetrics) {
  const ExperimentResult r = run_experiment(tiny_config(GetParam()));
  const auto& s = r.final_snapshot;
  EXPECT_EQ(s.jobs_arrived, 600u);
  EXPECT_EQ(s.jobs_completed, 600u);
  EXPECT_DOUBLE_EQ(s.jobs_in_system, 0.0);
  EXPECT_GT(s.energy_joules, 0.0);
  // Energy can never exceed all servers at transition/peak power forever.
  EXPECT_LE(s.energy_joules, 6.0 * 145.0 * s.now * 1.001);
  EXPECT_GT(s.accumulated_latency_s, 0.0);
  // Mean latency at least the minimum job duration.
  EXPECT_GE(s.average_latency_s(), 60.0);
  EXPECT_EQ(r.system, to_string(GetParam()));
  EXPECT_GT(r.wall_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllSystems, ExperimentRun,
                         testing::Values(SystemKind::kRoundRobin, SystemKind::kDrlOnly,
                                         SystemKind::kHierarchical,
                                         SystemKind::kDrlFixedTimeout,
                                         SystemKind::kLeastLoaded,
                                         SystemKind::kFirstFitPacking));

TEST(Experiment, CheckpointSeriesIsMonotone) {
  ExperimentConfig cfg = tiny_config(SystemKind::kRoundRobin);
  const ExperimentResult r = run_experiment(cfg);
  ASSERT_GE(r.series.size(), 3u);
  for (std::size_t i = 1; i < r.series.size(); ++i) {
    EXPECT_GT(r.series[i].jobs_completed, r.series[i - 1].jobs_completed);
    EXPECT_GE(r.series[i].sim_time_s, r.series[i - 1].sim_time_s);
    EXPECT_GE(r.series[i].energy_kwh, r.series[i - 1].energy_kwh);
    EXPECT_GE(r.series[i].accumulated_latency_s, r.series[i - 1].accumulated_latency_s);
  }
}

TEST(Experiment, CheckpointsDisabledWhenZero) {
  ExperimentConfig cfg = tiny_config(SystemKind::kRoundRobin);
  cfg.checkpoint_every_jobs = 0;
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_TRUE(r.series.empty());
}

TEST(Experiment, ComparisonSharesTraceAcrossSystems) {
  ExperimentConfig cfg = tiny_config(SystemKind::kRoundRobin, 400);
  const auto results =
      run_comparison(cfg, {SystemKind::kRoundRobin, SystemKind::kLeastLoaded});
  ASSERT_EQ(results.size(), 2u);
  // Same trace: both saw identical job populations.
  EXPECT_EQ(results[0].final_snapshot.jobs_completed, 400u);
  EXPECT_EQ(results[1].final_snapshot.jobs_completed, 400u);
  EXPECT_DOUBLE_EQ(results[0].trace_stats.mean_duration_s,
                   results[1].trace_stats.mean_duration_s);
}

TEST(Experiment, PretrainingRunsForDrlSystems) {
  ExperimentConfig cfg = tiny_config(SystemKind::kDrlOnly);
  cfg.pretrain_jobs = 200;
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_EQ(r.final_snapshot.jobs_completed, 600u);
}

TEST(Experiment, RoundRobinNeverSleepsSoPowerAtLeastIdleFloor) {
  ExperimentConfig cfg = tiny_config(SystemKind::kRoundRobin);
  const ExperimentResult r = run_experiment(cfg);
  // After the first dispatch cycle all 6 servers stay on >= idle power, so
  // the average power must approach >= ~5.5 * 87 W.
  EXPECT_GT(r.final_snapshot.average_power_watts, 5.0 * 87.0);
  EXPECT_EQ(r.servers_on_at_end, 6u);
}

}  // namespace
}  // namespace hcrl::core
