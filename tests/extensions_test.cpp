// Tests for extensions beyond the paper's minimal setup: Double Q-learning,
// heterogeneous clusters, and latency percentiles.
#include <gtest/gtest.h>

#include "src/core/qnetwork.hpp"
#include "src/rl/dqn.hpp"
#include "src/sim/cluster.hpp"
#include "src/workload/generator.hpp"

namespace hcrl {
namespace {

TEST(DoubleDqn, StillSolvesContextualBandit) {
  rl::DqnAgent::Options o;
  o.hidden_dims = {16};
  o.double_q = true;
  o.learning_rate = 5e-3;
  o.min_replay_before_training = 64;
  o.train_interval = 1;
  o.epsilon = rl::EpsilonSchedule::constant(0.2);
  common::Rng rng(1);
  rl::DqnAgent agent(1, 2, o, rng);
  common::Rng env(2);
  for (int i = 0; i < 1500; ++i) {
    const double x = env.bernoulli(0.5) ? 1.0 : 0.0;
    const std::size_t a = agent.act({x}, env);
    rl::Transition t;
    t.state = {x};
    t.action = a;
    t.reward_rate = (static_cast<double>(a) == x) ? 0.0 : -2.0;
    t.tau = 1.0;
    t.next_state = {env.bernoulli(0.5) ? 1.0 : 0.0};
    agent.observe(std::move(t));
  }
  EXPECT_EQ(agent.act_greedy({0.0}), 0u);
  EXPECT_EQ(agent.act_greedy({1.0}), 1u);
}

TEST(DoubleDqn, GroupedNetworkTrainsWithDoubleTargets) {
  core::GroupedQOptions o;
  o.encoder.num_servers = 4;
  o.encoder.num_groups = 2;
  o.autoencoder_dims = {6, 3};
  o.subq_hidden = 8;
  o.double_q = true;
  common::Rng rng(3);
  core::GroupedQNetwork net(o, rng);
  common::Rng srng(4);
  rl::Transition t;
  t.state.resize(o.encoder.full_state_dim());
  t.next_state.resize(o.encoder.full_state_dim());
  for (auto& v : t.state) v = srng.uniform();
  for (auto& v : t.next_state) v = srng.uniform();
  t.action = 1;
  t.reward_rate = -1.0;
  t.tau = 1e9;
  double first = 0.0, last = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double loss = net.train_batch({&t}, 0.5);
    if (i == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, first);
  EXPECT_NEAR(net.q_values(t.state)[1], -2.0, 0.6);  // r/beta = -1/0.5
}

sim::Job cheap_job(sim::JobId id, sim::Time arrival, sim::Time duration = 60.0) {
  sim::Job j;
  j.id = id;
  j.arrival = arrival;
  j.duration = duration;
  j.demand = sim::ResourceVector{0.2, 0.1, 0.01};
  return j;
}

TEST(HeterogeneousCluster, MixedPowerModelsAccountedSeparately) {
  sim::ClusterConfig cfg;
  cfg.num_servers = 2;
  cfg.server.start_asleep = false;
  std::vector<sim::ServerConfig> per_server(2, cfg.server);
  per_server[1].power.idle_watts = 40.0;   // a low-power machine
  per_server[1].power.peak_watts = 60.0;

  sim::RoundRobinAllocator alloc;
  sim::AlwaysOnPolicy power;
  sim::Cluster cluster(cfg, per_server, alloc, power);
  // Both idle: total power must be 87 + 40.
  EXPECT_DOUBLE_EQ(cluster.metrics().total_power_watts(), 127.0);
  cluster.load_jobs({cheap_job(1, 0.0)});
  cluster.run();
  EXPECT_EQ(cluster.metrics().jobs_completed(), 1u);
}

TEST(HeterogeneousCluster, ConstructionValidation) {
  sim::ClusterConfig cfg;
  cfg.num_servers = 3;
  sim::RoundRobinAllocator alloc;
  sim::AlwaysOnPolicy power;
  // Wrong count.
  std::vector<sim::ServerConfig> two(2, cfg.server);
  EXPECT_THROW(sim::Cluster(cfg, two, alloc, power), std::invalid_argument);
  // Mismatched resource dimensionality.
  std::vector<sim::ServerConfig> three(3, cfg.server);
  three[1].num_resources = 2;
  EXPECT_THROW(sim::Cluster(cfg, three, alloc, power), std::invalid_argument);
}

TEST(HeterogeneousCluster, FasterTransitionServerWakesSooner) {
  sim::ClusterConfig cfg;
  cfg.num_servers = 2;
  cfg.server.start_asleep = true;
  std::vector<sim::ServerConfig> per_server(2, cfg.server);
  per_server[1].t_on = 5.0;  // fast-wake machine

  sim::RoundRobinAllocator alloc;
  sim::AlwaysOnPolicy power;
  sim::Cluster cluster(cfg, per_server, alloc, power);
  cluster.load_jobs({cheap_job(1, 0.0, 10.0), cheap_job(2, 0.0, 10.0)});
  cluster.run();
  const auto& records = cluster.metrics().job_records();
  ASSERT_EQ(records.size(), 2u);
  // Job on server 1 (fast wake) finishes at 15; on server 0 at 40.
  double fast_finish = 0.0, slow_finish = 0.0;
  for (const auto& r : records) (r.server == 1 ? fast_finish : slow_finish) = r.finish;
  EXPECT_DOUBLE_EQ(fast_finish, 15.0);
  EXPECT_DOUBLE_EQ(slow_finish, 40.0);
}

TEST(LatencyPercentile, MatchesKnownDistribution) {
  sim::ClusterMetrics m(1);
  for (int i = 1; i <= 100; ++i) {
    m.on_arrival(sim::Job{.id = i, .arrival = 0.0, .duration = 1.0,
                          .demand = sim::ResourceVector{0.1}},
                 0.0);
  }
  for (int i = 1; i <= 100; ++i) {
    sim::JobRecord r;
    r.id = i;
    r.arrival = 0.0;
    r.start = 0.0;
    r.finish = static_cast<double>(i);  // latencies 1..100
    m.on_completion(r, r.finish);
  }
  EXPECT_NEAR(m.latency_percentile(0.5), 50.0, 1.0);
  EXPECT_NEAR(m.latency_percentile(0.95), 95.0, 1.0);
  EXPECT_DOUBLE_EQ(m.latency_percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(m.latency_percentile(1.0), 100.0);
  EXPECT_THROW(m.latency_percentile(1.5), std::invalid_argument);
}

TEST(LatencyPercentile, RequiresRecords) {
  sim::ClusterMetrics no_records(1, false);
  sim::JobRecord r;
  r.finish = 1.0;
  no_records.on_completion(r, 1.0);
  EXPECT_THROW(no_records.latency_percentile(0.5), std::logic_error);
  sim::ClusterMetrics empty(1, true);
  EXPECT_THROW(empty.latency_percentile(0.5), std::logic_error);
}

}  // namespace
}  // namespace hcrl
