// Deterministic fault injection: plan generation, backoff/retry goldens,
// lost-work accounting invariants, and — the load-bearing properties — that
// fixed-seed faulty runs are bit-reproducible run to run, across engines
// (serial vs sharded lockstep), and with telemetry on or off; plus the
// harness robustness seams (per-cell watchdog, crash-safe tournament
// journal resume).
#include "src/sim/fault/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/runner.hpp"
#include "src/core/scenario.hpp"
#include "src/nn/precision.hpp"
#include "src/policy/tournament.hpp"
#include "src/telemetry/registry.hpp"

namespace hcrl {
namespace {

using core::ExperimentResult;
using core::Scenario;
using core::ScenarioRegistry;
using sim::FaultConfig;
using sim::FaultInjector;
using sim::FaultKind;
using sim::FaultPlan;

// ---- config validation ------------------------------------------------------

TEST(FaultConfig, ValidateRejectsAbsurdValues) {
  FaultConfig good;
  good.mtbf_s = 3600.0;
  EXPECT_NO_THROW(good.validate());

  auto expect_bad = [](auto&& mutate) {
    FaultConfig c;
    c.mtbf_s = 3600.0;
    mutate(c);
    EXPECT_THROW(c.validate(), std::invalid_argument);
  };
  expect_bad([](FaultConfig& c) { c.mtbf_s = -1.0; });
  expect_bad([](FaultConfig& c) { c.mtbf_s = std::nan(""); });
  expect_bad([](FaultConfig& c) { c.mttr_s = 0.0; });  // crashes on, repair off
  expect_bad([](FaultConfig& c) { c.evict_every_s = -0.5; });
  expect_bad([](FaultConfig& c) { c.backoff_base_s = -1.0; });
  expect_bad([](FaultConfig& c) { c.backoff_jitter = 1.0; });  // must be < 1
  expect_bad([](FaultConfig& c) { c.backoff_jitter = -0.1; });
  expect_bad([](FaultConfig& c) {
    c.backoff_base_s = 900.0;
    c.backoff_cap_s = 30.0;  // base exceeds cap
  });
  expect_bad([](FaultConfig& c) { c.max_retries = 2000000; });
  expect_bad([](FaultConfig& c) { c.horizon_padding_s = -1.0; });
}

// ---- plan generation --------------------------------------------------------

FaultConfig crashy_config() {
  FaultConfig c;
  c.mtbf_s = 600.0;
  c.mttr_s = 120.0;
  c.evict_every_s = 900.0;
  c.seed = 42;
  return c;
}

TEST(FaultPlan, GenerateIsDeterministicAndSorted) {
  const FaultPlan a = FaultPlan::generate(crashy_config(), 8, 7200.0);
  const FaultPlan b = FaultPlan::generate(crashy_config(), 8, 7200.0);
  ASSERT_FALSE(a.events.empty());
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].time, b.events[i].time);
    EXPECT_EQ(a.events[i].server, b.events[i].server);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    if (i > 0) {
      const auto& p = a.events[i - 1];
      const auto& e = a.events[i];
      EXPECT_TRUE(p.time < e.time ||
                  (p.time == e.time &&
                   (p.server < e.server ||
                    (p.server == e.server && static_cast<int>(p.kind) <= static_cast<int>(e.kind)))))
          << "plan not sorted by (time, server, kind) at index " << i;
    }
  }
}

TEST(FaultPlan, EveryCrashGetsItsRecovery) {
  const FaultPlan plan = FaultPlan::generate(crashy_config(), 8, 7200.0);
  std::size_t crashes = 0, recoveries = 0, evictions = 0;
  for (const auto& e : plan.events) {
    switch (e.kind) {
      case FaultKind::kCrash: ++crashes; break;
      case FaultKind::kRecover: ++recoveries; break;
      case FaultKind::kEvict: ++evictions; break;
    }
  }
  EXPECT_GT(crashes, 0u);
  EXPECT_GT(evictions, 0u);
  EXPECT_EQ(crashes, recoveries);  // recoveries ship even past the horizon
}

TEST(FaultPlan, AddingServersKeepsExistingStreamsStable) {
  // Per-server sub-seeds: server k's schedule must not move when the
  // cluster grows.
  const FaultPlan small = FaultPlan::generate(crashy_config(), 4, 7200.0);
  const FaultPlan big = FaultPlan::generate(crashy_config(), 8, 7200.0);
  auto events_for = [](const FaultPlan& p, sim::ServerId s) {
    std::vector<sim::FaultEvent> out;
    for (const auto& e : p.events) {
      if (e.server == s) out.push_back(e);
    }
    return out;
  };
  for (sim::ServerId s = 0; s < 4; ++s) {
    const auto a = events_for(small, s);
    const auto b = events_for(big, s);
    ASSERT_EQ(a.size(), b.size()) << "server " << s;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].time, b[i].time);
      EXPECT_EQ(a[i].kind, b[i].kind);
    }
  }
}

TEST(FaultPlan, DisabledConfigYieldsEmptyPlan) {
  FaultConfig off;  // mtbf_s == evict_every_s == 0
  EXPECT_FALSE(off.enabled());
  EXPECT_TRUE(FaultPlan::generate(off, 8, 7200.0).events.empty());
  EXPECT_TRUE(FaultPlan::generate(crashy_config(), 0, 7200.0).events.empty());
  EXPECT_TRUE(FaultPlan::generate(crashy_config(), 8, 0.0).events.empty());
}

// ---- backoff goldens --------------------------------------------------------

TEST(FaultInjectorTest, BackoffDoublesThenCaps) {
  FaultConfig c = crashy_config();
  c.backoff_base_s = 10.0;
  c.backoff_cap_s = 100.0;
  c.backoff_jitter = 0.0;  // exact goldens
  const FaultInjector inj(c, FaultPlan{});
  EXPECT_DOUBLE_EQ(inj.backoff_delay(7, 1), 10.0);
  EXPECT_DOUBLE_EQ(inj.backoff_delay(7, 2), 20.0);
  EXPECT_DOUBLE_EQ(inj.backoff_delay(7, 3), 40.0);
  EXPECT_DOUBLE_EQ(inj.backoff_delay(7, 4), 80.0);
  EXPECT_DOUBLE_EQ(inj.backoff_delay(7, 5), 100.0);   // capped
  EXPECT_DOUBLE_EQ(inj.backoff_delay(7, 60), 100.0);  // 2^59 saturates at the cap
  EXPECT_THROW(inj.backoff_delay(7, 0), std::invalid_argument);
}

TEST(FaultInjectorTest, BackoffJitterIsBoundedAndReproducible) {
  FaultConfig c = crashy_config();
  c.backoff_base_s = 10.0;
  c.backoff_cap_s = 0.0;  // uncapped
  c.backoff_jitter = 0.25;
  const FaultInjector a(c, FaultPlan{});
  const FaultInjector b(c, FaultPlan{});
  for (sim::JobId id = 1; id <= 50; ++id) {
    for (std::size_t attempt = 1; attempt <= 3; ++attempt) {
      const double base = 10.0 * static_cast<double>(1u << (attempt - 1));
      const double d = a.backoff_delay(id, attempt);
      EXPECT_GE(d, base * 0.75);
      EXPECT_LT(d, base * 1.25);
      // Pure function of (seed, id, attempt): a fresh injector agrees.
      EXPECT_EQ(d, b.backoff_delay(id, attempt));
    }
  }
  // A different seed moves the jitter.
  FaultConfig c2 = c;
  c2.seed = 1337;
  const FaultInjector other(c2, FaultPlan{});
  EXPECT_NE(a.backoff_delay(1, 1), other.backoff_delay(1, 1));
}

TEST(FaultInjectorTest, ZeroBaseStillMovesTimeForward) {
  FaultConfig c = crashy_config();
  c.backoff_base_s = 0.0;
  c.backoff_jitter = 0.0;
  const FaultInjector inj(c, FaultPlan{});
  EXPECT_GT(inj.backoff_delay(1, 1), 0.0);
}

TEST(FaultInjectorTest, RetryBudgetExhaustsThenJobIsLost) {
  FaultConfig c = crashy_config();
  c.max_retries = 2;
  c.backoff_jitter = 0.0;
  FaultInjector inj(c, FaultPlan{});
  sim::Job job;
  job.id = 9;
  job.arrival = 100.0;
  job.duration = 5.0;
  EXPECT_EQ(inj.attempts(9), 0u);
  EXPECT_TRUE(inj.schedule_retry(job, 100.0));
  EXPECT_TRUE(inj.schedule_retry(job, 150.0));
  EXPECT_FALSE(inj.schedule_retry(job, 200.0));  // budget spent: lost
  EXPECT_EQ(inj.attempts(9), 3u);

  // The two accepted retries drain in (time, seq) order, arrival rewritten
  // to the delivery time and the original submission preserved.
  ASSERT_TRUE(inj.has_pending_retry());
  const auto first = inj.pop_retry();
  const auto second = inj.pop_retry();
  EXPECT_FALSE(inj.has_pending_retry());
  EXPECT_LT(first.time, second.time);
  EXPECT_EQ(first.job.submitted, 100.0);
  EXPECT_EQ(first.job.arrival, first.time);
  EXPECT_THROW(inj.pop_retry(), std::logic_error);
  EXPECT_THROW(inj.next_retry_time(), std::logic_error);
}

// ---- full-run properties ----------------------------------------------------

// Aggressive fault rates so a tiny trace sees plenty of crashes, evictions,
// bounces and lost jobs.
Scenario make_faulty(const std::string& name, std::size_t jobs) {
  Scenario s = ScenarioRegistry::builtin().make(name, jobs);
  FaultConfig& f = s.config.faults;
  f.mtbf_s = 900.0;
  f.mttr_s = 120.0;
  f.evict_every_s = 1500.0;
  f.max_retries = 3;
  f.backoff_base_s = 5.0;
  f.backoff_cap_s = 60.0;
  f.backoff_jitter = 0.25;
  f.seed = 77;
  return s;
}

// Bit-identical comparison (wall_seconds excluded: it measures this process,
// not the simulation).
void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.final_snapshot.now, b.final_snapshot.now);
  EXPECT_EQ(a.final_snapshot.jobs_arrived, b.final_snapshot.jobs_arrived);
  EXPECT_EQ(a.final_snapshot.jobs_completed, b.final_snapshot.jobs_completed);
  EXPECT_EQ(a.final_snapshot.energy_joules, b.final_snapshot.energy_joules);
  EXPECT_EQ(a.final_snapshot.accumulated_latency_s, b.final_snapshot.accumulated_latency_s);
  EXPECT_EQ(a.final_snapshot.average_power_watts, b.final_snapshot.average_power_watts);
  EXPECT_EQ(a.latency_p95_s, b.latency_p95_s);
  EXPECT_EQ(a.latency_p99_s, b.latency_p99_s);
  EXPECT_EQ(a.sla_violations, b.sla_violations);
  EXPECT_EQ(a.servers_on_at_end, b.servers_on_at_end);

  const sim::FaultCounters& fa = a.final_snapshot.faults;
  const sim::FaultCounters& fb = b.final_snapshot.faults;
  EXPECT_EQ(fa.crashes, fb.crashes);
  EXPECT_EQ(fa.recoveries, fb.recoveries);
  EXPECT_EQ(fa.evictions, fb.evictions);
  EXPECT_EQ(fa.jobs_killed, fb.jobs_killed);
  EXPECT_EQ(fa.bounces, fb.bounces);
  EXPECT_EQ(fa.retries, fb.retries);
  EXPECT_EQ(fa.jobs_lost, fb.jobs_lost);
  EXPECT_EQ(fa.lost_cpu_seconds, fb.lost_cpu_seconds);
  EXPECT_EQ(fa.downtime_s, fb.downtime_s);
}

TEST(FaultRun, LostWorkAccountingInvariantsHold) {
  const std::size_t jobs = 400;
  const ExperimentResult r = core::run_scenario(make_faulty("tiny/least-loaded", jobs));
  const sim::MetricsSnapshot& s = r.final_snapshot;
  const sim::FaultCounters& f = s.faults;

  // The aggressive schedule must actually exercise the machinery.
  EXPECT_GT(f.crashes, 0u);
  EXPECT_GT(f.jobs_killed + f.bounces, 0u);

  // Conservation laws (exact, engine-independent):
  //  * every crash within the horizon is repaired;
  EXPECT_EQ(f.crashes, f.recoveries);
  //  * every kill/bounce either schedules a retry or drops the job;
  EXPECT_EQ(f.jobs_killed + f.bounces, f.retries + f.jobs_lost);
  //  * deliveries = trace arrivals + retries, minus the bounced ones;
  EXPECT_EQ(s.jobs_arrived, jobs + f.retries - f.bounces);
  //  * every delivered job either completes or is killed again;
  EXPECT_EQ(s.jobs_arrived, s.jobs_completed + f.jobs_killed);
  //  * every trace job eventually completes or is lost for good.
  EXPECT_EQ(s.jobs_completed + f.jobs_lost, jobs);

  EXPECT_GE(f.lost_cpu_seconds, 0.0);
  if (f.recoveries > 0) {
    EXPECT_GT(f.mttr_s(), 0.0);
    EXPECT_NEAR(f.mttr_s(), f.downtime_s / static_cast<double>(f.recoveries), 1e-12);
  }
}

TEST(FaultRun, FixedSeedIsBitReproducibleAtBothPrecisions) {
  for (const nn::Precision p : {nn::Precision::kF64, nn::Precision::kF32}) {
    for (const char* name : {"tiny/least-loaded", "tiny/hierarchical"}) {
      Scenario s = make_faulty(name, std::string(name) == "tiny/hierarchical" ? 150 : 300);
      s.config.precision = p;
      const ExperimentResult a = core::run_scenario(s);
      const ExperimentResult b = core::run_scenario(s);
      SCOPED_TRACE(std::string(name) + " @ " + nn::to_string(p));
      expect_identical(a, b);
      EXPECT_GT(a.final_snapshot.faults.crashes, 0u);
    }
  }
}

TEST(FaultRun, SerialAndShardOneLockstepAreBitIdentical) {
  Scenario serial = make_faulty("tiny/least-loaded", 300);
  Scenario sharded = make_faulty("tiny/least-loaded", 300);
  sharded.config.shards = 1;
  const ExperimentResult a = core::run_scenario(serial);
  const ExperimentResult b = core::run_scenario(sharded);
  expect_identical(a, b);
}

TEST(FaultRun, ShardedLockstepParityAcrossShardCounts) {
  const ExperimentResult base = core::run_scenario(make_faulty("tiny/least-loaded", 300));
  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    Scenario s = make_faulty("tiny/least-loaded", 300);
    s.config.shards = shards;
    const ExperimentResult r = core::run_scenario(s);
    SCOPED_TRACE("shards=" + std::to_string(shards));

    // Integer counters are taken at globally ordered events — exact at any
    // shard count.
    EXPECT_EQ(r.final_snapshot.jobs_arrived, base.final_snapshot.jobs_arrived);
    EXPECT_EQ(r.final_snapshot.jobs_completed, base.final_snapshot.jobs_completed);
    EXPECT_EQ(r.final_snapshot.faults.crashes, base.final_snapshot.faults.crashes);
    EXPECT_EQ(r.final_snapshot.faults.recoveries, base.final_snapshot.faults.recoveries);
    EXPECT_EQ(r.final_snapshot.faults.evictions, base.final_snapshot.faults.evictions);
    EXPECT_EQ(r.final_snapshot.faults.jobs_killed, base.final_snapshot.faults.jobs_killed);
    EXPECT_EQ(r.final_snapshot.faults.bounces, base.final_snapshot.faults.bounces);
    EXPECT_EQ(r.final_snapshot.faults.retries, base.final_snapshot.faults.retries);
    EXPECT_EQ(r.final_snapshot.faults.jobs_lost, base.final_snapshot.faults.jobs_lost);

    // Float integrals accumulate per shard then sum — equal up to rounding.
    EXPECT_NEAR(r.final_snapshot.energy_joules, base.final_snapshot.energy_joules,
                1e-6 * std::max(1.0, std::abs(base.final_snapshot.energy_joules)));
    EXPECT_NEAR(r.final_snapshot.accumulated_latency_s,
                base.final_snapshot.accumulated_latency_s,
                1e-6 * std::max(1.0, std::abs(base.final_snapshot.accumulated_latency_s)));

    // And the sharded run itself is bit-reproducible run to run.
    const ExperimentResult again = core::run_scenario(s);
    expect_identical(r, again);
  }
}

TEST(FaultRun, TelemetryToggleDoesNotPerturbResults) {
  const bool was_enabled = telemetry::enabled();
  const Scenario s = make_faulty("tiny/least-loaded", 300);
  telemetry::set_enabled(false);
  const ExperimentResult off = core::run_scenario(s);
  telemetry::set_enabled(true);
  const ExperimentResult on = core::run_scenario(s);
  telemetry::set_enabled(was_enabled);
  expect_identical(off, on);
}

TEST(FaultRun, FaultyRegistryScenariosExistAndStayFaultFreeElsewhere) {
  const auto& r = ScenarioRegistry::builtin();
  EXPECT_TRUE(r.contains("tiny/least-loaded-faulty"));
  EXPECT_TRUE(r.contains("tiny/hierarchical-faulty"));
  EXPECT_TRUE(r.contains("table1/m30/hierarchical-faulty"));
  EXPECT_TRUE(
      r.make("tiny/round-robin-faulty", 100).materialized().faults.enabled());
  // The plain scenarios remain fault-free: faults are opt-in per scenario.
  EXPECT_FALSE(r.make("tiny/round-robin", 100).materialized().faults.enabled());
}

// ---- watchdog ---------------------------------------------------------------

TEST(Watchdog, HungCellBecomesPerCellErrorWhileRestOfGridCompletes) {
  Scenario hung = ScenarioRegistry::builtin().make("tiny/least-loaded", 2000);
  hung.name = "hung-cell";
  hung.config.watchdog_s = 1e-6;  // trips at the first 64-event check
  Scenario fine = ScenarioRegistry::builtin().make("tiny/least-loaded", 200);

  core::SerialRunner runner;
  const auto outcomes = runner.run_outcomes({hung, fine});
  ASSERT_EQ(outcomes.size(), 2u);
  ASSERT_FALSE(outcomes[0].ok());
  EXPECT_TRUE(outcomes[1].ok());
  try {
    std::rethrow_exception(outcomes[0].error);
    FAIL() << "expected the watchdog to throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("watchdog"), std::string::npos) << msg;
    EXPECT_NE(msg.find("hung-cell"), std::string::npos) << msg;
  }
}

TEST(Watchdog, NegativeDeadlineFailsValidation) {
  Scenario s = ScenarioRegistry::builtin().make("tiny/least-loaded", 100);
  s.config.watchdog_s = -1.0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

// ---- tournament journal -----------------------------------------------------

policy::TournamentOptions journal_grid(const std::string& journal_path) {
  policy::TournamentOptions opts;
  opts.combos.push_back(policy::combo_from_string("round-robin+always-on"));
  opts.combos.push_back(policy::combo_from_string("least-loaded+immediate-sleep"));
  opts.scenario_names = {"tiny/least-loaded-faulty", "tiny/round-robin"};
  opts.jobs = 150;
  opts.journal_path = journal_path;
  return opts;
}

std::string leaderboard_csv(const policy::TournamentResult& r, policy::LeaderboardColumns cols) {
  std::ostringstream os;
  policy::write_leaderboard_csv(os, r, cols);
  return os.str();
}

std::string cells_csv(const policy::TournamentResult& r, policy::LeaderboardColumns cols) {
  std::ostringstream os;
  policy::write_cells_csv(os, r, cols);
  return os.str();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(TournamentJournal, ResumeSkipsFinishedCellsByteIdentically) {
  const std::string path = testing::TempDir() + "fault_test_journal.csv";
  std::remove(path.c_str());

  core::SerialRunner runner;
  const auto first = policy::run_tournament(journal_grid(path), runner);
  const std::string journal_after_first = slurp(path);
  // magic line + one record per (ok) cell
  ASSERT_EQ(static_cast<std::size_t>(
                std::count(journal_after_first.begin(), journal_after_first.end(), '\n')),
            1u + first.cells.size());

  // Rerunning the same grid against the same journal recomputes nothing:
  // even the timing columns (wall_seconds) come back byte-identical, which
  // only happens when results are reconstructed from the journal.
  const auto resumed = policy::run_tournament(journal_grid(path), runner);
  EXPECT_EQ(leaderboard_csv(resumed, policy::LeaderboardColumns::kWithTiming),
            leaderboard_csv(first, policy::LeaderboardColumns::kWithTiming));
  EXPECT_EQ(cells_csv(resumed, policy::LeaderboardColumns::kWithTiming),
            cells_csv(first, policy::LeaderboardColumns::kWithTiming));
  // Nothing new was appended.
  EXPECT_EQ(slurp(path), journal_after_first);

  // And the journaled results match a journal-free run on the deterministic
  // columns (the journal changes provenance, never values).
  auto fresh_opts = journal_grid("");
  const auto fresh = policy::run_tournament(fresh_opts, runner);
  EXPECT_EQ(leaderboard_csv(resumed, policy::LeaderboardColumns::kDeterministic),
            leaderboard_csv(fresh, policy::LeaderboardColumns::kDeterministic));

  std::remove(path.c_str());
}

TEST(TournamentJournal, TruncatedTrailingRecordIsIgnoredAndRepaired) {
  const std::string path = testing::TempDir() + "fault_test_journal_trunc.csv";
  std::remove(path.c_str());

  core::SerialRunner runner;
  const auto full = policy::run_tournament(journal_grid(path), runner);
  const std::string intact = slurp(path);

  // Chop the journal mid-way through its final record: the run was killed
  // while writing. The loader must keep the complete records and re-run
  // only the rest.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << intact.substr(0, intact.size() - 25);
  }
  const auto resumed = policy::run_tournament(journal_grid(path), runner);
  EXPECT_EQ(leaderboard_csv(resumed, policy::LeaderboardColumns::kDeterministic),
            leaderboard_csv(full, policy::LeaderboardColumns::kDeterministic));
  // The repaired journal ends complete again: a second resume recomputes
  // nothing and appends nothing.
  const std::string repaired = slurp(path);
  const auto again = policy::run_tournament(journal_grid(path), runner);
  EXPECT_EQ(slurp(path), repaired);
  EXPECT_EQ(cells_csv(again, policy::LeaderboardColumns::kWithTiming),
            cells_csv(resumed, policy::LeaderboardColumns::kWithTiming));

  std::remove(path.c_str());
}

TEST(TournamentJournal, ForeignFileIsRejectedNotSilentlyOverwritten) {
  const std::string path = testing::TempDir() + "fault_test_not_a_journal.csv";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "scenario,combo,energy\n";  // some other CSV
  }
  core::SerialRunner runner;
  EXPECT_THROW(policy::run_tournament(journal_grid(path), runner), std::invalid_argument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hcrl
