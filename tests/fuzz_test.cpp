// Randomized property tests: invariants must survive adversarial policies,
// random timeouts and random traces.
#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/sim/cluster.hpp"
#include "src/workload/generator.hpp"

namespace hcrl {
namespace {

/// Allocation policy that picks uniformly random valid servers — the
/// adversarial "no intelligence at all" case.
class RandomPolicy final : public sim::AllocationPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed) : rng_(seed) {}
  sim::ServerId select_server(const sim::ClusterView& cluster, const sim::Job&) override {
    return static_cast<sim::ServerId>(
        rng_.uniform_int(0, static_cast<std::int64_t>(cluster.num_servers()) - 1));
  }
  std::string name() const override { return "fuzz-random"; }

 private:
  common::Rng rng_;
};

/// Power policy that returns arbitrary random timeouts, including 0 and
/// "never sleep" — stresses every path of the server state machine.
class RandomTimeoutPolicy final : public sim::PowerPolicy {
 public:
  explicit RandomTimeoutPolicy(std::uint64_t seed) : rng_(seed) {}
  double on_idle(const sim::Server&, sim::Time) override {
    const double roll = rng_.uniform();
    if (roll < 0.25) return 0.0;
    if (roll < 0.35) return sim::kNeverSleep;
    return rng_.uniform(1.0, 600.0);
  }
  std::string name() const override { return "fuzz-timeout"; }

 private:
  common::Rng rng_;
};

class SimulatorFuzz : public testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulatorFuzz, InvariantsHoldUnderRandomPolicies) {
  const std::uint64_t seed = GetParam();
  workload::GeneratorOptions g;
  g.num_jobs = 1500;
  g.horizon_s = 1500.0 * 4.0;  // heavier than paper load: stress queues
  g.seed = seed;
  auto jobs = workload::GoogleTraceGenerator(g).generate();

  RandomPolicy alloc(seed * 3 + 1);
  RandomTimeoutPolicy power(seed * 5 + 2);
  sim::ClusterConfig cfg;
  cfg.num_servers = 7;  // deliberately awkward size
  sim::Cluster cluster(cfg, alloc, power);
  cluster.load_jobs(std::move(jobs));
  cluster.run();

  const auto s = cluster.snapshot();
  EXPECT_EQ(s.jobs_arrived, 1500u);
  EXPECT_EQ(s.jobs_completed, 1500u);
  EXPECT_DOUBLE_EQ(s.jobs_in_system, 0.0);
  EXPECT_GE(s.energy_joules, 0.0);
  EXPECT_LE(s.energy_joules, 7.0 * 145.0 * s.now * 1.001);

  // Per-job sanity: latency >= duration; start >= arrival; finish > start.
  for (const auto& r : cluster.metrics().job_records()) {
    EXPECT_GE(r.start, r.arrival - 1e-9);
    EXPECT_GT(r.finish, r.start);
  }

  // All servers end quiescent (sleep or idle) with nothing running.
  for (std::size_t i = 0; i < cluster.num_servers(); ++i) {
    EXPECT_EQ(cluster.server(i).jobs_on_server(), 0u);
    EXPECT_LE(cluster.server(i).utilization(0), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorFuzz,
                         testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

class HeavyLoadFuzz : public testing::TestWithParam<std::uint64_t> {};

TEST_P(HeavyLoadFuzz, OverloadedClusterStillConserves) {
  // 2 servers, demanding jobs: long queues are guaranteed; conservation and
  // FCFS progress must still hold.
  workload::GeneratorOptions g;
  g.num_jobs = 400;
  g.horizon_s = 400.0 * 2.0;
  g.cpu_min = 0.2;
  g.cpu_max = 0.6;
  g.cpu_exp_mean = 0.2;
  g.seed = GetParam();
  auto jobs = workload::GoogleTraceGenerator(g).generate();

  RandomPolicy alloc(GetParam());
  sim::ImmediateSleepPolicy power;
  sim::ClusterConfig cfg;
  cfg.num_servers = 2;
  sim::Cluster cluster(cfg, alloc, power);
  cluster.load_jobs(std::move(jobs));
  cluster.run();
  EXPECT_EQ(cluster.metrics().jobs_completed(), 400u);
  // With overload, mean latency must exceed mean duration (queueing found).
  EXPECT_GT(cluster.metrics().latency_stats().mean(),
            cluster.metrics().wait_stats().mean());
  EXPECT_GT(cluster.metrics().wait_stats().max(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeavyLoadFuzz, testing::Values(2u, 4u, 6u));

}  // namespace
}  // namespace hcrl
