// Randomized property tests: invariants must survive adversarial policies,
// random timeouts, random traces — and adversarial config text, which must
// always fail with a defined std::invalid_argument-family error instead of
// UB or silent acceptance.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "src/common/config.hpp"
#include "src/common/rng.hpp"
#include "src/core/config_binding.hpp"
#include "src/sim/cluster.hpp"
#include "src/workload/generator.hpp"

namespace hcrl {
namespace {

/// Allocation policy that picks uniformly random valid servers — the
/// adversarial "no intelligence at all" case.
class RandomPolicy final : public sim::AllocationPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed) : rng_(seed) {}
  sim::ServerId select_server(const sim::ClusterView& cluster, const sim::Job&) override {
    return static_cast<sim::ServerId>(
        rng_.uniform_int(0, static_cast<std::int64_t>(cluster.num_servers()) - 1));
  }
  std::string name() const override { return "fuzz-random"; }

 private:
  common::Rng rng_;
};

/// Power policy that returns arbitrary random timeouts, including 0 and
/// "never sleep" — stresses every path of the server state machine.
class RandomTimeoutPolicy final : public sim::PowerPolicy {
 public:
  explicit RandomTimeoutPolicy(std::uint64_t seed) : rng_(seed) {}
  double on_idle(const sim::Server&, sim::Time) override {
    const double roll = rng_.uniform();
    if (roll < 0.25) return 0.0;
    if (roll < 0.35) return sim::kNeverSleep;
    return rng_.uniform(1.0, 600.0);
  }
  std::string name() const override { return "fuzz-timeout"; }

 private:
  common::Rng rng_;
};

class SimulatorFuzz : public testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulatorFuzz, InvariantsHoldUnderRandomPolicies) {
  const std::uint64_t seed = GetParam();
  workload::GeneratorOptions g;
  g.num_jobs = 1500;
  g.horizon_s = 1500.0 * 4.0;  // heavier than paper load: stress queues
  g.seed = seed;
  auto jobs = workload::GoogleTraceGenerator(g).generate();

  RandomPolicy alloc(seed * 3 + 1);
  RandomTimeoutPolicy power(seed * 5 + 2);
  sim::ClusterConfig cfg;
  cfg.num_servers = 7;  // deliberately awkward size
  sim::Cluster cluster(cfg, alloc, power);
  cluster.load_jobs(std::move(jobs));
  cluster.run();

  const auto s = cluster.snapshot();
  EXPECT_EQ(s.jobs_arrived, 1500u);
  EXPECT_EQ(s.jobs_completed, 1500u);
  EXPECT_DOUBLE_EQ(s.jobs_in_system, 0.0);
  EXPECT_GE(s.energy_joules, 0.0);
  EXPECT_LE(s.energy_joules, 7.0 * 145.0 * s.now * 1.001);

  // Per-job sanity: latency >= duration; start >= arrival; finish > start.
  for (const auto& r : cluster.metrics().job_records()) {
    EXPECT_GE(r.start, r.arrival - 1e-9);
    EXPECT_GT(r.finish, r.start);
  }

  // All servers end quiescent (sleep or idle) with nothing running.
  for (std::size_t i = 0; i < cluster.num_servers(); ++i) {
    EXPECT_EQ(cluster.server(i).jobs_on_server(), 0u);
    EXPECT_LE(cluster.server(i).utilization(0), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorFuzz,
                         testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

class HeavyLoadFuzz : public testing::TestWithParam<std::uint64_t> {};

TEST_P(HeavyLoadFuzz, OverloadedClusterStillConserves) {
  // 2 servers, demanding jobs: long queues are guaranteed; conservation and
  // FCFS progress must still hold.
  workload::GeneratorOptions g;
  g.num_jobs = 400;
  g.horizon_s = 400.0 * 2.0;
  g.cpu_min = 0.2;
  g.cpu_max = 0.6;
  g.cpu_exp_mean = 0.2;
  g.seed = GetParam();
  auto jobs = workload::GoogleTraceGenerator(g).generate();

  RandomPolicy alloc(GetParam());
  sim::ImmediateSleepPolicy power;
  sim::ClusterConfig cfg;
  cfg.num_servers = 2;
  sim::Cluster cluster(cfg, alloc, power);
  cluster.load_jobs(std::move(jobs));
  cluster.run();
  EXPECT_EQ(cluster.metrics().jobs_completed(), 400u);
  // With overload, mean latency must exceed mean duration (queueing found).
  EXPECT_GT(cluster.metrics().latency_stats().mean(),
            cluster.metrics().wait_stats().mean());
  EXPECT_GT(cluster.metrics().wait_stats().max(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeavyLoadFuzz, testing::Values(2u, 4u, 6u));

// ---- adversarial config text ------------------------------------------------

/// Every malformed input must surface as std::invalid_argument (or a
/// subclass) from the parse/bind layer — never UB, never silent acceptance.
void expect_rejected(const std::string& text) {
  SCOPED_TRACE("config text: " + text);
  EXPECT_THROW(
      {
        const common::Config cfg = common::Config::from_string(text);
        (void)core::experiment_config_from(cfg);
      },
      std::invalid_argument);
}

TEST(ConfigRobustness, MalformedLinesThrow) {
  expect_rejected("just a line with no equals\n");
  expect_rejected("= 1\n");                     // empty key
  expect_rejected("   =   \n");                 // empty key and value
  expect_rejected("num_servers =\n");           // empty value for an int key
  expect_rejected("num_servers = 4 extra\n");   // trailing junk after the int
}

TEST(ConfigRobustness, DuplicateKeysThrow) {
  expect_rejected("num_servers = 4\nnum_servers = 8\n");
  expect_rejected("faults.mtbf_s = 100\nfaults.mtbf_s = 100\n");  // even identical
}

TEST(ConfigRobustness, OutOfRangeNumericsThrow) {
  expect_rejected("num_servers = -3\n");
  expect_rejected("trace.num_jobs = -1\n");
  expect_rejected("pretrain_jobs = -2\n");
  expect_rejected("shards = -1\n");
  expect_rejected("num_servers = 99999999999999999999999\n");  // overflows int64
  expect_rejected("num_servers = twelve\n");
  expect_rejected("watchdog_s = -5\n");
  expect_rejected("watchdog_s = nan\n");
}

TEST(ConfigRobustness, AbsurdFaultValuesThrow) {
  expect_rejected("faults.mtbf_s = -1\n");
  expect_rejected("faults.mtbf_s = nan\n");
  expect_rejected("faults.mtbf_s = 100\nfaults.mttr_s = 0\n");  // crashes, no repair
  expect_rejected("faults.evict_every_s = -0.5\n");
  expect_rejected("faults.backoff_jitter = 2\n");               // must be < 1
  expect_rejected("faults.backoff_jitter = -0.25\n");
  expect_rejected("faults.backoff_base_s = 900\nfaults.backoff_cap_s = 30\n");
  expect_rejected("faults.max_retries = -1\n");
  expect_rejected("faults.max_retries = 99999999\n");           // absurd budget
  expect_rejected("faults.horizon_padding_s = -10\n");
}

TEST(ConfigRobustness, ValidFaultKeysStillBind) {
  // The guard rails must not reject the documented shape.
  const common::Config cfg = common::Config::from_string(
      "num_servers = 6\n"
      "faults.mtbf_s = 14400\n"
      "faults.mttr_s = 600\n"
      "faults.evict_every_s = 21600\n"
      "faults.max_retries = 5\n"
      "faults.backoff_base_s = 30\n"
      "faults.backoff_cap_s = 600\n"
      "faults.backoff_jitter = 0.25\n"
      "faults.seed = 9\n"
      "watchdog_s = 120\n");
  const core::ExperimentConfig bound = core::experiment_config_from(cfg);
  EXPECT_TRUE(bound.faults.enabled());
  EXPECT_DOUBLE_EQ(bound.faults.mtbf_s, 14400.0);
  EXPECT_EQ(bound.faults.max_retries, 5u);
  EXPECT_DOUBLE_EQ(bound.watchdog_s, 120.0);
}

class ConfigSoupFuzz : public testing::TestWithParam<std::uint64_t> {};

TEST_P(ConfigSoupFuzz, RandomKeyValueSoupParsesOrThrowsCleanly) {
  // Random mixes of real keys and garbage values: the bind either yields a
  // validated config or throws std::invalid_argument. Anything else (crash,
  // sanitizer report, silent wrap-around) fails the suite.
  static const char* kKeys[] = {"num_servers",       "num_groups",        "pretrain_jobs",
                                "shards",            "trace.num_jobs",    "faults.mtbf_s",
                                "faults.mttr_s",     "faults.max_retries", "faults.backoff_jitter",
                                "watchdog_s",        "system",            "fixed_timeout_s"};
  static const char* kValues[] = {"0",    "1",        "-1",  "4",     "3.5",  "-3.5",
                                  "nan",  "inf",      "1e#", "",      "true", "hierarchical",
                                  "1e308", "99999999999999999999999", "0.25", "x"};
  common::Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    std::string text;
    const int lines = static_cast<int>(rng.uniform_int(1, 6));
    for (int l = 0; l < lines; ++l) {
      text += kKeys[rng.uniform_int(0, std::size(kKeys) - 1)];
      text += " = ";
      text += kValues[rng.uniform_int(0, std::size(kValues) - 1)];
      text += "\n";
    }
    try {
      const common::Config cfg = common::Config::from_string(text);
      const core::ExperimentConfig bound = core::experiment_config_from(cfg);
      bound.validate();  // accepted configs must be internally consistent
    } catch (const std::invalid_argument&) {
      // defined rejection — fine
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfigSoupFuzz, testing::Values(11u, 23u, 47u));

}  // namespace
}  // namespace hcrl
