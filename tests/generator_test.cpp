#include "src/workload/generator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace hcrl::workload {
namespace {

GeneratorOptions small_opts(std::size_t jobs = 5000) {
  GeneratorOptions o;
  o.num_jobs = jobs;
  o.horizon_s = hcrl::sim::kSecondsPerWeek * static_cast<double>(jobs) / 95000.0;
  o.seed = 42;
  return o;
}

TEST(GeneratorOptions, Validation) {
  GeneratorOptions o = small_opts();
  EXPECT_NO_THROW(o.validate());
  o.num_jobs = 0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = small_opts();
  o.min_duration_s = 0.0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = small_opts();
  o.cpu_max = o.cpu_min / 2.0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = small_opts();
  o.mem_ratio_lo = -1.0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
}

TEST(Generator, ExactJobCountSortedUniqueIds) {
  GoogleTraceGenerator gen(small_opts());
  const auto jobs = gen.generate();
  ASSERT_EQ(jobs.size(), 5000u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].id, static_cast<hcrl::sim::JobId>(i));
    if (i > 0) { EXPECT_GE(jobs[i].arrival, jobs[i - 1].arrival); }
  }
}

TEST(Generator, MarginalsRespectPaperBounds) {
  GoogleTraceGenerator gen(small_opts());
  const auto jobs = gen.generate();
  const auto& o = gen.options();
  for (const auto& j : jobs) {
    EXPECT_GE(j.duration, o.min_duration_s);        // >= 1 minute
    EXPECT_LE(j.duration, o.max_duration_s);        // <= 2 hours
    EXPECT_GE(j.demand[0], o.cpu_min);
    EXPECT_LE(j.demand[0], o.cpu_max);
    EXPECT_GE(j.demand[1], o.mem_min);
    EXPECT_LE(j.demand[1], o.mem_max);
    EXPECT_GE(j.demand[2], o.disk_lo);
    EXPECT_LE(j.demand[2], o.disk_hi);
    EXPECT_NO_THROW(j.validate(3));
  }
}

TEST(Generator, DeterministicForSeed) {
  GoogleTraceGenerator a(small_opts()), b(small_opts());
  const auto ja = a.generate();
  const auto jb = b.generate();
  ASSERT_EQ(ja.size(), jb.size());
  for (std::size_t i = 0; i < ja.size(); i += 97) {
    EXPECT_DOUBLE_EQ(ja[i].arrival, jb[i].arrival);
    EXPECT_DOUBLE_EQ(ja[i].duration, jb[i].duration);
    EXPECT_DOUBLE_EQ(ja[i].demand[0], jb[i].demand[0]);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  GeneratorOptions o1 = small_opts(), o2 = small_opts();
  o2.seed = 43;
  const auto a = GoogleTraceGenerator(o1).generate();
  const auto b = GoogleTraceGenerator(o2).generate();
  int different = 0;
  for (std::size_t i = 0; i < a.size(); i += 101) {
    if (a[i].arrival != b[i].arrival) ++different;
  }
  EXPECT_GT(different, 10);
}

TEST(Generator, CalibrationMatchesPaperAggregates) {
  // The paper's regime: mean duration ~15 min (so round-robin latency/job is
  // ~800-900 s), small requests, cluster CPU load well under 50% so that
  // consolidation does not stall jobs.
  GoogleTraceGenerator gen(small_opts(20000));
  const auto jobs = gen.generate();
  const TraceStats stats = compute_stats(jobs, gen.options().horizon_s);
  EXPECT_GT(stats.mean_duration_s, 600.0);
  EXPECT_LT(stats.mean_duration_s, 1100.0);
  EXPECT_GT(stats.mean_cpu, 0.02);
  EXPECT_LT(stats.mean_cpu, 0.08);
  const double load = stats.cpu_load(30);
  EXPECT_GT(load, 0.05);
  EXPECT_LT(load, 0.45);
}

TEST(TraceStats, ComputedFieldsAreConsistent) {
  std::vector<hcrl::sim::Job> jobs;
  for (int i = 0; i < 3; ++i) {
    hcrl::sim::Job j;
    j.id = i;
    j.arrival = i * 10.0;
    j.duration = 100.0;
    j.demand = hcrl::sim::ResourceVector{0.5, 0.2, 0.1};
    jobs.push_back(j);
  }
  const TraceStats s = compute_stats(jobs, 1000.0);
  EXPECT_EQ(s.num_jobs, 3u);
  EXPECT_DOUBLE_EQ(s.mean_duration_s, 100.0);
  EXPECT_DOUBLE_EQ(s.mean_cpu, 0.5);
  EXPECT_DOUBLE_EQ(s.mean_interarrival_s, 10.0);
  EXPECT_DOUBLE_EQ(s.total_cpu_seconds, 150.0);
  // load = 150 cpu-seconds / (1000 s * 1 server).
  EXPECT_DOUBLE_EQ(s.cpu_load(1), 0.15);
  EXPECT_DOUBLE_EQ(s.cpu_load(0), 0.0);
}

TEST(TraceStats, EmptyTrace) {
  const TraceStats s = compute_stats({}, 100.0);
  EXPECT_EQ(s.num_jobs, 0u);
  EXPECT_DOUBLE_EQ(s.mean_duration_s, 0.0);
}

TEST(TraceStats, ToStringMentionsKeyNumbers) {
  GoogleTraceGenerator gen(small_opts(1000));
  const TraceStats s = compute_stats(gen.generate(), gen.options().horizon_s);
  const std::string str = s.to_string();
  EXPECT_NE(str.find("jobs=1000"), std::string::npos);
  EXPECT_NE(str.find("mean_duration"), std::string::npos);
}

TEST(Generator, MakeJobUsesSuppliedArrival) {
  GoogleTraceGenerator gen(small_opts());
  hcrl::common::Rng rng(9);
  const auto job = gen.make_job(77, 123.5, rng);
  EXPECT_EQ(job.id, 77);
  EXPECT_DOUBLE_EQ(job.arrival, 123.5);
  EXPECT_NO_THROW(job.validate(3));
}

}  // namespace
}  // namespace hcrl::workload
